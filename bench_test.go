// Package dkip's root benchmark harness regenerates every table and figure
// of the paper's evaluation as a testing.B benchmark, one per artifact (see
// the registry in internal/experiments). Run all of them with
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment at a reduced scale
// (use cmd/experiments for full-scale runs), reports headline numbers as
// custom metrics, and logs the full table once.
//
// Every experiment goes through the process-wide shared sim.Runner, so runs
// duplicated across figures (and across benchmark iterations) simulate once
// per `go test -bench` process; the sims/op metric reports how many real
// simulations each iteration cost after deduplication. Raw, uncached
// simulator speed is measured separately by BenchmarkSimulatorRaw.
package dkip

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"dkip/internal/core"
	"dkip/internal/experiments"
	"dkip/internal/ooo"
	"dkip/internal/sim"
)

// cacheDir optionally backs the shared Runner with a persistent result
// store, so repeated `go test -bench` invocations warm-start:
//
//	go test -bench=. -cache-dir ~/.cache/dkip .
//
// On a warm store every experiment benchmark reports 0 sims/op — it then
// measures table assembly and cache service, not the simulator.
var cacheDir = flag.String("cache-dir", "", "persistent sim result store for warm-starting benchmark runs")

func TestMain(m *testing.M) {
	flag.Parse()
	if *cacheDir != "" {
		store, err := sim.OpenStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		experiments.UseRunner(sim.NewRunner(sim.WithStore(store)))
	}
	os.Exit(m.Run())
}

// benchScale keeps every -bench=. sweep to seconds per experiment.
func benchScale() experiments.Scale {
	return experiments.Scale{Warmup: 5_000, Measure: 20_000}
}

// logOnce arranges for each experiment's table to be logged a single time
// even though testing.B reruns the body.
var logOnce sync.Map

// runExperiment executes one registered experiment per benchmark iteration
// through the shared Runner and reports cells of its last row as metrics,
// plus the number of real (post-dedup) simulations per iteration.
func runExperiment(b *testing.B, id string, metrics func(t *experiments.Table, b *testing.B)) {
	b.Helper()
	before := experiments.Runner().Metrics().Simulated
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiments.Run(id, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	simulated := experiments.Runner().Metrics().Simulated - before
	b.ReportMetric(float64(simulated)/float64(b.N), "sims/op")
	if _, dup := logOnce.LoadOrStore(id, true); !dup {
		b.Logf("\n%s", t.String())
	}
	if metrics != nil {
		metrics(t, b)
	}
}

// cell parses a table cell as a float metric. A cell that does not parse is
// a harness bug (a renamed or blank column), and silently reporting 0 would
// zero a headline benchmark number — fail loudly instead.
func cell(b *testing.B, t *experiments.Table, row, col int) float64 {
	b.Helper()
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		b.Fatalf("table cell [%d][%d] out of range (%d rows)", row, col, len(t.Rows))
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("table cell [%d][%d] = %q is not a numeric metric: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

// BenchmarkTable1Configs validates and prints the limit-study memory
// configurations (paper Table 1).
func BenchmarkTable1Configs(b *testing.B) {
	runExperiment(b, "table1", nil)
}

// BenchmarkTable2Defaults validates the invariant architecture parameters
// (paper Table 2) and the variable-parameter defaults (paper Table 3).
func BenchmarkTable2Defaults(b *testing.B) {
	runExperiment(b, "table2", nil)
	runExperiment(b, "table3", nil)
}

// BenchmarkFigure1WindowSweepInt regenerates Figure 1: SpecINT IPC vs window
// size under the six memory subsystems.
func BenchmarkFigure1WindowSweepInt(b *testing.B) {
	runExperiment(b, "fig1", func(t *experiments.Table, b *testing.B) {
		last := len(t.Rows) - 1
		b.ReportMetric(cell(b, t, last, len(t.Columns)-2), "IPC-MEM400-4K")
		b.ReportMetric(cell(b, t, 0, len(t.Columns)-2), "IPC-MEM400-32")
	})
}

// BenchmarkFigure2WindowSweepFP regenerates Figure 2: SpecFP IPC vs window
// size; the paper's point is near-total recovery at 4K entries.
func BenchmarkFigure2WindowSweepFP(b *testing.B) {
	runExperiment(b, "fig2", func(t *experiments.Table, b *testing.B) {
		last := len(t.Rows) - 1
		b.ReportMetric(cell(b, t, last, 1), "IPC-L1-4K")
		b.ReportMetric(cell(b, t, last, len(t.Columns)-2), "IPC-MEM400-4K")
	})
}

// BenchmarkFigure3IssueHistogram regenerates the decode→issue distance
// histogram that defines execution locality.
func BenchmarkFigure3IssueHistogram(b *testing.B) {
	runExperiment(b, "fig3", nil)
}

// BenchmarkFigure9Comparison regenerates the headline architecture
// comparison: R10-64, R10-256, KILO-1024, D-KIP-2048 on both suites.
func BenchmarkFigure9Comparison(b *testing.B) {
	runExperiment(b, "fig9", func(t *experiments.Table, b *testing.B) {
		b.ReportMetric(cell(b, t, 3, 2), "DKIP-FP-IPC")
		b.ReportMetric(cell(b, t, 3, 2)/cell(b, t, 0, 2), "DKIP-vs-R1064-FP")
	})
}

// BenchmarkFigure10SchedulerSweep regenerates the CP/MP scheduling-policy
// grid of Figure 10 (and the §4.3 percentages in its notes).
func BenchmarkFigure10SchedulerSweep(b *testing.B) {
	runExperiment(b, "fig10", func(t *experiments.Table, b *testing.B) {
		b.ReportMetric(cell(b, t, len(t.Rows)-1, len(t.Columns)-1), "IPC-OOO80-OOO40")
	})
}

// BenchmarkFigure11CacheSweepInt regenerates the SpecINT L2 sweep.
func BenchmarkFigure11CacheSweepInt(b *testing.B) {
	runExperiment(b, "fig11", nil)
}

// BenchmarkFigure12CacheSweepFP regenerates the SpecFP L2 sweep; the paper's
// claim is D-KIP cache-size tolerance.
func BenchmarkFigure12CacheSweepFP(b *testing.B) {
	runExperiment(b, "fig12", nil)
}

// BenchmarkFigure13LLIBOccupancyInt regenerates the integer-LLIB occupancy
// maxima (instructions and registers) per SpecINT benchmark.
func BenchmarkFigure13LLIBOccupancyInt(b *testing.B) {
	runExperiment(b, "fig13", nil)
}

// BenchmarkFigure14LLIBOccupancyFP regenerates the FP-LLIB occupancy maxima
// per SpecFP benchmark.
func BenchmarkFigure14LLIBOccupancyFP(b *testing.B) {
	runExperiment(b, "fig14", nil)
}

// BenchmarkSection43Scheduler regenerates the §4.3 text numbers.
func BenchmarkSection43Scheduler(b *testing.B) {
	runExperiment(b, "sec43", nil)
}

// BenchmarkSection44CPShare regenerates the §4.4 Cache-Processor share
// numbers.
func BenchmarkSection44CPShare(b *testing.B) {
	runExperiment(b, "sec44", nil)
}

// ---- ablation benches for the paper's design choices ----

// BenchmarkAblationAnalyzeStall quantifies the Analyze writeback-wait stall
// (§3.2: ~0.7% IPC).
func BenchmarkAblationAnalyzeStall(b *testing.B) {
	runExperiment(b, "ablation-analyze", nil)
}

// BenchmarkAblationAgingTimer sweeps the Aging-ROB timer.
func BenchmarkAblationAgingTimer(b *testing.B) {
	runExperiment(b, "ablation-aging", nil)
}

// BenchmarkAblationLLIBSize sweeps LLIB capacity.
func BenchmarkAblationLLIBSize(b *testing.B) {
	runExperiment(b, "ablation-llib", nil)
}

// BenchmarkAblationLLRFBanks compares the banked LLRF against ideal storage.
func BenchmarkAblationLLRFBanks(b *testing.B) {
	runExperiment(b, "ablation-llrf", nil)
}

// BenchmarkAblationSingleLLIB compares the paper's dual LLIB/MP organization
// against a merged single pair.
func BenchmarkAblationSingleLLIB(b *testing.B) {
	runExperiment(b, "ablation-singlellib", nil)
}

// BenchmarkAblationRunahead compares runahead execution — the related-work
// alternative the paper cites [23,24] — against the D-KIP.
func BenchmarkAblationRunahead(b *testing.B) {
	runExperiment(b, "ablation-runahead", nil)
}

// BenchmarkAblationCheckpoint compares checkpoint-placement policies under a
// replay-distance recovery model.
func BenchmarkAblationCheckpoint(b *testing.B) {
	runExperiment(b, "ablation-checkpoint", nil)
}

// BenchmarkAblationMSHR sweeps miss-status registers: how much memory-level
// parallelism the kilo-instruction window actually demands.
func BenchmarkAblationMSHR(b *testing.B) {
	runExperiment(b, "ablation-mshr", nil)
}

// BenchmarkAblationPrefetch pits next-line hardware prefetching against the
// decoupled window on both the small baseline and the D-KIP.
func BenchmarkAblationPrefetch(b *testing.B) {
	runExperiment(b, "ablation-prefetch", nil)
}

// ---- run-orchestration layer benches ----

// rawSpecs returns the specs BenchmarkSimulatorRaw simulates: the default
// D-KIP on one SpecFP workload and the R10-64 baseline on one SpecINT
// workload. cmd/bench runs the identical set, so its BENCH_*.json snapshots
// and the CI benchmark numbers measure the same work.
func rawSpecs() []sim.RunSpec {
	scale := benchScale()
	return []sim.RunSpec{
		sim.DKIPSpec("swim", core.Config{}, scale.Warmup, scale.Measure),
		sim.OOOSpec("mcf", ooo.R10K64(), scale.Warmup, scale.Measure),
	}
}

// benchRaw measures uncached simulator throughput over the given specs (the
// memo cache is disabled, so every iteration re-simulates). It reports
// instrs/s — the repo's headline perf number — and allocation counts: the
// steady-state cycle loop is allocation-free, so allocs/op must stay flat as
// the per-iteration instruction count grows (what remains is per-simulation
// construction: caches, predictor tables, the window arena).
func benchRaw(b *testing.B, specs ...sim.RunSpec) {
	b.Helper()
	r := sim.NewRunner(sim.NoMemo())
	var instrs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			res, err := r.Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			instrs += res.Stats.Committed
		}
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkSimulatorRaw measures uncached simulator throughput: every
// iteration re-simulates the default D-KIP and the R10-64 baseline on one
// SpecFP and one SpecINT workload. This is the number the CI perf job gates
// against BENCH_baseline.json.
func BenchmarkSimulatorRaw(b *testing.B) {
	benchRaw(b, rawSpecs()...)
}

// BenchmarkSimulatorRawDKIP isolates D-KIP (core package) throughput.
func BenchmarkSimulatorRawDKIP(b *testing.B) {
	benchRaw(b, rawSpecs()[0])
}

// BenchmarkSimulatorRawOOO isolates out-of-order-baseline (ooo package)
// throughput.
func BenchmarkSimulatorRawOOO(b *testing.B) {
	benchRaw(b, rawSpecs()[1])
}

// BenchmarkRunnerCacheHit measures the memoized fast path: after the first
// iteration every Run is served as a deep-copied cache hit.
func BenchmarkRunnerCacheHit(b *testing.B) {
	r := sim.NewRunner()
	scale := benchScale()
	spec := sim.DKIPSpec("swim", core.Config{}, scale.Warmup, scale.Measure)
	if _, err := r.Run(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Cached {
			b.Fatal("expected a cache hit")
		}
	}
	if m := r.Metrics(); m.Simulated != 1 {
		b.Fatalf("simulated %d times, want 1", m.Simulated)
	}
}
