// Command bench emits a machine-readable throughput snapshot of the raw
// simulator: sustained instrs/s and allocation counts per architecture —
// the spec set the root harness's BenchmarkSimulatorRaw measures (default
// D-KIP on swim, R10-64 on mcf; memo cache disabled, so every iteration
// re-simulates) plus the in-order calibration core on swim.
//
// The snapshot is written as one labeled entry in a JSON file, so a single
// file can carry a trajectory:
//
//	go run ./cmd/bench -label pre-pr5  -out BENCH_PR5.json
//	go run ./cmd/bench -label post-pr5 -out BENCH_PR5.json
//
// Existing entries under other labels are preserved. BENCH_PR5.json at the
// repo root records the PR 5 before/after pair; CI regenerates a fresh
// snapshot per run and diffs its instrs/s against the published
// BENCH_baseline.json artifact (see .github/workflows/ci.yml and the README
// "Performance" section).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"dkip/internal/sim"
)

// archResult is one architecture's measurement.
type archResult struct {
	Bench        string  `json:"bench"`
	Iterations   int     `json:"iterations"`
	Instrs       uint64  `json:"instrs"`
	ElapsedNS    int64   `json:"elapsed_ns"`
	InstrsPerSec float64 `json:"instrs_per_sec"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	BytesPerOp   uint64  `json:"bytes_per_op"`
}

// snapshot is one labeled benchmark run.
type snapshot struct {
	GoVersion         string                `json:"go_version"`
	GOARCH            string                `json:"goarch"`
	Warmup            uint64                `json:"warmup"`
	Measure           uint64                `json:"measure"`
	Archs             map[string]archResult `json:"archs"`
	TotalInstrsPerSec float64               `json:"total_instrs_per_sec"`
}

func main() {
	out := flag.String("out", "BENCH_PR5.json", "snapshot file to create or update ('-' for stdout)")
	label := flag.String("label", "current", "entry name for this run within the snapshot file")
	iters := flag.Int("iters", 20, "simulation iterations per architecture")
	warmup := flag.Uint64("warmup", 5_000, "warmup instructions per simulation")
	measure := flag.Uint64("measure", 20_000, "measured instructions per simulation")
	flag.Parse()
	if *iters <= 0 || *measure == 0 {
		fmt.Fprintln(os.Stderr, "bench: -iters and -measure must be positive")
		os.Exit(2)
	}

	specs := map[string]sim.RunSpec{
		"dkip":    sim.MustPresetSpec("dkip", "swim", *warmup, *measure),
		"ooo":     sim.MustPresetSpec("r10-64", "mcf", *warmup, *measure),
		"inorder": sim.MustPresetSpec("inorder", "swim", *warmup, *measure),
	}

	snap := snapshot{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Warmup:    *warmup,
		Measure:   *measure,
		Archs:     make(map[string]archResult, len(specs)),
	}
	var totalInstrs uint64
	var totalElapsed time.Duration
	for _, name := range measureOrder(specs) {
		res, err := measureArch(specs[name], *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		snap.Archs[name] = res
		totalInstrs += res.Instrs
		totalElapsed += time.Duration(res.ElapsedNS)
	}
	snap.TotalInstrsPerSec = float64(totalInstrs) / totalElapsed.Seconds()

	if err := writeSnapshot(*out, *label, snap); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: %s: %.0f instrs/s over %d iterations\n",
		*label, snap.TotalInstrsPerSec, *iters)
}

// measureArch simulates spec iters times through an uncached runner,
// timing the whole batch and counting allocations around it.
func measureArch(spec sim.RunSpec, iters int) (archResult, error) {
	r := sim.NewRunner(sim.NoMemo())
	// One untimed priming run so one-time process costs (workload profile
	// registry, page faults on fresh heap) don't land in the first sample.
	if _, err := r.Run(spec); err != nil {
		return archResult{}, err
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var instrs uint64
	for i := 0; i < iters; i++ {
		res, err := r.Run(spec)
		if err != nil {
			return archResult{}, err
		}
		instrs += res.Stats.Committed
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return archResult{
		Bench:        spec.Bench,
		Iterations:   iters,
		Instrs:       instrs,
		ElapsedNS:    elapsed.Nanoseconds(),
		InstrsPerSec: float64(instrs) / elapsed.Seconds(),
		AllocsPerOp:  (after.Mallocs - before.Mallocs) / uint64(iters),
		BytesPerOp:   (after.TotalAlloc - before.TotalAlloc) / uint64(iters),
	}, nil
}

// writeSnapshot merges the labeled snapshot into the JSON file (or prints
// the whole file to stdout for "-").
func writeSnapshot(path, label string, snap snapshot) error {
	entries := map[string]snapshot{}
	if path != "-" {
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &entries); err != nil {
				return fmt.Errorf("existing %s is not a snapshot file: %w", path, err)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	entries[label] = snap
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// measureOrder returns the spec names in sorted order. Measuring in map
// iteration order would decide both the stderr log order and which arch
// warms the machine up for the other, making back-to-back snapshots subtly
// incomparable — the unsorted-map-feeding-output pattern dkipvet's
// determinism analyzer flags.
func measureOrder(specs map[string]sim.RunSpec) []string {
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
