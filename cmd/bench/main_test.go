package main

import (
	"sort"
	"testing"

	"dkip/internal/sim"
)

// Measurement order is sorted by arch name, never map iteration order —
// the determinism finding dkipvet pinned on the bench harness.
func TestMeasureOrderSorted(t *testing.T) {
	specs := map[string]sim.RunSpec{
		"ooo":  sim.MustPresetSpec("r10-64", "mcf", 10, 10),
		"dkip": sim.MustPresetSpec("dkip", "swim", 10, 10),
		"zeta": sim.MustPresetSpec("inorder", "swim", 10, 10),
	}
	for i := 0; i < 16; i++ {
		got := measureOrder(specs)
		if !sort.StringsAreSorted(got) || len(got) != len(specs) {
			t.Fatalf("measureOrder = %v, want all %d names sorted", got, len(specs))
		}
	}
}
