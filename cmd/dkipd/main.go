// Command dkipd is the sweep daemon: one long-lived process-wide sim.Runner
// (and optionally one persistent sim.Store) served over HTTP, so many
// clients — cmd/experiments -remote, curl, CI shards — share a single
// simulation backend instead of each invocation owning a private one.
// Identical in-flight submissions from different clients join the same
// singleflight simulation; anything resolved once is served from the memo
// cache or the store forever after.
//
// Usage:
//
//	dkipd                                   # serve on :8321, no persistence
//	dkipd -addr :9000 -parallel 8           # bound the simulation pool
//	dkipd -cache-dir /var/cache/dkip        # persistent content-addressed store
//	dkipd -max-requests 128 -wait-timeout 2m
//	dkipd -cache-dir /shared/dkip -advertise http://a:8321   # join the fleet membership
//
// Endpoints (see internal/serve): POST /v1/runs, GET /v1/runs/{key},
// GET /v1/results, GET /v1/metrics, GET /v1/members, GET /v1/progress,
// GET /metrics (Prometheus text exposition), GET /v1/healthz
// (constant-work liveness probe; never touches the runner or store).
//
// Several daemons form a fleet: cmd/experiments -remote http://a,http://b
// federates them through serve.Pool — every spec routes to one daemon by
// its content key, transient failures retry with backoff, and a daemon
// lost mid-sweep has its keys re-routed to the survivors. Daemons of one
// fleet may share a -cache-dir (writes are atomic and content-addressed),
// which makes re-routed keys disk hits instead of repeat simulations.
// With -advertise the daemon additionally registers a heartbeat lease in
// that shared store and serves the merged live view over GET /v1/members,
// so clients started with -remote-refresh discover daemons that join or
// leave mid-sweep without a restart; on SIGTERM the lease is withdrawn
// before draining.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains:
// in-flight submissions finish simulating and their write-behind store
// entries are flushed (both happen inside the request handler) before the
// process exits, bounded by -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dkip/internal/serve"
	"dkip/internal/sim"
)

func main() {
	var (
		addr        = flag.String("addr", ":8321", "listen address")
		parallel    = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir    = flag.String("cache-dir", "", "persistent result-store directory (shared with cmd/experiments -cache-dir)")
		maxRequests = flag.Int("max-requests", 64, "concurrently handled HTTP requests (independent of -parallel)")
		waitTimeout = flag.Duration("wait-timeout", time.Minute, "how long GET /v1/runs/{key}?wait=1 may block")
		drain       = flag.Duration("drain", 10*time.Minute, "shutdown grace period for in-flight simulations")
		advertise   = flag.String("advertise", "", "base URL peers reach this daemon at (e.g. http://a:8321); joins the fleet membership in -cache-dir and serves GET /v1/members")
		memberTTL   = flag.Duration("member-ttl", serve.DefaultMemberTTL, "membership lease lifetime; the heartbeat renews every TTL/3")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "dkipd: ", log.LstdFlags)

	opts := []sim.Option{sim.Parallel(*parallel)}
	var store *sim.Store
	if *cacheDir != "" {
		var err error
		store, err = sim.OpenStore(*cacheDir)
		if err != nil {
			logger.Fatal(err)
		}
		opts = append(opts, sim.WithStore(store))
		logger.Printf("persistent store at %s", *cacheDir)
	}
	runner := sim.NewRunner(opts...)

	sopts := []serve.ServerOption{
		serve.MaxRequests(*maxRequests),
		serve.WaitTimeout(*waitTimeout),
	}
	// Membership lives in the shared store: every daemon of a fleet writes
	// its heartbeat lease there, so any member can serve the merged view.
	var registry *serve.Registry
	if *advertise != "" {
		if store == nil {
			logger.Fatal("dkipd: -advertise requires -cache-dir (membership leases live in the fleet's shared store)")
		}
		registry = serve.NewRegistry(store, *advertise, *memberTTL)
		sopts = append(sopts, serve.WithMembers(registry.List))
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: serve.NewServer(runner, store, sopts...),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if registry != nil {
		stopBeat := registry.Heartbeat(func(err error) {
			logger.Printf("membership heartbeat: %v", err)
		})
		defer stopBeat()
		logger.Printf("advertising %s in the fleet membership (lease %v)", registry.Self(), *memberTTL)
	}

	errc := make(chan error, 1)
	go func() {
		logger.Printf("serving on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatal(err)
	case <-ctx.Done():
	}

	if registry != nil {
		// Withdraw the lease before draining: clients re-route this daemon's
		// keys on their next refresh instead of waiting out the TTL.
		if err := registry.Leave(); err != nil {
			logger.Printf("leave fleet: %v", err)
		}
	}
	logger.Printf("shutting down: draining in-flight simulations (up to %v)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	m := runner.Metrics()
	logger.Printf("done: %s", summarize(m))
}

// summarize renders the lifetime counters for the shutdown log line.
func summarize(m sim.Metrics) string {
	return fmt.Sprintf("%d requested, %d simulated, %d deduped, %d cache hits, %d disk hits, %d disk writes",
		m.Requested, m.Simulated, m.Deduped, m.CacheHits, m.DiskHits, m.DiskWrites)
}
