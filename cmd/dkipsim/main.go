// Command dkipsim runs one processor configuration on one workload and
// prints detailed statistics.
//
// Usage:
//
//	dkipsim -arch dkip -bench swim -n 200000
//	dkipsim -arch r10-64 -bench mcf
//	dkipsim -arch kilo -bench applu -l2 2097152
//	dkipsim -arch inorder -bench swim
//	dkipsim -arch limit -window 4096 -bench art
//	dkipsim -arch dkip -cp ino -mp ooo -mpq 40 -bench equake
//	dkipsim -arch dkip -bench swim -json
//	dkipsim -arch dkip -bench swim -cache-dir ~/.cache/dkip
//	dkipsim -list
//
// -arch takes a machine preset (sim.PresetNames: the paper machines plus the
// in-order calibration core), a bare engine name as printed in sim.Result
// records (sim.ParseArch: the engine with its paper-default configuration),
// or "limit" for the window-limit study core. The flags assemble one
// sim.RunSpec which executes through the same run-orchestration layer as
// cmd/experiments; -json prints the structured sim.Result record instead of
// the human-readable summary. -cache-dir shares cmd/experiments' persistent
// result store (a repeated run is served from disk); -shard i/n exits
// without simulating when the spec is not assigned to shard i — the building
// block for driving many dkipsim processes over a partitioned run matrix.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/sim"
	"dkip/internal/trace"
	"dkip/internal/workload"
)

func main() {
	var (
		arch      = flag.String("arch", "dkip", "machine preset ("+strings.Join(sim.PresetNames(), ", ")+"), engine name, or limit")
		bench     = flag.String("bench", "swim", "benchmark name (see -list)")
		n         = flag.Uint64("n", 200_000, "instructions to measure")
		warmup    = flag.Uint64("warmup", 20_000, "instructions to warm up (not measured)")
		l2        = flag.Int("l2", 512<<10, "L2 cache size in bytes")
		memLat    = flag.Int("memlat", 400, "main memory latency in cycles")
		window    = flag.Int("window", 2048, "ROB size for -arch limit")
		cpPol     = flag.String("cp", "ooo", "D-KIP Cache Processor scheduler: ooo or ino")
		mpPol     = flag.String("mp", "ino", "D-KIP Memory Processor scheduler: ooo or ino")
		cpq       = flag.Int("cpq", 40, "D-KIP CP issue-queue size")
		mpq       = flag.Int("mpq", 20, "D-KIP MP queue size")
		llib      = flag.Int("llib", 2048, "D-KIP LLIB entries (each)")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		verbose   = flag.Bool("v", false, "print extended statistics")
		jsonOut   = flag.Bool("json", false, "print the structured sim.Result record as JSON")
		traceFile = flag.String("trace", "", "drive the simulation from a binary trace file instead of -bench")
		cacheDir  = flag.String("cache-dir", "", "persistent result-store directory shared with cmd/experiments")
		shard     = flag.String("shard", "", "skip the run unless the spec falls in shard i of n (\"i/n\")")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks (SpecINT then SpecFP):")
		for _, name := range workload.Names() {
			p, _ := workload.Lookup(name)
			fmt.Printf("  %-10s %s\n", name, p.Suite)
		}
		return
	}

	mc := mem.DefaultConfig()
	mc.L2Size = *l2
	mc.MemLatency = *memLat
	var l2Set, memLatSet bool
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "l2":
			l2Set = true
		case "memlat":
			memLatSet = true
		}
	})

	// Assemble the RunSpec for the selected architecture.
	var spec sim.RunSpec
	switch name := strings.ToLower(*arch); name {
	case "limit":
		spec = sim.LimitSpec(*window, mc, *bench, *warmup, *n)
	case "dkip":
		spec = sim.MustPresetSpec("dkip", *bench, *warmup, *n)
		spec.DKIP.CPInOrder = *cpPol == "ino"
		spec.DKIP.MPInOrder = sim.Bool(*mpPol == "ino")
		spec.DKIP.CPIQSize = *cpq
		spec.DKIP.MPIQSize = *mpq
		spec.DKIP.LLIBSize = *llib
		spec.DKIP.Mem = mc
	default:
		s, err := sim.PresetSpec(name, *bench, *warmup, *n)
		if err != nil {
			// Not a preset: accept a bare engine name (as printed in
			// sim.Result records) with its paper-default configuration.
			a, perr := sim.ParseArch(name)
			if perr != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			s = sim.RunSpec{Arch: a, Bench: *bench, Warmup: *warmup, Measure: *n}
		}
		spec = s
		switch spec.Arch {
		case sim.ArchOOO:
			spec.OOO.Mem = mc
		case sim.ArchDKIP:
			spec.DKIP.Mem = mc
		case sim.ArchInorder:
			// The in-order preset's memory system (the SG2042 socket) is
			// part of the machine: override only what was explicitly
			// flagged.
			spec.Inorder.Mem = spec.Inorder.Mem.WithDefaults()
			if l2Set {
				spec.Inorder.Mem.L2Size = *l2
			}
			if memLatSet {
				spec.Inorder.Mem.MemLatency = *memLat
			}
		}
	}

	var res *sim.Result
	if *traceFile != "" {
		// Trace-driven runs bypass the Runner's workload registry (and
		// its cache — an arbitrary trace has no stable identity) and use
		// the low-level entry point.
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		g, err := trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec.Bench = g.Name()
		start := time.Now()
		st := sim.Simulate(spec, g, nil)
		res = &sim.Result{
			Arch: spec.Arch.String(), Config: spec.ConfigName(), Bench: g.Name(),
			Warmup: spec.Warmup, Measure: spec.Measure, Elapsed: time.Since(start), Stats: st,
		}
	} else {
		shardI, shardN, err := sim.ParseShard(*shard)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if !sim.InShard(spec, shardI, shardN) {
			fmt.Fprintf(os.Stderr, "dkipsim: %s not in shard %d/%d, skipping\n", spec.Label(), shardI, shardN)
			return
		}
		var opts []sim.Option
		if *cacheDir != "" {
			store, err := sim.OpenStore(*cacheDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			opts = append(opts, sim.WithStore(store))
		}
		res, err = sim.NewRunner(opts...).Run(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		if err := sim.WriteJSON(os.Stdout, []*sim.Result{res}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%s on %s: %s\n", res.Config, res.Bench, res.Stats)
	if *verbose {
		printVerbose(res.Stats)
	}
}

func printVerbose(st *pipeline.Stats) {
	fmt.Printf("  loads by level: L1=%d L2=%d MEM=%d\n", st.LoadLevel[0], st.LoadLevel[1], st.LoadLevel[2])
	fmt.Printf("  stalls: ROB=%d IQ=%d LSQ=%d\n", st.StallROBFull, st.StallIQFull, st.StallLSQFull)
	if st.CPCommitted+st.MPCommitted > 0 {
		fmt.Printf("  D-KIP: CP share=%.1f%% LLIB max instrs=%v max regs=%v\n",
			100*st.CPFraction(), st.MaxLLIBInstrs, st.MaxLLIBRegs)
		fmt.Printf("  D-KIP: analyze-wait stalls=%d LLIB-full stalls=%d checkpoints=%d recoveries=%d bank conflicts=%d\n",
			st.AnalyzeWaitStalls, st.LLIBFullStalls, st.Checkpoints, st.Recoveries, st.LLRFBankConflicts)
	}
	fmt.Printf("  decode->issue: mean=%.0f cycles, <100: %.1f%%, 300-500: %.1f%%, 700-900: %.1f%%\n",
		st.IssueLat.Mean(), 100*st.IssueLat.FracRange(0, 100),
		100*st.IssueLat.FracRange(300, 500), 100*st.IssueLat.FracRange(700, 900))
}
