// Command dkipvet is the repo's static-analysis multichecker: it runs the
// internal/lint suite (determinism, hotalloc, ctxhygiene, wirecheck,
// lockorder, goroleak, guardedstate) over the packages named on the command
// line and exits nonzero on any finding.
//
// Standalone (what CI runs):
//
//	go run ./cmd/dkipvet ./...
//	go run ./cmd/dkipvet -json ./...   # NDJSON diagnostics on stdout
//
// As a go vet tool (best-effort unitchecker protocol):
//
//	go vet -vettool=$(which dkipvet) ./...
//
// Exposition mode, sharing serve.LintExpositionAll with cmd/promlint:
//
//	curl -fsS http://localhost:8321/metrics | go run ./cmd/dkipvet promtext
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"dkip/internal/lint"
	"dkip/internal/serve"
)

func main() {
	args := os.Args[1:]
	// go vet probes its tool with -V=full and -flags before handing it a
	// .cfg file; -flags expects a JSON list of tool flags (we have none).
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			// The go command derives a cache key from this line and
			// requires a trailing buildID field; hash the binary itself
			// so the key changes when dkipvet does.
			h := sha256.New()
			if f, err := os.Open(os.Args[0]); err == nil {
				_, _ = io.Copy(h, f)
				f.Close()
			}
			fmt.Printf("dkipvet version devel buildID=%02x\n", h.Sum(nil))
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) > 0 && args[0] == "promtext" {
		os.Exit(promtext(os.Stdin))
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}
	// -json applies to the standalone mode only: one NDJSON object per
	// diagnostic on stdout ({file, line, analyzer, message}), nothing on a
	// clean run. It is deliberately not advertised to go vet via -flags —
	// the unitchecker path keeps the plain text protocol vet expects.
	asJSON := false
	rest := args[:0:0]
	for _, a := range args {
		if a == "-json" || a == "--json" {
			asJSON = true
			continue
		}
		rest = append(rest, a)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	os.Exit(standalone(rest, asJSON))
}

// jsonDiag is the machine-readable diagnostic shape -json emits, one object
// per line (NDJSON) so CI can archive and diff reports without parsing the
// human format.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// standalone loads packages through the go command and runs the full suite.
func standalone(patterns []string, asJSON bool) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkipvet: %v\n", err)
		return 2
	}
	pkgs, fset, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkipvet: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, fset, lint.All())
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonDiag{File: d.Pos.Filename, Line: d.Pos.Line, Analyzer: d.Analyzer, Message: d.Message}); err != nil {
				fmt.Fprintf(os.Stderr, "dkipvet: %v\n", err)
				return 2
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dkipvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// promtext lints a Prometheus exposition from r, printing one line per
// finding and a trailing count — the same gate cmd/promlint runs in CI.
func promtext(r io.Reader) int {
	diags, err := serve.LintExpositionAll(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkipvet: promtext: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Printf("stdin:%d: %s\n", d.Line, d.Msg)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dkipvet: promtext: %d problem(s)\n", len(diags))
		return 1
	}
	fmt.Println("dkipvet: promtext: exposition ok")
	return 0
}

// vetConfig is the subset of the cmd/vet .cfg file dkipvet consumes when
// run under `go vet -vettool`.
type vetConfig struct {
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool   // dependency unit: produce facts only, no diagnostics
	VetxOutput  string // where go vet expects the (empty) facts file
}

// vetUnit analyzes one compilation unit the way golang.org/x/tools'
// unitchecker does: type-check the unit's files against the export data the
// go command already compiled for its imports. Cross-package state is
// limited to the unit, so hotalloc/wirecheck see one package at a time
// here; the standalone mode (and CI) is the authoritative whole-repo run.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkipvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dkipvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The suite exports no cross-unit facts, but go vet still expects the
	// facts file to appear for every unit it schedules.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "dkipvet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency unit: diagnostics belong to the named packages
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dkipvet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkipvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &lint.Package{Path: cfg.ImportPath, Files: files, Pkg: tpkg, Info: info, Fset: fset}
	diags := lint.Run([]*lint.Package{pkg}, fset, lint.All())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
