// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -quick
//	experiments -run fig3 -csv
//	experiments -run fig9 -sample
//	experiments -run sampled -quick
//	experiments -run all -quick -json > artifact.json
//	experiments -run all -parallel 4
//	experiments -run all -cache-dir ~/.cache/dkip
//	experiments -run all -cache-dir /shared/dkip -shard 0/2
//	experiments -run fig9 -quick -remote http://localhost:8321
//	experiments -run all -quick -remote http://a:8321,http://b:8321
//	experiments -run all -remote http://a:8321,http://b:8321 -remote-fallback -cache-dir ~/.cache/dkip
//	experiments -run all -quick -remote http://a:8321,http://b:8321 -progress -client-id ci-shard-0
//
// Each experiment simulates every benchmark of the relevant suite(s) on the
// relevant architecture configurations and prints the same rows or series the
// paper reports, plus notes comparing against the paper's published numbers.
//
// All experiments share one sim.Runner: overlapping configurations across
// figures (e.g. the MEM-400 baselines of Figures 1/2/9/11/12) simulate
// exactly once per invocation, -parallel bounds the worker pool, and -json
// emits a machine-readable artifact holding every table, the structured
// per-run records, and the runner's dedup metrics.
//
// -sample replaces full-detail simulation with sampled simulation: a
// functional cursor warms caches and predictors between periodic detailed
// measurement intervals (default plan, roughly 10x less detailed work), and
// each run's artifact record carries the CPI confidence interval alongside
// the interval layout. The "sampled" experiment quantifies the error this
// introduces against full-detail runs over the Figure 9 grid.
//
// -cache-dir adds a persistent content-addressed result store under the
// in-process cache: a second invocation over the same directory simulates
// nothing. -shard i/n restricts real simulation to a deterministic,
// hash-stable 1/n slice of the run matrix so a full sweep can be split
// across processes or machines sharing one cache directory; tables rendered
// by a sharded run are incomplete (out-of-shard cells not already cached
// read as zeros) — run every shard, then render with an unsharded pass over
// the same -cache-dir.
//
// -remote http://host:port forwards every run to a dkipd daemon instead of
// simulating locally: the daemon owns the worker pool, cache tiers, and
// sharding, so -parallel/-shard are rejected alongside it — configure them
// on the daemon. A comma-separated list federates a fleet of daemons
// (serve.Pool): each run is routed to one daemon by its content key,
// transient failures retry with backoff, and a daemon lost mid-sweep has
// its keys re-routed to the survivors. With -remote-fallback the sweep
// finishes on a local runner even when every daemon is down; -cache-dir is
// only accepted alongside -remote in that combination (it backs the local
// failover runner — the daemons' stores are configured on dkipd).
//
// Fleet extras: -remote-refresh keeps the routing ring synced with the
// fleet's own membership view (daemons started with -advertise), so hosts
// joining or leaving mid-sweep are picked up without restarting the client;
// -client-id names the identity submissions carry for the daemons'
// fair-share admission (default host-pid); -progress streams a live
// done/total counter to stderr while each batch resolves.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dkip/internal/experiments"
	"dkip/internal/sample"
	"dkip/internal/serve"
	"dkip/internal/sim"
)

// artifact is the -json output document.
type artifact struct {
	Scale       experiments.Scale    `json:"scale"`
	Experiments []*experiments.Table `json:"experiments"`
	Runs        []*sim.Result        `json:"runs"`
	Metrics     sim.Metrics          `json:"metrics"`
}

func main() {
	var (
		run            = flag.String("run", "", "experiment id to run, or \"all\"")
		list           = flag.Bool("list", false, "list experiment ids")
		quick          = flag.Bool("quick", false, "reduced instruction counts (seconds instead of minutes)")
		csv            = flag.Bool("csv", false, "emit CSV tables instead of aligned text")
		jsonOut        = flag.Bool("json", false, "emit one JSON artifact: tables, per-run records, runner metrics")
		parallel       = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		warmup         = flag.Uint64("warmup", 0, "override warmup instructions per run")
		measure        = flag.Uint64("measure", 0, "override measured instructions per run")
		sampled        = flag.Bool("sample", false, "sampled simulation: functional warming with periodic detailed intervals (default plan, ~10x less detailed work)")
		cacheDir       = flag.String("cache-dir", "", "persistent result-store directory (warm-starts later invocations)")
		shard          = flag.String("shard", "", "simulate only shard i of n, as \"i/n\" (requires -cache-dir to be useful)")
		remote         = flag.String("remote", "", "comma-separated dkipd base URLs: one forwards every run to that daemon, several federate a fleet (key-routed, retrying)")
		remoteFallback = flag.Bool("remote-fallback", false, "with -remote: finish the sweep on a local runner (sharing -cache-dir) when every daemon is unreachable")
		remoteRefresh  = flag.Duration("remote-refresh", 15*time.Second, "with a -remote fleet: refresh the routing ring from the fleet's GET /v1/members view at this interval, discovering daemons that join or leave mid-sweep (0 pins the ring to the -remote list)")
		clientID       = flag.String("client-id", "", "client identity submissions carry (X-Dkip-Client header; default host-pid) — the bucket the daemons' fair-share admission divides gate slots by")
		progress       = flag.Bool("progress", false, "with -remote: stream live sweep progress (GET /v1/progress) to stderr")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("  %-20s %s\n", id, title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}
	if *csv && *jsonOut {
		fmt.Fprintln(os.Stderr, "experiments: -csv and -json are mutually exclusive")
		os.Exit(2)
	}

	scale := experiments.FullScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	if *warmup > 0 {
		scale.Warmup = *warmup
	}
	if *measure > 0 {
		scale.Measure = *measure
	}
	if *sampled {
		p := sample.DefaultPlan()
		scale.Sample = &p
	}

	var runner sim.Backend
	if *remoteFallback && *remote == "" {
		fmt.Fprintln(os.Stderr, "experiments: -remote-fallback requires -remote")
		os.Exit(2)
	}
	if *remote == "" && (*progress || *clientID != "") {
		fmt.Fprintln(os.Stderr, "experiments: -progress and -client-id require -remote")
		os.Exit(2)
	}
	if *remote != "" {
		// The daemons own the pool, cache tiers, and sharding; local
		// equivalents alongside -remote would silently do nothing.
		if *shard != "" || *parallel != 0 {
			fmt.Fprintln(os.Stderr, "experiments: -remote is exclusive with -parallel/-shard (configure those on dkipd)")
			os.Exit(2)
		}
		if *cacheDir != "" && !*remoteFallback {
			fmt.Fprintln(os.Stderr, "experiments: -cache-dir alongside -remote requires -remote-fallback (it backs the local failover runner; the daemons' stores are configured on dkipd)")
			os.Exit(2)
		}
		// The health handshake honors ^C: an operator waiting on a fleet
		// that is still booting can interrupt instead of riding out the
		// budget.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
		bases := strings.Split(*remote, ",")
		if len(bases) == 1 && !*remoteFallback {
			// The single-daemon path keeps PR-3 semantics: hard handshake,
			// plain Client.
			if err := serve.WaitHealthy(ctx, *remote, 5*time.Second); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runner = serve.NewClient(*remote, serve.Identity(*clientID))
		} else {
			popts := []serve.PoolOption{serve.PoolIdentity(*clientID)}
			if *remoteRefresh > 0 {
				popts = append(popts, serve.PoolMembership(*remoteRefresh))
			}
			if *remoteFallback {
				var fopts []sim.Option
				if *cacheDir != "" {
					store, err := sim.OpenStore(*cacheDir)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					fopts = append(fopts, sim.WithStore(store))
				}
				popts = append(popts, serve.PoolFallback(sim.NewRunner(fopts...)))
			}
			pool, err := serve.NewPool(bases, popts...)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if err := pool.WaitHealthy(ctx, 5*time.Second); err != nil {
				if !*remoteFallback {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "experiments: %v; continuing on the local fallback runner\n", err)
			}
			runner = pool
		}
		if *progress {
			// Watch the first listed daemon: every member sees fleet-wide
			// completion through the shared store, so one watch point is
			// enough.
			watch := serve.NewClient(strings.TrimSpace(bases[0]), serve.Identity(*clientID))
			runner = &progressBackend{Backend: runner, watch: watch}
		}
	} else {
		opts := []sim.Option{sim.Parallel(*parallel)}
		if *cacheDir != "" {
			store, err := sim.OpenStore(*cacheDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			opts = append(opts, sim.WithStore(store))
		}
		shardI, shardN, err := sim.ParseShard(*shard)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if shardN > 1 {
			opts = append(opts, sim.WithShard(shardI, shardN))
			fmt.Fprintf(os.Stderr, "experiments: shard %d/%d: out-of-shard runs are skipped; "+
				"tables are incomplete until an unsharded pass merges over the same -cache-dir\n",
				shardI, shardN)
		}
		runner = sim.NewRunner(opts...)
	}
	experiments.UseRunner(runner)

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	var tables []*experiments.Table
	for _, id := range ids {
		start := time.Now()
		t, err := experiments.RunWith(runner, id, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		switch {
		case *jsonOut:
			tables = append(tables, t)
		case *csv:
			fmt.Print(t.CSV())
		default:
			fmt.Print(t.String())
			fmt.Printf("(%s, %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(artifact{
			Scale:       scale,
			Experiments: tables,
			Runs:        runner.Results(),
			Metrics:     runner.Metrics(),
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *run == "all" {
		m := runner.Metrics()
		fmt.Fprintf(os.Stderr, "runner: %d runs requested, %d simulated, %d served by dedup/cache, %d from disk, %d skipped (out of shard)\n",
			m.Requested, m.Simulated, m.Deduped+m.CacheHits, m.DiskHits, m.Skipped)
		if m.DiskWrites > 0 && *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "runner: %d results persisted to %s\n", m.DiskWrites, *cacheDir)
		}
	}
}

// progressBackend decorates a remote Backend with a live progress line:
// while each RunAll batch resolves, a second goroutine streams
// GET /v1/progress for the batch's content keys from one daemon and rewrites
// a done/total counter on stderr. Stream failures are silent — progress is
// cosmetic, the submission path is the source of truth.
type progressBackend struct {
	sim.Backend
	watch *serve.Client
}

func (b *progressBackend) Run(spec sim.RunSpec) (*sim.Result, error) {
	results, err := b.RunAll([]sim.RunSpec{spec})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

func (b *progressBackend) RunAll(specs []sim.RunSpec) ([]*sim.Result, error) {
	keys := serve.ProgressKeys(specs)
	if len(keys) == 0 {
		return b.Backend.RunAll(specs)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = b.watch.Progress(ctx, keys, 0, func(ev serve.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "\rprogress: %d/%d runs resolved", ev.Done, ev.Total)
		})
	}()
	res, err := b.Backend.RunAll(specs)
	cancel()
	<-done
	fmt.Fprintln(os.Stderr)
	return res, err
}
