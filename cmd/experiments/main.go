// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -quick
//	experiments -run fig3 -csv
//
// Each experiment simulates every benchmark of the relevant suite(s) on the
// relevant architecture configurations and prints the same rows or series the
// paper reports, plus notes comparing against the paper's published numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dkip/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id to run, or \"all\"")
		list    = flag.Bool("list", false, "list experiment ids")
		quick   = flag.Bool("quick", false, "reduced instruction counts (seconds instead of minutes)")
		csv     = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		warmup  = flag.Uint64("warmup", 0, "override warmup instructions per run")
		measure = flag.Uint64("measure", 0, "override measured instructions per run")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("  %-20s %s\n", id, title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	scale := experiments.FullScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	if *warmup > 0 {
		scale.Warmup = *warmup
	}
	if *measure > 0 {
		scale.Measure = *measure
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		t, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
			fmt.Printf("(%s, %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
