// Command promlint validates a Prometheus text exposition (version 0.0.4)
// read from stdin — the gate CI holds a live daemon's GET /metrics output
// to:
//
//	curl -fsS http://localhost:8321/metrics | go run ./cmd/promlint
//
// It exits 0 when the exposition parses cleanly (well-formed HELP/TYPE
// comments, legal metric and label names, escaped label values, parseable
// sample values, no duplicate or interleaved families) and 1 with one
// line-numbered diagnostic per problem otherwise. The checks live in
// internal/serve.LintExpositionAll, shared with the package's own tests and
// with `dkipvet promtext`.
package main

import (
	"fmt"
	"os"

	"dkip/internal/serve"
)

func main() {
	diags, err := serve.LintExpositionAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "promlint: %s\n", d)
		}
		fmt.Fprintf(os.Stderr, "promlint: %d problem(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Println("promlint: exposition ok")
}
