// Command promlint validates a Prometheus text exposition (version 0.0.4)
// read from stdin — the gate CI holds a live daemon's GET /metrics output
// to:
//
//	curl -fsS http://localhost:8321/metrics | go run ./cmd/promlint
//
// It exits 0 when the exposition parses cleanly (well-formed HELP/TYPE
// comments, legal metric and label names, escaped label values, parseable
// sample values, no duplicate or interleaved families) and 1 with a
// line-numbered diagnostic otherwise. The checks live in
// internal/serve.LintExposition, shared with the package's own tests.
package main

import (
	"fmt"
	"os"

	"dkip/internal/serve"
)

func main() {
	if err := serve.LintExposition(os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("promlint: exposition ok")
}
