// Command workloads characterizes the synthetic SPEC2000 stand-ins: the
// instruction mix, branch behaviour, and cache behaviour each generator
// actually produces, measured rather than configured. Use it to audit the
// workload substitution documented in README.md ("Workload substitution")
// and in internal/workload's package comment.
//
//	workloads                  # characterize every benchmark
//	workloads -bench mcf       # one benchmark
//	workloads -n 500000        # more instructions per benchmark
//	workloads -dump out.trace -bench swim -n 100000   # capture a binary trace
package main

import (
	"flag"
	"fmt"
	"os"

	"dkip/internal/isa"
	"dkip/internal/mem"
	"dkip/internal/predictor"
	"dkip/internal/trace"
	"dkip/internal/workload"
)

func main() {
	var (
		bench = flag.String("bench", "", "benchmark to characterize (default: all)")
		n     = flag.Int("n", 200_000, "instructions to sample")
		dump  = flag.String("dump", "", "write the sampled stream to a binary trace file")
	)
	flag.Parse()

	names := workload.Names()
	if *bench != "" {
		names = []string{*bench}
	}

	if *dump != "" {
		if len(names) != 1 {
			fmt.Fprintln(os.Stderr, "-dump requires -bench")
			os.Exit(1)
		}
		g, err := workload.New(names[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Write(f, g, uint64(*n)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d instructions of %s to %s\n", *n, names[0], *dump)
		return
	}

	fmt.Printf("%-9s %-7s %6s %6s %6s %6s  %9s %8s %9s %9s\n",
		"bench", "suite", "load%", "store%", "br%", "chase%", "footprint", "mispred%", "L2miss/ki", "mem/ki")
	for _, name := range names {
		g, err := workload.New(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		characterize(g, *n)
	}
}

// characterize measures one benchmark: mix from the raw stream, prediction
// accuracy from the paper's perceptron, and miss traffic from the default
// hierarchy after prewarming.
func characterize(g *workload.Benchmark, n int) {
	p := g.Profile()
	hier := mem.NewHierarchy(mem.DefaultConfig())
	hier.Warm(g.WarmRanges())
	bp := predictor.NewStats(predictor.NewPerceptron(4096, 24))

	var mix trace.Mix
	for i := 0; i < n; i++ {
		in := g.Next()
		mix.Observe(in)
		switch in.Op {
		case isa.Load:
			hier.Access(in.Addr)
		case isa.Store:
			hier.Access(in.Addr)
		case isa.Branch:
			bp.Predict(in.PC)
			bp.Update(in.PC, in.Taken)
		}
	}

	l2miss := float64(hier.Count[mem.LevelMemory]) / float64(n) * 1000
	var l2access float64
	if l2 := hier.L2(); l2 != nil {
		l2access = float64(l2.Misses) / float64(n) * 1000
	}
	chase := 0.0
	if mix.Count[isa.Load] > 0 {
		chase = 100 * float64(mix.ChainLoads) / float64(mix.Count[isa.Load])
	}
	fmt.Printf("%-9s %-7s %6.1f %6.1f %6.1f %6.1f  %8.1fM %8.2f %9.2f %9.2f\n",
		g.Name(), p.Suite,
		100*mix.Frac(isa.Load), 100*mix.Frac(isa.Store), 100*mix.Frac(isa.Branch),
		chase,
		float64(p.FootprintBytes)/(1<<20),
		100*(1-bp.Accuracy()),
		l2access, l2miss)
}
