// Cachesweep: reproduce the cache-size tolerance result (Figures 11/12 and
// §4.4) on single benchmarks. A conventional R10-256 speeds up strongly as
// the L2 grows; the D-KIP, which hides misses in its LLIBs instead of
// stalling, barely cares on floating-point code.
//
//	go run ./examples/cachesweep
package main

import (
	"fmt"
	"log"

	"dkip/internal/mem"
	"dkip/internal/sim"
	"dkip/internal/workload"
)

func main() {
	sizes := []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}
	runner := sim.NewRunner()

	for _, bench := range []string{"apsi", "twolf"} {
		prof, _ := workload.Lookup(bench)
		fmt.Printf("%s (%s)\n", bench, prof.Suite)
		fmt.Printf("  %-10s", "L2 size")
		for _, s := range sizes {
			fmt.Printf("  %8dKB", s>>10)
		}
		fmt.Println()

		row := func(name string, spec func(l2 int) sim.RunSpec) (first, last float64) {
			fmt.Printf("  %-10s", name)
			for i, s := range sizes {
				res, err := runner.Run(spec(s))
				if err != nil {
					log.Fatal(err)
				}
				v := res.Stats.IPC()
				if i == 0 {
					first = v
				}
				last = v
				fmt.Printf("  %10.3f", v)
			}
			fmt.Println()
			return first, last
		}

		b0, b1 := row("R10-256", func(l2 int) sim.RunSpec {
			spec := sim.MustPresetSpec("r10-256", bench, 15_000, 80_000)
			spec.OOO.Mem = mem.DefaultConfig().WithL2Size(l2)
			return spec
		})
		d0, d1 := row("D-KIP", func(l2 int) sim.RunSpec {
			spec := sim.MustPresetSpec("dkip", bench, 15_000, 80_000)
			spec.DKIP.Mem = mem.DefaultConfig().WithL2Size(l2)
			return spec
		})
		fmt.Printf("  64KB->4MB speedup: R10-256 %.2fx, D-KIP %.2fx\n\n", b1/b0, d1/d0)
	}
}
