// Locality: visualize *execution locality*, the paper's central concept
// (Figure 3). On a machine with an effectively unlimited window and
// 400-cycle memory, the number of cycles an instruction waits between decode
// and issue is strongly bimodal: most issue almost immediately (high
// locality), a distinct population waits ~400 cycles for one cache miss, and
// a smaller one waits ~800 cycles for a chain of two misses (low locality).
//
//	go run ./examples/locality
package main

import (
	"fmt"
	"log"
	"strings"

	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/sim"
)

func main() {
	const bench = "equake"
	res, err := sim.NewRunner().Run(sim.LimitSpec(4096, mem.DefaultConfig(), bench, 20_000, 150_000))
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats

	fmt.Printf("decode -> issue distance, %s, unlimited window, 400-cycle memory\n\n", bench)
	h := &st.IssueLat
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo := i * pipeline.HistBucket
		frac := h.Frac(i)
		if frac < 0.001 {
			continue
		}
		bar := strings.Repeat("#", int(frac*120+0.5))
		fmt.Printf("  %5d-%-5d %5.1f%% %s\n", lo, lo+pipeline.HistBucket, 100*frac, bar)
	}
	fmt.Printf("\nhigh locality (<300 cycles): %5.1f%%   (paper: ~70%%)\n", 100*h.FracRange(0, 300))
	fmt.Printf("one miss      (300-500):     %5.1f%%   (paper: ~11%%)\n", 100*h.FracRange(300, 500))
	fmt.Printf("two misses    (700-900):     %5.1f%%   (paper: ~4%%)\n", 100*h.FracRange(700, 900))
	fmt.Println("\nthe D-KIP routes the first population to its Cache Processor and")
	fmt.Println("the rest through the LLIB to the Memory Processor.")
}
