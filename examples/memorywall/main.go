// Memorywall: reproduce the paper's motivating limit study (Figures 1 and 2)
// on a pair of benchmarks — how much IPC a conventional out-of-order core
// recovers as its instruction window grows, under increasingly distant
// memory. Floating-point code recovers almost everything with a kilo-entry
// window; pointer-chasing integer code does not.
//
//	go run ./examples/memorywall
package main

import (
	"fmt"
	"log"
	"strings"

	"dkip/internal/mem"
	"dkip/internal/sim"
	"dkip/internal/workload"
)

func main() {
	runner := sim.NewRunner()
	windows := []int{32, 64, 128, 256, 512, 1024, 2048, 4096}
	configs := []mem.Config{
		mem.Table1Configs()[0], // L1-2: perfect L1
		mem.Table1Configs()[4], // MEM-400
	}

	for _, bench := range []string{"applu", "mcf"} {
		p, _ := workload.Lookup(bench)
		fmt.Printf("%s (%s)\n", bench, p.Suite)
		for _, mc := range configs {
			fmt.Printf("  %-8s ", mc.Name)
			var peak float64
			ipcs := make([]float64, len(windows))
			for i, w := range windows {
				res, err := runner.Run(sim.LimitSpec(w, mc, bench, 10_000, 60_000))
				if err != nil {
					log.Fatal(err)
				}
				ipcs[i] = res.Stats.IPC()
				if ipcs[i] > peak {
					peak = ipcs[i]
				}
			}
			for i, w := range windows {
				bar := strings.Repeat("#", int(ipcs[i]/4*20+0.5))
				fmt.Printf("\n    window %-5d %.3f %s", w, ipcs[i], bar)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("note how MEM-400 converges toward the perfect-L1 curve for the FP code")
	fmt.Println("but stays depressed for mcf, whose pointer chains serialize the misses.")
}
