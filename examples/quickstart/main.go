// Quickstart: build the paper's default D-KIP-2048, run a memory-bound
// floating-point workload on it, and compare against the R10-64 baseline
// (which is identical to the D-KIP's Cache Processor running alone).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dkip/internal/core"
	"dkip/internal/ooo"
	"dkip/internal/workload"
)

func main() {
	const bench = "swim" // SPEC2000's classic bandwidth-bound stencil code
	const warmup, measure = 20_000, 200_000

	// The baseline: a MIPS R10000-class out-of-order core with a 64-entry
	// reorder buffer. Every off-chip miss (400 cycles) stalls it.
	g := workload.MustNew(bench)
	base := ooo.New(ooo.R10K64())
	base.Hierarchy().Warm(g.WarmRanges())
	baseStats := base.Run(g, warmup, measure)

	// The D-KIP: same Cache Processor, but low-locality slices step aside
	// into the LLIB and execute later on the in-order Memory Processor,
	// giving the machine a multi-thousand-instruction effective window.
	g = workload.MustNew(bench)
	dkip := core.New(core.Config{})
	dkip.Hierarchy().Warm(g.WarmRanges())
	dkipStats := dkip.Run(g, warmup, measure)

	fmt.Printf("workload: %s (%d instructions measured)\n\n", bench, measure)
	fmt.Printf("  R10-64    IPC %.3f   (%4.1f%% of loads go to memory)\n",
		baseStats.IPC(), 100*baseStats.MemoryLoadFrac())
	fmt.Printf("  D-KIP     IPC %.3f   speedup %.2fx\n\n",
		dkipStats.IPC(), dkipStats.IPC()/baseStats.IPC())
	fmt.Printf("the Cache Processor retired %.1f%% of instructions directly;\n", 100*dkipStats.CPFraction())
	fmt.Printf("the rest took the LLIB -> Memory Processor path\n")
	fmt.Printf("(peak LLIB occupancy: %d int / %d fp instructions, %d/%d LLRF registers)\n",
		dkipStats.MaxLLIBInstrs[0], dkipStats.MaxLLIBInstrs[1],
		dkipStats.MaxLLIBRegs[0], dkipStats.MaxLLIBRegs[1])
}
