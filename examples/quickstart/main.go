// Quickstart: run a memory-bound floating-point workload on the paper's
// default D-KIP-2048 and compare against the R10-64 baseline (which is
// identical to the D-KIP's Cache Processor running alone) and the dual-issue
// in-order calibration core. Machines are named presets of the
// run-orchestration layer — no model package is imported.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dkip/internal/sim"
)

func main() {
	const bench = "swim" // SPEC2000's classic bandwidth-bound stencil code
	const warmup, measure = 20_000, 200_000

	// Three machines on the same workload, through the same runner every
	// experiment uses (caches warmed from the workload's profile; identical
	// specs would simulate once).
	specs := []sim.RunSpec{
		// A dual-issue in-order core: every off-chip miss serializes at the
		// issue-queue head.
		sim.MustPresetSpec("inorder", bench, warmup, measure),
		// The baseline: a MIPS R10000-class out-of-order core with a
		// 64-entry reorder buffer. Every off-chip miss (400 cycles) stalls
		// it once the window fills.
		sim.MustPresetSpec("r10-64", bench, warmup, measure),
		// The D-KIP: same Cache Processor, but low-locality slices step
		// aside into the LLIB and execute later on the in-order Memory
		// Processor, giving a multi-thousand-instruction effective window.
		sim.MustPresetSpec("dkip", bench, warmup, measure),
	}
	results, err := sim.NewRunner().RunAll(specs)
	if err != nil {
		log.Fatal(err)
	}
	c920, base, dkip := results[0].Stats, results[1].Stats, results[2].Stats

	fmt.Printf("workload: %s (%d instructions measured)\n\n", bench, measure)
	fmt.Printf("  %-9s IPC %.3f\n", results[0].Config, c920.IPC())
	fmt.Printf("  %-9s IPC %.3f   (%4.1f%% of loads go to memory)\n",
		results[1].Config, base.IPC(), 100*base.MemoryLoadFrac())
	fmt.Printf("  %-9s IPC %.3f   speedup %.2fx over R10-64\n\n",
		results[2].Config, dkip.IPC(), dkip.IPC()/base.IPC())
	fmt.Printf("the Cache Processor retired %.1f%% of instructions directly;\n", 100*dkip.CPFraction())
	fmt.Printf("the rest took the LLIB -> Memory Processor path\n")
	fmt.Printf("(peak LLIB occupancy: %d int / %d fp instructions, %d/%d LLRF registers)\n",
		dkip.MaxLLIBInstrs[0], dkip.MaxLLIBInstrs[1],
		dkip.MaxLLIBRegs[0], dkip.MaxLLIBRegs[1])
}
