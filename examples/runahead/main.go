// Runahead: compare the paper's related-work alternative (runahead
// execution, Mutlu et al.) against the D-KIP on two workloads with opposite
// characters. Runahead prefetches the independent misses it finds under a
// blocking miss but throws the work away; the D-KIP executes the same slices
// for real. On pointer-chasing code neither trick fully works — but runahead
// cannot even prefetch (the addresses depend on the missing data), which is
// exactly the argument for real kilo-instruction windows.
//
//	go run ./examples/runahead
package main

import (
	"fmt"
	"log"

	"dkip/internal/sim"
	"dkip/internal/workload"
)

func main() {
	const warmup, measure = 15_000, 80_000
	runner := sim.NewRunner()
	ipc := func(spec sim.RunSpec) float64 {
		res, err := runner.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		return res.Stats.IPC()
	}

	for _, bench := range []string{"applu", "mcf"} {
		prof, _ := workload.Lookup(bench)
		fmt.Printf("%s (%s)\n", bench, prof.Suite)

		base := sim.MustPresetSpec("r10-64", bench, warmup, measure)
		fmt.Printf("  %-22s IPC %.3f\n", "R10-64", ipc(base))

		ra := sim.MustPresetSpec("r10-64", bench, warmup, measure)
		ra.OOO.RunaheadDepth = 256
		fmt.Printf("  %-22s IPC %.3f\n", "R10-64 + runahead", ipc(ra))

		dkip := sim.MustPresetSpec("dkip", bench, warmup, measure)
		fmt.Printf("  %-22s IPC %.3f\n\n", "D-KIP-2048", ipc(dkip))
	}
	fmt.Println("runahead recovers part of the gap on streaming code (prefetching),")
	fmt.Println("almost none on pointer chains; the D-KIP executes the slices for real.")
}
