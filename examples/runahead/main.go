// Runahead: compare the paper's related-work alternative (runahead
// execution, Mutlu et al.) against the D-KIP on two workloads with opposite
// characters. Runahead prefetches the independent misses it finds under a
// blocking miss but throws the work away; the D-KIP executes the same slices
// for real. On pointer-chasing code neither trick fully works — but runahead
// cannot even prefetch (the addresses depend on the missing data), which is
// exactly the argument for real kilo-instruction windows.
//
//	go run ./examples/runahead
package main

import (
	"fmt"

	"dkip/internal/core"
	"dkip/internal/ooo"
	"dkip/internal/workload"
)

func main() {
	const warmup, measure = 15_000, 80_000

	for _, bench := range []string{"applu", "mcf"} {
		prof, _ := workload.Lookup(bench)
		fmt.Printf("%s (%s)\n", bench, prof.Suite)

		base := ooo.R10K64()
		fmt.Printf("  %-22s IPC %.3f\n", "R10-64", runOOO(base, bench, warmup, measure))

		ra := ooo.R10K64()
		ra.RunaheadDepth = 256
		fmt.Printf("  %-22s IPC %.3f\n", "R10-64 + runahead", runOOO(ra, bench, warmup, measure))

		g := workload.MustNew(bench)
		p := core.New(core.Config{})
		p.Hierarchy().Warm(g.WarmRanges())
		fmt.Printf("  %-22s IPC %.3f\n\n", "D-KIP-2048", p.Run(g, warmup, measure).IPC())
	}
	fmt.Println("runahead recovers part of the gap on streaming code (prefetching),")
	fmt.Println("almost none on pointer chains; the D-KIP executes the slices for real.")
}

func runOOO(cfg ooo.Config, bench string, warmup, measure uint64) float64 {
	g := workload.MustNew(bench)
	p := ooo.New(cfg)
	p.Hierarchy().Warm(g.WarmRanges())
	return p.Run(g, warmup, measure).IPC()
}
