module dkip

go 1.22
