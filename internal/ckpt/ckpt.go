// Package ckpt defines architectural checkpoints for sampled simulation: a
// serializable snapshot of the state that functional warmup establishes —
// cache contents, branch-predictor tables, the confidence estimator, and the
// generator cursor — everything a detailed measurement interval needs to
// start as if the whole stream prefix had been simulated, without replaying
// it.
//
// Checkpoints are deliberately microarchitecture-free: no pipeline, window,
// or queue state is captured, because sampled intervals re-fill those
// structures during their detailed-warmup instructions (see internal/sample).
// That is what lets machines that differ only in window or queue geometry
// share checkpoints: the snapshot is a pure function of (workload prefix,
// memory configuration, predictor configuration).
//
// The binary codec (Encode/Decode) is versioned and exact — every field is an
// integer, so a restored engine replays bit-for-bit identically to one warmed
// in place. That exactness is what the CI checkpoint-determinism gate relies
// on: resuming a killed sweep from stored checkpoints must reproduce the
// from-cold artifact byte for byte.
package ckpt

import (
	"dkip/internal/isa"
	"dkip/internal/mem"
	"dkip/internal/predictor"
	"dkip/internal/trace"
)

// Checkpoint is the architectural state at a stream position.
type Checkpoint struct {
	// Bench names the workload whose stream Pos indexes into. Restore does
	// not interpret it; it travels with the snapshot so mismatched reuse is
	// detectable.
	Bench string
	// Pos is the generator cursor: the number of instructions consumed from
	// the start of the stream. Because generators are deterministic, the
	// cursor alone reconstructs the stream suffix (Reset + skip).
	Pos uint64
	// Hier is the cache contents (tags, valid bits, LRU clocks).
	Hier mem.HierarchyState
	// PredName identifies the predictor the Pred snapshot came from, as a
	// guard against restoring e.g. gshare state into a perceptron.
	PredName string
	// Pred is the predictor's Stateful snapshot.
	Pred []byte
	// Conf is the confidence estimator's snapshot, or nil when the engine
	// family has no estimator (the out-of-order baselines).
	Conf []byte
}

// WarmFunctional advances the architectural state by n instructions of g
// without simulating any pipeline: loads and stores walk the cache
// hierarchy, branches train the predictor (and confidence estimator, when
// present), everything else is skipped. The predictor sees exactly the
// Predict/Update sequence the detailed fetch stages issue, so functionally
// warmed state is indistinguishable from detailed-run state.
func WarmFunctional(h *mem.Hierarchy, bp predictor.Predictor, conf *predictor.Confidence, g trace.Generator, n uint64) {
	for i := uint64(0); i < n; i++ {
		in := g.Next()
		switch in.Op {
		case isa.Load, isa.Store:
			h.Access(in.Addr)
		case isa.Branch:
			pred := bp.Predict(in.PC)
			bp.Update(in.PC, in.Taken)
			if conf != nil {
				conf.Update(in.PC, pred == in.Taken)
			}
		}
	}
}
