package ckpt

import (
	"encoding/binary"
	"fmt"
	"math"

	"dkip/internal/mem"
)

// Binary checkpoint format, version 1. Everything is little-endian:
//
//	header:  magic "DKCP" | version u32 | pos u64
//	strings: bench (u32 len + bytes) | predictor name (u32 len + bytes)
//	blobs:   predictor state (u32 len + bytes)
//	         confidence state (presence u8, then u32 len + bytes when 1)
//	caches:  L1 then L2, each: presence u8, then
//	         size u32 | line u32 | assoc u32 | clock u64 | ways u32 |
//	         tags ways×u64 | valid ways×u8 | lru ways×u64
//
// The format is self-describing enough for Decode to fail loudly on
// truncation, corruption, or a version it does not speak — the store may
// hold checkpoints written by an older binary.
const (
	ckptMagic   = "DKCP"
	ckptVersion = 1

	// maxSection caps any single length prefix; a corrupt header must not
	// drive a multi-gigabyte allocation.
	maxSection = 1 << 28
)

// Encode serializes a checkpoint.
func Encode(c *Checkpoint) []byte {
	b := make([]byte, 0, encodedSize(c))
	b = append(b, ckptMagic...)
	b = binary.LittleEndian.AppendUint32(b, ckptVersion)
	b = binary.LittleEndian.AppendUint64(b, c.Pos)
	b = appendBytes(b, []byte(c.Bench))
	b = appendBytes(b, []byte(c.PredName))
	b = appendBytes(b, c.Pred)
	if c.Conf != nil {
		b = append(b, 1)
		b = appendBytes(b, c.Conf)
	} else {
		b = append(b, 0)
	}
	b = appendCache(b, c.Hier.L1)
	b = appendCache(b, c.Hier.L2)
	return b
}

func encodedSize(c *Checkpoint) int {
	n := 4 + 4 + 8 + 4 + len(c.Bench) + 4 + len(c.PredName) + 4 + len(c.Pred) + 1 + 4 + len(c.Conf) + 2
	for _, cs := range []*mem.CacheState{c.Hier.L1, c.Hier.L2} {
		if cs != nil {
			n += 4*4 + 8 + len(cs.Tags)*17
		}
	}
	return n
}

func appendBytes(b, data []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(data)))
	return append(b, data...)
}

func appendCache(b []byte, cs *mem.CacheState) []byte {
	if cs == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.LittleEndian.AppendUint32(b, uint32(cs.Size))
	b = binary.LittleEndian.AppendUint32(b, uint32(cs.Line))
	b = binary.LittleEndian.AppendUint32(b, uint32(cs.Assoc))
	b = binary.LittleEndian.AppendUint64(b, cs.Clock)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cs.Tags)))
	for _, t := range cs.Tags {
		b = binary.LittleEndian.AppendUint64(b, t)
	}
	for _, v := range cs.Valid {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	for _, l := range cs.LRU {
		b = binary.LittleEndian.AppendUint64(b, l)
	}
	return b
}

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) fail(format string, args ...interface{}) error {
	return fmt.Errorf("ckpt: "+format, args...)
}

func (d *decoder) need(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.data) {
		return nil, d.fail("truncated at byte %d (need %d of %d)", d.pos, n, len(d.data))
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

func (d *decoder) u8() (byte, error) {
	b, err := d.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) blob() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if n > maxSection {
		return nil, d.fail("implausible section length %d", n)
	}
	b, err := d.need(int(n))
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

func (d *decoder) cache() (*mem.CacheState, error) {
	present, err := d.u8()
	if err != nil {
		return nil, err
	}
	if present == 0 {
		return nil, nil
	}
	size, err := d.u32()
	if err != nil {
		return nil, err
	}
	line, err := d.u32()
	if err != nil {
		return nil, err
	}
	assoc, err := d.u32()
	if err != nil {
		return nil, err
	}
	clock, err := d.u64()
	if err != nil {
		return nil, err
	}
	ways, err := d.u32()
	if err != nil {
		return nil, err
	}
	if ways > maxSection/17 {
		return nil, d.fail("implausible cache way count %d", ways)
	}
	if size > math.MaxInt32 || line > math.MaxInt32 || assoc > math.MaxInt32 {
		return nil, d.fail("implausible cache geometry %d/%d/%d", size, line, assoc)
	}
	cs := &mem.CacheState{
		Size:  int(size),
		Line:  int(line),
		Assoc: int(assoc),
		Clock: clock,
		Tags:  make([]uint64, ways),
		Valid: make([]bool, ways),
		LRU:   make([]uint64, ways),
	}
	for i := range cs.Tags {
		if cs.Tags[i], err = d.u64(); err != nil {
			return nil, err
		}
	}
	raw, err := d.need(int(ways))
	if err != nil {
		return nil, err
	}
	for i, v := range raw {
		cs.Valid[i] = v != 0
	}
	for i := range cs.LRU {
		if cs.LRU[i], err = d.u64(); err != nil {
			return nil, err
		}
	}
	return cs, nil
}

// Decode deserializes a checkpoint written by Encode. It validates magic,
// version, and internal structure, but not that the state fits any
// particular engine — restore does that.
func Decode(data []byte) (*Checkpoint, error) {
	d := &decoder{data: data}
	magic, err := d.need(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != ckptMagic {
		return nil, d.fail("bad magic %q", magic)
	}
	version, err := d.u32()
	if err != nil {
		return nil, err
	}
	if version != ckptVersion {
		return nil, d.fail("unsupported version %d (speak %d)", version, ckptVersion)
	}
	c := &Checkpoint{}
	if c.Pos, err = d.u64(); err != nil {
		return nil, err
	}
	bench, err := d.blob()
	if err != nil {
		return nil, err
	}
	c.Bench = string(bench)
	name, err := d.blob()
	if err != nil {
		return nil, err
	}
	c.PredName = string(name)
	if c.Pred, err = d.blob(); err != nil {
		return nil, err
	}
	present, err := d.u8()
	if err != nil {
		return nil, err
	}
	if present != 0 {
		if c.Conf, err = d.blob(); err != nil {
			return nil, err
		}
	}
	if c.Hier.L1, err = d.cache(); err != nil {
		return nil, err
	}
	if c.Hier.L2, err = d.cache(); err != nil {
		return nil, err
	}
	if d.pos != len(d.data) {
		return nil, d.fail("%d trailing bytes", len(d.data)-d.pos)
	}
	return c, nil
}
