package ckpt

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"dkip/internal/mem"
)

// sampleCheckpoint builds a fully-populated checkpoint: both cache levels,
// predictor and confidence blobs.
func sampleCheckpoint() *Checkpoint {
	mk := func(ways int, seed uint64) *mem.CacheState {
		cs := &mem.CacheState{
			Size: 32 * 1024, Line: 64, Assoc: 4, Clock: 99 + seed,
			Tags:  make([]uint64, ways),
			Valid: make([]bool, ways),
			LRU:   make([]uint64, ways),
		}
		for i := range cs.Tags {
			cs.Tags[i] = seed + uint64(i)*3
			cs.Valid[i] = i%2 == 0
			cs.LRU[i] = seed ^ uint64(i)
		}
		return cs
	}
	return &Checkpoint{
		Bench:    "mcf",
		Pos:      123456,
		Hier:     mem.HierarchyState{L1: mk(8, 7), L2: mk(16, 11)},
		PredName: "perceptron",
		Pred:     []byte{1, 2, 3, 4, 5},
		Conf:     []byte{9, 8},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for name, c := range map[string]*Checkpoint{
		"full":    sampleCheckpoint(),
		"no-conf": func() *Checkpoint { c := sampleCheckpoint(); c.Conf = nil; return c }(),
		"no-l2":   func() *Checkpoint { c := sampleCheckpoint(); c.Hier.L2 = nil; return c }(),
		"minimal": {Bench: "", PredName: "static", Pred: []byte{}},
	} {
		data := Encode(c)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(c, got) {
			t.Errorf("%s: round trip mismatch\nin:  %+v\nout: %+v", name, c, got)
		}
	}
}

// TestCodecDeterministic pins byte-determinism: identical checkpoints encode
// to identical bytes (content-keyed storage and the CI artifact diff both
// depend on it).
func TestCodecDeterministic(t *testing.T) {
	a, b := Encode(sampleCheckpoint()), Encode(sampleCheckpoint())
	if !bytes.Equal(a, b) {
		t.Error("two encodings of one checkpoint differ")
	}
}

// TestDecodeRejectsCorruption truncates the valid encoding at every length
// and flips the header fields: every case must return an error, never panic
// or silently succeed.
func TestDecodeRejectsCorruption(t *testing.T) {
	data := Encode(sampleCheckpoint())
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", n, len(data))
		}
	}
	if _, err := Decode(append(append([]byte{}, data...), 0)); err == nil {
		t.Error("trailing byte decoded cleanly")
	}
	bad := append([]byte{}, data...)
	copy(bad, "JUNK")
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic decoded cleanly")
	}
	bad = append([]byte{}, data...)
	binary.LittleEndian.PutUint32(bad[4:], ckptVersion+1)
	if _, err := Decode(bad); err == nil {
		t.Error("future version decoded cleanly")
	}
	// A hostile length prefix (bench length) must be rejected before any
	// allocation that size.
	bad = append([]byte{}, data...)
	binary.LittleEndian.PutUint32(bad[16:], maxSection+1)
	if _, err := Decode(bad); err == nil {
		t.Error("implausible section length decoded cleanly")
	}
}
