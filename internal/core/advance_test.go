package core

import (
	"testing"

	"dkip/internal/isa"
)

// Mirrors of the ooo package's advanceCycle tests for the D-KIP: same
// idle-skip contract, plus the core-specific candidates (the Analyze-stage
// aging deadline) and the checkpoint-stack drain on an empty slow path.

func advTestProcessor() *Processor {
	return New(DefaultConfig())
}

func TestAdvanceCycleDidWork(t *testing.T) {
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = true
	p.ev.Schedule(500, 1)
	p.advanceCycle()
	if p.cycle != 11 {
		t.Fatalf("cycle = %d after work, want 11", p.cycle)
	}
}

func TestAdvanceCycleIdleSkipsToNextEvent(t *testing.T) {
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = false
	p.ev.Schedule(100, 1)
	p.advanceCycle()
	if p.cycle != 100 {
		t.Fatalf("cycle = %d, want skip to 100", p.cycle)
	}
}

func TestAdvanceCycleDueCandidateOverridesFutureOne(t *testing.T) {
	// A due fetch head must pin the machine to the next cycle even though
	// the completion event is far out — and vice versa.
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = false
	p.ev.Schedule(100, 1)
	p.fq[0] = fetchEntry{ready: 5}
	p.fqHead, p.fqLen = 0, 1
	p.advanceCycle()
	if p.cycle != 11 {
		t.Fatalf("cycle = %d, want 11 (fq head already due)", p.cycle)
	}

	p = advTestProcessor()
	p.cycle = 10
	p.didWork = false
	p.ev.Schedule(11, 1)
	p.fq[0] = fetchEntry{ready: 100}
	p.fqHead, p.fqLen = 0, 1
	p.advanceCycle()
	if p.cycle != 11 {
		t.Fatalf("cycle = %d, want 11 (event already due)", p.cycle)
	}
}

func TestAdvanceCycleSkipsToAnalyzeDeadline(t *testing.T) {
	// An instruction waiting out the Aging-ROB timer is a wake-up source:
	// the skip must stop at its aging deadline.
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = false
	e := p.win.Alloc(0, isa.Instr{Op: isa.IntALU, Dest: isa.IntReg(1)}, 1)
	e.RenameCycle = 8
	p.renameSeq = 1
	p.analyzeSeq = 0
	p.ev.Schedule(500, 2)
	p.advanceCycle()
	want := int64(8 + p.cfg.ROBTimer)
	if p.cycle != want {
		t.Fatalf("cycle = %d, want aging deadline %d", p.cycle, want)
	}
}

func TestAdvanceCycleDrainsCheckpointsWhenSlowPathEmpty(t *testing.T) {
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = true
	p.ckptSeqs = append(p.ckptSeqs, 1, 2)
	p.ckptDepth = 2
	p.advanceCycle()
	if p.ckptDepth != 0 || len(p.ckptSeqs) != 0 {
		t.Fatalf("checkpoint stack not drained: depth %d, %d seqs", p.ckptDepth, len(p.ckptSeqs))
	}
}

func TestAdvanceCycleDeadlockPanics(t *testing.T) {
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = false
	p.fetchStalled = true
	defer func() {
		if recover() == nil {
			t.Fatal("stall with no pending events must panic")
		}
	}()
	p.advanceCycle()
}
