package core

import (
	"testing"

	"dkip/internal/engine"
	"dkip/internal/isa"
)

// Mirrors of the ooo package's advanceCycle tests for the D-KIP: same
// idle-skip contract, plus the core-specific candidates (the Analyze-stage
// aging deadline) and the checkpoint-stack drain on an empty slow path.

func advTestProcessor() *Processor {
	return New(DefaultConfig())
}

func TestAdvanceCycleDidWork(t *testing.T) {
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = true
	p.EV.Schedule(500, 1)
	p.AdvanceCycle()
	if p.Cycle != 11 {
		t.Fatalf("cycle = %d after work, want 11", p.Cycle)
	}
}

func TestAdvanceCycleIdleSkipsToNextEvent(t *testing.T) {
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = false
	p.EV.Schedule(100, 1)
	p.AdvanceCycle()
	if p.Cycle != 100 {
		t.Fatalf("cycle = %d, want skip to 100", p.Cycle)
	}
}

func TestAdvanceCycleDueCandidateOverridesFutureOne(t *testing.T) {
	// A due fetch head must pin the machine to the next cycle even though
	// the completion event is far out — and vice versa.
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = false
	p.EV.Schedule(100, 1)
	p.FQ[0] = engine.FetchEntry{Ready: 5}
	p.FQHead, p.FQLen = 0, 1
	p.AdvanceCycle()
	if p.Cycle != 11 {
		t.Fatalf("cycle = %d, want 11 (fq head already due)", p.Cycle)
	}

	p = advTestProcessor()
	p.Cycle = 10
	p.DidWork = false
	p.EV.Schedule(11, 1)
	p.FQ[0] = engine.FetchEntry{Ready: 100}
	p.FQHead, p.FQLen = 0, 1
	p.AdvanceCycle()
	if p.Cycle != 11 {
		t.Fatalf("cycle = %d, want 11 (event already due)", p.Cycle)
	}
}

func TestAdvanceCycleSkipsToAnalyzeDeadline(t *testing.T) {
	// An instruction waiting out the Aging-ROB timer is a wake-up source:
	// the skip must stop at its aging deadline.
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = false
	e := p.Win.Alloc(0, isa.Instr{Op: isa.IntALU, Dest: isa.IntReg(1)}, 1)
	e.RenameCycle = 8
	p.RenameSeq = 1
	p.analyzeSeq = 0
	p.EV.Schedule(500, 2)
	p.AdvanceCycle()
	want := int64(8 + p.cfg.ROBTimer)
	if p.Cycle != want {
		t.Fatalf("cycle = %d, want aging deadline %d", p.Cycle, want)
	}
}

func TestEndCycleDrainsCheckpointsWhenSlowPathEmpty(t *testing.T) {
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = true
	p.ckptSeqs = append(p.ckptSeqs, 1, 2)
	p.ckptDepth = 2
	p.EndCycle(nil)
	p.AdvanceCycle()
	if p.ckptDepth != 0 || len(p.ckptSeqs) != 0 {
		t.Fatalf("checkpoint stack not drained: depth %d, %d seqs", p.ckptDepth, len(p.ckptSeqs))
	}
}

func TestAdvanceCycleDeadlockPanics(t *testing.T) {
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = false
	p.FetchStalled = true
	defer func() {
		if recover() == nil {
			t.Fatal("stall with no pending events must panic")
		}
	}()
	p.AdvanceCycle()
}
