package core

import (
	"runtime"
	"testing"

	"dkip/internal/workload"
)

// TestSteadyStateAllocationFree is the D-KIP counterpart of the ooo
// package's test: after warmup, the Analyze/extract/issue loop — including
// LLIB rings, LLRF accounting, MP reservation stations, and the completion
// event heap — must not allocate per committed instruction. The default
// configuration runs the Memory Processors in order (ring FIFO); the second
// case forces the Cache Processor in order too, and the third runs both MPs
// out of order so the wakeup heaps are exercised.
func TestSteadyStateAllocationFree(t *testing.T) {
	cpInOrder := DefaultConfig()
	cpInOrder.Name = "DKIP-CPIO"
	cpInOrder.CPInOrder = true
	mpOOO := DefaultConfig()
	mpOOO.Name = "DKIP-MPOOO"
	mpOOO.MPInOrder = Bool(false)
	cases := []struct {
		name  string
		cfg   Config
		bench string
	}{
		{"default-fp", DefaultConfig(), "swim"},
		{"default-int", DefaultConfig(), "mcf"},
		{"cp-inorder", cpInOrder, "swim"},
		{"mp-ooo", mpOOO, "swim"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := workload.MustNew(c.bench)
			p := New(c.cfg)
			p.Hierarchy().Warm(g.WarmRanges())
			p.Run(g, 30_000, 30_000) // reach structural steady state
			const chunk = 10_000
			// A few throwaway chunks let per-entry Consumers slices finish
			// discovering their high-water capacities.
			for i := 0; i < 5; i++ {
				p.Run(g, 0, chunk)
			}
			avg := testing.AllocsPerRun(3, func() {
				p.Run(g, 0, chunk)
			})
			// Each Run call copies its Stats once (the returned snapshot),
			// and Consumers slices keep a stochastic straggler tail: a
			// producer outstanding for hundreds of cycles can collect a
			// record consumer count for its window slot, and with the MP
			// out of order the window spans thousands of slots. Those
			// doubling growths decay logarithmically per slot; nothing may
			// scale with chunk.
			if perInstr := avg / chunk; perInstr > 0.005 {
				t.Errorf("steady state allocates %.4f objects per committed instruction (%.0f per %d-instruction chunk), want ~0",
					perInstr, avg, chunk)
			}
		})
	}
}

// TestLongRunMemoryBounded runs the D-KIP for two million instructions after
// warmup and checks that neither heap churn nor dead-prefix retention grows
// allocated bytes with run length (the LLIB FIFOs and checkpoint stack used
// to reslice their heads away while appending into the same backing array).
func TestLongRunMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-instruction run")
	}
	g := workload.MustNew("swim")
	p := New(DefaultConfig())
	p.Hierarchy().Warm(g.WarmRanges())
	p.Run(g, 100_000, 100_000)

	const instrs = 2_000_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	p.Run(g, 0, instrs)
	runtime.GC()
	runtime.ReadMemStats(&after)

	perInstr := float64(after.TotalAlloc-before.TotalAlloc) / float64(instrs)
	if perInstr > 1 {
		t.Errorf("long run allocated %.3f bytes per instruction (total %d over %d instrs), want ~0",
			perInstr, after.TotalAlloc-before.TotalAlloc, instrs)
	}
	bound := p.Win.Capacity() * 2
	for _, llib := range []*LLIB{p.llibInt, p.llibFP} {
		if c := llib.fifo.Cap(); c > bound {
			t.Errorf("LLIB ring grew to %d slots (window %d): capacity scales with run length", c, p.Win.Capacity())
		}
	}
	if c := cap(p.ckptSeqs); c > 4*p.cfg.CheckpointStackSize {
		t.Errorf("checkpoint stack backing grew to %d (stack size %d)", c, p.cfg.CheckpointStackSize)
	}
}
