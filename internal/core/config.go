// Package core implements the paper's primary contribution: the Decoupled
// KILO-Instruction Processor (D-KIP).
//
// The D-KIP splits execution by *execution locality*. A small out-of-order
// Cache Processor (CP) runs high-locality code — instructions that issue
// shortly after decode because they depend only on cache hits. Instructions
// that (transitively) depend on an off-chip memory access are detected by the
// Analyze stage at the head of the CP's Aging-ROB and moved, with their one
// READY operand captured into the banked Low Locality Register File (LLRF),
// into a FIFO Low Locality Instruction Buffer (LLIB) — one for integer and
// one for floating-point code. When the long-latency load a slice depends on
// completes (its value held by the Address Processor's per-LLIB value FIFO),
// the slice drains from the LLIB head into a simple Future-File Memory
// Processor (MP) and executes there. Recovery across the two levels uses a
// checkpoint stack written through the Architectural Writers Log.
//
// The result is an effective window of thousands of instructions with no
// out-of-order structure larger than the CP's 40-entry queues — the paper's
// headline claim, reproduced by the benchmarks in this repository's root
// bench_test.go.
package core

import (
	"fmt"

	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/predictor"
)

// Config describes one D-KIP instance. The zero value of most fields selects
// the paper's defaults (Tables 2 and 3).
type Config struct {
	// Name labels the configuration in reports (e.g. "DKIP-2048").
	Name string

	// Widths; zero defaults to 4, the paper's fetch/decode/analyze width.
	FetchWidth, RenameWidth, AnalyzeWidth int
	// CPIssueWidth is the Cache Processor's issue width (default 4).
	CPIssueWidth int
	// MPIssueWidth is each Memory Processor's issue width (default 4,
	// the MP decode width of Table 2).
	MPIssueWidth int

	// FrontEndDepth is fetch-to-rename latency (default 5 cycles).
	FrontEndDepth int
	// RedirectPenalty is the extra cost of a CP-side branch recovery
	// (rename stack / ROB recovery; default 1 cycle on top of refill).
	RedirectPenalty int
	// RecoveryPenalty is the additional cost when a low-locality branch
	// resolves mispredicted in the MP and a checkpoint must be restored
	// (default 8 cycles).
	RecoveryPenalty int

	// ROBTimer is the Aging-ROB delay: instructions are analyzed this
	// many cycles after rename (default 16; must cover the L2 tag probe).
	ROBTimer int
	// ROBSize is the Aging-ROB capacity (default ROBTimer × commit
	// width = 64, as in the paper).
	ROBSize int

	// CPIQSize is the capacity of each CP issue queue (default 40,
	// Table 3). CPInOrder selects the cheap in-order scheduler studied
	// in Figure 10.
	CPIQSize  int
	CPInOrder bool

	// LLIBSize is the capacity of each Low Locality Instruction Buffer
	// (default 2048, Table 2). LLIBRate is the insertion and extraction
	// rate in instructions per cycle (default 4).
	LLIBSize, LLIBRate int

	// LLRFBanks and LLRFBankSize describe the banked Low Locality
	// Register File (default 8 banks × 256 registers, Table 2).
	LLRFBanks, LLRFBankSize int
	// IdealLLRF disables LLRF capacity limits and bank conflicts — the
	// ablation comparing the banked design against ideal storage.
	IdealLLRF bool

	// MPIQSize is the reservation-station capacity of each Memory
	// Processor (default 20, Table 3). MPInOrder selects in-order issue
	// (the default, per Table 3's "MP Scheduler In-Order").
	MPIQSize  int
	MPInOrder *bool // nil = in-order (paper default)

	// SingleLLIB merges the integer and FP LLIBs and Memory Processors
	// into one of each — the ablation quantifying how much of the D-KIP's
	// FP advantage comes from the dual-pipe organization (§4.2).
	SingleLLIB bool

	// LSQSize is the Address Processor's load/store queue (default 512).
	LSQSize int
	// MemPorts is the number of global cache ports shared by the CP and
	// MPs (default 2, Table 2).
	MemPorts int
	// MSHRs bounds outstanding off-chip misses across the whole machine
	// (miss status holding registers in the Address Processor). Zero
	// means unlimited, the paper's assumption; the "ablation-mshr"
	// experiment shows how much memory-level parallelism the D-KIP's
	// effective window actually demands.
	MSHRs int

	// CheckpointStride is the minimum number of analyzed instructions
	// between checkpoints (default 64).
	CheckpointStride int
	// CheckpointStackSize bounds live recovery points (default 8); when
	// the stack is full the oldest checkpoint is dropped, coarsening any
	// later rollback.
	CheckpointStackSize int
	// CheckpointOnLowConf also anchors a checkpoint whenever a branch
	// predicted with low confidence is analyzed — the policy of Akkary
	// et al. [12] referenced by the paper's checkpointing discussion.
	CheckpointOnLowConf bool
	// ReplayRecovery charges checkpoint recoveries for re-dispatching
	// the correct-path instructions between the restored checkpoint and
	// the mispredicted branch, instead of a flat penalty. Used by the
	// checkpoint-policy ablation.
	ReplayRecovery bool

	// IdealAnalyze removes the Analyze-stage stall that waits for
	// short-latency instructions to write back (§3.2 reports the stall
	// costs ~0.7% IPC) — the ablation for that design choice.
	IdealAnalyze bool

	// CPFU and MPFU give the functional-unit complements. Zero values
	// mean Table 2's: CP gets 4 ALU/1 IMul/4 FPAdd/1 FPMulDiv; each MP
	// gets the same class mix (the integer MP uses the integer units,
	// the FP MP the FP units).
	CPFU, MPFU pipeline.FUConfig

	// Mem is the memory hierarchy (default Table 2/3's MEM-400 with a
	// 512KB L2).
	Mem mem.Config

	// NewPredictor builds the front-end branch predictor (default the
	// perceptron predictor of Table 2).
	// Function fields cannot be serialized: they are excluded from JSON
	// (the serve layer's wire format) just as the content hash skips them.
	NewPredictor func() predictor.Predictor `json:"-"`
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.FetchWidth, 4)
	def(&c.RenameWidth, 4)
	def(&c.AnalyzeWidth, 4)
	def(&c.CPIssueWidth, 4)
	def(&c.MPIssueWidth, 4)
	def(&c.FrontEndDepth, 5)
	def(&c.RedirectPenalty, 1)
	def(&c.RecoveryPenalty, 8)
	def(&c.ROBTimer, 16)
	def(&c.ROBSize, c.ROBTimer*4)
	def(&c.CPIQSize, 40)
	def(&c.LLIBSize, 2048)
	def(&c.LLIBRate, 4)
	def(&c.LLRFBanks, 8)
	def(&c.LLRFBankSize, 256)
	def(&c.MPIQSize, 20)
	def(&c.LSQSize, 512)
	def(&c.MemPorts, 2)
	def(&c.CheckpointStride, 64)
	def(&c.CheckpointStackSize, 8)
	if c.MPInOrder == nil {
		t := true
		c.MPInOrder = &t
	}
	if c.CPFU == (pipeline.FUConfig{}) {
		c.CPFU = pipeline.DefaultFUConfig()
	}
	if c.MPFU == (pipeline.FUConfig{}) {
		c.MPFU = pipeline.DefaultFUConfig()
	}
	if c.Mem.L1Latency == 0 {
		c.Mem = mem.DefaultConfig()
	}
	if c.NewPredictor == nil {
		c.NewPredictor = func() predictor.Predictor {
			return predictor.NewPerceptron(4096, 24)
		}
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("DKIP-%d", c.LLIBSize)
	}
	return c
}

// WithDefaults returns the configuration with every zero field replaced by
// the paper's default. core.New applies it implicitly; internal/sim applies
// it before hashing so that a zero Config and an explicitly spelled-out
// default Config describe (and memoize as) the same machine.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ROBSize < c.ROBTimer {
		return fmt.Errorf("core: %s: ROB (%d) smaller than the aging timer (%d) cannot hold aging instructions",
			c.Name, c.ROBSize, c.ROBTimer)
	}
	if c.LLIBSize <= 0 || c.LLIBRate <= 0 {
		return fmt.Errorf("core: %s: LLIB size/rate must be positive", c.Name)
	}
	if c.LLRFBanks <= 0 || c.LLRFBankSize <= 0 {
		return fmt.Errorf("core: %s: LLRF geometry must be positive", c.Name)
	}
	return nil
}

// Bool is a helper for the MPInOrder pointer field.
func Bool(v bool) *bool { return &v }

// DefaultConfig returns the paper's baseline D-KIP-2048: Table 2's invariant
// parameters with Table 3's defaults (40-entry out-of-order CP queues,
// 20-entry in-order MPs, 2048-entry LLIBs, 512KB L2, 400-cycle memory).
func DefaultConfig() Config {
	return Config{Name: "DKIP-2048"}.withDefaults()
}
