package core

import (
	"testing"

	"dkip/internal/isa"
	"dkip/internal/mem"
	"dkip/internal/ooo"
	"dkip/internal/pipeline"
	"dkip/internal/trace"
	"dkip/internal/workload"
)

// synth generates synthetic instruction streams for targeted tests.
type synth struct {
	label string
	next  func(i uint64) isa.Instr
	n     uint64
}

func (s *synth) Next() isa.Instr { in := s.next(s.n); s.n++; return in }
func (s *synth) Name() string    { return s.label }
func (s *synth) Reset()          { s.n = 0 }

// hitOnly is a stream of cache-friendly work: everything is high locality.
func hitOnly() trace.Generator {
	return &synth{label: "hits", next: func(i uint64) isa.Instr {
		if i%6 == 0 {
			return isa.Instr{PC: 0x1000, Op: isa.Load, Dest: isa.IntReg(2),
				Src1: isa.IntReg(0), Src2: isa.RegNone, Addr: 0x9000_0000 + (i%64)*8}
		}
		return isa.Instr{PC: 0x1000 + (i%6)*4, Op: isa.IntALU,
			Dest: isa.IntReg(int(3 + i%8)), Src1: isa.IntReg(0), Src2: isa.RegNone}
	}}
}

// missSlices produces an independent miss every 16 instructions, each with a
// two-instruction dependent slice — classic low-locality slices.
func missSlices() trace.Generator {
	return &synth{label: "slices", next: func(i uint64) isa.Instr {
		switch i % 16 {
		case 0:
			return isa.Instr{PC: 0x2000, Op: isa.Load, Dest: isa.IntReg(2),
				Src1: isa.IntReg(0), Src2: isa.RegNone, Addr: 0x1000_0000 + i*64}
		case 1: // consumer of the miss with one ready operand
			return isa.Instr{PC: 0x2004, Op: isa.IntALU, Dest: isa.IntReg(20),
				Src1: isa.IntReg(2), Src2: isa.IntReg(1)}
		case 2: // second-level consumer
			return isa.Instr{PC: 0x2008, Op: isa.IntALU, Dest: isa.IntReg(21),
				Src1: isa.IntReg(20), Src2: isa.RegNone}
		default:
			return isa.Instr{PC: 0x2010 + (i%16)*4, Op: isa.IntALU,
				Dest: isa.IntReg(int(4 + i%8)), Src1: isa.IntReg(0), Src2: isa.RegNone}
		}
	}}
}

func runDKIP(t *testing.T, cfg Config, g trace.Generator, n uint64) (*Processor, *pipeline.Stats) {
	t.Helper()
	p := New(cfg)
	st := p.Run(g, 0, n)
	return p, st
}

func TestHighLocalityNeverUsesLLIB(t *testing.T) {
	// A perfect L1 guarantees no access is ever long-latency.
	_, st := runDKIP(t, Config{Mem: mem.Table1Configs()[0]}, hitOnly(), 20000)
	if st.MPCommitted != 0 {
		t.Errorf("MP committed %d instructions on a hit-only stream", st.MPCommitted)
	}
	if st.MaxLLIBInstrs[0] != 0 || st.MaxLLIBInstrs[1] != 0 {
		t.Errorf("LLIB used on hit-only stream: %v", st.MaxLLIBInstrs)
	}
	if st.CPFraction() != 1 {
		t.Errorf("CP fraction %v, want 1", st.CPFraction())
	}
	if ipc := st.IPC(); ipc < 2.5 {
		t.Errorf("hit-only IPC = %.2f, too low", ipc)
	}
}

func TestMissSlicesFlowThroughLLIB(t *testing.T) {
	_, st := runDKIP(t, Config{}, missSlices(), 20000)
	if st.MPCommitted == 0 {
		t.Fatal("no instructions took the LLIB->MP path")
	}
	if st.MaxLLIBInstrs[0] == 0 {
		t.Error("integer LLIB never occupied")
	}
	if st.MaxLLIBRegs[0] == 0 {
		t.Error("no LLRF registers allocated despite ready operands in slices")
	}
	// Every commit is counted exactly once.
	if st.CPCommitted+st.MPCommitted != st.Committed {
		t.Errorf("CP %d + MP %d != committed %d", st.CPCommitted, st.MPCommitted, st.Committed)
	}
	// The window must beat the R10-64-equivalent on this MLP stream.
	base := ooo.New(ooo.R10K64())
	bst := base.Run(missSlices(), 0, 20000)
	if st.IPC() < 1.5*bst.IPC() {
		t.Errorf("D-KIP (%.3f) should far exceed R10-64 (%.3f) on independent miss slices",
			st.IPC(), bst.IPC())
	}
}

func TestCommitConservation(t *testing.T) {
	for _, g := range []trace.Generator{hitOnly(), missSlices()} {
		// Commit may overshoot the target by less than one cycle's
		// worth of retirement bandwidth.
		_, st := runDKIP(t, Config{}, g, 15000)
		if st.Committed < 15000 || st.Committed > 15000+16 {
			t.Errorf("%s: committed %d, want ~15000", g.Name(), st.Committed)
		}
		if st.CPCommitted+st.MPCommitted != st.Committed {
			t.Errorf("%s: commit split %d+%d != %d", g.Name(),
				st.CPCommitted, st.MPCommitted, st.Committed)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *pipeline.Stats {
		g := workload.MustNew("equake")
		p := New(Config{})
		p.Hierarchy().Warm(g.WarmRanges())
		return p.Run(g, 5000, 20000)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.MPCommitted != b.MPCommitted {
		t.Errorf("nondeterministic D-KIP: %+v vs %+v", a.Cycles, b.Cycles)
	}
}

func TestLLRFBalance(t *testing.T) {
	p, _ := runDKIP(t, Config{}, missSlices(), 20000)
	// After the run some slices may still be in flight, but allocation
	// must never exceed capacity and must roughly drain.
	if p.llrfInt.Allocated < 0 {
		t.Error("negative LLRF occupancy")
	}
	if p.llrfInt.Allocated > p.cfg.LLRFBanks*p.cfg.LLRFBankSize {
		t.Error("LLRF over-allocated")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := DefaultConfig()
	if c.ROBSize != 64 || c.ROBTimer != 16 {
		t.Errorf("Aging-ROB defaults wrong: %d/%d", c.ROBSize, c.ROBTimer)
	}
	if c.CPIQSize != 40 || c.MPIQSize != 20 {
		t.Errorf("queue defaults wrong: %d/%d", c.CPIQSize, c.MPIQSize)
	}
	if c.LLIBSize != 2048 || c.LLIBRate != 4 {
		t.Errorf("LLIB defaults wrong: %d/%d", c.LLIBSize, c.LLIBRate)
	}
	if c.LLRFBanks != 8 || c.LLRFBankSize != 256 {
		t.Errorf("LLRF defaults wrong: %d/%d", c.LLRFBanks, c.LLRFBankSize)
	}
	if c.LSQSize != 512 || c.MemPorts != 2 {
		t.Errorf("AP defaults wrong: %d/%d", c.LSQSize, c.MemPorts)
	}
	if !*c.MPInOrder || c.CPInOrder {
		t.Error("schedulers should default to OoO CP, in-order MP")
	}
	if c.Name != "DKIP-2048" {
		t.Errorf("name %q", c.Name)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Config{ROBTimer: 32, ROBSize: 16}
	if err := bad.withDefaults().Validate(); err == nil {
		t.Error("ROB smaller than timer should be invalid")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New with invalid config should panic")
			}
		}()
		New(Config{LLIBSize: -1})
	}()
}

func TestInOrderCPWorks(t *testing.T) {
	_, ino := runDKIP(t, Config{CPInOrder: true}, missSlices(), 15000)
	_, o3 := runDKIP(t, Config{}, missSlices(), 15000)
	if ino.Committed < 15000 {
		t.Fatal("in-order CP did not complete")
	}
	if o3.IPC() < ino.IPC() {
		t.Errorf("OoO CP (%.3f) should not lose to in-order CP (%.3f)", o3.IPC(), ino.IPC())
	}
}

func TestSingleLLIBWorks(t *testing.T) {
	g := workload.MustNew("equake")
	p := New(Config{SingleLLIB: true})
	p.Hierarchy().Warm(g.WarmRanges())
	st := p.Run(g, 5000, 20000)
	if st.Committed < 20000 {
		t.Fatal("single-LLIB run did not complete")
	}
	if st.MaxLLIBInstrs[1] != 0 {
		t.Error("FP LLIB used in single-LLIB mode")
	}
}

func TestIdealAnalyzeNoWaitStalls(t *testing.T) {
	// Real workloads have in-flight short-latency instructions at the
	// Aging-ROB head (L2 hits, FU-delayed chains); the missSlices
	// synthetic does not, so use a benchmark here.
	run := func(cfg Config) *pipeline.Stats {
		g := workload.MustNew("swim")
		p := New(cfg)
		p.Hierarchy().Warm(g.WarmRanges())
		return p.Run(g, 5000, 20000)
	}
	st := run(Config{IdealAnalyze: true})
	if st.AnalyzeWaitStalls != 0 {
		t.Errorf("ideal analyze recorded %d wait stalls", st.AnalyzeWaitStalls)
	}
	base := run(Config{})
	if base.AnalyzeWaitStalls == 0 {
		t.Error("baseline analyze should record wait stalls")
	}
	// The paper reports the stall costs only ~0.7% IPC; removing it can
	// perturb timing in either direction, but the effect must stay small.
	if r := st.IPC() / base.IPC(); r < 0.92 || r > 1.08 {
		t.Errorf("ideal analyze (%.3f) deviates too much from baseline (%.3f)",
			st.IPC(), base.IPC())
	}
}

func TestIdealLLRFNoConflicts(t *testing.T) {
	_, st := runDKIP(t, Config{IdealLLRF: true}, missSlices(), 15000)
	if st.LLRFBankConflicts != 0 {
		t.Errorf("ideal LLRF recorded %d conflicts", st.LLRFBankConflicts)
	}
}

func TestLLIBFullStall(t *testing.T) {
	// A tiny LLIB must fill and stall Analyze on a slice-heavy stream.
	_, st := runDKIP(t, Config{LLIBSize: 16}, missSlices(), 15000)
	if st.Committed < 15000 {
		t.Fatal("tiny-LLIB run did not complete")
	}
	if st.MaxLLIBInstrs[0] > 16 {
		t.Errorf("LLIB occupancy %d exceeded capacity 16", st.MaxLLIBInstrs[0])
	}
}

func TestCheckpointsTaken(t *testing.T) {
	p, st := runDKIP(t, Config{}, missSlices(), 30000)
	if st.Checkpoints == 0 {
		t.Error("no checkpoints taken on a slice-producing stream")
	}
	if p.MaxCheckpointDepth() == 0 {
		t.Error("checkpoint stack never occupied")
	}
}

func TestLLBVBounded(t *testing.T) {
	p, _ := runDKIP(t, Config{}, missSlices(), 30000)
	if got := p.LLBVCount(); got < 0 || got > isa.NumRegs {
		t.Errorf("LLBV count %d out of range", got)
	}
}

func TestMispredictedLowLocalityBranchRecovers(t *testing.T) {
	// Branches depending on missing loads with noisy outcomes: each
	// mispredict must resolve via the MP with a checkpoint recovery.
	g := &synth{label: "mbr", next: func(i uint64) isa.Instr {
		switch i % 12 {
		case 0:
			return isa.Instr{PC: 0x3000, Op: isa.Load, Dest: isa.IntReg(2),
				Src1: isa.IntReg(0), Src2: isa.RegNone, Addr: 0x1000_0000 + i*64}
		case 1:
			return isa.Instr{PC: 0x3004, Op: isa.Branch, Dest: isa.RegNone,
				Src1: isa.IntReg(2), Src2: isa.RegNone, Taken: i%24 == 1}
		default:
			return isa.Instr{PC: 0x3010 + (i%12)*4, Op: isa.IntALU,
				Dest: isa.IntReg(int(4 + i%8)), Src1: isa.IntReg(0), Src2: isa.RegNone}
		}
	}}
	_, st := runDKIP(t, Config{}, g, 20000)
	if st.Recoveries == 0 {
		t.Error("no checkpoint recoveries despite mispredicting low-locality branches")
	}
	if st.Committed != 20000 {
		t.Error("run did not complete")
	}
}

func TestWarmupExcluded(t *testing.T) {
	g := workload.MustNew("swim")
	p := New(Config{})
	p.Hierarchy().Warm(g.WarmRanges())
	st := p.Run(g, 8000, 12000)
	if st.Committed < 12000 || st.Committed > 12000+16 {
		t.Errorf("measured committed = %d", st.Committed)
	}
}

func TestBoolHelper(t *testing.T) {
	if !*Bool(true) || *Bool(false) {
		t.Error("Bool helper wrong")
	}
}
