package core

import (
	"testing"

	"dkip/internal/kilo"
	"dkip/internal/mem"
	"dkip/internal/ooo"
	"dkip/internal/pipeline"
	"dkip/internal/workload"
)

// archIPC runs one architecture over a suite; dkip selects the D-KIP,
// otherwise the provided ooo config is used.
func archIPC(t *testing.T, suite workload.Suite, dkip *Config, oc *ooo.Config) float64 {
	t.Helper()
	names := workload.SuiteNames(suite)
	var sum float64
	for _, name := range names {
		g := workload.MustNew(name)
		var st *pipeline.Stats
		if dkip != nil {
			p := New(*dkip)
			p.Hierarchy().Warm(g.WarmRanges())
			st = p.Run(g, 8000, 30000)
		} else {
			p := ooo.New(*oc)
			p.Hierarchy().Warm(g.WarmRanges())
			st = p.Run(g, 8000, 30000)
		}
		sum += st.IPC()
	}
	return sum / float64(len(names))
}

// TestFigure9Orderings asserts the headline result's orderings: dramatic
// D-KIP gains on SpecFP over both R10 baselines, D-KIP ahead of KILO-1024 on
// SpecFP, and a near-tie on SpecINT.
func TestFigure9Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r64 := ooo.R10K64()
	r256 := ooo.R10K256()
	k := kilo.Config1024()
	d := Config{}

	dkipFP := archIPC(t, workload.SpecFP, &d, nil)
	r64FP := archIPC(t, workload.SpecFP, nil, &r64)
	r256FP := archIPC(t, workload.SpecFP, nil, &r256)
	kiloFP := archIPC(t, workload.SpecFP, nil, &k)

	if dkipFP < 2*r64FP {
		t.Errorf("D-KIP FP (%.3f) should be at least 2x R10-64 (%.3f); paper: 1.88x", dkipFP, r64FP)
	}
	if dkipFP < 1.3*r256FP {
		t.Errorf("D-KIP FP (%.3f) should clearly beat R10-256 (%.3f); paper: 1.40x", dkipFP, r256FP)
	}
	if dkipFP <= kiloFP {
		t.Errorf("D-KIP FP (%.3f) should edge out KILO-1024 (%.3f); paper: 2.37 vs 2.23", dkipFP, kiloFP)
	}
	if r256FP <= r64FP {
		t.Errorf("R10-256 (%.3f) should beat R10-64 (%.3f)", r256FP, r64FP)
	}

	dkipINT := archIPC(t, workload.SpecINT, &d, nil)
	kiloINT := archIPC(t, workload.SpecINT, nil, &k)
	r64INT := archIPC(t, workload.SpecINT, nil, &r64)
	if dkipINT < r64INT {
		t.Errorf("D-KIP INT (%.3f) should not lose to R10-64 (%.3f)", dkipINT, r64INT)
	}
	// The paper has KILO 4% ahead on SpecINT; we accept a near-tie in
	// either direction (see EXPERIMENTS.md).
	if ratio := dkipINT / kiloINT; ratio < 0.85 || ratio > 1.20 {
		t.Errorf("D-KIP INT (%.3f) and KILO INT (%.3f) should be a near-tie", dkipINT, kiloINT)
	}
	// The INT gains must be visibly smaller than the FP gains.
	if (dkipINT/r64INT)*1.2 > dkipFP/r64FP {
		t.Errorf("FP speedup (%.2fx) should far exceed INT speedup (%.2fx)",
			dkipFP/r64FP, dkipINT/r64INT)
	}
}

// TestChasePrefersSLIQ: on mcf, the KILO's out-of-order slow lane must beat
// the D-KIP's FIFO LLIBs — the paper's explanation for the SpecINT gap.
func TestChasePrefersSLIQ(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	g := workload.MustNew("mcf")
	pk := ooo.New(kilo.Config1024())
	pk.Hierarchy().Warm(g.WarmRanges())
	kiloIPC := pk.Run(g, 8000, 30000).IPC()

	g = workload.MustNew("mcf")
	pd := New(Config{})
	pd.Hierarchy().Warm(g.WarmRanges())
	dkipIPC := pd.Run(g, 8000, 30000).IPC()

	if kiloIPC <= dkipIPC {
		t.Errorf("on mcf the SLIQ (%.3f) should beat the FIFO LLIB (%.3f)", kiloIPC, dkipIPC)
	}
}

// TestCPShareMatchesPaper: §4.4 reports the Cache Processor committing
// 67–77% of SpecFP instructions depending on cache size.
func TestCPShareMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	var share float64
	names := workload.SuiteNames(workload.SpecFP)
	for _, name := range names {
		g := workload.MustNew(name)
		p := New(Config{})
		p.Hierarchy().Warm(g.WarmRanges())
		share += p.Run(g, 8000, 30000).CPFraction()
	}
	share /= float64(len(names))
	if share < 0.55 || share > 0.95 {
		t.Errorf("CP share %.2f outside the plausible band around the paper's 67-77%%", share)
	}
}

// TestCacheInsensitivity: Figures 11/12 and §4.4 — growing the L2 from 64KB
// to 4MB speeds the R10-256 up far more than the D-KIP on SpecFP.
func TestCacheInsensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	sweep := func(dkip bool, l2 int) float64 {
		mc := mem.DefaultConfig().WithL2Size(l2)
		names := workload.SuiteNames(workload.SpecFP)
		var sum float64
		for _, name := range names {
			g := workload.MustNew(name)
			var ipc float64
			if dkip {
				p := New(Config{Mem: mc})
				p.Hierarchy().Warm(g.WarmRanges())
				ipc = p.Run(g, 8000, 25000).IPC()
			} else {
				cfg := ooo.R10K256()
				cfg.Mem = mc
				p := ooo.New(cfg)
				p.Hierarchy().Warm(g.WarmRanges())
				ipc = p.Run(g, 8000, 25000).IPC()
			}
			sum += ipc
		}
		return sum / float64(len(names))
	}
	dkipGain := sweep(true, 4<<20) / sweep(true, 64<<10)
	baseGain := sweep(false, 4<<20) / sweep(false, 64<<10)
	if dkipGain >= baseGain {
		t.Errorf("D-KIP cache sensitivity (%.2fx) should be below R10-256's (%.2fx); paper: 1.18 vs 1.55",
			dkipGain, baseGain)
	}
}

// TestLLIBOccupancyShape: Figures 13/14 — integer benchmarks with load
// chains push the integer LLIB far higher than FP benchmarks push theirs,
// and register usage stays below instruction occupancy.
func TestLLIBOccupancyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	occupancy := func(name string, idx int) (instrs, regs int) {
		g := workload.MustNew(name)
		p := New(Config{})
		p.Hierarchy().Warm(g.WarmRanges())
		st := p.Run(g, 8000, 40000)
		return st.MaxLLIBInstrs[idx], st.MaxLLIBRegs[idx]
	}
	mcfI, mcfR := occupancy("mcf", 0)
	if mcfI < 200 {
		t.Errorf("mcf integer LLIB max %d; expected heavy occupancy", mcfI)
	}
	if mcfR >= mcfI {
		t.Errorf("registers (%d) should be fewer than instructions (%d)", mcfR, mcfI)
	}
	gzipI, _ := occupancy("gzip", 0)
	if gzipI > 64 {
		t.Errorf("gzip integer LLIB max %d; cache-resident code should barely use it", gzipI)
	}
}
