package core

import (
	"dkip/internal/isa"
	"dkip/internal/pipeline"
)

// LLRF is the Low Locality Register File: banked storage for the single
// READY operand an instruction carries into the LLIB. Insertion and
// extraction each touch a disjoint group of banks per cycle; a read landing
// in a bank that is being written stalls one cycle (§3.2). Each bank has an
// independent free list, modeled here as a per-bank occupancy count.
type LLRF struct {
	banks    int
	bankSize int
	ideal    bool

	used     []int // registers allocated per bank
	nextBank int   // round-robin allocation pointer

	// Per-cycle port tracking for conflict modeling.
	cycle        int64
	writtenBanks uint32 // bitmask of banks written this cycle

	// Occupancy accounting.
	Allocated int // registers currently allocated
	MaxUsed   int // high-water mark
	Conflicts int64
}

// NewLLRF builds the register file. ideal disables capacity and conflicts.
func NewLLRF(banks, bankSize int, ideal bool) *LLRF {
	return &LLRF{banks: banks, bankSize: bankSize, ideal: ideal, used: make([]int, banks)}
}

// NewCycle resets per-cycle port state.
//
//dkip:hotpath
func (r *LLRF) NewCycle(cycle int64) {
	r.cycle = cycle
	r.writtenBanks = 0
}

// Alloc reserves one register for a READY operand, returning the bank used,
// or -1 when every bank's free list is empty (the caller must stall Analyze).
//
//dkip:hotpath
func (r *LLRF) Alloc() int {
	if r.ideal {
		r.Allocated++
		if r.Allocated > r.MaxUsed {
			r.MaxUsed = r.Allocated
		}
		return 0
	}
	for i := 0; i < r.banks; i++ {
		b := (r.nextBank + i) % r.banks
		if r.used[b] < r.bankSize {
			r.used[b]++
			r.nextBank = (b + 1) % r.banks
			r.Allocated++
			if r.Allocated > r.MaxUsed {
				r.MaxUsed = r.Allocated
			}
			r.writtenBanks |= 1 << uint(b)
			return b
		}
	}
	return -1
}

// Read frees the register in the given bank as its value moves to the Memory
// Processor. It reports whether the read conflicted with a write to the same
// bank this cycle, which costs the extraction one cycle.
//
//dkip:hotpath
func (r *LLRF) Read(bank int) (conflict bool) {
	if r.Allocated <= 0 {
		panic("core: LLRF read with no allocated registers")
	}
	r.Allocated--
	if r.ideal {
		return false
	}
	if r.used[bank] <= 0 {
		panic("core: LLRF bank underflow")
	}
	r.used[bank]--
	if r.writtenBanks&(1<<uint(bank)) != 0 {
		r.Conflicts++
		return true
	}
	return false
}

// Full reports whether no bank can accept another register.
func (r *LLRF) Full() bool {
	if r.ideal {
		return false
	}
	for _, u := range r.used {
		if u < r.bankSize {
			return false
		}
	}
	return true
}

// LLIB is one Low Locality Instruction Buffer: a strict FIFO of low-locality
// instructions, with no issue capability of its own. The head drains into
// the paired Memory Processor once the long-latency load it depends on has
// delivered its value to the Address Processor's FIFO.
type LLIB struct {
	fifo pipeline.Ring64 // bounded by cap, so it never grows past capacity
	cap  int
	win  *pipeline.Window

	// Occupancy accounting (Figures 13/14).
	MaxInstrs int
}

// NewLLIB builds a buffer with the given capacity.
func NewLLIB(capacity int, win *pipeline.Window) *LLIB {
	return &LLIB{cap: capacity, win: win}
}

// Len returns the current occupancy.
func (l *LLIB) Len() int { return l.fifo.Len() }

// Full reports whether insertion must stall.
func (l *LLIB) Full() bool { return l.fifo.Len() >= l.cap }

// Push appends an instruction (already stamped QLLIB by the caller).
//
//dkip:hotpath
func (l *LLIB) Push(seq uint64) {
	if l.Full() {
		panic("core: push into full LLIB")
	}
	l.fifo.PushBack(seq)
	if l.fifo.Len() > l.MaxInstrs {
		l.MaxInstrs = l.fifo.Len()
	}
}

// Head returns the oldest resident instruction.
//
//dkip:hotpath
func (l *LLIB) Head() (uint64, bool) {
	if l.fifo.Len() == 0 {
		return 0, false
	}
	return l.fifo.Front(), true
}

// Pop removes the head.
//
//dkip:hotpath
func (l *LLIB) Pop() {
	l.fifo.PopFront()
}

// HeadExtractable implements the paper's wakeup rule: the head may move to
// the Memory Processor unless it depends on a long-latency load whose value
// has not yet arrived in the Address Processor's FIFO. Dependences on other
// low-locality instructions need no check — the MP's Future File (reservation
// stations) will capture those values.
//
//dkip:hotpath
func (l *LLIB) HeadExtractable() bool {
	seq, ok := l.Head()
	if !ok {
		return false
	}
	e := l.win.Get(seq)
	for _, prod := range [2]uint64{e.Prod1, e.Prod2} {
		if prod == pipeline.NoProducer {
			continue
		}
		pe := l.win.Get(prod)
		if pe.Seq != prod || pe.Done {
			continue // producer already delivered its value
		}
		if pe.In.Op == isa.Load {
			return false // value not yet in the load-value FIFO
		}
	}
	return true
}
