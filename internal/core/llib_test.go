package core

import (
	"testing"
	"testing/quick"

	"dkip/internal/isa"
	"dkip/internal/pipeline"
)

func TestLLRFAllocFreeBalance(t *testing.T) {
	r := NewLLRF(8, 4, false) // 32 registers
	banks := make([]int, 0, 32)
	for i := 0; i < 32; i++ {
		b := r.Alloc()
		if b < 0 {
			t.Fatalf("alloc %d failed with capacity left", i)
		}
		banks = append(banks, b)
	}
	if !r.Full() {
		t.Error("LLRF should be full after 32 allocations")
	}
	if r.Alloc() != -1 {
		t.Error("alloc on full LLRF should fail")
	}
	if r.MaxUsed != 32 || r.Allocated != 32 {
		t.Errorf("occupancy tracking wrong: %d/%d", r.Allocated, r.MaxUsed)
	}
	for _, b := range banks {
		r.Read(b)
	}
	if r.Allocated != 0 {
		t.Errorf("allocated %d after freeing everything", r.Allocated)
	}
	if r.Full() {
		t.Error("empty LLRF reported full")
	}
}

func TestLLRFRoundRobinSpreadsBanks(t *testing.T) {
	r := NewLLRF(8, 256, false)
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		seen[r.Alloc()] = true
	}
	if len(seen) != 8 {
		t.Errorf("8 allocations used only %d banks; free lists must be independent", len(seen))
	}
}

func TestLLRFBankConflict(t *testing.T) {
	r := NewLLRF(8, 256, false)
	r.NewCycle(1)
	b := r.Alloc() // writes bank b this cycle
	if conflict := r.Read(b); !conflict {
		t.Error("read of a bank written this cycle must conflict")
	}
	if r.Conflicts != 1 {
		t.Errorf("conflicts = %d", r.Conflicts)
	}
	// A read in a later cycle does not conflict.
	b2 := r.Alloc()
	r.NewCycle(2)
	if conflict := r.Read(b2); conflict {
		t.Error("read in a different cycle must not conflict")
	}
}

func TestLLRFIdealNeverFullNeverConflicts(t *testing.T) {
	r := NewLLRF(8, 4, true)
	for i := 0; i < 1000; i++ {
		if r.Alloc() < 0 {
			t.Fatal("ideal LLRF must never fill")
		}
	}
	if r.Full() {
		t.Error("ideal LLRF reported full")
	}
	r.NewCycle(1)
	if r.Read(0) {
		t.Error("ideal LLRF must not conflict")
	}
}

func TestLLRFUnderflowPanics(t *testing.T) {
	r := NewLLRF(2, 2, false)
	defer func() {
		if recover() == nil {
			t.Error("read with nothing allocated should panic")
		}
	}()
	r.Read(0)
}

// TestLLRFOccupancyInvariant: under any interleaving of allocations and
// frees, occupancy equals allocations minus frees and never exceeds capacity.
func TestLLRFOccupancyInvariant(t *testing.T) {
	err := quick.Check(func(ops []bool) bool {
		r := NewLLRF(4, 8, false)
		var live []int
		allocs, frees := 0, 0
		for _, alloc := range ops {
			if alloc {
				if b := r.Alloc(); b >= 0 {
					live = append(live, b)
					allocs++
				}
			} else if len(live) > 0 {
				r.Read(live[len(live)-1])
				live = live[:len(live)-1]
				frees++
			}
		}
		return r.Allocated == allocs-frees && r.Allocated <= 4*8
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func mkLLIBEntry(w *pipeline.Window, seq uint64, prod uint64) *pipeline.DynInst {
	e := w.Alloc(seq, isa.Instr{Op: isa.IntALU, Dest: isa.IntReg(2), Src1: isa.IntReg(3)}, 1)
	e.Prod1 = prod
	return e
}

func TestLLIBFIFOOrder(t *testing.T) {
	w := pipeline.NewWindow(128)
	l := NewLLIB(16, w)
	for seq := uint64(1); seq <= 5; seq++ {
		mkLLIBEntry(w, seq, pipeline.NoProducer)
		l.Push(seq)
	}
	if l.Len() != 5 || l.MaxInstrs != 5 {
		t.Errorf("len=%d max=%d", l.Len(), l.MaxInstrs)
	}
	for want := uint64(1); want <= 5; want++ {
		got, ok := l.Head()
		if !ok || got != want {
			t.Fatalf("head = %d, want %d", got, want)
		}
		l.Pop()
	}
	if _, ok := l.Head(); ok {
		t.Error("empty LLIB has a head")
	}
}

func TestLLIBCapacity(t *testing.T) {
	w := pipeline.NewWindow(128)
	l := NewLLIB(2, w)
	mkLLIBEntry(w, 1, pipeline.NoProducer)
	mkLLIBEntry(w, 2, pipeline.NoProducer)
	l.Push(1)
	l.Push(2)
	if !l.Full() {
		t.Error("LLIB should be full")
	}
	defer func() {
		if recover() == nil {
			t.Error("push into full LLIB should panic")
		}
	}()
	mkLLIBEntry(w, 3, pipeline.NoProducer)
	l.Push(3)
}

func TestLLIBHeadExtractableRules(t *testing.T) {
	w := pipeline.NewWindow(128)
	l := NewLLIB(16, w)

	// Producer is an outstanding load: head must wait for the value.
	load := w.Alloc(1, isa.Instr{Op: isa.Load, Dest: isa.IntReg(5), Src1: isa.IntReg(0)}, 1)
	consumer := mkLLIBEntry(w, 2, 1)
	consumer.Pending = 1
	l.Push(2)
	if l.HeadExtractable() {
		t.Error("head depending on an outstanding load must not extract")
	}
	load.Done = true
	if !l.HeadExtractable() {
		t.Error("head must extract once the load value is available")
	}
	l.Pop()

	// Producer is a non-load low-locality instruction: no check needed —
	// the MP's future file captures it.
	alu := w.Alloc(3, isa.Instr{Op: isa.IntALU, Dest: isa.IntReg(6), Src1: isa.IntReg(5)}, 1)
	alu.LowLocality = true
	c2 := mkLLIBEntry(w, 4, 3)
	c2.Pending = 1
	l.Push(4)
	if !l.HeadExtractable() {
		t.Error("dependence on a non-load producer must not block extraction")
	}

	// Empty LLIB is never extractable.
	l.Pop()
	if l.HeadExtractable() {
		t.Error("empty LLIB extractable")
	}
}

// TestLLIBMaxTracksHighWater: occupancy accounting must follow pushes/pops.
func TestLLIBMaxTracksHighWater(t *testing.T) {
	err := quick.Check(func(ops []bool) bool {
		w := pipeline.NewWindow(4096)
		l := NewLLIB(64, w)
		next := uint64(1)
		max, cur := 0, 0
		for _, push := range ops {
			if push && !l.Full() {
				mkLLIBEntry(w, next, pipeline.NoProducer)
				l.Push(next)
				next++
				cur++
				if cur > max {
					max = cur
				}
			} else if !push && l.Len() > 0 {
				l.Pop()
				cur--
			}
		}
		return l.Len() == cur && l.MaxInstrs == max
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
