package core

import (
	"testing"

	"dkip/internal/ooo"
	"dkip/internal/workload"
)

// mshrIPC runs the default D-KIP on a streaming FP workload with the given
// MSHR budget.
func mshrIPC(t *testing.T, mshrs int) float64 {
	t.Helper()
	g := workload.MustNew("applu")
	p := New(Config{MSHRs: mshrs})
	p.Hierarchy().Warm(g.WarmRanges())
	return p.Run(g, 5000, 20000).IPC()
}

func TestMSHRLimitsMLP(t *testing.T) {
	one := mshrIPC(t, 1)
	sixteen := mshrIPC(t, 16)
	unlimited := mshrIPC(t, 0)
	if one >= sixteen {
		t.Errorf("one MSHR (%.3f) should be far slower than sixteen (%.3f)", one, sixteen)
	}
	if sixteen > unlimited*1.02 {
		t.Errorf("limited MSHRs (%.3f) cannot beat unlimited (%.3f)", sixteen, unlimited)
	}
	// One MSHR degenerates toward a blocking miss path.
	if one > 0.5*unlimited {
		t.Errorf("one MSHR (%.3f) should lose most of the MLP (unlimited %.3f)", one, unlimited)
	}
}

func TestMSHROnOOOEngine(t *testing.T) {
	run := func(mshrs int) float64 {
		g := workload.MustNew("applu")
		cfg := ooo.LimitCore(2048, DefaultConfig().Mem)
		cfg.MSHRs = mshrs
		p := ooo.New(cfg)
		p.Hierarchy().Warm(g.WarmRanges())
		return p.Run(g, 5000, 20000).IPC()
	}
	if one, free := run(1), run(0); one >= 0.5*free {
		t.Errorf("one MSHR (%.3f) should cripple the 2048-entry window (%.3f)", one, free)
	}
}

func TestMSHRCompletes(t *testing.T) {
	// Even a single MSHR must never deadlock.
	g := workload.MustNew("mcf")
	p := New(Config{MSHRs: 1})
	p.Hierarchy().Warm(g.WarmRanges())
	st := p.Run(g, 1000, 5000)
	if st.Committed < 5000 {
		t.Errorf("committed %d with one MSHR", st.Committed)
	}
}
