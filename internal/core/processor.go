package core

import (
	"fmt"

	"dkip/internal/engine"
	"dkip/internal/isa"
	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/trace"
)

// Processor is one D-KIP instance: an engine.Model contributing the Cache
// Processor, dual LLIBs with LLRFs, dual Memory Processors, Address
// Processor, and checkpointing stack. Construct with New; Run simulates a
// workload.
type Processor struct {
	engine.Engine

	cfg Config

	// Cache Processor.
	cpInt, cpFP *pipeline.IssueQueue
	cpFU        *pipeline.FUPool

	// Low Locality Instruction Buffers and their register files.
	llibInt, llibFP *LLIB
	llrfInt, llrfFP *LLRF

	// Memory Processors (Future File machines).
	mpInt, mpFP  *pipeline.IssueQueue
	mpFUI, mpFUF *pipeline.FUPool

	// Sequencing. analyzeSeq is the next instruction the Analyze stage
	// will consider; horizon the oldest possibly-live window entry.
	analyzeSeq, horizon uint64

	// llbv mirrors the Low Locality Bit Vector for statistics; the
	// authoritative classification walks producer links.
	llbv      [isa.NumRegs]bool
	llbvCount int

	// Checkpointing.
	analyzed       uint64
	lastCheckpoint uint64
	ckptDepth      int
	maxCkptDepth   int
	ckptSeqs       []uint64 // live recovery points, oldest first

	// issueCP scratch, preallocated so the per-cycle select loop does not
	// allocate: the parity-rotated queue view and structural-block flags.
	cpRot     [2]*pipeline.IssueQueue
	cpBlocked [2]bool

	// spreadCap bounds RenameSeq-horizon: the checkpointed speculative
	// state cannot exceed the machine's structural resources.
	spreadCap int
}

// New builds a D-KIP. It panics on invalid configuration.
func New(cfg Config) *Processor {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	fqCap := cfg.FetchWidth * (cfg.FrontEndDepth + 2)
	// The window must span the seq range between the oldest live
	// low-locality instruction and rename; give it ample slack beyond the
	// structural occupancy bound (rename interlocks on the horizon).
	winCap := cfg.ROBSize + 2*cfg.LLIBSize + 2*cfg.MPIQSize + fqCap + 8192
	p := &Processor{cfg: cfg}
	p.Init(engine.Params{
		Family:          "core",
		Name:            cfg.Name,
		FetchWidth:      cfg.FetchWidth,
		RenameWidth:     cfg.RenameWidth,
		FrontEndDepth:   cfg.FrontEndDepth,
		RedirectPenalty: cfg.RedirectPenalty,
		LSQSize:         cfg.LSQSize,
		MemPorts:        cfg.MemPorts,
		MSHRs:           cfg.MSHRs,
		FetchQueueCap:   fqCap,
		WindowCap:       winCap,
		Mem:             cfg.Mem,
		NewPredictor:    cfg.NewPredictor,
		WithConfidence:  true,
	}, p)
	p.cpInt = pipeline.NewIssueQueue(pipeline.QInt, cfg.CPIQSize, cfg.CPInOrder, p.Win)
	p.cpFP = pipeline.NewIssueQueue(pipeline.QFP, cfg.CPIQSize, cfg.CPInOrder, p.Win)
	p.cpFU = pipeline.NewFUPool(cfg.CPFU)
	p.llibInt = NewLLIB(cfg.LLIBSize, p.Win)
	p.llibFP = NewLLIB(cfg.LLIBSize, p.Win)
	p.llrfInt = NewLLRF(cfg.LLRFBanks, cfg.LLRFBankSize, cfg.IdealLLRF)
	p.llrfFP = NewLLRF(cfg.LLRFBanks, cfg.LLRFBankSize, cfg.IdealLLRF)
	p.mpInt = pipeline.NewIssueQueue(pipeline.QMPInt, cfg.MPIQSize, *cfg.MPInOrder, p.Win)
	p.mpFP = pipeline.NewIssueQueue(pipeline.QMPFP, cfg.MPIQSize, *cfg.MPInOrder, p.Win)
	p.mpFUI = pipeline.NewFUPool(cfg.MPFU)
	p.mpFUF = pipeline.NewFUPool(cfg.MPFU)
	p.spreadCap = cfg.ROBSize + 2*cfg.LLIBSize + 2*cfg.MPIQSize + fqCap + 64
	return p
}

// Config returns the effective configuration.
func (p *Processor) Config() Config { return p.cfg }

// LLBVCount returns the number of architectural registers currently marked
// long-latency — §3.2 argues this never saturates in steady state.
func (p *Processor) LLBVCount() int { return p.llbvCount }

// BeginCycle resets the shared cache ports and per-cycle structure ports.
//
//dkip:hotpath
func (p *Processor) BeginCycle() {
	p.PortsUsed = 0
	p.cpFU.NewCycle(p.Cycle)
	p.mpFUI.NewCycle(p.Cycle)
	p.mpFUF.NewCycle(p.Cycle)
	p.llrfInt.NewCycle(p.Cycle)
	p.llrfFP.NewCycle(p.Cycle)
}

// Stages runs the D-KIP back end: complete, Analyze, CP issue, LLIB
// extraction, MP issue.
//
//dkip:hotpath
func (p *Processor) Stages(g trace.Generator) {
	p.CompleteStage()
	p.analyzeStage()
	p.issueCP()
	p.extractLLIBs()
	p.issueMPs()
}

// EndCycle reconciles the checkpoint stack once all low-locality work has
// drained: the architectural state is then fully reconciled and the stack
// empties.
//
//dkip:hotpath
func (p *Processor) EndCycle(g trace.Generator) {
	if p.ckptDepth > 0 && p.llibInt.Len() == 0 && p.llibFP.Len() == 0 &&
		p.mpInt.Len() == 0 && p.mpFP.Len() == 0 {
		p.ckptDepth = 0
		p.ckptSeqs = p.ckptSeqs[:0]
	}
}

// ConsiderWake adds the Aging-ROB head's timer deadline as a wake source.
//
//dkip:hotpath
func (p *Processor) ConsiderWake(w *engine.WakeScan) {
	if p.analyzeSeq < p.RenameSeq {
		e := p.Win.Get(p.analyzeSeq)
		if e.Seq == p.analyzeSeq {
			w.Consider(e.RenameCycle + int64(p.cfg.ROBTimer))
		}
	}
}

//dkip:hotpath
func (p *Processor) robCount() int { return int(p.RenameSeq - p.analyzeSeq) }

// advanceHorizon slides the liveness horizon past dead entries so the window
// can recycle their slots.
//
//dkip:hotpath
func (p *Processor) advanceHorizon() {
	for p.horizon < p.analyzeSeq {
		e := p.Win.Get(p.horizon)
		if e.Seq == p.horizon && !e.Done {
			break
		}
		p.horizon++
	}
}

// OnComplete applies D-KIP completion bookkeeping: MSHR release, LLBV
// clearing, and out-of-order commit of low-locality instructions.
//
//dkip:hotpath
func (p *Processor) OnComplete(d *pipeline.DynInst) {
	if d.In.Op == isa.Load && d.MemLevel == mem.LevelMemory {
		p.MissCount--
	}
	if d.In.Op.HasDest() {
		// A completed value clears the register's long-latency mark
		// unless a younger writer has redefined it.
		if prod, busy := p.SB.Lookup(d.In.Dest); busy && prod == d.Seq {
			p.setLLBV(d.In.Dest, false)
		}
		p.SB.Complete(d.In.Dest, d.Seq)
	}
	if d.LowLocality {
		// LLIB/MP instructions and AP-custody loads retire at
		// completion (out-of-order commit under checkpoints).
		if d.In.Op == isa.Store {
			p.Hier.Access(d.In.Addr)
		}
		if d.In.Op.IsMem() {
			p.LSQCount--
		}
		p.Commit(d, engine.CommitMP)
	} else if d.In.Op == isa.Load {
		p.LSQCount-- // CP loads release their LSQ entry when the value returns
	}
}

// RecoveryExtra charges checkpoint-recovery costs for mispredictions
// resolved on the slow path and clears the LLBV (§3.2).
//
//dkip:hotpath
func (p *Processor) RecoveryExtra(d *pipeline.DynInst) int64 {
	if !d.LowLocality {
		return 0
	}
	extra := int64(p.cfg.RecoveryPenalty) + p.recoveryReplayCycles(d.Seq)
	if p.Collect {
		p.Stats.Recoveries++
	}
	// Checkpoint recovery restores the register file and clears the LLBV.
	p.clearLLBV()
	return extra
}

//dkip:hotpath
func (p *Processor) clearLLBV() {
	for i := range p.llbv {
		p.llbv[i] = false
	}
	p.llbvCount = 0
}

// Wake routes a wakeup to the CP or MP queue holding the instruction.
//
//dkip:hotpath
func (p *Processor) Wake(d *pipeline.DynInst) {
	switch d.Queue {
	case pipeline.QInt:
		p.cpInt.Wake(d.Seq)
	case pipeline.QFP:
		p.cpFP.Wake(d.Seq)
	case pipeline.QMPInt:
		p.mpInt.Wake(d.Seq)
	case pipeline.QMPFP:
		p.mpFP.Wake(d.Seq)
	}
}

// IssueExtraLatency charges no issue surcharge: LLIB extraction delays are
// modeled at the FIFO, not at issue.
//
//dkip:hotpath
func (p *Processor) IssueExtraLatency(d *pipeline.DynInst) int64 { return 0 }

// classification is the Analyze stage's verdict on one instruction.
type classification uint8

const (
	classRetire classification = iota // executed: retire from the CP
	classLong                         // low locality: move to the LLIB
	classAPLoad                       // issued load missing to memory: AP custody
	classWait                         // short latency, still in flight: stall
)

// classify implements the Analyze rules of §3.2.
//
//dkip:hotpath
func (p *Processor) classify(e *pipeline.DynInst) classification {
	if e.Done {
		return classRetire
	}
	if e.In.Op == isa.Load && e.Issued {
		if e.MemLevel == mem.LevelMemory {
			return classAPLoad
		}
		return classWait // L1/L2 access in flight: resolves shortly
	}
	if e.Issued {
		return classWait // executing in a functional unit
	}
	// Not issued: inspect the producers of still-pending operands.
	long := false
	for _, prod := range [2]uint64{e.Prod1, e.Prod2} {
		if prod == pipeline.NoProducer {
			continue
		}
		pe := p.Win.Get(prod)
		if pe.Seq != prod || pe.Done {
			continue
		}
		if pe.LowLocality {
			long = true
			continue
		}
		if pe.In.Op == isa.Load && pe.Issued && pe.MemLevel == mem.LevelMemory {
			long = true
			continue
		}
		// Producer is short-latency but unfinished: the load timer
		// has not seen it writeback yet.
		return classWait
	}
	if long {
		return classLong
	}
	// All producers complete but the instruction has not issued (FU or
	// port contention, or in-order queue blocking): it executes soon.
	return classWait
}

// analyzeStage advances the Aging-ROB head: retiring executed instructions,
// migrating low-locality ones into the LLIBs (allocating their READY operand
// in the LLRF, taking checkpoints), and stalling on short-latency in-flight
// instructions (§3.2, ~0.7% IPC cost).
//
//dkip:hotpath
func (p *Processor) analyzeStage() {
	deadline := p.Cycle - int64(p.cfg.ROBTimer)
	for n := 0; n < p.cfg.AnalyzeWidth; n++ {
		if p.analyzeSeq >= p.RenameSeq {
			return
		}
		e := p.Win.Get(p.analyzeSeq)
		if e.RenameCycle > deadline {
			return // not aged enough yet
		}
		switch p.classify(e) {
		case classRetire:
			if e.In.Op == isa.Store {
				p.Hier.Access(e.In.Addr) // commit the store data
				p.LSQCount--
			}
			p.setLLBV(e.In.Dest, false)
			p.Commit(e, engine.CommitCP)

		case classAPLoad:
			// The load already executes in the Address Processor;
			// release its Aging-ROB entry and mark its result
			// long-latency. It commits when the value returns.
			e.LowLocality = true
			p.setLLBV(e.In.Dest, true)

		case classLong:
			if !p.insertLLIB(e) {
				return // LLIB or LLRF full: Analyze stalls
			}
			// A low-confidence branch entering the slow path is the
			// likeliest rollback site: anchor a checkpoint on it.
			if p.cfg.CheckpointOnLowConf && e.In.Op == isa.Branch && e.LowConf {
				p.takeCheckpoint(e.Seq)
			}

		case classWait:
			if p.cfg.IdealAnalyze {
				// Ablation: pretend the instruction retired; it
				// completes later without further accounting.
				if e.In.Op == isa.Store {
					p.Hier.Access(e.In.Addr)
					p.LSQCount--
				}
				p.setLLBV(e.In.Dest, false)
				p.Commit(e, engine.CommitCP)
				break
			}
			if p.Collect {
				p.Stats.AnalyzeWaitStalls++
			}
			return
		}
		p.analyzeSeq++
		p.analyzed++
		p.DidWork = true
	}
}

//dkip:hotpath
func (p *Processor) setLLBV(r isa.Reg, long bool) {
	if !r.Valid() {
		return
	}
	if p.llbv[r] != long {
		p.llbv[r] = long
		if long {
			p.llbvCount++
		} else {
			p.llbvCount--
		}
	}
}

// insertLLIB moves a low-locality instruction from the CP into its LLIB.
//
//dkip:hotpath
func (p *Processor) insertLLIB(e *pipeline.DynInst) bool {
	llib, llrf := p.llibInt, p.llrfInt
	if !p.cfg.SingleLLIB && e.IsFPClass() {
		llib, llrf = p.llibFP, p.llrfFP
	}
	if llib.Full() {
		if p.Collect {
			p.Stats.LLIBFullStalls++
		}
		return false
	}
	// Capture the READY operand (at most one, §3.2) into the LLRF.
	bank := int8(-1)
	if p.hasReadyOperand(e) {
		b := llrf.Alloc()
		if b < 0 {
			if p.Collect {
				p.Stats.LLIBFullStalls++
			}
			return false
		}
		bank = int8(b)
	}
	// Release the CP issue-queue slot it occupied.
	switch e.Queue {
	case pipeline.QInt:
		p.cpInt.RemoveWaiting()
	case pipeline.QFP:
		p.cpFP.RemoveWaiting()
	}
	e.Queue = pipeline.QLLIB
	e.LowLocality = true
	e.LLRFBank = bank
	p.setLLBV(e.In.Dest, true)
	llib.Push(e.Seq)

	// Checkpointing: ensure a recovery point covers this low-locality
	// slice (one checkpoint at least every CheckpointStride analyzed
	// instructions once slices are active).
	if p.analyzed-p.lastCheckpoint >= uint64(p.cfg.CheckpointStride) {
		p.takeCheckpoint(e.Seq)
	}
	return true
}

// takeCheckpoint records a recovery point at the given instruction. When the
// stack is full the oldest checkpoint is dropped: later rollbacks replay
// from a coarser point.
//
//dkip:hotpath
func (p *Processor) takeCheckpoint(seq uint64) {
	p.lastCheckpoint = p.analyzed
	// Prune checkpoints the horizon has passed: nothing can roll back
	// before the oldest live instruction. Dropped heads are shifted out
	// (not resliced away) so the backing array never accretes a dead
	// prefix; the stack is bounded by CheckpointStackSize, so the copy is
	// cheap.
	drop := 0
	for drop < len(p.ckptSeqs) && p.ckptSeqs[drop] < p.horizon {
		drop++
	}
	if len(p.ckptSeqs)-drop >= p.cfg.CheckpointStackSize {
		drop++
	}
	if drop > 0 {
		n := copy(p.ckptSeqs, p.ckptSeqs[drop:])
		p.ckptSeqs = p.ckptSeqs[:n]
	}
	//dkip:alloc-ok bounded by MaxCheckpoints and reused after the warmup ramp
	p.ckptSeqs = append(p.ckptSeqs, seq)
	p.ckptDepth = len(p.ckptSeqs)
	if p.ckptDepth > p.maxCkptDepth {
		p.maxCkptDepth = p.ckptDepth
	}
	if p.Collect {
		p.Stats.Checkpoints++
	}
}

// recoveryReplayCycles estimates the cost of re-dispatching correct-path
// instructions between the nearest checkpoint at or before seq and seq
// itself. Only charged when the configuration enables ReplayRecovery.
//
//dkip:hotpath
func (p *Processor) recoveryReplayCycles(seq uint64) int64 {
	if !p.cfg.ReplayRecovery {
		return 0
	}
	var base uint64 = p.horizon
	for _, c := range p.ckptSeqs {
		if c <= seq && c > base {
			base = c
		}
	}
	dist := int64(seq-base) / int64(p.cfg.AnalyzeWidth)
	const replayCap = 512 // a full pipeline re-walk, bounded
	if dist > replayCap {
		dist = replayCap
	}
	return dist
}

// hasReadyOperand reports whether at least one source value is already
// computed and must therefore be carried into the LLRF.
//
//dkip:hotpath
func (p *Processor) hasReadyOperand(e *pipeline.DynInst) bool {
	n := 0
	ready := 0
	for i, src := range [2]isa.Reg{e.In.Src1, e.In.Src2} {
		if !src.Valid() {
			continue
		}
		n++
		prod := e.Prod1
		if i == 1 {
			prod = e.Prod2
		}
		if prod == pipeline.NoProducer {
			ready++
			continue
		}
		pe := p.Win.Get(prod)
		if pe.Seq != prod || pe.Done {
			ready++
		}
	}
	return n > 0 && ready > 0
}

// issueCP performs wakeup/select in the Cache Processor, alternating queue
// priority by cycle parity.
//
//dkip:hotpath
func (p *Processor) issueCP() {
	p.cpRot[0], p.cpRot[1] = p.cpInt, p.cpFP
	if p.Cycle&1 == 1 {
		p.cpRot[0], p.cpRot[1] = p.cpFP, p.cpInt
	}
	p.cpBlocked[0], p.cpBlocked[1] = false, false
	p.IssueSelect(p.cpRot[:], p.cpBlocked[:], p.cfg.CPIssueWidth, p.cpFU)
}

// extractLLIBs drains LLIB heads into the Memory Processors at the FIFO
// extraction rate, reading captured operands from the LLRF.
//
//dkip:hotpath
func (p *Processor) extractLLIBs() {
	p.extractOne(p.llibInt, p.llrfInt, p.mpInt)
	if !p.cfg.SingleLLIB {
		p.extractOne(p.llibFP, p.llrfFP, p.mpFP)
	}
}

//dkip:hotpath
func (p *Processor) extractOne(llib *LLIB, llrf *LLRF, mp *pipeline.IssueQueue) {
	for n := 0; n < p.cfg.LLIBRate; n++ {
		if mp.Full() || !llib.HeadExtractable() {
			return
		}
		seq, _ := llib.Head()
		e := p.Win.Get(seq)
		conflict := false
		if e.LLRFBank >= 0 {
			conflict = llrf.Read(int(e.LLRFBank))
		}
		llib.Pop()
		mp.Insert(seq, e.Pending == 0)
		p.DidWork = true
		if conflict {
			// A bank being written this cycle delays the read one
			// cycle; charge it by ending this LLIB's extraction.
			return
		}
	}
}

// issueMPs executes low-locality code in the Memory Processors.
//
//dkip:hotpath
func (p *Processor) issueMPs() {
	p.issueMP(p.mpInt, p.mpFUI)
	if !p.cfg.SingleLLIB {
		p.issueMP(p.mpFP, p.mpFUF)
	}
}

//dkip:hotpath
func (p *Processor) issueMP(mp *pipeline.IssueQueue, fu *pipeline.FUPool) {
	for n := 0; n < p.cfg.MPIssueWidth; n++ {
		seq, ok := mp.Pop()
		if !ok {
			return
		}
		e := p.Win.Get(seq)
		if e.In.Op == isa.Load && !p.MayIssueLoad(e) {
			mp.Unpop(seq)
			return
		}
		if !fu.TryIssue(e.In.Op) {
			mp.Unpop(seq)
			return
		}
		p.Execute(e)
	}
}

// RenameAdmit enforces the Aging-ROB occupancy and checkpointed-state
// spread bounds.
//
//dkip:hotpath
func (p *Processor) RenameAdmit() bool {
	if p.robCount() >= p.cfg.ROBSize {
		return false
	}
	p.advanceHorizon()
	// The oldest low-locality instruction still holds checkpointed state
	// the machine cannot exceed.
	return int(p.RenameSeq-p.horizon) < p.spreadCap
}

// RenameQueue routes an instruction to its CP cluster queue.
//
//dkip:hotpath
func (p *Processor) RenameQueue(fp bool) *pipeline.IssueQueue {
	if fp {
		return p.cpFP
	}
	return p.cpInt
}

// AllocHint bounds the window by the rename/horizon spread (seq is the
// sequence number being allocated).
//
//dkip:hotpath
func (p *Processor) AllocHint(seq uint64) int {
	return int(seq - p.horizon)
}

// OnRename has no model occupancy to record: the Aging-ROB count derives
// from the analyze/rename sequence spread.
//
//dkip:hotpath
func (p *Processor) OnRename(d *pipeline.DynInst, q *pipeline.IssueQueue) {}

// FetchNext supplies instructions straight from the trace.
//
//dkip:hotpath
func (p *Processor) FetchNext(g trace.Generator) isa.Instr { return g.Next() }

// OnFetchBranch consults and trains the JRS confidence estimator.
//
//dkip:hotpath
func (p *Processor) OnFetchBranch(in isa.Instr, mispred bool) bool {
	lowConf := !p.Conf.High(in.PC)
	p.Conf.Update(in.PC, !mispred)
	return lowConf
}

// OnBeginMeasure re-bases the LLIB/LLRF high-water marks: they are reported
// for the measurement window.
//
//dkip:hotpath
func (p *Processor) OnBeginMeasure() {
	p.llibInt.MaxInstrs = p.llibInt.Len()
	p.llibFP.MaxInstrs = p.llibFP.Len()
	p.llrfInt.MaxUsed = p.llrfInt.Allocated
	p.llrfFP.MaxUsed = p.llrfFP.Allocated
	p.llrfInt.Conflicts = 0
	p.llrfFP.Conflicts = 0
}

// FinishStats reports the LLIB/LLRF high-water marks and bank conflicts.
func (p *Processor) FinishStats(st *pipeline.Stats) {
	st.MaxLLIBInstrs = [2]int{p.llibInt.MaxInstrs, p.llibFP.MaxInstrs}
	st.MaxLLIBRegs = [2]int{p.llrfInt.MaxUsed, p.llrfFP.MaxUsed}
	st.LLRFBankConflicts = p.llrfInt.Conflicts + p.llrfFP.Conflicts
}

// BudgetMessage builds the cycle-budget panic text.
func (p *Processor) BudgetMessage(bench string, target uint64) string {
	return fmt.Sprintf("core: %s on %s: exceeded cycle budget: committed %d of %d (llibInt=%d llibFP=%d rob=%d)",
		p.cfg.Name, bench, p.Total, target, p.llibInt.Len(), p.llibFP.Len(), p.robCount())
}

// MaxCheckpointDepth returns the deepest the checkpoint stack got.
func (p *Processor) MaxCheckpointDepth() int { return p.maxCkptDepth }
