package core

import (
	"fmt"

	"dkip/internal/isa"
	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/predictor"
	"dkip/internal/trace"
)

// fetchEntry is one instruction buffered between fetch and rename.
type fetchEntry struct {
	in         isa.Instr
	fetchCycle int64
	ready      int64
	mispred    bool
	lowConf    bool
}

// Processor is one D-KIP instance: Cache Processor, dual LLIBs with LLRFs,
// dual Memory Processors, Address Processor, and checkpointing stack.
// Construct with New; Run simulates a workload.
type Processor struct {
	cfg Config

	win *pipeline.Window
	sb  *pipeline.Scoreboard
	ev  pipeline.EventQueue

	// Cache Processor.
	cpInt, cpFP *pipeline.IssueQueue
	cpFU        *pipeline.FUPool

	// Low Locality Instruction Buffers and their register files.
	llibInt, llibFP *LLIB
	llrfInt, llrfFP *LLRF

	// Memory Processors (Future File machines).
	mpInt, mpFP  *pipeline.IssueQueue
	mpFUI, mpFUF *pipeline.FUPool

	// Address Processor state.
	hier      *mem.Hierarchy
	lsqCount  int
	missCount int // outstanding off-chip misses (MSHR occupancy)

	bp *predictor.Stats

	// Front end.
	fq            []fetchEntry
	fqHead, fqLen int
	fetchStalled  bool
	resumeCycle   int64

	// Sequencing. renameSeq is the next sequence number; analyzeSeq the
	// next instruction the Analyze stage will consider; horizon the
	// oldest possibly-live window entry.
	renameSeq, analyzeSeq, horizon uint64

	// llbv mirrors the Low Locality Bit Vector for statistics; the
	// authoritative classification walks producer links.
	llbv      [isa.NumRegs]bool
	llbvCount int

	// Checkpointing.
	analyzed       uint64
	lastCheckpoint uint64
	ckptDepth      int
	maxCkptDepth   int
	ckptSeqs       []uint64 // live recovery points, oldest first
	conf           *predictor.Confidence

	cycle       int64
	collect     bool
	statsBase   int64
	total       uint64
	measureFrom uint64 // first committed instruction counted in stats
	targetTotal uint64 // last committed instruction counted in stats
	stats       pipeline.Stats
	didWork     bool

	portsUsed int // cache ports used this cycle (shared CP/MP)

	// spreadCap bounds renameSeq-horizon: the checkpointed speculative
	// state cannot exceed the machine's structural resources.
	spreadCap int
}

// New builds a D-KIP. It panics on invalid configuration.
func New(cfg Config) *Processor {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	fqCap := cfg.FetchWidth * (cfg.FrontEndDepth + 2)
	// The window must span the seq range between the oldest live
	// low-locality instruction and rename; give it ample slack beyond the
	// structural occupancy bound (rename interlocks on the horizon).
	winCap := cfg.ROBSize + 2*cfg.LLIBSize + 2*cfg.MPIQSize + fqCap + 8192
	p := &Processor{
		cfg:  cfg,
		win:  pipeline.NewWindow(winCap),
		sb:   pipeline.NewScoreboard(),
		hier: mem.NewHierarchy(cfg.Mem),
		bp:   predictor.NewStats(cfg.NewPredictor()),
		fq:   make([]fetchEntry, fqCap),
	}
	p.cpInt = pipeline.NewIssueQueue(pipeline.QInt, cfg.CPIQSize, cfg.CPInOrder, p.win)
	p.cpFP = pipeline.NewIssueQueue(pipeline.QFP, cfg.CPIQSize, cfg.CPInOrder, p.win)
	p.cpFU = pipeline.NewFUPool(cfg.CPFU)
	p.llibInt = NewLLIB(cfg.LLIBSize, p.win)
	p.llibFP = NewLLIB(cfg.LLIBSize, p.win)
	p.llrfInt = NewLLRF(cfg.LLRFBanks, cfg.LLRFBankSize, cfg.IdealLLRF)
	p.llrfFP = NewLLRF(cfg.LLRFBanks, cfg.LLRFBankSize, cfg.IdealLLRF)
	p.mpInt = pipeline.NewIssueQueue(pipeline.QMPInt, cfg.MPIQSize, *cfg.MPInOrder, p.win)
	p.mpFP = pipeline.NewIssueQueue(pipeline.QMPFP, cfg.MPIQSize, *cfg.MPInOrder, p.win)
	p.mpFUI = pipeline.NewFUPool(cfg.MPFU)
	p.mpFUF = pipeline.NewFUPool(cfg.MPFU)
	p.spreadCap = cfg.ROBSize + 2*cfg.LLIBSize + 2*cfg.MPIQSize + fqCap + 64
	p.conf = predictor.NewConfidence(4096, 8)
	return p
}

// Config returns the effective configuration.
func (p *Processor) Config() Config { return p.cfg }

// Hierarchy exposes the memory hierarchy (cache statistics).
func (p *Processor) Hierarchy() *mem.Hierarchy { return p.hier }

// Predictor exposes branch predictor statistics.
func (p *Processor) Predictor() *predictor.Stats { return p.bp }

// LLBVCount returns the number of architectural registers currently marked
// long-latency — §3.2 argues this never saturates in steady state.
func (p *Processor) LLBVCount() int { return p.llbvCount }

// Run simulates until warmup+measure instructions have committed, returning
// statistics for the measurement phase only.
//
//dkip:hotpath
func (p *Processor) Run(g trace.Generator, warmup, measure uint64) *pipeline.Stats {
	if measure == 0 {
		panic("core: Run with zero measurement length")
	}
	target := p.total + warmup + measure
	p.measureFrom = p.total + warmup
	p.targetTotal = target
	if warmup == 0 {
		p.beginMeasure()
	}
	maxCycles := p.cycle + int64(warmup+measure)*20000 + 10_000_000
	for p.total < target {
		p.didWork = false
		p.portsUsed = 0
		p.cpFU.NewCycle(p.cycle)
		p.mpFUI.NewCycle(p.cycle)
		p.mpFUF.NewCycle(p.cycle)
		p.llrfInt.NewCycle(p.cycle)
		p.llrfFP.NewCycle(p.cycle)

		p.completeStage()
		p.analyzeStage()
		p.issueCP()
		p.extractLLIBs()
		p.issueMPs()
		p.renameStage()
		p.fetchStage(g)
		p.advanceCycle()
		if p.cycle > maxCycles {
			panic(fmt.Sprintf("core: %s on %s: exceeded cycle budget: committed %d of %d (llibInt=%d llibFP=%d rob=%d)",
				p.cfg.Name, g.Name(), p.total, target, p.llibInt.Len(), p.llibFP.Len(), p.robCount()))
		}
	}
	out := p.stats
	out.Cycles = p.cycle - p.statsBase
	out.MaxLLIBInstrs = [2]int{p.llibInt.MaxInstrs, p.llibFP.MaxInstrs}
	out.MaxLLIBRegs = [2]int{p.llrfInt.MaxUsed, p.llrfFP.MaxUsed}
	out.LLRFBankConflicts = p.llrfInt.Conflicts + p.llrfFP.Conflicts
	return &out
}

func (p *Processor) beginMeasure() {
	p.stats = pipeline.Stats{}
	p.statsBase = p.cycle
	p.collect = true
	// High-water marks are reported for the measurement window.
	p.llibInt.MaxInstrs = p.llibInt.Len()
	p.llibFP.MaxInstrs = p.llibFP.Len()
	p.llrfInt.MaxUsed = p.llrfInt.Allocated
	p.llrfFP.MaxUsed = p.llrfFP.Allocated
	p.llrfInt.Conflicts = 0
	p.llrfFP.Conflicts = 0
}

func (p *Processor) robCount() int { return int(p.renameSeq - p.analyzeSeq) }

// commit retires one instruction for accounting purposes. Statistics cover
// exactly the (warmup, warmup+measure] commit range, however commits batch
// within cycles.
func (p *Processor) commit(e *pipeline.DynInst, byMP bool) {
	p.total++
	if !p.collect {
		if p.total <= p.measureFrom {
			return
		}
		p.beginMeasure()
	}
	if p.total > p.targetTotal {
		return
	}
	p.stats.Committed++
	if byMP {
		p.stats.MPCommitted++
	} else {
		p.stats.CPCommitted++
	}
	if e.In.Op == isa.Branch {
		p.stats.Branches++
		if e.Mispred {
			p.stats.Mispredicts++
		}
	}
}

// advanceHorizon slides the liveness horizon past dead entries so the window
// can recycle their slots.
func (p *Processor) advanceHorizon() {
	for p.horizon < p.analyzeSeq {
		e := p.win.Get(p.horizon)
		if e.Seq == p.horizon && !e.Done {
			break
		}
		p.horizon++
	}
}

func (p *Processor) advanceCycle() {
	// When all low-locality work has drained, the architectural state is
	// fully reconciled and the checkpoint stack empties.
	if p.ckptDepth > 0 && p.llibInt.Len() == 0 && p.llibFP.Len() == 0 &&
		p.mpInt.Len() == 0 && p.mpFP.Len() == 0 {
		p.ckptDepth = 0
		p.ckptSeqs = p.ckptSeqs[:0]
	}
	p.cycle++
	if p.didWork {
		return
	}
	next := int64(-1)
	consider := func(c int64) {
		if c <= p.cycle {
			next = p.cycle
		} else if next == -1 || c < next {
			next = c
		}
	}
	if c, ok := p.ev.NextCycle(); ok {
		consider(c)
	}
	if !p.fetchStalled && p.resumeCycle > p.cycle {
		consider(p.resumeCycle)
	}
	if p.fqLen > 0 {
		consider(p.fq[p.fqHead].ready)
	}
	if p.analyzeSeq < p.renameSeq {
		e := p.win.Get(p.analyzeSeq)
		if e.Seq == p.analyzeSeq {
			consider(e.RenameCycle + int64(p.cfg.ROBTimer))
		}
	}
	if next > p.cycle {
		p.cycle = next
	} else if next == -1 && p.fqLen == 0 && p.fetchStalled && p.ev.Len() == 0 {
		panic("core: deadlock: fetch stalled with no pending events")
	}
}

// completeStage retires finished executions: wakes consumers, finishes
// low-locality commits, and resolves branches.
func (p *Processor) completeStage() {
	for {
		seq, ok := p.ev.PopDue(p.cycle)
		if !ok {
			return
		}
		e := p.win.Get(seq)
		e.Done = true
		e.CompleteCycle = p.cycle
		if e.In.Op == isa.Load && e.MemLevel == mem.LevelMemory {
			p.missCount--
		}
		if e.In.Op.HasDest() {
			// A completed value clears the register's long-latency
			// mark unless a younger writer has redefined it.
			if prod, busy := p.sb.Lookup(e.In.Dest); busy && prod == seq {
				p.setLLBV(e.In.Dest, false)
			}
			p.sb.Complete(e.In.Dest, seq)
		}
		for _, cs := range e.Consumers {
			ce := p.win.Get(cs)
			if ce.Seq != cs || ce.Issued {
				continue
			}
			ce.Pending--
			if ce.Pending == 0 {
				p.wake(ce)
			}
		}
		if e.LowLocality {
			// LLIB/MP instructions and AP-custody loads retire at
			// completion (out-of-order commit under checkpoints).
			if e.In.Op == isa.Store {
				p.hier.Access(e.In.Addr)
			}
			if e.In.Op.IsMem() {
				p.lsqCount--
			}
			p.commit(e, true)
		} else if e.In.Op == isa.Load {
			p.lsqCount-- // CP loads release their LSQ entry when the value returns
		}
		if e.Mispred {
			pen := int64(p.cfg.RedirectPenalty)
			if e.LowLocality {
				pen += int64(p.cfg.RecoveryPenalty) + p.recoveryReplayCycles(seq)
				if p.collect {
					p.stats.Recoveries++
				}
				// Checkpoint recovery restores the register file
				// and clears the LLBV (§3.2).
				p.clearLLBV()
			}
			p.fetchStalled = false
			p.resumeCycle = p.cycle + pen
		}
		p.didWork = true
	}
}

func (p *Processor) clearLLBV() {
	for i := range p.llbv {
		p.llbv[i] = false
	}
	p.llbvCount = 0
}

func (p *Processor) wake(e *pipeline.DynInst) {
	switch e.Queue {
	case pipeline.QInt:
		p.cpInt.Wake(e.Seq)
	case pipeline.QFP:
		p.cpFP.Wake(e.Seq)
	case pipeline.QMPInt:
		p.mpInt.Wake(e.Seq)
	case pipeline.QMPFP:
		p.mpFP.Wake(e.Seq)
	}
}

// classification is the Analyze stage's verdict on one instruction.
type classification uint8

const (
	classRetire classification = iota // executed: retire from the CP
	classLong                         // low locality: move to the LLIB
	classAPLoad                       // issued load missing to memory: AP custody
	classWait                         // short latency, still in flight: stall
)

// classify implements the Analyze rules of §3.2.
func (p *Processor) classify(e *pipeline.DynInst) classification {
	if e.Done {
		return classRetire
	}
	if e.In.Op == isa.Load && e.Issued {
		if e.MemLevel == mem.LevelMemory {
			return classAPLoad
		}
		return classWait // L1/L2 access in flight: resolves shortly
	}
	if e.Issued {
		return classWait // executing in a functional unit
	}
	// Not issued: inspect the producers of still-pending operands.
	long := false
	for _, prod := range [2]uint64{e.Prod1, e.Prod2} {
		if prod == pipeline.NoProducer {
			continue
		}
		pe := p.win.Get(prod)
		if pe.Seq != prod || pe.Done {
			continue
		}
		if pe.LowLocality {
			long = true
			continue
		}
		if pe.In.Op == isa.Load && pe.Issued && pe.MemLevel == mem.LevelMemory {
			long = true
			continue
		}
		// Producer is short-latency but unfinished: the load timer
		// has not seen it writeback yet.
		return classWait
	}
	if long {
		return classLong
	}
	// All producers complete but the instruction has not issued (FU or
	// port contention, or in-order queue blocking): it executes soon.
	return classWait
}

// analyzeStage advances the Aging-ROB head: retiring executed instructions,
// migrating low-locality ones into the LLIBs (allocating their READY operand
// in the LLRF, taking checkpoints), and stalling on short-latency in-flight
// instructions (§3.2, ~0.7% IPC cost).
func (p *Processor) analyzeStage() {
	deadline := p.cycle - int64(p.cfg.ROBTimer)
	for n := 0; n < p.cfg.AnalyzeWidth; n++ {
		if p.analyzeSeq >= p.renameSeq {
			return
		}
		e := p.win.Get(p.analyzeSeq)
		if e.RenameCycle > deadline {
			return // not aged enough yet
		}
		switch p.classify(e) {
		case classRetire:
			if e.In.Op == isa.Store {
				p.hier.Access(e.In.Addr) // commit the store data
				p.lsqCount--
			}
			p.setLLBV(e.In.Dest, false)
			p.commit(e, false)

		case classAPLoad:
			// The load already executes in the Address Processor;
			// release its Aging-ROB entry and mark its result
			// long-latency. It commits when the value returns.
			e.LowLocality = true
			p.setLLBV(e.In.Dest, true)

		case classLong:
			if !p.insertLLIB(e) {
				return // LLIB or LLRF full: Analyze stalls
			}
			// A low-confidence branch entering the slow path is the
			// likeliest rollback site: anchor a checkpoint on it.
			if p.cfg.CheckpointOnLowConf && e.In.Op == isa.Branch && e.LowConf {
				p.takeCheckpoint(e.Seq)
			}

		case classWait:
			if p.cfg.IdealAnalyze {
				// Ablation: pretend the instruction retired; it
				// completes later without further accounting.
				if e.In.Op == isa.Store {
					p.hier.Access(e.In.Addr)
					p.lsqCount--
				}
				p.setLLBV(e.In.Dest, false)
				p.commit(e, false)
				break
			}
			if p.collect {
				p.stats.AnalyzeWaitStalls++
			}
			return
		}
		p.analyzeSeq++
		p.analyzed++
		p.didWork = true
	}
}

func (p *Processor) setLLBV(r isa.Reg, long bool) {
	if !r.Valid() {
		return
	}
	if p.llbv[r] != long {
		p.llbv[r] = long
		if long {
			p.llbvCount++
		} else {
			p.llbvCount--
		}
	}
}

// insertLLIB moves a low-locality instruction from the CP into its LLIB.
func (p *Processor) insertLLIB(e *pipeline.DynInst) bool {
	llib, llrf := p.llibInt, p.llrfInt
	if !p.cfg.SingleLLIB && e.IsFPClass() {
		llib, llrf = p.llibFP, p.llrfFP
	}
	if llib.Full() {
		if p.collect {
			p.stats.LLIBFullStalls++
		}
		return false
	}
	// Capture the READY operand (at most one, §3.2) into the LLRF.
	bank := int8(-1)
	if p.hasReadyOperand(e) {
		b := llrf.Alloc()
		if b < 0 {
			if p.collect {
				p.stats.LLIBFullStalls++
			}
			return false
		}
		bank = int8(b)
	}
	// Release the CP issue-queue slot it occupied.
	switch e.Queue {
	case pipeline.QInt:
		p.cpInt.RemoveWaiting()
	case pipeline.QFP:
		p.cpFP.RemoveWaiting()
	}
	e.Queue = pipeline.QLLIB
	e.LowLocality = true
	e.LLRFBank = bank
	p.setLLBV(e.In.Dest, true)
	llib.Push(e.Seq)

	// Checkpointing: ensure a recovery point covers this low-locality
	// slice (one checkpoint at least every CheckpointStride analyzed
	// instructions once slices are active).
	if p.analyzed-p.lastCheckpoint >= uint64(p.cfg.CheckpointStride) {
		p.takeCheckpoint(e.Seq)
	}
	return true
}

// takeCheckpoint records a recovery point at the given instruction. When the
// stack is full the oldest checkpoint is dropped: later rollbacks replay
// from a coarser point.
func (p *Processor) takeCheckpoint(seq uint64) {
	p.lastCheckpoint = p.analyzed
	// Prune checkpoints the horizon has passed: nothing can roll back
	// before the oldest live instruction. Dropped heads are shifted out
	// (not resliced away) so the backing array never accretes a dead
	// prefix; the stack is bounded by CheckpointStackSize, so the copy is
	// cheap.
	drop := 0
	for drop < len(p.ckptSeqs) && p.ckptSeqs[drop] < p.horizon {
		drop++
	}
	if len(p.ckptSeqs)-drop >= p.cfg.CheckpointStackSize {
		drop++
	}
	if drop > 0 {
		n := copy(p.ckptSeqs, p.ckptSeqs[drop:])
		p.ckptSeqs = p.ckptSeqs[:n]
	}
	//dkip:alloc-ok bounded by MaxCheckpoints and reused after the warmup ramp
	p.ckptSeqs = append(p.ckptSeqs, seq)
	p.ckptDepth = len(p.ckptSeqs)
	if p.ckptDepth > p.maxCkptDepth {
		p.maxCkptDepth = p.ckptDepth
	}
	if p.collect {
		p.stats.Checkpoints++
	}
}

// recoveryReplayCycles estimates the cost of re-dispatching correct-path
// instructions between the nearest checkpoint at or before seq and seq
// itself. Only charged when the configuration enables ReplayRecovery.
func (p *Processor) recoveryReplayCycles(seq uint64) int64 {
	if !p.cfg.ReplayRecovery {
		return 0
	}
	var base uint64 = p.horizon
	for _, c := range p.ckptSeqs {
		if c <= seq && c > base {
			base = c
		}
	}
	dist := int64(seq-base) / int64(p.cfg.AnalyzeWidth)
	const replayCap = 512 // a full pipeline re-walk, bounded
	if dist > replayCap {
		dist = replayCap
	}
	return dist
}

// hasReadyOperand reports whether at least one source value is already
// computed and must therefore be carried into the LLRF.
func (p *Processor) hasReadyOperand(e *pipeline.DynInst) bool {
	n := 0
	ready := 0
	for i, src := range [2]isa.Reg{e.In.Src1, e.In.Src2} {
		if !src.Valid() {
			continue
		}
		n++
		prod := e.Prod1
		if i == 1 {
			prod = e.Prod2
		}
		if prod == pipeline.NoProducer {
			ready++
			continue
		}
		pe := p.win.Get(prod)
		if pe.Seq != prod || pe.Done {
			ready++
		}
	}
	return n > 0 && ready > 0
}

// issueCP performs wakeup/select in the Cache Processor.
func (p *Processor) issueCP() {
	queues := [2]*pipeline.IssueQueue{p.cpInt, p.cpFP}
	if p.cycle&1 == 1 {
		queues[0], queues[1] = queues[1], queues[0]
	}
	issued := 0
	var blocked [2]bool
	for issued < p.cfg.CPIssueWidth {
		progress := false
		for qi, q := range queues {
			if blocked[qi] || issued >= p.cfg.CPIssueWidth {
				continue
			}
			seq, ok := q.Pop()
			if !ok {
				blocked[qi] = true
				continue
			}
			e := p.win.Get(seq)
			if e.In.Op == isa.Load && !p.mayIssueLoad(e) {
				q.Unpop(seq)
				blocked[qi] = true
				continue
			}
			if !p.cpFU.TryIssue(e.In.Op) {
				q.Unpop(seq)
				blocked[qi] = true
				continue
			}
			p.execute(e)
			issued++
			progress = true
		}
		if !progress {
			break
		}
	}
}

// mayIssueLoad checks the Address Processor's structural limits for a load
// about to issue: a free cache port, and — when MSHRs are modeled — a free
// miss register if the access would go off-chip.
func (p *Processor) mayIssueLoad(e *pipeline.DynInst) bool {
	if p.portsUsed >= p.cfg.MemPorts {
		return false
	}
	if p.cfg.MSHRs > 0 && p.missCount >= p.cfg.MSHRs && p.hier.ProbeLongLatency(e.In.Addr) {
		return false
	}
	return true
}

// execute starts execution of e this cycle (from either the CP or an MP).
func (p *Processor) execute(e *pipeline.DynInst) {
	e.Issued = true
	e.IssueCycle = p.cycle
	if p.collect {
		p.stats.IssueLat.Observe(p.cycle - e.RenameCycle)
	}
	lat := int64(e.In.Op.Latency())
	if e.In.Op == isa.Load {
		l, lvl := p.hier.Access(e.In.Addr)
		e.MemLevel = lvl
		e.MemLatency = l
		if p.collect {
			p.stats.LoadLevel[lvl]++
		}
		if lvl == mem.LevelMemory {
			p.missCount++
		}
		lat = int64(l)
		p.portsUsed++
	}
	p.ev.Schedule(p.cycle+lat, e.Seq)
	p.didWork = true
}

// extractLLIBs drains LLIB heads into the Memory Processors at the FIFO
// extraction rate, reading captured operands from the LLRF.
func (p *Processor) extractLLIBs() {
	p.extractOne(p.llibInt, p.llrfInt, p.mpInt)
	if !p.cfg.SingleLLIB {
		p.extractOne(p.llibFP, p.llrfFP, p.mpFP)
	}
}

func (p *Processor) extractOne(llib *LLIB, llrf *LLRF, mp *pipeline.IssueQueue) {
	for n := 0; n < p.cfg.LLIBRate; n++ {
		if mp.Full() || !llib.HeadExtractable() {
			return
		}
		seq, _ := llib.Head()
		e := p.win.Get(seq)
		conflict := false
		if e.LLRFBank >= 0 {
			conflict = llrf.Read(int(e.LLRFBank))
		}
		llib.Pop()
		mp.Insert(seq, e.Pending == 0)
		p.didWork = true
		if conflict {
			// A bank being written this cycle delays the read one
			// cycle; charge it by ending this LLIB's extraction.
			return
		}
	}
}

// issueMPs executes low-locality code in the Memory Processors.
func (p *Processor) issueMPs() {
	p.issueMP(p.mpInt, p.mpFUI)
	if !p.cfg.SingleLLIB {
		p.issueMP(p.mpFP, p.mpFUF)
	}
}

func (p *Processor) issueMP(mp *pipeline.IssueQueue, fu *pipeline.FUPool) {
	for n := 0; n < p.cfg.MPIssueWidth; n++ {
		seq, ok := mp.Pop()
		if !ok {
			return
		}
		e := p.win.Get(seq)
		if e.In.Op == isa.Load && !p.mayIssueLoad(e) {
			mp.Unpop(seq)
			return
		}
		if !fu.TryIssue(e.In.Op) {
			mp.Unpop(seq)
			return
		}
		p.execute(e)
	}
}

// renameStage maps fetched instructions into the Aging-ROB, the CP issue
// queues and the Address Processor's LSQ, recording producer links.
func (p *Processor) renameStage() {
	for n := 0; n < p.cfg.RenameWidth; n++ {
		if p.fqLen == 0 {
			return
		}
		fe := &p.fq[p.fqHead]
		if fe.ready > p.cycle {
			return
		}
		if p.robCount() >= p.cfg.ROBSize {
			if p.collect {
				p.stats.StallROBFull++
			}
			return
		}
		p.advanceHorizon()
		if int(p.renameSeq-p.horizon) >= p.spreadCap {
			// The oldest low-locality instruction still holds
			// checkpointed state the machine cannot exceed.
			if p.collect {
				p.stats.StallROBFull++
			}
			return
		}
		fp := fe.in.Op.IsFP() || (fe.in.Op == isa.Load && fe.in.Dest.IsFP())
		q := p.cpInt
		if fp {
			q = p.cpFP
		}
		if q.Full() {
			if p.collect {
				p.stats.StallIQFull++
			}
			return
		}
		if fe.in.Op.IsMem() && p.lsqCount >= p.cfg.LSQSize {
			if p.collect {
				p.stats.StallLSQFull++
			}
			return
		}

		seq := p.renameSeq
		p.renameSeq++
		e := p.win.Alloc(seq, fe.in, int(seq-p.horizon))
		e.FetchCycle = fe.fetchCycle
		e.RenameCycle = p.cycle
		e.Mispred = fe.mispred
		e.LowConf = fe.lowConf

		pending := 0
		prods := [2]uint64{pipeline.NoProducer, pipeline.NoProducer}
		for i, src := range [2]isa.Reg{fe.in.Src1, fe.in.Src2} {
			if prod, busy := p.sb.Lookup(src); busy {
				pe := p.win.Get(prod)
				//dkip:alloc-ok consumer lists are pre-capped by Window.Alloc; growth is warmup-only
				pe.Consumers = append(pe.Consumers, seq)
				prods[i] = prod
				pending++
			}
		}
		e.Pending = int8(pending)
		e.Prod1, e.Prod2 = prods[0], prods[1]
		if e.In.Dest.Valid() {
			p.sb.Define(e.In.Dest, seq)
		}
		q.Insert(seq, pending == 0)
		if fe.in.Op.IsMem() {
			p.lsqCount++
		}

		p.fqHead++
		if p.fqHead == len(p.fq) {
			p.fqHead = 0
		}
		p.fqLen--
		p.didWork = true
	}
}

// fetchStage supplies instructions from the trace, predicting branches. A
// detected misprediction halts correct-path supply until the branch resolves
// (in the CP, or — for low-locality branches — in the MP with a checkpoint
// restore).
func (p *Processor) fetchStage(g trace.Generator) {
	if p.fetchStalled || p.cycle < p.resumeCycle {
		return
	}
	for n := 0; n < p.cfg.FetchWidth; n++ {
		if p.fqLen == len(p.fq) {
			return
		}
		in := g.Next()
		if p.collect {
			p.stats.Fetched++
		}
		fe := fetchEntry{in: in, fetchCycle: p.cycle, ready: p.cycle + int64(p.cfg.FrontEndDepth)}
		if in.Op == isa.Branch {
			fe.lowConf = !p.conf.High(in.PC)
			pred := p.bp.Predict(in.PC)
			p.bp.Update(in.PC, in.Taken)
			fe.mispred = pred != in.Taken
			p.conf.Update(in.PC, !fe.mispred)
		}
		tail := p.fqHead + p.fqLen
		if tail >= len(p.fq) {
			tail -= len(p.fq)
		}
		p.fq[tail] = fe
		p.fqLen++
		p.didWork = true
		if fe.mispred {
			p.fetchStalled = true
			return
		}
		if in.Op == isa.Branch && in.Taken {
			return
		}
	}
}

// MaxCheckpointDepth returns the deepest the checkpoint stack got.
func (p *Processor) MaxCheckpointDepth() int { return p.maxCkptDepth }
