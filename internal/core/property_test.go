package core

import (
	"testing"
	"testing/quick"

	"dkip/internal/mem"
	"dkip/internal/workload"
)

// TestRandomConfigsRun drives the D-KIP with randomized (but valid)
// configurations over a real workload: every run must complete, with IPC in
// (0, width], commits conserved, and occupancies within structural bounds.
func TestRandomConfigsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	check := func(cpIno, mpIno bool, cpq, mpq, llib, timer, banks uint8) bool {
		cfg := Config{
			CPInOrder: cpIno,
			MPInOrder: Bool(mpIno),
			CPIQSize:  8 + int(cpq)%72,
			MPIQSize:  4 + int(mpq)%36,
			LLIBSize:  64 + int(llib)*8,
			ROBTimer:  8 + int(timer)%32,
			LLRFBanks: 1 + int(banks)%15,
		}
		g := workload.MustNew("equake")
		p := New(cfg)
		p.Hierarchy().Warm(g.WarmRanges())
		st := p.Run(g, 1000, 6000)
		if st.Committed < 6000 {
			t.Logf("config %+v committed only %d", cfg, st.Committed)
			return false
		}
		if ipc := st.IPC(); ipc <= 0 || ipc > 4.0 {
			t.Logf("config %+v IPC %.3f out of (0,4]", cfg, ipc)
			return false
		}
		if st.CPCommitted+st.MPCommitted != st.Committed {
			t.Logf("config %+v commit split broken", cfg)
			return false
		}
		for i := 0; i < 2; i++ {
			if st.MaxLLIBInstrs[i] > cfg.withDefaults().LLIBSize {
				t.Logf("config %+v LLIB overflow", cfg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestAllBenchmarksComplete runs the default D-KIP briefly on every
// benchmark: none may deadlock or produce degenerate statistics.
func TestAllBenchmarksComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite sweep")
	}
	for _, name := range workload.Names() {
		g := workload.MustNew(name)
		p := New(Config{})
		p.Hierarchy().Warm(g.WarmRanges())
		st := p.Run(g, 2000, 10000)
		if st.Committed < 10000 {
			t.Errorf("%s: committed %d", name, st.Committed)
		}
		if st.IPC() <= 0 || st.IPC() > 4 {
			t.Errorf("%s: IPC %.3f", name, st.IPC())
		}
		if st.Cycles <= 0 {
			t.Errorf("%s: cycles %d", name, st.Cycles)
		}
	}
}

// TestMemoryConfigsComplete runs the D-KIP under every Table 1 memory
// subsystem — including the perfect-cache ones where the LLIB is never used.
func TestMemoryConfigsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	for _, mc := range mem.Table1Configs() {
		g := workload.MustNew("applu")
		p := New(Config{Mem: mc})
		p.Hierarchy().Warm(g.WarmRanges())
		st := p.Run(g, 2000, 10000)
		if st.Committed < 10000 {
			t.Errorf("%s: committed %d", mc.Name, st.Committed)
		}
		if mc.MemLatency == 0 && st.MPCommitted > 0 {
			t.Errorf("%s: %d instructions took the slow path under a perfect cache",
				mc.Name, st.MPCommitted)
		}
	}
}

// TestReplayRecoveryCostsBounded: enabling the replay-distance recovery model
// must change IPC only moderately (recoveries are rare relative to commits).
func TestReplayRecoveryCostsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	run := func(cfg Config) float64 {
		g := workload.MustNew("twolf")
		p := New(cfg)
		p.Hierarchy().Warm(g.WarmRanges())
		return p.Run(g, 3000, 15000).IPC()
	}
	base := run(Config{})
	replay := run(Config{ReplayRecovery: true})
	if replay > base*1.02 {
		t.Errorf("adding recovery cost cannot speed the machine up: %.3f vs %.3f", replay, base)
	}
	if replay < base*0.7 {
		t.Errorf("replay recovery cost implausibly large: %.3f vs %.3f", replay, base)
	}
}
