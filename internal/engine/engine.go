// Package engine is the shared cycle-driven simulation core behind every
// processor model in this repository. It owns the main loop and the stages
// that are identical across architectures — fetch (with branch prediction),
// rename (window allocation, producer links, scoreboard), wakeup/select,
// completion, commit accounting, idle-cycle skipping — plus the
// functional-warm and checkpoint capture/restore plumbing used by sampled
// simulation. Architecture models (internal/core, internal/ooo,
// internal/inorder) embed an Engine and implement Model: a configuration
// plus stage hooks contributing the machine's issue topology and structural
// hazards.
package engine

import (
	"dkip/internal/isa"
	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/predictor"
	"dkip/internal/trace"
)

// Params is the architecture-independent slice of a model's configuration.
type Params struct {
	// Family is the model family name ("core", "ooo", "inorder"); it
	// prefixes engine panics and errors so diagnostics keep their
	// pre-unification texts.
	Family string
	// Name is the configuration's display name.
	Name string

	FetchWidth    int
	RenameWidth   int
	FrontEndDepth int
	// RedirectPenalty is the base front-end redirect cost of a resolved
	// misprediction; models add recovery surcharges via RecoveryExtra.
	RedirectPenalty int

	LSQSize  int
	MemPorts int
	MSHRs    int

	// FetchQueueCap sizes the fetch buffer; WindowCap sizes the DynInst
	// arena (models compute both from their structural resources).
	FetchQueueCap int
	WindowCap     int

	Mem          mem.Config
	NewPredictor func() predictor.Predictor
	// WithConfidence attaches a JRS confidence estimator (the D-KIP family
	// anchors checkpoints on low-confidence branches).
	WithConfidence bool
}

// FetchEntry is one instruction buffered between fetch and rename.
type FetchEntry struct {
	In         isa.Instr
	FetchCycle int64
	Ready      int64 // cycle at which rename may consume it
	Mispred    bool
	LowConf    bool
}

// WakeScan accumulates the next cycle at which an idle machine can make
// progress. It is a reusable engine field, not a closure, so the idle scan
// stays allocation-free.
type WakeScan struct {
	cycle int64
	next  int64
}

// Consider offers one candidate wake cycle.
//
//dkip:hotpath
func (w *WakeScan) Consider(c int64) {
	if c <= w.cycle {
		w.next = w.cycle
	} else if w.next == -1 || c < w.next {
		w.next = c
	}
}

// Engine is the shared simulation state. Fields are exported for the models
// that embed it (and their white-box tests); external packages should treat
// them as read-only.
type Engine struct {
	P Params

	Win  *pipeline.Window
	SB   *pipeline.Scoreboard
	EV   pipeline.EventQueue
	Hier *mem.Hierarchy
	BP   *predictor.Stats
	// Conf is the branch confidence estimator, or nil when the family has
	// none.
	Conf *predictor.Confidence

	// Front end.
	FQ           []FetchEntry
	FQHead       int
	FQLen        int
	FetchStalled bool
	ResumeCycle  int64

	// RenameSeq is the next sequence number to allocate.
	RenameSeq uint64
	LSQCount  int
	MissCount int // outstanding off-chip misses (MSHR occupancy)
	PortsUsed int // cache ports used this cycle

	Cycle   int64
	Collect bool
	Total   uint64
	Stats   pipeline.Stats
	DidWork bool

	model       Model
	statsBase   int64
	measureFrom uint64 // first committed instruction counted in stats
	targetTotal uint64 // last committed instruction counted in stats
	scan        WakeScan
}

// Init wires the engine's shared structures from p and binds the model. It
// must be called exactly once, by the model's constructor, after the model
// has computed FetchQueueCap and WindowCap.
func (e *Engine) Init(p Params, m Model) {
	e.P = p
	e.model = m
	e.Win = pipeline.NewWindow(p.WindowCap)
	e.SB = pipeline.NewScoreboard()
	e.Hier = mem.NewHierarchy(p.Mem)
	e.BP = predictor.NewStats(p.NewPredictor())
	e.FQ = make([]FetchEntry, p.FetchQueueCap)
	if p.WithConfidence {
		e.Conf = predictor.NewConfidence(4096, 8)
	}
}

// Hierarchy exposes the memory hierarchy (cache statistics).
func (e *Engine) Hierarchy() *mem.Hierarchy { return e.Hier }

// Predictor exposes branch predictor statistics.
func (e *Engine) Predictor() *predictor.Stats { return e.BP }

// Confidence returns the branch confidence estimator, or nil when the
// family has none. The sampling driver's functional-warm cursor uses it.
func (e *Engine) Confidence() *predictor.Confidence { return e.Conf }

// Run simulates until warmup+measure instructions have committed and
// returns statistics covering only the measurement phase. The generator
// supplies the correct-path instruction stream. Run may be called again to
// continue the same program with warm structures.
//
//dkip:hotpath
func (e *Engine) Run(g trace.Generator, warmup, measure uint64) *pipeline.Stats {
	if measure == 0 {
		panic(e.P.Family + ": Run with zero measurement length")
	}
	target := e.Total + warmup + measure
	e.measureFrom = e.Total + warmup
	e.targetTotal = target
	if warmup == 0 {
		e.beginMeasure()
	}
	maxCycles := e.Cycle + int64(warmup+measure)*20000 + 10_000_000
	for e.Total < target {
		e.DidWork = false
		e.model.BeginCycle()
		e.model.Stages(g)
		e.renameStage()
		e.fetchStage(g)
		e.model.EndCycle(g)
		e.AdvanceCycle()
		if e.Cycle > maxCycles {
			panic(e.model.BudgetMessage(g.Name(), target))
		}
	}
	out := e.Stats
	out.Cycles = e.Cycle - e.statsBase
	e.model.FinishStats(&out)
	return &out
}

//dkip:hotpath
func (e *Engine) beginMeasure() {
	e.Stats = pipeline.Stats{}
	e.statsBase = e.Cycle
	e.Collect = true
	e.model.OnBeginMeasure()
}

// Commit retires one instruction for accounting purposes. Statistics cover
// exactly the (warmup, warmup+measure] commit range, however commits batch
// within cycles.
//
//dkip:hotpath
func (e *Engine) Commit(d *pipeline.DynInst, path CommitPath) {
	e.Total++
	if !e.Collect {
		if e.Total <= e.measureFrom {
			return
		}
		e.beginMeasure()
	}
	if e.Total > e.targetTotal {
		return
	}
	e.Stats.Committed++
	switch path {
	case CommitCP:
		e.Stats.CPCommitted++
	case CommitMP:
		e.Stats.MPCommitted++
	}
	if d.In.Op == isa.Branch {
		e.Stats.Branches++
		if d.Mispred {
			e.Stats.Mispredicts++
		}
	}
}

// AdvanceCycle steps time, skipping idle stretches when nothing can change
// until the next scheduled event.
//
//dkip:hotpath
func (e *Engine) AdvanceCycle() {
	e.Cycle++
	if e.DidWork {
		return
	}
	// Nothing happened: jump to the next cycle at which something can.
	e.scan.cycle = e.Cycle
	e.scan.next = -1
	if c, ok := e.EV.NextCycle(); ok {
		e.scan.Consider(c)
	}
	if !e.FetchStalled && e.ResumeCycle > e.Cycle {
		e.scan.Consider(e.ResumeCycle)
	}
	if e.FQLen > 0 {
		e.scan.Consider(e.FQ[e.FQHead].Ready)
	}
	e.model.ConsiderWake(&e.scan)
	if e.scan.next > e.Cycle {
		e.Cycle = e.scan.next
	} else if e.scan.next == -1 && e.FQLen == 0 && e.FetchStalled {
		panic(e.P.Family + ": deadlock: fetch stalled with no pending events")
	}
}

// CompleteStage retires finished executions: applies model completion
// bookkeeping, wakes consumers, and resolves branches. Models call it from
// Stages at their completion point.
//
//dkip:hotpath
func (e *Engine) CompleteStage() {
	for {
		seq, ok := e.EV.PopDue(e.Cycle)
		if !ok {
			return
		}
		d := e.Win.Get(seq)
		d.Done = true
		d.CompleteCycle = e.Cycle
		e.model.OnComplete(d)
		for _, cs := range d.Consumers {
			ce := e.Win.Get(cs)
			if ce.Seq != cs || ce.Issued {
				continue
			}
			ce.Pending--
			if ce.Pending == 0 {
				e.model.Wake(ce)
			}
		}
		if d.Mispred {
			pen := int64(e.P.RedirectPenalty) + e.model.RecoveryExtra(d)
			e.FetchStalled = false
			e.ResumeCycle = e.Cycle + pen
		}
		e.DidWork = true
	}
}

// MayIssueLoad checks the structural limits for a load about to issue: a
// free cache port, and — when MSHRs are modeled — a free miss register if
// the access would go off-chip.
//
//dkip:hotpath
func (e *Engine) MayIssueLoad(d *pipeline.DynInst) bool {
	if e.PortsUsed >= e.P.MemPorts {
		return false
	}
	if e.P.MSHRs > 0 && e.MissCount >= e.P.MSHRs && e.Hier.ProbeLongLatency(d.In.Addr) {
		return false
	}
	return true
}

// Execute starts execution of d at the current cycle.
//
//dkip:hotpath
func (e *Engine) Execute(d *pipeline.DynInst) {
	d.Issued = true
	d.IssueCycle = e.Cycle
	if e.Collect {
		e.Stats.IssueLat.Observe(e.Cycle - d.RenameCycle)
	}
	lat := int64(d.In.Op.Latency())
	if d.In.Op == isa.Load {
		l, lvl := e.Hier.Access(d.In.Addr)
		d.MemLevel = lvl
		d.MemLatency = l
		if e.Collect {
			e.Stats.LoadLevel[lvl]++
		}
		if lvl == mem.LevelMemory {
			e.MissCount++
		}
		lat = int64(l)
		e.PortsUsed++
	}
	lat += e.model.IssueExtraLatency(d)
	e.EV.Schedule(e.Cycle+lat, d.Seq)
	e.DidWork = true
}

// IssueSelect performs wakeup/select over a rotated queue view: up to width
// instructions issue, round-robin across queues, each queue blocking at its
// first structurally stalled head. The queues and blocked slices must be
// caller-preallocated scratch (this runs every cycle and must not
// allocate); blocked must arrive zeroed. Returns the number issued.
//
//dkip:hotpath
func (e *Engine) IssueSelect(queues []*pipeline.IssueQueue, blocked []bool, width int, fu *pipeline.FUPool) int {
	issued := 0
	for issued < width {
		progress := false
		for qi, q := range queues {
			if blocked[qi] || issued >= width {
				continue
			}
			seq, ok := q.Pop()
			if !ok {
				blocked[qi] = true
				continue
			}
			d := e.Win.Get(seq)
			if d.In.Op == isa.Load && !e.MayIssueLoad(d) {
				q.Unpop(seq)
				blocked[qi] = true
				continue
			}
			if !fu.TryIssue(d.In.Op) {
				q.Unpop(seq)
				blocked[qi] = true
				continue
			}
			e.Execute(d)
			issued++
			progress = true
		}
		if !progress {
			break
		}
	}
	return issued
}

// renameStage maps fetched instructions into the model's window structures
// and issue queues, recording producer links.
//
//dkip:hotpath
func (e *Engine) renameStage() {
	for n := 0; n < e.P.RenameWidth; n++ {
		if e.FQLen == 0 {
			return
		}
		fe := &e.FQ[e.FQHead]
		if fe.Ready > e.Cycle {
			return
		}
		if !e.model.RenameAdmit() {
			if e.Collect {
				e.Stats.StallROBFull++
			}
			return
		}
		fp := fe.In.Op.IsFP() || (fe.In.Op == isa.Load && fe.In.Dest.IsFP())
		q := e.model.RenameQueue(fp)
		if q.Full() {
			if e.Collect {
				e.Stats.StallIQFull++
			}
			return
		}
		if fe.In.Op.IsMem() && e.LSQCount >= e.P.LSQSize {
			if e.Collect {
				e.Stats.StallLSQFull++
			}
			return
		}

		seq := e.RenameSeq
		e.RenameSeq++
		d := e.Win.Alloc(seq, fe.In, e.model.AllocHint(seq))
		d.FetchCycle = fe.FetchCycle
		d.RenameCycle = e.Cycle
		d.Mispred = fe.Mispred
		d.LowConf = fe.LowConf

		pending := 0
		prods := [2]uint64{pipeline.NoProducer, pipeline.NoProducer}
		for i, src := range [2]isa.Reg{fe.In.Src1, fe.In.Src2} {
			if prod, busy := e.SB.Lookup(src); busy {
				pe := e.Win.Get(prod)
				//dkip:alloc-ok consumer lists are pre-capped by Window.Alloc; growth is warmup-only
				pe.Consumers = append(pe.Consumers, seq)
				prods[i] = prod
				pending++
			}
		}
		d.Pending = int8(pending)
		d.Prod1, d.Prod2 = prods[0], prods[1]
		if d.In.Dest.Valid() {
			e.SB.Define(d.In.Dest, seq)
		}
		q.Insert(seq, pending == 0)
		e.model.OnRename(d, q)
		if fe.In.Op.IsMem() {
			e.LSQCount++
		}

		e.FQHead++
		if e.FQHead == len(e.FQ) {
			e.FQHead = 0
		}
		e.FQLen--
		e.DidWork = true
	}
}

// fetchStage supplies instructions from the trace, predicting branches. A
// detected misprediction halts correct-path supply until the branch
// resolves.
//
//dkip:hotpath
func (e *Engine) fetchStage(g trace.Generator) {
	if e.FetchStalled || e.Cycle < e.ResumeCycle {
		return
	}
	for n := 0; n < e.P.FetchWidth; n++ {
		if e.FQLen == len(e.FQ) {
			return
		}
		in := e.model.FetchNext(g)
		if e.Collect {
			e.Stats.Fetched++
		}
		fe := FetchEntry{In: in, FetchCycle: e.Cycle, Ready: e.Cycle + int64(e.P.FrontEndDepth)}
		if in.Op == isa.Branch {
			pred := e.BP.Predict(in.PC)
			e.BP.Update(in.PC, in.Taken)
			fe.Mispred = pred != in.Taken
			fe.LowConf = e.model.OnFetchBranch(in, fe.Mispred)
		}
		tail := e.FQHead + e.FQLen
		if tail >= len(e.FQ) {
			tail -= len(e.FQ)
		}
		e.FQ[tail] = fe
		e.FQLen++
		e.DidWork = true
		if fe.Mispred {
			// Wrong-path fetch begins; no correct-path instructions
			// arrive until the branch resolves.
			e.FetchStalled = true
			return
		}
		if in.Op == isa.Branch && in.Taken {
			return // a taken branch ends the fetch group
		}
	}
}
