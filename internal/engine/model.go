package engine

import (
	"dkip/internal/isa"
	"dkip/internal/pipeline"
	"dkip/internal/trace"
)

// CommitPath tells the engine which retirement counter a commit belongs to.
type CommitPath uint8

const (
	// CommitDirect is ordinary in-order retirement (the out-of-order and
	// in-order baselines): only Committed is counted.
	CommitDirect CommitPath = iota
	// CommitCP is a D-KIP Cache Processor retirement (Analyze-stage).
	CommitCP
	// CommitMP is a D-KIP out-of-order retirement from a Memory Processor
	// or the Address Processor, covered by a checkpoint.
	CommitMP
)

// Model is the architecture-specific half of a processor. The Engine owns
// the cycle loop, the front end (fetch queue, branch predictor), rename
// bookkeeping (window allocation, producer links, scoreboard), the
// completion event queue, statistics windows, and functional-warm /
// checkpoint plumbing. A Model contributes the machine's structure hazards
// and its issue/commit topology through these hooks.
//
// Every hook that runs on the per-cycle path must carry //dkip:hotpath in
// its implementation: the engine dispatches through this interface, which
// static analysis cannot walk, so each implementation is its own root for
// the allocation gate.
type Model interface {
	// BeginCycle resets per-cycle structures (functional-unit pools,
	// register-file ports). Runs first each cycle.
	BeginCycle()
	// Stages runs the model's back-end stages for this cycle — commit /
	// complete / analyze / issue, in the model's order — typically
	// delegating to Engine.CompleteStage and Engine.IssueSelect. The
	// engine runs rename and fetch afterwards.
	Stages(g trace.Generator)
	// EndCycle runs after fetch, immediately before the clock advances
	// (checkpoint-stack reconciliation, runahead episodes).
	EndCycle(g trace.Generator)
	// ConsiderWake reports additional cycles at which the machine can make
	// progress while idle (e.g. an aging-timer deadline). The engine has
	// already considered the event queue, fetch buffer, and redirect.
	ConsiderWake(w *WakeScan)

	// RenameAdmit reports whether one more instruction may enter the
	// machine (window/ROB occupancy checks). A false return is counted as
	// a StallROBFull by the engine.
	RenameAdmit() bool
	// RenameQueue selects the issue queue for an instruction of the given
	// class. A full queue is counted as StallIQFull by the engine.
	RenameQueue(fp bool) *pipeline.IssueQueue
	// AllocHint returns the in-flight estimate passed to Window.Alloc for
	// its overflow check, with seq the sequence number being allocated
	// (Engine.RenameSeq has already been advanced past it).
	AllocHint(seq uint64) int
	// OnRename records model occupancy for a just-renamed instruction
	// after it was inserted into q (ROB counters, age rings).
	OnRename(d *pipeline.DynInst, q *pipeline.IssueQueue)

	// FetchNext supplies the next instruction (runahead models interpose a
	// replay buffer here).
	FetchNext(g trace.Generator) isa.Instr
	// OnFetchBranch observes a fetched branch after prediction and reports
	// whether it was predicted with low confidence.
	OnFetchBranch(in isa.Instr, mispred bool) bool

	// OnComplete applies model bookkeeping when execution of d finishes:
	// MSHR/LSQ release, scoreboard completion, out-of-order commit. Runs
	// before the engine wakes d's consumers.
	OnComplete(d *pipeline.DynInst)
	// RecoveryExtra returns the redirect-penalty surcharge for a resolved
	// misprediction (checkpoint restore, replay) and performs any recovery
	// side effects. Called only for mispredicted instructions.
	RecoveryExtra(d *pipeline.DynInst) int64
	// Wake routes a now-ready instruction's wakeup to the queue holding it.
	Wake(d *pipeline.DynInst)
	// IssueExtraLatency returns extra execution latency charged at issue
	// (slow-lane re-dispatch delay).
	IssueExtraLatency(d *pipeline.DynInst) int64

	// OnBeginMeasure resets model-owned high-water statistics when the
	// measurement window opens.
	OnBeginMeasure()
	// FinishStats copies model-owned statistics into the result.
	FinishStats(st *pipeline.Stats)
	// BudgetMessage builds the cycle-budget panic message. Only called on
	// the failure path; it may allocate.
	BudgetMessage(bench string, target uint64) string
}
