package engine

import (
	"fmt"

	"dkip/internal/ckpt"
	"dkip/internal/trace"
)

// WarmFunctional advances the architectural state — caches, branch
// predictor, confidence estimator when present — by n instructions of g
// without simulating the pipeline. internal/sample uses this as the
// fast-forward mode between detailed measurement intervals.
func (e *Engine) WarmFunctional(g trace.Generator, n uint64) {
	ckpt.WarmFunctional(e.Hier, e.BP, e.Conf, g, n)
}

// CaptureArch snapshots the architectural state into a checkpoint at stream
// position pos of workload bench. It fails when the configured predictor
// does not implement predictor.Stateful (custom constructors may not). The
// confidence section is present only for families with an estimator.
func (e *Engine) CaptureArch(bench string, pos uint64) (*ckpt.Checkpoint, error) {
	pred, err := e.BP.SaveState()
	if err != nil {
		return nil, err
	}
	c := &ckpt.Checkpoint{
		Bench:    bench,
		Pos:      pos,
		Hier:     e.Hier.State(),
		PredName: e.BP.Name(),
		Pred:     pred,
	}
	if e.Conf != nil {
		conf, err := e.Conf.SaveState()
		if err != nil {
			return nil, err
		}
		c.Conf = conf
	}
	return c, nil
}

// RestoreArch loads a checkpoint captured by CaptureArch. When the engine
// has a confidence estimator but the checkpoint carries no section for it
// (captured by an estimator-less family), the estimator is left untrained;
// a present section is ignored by families without one. The caller still
// owns positioning the generator at c.Pos.
func (e *Engine) RestoreArch(c *ckpt.Checkpoint) error {
	if c.PredName != e.BP.Name() {
		return fmt.Errorf("%s: checkpoint predictor %q does not match %q", e.P.Family, c.PredName, e.BP.Name())
	}
	if err := e.Hier.SetState(c.Hier); err != nil {
		return err
	}
	if err := e.BP.LoadState(c.Pred); err != nil {
		return err
	}
	if e.Conf != nil && c.Conf != nil {
		return e.Conf.LoadState(c.Conf)
	}
	return nil
}
