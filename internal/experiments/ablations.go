package experiments

import (
	"fmt"

	"dkip/internal/core"
	"dkip/internal/mem"
	"dkip/internal/ooo"
	"dkip/internal/sim"
	"dkip/internal/workload"
)

// AblationAnalyze compares the real Analyze stage — which stalls when the
// instruction at the Aging-ROB head is short-latency but still in flight —
// against an idealized stage that never stalls. §3.2 reports the stall costs
// about 0.7% IPC on average.
func AblationAnalyze(r sim.Backend, s Scale) *Table {
	ideal := core.Config{Name: "ideal-analyze", IdealAnalyze: true}
	var jobs []job
	for _, b := range workload.Names() {
		jobs = append(jobs, runDKIP("base/"+b, b, core.Config{}, s))
		jobs = append(jobs, runDKIP("ideal/"+b, b, ideal, s))
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"suite", "baseline IPC", "ideal-analyze IPC", "stall cost (%)"}}
	for _, suite := range []workload.Suite{workload.SpecINT, workload.SpecFP} {
		base := suiteMean(res, "base", suite)
		id := suiteMean(res, "ideal", suite)
		t.Rows = append(t.Rows, []string{suite.String(), f3(base), f3(id), f1(100 * (id/base - 1))})
	}
	t.Notes = append(t.Notes, "paper (§3.2): the Analyze writeback-wait stall costs ~0.7% IPC on average")
	return t
}

// AblationAgingTimer sweeps the Aging-ROB timer. §3.2 requires the timer to
// cover the L2 tag access (so a load's hit/miss status is known when it is
// analyzed); a longer timer only delays classification and grows the ROB.
func AblationAgingTimer(r sim.Backend, s Scale) *Table {
	timers := []int{8, 16, 32, 64}
	var jobs []job
	for _, timer := range timers {
		cfg := core.Config{Name: fmt.Sprintf("t%d", timer), ROBTimer: timer}
		for _, b := range workload.SuiteNames(workload.SpecFP) {
			jobs = append(jobs, runDKIP(cfg.Name+"/"+b, b, cfg, s))
		}
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"ROB timer (cycles)", "ROB entries", "SpecFP IPC"}}
	for _, timer := range timers {
		v := suiteMean(res, fmt.Sprintf("t%d", timer), workload.SpecFP)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", timer), fmt.Sprintf("%d", timer*4), f3(v)})
	}
	t.Notes = append(t.Notes,
		"the paper fixes the timer at 16 cycles: enough to see the L2 tag result (11-cycle L2) without inflating the ROB")
	return t
}

// AblationLLIBSize sweeps the LLIB capacity. §4.2 notes the FIFOs can be
// made larger than the SLIQ at little cost, and Figure 13/14 show occupancy
// rarely demands the full 2048.
func AblationLLIBSize(r sim.Backend, s Scale) *Table {
	sizes := []int{256, 512, 1024, 2048, 4096}
	var jobs []job
	for _, size := range sizes {
		cfg := core.Config{Name: fmt.Sprintf("llib%d", size), LLIBSize: size}
		for _, b := range workload.Names() {
			jobs = append(jobs, runDKIP(cfg.Name+"/"+b, b, cfg, s))
		}
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"LLIB entries (each)", "SpecINT IPC", "SpecFP IPC"}}
	for _, size := range sizes {
		pi := suiteMean(res, fmt.Sprintf("llib%d", size), workload.SpecINT)
		pf := suiteMean(res, fmt.Sprintf("llib%d", size), workload.SpecFP)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", size), f3(pi), f3(pf)})
	}
	t.Notes = append(t.Notes, "paper: growing the FIFOs beyond the SLIQ's 1024 entries has little performance impact")
	return t
}

// AblationLLRF compares the banked, capacity-limited LLRF against ideal
// register storage, and reports how often bank conflicts occurred. §3.2 and
// §4.5 argue the 8×256 banked organization is never the bottleneck.
func AblationLLRF(r sim.Backend, s Scale) *Table {
	ideal := core.Config{Name: "ideal-llrf", IdealLLRF: true}
	var jobs []job
	for _, b := range workload.Names() {
		jobs = append(jobs, runDKIP("base/"+b, b, core.Config{}, s))
		jobs = append(jobs, runDKIP("ideal/"+b, b, ideal, s))
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"suite", "banked LLRF IPC", "ideal storage IPC", "delta (%)", "bank conflicts/10k instr"}}
	for _, suite := range []workload.Suite{workload.SpecINT, workload.SpecFP} {
		base := suiteMean(res, "base", suite)
		id := suiteMean(res, "ideal", suite)
		var conf, instr float64
		for _, b := range workload.SuiteNames(suite) {
			st := res["base/"+b]
			conf += float64(st.LLRFBankConflicts)
			instr += float64(st.Committed)
		}
		t.Rows = append(t.Rows, []string{suite.String(), f3(base), f3(id),
			f1(100 * (id/base - 1)), f1(10000 * conf / instr)})
	}
	t.Notes = append(t.Notes, "paper (§4.5): the single-ported 8-bank LLRF is a bottleneck for neither area nor performance")
	return t
}

// AblationRunahead compares the paper's related-work alternative: a 64-entry
// core with runahead execution (Mutlu et al. [24]) against the plain R10-64
// and the D-KIP. Runahead turns independent misses into prefetches but
// cannot execute the miss-dependent code, so the D-KIP should retain a clear
// SpecFP lead while runahead narrows part of the gap.
func AblationRunahead(r sim.Backend, s Scale) *Table {
	var jobs []job
	for _, b := range workload.Names() {
		jobs = append(jobs, runOOO("R10-64/"+b, b, ooo.R10K64(), s))
		withRA := ooo.R10K64()
		withRA.Name = "R10-64+RA"
		withRA.RunaheadDepth = 256
		jobs = append(jobs, runOOO("R10-64+RA/"+b, b, withRA, s))
		jobs = append(jobs, runDKIP("DKIP/"+b, b, core.Config{}, s))
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"architecture", "SpecINT", "SpecFP"}}
	for _, name := range []string{"R10-64", "R10-64+RA", "DKIP"} {
		t.Rows = append(t.Rows, []string{name,
			f3(suiteMean(res, name, workload.SpecINT)),
			f3(suiteMean(res, name, workload.SpecFP))})
	}
	t.Notes = append(t.Notes,
		"runahead prefetches independent misses under a blocking miss but discards the work;",
		"the D-KIP executes the same slices for real, so it should stay ahead, especially on SpecFP")
	return t
}

// AblationCheckpoint compares checkpoint-placement policies under a
// replay-distance recovery model: stride-only checkpoints vs additionally
// anchoring checkpoints on low-confidence branches (Akkary et al. [12]).
func AblationCheckpoint(r sim.Backend, s Scale) *Table {
	stride := core.Config{Name: "stride", ReplayRecovery: true}
	lowconf := core.Config{Name: "lowconf", ReplayRecovery: true, CheckpointOnLowConf: true}
	var jobs []job
	for _, b := range workload.SuiteNames(workload.SpecINT) {
		jobs = append(jobs, runDKIP("stride/"+b, b, stride, s))
		jobs = append(jobs, runDKIP("lowconf/"+b, b, lowconf, s))
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"checkpoint policy", "SpecINT IPC"}}
	st := suiteMean(res, "stride", workload.SpecINT)
	lc := suiteMean(res, "lowconf", workload.SpecINT)
	t.Rows = append(t.Rows,
		[]string{"every 64 analyzed instructions", f3(st)},
		[]string{"+ low-confidence branches", f3(lc)},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("low-confidence anchoring changes SpecINT IPC by %+.1f%%", 100*(lc/st-1)),
		"integer codes take the rollbacks; anchoring checkpoints at likely-mispredicting branches shortens replay")
	return t
}

// AblationPrefetch pits hardware prefetching — industry's answer to the same
// streaming misses the D-KIP hides — against the decoupled window, on both a
// small core and the D-KIP itself. Next-4-line prefetching rescues much of
// the streaming FP loss on the small core but cannot touch pointer chains;
// the D-KIP's window subsumes most of what prefetching provides.
func AblationPrefetch(r sim.Backend, s Scale) *Table {
	pf := mem.DefaultConfig()
	pf.PrefetchDegree = 4
	r64 := ooo.R10K64()
	r64pf := ooo.R10K64()
	r64pf.Name = "R10-64+PF4"
	r64pf.Mem = pf
	dk := core.Config{Name: "DKIP"}
	dkpf := core.Config{Name: "DKIP+PF4", Mem: pf}

	var jobs []job
	for _, b := range workload.Names() {
		jobs = append(jobs, runOOO("R10-64/"+b, b, r64, s))
		jobs = append(jobs, runOOO("R10-64+PF4/"+b, b, r64pf, s))
		jobs = append(jobs, runDKIP("DKIP/"+b, b, dk, s))
		jobs = append(jobs, runDKIP("DKIP+PF4/"+b, b, dkpf, s))
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"architecture", "SpecINT", "SpecFP"}}
	for _, name := range []string{"R10-64", "R10-64+PF4", "DKIP", "DKIP+PF4"} {
		t.Rows = append(t.Rows, []string{name,
			f3(suiteMean(res, name, workload.SpecINT)),
			f3(suiteMean(res, name, workload.SpecFP))})
	}
	t.Notes = append(t.Notes,
		"the prefetcher is timing-free (optimistic); even so the D-KIP retains its lead —",
		"prefetching cannot execute the dependent slices or follow pointer chains")
	return t
}

// AblationMSHR sweeps the number of miss-status holding registers: the
// memory-level parallelism the D-KIP's kilo-instruction window exposes is
// only realized if the memory system can track that many outstanding misses.
// The paper assumes an unconstrained miss path; this quantifies the demand.
func AblationMSHR(r sim.Backend, s Scale) *Table {
	counts := []int{1, 4, 8, 16, 32, 0} // 0 = unlimited
	label := func(n int) string {
		if n == 0 {
			return "unlimited"
		}
		return fmt.Sprintf("%d", n)
	}
	var jobs []job
	for _, n := range counts {
		cfg := core.Config{Name: "mshr-" + label(n), MSHRs: n}
		for _, b := range workload.SuiteNames(workload.SpecFP) {
			jobs = append(jobs, runDKIP(cfg.Name+"/"+b, b, cfg, s))
		}
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"MSHRs", "SpecFP IPC"}}
	for _, n := range counts {
		t.Rows = append(t.Rows, []string{label(n),
			f3(suiteMean(res, "mshr-"+label(n), workload.SpecFP))})
	}
	t.Notes = append(t.Notes,
		"with one MSHR the machine degenerates toward a blocking cache regardless of window size;",
		"saturation shows how many concurrent misses the 2048-entry LLIBs actually sustain")
	return t
}

// AblationSingleLLIB quantifies the dual LLIB + dual MP organization against
// a single merged pair — the paper credits part of the D-KIP's SpecFP edge
// over the KILO processor to the split (§4.2).
func AblationSingleLLIB(r sim.Backend, s Scale) *Table {
	single := core.Config{Name: "single", SingleLLIB: true}
	var jobs []job
	for _, b := range workload.Names() {
		jobs = append(jobs, runDKIP("dual/"+b, b, core.Config{}, s))
		jobs = append(jobs, runDKIP("single/"+b, b, single, s))
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"suite", "dual LLIB/MP IPC", "single LLIB/MP IPC", "dual advantage (%)"}}
	for _, suite := range []workload.Suite{workload.SpecINT, workload.SpecFP} {
		dual := suiteMean(res, "dual", suite)
		sing := suiteMean(res, "single", suite)
		t.Rows = append(t.Rows, []string{suite.String(), f3(dual), f3(sing), f1(100 * (dual/sing - 1))})
	}
	t.Notes = append(t.Notes,
		"paper (§4.2): two LLIBs progress out-of-order with respect to each other and two MPs add execution bandwidth")
	return t
}
