package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dkip/internal/sim"
	"dkip/internal/workload"
)

// diffRun is the normalized per-run record of the differential golden: one
// sim.Result with the wall-clock and provenance fields (elapsed_ns, cached)
// dropped, keyed by the spec's content key. The stats are stored as raw
// JSON and compared by canonical re-encoding.
type diffRun struct {
	Key     string          `json:"key"`
	Arch    string          `json:"arch"`
	Config  string          `json:"config"`
	Bench   string          `json:"bench"`
	Warmup  uint64          `json:"warmup"`
	Measure uint64          `json:"measure"`
	Stats   json.RawMessage `json:"stats"`
}

// differentialJobs is the cross-engine spec matrix the differential golden
// pins: the Figure 9 grid (both out-of-order presets, the KILO machine, and
// the default D-KIP over every benchmark) plus the Figure 10 scheduler
// variants on two FP workloads — every pre-engine-refactor code path of the
// two original models, at QuickScale so the records match the quick-artifact
// scale the golden was extracted from.
func differentialJobs() []job {
	s := QuickScale()
	var jobs []job
	for _, a := range fig9Configs() {
		for _, b := range workload.Names() {
			jobs = append(jobs, a.mk(b, s))
		}
	}
	for _, cp := range cpPoints {
		for _, mp := range mpPoints {
			cfg := dkipSched(cp, mp)
			for _, b := range []string{"swim", "applu"} {
				jobs = append(jobs, runDKIP(cfg.Name+"/"+b, b, cfg, s))
			}
		}
	}
	return jobs
}

// TestDifferentialGolden is the cross-engine refactor gate: simulating the
// differential matrix must reproduce, byte for byte (modulo wall clock), the
// records the pre-engine-refactor simulator produced for the same specs —
// including the content keys, so a hash drift and a behavior drift are both
// caught. The golden file was extracted from a full pre-refactor
// `cmd/experiments -run all -quick -json` artifact; regenerate with -update
// only when a behavior change is intended, and say so in the commit.
func TestDifferentialGolden(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("differential matrix is simulation-heavy; covered by the non-race run")
	}
	if testing.Short() {
		t.Skip("differential matrix simulates ~130 quick-scale runs")
	}

	jobs := differentialJobs()
	specs := make([]sim.RunSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = j.spec
	}
	results, err := sim.NewRunner().RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}

	got := make([]diffRun, len(results))
	for i, r := range results {
		stats, err := json.Marshal(r.Stats)
		if err != nil {
			t.Fatal(err)
		}
		got[i] = diffRun{
			Key: r.Key, Arch: r.Arch, Config: r.Config, Bench: r.Bench,
			Warmup: r.Warmup, Measure: r.Measure, Stats: stats,
		}
	}

	path := filepath.Join("testdata", "differential.golden.json")
	if *update {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing differential golden (run with -update to create): %v", err)
	}
	var want []diffRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]diffRun, len(want))
	for _, w := range want {
		byKey[w.Key] = w
	}

	for i, g := range got {
		w, ok := byKey[g.Key]
		if !ok {
			t.Errorf("%s (%s/%s): content key %s not in the pre-refactor golden — the spec hash drifted",
				jobs[i].key, g.Config, g.Bench, g.Key)
			continue
		}
		if g.Arch != w.Arch || g.Config != w.Config || g.Bench != w.Bench ||
			g.Warmup != w.Warmup || g.Measure != w.Measure {
			t.Errorf("%s: record header drifted: got %s/%s/%s %d/%d, want %s/%s/%s %d/%d",
				g.Key, g.Arch, g.Config, g.Bench, g.Warmup, g.Measure,
				w.Arch, w.Config, w.Bench, w.Warmup, w.Measure)
		}
		if gs, ws := canonJSON(t, g.Stats), canonJSON(t, w.Stats); gs != ws {
			t.Errorf("%s (%s/%s): stats drifted from the pre-refactor engine:\ngot:  %s\nwant: %s",
				g.Key, g.Config, g.Bench, gs, ws)
		}
	}
}

// canonJSON re-encodes raw JSON with sorted keys so formatting differences
// between the golden file and a fresh Marshal never count as drift.
func canonJSON(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var v interface{}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
