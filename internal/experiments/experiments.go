// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 and §4). Each experiment is a named function producing a
// Table; the registry maps the paper's table/figure numbers to them. The
// cmd/experiments binary and the root bench_test.go both drive this package.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dkip/internal/core"
	"dkip/internal/inorder"
	"dkip/internal/ooo"
	"dkip/internal/pipeline"
	"dkip/internal/sample"
	"dkip/internal/sim"
	"dkip/internal/workload"
)

// Scale controls simulation length: warmup instructions (not measured) and
// measured instructions per benchmark/configuration pair. A non-nil Sample
// runs every simulation sampled under that plan (functional warming with
// periodic detailed intervals) instead of in full detail.
type Scale struct {
	Warmup  uint64       `json:"warmup"`
	Measure uint64       `json:"measure"`
	Sample  *sample.Plan `json:"sample,omitempty"`
}

// QuickScale is sized for test suites and benchmarks: seconds per experiment.
func QuickScale() Scale { return Scale{Warmup: 10_000, Measure: 40_000} }

// FullScale is the cmd/experiments default: minutes for the big sweeps.
func FullScale() Scale { return Scale{Warmup: 30_000, Measure: 200_000} }

// Table is a formatted experiment result. The JSON tags define the artifact
// schema cmd/experiments -json emits.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Notes carries the paper-vs-measured commentary printed under the
	// table.
	Notes []string `json:"notes,omitempty"`
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not needed:
// cells never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// registry maps experiment ids to their implementations. Every
// implementation simulates exclusively through the sim.Backend it is handed
// — a local Runner (overlapping runs across experiments memoize per
// process) or a serve.Client forwarding to a shared dkipd daemon.
var registry = map[string]struct {
	title string
	fn    func(sim.Backend, Scale) *Table
}{
	"table1":  {"Memory subsystem configurations (limit study)", Table1},
	"table2":  {"Invariant architectural parameters", Table2},
	"table3":  {"Default values for variable parameters", Table3},
	"fig1":    {"IPC vs window size under six memory subsystems, SpecINT", Figure1},
	"fig2":    {"IPC vs window size under six memory subsystems, SpecFP", Figure2},
	"fig3":    {"Decode-to-issue distance histogram, SpecFP, MEM-400", Figure3},
	"fig9":    {"D-KIP vs baselines and the traditional KILO processor", Figure9},
	"fig10":   {"Impact of scheduling policy and queue sizes, SpecFP", Figure10},
	"fig11":   {"Impact of L2 cache size, SpecINT", Figure11},
	"fig12":   {"Impact of L2 cache size, SpecFP", Figure12},
	"fig13":   {"Maximum LLIB occupancy (instructions and registers), SpecINT", Figure13},
	"fig14":   {"Maximum LLIB occupancy (instructions and registers), SpecFP", Figure14},
	"sec43":   {"Scheduler-policy speedup summary (Section 4.3)", Section43},
	"inorder": {"In-order C920-class calibration core vs the paper machines", Inorder},
	"sampled": {"Sampled vs full-detail CPI across the Figure 9 grid", SampledAccuracy},
	"sec44":   {"Cache-processor instruction share vs L2 size (Section 4.4)", Section44},

	"ablation-analyze":    {"Analyze-stage stall vs idealized analyze", AblationAnalyze},
	"ablation-runahead":   {"Runahead execution vs the D-KIP (related-work alternative)", AblationRunahead},
	"ablation-checkpoint": {"Checkpoint placement: stride vs low-confidence branches", AblationCheckpoint},
	"ablation-mshr":       {"Memory-level parallelism demand: MSHR count sweep", AblationMSHR},
	"ablation-prefetch":   {"Hardware prefetching vs the decoupled window", AblationPrefetch},
	"ablation-aging":      {"Aging-ROB timer sensitivity", AblationAgingTimer},
	"ablation-llib":       {"LLIB size sensitivity", AblationLLIBSize},
	"ablation-llrf":       {"Banked LLRF vs ideal register storage", AblationLLRF},
	"ablation-singlellib": {"Single merged LLIB/MP vs the paper's dual organization", AblationSingleLLIB},
}

// IDs returns all experiment identifiers in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the one-line description of an experiment.
func Title(id string) (string, bool) {
	e, ok := registry[id]
	return e.title, ok
}

// shared is the process-wide Backend behind Run: every figure, table,
// ablation, command, and benchmark that goes through this package shares its
// memo cache, so e.g. the default D-KIP simulated for Figure 9 is reused by
// Figures 13/14 and most ablation baselines.
var (
	sharedMu sync.Mutex
	shared   sim.Backend = sim.NewRunner()
)

// Runner returns the process-wide shared Backend (for metrics inspection and
// cmd wiring).
func Runner() sim.Backend {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	return shared
}

// UseRunner replaces the process-wide shared Backend, returning the previous
// one. cmd/experiments installs a Runner sized by -parallel (or a remote
// client when -remote is set); tests install instrumented Runners.
func UseRunner(r sim.Backend) sim.Backend {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	prev := shared
	shared = r
	return prev
}

// Run executes one experiment by id on the process-wide shared Runner.
func Run(id string, s Scale) (*Table, error) {
	return RunWith(Runner(), id, s)
}

// RunWith executes one experiment by id, simulating through r. Backend
// failures raised out of runAll deep inside an experiment (reachable for a
// remote backend whose daemon restarts mid-sweep) surface as ordinary
// errors, not crashes.
func RunWith(r sim.Backend, id string, s Scale) (t *Table, err error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), " "))
	}
	defer func() {
		if rec := recover(); rec != nil {
			be, ok := rec.(backendError)
			if !ok {
				panic(rec)
			}
			t, err = nil, be.err
		}
	}()
	t = e.fn(r, s)
	t.ID = id
	if t.Title == "" {
		t.Title = e.title
	}
	return t, nil
}

// ---- shared simulation helpers ----

// job is one (architecture, benchmark) simulation: an experiment-local
// result key plus the canonical RunSpec handed to the Runner.
type job struct {
	key  string
	spec sim.RunSpec
}

// backendError carries a Backend failure out of runAll, through the
// error-less experiment functions, to RunWith's recover.
type backendError struct{ err error }

// runAll executes jobs through the backend's worker pool and returns stats
// keyed by job key. Identical specs — within this call or against anything
// the backend has executed before — simulate once.
func runAll(r sim.Backend, jobs []job) map[string]*pipeline.Stats {
	specs := make([]sim.RunSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = j.spec
	}
	results, err := r.RunAll(specs)
	if err != nil {
		// Specs are built from registered configurations and benchmark
		// names, so a local failure is a programming error — but a remote
		// backend legitimately fails on transport; RunWith turns this into
		// an ordinary error either way.
		panic(backendError{fmt.Errorf("experiments: %w", err)})
	}
	out := make(map[string]*pipeline.Stats, len(jobs))
	for i, j := range jobs {
		out[j.key] = results[i].Stats
	}
	return out
}

// runAllResults is runAll keeping the whole Result per job, for experiments
// that need more than pipeline stats (e.g. the sampling summary).
func runAllResults(r sim.Backend, jobs []job) map[string]*sim.Result {
	specs := make([]sim.RunSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = j.spec
	}
	results, err := r.RunAll(specs)
	if err != nil {
		panic(backendError{fmt.Errorf("experiments: %w", err)})
	}
	out := make(map[string]*sim.Result, len(jobs))
	for i, j := range jobs {
		out[j.key] = results[i]
	}
	return out
}

// runOOO builds a job simulating an out-of-order (or KILO) configuration.
func runOOO(key, bench string, cfg ooo.Config, s Scale) job {
	j := job{key: key, spec: sim.OOOSpec(bench, cfg, s.Warmup, s.Measure)}
	if s.Sample != nil {
		j.spec.Sample = *s.Sample
	}
	return j
}

// runDKIP builds a job simulating a D-KIP configuration.
func runDKIP(key, bench string, cfg core.Config, s Scale) job {
	j := job{key: key, spec: sim.DKIPSpec(bench, cfg, s.Warmup, s.Measure)}
	if s.Sample != nil {
		j.spec.Sample = *s.Sample
	}
	return j
}

// runInorder builds a job simulating an in-order (C920-class) configuration.
func runInorder(key, bench string, cfg inorder.Config, s Scale) job {
	j := job{key: key, spec: sim.InorderSpec(bench, cfg, s.Warmup, s.Measure)}
	if s.Sample != nil {
		j.spec.Sample = *s.Sample
	}
	return j
}

// suiteMean averages IPC over a suite from keyed results; key is
// prefix+"/"+benchmark.
func suiteMean(res map[string]*pipeline.Stats, prefix string, suite workload.Suite) float64 {
	names := workload.SuiteNames(suite)
	var sum float64
	for _, n := range names {
		st, ok := res[prefix+"/"+n]
		if !ok {
			panic(fmt.Sprintf("experiments: missing result %s/%s", prefix, n))
		}
		sum += st.IPC()
	}
	return sum / float64(len(names))
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
