// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 and §4). Each experiment is a named function producing a
// Table; the registry maps the paper's table/figure numbers to them. The
// cmd/experiments binary and the root bench_test.go both drive this package.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"dkip/internal/core"
	"dkip/internal/ooo"
	"dkip/internal/pipeline"
	"dkip/internal/workload"
)

// Scale controls simulation length: warmup instructions (not measured) and
// measured instructions per benchmark/configuration pair.
type Scale struct {
	Warmup, Measure uint64
}

// QuickScale is sized for test suites and benchmarks: seconds per experiment.
func QuickScale() Scale { return Scale{Warmup: 10_000, Measure: 40_000} }

// FullScale is the cmd/experiments default: minutes for the big sweeps.
func FullScale() Scale { return Scale{Warmup: 30_000, Measure: 200_000} }

// Table is a formatted experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries the paper-vs-measured commentary printed under the
	// table.
	Notes []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not needed:
// cells never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// registry maps experiment ids to their implementations.
var registry = map[string]struct {
	title string
	fn    func(Scale) *Table
}{
	"table1": {"Memory subsystem configurations (limit study)", Table1},
	"table2": {"Invariant architectural parameters", Table2},
	"table3": {"Default values for variable parameters", Table3},
	"fig1":   {"IPC vs window size under six memory subsystems, SpecINT", Figure1},
	"fig2":   {"IPC vs window size under six memory subsystems, SpecFP", Figure2},
	"fig3":   {"Decode-to-issue distance histogram, SpecFP, MEM-400", Figure3},
	"fig9":   {"D-KIP vs baselines and the traditional KILO processor", Figure9},
	"fig10":  {"Impact of scheduling policy and queue sizes, SpecFP", Figure10},
	"fig11":  {"Impact of L2 cache size, SpecINT", Figure11},
	"fig12":  {"Impact of L2 cache size, SpecFP", Figure12},
	"fig13":  {"Maximum LLIB occupancy (instructions and registers), SpecINT", Figure13},
	"fig14":  {"Maximum LLIB occupancy (instructions and registers), SpecFP", Figure14},
	"sec43":  {"Scheduler-policy speedup summary (Section 4.3)", Section43},
	"sec44":  {"Cache-processor instruction share vs L2 size (Section 4.4)", Section44},

	"ablation-analyze":    {"Analyze-stage stall vs idealized analyze", AblationAnalyze},
	"ablation-runahead":   {"Runahead execution vs the D-KIP (related-work alternative)", AblationRunahead},
	"ablation-checkpoint": {"Checkpoint placement: stride vs low-confidence branches", AblationCheckpoint},
	"ablation-mshr":       {"Memory-level parallelism demand: MSHR count sweep", AblationMSHR},
	"ablation-prefetch":   {"Hardware prefetching vs the decoupled window", AblationPrefetch},
	"ablation-aging":      {"Aging-ROB timer sensitivity", AblationAgingTimer},
	"ablation-llib":       {"LLIB size sensitivity", AblationLLIBSize},
	"ablation-llrf":       {"Banked LLRF vs ideal register storage", AblationLLRF},
	"ablation-singlellib": {"Single merged LLIB/MP vs the paper's dual organization", AblationSingleLLIB},
}

// IDs returns all experiment identifiers in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the one-line description of an experiment.
func Title(id string) (string, bool) {
	e, ok := registry[id]
	return e.title, ok
}

// Run executes one experiment by id.
func Run(id string, s Scale) (*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), " "))
	}
	t := e.fn(s)
	t.ID = id
	if t.Title == "" {
		t.Title = e.title
	}
	return t, nil
}

// ---- shared simulation helpers ----

// job is one (architecture, benchmark) simulation.
type job struct {
	key   string
	bench string
	run   func(g *workload.Benchmark) *pipeline.Stats
}

// runAll executes jobs across all CPUs and returns stats keyed by job key.
// Every job builds its own generator and processor, so runs are independent
// and deterministic regardless of scheduling.
func runAll(jobs []job) map[string]*pipeline.Stats {
	results := make([]*pipeline.Stats, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			g := workload.MustNew(jobs[i].bench)
			results[i] = jobs[i].run(g)
		}(i)
	}
	wg.Wait()
	out := make(map[string]*pipeline.Stats, len(jobs))
	for i, j := range jobs {
		out[j.key] = results[i]
	}
	return out
}

// runOOO builds a job simulating an out-of-order (or KILO) configuration.
func runOOO(key, bench string, cfg ooo.Config, s Scale) job {
	return job{key: key, bench: bench, run: func(g *workload.Benchmark) *pipeline.Stats {
		p := ooo.New(cfg)
		p.Hierarchy().Warm(g.WarmRanges())
		return p.Run(g, s.Warmup, s.Measure)
	}}
}

// runDKIP builds a job simulating a D-KIP configuration.
func runDKIP(key, bench string, cfg core.Config, s Scale) job {
	return job{key: key, bench: bench, run: func(g *workload.Benchmark) *pipeline.Stats {
		p := core.New(cfg)
		p.Hierarchy().Warm(g.WarmRanges())
		return p.Run(g, s.Warmup, s.Measure)
	}}
}

// suiteMean averages IPC over a suite from keyed results; key is
// prefix+"/"+benchmark.
func suiteMean(res map[string]*pipeline.Stats, prefix string, suite workload.Suite) float64 {
	names := workload.SuiteNames(suite)
	var sum float64
	for _, n := range names {
		st, ok := res[prefix+"/"+n]
		if !ok {
			panic(fmt.Sprintf("experiments: missing result %s/%s", prefix, n))
		}
		sum += st.IPC()
	}
	return sum / float64(len(names))
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
