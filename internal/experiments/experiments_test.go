package experiments

import (
	"strings"
	"testing"

	"dkip/internal/workload"
)

func tiny() Scale { return Scale{Warmup: 2_000, Measure: 8_000} }

func TestRegistryComplete(t *testing.T) {
	// Every table and figure with data in the paper must be registered.
	want := []string{
		"table1", "table2", "table3",
		"fig1", "fig2", "fig3", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"sec43", "sec44", "sampled", "inorder",
		"ablation-analyze", "ablation-aging", "ablation-llib", "ablation-llrf", "ablation-singlellib",
		"ablation-runahead", "ablation-checkpoint", "ablation-mshr",
		"ablation-prefetch",
	}
	for _, id := range want {
		if _, ok := Title(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(IDs()), len(want))
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", tiny()); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestStaticTables(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3"} {
		tab, err := Run(id, tiny())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty", id)
		}
		if !strings.Contains(tab.String(), tab.ID) {
			t.Errorf("%s: rendering lacks id", id)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tab, _ := Run("table1", tiny())
	if len(tab.Rows) != 6 {
		t.Fatalf("table 1 rows = %d, want 6", len(tab.Rows))
	}
	if tab.Rows[4][0] != "MEM-400" || tab.Rows[4][5] != "400" {
		t.Errorf("MEM-400 row wrong: %v", tab.Rows[4])
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "t",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"note"},
	}
	s := tab.String()
	if !strings.Contains(s, "333") || !strings.Contains(s, "# note") {
		t.Errorf("rendering wrong:\n%s", s)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") || !strings.Contains(csv, "333,4") {
		t.Errorf("csv wrong:\n%s", csv)
	}
}

func TestFigure3Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tab, err := Run("fig3", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no histogram rows")
	}
	if len(tab.Notes) < 3 {
		t.Error("expected summary notes")
	}
}

func TestFigure13Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tab, err := Run("fig13", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(workload.SuiteNames(workload.SpecINT)) {
		t.Errorf("rows = %d, want one per SpecINT benchmark", len(tab.Rows))
	}
}

func TestSuiteMeanPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("missing result should panic")
		}
	}()
	suiteMean(nil, "x", workload.SpecINT)
}
