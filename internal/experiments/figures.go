package experiments

import (
	"fmt"

	"dkip/internal/core"
	"dkip/internal/kilo"
	"dkip/internal/mem"
	"dkip/internal/ooo"
	"dkip/internal/pipeline"
	"dkip/internal/sim"
	"dkip/internal/workload"
)

// WindowSizes are the instruction-window sizes of Figures 1 and 2.
var WindowSizes = []int{32, 48, 64, 128, 256, 512, 1024, 2048, 4096}

// windowSweep produces Figure 1 (SpecINT) or Figure 2 (SpecFP): average IPC
// of a ROB-limited 4-way core for each memory subsystem of Table 1 across
// window sizes.
func windowSweep(r sim.Backend, suite workload.Suite, s Scale) *Table {
	mems := mem.Table1Configs()
	var jobs []job
	for _, mc := range mems {
		for _, w := range WindowSizes {
			prefix := fmt.Sprintf("%s/%d", mc.Name, w)
			for _, b := range workload.SuiteNames(suite) {
				jobs = append(jobs, runOOO(prefix+"/"+b, b, ooo.LimitCore(w, mc), s))
			}
		}
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"window"}}
	for _, mc := range mems {
		t.Columns = append(t.Columns, mc.Name)
	}
	for _, w := range WindowSizes {
		row := []string{fmt.Sprintf("%d", w)}
		for _, mc := range mems {
			row = append(row, f3(suiteMean(res, fmt.Sprintf("%s/%d", mc.Name, w), suite)))
		}
		t.Rows = append(t.Rows, row)
	}
	if suite == workload.SpecFP {
		t.Notes = append(t.Notes,
			"paper: with a 4K-entry window almost all configurations recover to the perfect-L1 level",
			"paper: load misses leave the critical path on SpecFP once enough instructions are in flight")
	} else {
		t.Notes = append(t.Notes,
			"paper: for SpecINT large windows help far less — pointer chasing and mispredictions",
			"dependent on uncached data keep long-latency loads on the critical path")
	}
	return t
}

// Figure1 reproduces the SpecINT memory-wall limit study.
func Figure1(r sim.Backend, s Scale) *Table { return windowSweep(r, workload.SpecINT, s) }

// Figure2 reproduces the SpecFP memory-wall limit study.
func Figure2(r sim.Backend, s Scale) *Table { return windowSweep(r, workload.SpecFP, s) }

// Figure3 reproduces the decode→issue distance histogram: SpecFP on an
// effectively unconstrained window with 400-cycle memory. The paper reports
// ~70% of instructions issuing within 300 cycles, ~11% near 400 (one miss)
// and ~4% near 800 (a chain of two misses).
func Figure3(r sim.Backend, s Scale) *Table {
	var jobs []job
	for _, b := range workload.SuiteNames(workload.SpecFP) {
		jobs = append(jobs, runOOO("u/"+b, b, ooo.LimitCore(4096, mem.DefaultConfig()), s))
	}
	res := runAll(r, jobs)

	// Aggregate the histograms over the suite.
	var agg pipeline.Histogram
	for _, st := range res {
		for i, n := range st.IssueLat.Buckets {
			agg.Buckets[i] += n
			agg.Total += n
		}
		agg.SumCycles += st.IssueLat.SumCycles
	}
	t := &Table{Columns: []string{"decode->issue (cycles)", "% instructions"}}
	for i := range agg.Buckets {
		lo := i * pipeline.HistBucket
		if agg.Buckets[i] == 0 {
			continue
		}
		label := fmt.Sprintf("%d-%d", lo, lo+pipeline.HistBucket)
		if i == len(agg.Buckets)-1 {
			label = fmt.Sprintf(">=%d", lo)
		}
		t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%.2f", 100*agg.Frac(i))})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mass <300 cycles: %.1f%% (paper ~70%%)", 100*agg.FracRange(0, 300)),
		fmt.Sprintf("mass 300-500 cycles (one miss): %.1f%% (paper ~11%% near 400)", 100*agg.FracRange(300, 500)),
		fmt.Sprintf("mass 700-900 cycles (two-miss chains): %.1f%% (paper ~4%% near 800)", 100*agg.FracRange(700, 900)),
		fmt.Sprintf("mean distance: %.0f cycles", agg.Mean()))
	return t
}

// fig9Configs returns the four architectures compared in Figure 9.
func fig9Configs() []struct {
	name string
	mk   func(bench string, s Scale) job
} {
	return []struct {
		name string
		mk   func(bench string, s Scale) job
	}{
		{"R10-64", func(b string, s Scale) job { return runOOO("R10-64/"+b, b, ooo.R10K64(), s) }},
		{"R10-256", func(b string, s Scale) job { return runOOO("R10-256/"+b, b, ooo.R10K256(), s) }},
		{"KILO-1024", func(b string, s Scale) job { return runOOO("KILO-1024/"+b, b, kilo.Config1024(), s) }},
		{"DKIP-2048", func(b string, s Scale) job { return runDKIP("DKIP-2048/"+b, b, core.Config{}, s) }},
	}
}

// Figure9 reproduces the headline comparison: R10-64, R10-256, KILO-1024 and
// D-KIP-2048 average IPC on each suite.
func Figure9(r sim.Backend, s Scale) *Table {
	var jobs []job
	for _, a := range fig9Configs() {
		for _, b := range workload.Names() {
			jobs = append(jobs, a.mk(b, s))
		}
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"architecture", "SpecINT", "SpecFP"}}
	type pair struct{ intIPC, fpIPC float64 }
	vals := map[string]pair{}
	for _, a := range fig9Configs() {
		pi := suiteMean(res, a.name, workload.SpecINT)
		pf := suiteMean(res, a.name, workload.SpecFP)
		vals[a.name] = pair{pi, pf}
		t.Rows = append(t.Rows, []string{a.name, f3(pi), f3(pf)})
	}
	t.Notes = append(t.Notes,
		"paper: SpecINT 1.19 / 1.32 / 1.38 / 1.33; SpecFP 1.26 / 1.71 / 2.23 / 2.37",
		fmt.Sprintf("D-KIP vs R10-64 SpecFP speedup: %.2fx (paper 1.88x)", vals["DKIP-2048"].fpIPC/vals["R10-64"].fpIPC),
		fmt.Sprintf("D-KIP vs R10-256 SpecFP speedup: %.2fx (paper 1.40x)", vals["DKIP-2048"].fpIPC/vals["R10-256"].fpIPC))
	return t
}

// CPConfig/MPConfig describe the Figure 10 design points.
type schedPoint struct {
	label   string
	inOrder bool
	size    int
}

var cpPoints = []schedPoint{
	{"INO", true, 40},
	{"OOO-20", false, 20},
	{"OOO-40", false, 40},
	{"OOO-60", false, 60},
	{"OOO-80", false, 80},
}

var mpPoints = []schedPoint{
	{"MP-INO", true, 20},
	{"MP-OOO-20", false, 20},
	{"MP-OOO-40", false, 40},
}

func dkipSched(cp, mp schedPoint) core.Config {
	return core.Config{
		Name:      fmt.Sprintf("%s/%s", cp.label, mp.label),
		CPInOrder: cp.inOrder, CPIQSize: cp.size,
		MPInOrder: core.Bool(mp.inOrder), MPIQSize: mp.size,
	}
}

// Figure10 reproduces the scheduling-policy and queue-size study on SpecFP:
// CP ∈ {in-order, OoO-20/40/60/80} × MP ∈ {in-order, OoO-20, OoO-40}.
func Figure10(r sim.Backend, s Scale) *Table {
	var jobs []job
	for _, cp := range cpPoints {
		for _, mp := range mpPoints {
			cfg := dkipSched(cp, mp)
			for _, b := range workload.SuiteNames(workload.SpecFP) {
				jobs = append(jobs, runDKIP(cfg.Name+"/"+b, b, cfg, s))
			}
		}
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"CP config"}}
	for _, mp := range mpPoints {
		t.Columns = append(t.Columns, mp.label)
	}
	grid := map[string]float64{}
	for _, cp := range cpPoints {
		row := []string{cp.label}
		for _, mp := range mpPoints {
			v := suiteMean(res, fmt.Sprintf("%s/%s", cp.label, mp.label), workload.SpecFP)
			grid[cp.label+"/"+mp.label] = v
			row = append(row, f3(v))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("OoO-40 CP vs in-order CP (in-order MP): +%.0f%% (paper ~32%%)",
			100*(grid["OOO-40/MP-INO"]/grid["INO/MP-INO"]-1)),
		fmt.Sprintf("OoO-80 CP vs OoO-20 CP (in-order MP): +%.0f%% (paper ~13%%)",
			100*(grid["OOO-80/MP-INO"]/grid["OOO-20/MP-INO"]-1)),
		fmt.Sprintf("OoO-40 MP vs in-order MP at OoO-80 CP: +%.1f%% (paper ~6.3%%)",
			100*(grid["OOO-80/MP-OOO-40"]/grid["OOO-80/MP-INO"]-1)),
		fmt.Sprintf("OoO-40 MP vs in-order MP at in-order CP: +%.1f%% (paper ~1%%)",
			100*(grid["INO/MP-OOO-40"]/grid["INO/MP-INO"]-1)))
	return t
}

// L2Sizes are the cache capacities of Figures 11 and 12.
var L2Sizes = []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}

// cacheSweepConfigs are the architecture points of Figures 11/12.
func cacheSweepConfigs(l2 int) []struct {
	name string
	mk   func(b string, s Scale) job
} {
	m := mem.DefaultConfig().WithL2Size(l2)
	suffix := fmt.Sprintf("@%dKB", l2>>10)
	dk := func(name string, cp, mp schedPoint) struct {
		name string
		mk   func(b string, s Scale) job
	} {
		cfg := dkipSched(cp, mp)
		cfg.Mem = m
		cfg.Name = name
		return struct {
			name string
			mk   func(b string, s Scale) job
		}{name, func(b string, s Scale) job { return runDKIP(name+suffix+"/"+b, b, cfg, s) }}
	}
	r10 := ooo.R10K256()
	r10.Mem = m
	return []struct {
		name string
		mk   func(b string, s Scale) job
	}{
		{"R10-256", func(b string, s Scale) job { return runOOO("R10-256"+suffix+"/"+b, b, r10, s) }},
		dk("INO-INO", cpPoints[0], mpPoints[0]),
		dk("OOO20-INO", cpPoints[1], mpPoints[0]),
		dk("OOO80-INO", cpPoints[4], mpPoints[0]),
		dk("OOO80-OOO40", cpPoints[4], mpPoints[2]),
	}
}

func cacheSweep(r sim.Backend, suite workload.Suite, s Scale) *Table {
	var jobs []job
	for _, l2 := range L2Sizes {
		for _, a := range cacheSweepConfigs(l2) {
			for _, b := range workload.SuiteNames(suite) {
				jobs = append(jobs, a.mk(b, s))
			}
		}
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"config"}}
	for _, l2 := range L2Sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%dKB", l2>>10))
	}
	names := []string{"R10-256", "INO-INO", "OOO20-INO", "OOO80-INO", "OOO80-OOO40"}
	speedup := map[string]float64{}
	for _, name := range names {
		row := []string{name}
		var first, last float64
		for i, l2 := range L2Sizes {
			v := suiteMean(res, fmt.Sprintf("%s@%dKB", name, l2>>10), suite)
			if i == 0 {
				first = v
			}
			last = v
			row = append(row, f3(v))
		}
		speedup[name] = last / first
		t.Rows = append(t.Rows, row)
	}
	if suite == workload.SpecFP {
		t.Notes = append(t.Notes,
			fmt.Sprintf("total 64KB->4MB speedup: R10-256 %.2fx (paper 1.55x), OOO80-OOO40 D-KIP %.2fx (paper 1.18x)",
				speedup["R10-256"], speedup["OOO80-OOO40"]),
			"paper: the D-KIP's ability to process long-latency slices without stalling makes it cache-size tolerant on numerical codes")
	} else {
		t.Notes = append(t.Notes,
			"paper: on SpecINT every doubling of the L2 gives a roughly linear IPC gain, as on a conventional core")
	}
	return t
}

// Figure11 reproduces the SpecINT L2-size sensitivity study.
func Figure11(r sim.Backend, s Scale) *Table { return cacheSweep(r, workload.SpecINT, s) }

// Figure12 reproduces the SpecFP L2-size sensitivity study.
func Figure12(r sim.Backend, s Scale) *Table { return cacheSweep(r, workload.SpecFP, s) }

// llibOccupancy produces Figures 13/14: per-benchmark maxima of simultaneous
// instructions and registers in the suite's LLIB on the default D-KIP.
func llibOccupancy(r sim.Backend, suite workload.Suite, s Scale) *Table {
	var jobs []job
	for _, b := range workload.SuiteNames(suite) {
		jobs = append(jobs, runDKIP("d/"+b, b, core.Config{}, s))
	}
	res := runAll(r, jobs)

	idx := 0 // integer LLIB for SpecINT benchmarks
	if suite == workload.SpecFP {
		idx = 1 // FP LLIB for SpecFP benchmarks
	}
	t := &Table{Columns: []string{"benchmark", "max instructions", "max registers", "LLIB-full stall cycles"}}
	full := 0
	for _, b := range workload.SuiteNames(suite) {
		st := res["d/"+b]
		if st.LLIBFullStalls > 0 {
			full++
		}
		t.Rows = append(t.Rows, []string{
			b,
			fmt.Sprintf("%d", st.MaxLLIBInstrs[idx]),
			fmt.Sprintf("%d", st.MaxLLIBRegs[idx]),
			fmt.Sprintf("%d", st.LLIBFullStalls),
		})
	}
	if suite == workload.SpecINT {
		t.Notes = append(t.Notes,
			fmt.Sprintf("benchmarks with LLIB fill-up stalls: %d (paper: 4, from large irregular load chains)", full))
	} else {
		t.Notes = append(t.Notes,
			fmt.Sprintf("benchmarks with LLIB fill-up stalls: %d (paper: none on SpecFP)", full))
	}
	t.Notes = append(t.Notes,
		"paper: registers needed are far fewer than instructions; ~1000 LLRF entries would suffice, average below 500")
	return t
}

// Figure13 reproduces the SpecINT LLIB occupancy maxima.
func Figure13(r sim.Backend, s Scale) *Table { return llibOccupancy(r, workload.SpecINT, s) }

// Figure14 reproduces the SpecFP LLIB occupancy maxima.
func Figure14(r sim.Backend, s Scale) *Table { return llibOccupancy(r, workload.SpecFP, s) }
