//go:build !race

package experiments

// raceDetectorEnabled reports whether this test binary was built with the
// race detector; golden_race_test.go carries the other value.
const raceDetectorEnabled = false
