//go:build race

package experiments

// raceDetectorEnabled reports whether this test binary was built with the
// race detector; golden_norace_test.go carries the other value.
const raceDetectorEnabled = true
