package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden snapshots:
//
//	go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata golden files")

// Every registered experiment is snapshotted. Simulations are deterministic
// (see internal/sim's determinism test), so these snapshots catch any
// unintended behaviour change in the pipeline models, the workload
// generators, or the table rendering — across the full registry, not just a
// representative subset. Under the race detector, where simulation is an
// order of magnitude slower and goldens add determinism (not concurrency)
// coverage, only the original representative subset is checked.
func goldenIDs() []string {
	if raceDetectorEnabled {
		return []string{"table1", "table2", "table3", "fig13", "ablation-aging"}
	}
	return IDs()
}

// goldenScale is deliberately smaller than QuickScale: the window sweeps of
// fig1/fig2 simulate 4K-entry limit cores across six memory subsystems, and
// snapshotting the whole registry at QuickScale would cost minutes per test
// run. 2k/8k keeps the full golden suite to tens of seconds while still
// driving every experiment's code path end to end.
func goldenScale() Scale { return Scale{Warmup: 2_000, Measure: 8_000} }

// simulated reports whether the experiment runs the simulator (vs rendering
// static configuration tables).
func simulated(id string) bool {
	return id != "table1" && id != "table2" && id != "table3"
}

func TestGoldenTables(t *testing.T) {
	for _, id := range goldenIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && simulated(id) {
				t.Skip("simulation experiment")
			}
			tab, err := Run(id, goldenScale())
			if err != nil {
				t.Fatal(err)
			}
			got := tab.String()
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden %s.\ngot:\n%s\nwant:\n%s\n(re-run with -update if the change is intended)",
					id, path, got, want)
			}
		})
	}
}
