package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden snapshots:
//
//	go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata golden files")

// goldenIDs is the representative subset snapshotted at QuickScale: the
// three static tables (pure configuration rendering) plus one simulated
// figure per engine-heavy code path — the D-KIP occupancy study and an
// ablation sweep. Simulations are deterministic (see internal/sim's
// determinism test), so these snapshots catch any unintended behaviour
// change in the pipeline models, the workload generators, or the table
// rendering.
var goldenIDs = []string{"table1", "table2", "table3", "fig13", "ablation-aging"}

// simulated reports whether the experiment runs the simulator (vs rendering
// static configuration tables).
func simulated(id string) bool {
	return id != "table1" && id != "table2" && id != "table3"
}

func TestGoldenTables(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && simulated(id) {
				t.Skip("simulation experiment")
			}
			tab, err := Run(id, QuickScale())
			if err != nil {
				t.Fatal(err)
			}
			got := tab.String()
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden %s.\ngot:\n%s\nwant:\n%s\n(re-run with -update if the change is intended)",
					id, path, got, want)
			}
		})
	}
}
