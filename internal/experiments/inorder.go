package experiments

import (
	"fmt"

	"dkip/internal/core"
	"dkip/internal/inorder"
	"dkip/internal/ooo"
	"dkip/internal/sim"
	"dkip/internal/workload"
)

// Inorder anchors the paper machines against a dual-issue in-order core in
// the style of the SG2042's XuanTie C920 — the hardware-calibration target,
// and the proof machine for the shared engine layer (a third architecture
// expressed as configuration plus a blocking-issue stage hook). Per-benchmark
// IPC for the in-order core next to the smallest out-of-order baseline and
// the default D-KIP: everything a blocked queue head costs the in-order
// machine is exactly the stall class the decoupled window removes.
func Inorder(r sim.Backend, s Scale) *Table {
	c920 := inorder.C920()
	var jobs []job
	for _, b := range workload.Names() {
		jobs = append(jobs, runInorder("c920/"+b, b, c920, s))
		jobs = append(jobs, runOOO("r10/"+b, b, ooo.R10K64(), s))
		jobs = append(jobs, runDKIP("dkip/"+b, b, core.Config{}, s))
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"benchmark", "suite", "C920", "R10-64", "DKIP-2048", "R10-64/C920", "DKIP/C920"}}
	for _, suite := range []workload.Suite{workload.SpecINT, workload.SpecFP} {
		label := "int"
		if suite == workload.SpecFP {
			label = "fp"
		}
		for _, b := range workload.SuiteNames(suite) {
			ino := res["c920/"+b].IPC()
			r10 := res["r10/"+b].IPC()
			dk := res["dkip/"+b].IPC()
			t.Rows = append(t.Rows, []string{
				b, label, f3(ino), f3(r10), f3(dk),
				fmt.Sprintf("%.2fx", r10/ino), fmt.Sprintf("%.2fx", dk/ino),
			})
		}
	}
	meanIno := suiteMean(res, "c920", workload.SpecFP)
	meanDK := suiteMean(res, "dkip", workload.SpecFP)
	t.Notes = append(t.Notes,
		fmt.Sprintf("SpecFP mean IPC: C920 %.3f, DKIP-2048 %.3f (%.2fx)", meanIno, meanDK, meanDK/meanIno),
		"the in-order core is the lower anchor: a blocked queue head serializes every",
		"long-latency load, the stall class the decoupled window is designed to remove")
	return t
}
