package experiments

import (
	"errors"
	"sync"
	"testing"

	"dkip/internal/sim"
	"dkip/internal/workload"
)

// Figures 9 and 11 both simulate the R10-256 baseline with the default
// 512KB hierarchy on every SpecINT benchmark (Figure 11 spells the
// hierarchy out per sweep point, Figure 9 relies on defaults). Through one
// shared Runner those overlapping RunSpecs must simulate exactly once per
// process — the tentpole invariant of the run-orchestration layer.
func TestOverlappingFiguresSimulateOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	var mu sync.Mutex
	simsPerKey := map[string]int{}
	r := sim.NewRunner(sim.OnSimulate(func(s sim.RunSpec) {
		mu.Lock()
		simsPerKey[s.Key()]++
		mu.Unlock()
	}))

	s := Scale{Warmup: 500, Measure: 2000}
	for _, id := range []string{"fig9", "fig11"} {
		if _, err := RunWith(r, id, s); err != nil {
			t.Fatal(err)
		}
	}

	for key, n := range simsPerKey {
		if n != 1 {
			t.Errorf("spec %s simulated %d times, want exactly once", key, n)
		}
	}
	m := r.Metrics()
	// The R10-256 runs on the 12 SpecINT benchmarks are requested by both
	// figures; only the first requester may simulate.
	minOverlap := uint64(len(workload.SuiteNames(workload.SpecINT)))
	if m.CacheHits+m.Deduped < minOverlap {
		t.Errorf("dedup+cache served %d runs, want >= %d (the R10-256 SpecINT overlap); metrics %+v",
			m.CacheHits+m.Deduped, minOverlap, m)
	}
	if m.Requested != m.Simulated+m.Deduped+m.CacheHits {
		t.Errorf("metrics do not balance: %+v", m)
	}
	if m.Simulated != uint64(len(simsPerKey)) {
		t.Errorf("Simulated = %d but hook saw %d unique keys", m.Simulated, len(simsPerKey))
	}
}

// Re-running an experiment on the shared process Runner must not simulate
// anything the second time.
func TestRepeatedExperimentFullyCached(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r := sim.NewRunner()
	s := Scale{Warmup: 500, Measure: 2000}
	if _, err := RunWith(r, "fig13", s); err != nil {
		t.Fatal(err)
	}
	before := r.Metrics().Simulated
	tab, err := RunWith(r, "fig13", s)
	if err != nil {
		t.Fatal(err)
	}
	if after := r.Metrics().Simulated; after != before {
		t.Errorf("re-run simulated %d new runs, want 0", after-before)
	}
	if len(tab.Rows) != len(workload.SuiteNames(workload.SpecINT)) {
		t.Errorf("cached re-run produced %d rows", len(tab.Rows))
	}
}

// UseRunner swaps the process-wide runner and hands back the previous one.
func TestUseRunnerSwaps(t *testing.T) {
	orig := Runner()
	repl := sim.NewRunner()
	if prev := UseRunner(repl); prev != orig {
		t.Error("UseRunner did not return the previous runner")
	}
	if Runner() != repl {
		t.Error("Runner() does not see the replacement")
	}
	UseRunner(orig)
}

// failingBackend simulates a remote daemon dying mid-sweep: every submission
// errors at the transport.
type failingBackend struct{}

func (failingBackend) Run(sim.RunSpec) (*sim.Result, error) { return nil, errors.New("daemon gone") }
func (failingBackend) RunAll([]sim.RunSpec) ([]*sim.Result, error) {
	return nil, errors.New("daemon gone")
}
func (failingBackend) Results() []*sim.Result { return nil }
func (failingBackend) Metrics() sim.Metrics   { return sim.Metrics{} }

// A Backend failure inside an experiment must surface as RunWith's error,
// not crash the process: with -remote, transport failures are routine.
func TestRunWithSurfacesBackendErrors(t *testing.T) {
	if _, err := RunWith(failingBackend{}, "fig9", QuickScale()); err == nil {
		t.Fatal("backend failure did not surface as an error")
	}
}
