package experiments

import (
	"fmt"
	"math"

	"dkip/internal/sample"
	"dkip/internal/sim"
	"dkip/internal/workload"
)

// SampledAccuracy quantifies the sampled-simulation error budget: every
// (architecture, benchmark) point of the Figure 9 grid runs twice — once in
// full detail, once sampled — and the table reports, per architecture, the
// full and sampled mean CPIs, the mean 95% confidence half-width the sampler
// itself estimated, the mean and worst absolute CPI error against the full
// run, and the detailed-instruction reduction factor.
//
// The sampled leg honours Scale.Sample when the caller set a plan; otherwise
// it uses the default plan, whose detailed warmup scales with the machine's
// in-flight window (see sample.Plan.Complete) — undersized warmup measures
// the window-fill ramp and reads up to ~50% optimistic on memory-bound
// workloads.
func SampledAccuracy(r sim.Backend, s Scale) *Table {
	plan := sample.DefaultPlan()
	if s.Sample != nil && s.Sample.Enabled() {
		plan = *s.Sample
	}
	full := s
	full.Sample = nil

	var jobs []job
	for _, a := range fig9Configs() {
		for _, b := range workload.Names() {
			fj := a.mk(b, full)
			jobs = append(jobs, fj)
			sj := a.mk(b, full)
			sj.key = "sampled/" + sj.key
			sj.spec.Sample = plan
			jobs = append(jobs, sj)
		}
	}
	res := runAllResults(r, jobs)

	t := &Table{Columns: []string{
		"architecture", "full CPI", "sampled CPI", "±ci95", "MAE%", "worst|err|%", "reduction",
	}}
	var gridAbsErr, gridWorst, gridRed float64
	var gridN int
	for _, a := range fig9Configs() {
		var fullSum, sampSum, ciSum, absErrSum, worst, redSum float64
		var n int
		for _, b := range workload.Names() {
			fr, ok := res[a.name+"/"+b]
			if !ok || fr.Stats == nil {
				panic(fmt.Sprintf("experiments: missing full result %s/%s", a.name, b))
			}
			sr, ok := res["sampled/"+a.name+"/"+b]
			if !ok || sr.Sampled == nil {
				panic(fmt.Sprintf("experiments: missing sampled result %s/%s", a.name, b))
			}
			fullCPI := 1 / fr.Stats.IPC()
			sampCPI := sr.Sampled.CPI
			err := math.Abs(sampCPI-fullCPI) / fullCPI
			fullSum += fullCPI
			sampSum += sampCPI
			ciSum += sr.Sampled.CPICI95
			absErrSum += err
			if err > worst {
				worst = err
			}
			redSum += sr.Sampled.Reduction()
			n++
		}
		fn := float64(n)
		t.Rows = append(t.Rows, []string{
			a.name, f3(fullSum / fn), f3(sampSum / fn), f3(ciSum / fn),
			f1(100 * absErrSum / fn), f1(100 * worst), f1(redSum/fn) + "x",
		})
		gridAbsErr += absErrSum
		if worst > gridWorst {
			gridWorst = worst
		}
		gridRed += redSum
		gridN += n
	}
	gn := float64(gridN)
	desc := plan.String()
	if plan.Warmup == 0 || plan.Interval == 0 {
		desc = fmt.Sprintf("%d intervals, window-scaled warmup", plan.Intervals)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("grid MAE %.2f%%, worst |err| %.2f%%, mean reduction %.1fx over %d points (plan: %s)",
			100*gridAbsErr/gn, 100*gridWorst, gridRed/gn, gridN, desc),
		"documented bound: MAE <= 3% with >= 10x reduction at sampling scale (warmup 10k, measure 1M;",
		"enforced by internal/sim TestSampledAccuracy); toy scales cannot buy enough measured",
		"instructions per interval, so their per-point error degrades as 1/sqrt(measured).")
	return t
}
