package experiments

import (
	"fmt"

	"dkip/internal/core"
	"dkip/internal/mem"
	"dkip/internal/sim"
	"dkip/internal/workload"
)

// Table1 renders (and validates) the six memory subsystems of the limit
// study exactly as the paper's Table 1 lists them.
func Table1(sim.Backend, Scale) *Table {
	t := &Table{Columns: []string{"config", "L1 access", "L1 size", "L2 access", "L2 size", "memory access"}}
	for _, c := range mem.Table1Configs() {
		if err := c.Validate(); err != nil {
			panic(err)
		}
		sz := func(b int) string {
			if b == 0 {
				return "inf"
			}
			return fmt.Sprintf("%dKB", b>>10)
		}
		lat := func(l int) string {
			if l == 0 {
				return "-"
			}
			return fmt.Sprintf("%d", l)
		}
		l2sz := "-"
		if c.L2Latency > 0 {
			l2sz = sz(c.L2Size)
		}
		t.Rows = append(t.Rows, []string{
			c.Name, lat(c.L1Latency), sz(c.L1Size), lat(c.L2Latency), l2sz, lat(c.MemLatency),
		})
	}
	t.Notes = append(t.Notes, "access times in processor clock cycles; inf = perfect (infinite) cache level")
	return t
}

// Table2 renders the invariant architectural parameters from the effective
// default configuration, confirming the code matches the paper's Table 2.
func Table2(sim.Backend, Scale) *Table {
	c := core.DefaultConfig()
	t := &Table{Columns: []string{"parameter", "value", "paper"}}
	add := func(name string, v, paper interface{}) {
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(v), fmt.Sprint(paper)})
	}
	add("Fetch/Decode/Analyze width", c.FetchWidth, 4)
	add("Branch predictor", "perceptron", "perceptron")
	add("ROB timer (cycles)", c.ROBTimer, 16)
	add("ROB capacity", c.ROBSize, 64)
	add("CP ALU units", c.CPFU.ALU, 4)
	add("CP integer multipliers", c.CPFU.IntMul, 1)
	add("CP FP adders", c.CPFU.FPAdd, 4)
	add("CP FP multipliers/divisors", c.CPFU.FPMulDiv, 1)
	add("LLIB entries (each)", c.LLIBSize, 2048)
	add("LLIB insertion/extraction rate", c.LLIBRate, 4)
	add("LLRF banks", c.LLRFBanks, 8)
	add("LLRF registers per bank (max)", c.LLRFBankSize, 256)
	add("MP decode width", c.MPIssueWidth, 4)
	add("LSQ entries", c.LSQSize, 512)
	add("Memory ports (global R/W)", c.MemPorts, 2)
	add("L1 size", fmt.Sprintf("%dKB", c.Mem.L1Size>>10), "32KB")
	add("L1 hit latency", c.Mem.L1Latency, "2 (1+1)")
	add("L2 hit latency", c.Mem.L2Latency, "11 (1+10)")
	add("Memory access latency", c.Mem.MemLatency, 400)
	return t
}

// Table3 renders the variable-parameter defaults (paper Table 3).
func Table3(sim.Backend, Scale) *Table {
	c := core.DefaultConfig()
	t := &Table{Columns: []string{"parameter", "value", "paper"}}
	add := func(name string, v, paper interface{}) {
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(v), fmt.Sprint(paper)})
	}
	sched := func(in bool) string {
		if in {
			return "In-Order"
		}
		return "Out-of-Order"
	}
	add("L2 cache size", fmt.Sprintf("%dKB", c.Mem.L2Size>>10), "512KB")
	add("CP integer queue size", c.CPIQSize, 40)
	add("CP FP queue size", c.CPIQSize, 40)
	add("CP scheduler", sched(c.CPInOrder), "Out-of-Order")
	add("MP integer queue size", c.MPIQSize, 20)
	add("MP FP queue size", c.MPIQSize, 20)
	add("MP scheduler", sched(*c.MPInOrder), "In-Order")
	return t
}

// Section43 summarizes the scheduler findings of §4.3 for both suites:
// out-of-order vs in-order Cache Processor, Memory Processor sensitivity,
// and the share of instructions the MP processes on integer codes.
func Section43(r sim.Backend, s Scale) *Table {
	configs := []core.Config{
		dkipSched(cpPoints[0], mpPoints[0]), // INO / MP-INO
		dkipSched(cpPoints[2], mpPoints[0]), // OOO-40 / MP-INO
		dkipSched(cpPoints[0], mpPoints[2]), // INO / MP-OOO-40
		dkipSched(cpPoints[2], mpPoints[2]), // OOO-40 / MP-OOO-40
	}
	var jobs []job
	for _, cfg := range configs {
		for _, b := range workload.Names() {
			jobs = append(jobs, runDKIP(cfg.Name+"/"+b, b, cfg, s))
		}
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"metric", "SpecINT", "SpecFP", "paper"}}
	get := func(cfg core.Config, suite workload.Suite) float64 {
		return suiteMean(res, cfg.Name, suite)
	}
	oooGain := func(suite workload.Suite) float64 {
		return 100 * (get(configs[1], suite)/get(configs[0], suite) - 1)
	}
	mpGain := func(suite workload.Suite) float64 {
		return 100 * (get(configs[3], suite)/get(configs[1], suite) - 1)
	}
	t.Rows = append(t.Rows,
		[]string{"OoO CP vs in-order CP (%)", f1(oooGain(workload.SpecINT)), f1(oooGain(workload.SpecFP)), "29 / 32"},
		[]string{"OoO-40 MP vs in-order MP at OoO CP (%)", f1(mpGain(workload.SpecINT)), f1(mpGain(workload.SpecFP)), "~0 / up to 6.3"},
	)
	// MP instruction share on integer codes (paper: ~5%).
	var mpShare float64
	names := workload.SuiteNames(workload.SpecINT)
	for _, b := range names {
		st := res[configs[3].Name+"/"+b]
		mpShare += 100 * (1 - st.CPFraction())
	}
	mpShare /= float64(len(names))
	t.Rows = append(t.Rows, []string{"MP share of committed instructions (%)", f1(mpShare), "-", "~5 (SpecINT)"})
	return t
}

// Section44 measures the Cache Processor's share of committed instructions
// as the L2 grows, on SpecFP (paper: 67% at 64KB to 77% at 4MB for the
// OOO-80/OOO-40 configuration).
func Section44(r sim.Backend, s Scale) *Table {
	sizes := []int{64 << 10, 512 << 10, 4 << 20}
	var jobs []job
	for _, l2 := range sizes {
		cfg := dkipSched(cpPoints[4], mpPoints[2]) // OOO-80 / MP-OOO-40
		cfg.Mem = mem.DefaultConfig().WithL2Size(l2)
		cfg.Name = fmt.Sprintf("dkip@%dKB", l2>>10)
		for _, b := range workload.SuiteNames(workload.SpecFP) {
			jobs = append(jobs, runDKIP(cfg.Name+"/"+b, b, cfg, s))
		}
	}
	res := runAll(r, jobs)

	t := &Table{Columns: []string{"L2 size", "CP share of committed instructions (%)"}}
	for _, l2 := range sizes {
		var share float64
		names := workload.SuiteNames(workload.SpecFP)
		for _, b := range names {
			share += 100 * res[fmt.Sprintf("dkip@%dKB/%s", l2>>10, b)].CPFraction()
		}
		share /= float64(len(names))
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%dKB", l2>>10), f1(share)})
	}
	t.Notes = append(t.Notes, "paper: 67% at 64KB rising to 77% at 4MB — the CP retains most of the stream even with a tiny cache")
	return t
}
