package inorder

import (
	"testing"

	"dkip/internal/workload"
)

// TestSteadyStateAllocationFree pins the same zero-allocation property the
// other model packages enforce: once the window, queue, and per-entry
// Consumers slices have reached their high-water marks, continuing the same
// run must not allocate per committed instruction. The in-order model adds
// no structures of its own beyond the engine's, so this is primarily the
// gate that keeps the shared cycle loop honest for a blocking-issue machine
// (whose long head stalls exercise the wake scan harder than the
// out-of-order cores do).
func TestSteadyStateAllocationFree(t *testing.T) {
	g := workload.MustNew("mcf")
	p := New(C920())
	p.Hierarchy().Warm(g.WarmRanges())
	p.Run(g, 30_000, 30_000) // reach structural steady state
	const chunk = 10_000
	// Throwaway chunks let per-entry Consumers slices finish discovering
	// their high-water capacities.
	for i := 0; i < 5; i++ {
		p.Run(g, 0, chunk)
	}
	avg := testing.AllocsPerRun(3, func() {
		p.Run(g, 0, chunk)
	})
	// Each Run call copies its Stats once (the returned snapshot); nothing
	// may scale with chunk.
	if perInstr := avg / chunk; perInstr > 0.005 {
		t.Errorf("steady state allocates %.4f objects per committed instruction (%.0f per %d-instruction chunk), want ~0",
			perInstr, avg, chunk)
	}
}
