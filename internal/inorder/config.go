// Package inorder implements a dual-issue in-order core in the style of the
// T-Head XuanTie C920, the RISC-V core the SG2042 64-core socket is built
// from. It exists for two reasons: as the hardware-calibration target for
// the SG2042 evaluations (arXiv:2309.00381, 2406.12394), and as the proof
// that a third architecture plugs into internal/engine as a configuration
// plus a blocking-issue stage hook — no pipeline code of its own.
//
// The machine is deliberately simple: a unified in-order issue queue
// (oldest-first, head blocks), a scoreboarded in-flight window retired in
// order, and the engine's shared front end. Everything long-latency stalls
// the queue head — exactly the behavior whose cost the D-KIP decoupling is
// designed to remove, which makes this core a useful lower anchor next to
// the R10K baselines.
package inorder

import (
	"fmt"

	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/predictor"
)

// Config describes one in-order core instance.
type Config struct {
	// Name labels the configuration in reports (e.g. "C920").
	Name string

	// Widths; zero values default to 2 (a dual-issue core).
	FetchWidth, RenameWidth, IssueWidth, CommitWidth int

	// FrontEndDepth is the fetch-to-rename latency in cycles (default 8,
	// matching the C920's long front end); RedirectPenalty the additional
	// penalty after a mispredicted branch resolves (default 2).
	FrontEndDepth, RedirectPenalty int

	// QueueSize is the unified issue queue's capacity (default 8); issue is
	// strictly oldest-first, so a stalled head blocks everything behind it.
	// Window bounds in-flight instructions between rename and in-order
	// retirement (default 32; issued but incomplete instructions hold their
	// slots). LSQSize bounds in-flight memory operations (default 16),
	// MemPorts the cache ports (default 2), and MSHRs the outstanding
	// off-chip misses (zero means unlimited).
	QueueSize, Window, LSQSize, MemPorts, MSHRs int

	// FU selects the functional-unit complement and Mem the memory
	// hierarchy; zero values mean pipeline.DefaultFUConfig and
	// mem.DefaultConfig.
	FU  pipeline.FUConfig
	Mem mem.Config

	// NewPredictor constructs the branch predictor; nil defaults to a
	// 4096-entry gshare — closer to the C920's modest BHT than the paper
	// machines' perceptron. Function fields cannot be serialized: excluded
	// from JSON (the serve layer's wire format) just as the content hash
	// skips them.
	NewPredictor func() predictor.Predictor `json:"-"`
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.FetchWidth, 2)
	def(&c.RenameWidth, 2)
	def(&c.IssueWidth, 2)
	def(&c.CommitWidth, 2)
	def(&c.FrontEndDepth, 8)
	def(&c.RedirectPenalty, 2)
	def(&c.QueueSize, 8)
	def(&c.Window, 32)
	def(&c.LSQSize, 16)
	def(&c.MemPorts, 2)
	if c.FU == (pipeline.FUConfig{}) {
		c.FU = pipeline.DefaultFUConfig()
	}
	if c.Mem.L1Latency == 0 {
		c.Mem = mem.DefaultConfig()
	}
	if c.NewPredictor == nil {
		c.NewPredictor = func() predictor.Predictor {
			return predictor.NewGshare(4096)
		}
	}
	return c
}

// WithDefaults returns the configuration with every zero field replaced by
// its default. inorder.New applies it implicitly; internal/sim applies it
// before hashing so equivalent configurations memoize as the same machine.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Window < c.QueueSize {
		return fmt.Errorf("inorder: %s: Window %d smaller than QueueSize %d", c.Name, c.Window, c.QueueSize)
	}
	if c.Window > 1<<16 {
		return fmt.Errorf("inorder: %s: Window %d unreasonably large", c.Name, c.Window)
	}
	return nil
}

// C920 approximates one XuanTie C920 core of the SG2042: dual-issue,
// 64KB/1MB caches with a long memory latency (the socket's DDR4 path).
func C920() Config {
	return Config{
		Name: "C920",
		Mem: mem.Config{
			Name:   "SG2042",
			L1Size: 64 << 10, L1Latency: 3, L1Assoc: 4,
			L2Size: 1 << 20, L2Latency: 18, L2Assoc: 16,
			MemLatency: 240,
		},
	}
}
