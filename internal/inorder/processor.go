package inorder

import (
	"fmt"

	"dkip/internal/engine"
	"dkip/internal/isa"
	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/trace"
)

// Processor is one in-order core instance: an engine.Model whose only
// architecture-specific structure is a unified blocking issue queue and an
// in-order retirement counter. Construct with New; Run simulates a
// workload.
type Processor struct {
	engine.Engine

	cfg Config
	iq  *pipeline.IssueQueue
	fus *pipeline.FUPool

	commitSeq uint64 // next sequence number to retire

	// issueStage scratch, preallocated so the per-cycle select loop does
	// not allocate.
	iqRot     [1]*pipeline.IssueQueue
	iqBlocked [1]bool
}

// New builds a processor. It panics on invalid configuration.
func New(cfg Config) *Processor {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	fqCap := cfg.FetchWidth * (cfg.FrontEndDepth + 2)
	p := &Processor{cfg: cfg, fus: pipeline.NewFUPool(cfg.FU)}
	p.Init(engine.Params{
		Family:          "inorder",
		Name:            cfg.Name,
		FetchWidth:      cfg.FetchWidth,
		RenameWidth:     cfg.RenameWidth,
		FrontEndDepth:   cfg.FrontEndDepth,
		RedirectPenalty: cfg.RedirectPenalty,
		LSQSize:         cfg.LSQSize,
		MemPorts:        cfg.MemPorts,
		MSHRs:           cfg.MSHRs,
		FetchQueueCap:   fqCap,
		WindowCap:       cfg.Window + fqCap + 64,
		Mem:             cfg.Mem,
		NewPredictor:    cfg.NewPredictor,
	}, p)
	// The in-order flag is the whole microarchitecture: Pop only ever
	// offers the oldest queued instruction, so an unready head blocks
	// issue entirely.
	p.iq = pipeline.NewIssueQueue(pipeline.QInt, cfg.QueueSize, true, p.Win)
	return p
}

// BeginCycle resets the functional-unit pool's issue ports; Stages runs
// commit, complete and blocking issue.
//
//dkip:hotpath
func (p *Processor) BeginCycle() { p.fus.NewCycle(p.Cycle) }

//dkip:hotpath
func (p *Processor) Stages(g trace.Generator) {
	p.commitStage()
	p.CompleteStage()
	p.issueStage()
}

//dkip:hotpath
func (p *Processor) commitStage() {
	for n := 0; n < p.cfg.CommitWidth; n++ {
		if p.commitSeq >= p.RenameSeq {
			return
		}
		d := p.Win.Get(p.commitSeq)
		if !d.Done {
			return
		}
		if d.In.Op == isa.Store {
			// Stores write the cache at commit behind a write buffer.
			p.Hier.Access(d.In.Addr)
			p.LSQCount--
		}
		p.commitSeq++
		p.DidWork = true
		p.Commit(d, engine.CommitDirect)
	}
}

// OnComplete releases structural entries for a finished execution.
//
//dkip:hotpath
func (p *Processor) OnComplete(d *pipeline.DynInst) {
	if d.In.Op == isa.Load {
		p.LSQCount--
		if d.MemLevel == mem.LevelMemory {
			p.MissCount--
		}
	}
	if d.In.Op.HasDest() {
		p.SB.Complete(d.In.Dest, d.Seq)
	}
}

// Wake routes a wakeup to the unified queue.
//
//dkip:hotpath
func (p *Processor) Wake(d *pipeline.DynInst) {
	if d.Queue == pipeline.QInt {
		p.iq.Wake(d.Seq)
	}
}

//dkip:hotpath
func (p *Processor) issueStage() {
	p.iqRot[0] = p.iq
	p.iqBlocked[0] = false
	p.PortsUsed = 0
	p.IssueSelect(p.iqRot[:], p.iqBlocked[:], p.cfg.IssueWidth, p.fus)
}

// RenameAdmit and AllocHint bound in-flight instructions by the
// scoreboarded window (the rename/commit sequence spread — RenameSeq has
// already advanced past seq when AllocHint runs); RenameQueue routes every
// instruction class to the unified queue; FetchNext supplies instructions
// straight from the trace.
//
//dkip:hotpath
func (p *Processor) RenameAdmit() bool { return int(p.RenameSeq-p.commitSeq) < p.cfg.Window }

//dkip:hotpath
func (p *Processor) AllocHint(seq uint64) int { return int(p.RenameSeq - p.commitSeq) }

//dkip:hotpath
func (p *Processor) RenameQueue(fp bool) *pipeline.IssueQueue { return p.iq }

//dkip:hotpath
func (p *Processor) FetchNext(g trace.Generator) isa.Instr { return g.Next() }

// The remaining hooks are deliberately empty: in-order recovery is a
// front-end flush (no extra penalty), issue carries no surcharge, there is
// no confidence estimator, no per-cycle epilogue, no extra wake sources,
// and no model-owned occupancy or statistics beyond the engine's.
//
//dkip:hotpath
func (p *Processor) RecoveryExtra(d *pipeline.DynInst) int64 { return 0 }

//dkip:hotpath
func (p *Processor) IssueExtraLatency(d *pipeline.DynInst) int64 { return 0 }

//dkip:hotpath
func (p *Processor) OnFetchBranch(in isa.Instr, mispred bool) bool { return false }

//dkip:hotpath
func (p *Processor) EndCycle(g trace.Generator) {}

//dkip:hotpath
func (p *Processor) ConsiderWake(w *engine.WakeScan) {}

//dkip:hotpath
func (p *Processor) OnRename(d *pipeline.DynInst, q *pipeline.IssueQueue) {}

//dkip:hotpath
func (p *Processor) OnBeginMeasure() {}

func (p *Processor) FinishStats(st *pipeline.Stats) {}

// BudgetMessage builds the cycle-budget panic text.
func (p *Processor) BudgetMessage(bench string, target uint64) string {
	return fmt.Sprintf("inorder: %s on %s: exceeded cycle budget: committed %d of %d",
		p.cfg.Name, bench, p.Total, target)
}
