// Package isa defines the Alpha-like instruction set abstraction consumed by
// every processor model in this repository.
//
// The paper simulates Alpha binaries on SimpleScalar. The timing behaviour it
// studies depends only on each instruction's dataflow (at most two source
// registers and one destination, as in the Alpha ISA), its operation class
// (which functional unit it needs and its execution latency), the addresses
// touched by loads and stores, and branch outcomes. This package captures
// exactly that surface and nothing more.
package isa

import "fmt"

// Op is the operation class of an instruction. Classes map one-to-one onto
// the functional-unit pools of Table 2 in the paper.
type Op uint8

// Operation classes.
const (
	// Nop performs no work but still occupies front-end and window slots.
	Nop Op = iota
	// IntALU is a single-cycle integer operation (add, logical, compare).
	IntALU
	// IntMul is a pipelined integer multiply.
	IntMul
	// FPAdd is a pipelined floating-point add/subtract/convert.
	FPAdd
	// FPMul is a pipelined floating-point multiply.
	FPMul
	// FPDiv is an unpipelined floating-point divide/sqrt.
	FPDiv
	// Load reads memory; its completion latency is decided by the cache
	// hierarchy at execute time.
	Load
	// Store writes memory at commit. It needs an address generation slot
	// and an LSQ entry but produces no register value.
	Store
	// Branch is a conditional branch; Taken carries the trace outcome.
	Branch
	numOps
)

// NumOps is the number of distinct operation classes.
const NumOps = int(numOps)

var opNames = [NumOps]string{
	"nop", "ialu", "imul", "fpadd", "fpmul", "fpdiv", "load", "store", "branch",
}

// String returns the mnemonic for the operation class.
func (o Op) String() string {
	if int(o) < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation class.
func (o Op) Valid() bool { return o < numOps }

// IsFP reports whether the operation executes on the floating-point cluster.
// The D-KIP routes instructions to the integer or FP LLIB using this class.
func (o Op) IsFP() bool { return o == FPAdd || o == FPMul || o == FPDiv }

// IsMem reports whether the operation accesses memory.
func (o Op) IsMem() bool { return o == Load || o == Store }

// HasDest reports whether the operation produces a register value.
func (o Op) HasDest() bool {
	switch o {
	case Nop, Store, Branch:
		return false
	}
	return true
}

// Register identifiers. Registers 0..NumIntRegs-1 are integer registers;
// NumIntRegs..NumRegs-1 are floating-point registers. RegNone marks an unused
// operand slot.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs

	// RegNone marks an absent source or destination operand.
	RegNone = Reg(255)
)

// Reg names an architectural register.
type Reg uint8

// IsInt reports whether r is an integer register.
func (r Reg) IsInt() bool { return r < NumIntRegs }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= NumIntRegs && r < NumRegs }

// Valid reports whether r names a register (RegNone is not valid).
func (r Reg) Valid() bool { return r < NumRegs }

// String returns r0..r31 for integer registers and f0..f31 for FP registers.
func (r Reg) String() string {
	switch {
	case r.IsInt():
		return fmt.Sprintf("r%d", uint8(r))
	case r.IsFP():
		return fmt.Sprintf("f%d", uint8(r)-NumIntRegs)
	case r == RegNone:
		return "-"
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// IntReg returns the i'th integer register.
func IntReg(i int) Reg { return Reg(i % NumIntRegs) }

// FPReg returns the i'th floating-point register.
func FPReg(i int) Reg { return Reg(NumIntRegs + i%NumFPRegs) }

// Instr is one dynamic instruction as produced by a workload generator.
// It is a value type; processor models copy it into their own bookkeeping
// structures (pipeline.DynInst).
type Instr struct {
	// PC is the instruction address, used by branch predictors.
	PC uint64
	// Op is the operation class.
	Op Op
	// Dest is the destination register, or RegNone.
	Dest Reg
	// Src1, Src2 are source registers, or RegNone. Alpha-style: at most
	// two sources. For stores, Src1 is the data register and Src2 the
	// address base; for loads Src1 is the address base.
	Src1, Src2 Reg
	// Addr is the effective memory address for loads and stores.
	Addr uint64
	// Taken is the trace outcome for branches.
	Taken bool
	// ChainLoad marks a load whose address depends on a previous load's
	// value (pointer chasing). Generators set it so instrumentation can
	// report chain behaviour; timing models rely only on Src dataflow.
	ChainLoad bool
}

// Sources returns the valid source registers of the instruction.
func (in *Instr) Sources() []Reg {
	var s []Reg
	if in.Src1.Valid() {
		s = append(s, in.Src1)
	}
	if in.Src2.Valid() {
		s = append(s, in.Src2)
	}
	return s
}

// NumSources counts valid source operands without allocating.
func (in *Instr) NumSources() int {
	n := 0
	if in.Src1.Valid() {
		n++
	}
	if in.Src2.Valid() {
		n++
	}
	return n
}

// String renders a compact assembly-like form, useful in tests and traces.
func (in *Instr) String() string {
	switch in.Op {
	case Load:
		return fmt.Sprintf("%#x: %s %s <- [%#x](%s)", in.PC, in.Op, in.Dest, in.Addr, in.Src1)
	case Store:
		return fmt.Sprintf("%#x: %s [%#x](%s) <- %s", in.PC, in.Op, in.Addr, in.Src2, in.Src1)
	case Branch:
		t := "nt"
		if in.Taken {
			t = "t"
		}
		return fmt.Sprintf("%#x: %s %s,%s (%s)", in.PC, in.Op, in.Src1, in.Src2, t)
	default:
		return fmt.Sprintf("%#x: %s %s <- %s,%s", in.PC, in.Op, in.Dest, in.Src1, in.Src2)
	}
}

// Latency returns the fixed execution latency in cycles of non-memory
// operation classes, matching the functional units of Table 2. Loads and
// stores get their latency from the memory hierarchy instead.
func (o Op) Latency() int {
	switch o {
	case Nop, IntALU, Branch:
		return 1
	case IntMul:
		return 3
	case FPAdd:
		return 2
	case FPMul:
		return 4
	case FPDiv:
		return 12
	case Load, Store:
		return 1 // address generation; memory time added by the hierarchy
	}
	return 1
}
