package isa

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		Nop: "nop", IntALU: "ialu", IntMul: "imul",
		FPAdd: "fpadd", FPMul: "fpmul", FPDiv: "fpdiv",
		Load: "load", Store: "store", Branch: "branch",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("invalid op string = %q", got)
	}
}

func TestOpPredicates(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if !op.Valid() {
			t.Errorf("%v should be valid", op)
		}
		wantFP := op == FPAdd || op == FPMul || op == FPDiv
		if op.IsFP() != wantFP {
			t.Errorf("%v IsFP = %v", op, op.IsFP())
		}
		wantMem := op == Load || op == Store
		if op.IsMem() != wantMem {
			t.Errorf("%v IsMem = %v", op, op.IsMem())
		}
	}
	if Op(99).Valid() {
		t.Error("Op(99) should be invalid")
	}
}

func TestHasDest(t *testing.T) {
	noDest := map[Op]bool{Nop: true, Store: true, Branch: true}
	for op := Op(0); int(op) < NumOps; op++ {
		if op.HasDest() == noDest[op] {
			t.Errorf("%v HasDest = %v", op, op.HasDest())
		}
	}
}

func TestLatencyPositive(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if op.Latency() <= 0 {
			t.Errorf("%v latency %d not positive", op, op.Latency())
		}
	}
	if IntALU.Latency() != 1 {
		t.Errorf("ALU latency = %d, want 1", IntALU.Latency())
	}
	if FPDiv.Latency() <= FPMul.Latency() {
		t.Error("FP divide should be slower than multiply")
	}
}

func TestRegisters(t *testing.T) {
	r := IntReg(5)
	if !r.IsInt() || r.IsFP() || !r.Valid() {
		t.Errorf("IntReg(5) classification wrong: %v", r)
	}
	f := FPReg(5)
	if f.IsInt() || !f.IsFP() || !f.Valid() {
		t.Errorf("FPReg(5) classification wrong: %v", f)
	}
	if RegNone.Valid() {
		t.Error("RegNone should be invalid")
	}
	if got := IntReg(3).String(); got != "r3" {
		t.Errorf("IntReg(3) = %q", got)
	}
	if got := FPReg(3).String(); got != "f3" {
		t.Errorf("FPReg(3) = %q", got)
	}
	if got := RegNone.String(); got != "-" {
		t.Errorf("RegNone = %q", got)
	}
}

func TestRegWrapping(t *testing.T) {
	// IntReg and FPReg must always return valid registers of their class.
	err := quick.Check(func(i int) bool {
		if i < 0 {
			i = -i
		}
		return IntReg(i).IsInt() && FPReg(i).IsFP()
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestInstrSources(t *testing.T) {
	in := Instr{Op: IntALU, Dest: IntReg(1), Src1: IntReg(2), Src2: RegNone}
	if n := in.NumSources(); n != 1 {
		t.Errorf("NumSources = %d, want 1", n)
	}
	if s := in.Sources(); len(s) != 1 || s[0] != IntReg(2) {
		t.Errorf("Sources = %v", s)
	}
	in.Src2 = IntReg(3)
	if n := in.NumSources(); n != 2 {
		t.Errorf("NumSources = %d, want 2", n)
	}
}

func TestInstrString(t *testing.T) {
	load := Instr{PC: 0x1000, Op: Load, Dest: IntReg(1), Src1: IntReg(2), Src2: RegNone, Addr: 0x2000}
	if got := load.String(); got == "" {
		t.Error("empty load string")
	}
	st := Instr{PC: 0x1004, Op: Store, Src1: IntReg(1), Src2: IntReg(2), Addr: 0x2000}
	if got := st.String(); got == "" {
		t.Error("empty store string")
	}
	br := Instr{PC: 0x1008, Op: Branch, Src1: IntReg(1), Taken: true}
	if got := br.String(); got == "" {
		t.Error("empty branch string")
	}
	alu := Instr{PC: 0x100c, Op: IntALU, Dest: IntReg(3), Src1: IntReg(1), Src2: IntReg(2)}
	if got := alu.String(); got == "" {
		t.Error("empty alu string")
	}
}
