// Package kilo configures the traditional KILO-instruction processor used as
// the large-window baseline in Figure 9, following Cristal et al.,
// "Out-of-order commit processors" (HPCA 2004) — reference [9] of the paper.
//
// The design virtualizes the reorder buffer: a small pseudo-ROB of 64 entries
// ages instructions; those still waiting on operands after the aging period
// migrate into the Slow Lane Instruction Queue (SLIQ), a large secondary
// out-of-order issue queue of 1024 entries, releasing their pseudo-ROB entry.
// Precise state is maintained by multicheckpointing, so a branch that
// resolves wrong from the slow lane pays a checkpoint-restore penalty rather
// than a rename-stack recovery.
//
// Because the SLIQ is itself issue-capable (a large CAM), pointer-chasing
// integer code profits from it more than from the D-KIP's FIFO buffers — the
// effect behind KILO-1024 beating D-KIP-2048 on SpecINT in Figure 9 — at the
// cost of the very structure (a kilo-entry CAM) the D-KIP exists to avoid.
package kilo

import (
	"dkip/internal/ooo"
	"dkip/internal/pipeline"
	"dkip/internal/sample"
	"dkip/internal/trace"
)

// DefaultSLIQSize is the slow-lane capacity of the KILO-1024 configuration.
const DefaultSLIQSize = 1024

// Config1024 returns the KILO-1024 baseline of Figure 9: a 64-entry
// pseudo-ROB, 72-entry issue queues, and a 1024-entry out-of-order SLIQ.
func Config1024() ooo.Config {
	return Config(DefaultSLIQSize)
}

// Config returns a KILO configuration with the given SLIQ capacity; queue
// and pseudo-ROB sizes follow the paper's KILO-1024 description.
func Config(sliqSize int) ooo.Config {
	return ooo.Config{
		Name:              "KILO-1024",
		ROBSize:           64, // the pseudo-ROB
		IQSize:            72,
		LSQSize:           512,
		SLIQSize:          sliqSize,
		SLIQTimer:         16,
		CheckpointPenalty: 8,
	}
}

// New builds the KILO-1024 processor behind the shared engine interface:
// the KILO machine is a configuration of the out-of-order engine, not a
// distinct model, and callers only need what the interface offers.
func New() sample.Engine { return ooo.New(Config1024()) }

// Run is a convenience wrapper: build a KILO-1024 machine, warm its caches
// for the workload, and simulate warmup+measure committed instructions.
func Run(g trace.Generator, warm interface{ WarmRanges() [][2]uint64 }, warmup, measure uint64) *pipeline.Stats {
	p := New()
	if warm != nil {
		p.Hierarchy().Warm(warm.WarmRanges())
	}
	return p.Run(g, warmup, measure)
}
