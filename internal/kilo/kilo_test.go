package kilo

import (
	"testing"

	"dkip/internal/ooo"
	"dkip/internal/workload"
)

func TestConfig1024(t *testing.T) {
	c := Config1024()
	if c.ROBSize != 64 {
		t.Errorf("pseudo-ROB = %d, want 64", c.ROBSize)
	}
	if c.IQSize != 72 {
		t.Errorf("issue queues = %d, want 72", c.IQSize)
	}
	if c.SLIQSize != 1024 {
		t.Errorf("SLIQ = %d, want 1024", c.SLIQSize)
	}
	if c.LSQSize != 512 {
		t.Errorf("LSQ = %d, want 512", c.LSQSize)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConfigCustomSLIQ(t *testing.T) {
	if Config(256).SLIQSize != 256 {
		t.Error("custom SLIQ size not honored")
	}
}

func TestKILOBeatsSmallWindowOnMLP(t *testing.T) {
	// On a streaming FP workload with independent misses, KILO-1024's
	// virtual window must decisively beat the R10-64 it is built from.
	run := func(cfg ooo.Config) float64 {
		g := workload.MustNew("applu")
		p := ooo.New(cfg)
		p.Hierarchy().Warm(g.WarmRanges())
		return p.Run(g, 10000, 40000).IPC()
	}
	kilo := run(Config1024())
	base := run(ooo.R10K64())
	if kilo < 2*base {
		t.Errorf("KILO-1024 (%.3f) should far exceed R10-64 (%.3f) on streaming FP", kilo, base)
	}
}

func TestRunHelper(t *testing.T) {
	g := workload.MustNew("gzip")
	st := Run(g, g, 2000, 8000)
	if st.Committed < 8000 {
		t.Errorf("committed %d", st.Committed)
	}
	if st.IPC() <= 0 {
		t.Error("non-positive IPC")
	}
}
