package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
)

// This file is the suite's stand-in for golang.org/x/tools' analysistest:
// golden packages under testdata/src/<analyzer>/... carry `// want "re"`
// comments on the lines where a diagnostic must fire, and CheckWant runs
// analyzers over them and diffs findings against expectations. The golden
// packages are real, compilable Go — the loader feeds their directories to
// `go list` explicitly, which resolves packages under testdata even though
// ./... skips them.

// wantRe matches a `// want "regexp"` or `// want `regexp“ expectation.
var wantRe = regexp.MustCompile("// want (\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// expectation is one `// want` comment: a diagnostic matching re must be
// reported on this exact file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// CheckWant loads the golden packages rooted at the given testdata-relative
// directories (e.g. "determinism/a"), runs the analyzers over all of them
// in one pass — cross-package analyzers see the full set — and returns one
// error message per mismatch: a diagnostic no expectation matches, or an
// expectation no diagnostic hit.
func CheckWant(testdataDir string, dirs []string, analyzers []*Analyzer) []string {
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./" + filepath.ToSlash(filepath.Join("src", d))
	}
	pkgs, fset, err := Load(testdataDir, patterns...)
	if err != nil {
		return []string{err.Error()}
	}
	var wants []*expectation
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pat := m[2]
					if pat == "" {
						pat = m[3]
					} else {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return []string{fmt.Sprintf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), pat, err)}
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	var problems []string
	for _, d := range Run(pkgs, fset, analyzers) {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re))
		}
	}
	return problems
}
