package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared call-graph / lock-tracking substrate under the
// three concurrency analyzers (lockorder, goroleak, guardedstate). It models
// lock identity at two granularities — a lockClass names a mutex declaration
// ("serve.member.mu", "experiments.sharedMu"), a lockRef pins a concrete
// instance (root object + selector path) — and provides a flow-sensitive
// must-hold walker over function bodies: at every acquire, call, field
// access, and go statement it reports the set of locks provably held on
// every path reaching that point (intersection at merges, so a lock held on
// only one branch does not count).

// lockRef identifies a mutex instance: the declaration-level class plus,
// when the expression is a plain ident/selector chain, the chain's root
// object and dotted field path. root is nil when the instance cannot be
// pinned (index expressions, call results) — class-level checks still apply,
// instance-level ones (double-lock) do not.
type lockRef struct {
	class string
	root  types.Object
	path  string
}

// sameInstance reports whether two refs provably name the same mutex.
func (r lockRef) sameInstance(o lockRef) bool {
	return r.class == o.class && r.root != nil && r.root == o.root && r.path == o.path
}

// lockOp is one classified Lock/Unlock-family call.
type lockOp struct {
	ref     lockRef
	acquire bool
	pos     token.Pos
}

// isSyncLocker reports whether t (after pointer stripping) is sync.Mutex or
// sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	t = derefType(t)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// containsLocker reports whether a value of type t holds a sync.Mutex or
// sync.RWMutex by value (directly, or transitively through struct fields and
// array elements) — copying such a value copies lock state.
func containsLocker(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	if isSyncLocker(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLocker(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLocker(u.Elem(), seen)
	}
	return false
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// refOfExpr resolves a plain ident/selector chain to (root object, dotted
// path). `m.mu` rooted at param m yields (m, "mu"); a chain through an index
// or call is not pinnable and returns ok=false.
func refOfExpr(pass *Pass, x ast.Expr) (types.Object, string, bool) {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			obj = pass.Info.Defs[e]
		}
		if obj == nil {
			return nil, "", false
		}
		return obj, "", true
	case *ast.SelectorExpr:
		root, p, ok := refOfExpr(pass, e.X)
		if !ok {
			return nil, "", false
		}
		if p != "" {
			p += "."
		}
		return root, p + e.Sel.Name, true
	case *ast.StarExpr:
		return refOfExpr(pass, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return refOfExpr(pass, e.X)
		}
	}
	return nil, "", false
}

// classOfMutexExpr names the declaration a mutex expression refers to:
// a struct field → "pkg.Type.field", a package-level var → "pkg.var", a
// function-local var → "pkg.owner.var". owner is the enclosing function's
// name, used only for locals.
func classOfMutexExpr(pass *Pass, x ast.Expr, owner string) (lockRef, bool) {
	x = ast.Unparen(x)
	if u, ok := x.(*ast.UnaryExpr); ok && u.Op == token.AND {
		x = ast.Unparen(u.X)
	}
	switch e := x.(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			obj = pass.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return lockRef{}, false
		}
		base := pkgBase(pass.Pkg.Path())
		if v.Pkg() != nil {
			base = pkgBase(v.Pkg().Path())
		}
		class := base + "." + v.Name()
		if v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
			class = base + "." + owner + "." + v.Name()
		}
		return lockRef{class: class, root: v}, true
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			field := sel.Obj()
			recv := derefType(sel.Recv())
			named, ok := recv.(*types.Named)
			if !ok || field.Pkg() == nil {
				return lockRef{}, false
			}
			class := pkgBase(field.Pkg().Path()) + "." + named.Obj().Name() + "." + field.Name()
			root, path, pinned := refOfExpr(pass, e)
			if !pinned {
				root, path = nil, ""
			}
			return lockRef{class: class, root: root, path: path}, true
		}
		// Package-qualified var: other.Mu
		if v, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return lockRef{class: pkgBase(v.Pkg().Path()) + "." + v.Name(), root: v}, true
		}
	}
	return lockRef{}, false
}

// classifyLockCall recognizes X.Lock/RLock/TryLock (acquire) and
// X.Unlock/RUnlock (release) where the method resolves to sync.Mutex or
// sync.RWMutex — including through an embedded mutex, where the class is
// the embedding type's promoted field.
func classifyLockCall(pass *Pass, call *ast.CallExpr, owner string) (lockOp, bool) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var acquire bool
	switch fun.Sel.Name {
	case "Lock", "RLock", "TryLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return lockOp{}, false
	}
	sel, ok := pass.Info.Selections[fun]
	if !ok || sel.Kind() != types.MethodVal {
		return lockOp{}, false
	}
	m, ok := sel.Obj().(*types.Func)
	if !ok || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	xt := derefType(sel.Recv())
	if named, ok := xt.(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
		// Promoted method: t.Lock() on a type embedding the mutex. Class is
		// the embedded-field chain on the named type.
		parts := []string{pkgBase(named.Obj().Pkg().Path()), named.Obj().Name()}
		cur := named.Underlying()
		idx := sel.Index()
		for _, i := range idx[:len(idx)-1] {
			st, ok := cur.(*types.Struct)
			if !ok || i >= st.NumFields() {
				return lockOp{}, false
			}
			f := st.Field(i)
			parts = append(parts, f.Name())
			cur = derefType(f.Type()).Underlying()
		}
		root, path, pinned := refOfExpr(pass, fun.X)
		if !pinned {
			root, path = nil, ""
		}
		return lockOp{
			ref:     lockRef{class: strings.Join(parts, "."), root: root, path: path},
			acquire: acquire,
			pos:     call.Pos(),
		}, true
	}
	ref, ok := classOfMutexExpr(pass, fun.X, owner)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{ref: ref, acquire: acquire, pos: call.Pos()}, true
}

// ---- must-held set ---------------------------------------------------------

func heldClone(h []lockRef) []lockRef {
	return append([]lockRef(nil), h...)
}

func heldHasClass(h []lockRef, class string) bool {
	for _, r := range h {
		if r.class == class {
			return true
		}
	}
	return false
}

func heldHasInstance(h []lockRef, ref lockRef) bool {
	for _, r := range h {
		if r.sameInstance(ref) {
			return true
		}
	}
	return false
}

func heldAdd(h []lockRef, ref lockRef) []lockRef {
	if heldHasInstance(h, ref) {
		return h
	}
	return append(h, ref)
}

// heldRemove drops the ref released by an unlock: the same instance when
// pinnable, otherwise the most recent ref of the class.
func heldRemove(h []lockRef, ref lockRef) []lockRef {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].sameInstance(ref) || (ref.root == nil && h[i].class == ref.class) {
			return append(h[:i:i], h[i+1:]...)
		}
	}
	// Not instance-matched: drop the most recent same-class ref if any.
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].class == ref.class {
			return append(h[:i:i], h[i+1:]...)
		}
	}
	return h
}

// heldIntersect keeps the refs of a that also appear (class+root+path) in b.
func heldIntersect(a, b []lockRef) []lockRef {
	var out []lockRef
	for _, r := range a {
		for _, o := range b {
			if r.class == o.class && r.root == o.root && r.path == o.path {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// ---- flow-sensitive walker -------------------------------------------------

// heldWalker drives a must-hold walk over one function body. Callbacks see
// the held set at the event's program point. Goroutine bodies, deferred
// closures, and escaping function literals are walked as fresh roots with an
// empty held set — locks never transfer across a goroutine boundary, and a
// deferred body runs at an unknown point.
type heldWalker struct {
	pass      *Pass
	owner     string // enclosing function name, for local-var lock classes
	onAcquire func(op lockOp, held []lockRef)
	onRelease func(op lockOp, held []lockRef)
	onCall    func(call *ast.CallExpr, held []lockRef)
	onAccess  func(sel *ast.SelectorExpr, held []lockRef)
	onSpawn   func(g *ast.GoStmt, held []lockRef)
}

func (w *heldWalker) walkFunc(body *ast.BlockStmt, entry []lockRef) {
	held := heldClone(entry)
	w.walkList(body.List, &held)
}

// walkList walks statements in order; returns false when control provably
// cannot fall off the end (return/branch terminated).
func (w *heldWalker) walkList(list []ast.Stmt, held *[]lockRef) bool {
	for _, s := range list {
		if !w.walkStmt(s, held) {
			return false
		}
	}
	return true
}

func (w *heldWalker) walkStmt(s ast.Stmt, held *[]lockRef) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.BlockStmt:
		return w.walkList(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.ExprStmt:
		w.walkExpr(s.X, held)
		return !isPanicCall(w.pass, s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e, held)
		}
		return true
	case *ast.IncDecStmt:
		w.walkExpr(s.X, held)
		return true
	case *ast.SendStmt:
		w.walkExpr(s.Chan, held)
		w.walkExpr(s.Value, held)
		return true
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, held)
					}
				}
			}
		}
		return true
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e, held)
		}
		return false
	case *ast.BranchStmt:
		return s.Tok == token.FALLTHROUGH
	case *ast.DeferStmt:
		return w.walkDefer(s, held)
	case *ast.GoStmt:
		if w.onSpawn != nil {
			w.onSpawn(s, *held)
		}
		for _, a := range s.Call.Args {
			w.walkExpr(a, held)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			var empty []lockRef
			w.walkList(lit.Body.List, &empty)
		}
		return true
	case *ast.IfStmt:
		w.walkStmt(s.Init, held)
		w.walkExpr(s.Cond, held)
		thenHeld := heldClone(*held)
		tCont := w.walkStmt(s.Body, &thenHeld)
		elseHeld := heldClone(*held)
		eCont := true
		if s.Else != nil {
			eCont = w.walkStmt(s.Else, &elseHeld)
		}
		switch {
		case tCont && eCont:
			*held = heldIntersect(thenHeld, elseHeld)
		case tCont:
			*held = thenHeld
		case eCont:
			*held = elseHeld
		default:
			*held = nil
		}
		return tCont || eCont
	case *ast.ForStmt:
		w.walkStmt(s.Init, held)
		if s.Cond != nil {
			w.walkExpr(s.Cond, held)
		}
		bodyHeld := heldClone(*held)
		if w.walkStmt(s.Body, &bodyHeld) {
			w.walkStmt(s.Post, &bodyHeld)
		}
		if s.Cond == nil {
			// `for {}`: exits only via break; held after the loop is the
			// body-out intersection alone, but break points are unmodeled —
			// use the conservative intersection with entry.
			*held = heldIntersect(*held, bodyHeld)
			return true
		}
		*held = heldIntersect(*held, bodyHeld)
		return true
	case *ast.RangeStmt:
		w.walkExpr(s.X, held)
		bodyHeld := heldClone(*held)
		w.walkStmt(s.Body, &bodyHeld)
		*held = heldIntersect(*held, bodyHeld)
		return true
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, held)
		if s.Tag != nil {
			w.walkExpr(s.Tag, held)
		}
		return w.walkCases(s.Body, held, true)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, held)
		w.walkStmt(s.Assign, held)
		return w.walkCases(s.Body, held, true)
	case *ast.SelectStmt:
		return w.walkCases(s.Body, held, false)
	default:
		return true
	}
}

// walkCases walks switch/select clause bodies on clones of the entry set and
// merges the falling-through outs by intersection. For a switch without a
// default clause the entry set joins the merge (no case may match); a select
// always runs exactly one clause.
func (w *heldWalker) walkCases(body *ast.BlockStmt, held *[]lockRef, isSwitch bool) bool {
	var outs [][]lockRef
	hasDefault := false
	for _, cs := range body.List {
		caseHeld := heldClone(*held)
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.walkExpr(e, &caseHeld)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			w.walkStmt(c.Comm, &caseHeld)
			stmts = c.Body
		}
		if w.walkList(stmts, &caseHeld) {
			outs = append(outs, caseHeld)
		}
	}
	if isSwitch && !hasDefault {
		outs = append(outs, heldClone(*held))
	}
	if len(outs) == 0 {
		*held = nil
		return len(body.List) == 0 || (isSwitch && !hasDefault)
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = heldIntersect(merged, o)
	}
	*held = merged
	return true
}

// walkDefer models `defer mu.Unlock()` as keeping the lock held for the rest
// of the body; other deferred work runs at an unknown point and is walked
// with an empty held set.
func (w *heldWalker) walkDefer(s *ast.DeferStmt, held *[]lockRef) bool {
	if _, ok := classifyLockCall(w.pass, s.Call, w.owner); ok {
		return true
	}
	for _, a := range s.Call.Args {
		w.walkExpr(a, held)
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		var empty []lockRef
		w.walkList(lit.Body.List, &empty)
	} else if w.onCall != nil {
		w.onCall(s.Call, nil)
	}
	return true
}

// walkExpr fires events for the calls, accesses, and lock operations inside
// one expression, mutating held through lock calls in source order.
func (w *heldWalker) walkExpr(e ast.Expr, held *[]lockRef) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			var empty []lockRef
			w.walkList(n.Body.List, &empty)
			return false
		case *ast.CallExpr:
			if op, ok := classifyLockCall(w.pass, n, w.owner); ok {
				if op.acquire {
					if w.onAcquire != nil {
						w.onAcquire(op, *held)
					}
					*held = heldAdd(*held, op.ref)
				} else {
					if w.onRelease != nil {
						w.onRelease(op, *held)
					}
					*held = heldRemove(*held, op.ref)
				}
				return false
			}
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				for _, a := range n.Args {
					w.walkExpr(a, held)
				}
				w.walkList(lit.Body.List, held) // immediately invoked: inherits held
				return false
			}
			if w.onCall != nil {
				w.onCall(n, *held)
			}
			return true
		case *ast.SelectorExpr:
			if w.onAccess != nil {
				w.onAccess(n, *held)
			}
			return true
		}
		return true
	})
}

// isPanicCall reports whether e is a direct call to the panic builtin.
func isPanicCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

// ---- decl index ------------------------------------------------------------

// declIndex maps *types.Func identities to their declarations across every
// package an analyzer has seen — the cross-package spine lockorder,
// goroleak, and guardedstate share with hotalloc's summary walk.
type declIndex struct {
	decls map[*types.Func]*declEntry
}

type declEntry struct {
	fd   *ast.FuncDecl
	pass *Pass
}

func (ix *declIndex) add(pass *Pass) {
	if ix.decls == nil {
		ix.decls = make(map[*types.Func]*declEntry)
	}
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
			ix.decls[fn] = &declEntry{fd: fd, pass: pass}
		}
	})
}

// moduleCallees returns the statically resolvable intra-module callees of a
// body, in source order.
func moduleCallees(pass *Pass, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeOf(pass.Info, call); fn != nil && fn.Pkg() != nil && isModulePath(fn.Pkg().Path()) {
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}
