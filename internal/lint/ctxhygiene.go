package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxHygiene enforces deadline hygiene in the daemon-facing packages
// (serve, sim): no bare time.Sleep (a kill-a-daemon drill must be able to
// cancel every wait — use a timer/ticker in a select with ctx.Done), no
// outbound HTTP call without a context to carry a deadline, and no
// streaming loop that can keep encoding onto a connection without arming a
// write deadline first (the wedged-scraper bug PR 7 fixed).
var CtxHygiene = &Analyzer{
	Name: "ctxhygiene",
	Doc:  "bare sleeps, context-free HTTP, and undeadlined stream writes in serve/sim",
	New:  func() Instance { return &ctxHygiene{} },
}

// hygieneScoped is the set of packages (by directory name) the analyzer
// applies to: the ones that hold connections and run under fleet drills.
var hygieneScoped = map[string]bool{"serve": true, "sim": true}

type ctxHygiene struct{}

func (*ctxHygiene) Finish(Reporter) {}

func (c *ctxHygiene) Package(pass *Pass) {
	if !hygieneScoped[pkgBase(pass.Pkg.Path())] {
		return
	}
	c.checkCalls(pass)
	c.checkStreams(pass)
}

// checkCalls flags bare sleeps and context-free outbound HTTP.
func (c *ctxHygiene) checkCalls(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgFunc(pass.Info, call, "time", "Sleep"):
				pass.Report(call.Pos(), "bare time.Sleep: use a timer/ticker in a select with ctx.Done so shutdown can interrupt the wait")
			case isPkgFunc(pass.Info, call, "net/http", "Get", "Post", "Head", "PostForm"):
				pass.Report(call.Pos(), "outbound HTTP without a context deadline: build the request with http.NewRequestWithContext")
			case isMethod(pass.Info, call, "net/http", "Client", "Get"),
				isMethod(pass.Info, call, "net/http", "Client", "Post"),
				isMethod(pass.Info, call, "net/http", "Client", "Head"),
				isMethod(pass.Info, call, "net/http", "Client", "PostForm"):
				pass.Report(call.Pos(), "outbound HTTP without a context deadline: build the request with http.NewRequestWithContext")
			case isPkgFunc(pass.Info, call, "net/http", "NewRequest"):
				pass.Report(call.Pos(), "http.NewRequest carries no context: use http.NewRequestWithContext")
			}
			return true
		})
	}
}

// streamFacts summarizes what a function (or closure) body reaches: a JSON
// Encode onto a stream, and a SetWriteDeadline arming the connection.
type streamFacts struct {
	encodes  bool
	deadline bool
}

// checkStreams finds loops that can keep calling (*json.Encoder).Encode
// across iterations without a SetWriteDeadline reachable in the same body.
// An Encode whose statement is immediately followed by return/break is a
// final write, not a stream, and is exempt — the wait-loop in handleGet
// writes once and leaves.
func (c *ctxHygiene) checkStreams(pass *Pass) {
	decls := c.declFacts(pass)
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		closures := localClosures(pass, fd.Body)
		closureFacts := make(map[types.Object]streamFacts, len(closures))
		for obj, lit := range closures {
			closureFacts[obj] = c.bodyFacts(pass, lit.Body, decls, nil)
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch l := n.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			facts := c.bodyFacts(pass, body, decls, closureFacts)
			if !facts.encodes || facts.deadline {
				return true
			}
			if pos := c.continuingEncode(pass, body, decls, closureFacts); pos.IsValid() {
				pass.Report(pos, "streaming encode in a loop without SetWriteDeadline: a reader that stops draining pins this goroutine for the connection's lifetime")
			}
			return true
		})
	})
}

// declFacts computes streamFacts for every package-level function, with
// intra-package propagation to a fixpoint so a helper like writeJSON counts
// as an encoder at its call sites.
func (c *ctxHygiene) declFacts(pass *Pass) map[*types.Func]streamFacts {
	facts := make(map[*types.Func]streamFacts)
	calls := make(map[*types.Func][]*types.Func)
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		f := streamFacts{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isJSONEncode(pass.Info, call):
				f.encodes = true
			case isSetWriteDeadline(call):
				f.deadline = true
			default:
				if callee := calleeOf(pass.Info, call); callee != nil && callee.Pkg() == pass.Pkg {
					calls[fn] = append(calls[fn], callee)
				}
			}
			return true
		})
		facts[fn] = f
	})
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			f := facts[fn]
			for _, callee := range callees {
				cf := facts[callee]
				if (cf.encodes && !f.encodes) || (cf.deadline && !f.deadline) {
					f.encodes = f.encodes || cf.encodes
					f.deadline = f.deadline || cf.deadline
					facts[fn] = f
					changed = true
				}
			}
		}
	}
	return facts
}

// bodyFacts scans one statement body, folding in the summaries of called
// package functions and local closures.
func (c *ctxHygiene) bodyFacts(pass *Pass, body *ast.BlockStmt, decls map[*types.Func]streamFacts, closureFacts map[types.Object]streamFacts) streamFacts {
	var f streamFacts
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cf := c.callFacts(pass, call, decls, closureFacts)
		f.encodes = f.encodes || cf.encodes
		f.deadline = f.deadline || cf.deadline
		return true
	})
	return f
}

// callFacts resolves one call to its stream summary.
func (c *ctxHygiene) callFacts(pass *Pass, call *ast.CallExpr, decls map[*types.Func]streamFacts, closureFacts map[types.Object]streamFacts) streamFacts {
	if isJSONEncode(pass.Info, call) {
		return streamFacts{encodes: true}
	}
	if isSetWriteDeadline(call) {
		return streamFacts{deadline: true}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			if f, ok := closureFacts[obj]; ok {
				return f
			}
		}
	}
	if fn := calleeOf(pass.Info, call); fn != nil {
		return decls[fn]
	}
	return streamFacts{}
}

// continuingEncode returns the position of the first encode-reaching call in
// body whose statement lets the loop continue — i.e. is not a ReturnStmt
// and is not immediately followed by return or break in its statement list.
func (c *ctxHygiene) continuingEncode(pass *Pass, body *ast.BlockStmt, decls map[*types.Func]streamFacts, closureFacts map[types.Object]streamFacts) token.Pos {
	var found token.Pos
	var scanList func(list []ast.Stmt)
	// encodeIn reports whether the statement contains an encode-reaching
	// call anywhere (conditions, init clauses, nested blocks included).
	encodeIn := func(s ast.Stmt) bool {
		yes := false
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && c.callFacts(pass, call, decls, closureFacts).encodes {
				yes = true
			}
			return !yes
		})
		return yes
	}
	terminal := func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			return s.Tok == token.BREAK || s.Tok == token.GOTO
		}
		return false
	}
	scanList = func(list []ast.Stmt) {
		for i, s := range list {
			if found.IsValid() {
				return
			}
			// Descend into nested statement lists first so the innermost
			// context decides whether the write is final.
			switch s := s.(type) {
			case *ast.BlockStmt:
				scanList(s.List)
				continue
			case *ast.IfStmt:
				scanList(s.Body.List)
				if els, ok := s.Else.(*ast.BlockStmt); ok {
					scanList(els.List)
				}
				// The condition/init themselves can encode (if err :=
				// enc.Encode(v); ...): treat like a plain statement below.
				cond := false
				if s.Init != nil && encodeIn(s.Init) {
					cond = true
				}
				ast.Inspect(s.Cond, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok && c.callFacts(pass, call, decls, closureFacts).encodes {
						cond = true
					}
					return true
				})
				if cond && !(i+1 < len(list) && terminal(list[i+1])) && !blockTerminates(s.Body) {
					found = s.Pos()
				}
				continue
			case *ast.ForStmt:
				scanList(s.Body.List)
				continue
			case *ast.RangeStmt:
				scanList(s.Body.List)
				continue
			case *ast.SwitchStmt:
				for _, cc := range s.Body.List {
					scanList(cc.(*ast.CaseClause).Body)
				}
				continue
			case *ast.TypeSwitchStmt:
				for _, cc := range s.Body.List {
					scanList(cc.(*ast.CaseClause).Body)
				}
				continue
			case *ast.SelectStmt:
				for _, cc := range s.Body.List {
					scanList(cc.(*ast.CommClause).Body)
				}
				continue
			}
			if !encodeIn(s) {
				continue
			}
			if i+1 < len(list) && terminal(list[i+1]) {
				continue // final write: encode, then leave the loop
			}
			found = s.Pos()
		}
	}
	scanList(body.List)
	return found
}

// blockTerminates reports whether every path through the block ends in
// return/break — `if err := write(); err != nil { return }` style guards
// do not make the write final, but `write(); return` bodies do.
func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.BREAK || last.Tok == token.GOTO
	}
	return false
}

// isJSONEncode matches (*encoding/json.Encoder).Encode calls.
func isJSONEncode(info *types.Info, call *ast.CallExpr) bool {
	return isMethod(info, call, "encoding/json", "Encoder", "Encode")
}

// isSetWriteDeadline matches any SetWriteDeadline method call — the
// ResponseController, net.Conn, and *net.TCPConn flavors alike.
func isSetWriteDeadline(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "SetWriteDeadline"
}

// localClosures maps local objects defined as `name := func(...){...}` to
// their function literals, so calls through them resolve in loop scans.
func localClosures(pass *Pass, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					out[obj] = lit
				}
			}
		}
		return true
	})
	return out
}
