package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism flags the two statically detectable ways a simulation artifact
// goes nondeterministic:
//
//  1. ranging over a map while the loop body reaches an encoder, formatter,
//     or hash sink — map iteration order leaks into output bytes unless the
//     keys are collected and sorted first (the PR 3 `-json` bug);
//  2. consulting wall-clock time or math/rand inside a simulation-semantic
//     package, where internal/xrand is the only legal entropy source — the
//     same seed must always produce the same machine.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "map-order-dependent output and ambient entropy in simulation packages",
	New:  func() Instance { return &determinism{} },
}

// simSemantic is the set of packages (by directory name) whose behaviour
// must be a pure function of configuration and seed.
var simSemantic = map[string]bool{
	"core": true, "ooo": true, "mem": true, "pipeline": true,
	"kilo": true, "predictor": true, "sample": true, "ckpt": true,
}

type determinism struct{}

func (*determinism) Finish(Reporter) {}

func (d *determinism) Package(pass *Pass) {
	sinks := sinkSummaries(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pos, desc := firstSink(pass, sinks, rng.Body); pos.IsValid() {
				pass.Report(pos, "%s inside range over map: iteration order leaks into output; collect and sort the keys first", desc)
			}
			return true
		})
	}
	if simSemantic[pkgBase(pass.Pkg.Path())] {
		d.checkEntropy(pass)
	}
}

// sinkSummaries computes, per package-level function, whether its body calls
// an output sink directly or (transitively, within the package) through
// another local function. The range-over-map check then treats a call to
// such a function as a sink too, so extracting fmt.Fprintf into a helper
// does not launder the nondeterminism.
func sinkSummaries(pass *Pass) map[*types.Func]bool {
	direct := make(map[*types.Func]bool)
	calls := make(map[*types.Func][]*types.Func)
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, desc := directSink(pass, call); desc != "" {
				direct[fn] = true
			} else if callee := calleeOf(pass.Info, call); callee != nil && callee.Pkg() == pass.Pkg {
				calls[fn] = append(calls[fn], callee)
			}
			return true
		})
	})
	// Propagate sink-ness up the intra-package call graph to a fixpoint.
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if direct[fn] {
				continue
			}
			for _, c := range callees {
				if direct[c] {
					direct[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return direct
}

// directSink classifies a call as an output sink: fmt formatting, JSON
// encoding, io.WriteString, or a hash/digest write.
func directSink(pass *Pass, call *ast.CallExpr) (token.Pos, string) {
	fn := calleeOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		// Interface calls: a Write on a hash.Hash arrives here.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal &&
				types.IsInterface(s.Recv()) && isHashType(s.Recv()) &&
				(sel.Sel.Name == "Write" || sel.Sel.Name == "Sum") {
				return call.Pos(), "hash write"
			}
		}
		return token.NoPos, ""
	}
	switch fn.Pkg().Path() {
	case "fmt":
		// Only the writing entry points: fmt.Errorf/Sprintf construct
		// values, they don't emit bytes anywhere order could leak.
		switch fn.Name() {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return call.Pos(), "call to fmt." + fn.Name()
		}
	case "encoding/json":
		// Encoding direction only: decoding can't leak iteration order.
		switch fn.Name() {
		case "Marshal", "MarshalIndent", "Encode":
			return call.Pos(), "call to json." + fn.Name()
		}
	case "io":
		if fn.Name() == "WriteString" {
			return call.Pos(), "call to io.WriteString"
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isHashType(sig.Recv().Type()) {
		if fn.Name() == "Write" || fn.Name() == "Sum" {
			return call.Pos(), "hash write"
		}
	}
	return token.NoPos, ""
}

// isHashType reports whether t is (or points to) a type from a hash package
// (hash, crypto/*, hash/*).
func isHashType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "hash" || hasPrefix(path, "hash/") || hasPrefix(path, "crypto")
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// firstSink finds the first sink reached from body: a direct sink call or a
// call to a same-package function whose summary says it sinks. A sort.* or
// slices.Sort* call appearing before any sink clears the body — the loop is
// the canonical collect-then-sort idiom written inline.
func firstSink(pass *Pass, sinks map[*types.Func]bool, body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var desc string
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() || sorted {
			return false
		}
		// Work dispatched concurrently from the loop never sees iteration
		// order — goroutines interleave regardless — so writes inside a go
		// statement are the collector's ordering problem, not this loop's.
		if _, isGo := n.(*ast.GoStmt); isGo {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeOf(pass.Info, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				sorted = true
				return false
			}
			if sinks[fn] && fn.Pkg() == pass.Pkg {
				pos, desc = call.Pos(), "call to "+fn.Name()+" (which writes output)"
				return false
			}
		}
		if p, d := directSink(pass, call); p.IsValid() {
			pos, desc = p, d
			return false
		}
		return true
	})
	if sorted {
		return token.NoPos, ""
	}
	return pos, desc
}

// checkEntropy flags wall-clock and math/rand uses in simulation packages.
func (d *determinism) checkEntropy(pass *Pass) {
	for ident, obj := range pass.Info.Uses {
		pkg := obj.Pkg()
		if pkg == nil {
			continue
		}
		switch pkg.Path() {
		case "time":
			if fn, ok := obj.(*types.Func); ok {
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Report(ident.Pos(), "time.%s in simulation package %s: simulated time must not depend on the wall clock", fn.Name(), pkgBase(pass.Pkg.Path()))
				}
			}
		case "math/rand", "math/rand/v2":
			pass.Report(ident.Pos(), "%s.%s in simulation package %s: internal/xrand is the only legal entropy source", pkg.Name(), obj.Name(), pkgBase(pass.Pkg.Path()))
		}
	}
}
