package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// GoroLeak requires every go statement to have a visible join or cancel
// path: the spawned body must use a context, a WaitGroup, or a channel that
// outlives it (captured from the spawner or received as a parameter), or
// the statement must carry a //dkip:leak-ok <why> suppression. A goroutine
// with none of these can never be waited for or told to stop — the fleet
// drills kill daemons mid-sweep, and an unjoinable goroutine is work the
// shutdown path silently abandons. Channel and context parameters of
// module functions are tracked through a whole-program fixpoint, so
// `go submit(done)` counts when submit (or anything it calls) actually
// receives or closes its parameter.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "go statements with no join or cancel path (ctx, WaitGroup, channel, or //dkip:leak-ok)",
	New:  func() Instance { return &goroLeak{} },
}

type goroLeak struct {
	idx    declIndex
	passes []*Pass
}

func (g *goroLeak) Package(pass *Pass) {
	if !isModulePath(pass.Pkg.Path()) {
		return
	}
	g.idx.add(pass)
	g.passes = append(g.passes, pass)
}

// paramObs is the fixpoint result: for each module function, which
// parameters (by index) the function observes as a join/cancel signal —
// receives from, sends on, closes, selects over, or passes onward into an
// observed parameter.
type paramObs map[*types.Func][]bool

func (g *goroLeak) Finish(report Reporter) {
	obs := g.fixParamObs()
	for _, pass := range g.passes {
		leakOK, _ := directiveArgs(pass.Fset, pass.Files, dirLeakOK)
		eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
			closures := localClosures(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if u, ok := leakOK[pass.Fset.Position(gs.Pos()).Line]; ok {
					if u.arg == "" {
						report(gs.Pos(), "//dkip:leak-ok needs a reason: say why this goroutine is allowed to outlive its spawner")
					}
					return true
				}
				if g.spawnJoinable(pass, gs, closures, obs) {
					return true
				}
				report(gs.Pos(), "goroutine has no join or cancel path: pass a context, WaitGroup, or channel that outlives it, or annotate with //dkip:leak-ok <why>")
				return true
			})
		})
	}
}

// spawnJoinable decides whether one go statement's goroutine can be joined
// or cancelled from outside.
func (g *goroLeak) spawnJoinable(pass *Pass, gs *ast.GoStmt, closures map[types.Object]*ast.FuncLit, obs paramObs) bool {
	fun := ast.Unparen(gs.Call.Fun)
	// Inline literal: evidence anywhere in the body.
	if lit, ok := fun.(*ast.FuncLit); ok {
		return bodyHasJoin(pass, lit.Body)
	}
	// Local closure: analyze the literal it was defined as.
	if id, ok := fun.(*ast.Ident); ok {
		if lit, ok := closures[pass.Info.Uses[id]]; ok {
			return bodyHasJoin(pass, lit.Body)
		}
	}
	// Static call: a signal-typed argument the spawner still holds counts
	// when the callee observes that parameter (fixpoint for module
	// functions, assumed for externals — we cannot see their bodies).
	callee := calleeOf(pass.Info, gs.Call)
	var calleeObs []bool
	known := false
	if callee != nil {
		if o, ok := obs[callee]; ok {
			calleeObs = o
			known = true
		}
	}
	for i, arg := range gs.Call.Args {
		if !isSignalType(pass.Info.Types[arg].Type) {
			continue
		}
		if root, _, ok := refOfExpr(pass, arg); !ok || root == nil {
			continue // inline make(chan ...): nobody else holds it
		}
		if !known || paramObserved(calleeObs, i, callee) {
			return true
		}
	}
	// Method spawn with a known body and no signal args: the body itself
	// may join through captured/receiver state.
	if callee != nil {
		if de := g.idx.decls[callee]; de != nil {
			return bodyHasJoin(de.pass, de.fd.Body)
		}
	}
	return false
}

// paramObserved reports whether parameter index i (of the call's argument
// list) is observed, accounting for variadic tails.
func paramObserved(obs []bool, i int, fn *types.Func) bool {
	if i < len(obs) {
		return obs[i]
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Variadic() && len(obs) > 0 {
		return obs[len(obs)-1]
	}
	return false
}

// isSignalType reports whether t can carry a join/cancel signal: a channel,
// a context.Context, or a *sync.WaitGroup.
func isSignalType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if isContextType(t) {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		if named, ok := p.Elem().(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
				return true
			}
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// bodyHasJoin reports whether a spawned body contains direct join/cancel
// evidence: a channel operation, WaitGroup.Done, or context use on an
// object that outlives the body (declared outside it — captured variables
// and parameters qualify, body-locals like a fresh ticker or a
// context.Background() result do not).
func bodyHasJoin(pass *Pass, body *ast.BlockStmt) bool {
	local := func(x ast.Expr) (types.Object, bool) {
		root, _, ok := refOfExpr(pass, x)
		if !ok || root == nil {
			return nil, false
		}
		return root, root.Pos() >= body.Pos() && root.Pos() < body.End()
	}
	outlives := func(x ast.Expr) bool {
		root, isLocal := local(x)
		return root != nil && !isLocal
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if outlives(n.Chan) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && outlives(n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && outlives(n.X) {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				if obj.Pos() < body.Pos() || obj.Pos() >= body.End() {
					found = true
				}
			}
		case *ast.CallExpr:
			switch {
			case isBuiltinClose(pass, n):
				if len(n.Args) == 1 && outlives(n.Args[0]) {
					found = true
				}
			case isMethod(pass.Info, n, "sync", "WaitGroup", "Done"):
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && outlives(sel.X) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isBuiltinClose(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// fixParamObs computes, to a fixpoint over the whole module, which
// signal-typed parameters each function observes.
func (g *goroLeak) fixParamObs() paramObs {
	obs := make(paramObs, len(g.idx.decls))
	type funcRec struct {
		fn     *types.Func
		de     *declEntry
		params []types.Object
	}
	var recs []*funcRec
	for fn, de := range g.idx.decls {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		params := make([]types.Object, sig.Params().Len())
		for _, field := range de.fd.Type.Params.List {
			for _, name := range field.Names {
				if o := de.pass.Info.Defs[name]; o != nil {
					for i := 0; i < sig.Params().Len(); i++ {
						if sig.Params().At(i) == o {
							params[i] = o
						}
					}
				}
			}
		}
		obs[fn] = make([]bool, len(params))
		recs = append(recs, &funcRec{fn: fn, de: de, params: params})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].fn.FullName() < recs[j].fn.FullName() })
	paramIndex := func(r *funcRec, x ast.Expr) int {
		root, path, ok := refOfExpr(r.de.pass, x)
		if !ok || path != "" {
			return -1
		}
		for i, p := range r.params {
			if p != nil && p == root {
				return i
			}
		}
		return -1
	}
	for changed := true; changed; {
		changed = false
		for _, r := range recs {
			mark := func(x ast.Expr) {
				if i := paramIndex(r, x); i >= 0 && !obs[r.fn][i] {
					obs[r.fn][i] = true
					changed = true
				}
			}
			ast.Inspect(r.de.fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					mark(n.Chan)
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						mark(n.X)
					}
				case *ast.RangeStmt:
					if tv, ok := r.de.pass.Info.Types[n.X]; ok && tv.Type != nil {
						if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
							mark(n.X)
						}
					}
				case *ast.Ident:
					if obj := r.de.pass.Info.Uses[n]; obj != nil && isContextType(obj.Type()) {
						// Any use of a ctx parameter counts: it is almost
						// always threaded into a blocking call.
						mark(n)
					}
				case *ast.CallExpr:
					switch {
					case isBuiltinClose(r.de.pass, n):
						if len(n.Args) == 1 {
							mark(n.Args[0])
						}
					case isMethod(r.de.pass.Info, n, "sync", "WaitGroup", "Done"),
						isMethod(r.de.pass.Info, n, "sync", "WaitGroup", "Wait"):
						if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
							mark(sel.X)
						}
					default:
						// Passing a parameter onward propagates observation:
						// into a known module function's observed parameter,
						// or into any function we cannot see the body of
						// (assumed to use the signal it was handed).
						var co []bool
						known := false
						callee := calleeOf(r.de.pass.Info, n)
						if callee != nil {
							co, known = obs[callee]
						}
						for ai, arg := range n.Args {
							pi := paramIndex(r, arg)
							if pi < 0 || obs[r.fn][pi] || !isSignalType(r.params[pi].Type()) {
								continue
							}
							if !known || paramObserved(co, ai, callee) {
								obs[r.fn][pi] = true
								changed = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return obs
}
