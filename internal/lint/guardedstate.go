package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// GuardedState finds receiver fields with inconsistent protection in the
// fleet packages: a field of a mutex-bearing struct that some method
// accesses with the receiver's mutex held and another method (or a
// goroutine body inside a method) touches without it — the exact shape of
// the markDown-vs-probe race PR 7 fixed under -race — and fields mixing
// sync/atomic operations with plain loads and stores. Methods every caller
// invokes with the mutex already held (the documented "caller holds mu"
// helpers) are recognized by a call-site fixpoint and analyzed with the
// lock in their entry set.
var GuardedState = &Analyzer{
	Name: "guardedstate",
	Doc:  "struct fields accessed both under and outside the receiver's mutex, or with mixed atomic/plain ops",
	New:  func() Instance { return &guardedState{} },
}

type guardedState struct {
	passes []*Pass
}

func (g *guardedState) Package(pass *Pass) {
	if !lockScoped[pkgBase(pass.Pkg.Path())] {
		return
	}
	g.passes = append(g.passes, pass)
}

// gsAccess is one access to recv.field inside a method body.
type gsAccess struct {
	pos    token.Pos
	fset   *token.FileSet
	held   map[string]bool // receiver mutex fields held at this point
	atomic bool
	write  bool
}

// gsField keys one (type, field) pair.
type gsField struct {
	typ   *types.Named
	field string
}

func (g *guardedState) Finish(report Reporter) {
	// methodsOf: every method declaration of a mutex-bearing named type,
	// plus every declaration at all (for call-site scanning).
	type methodRec struct {
		fd      *ast.FuncDecl
		pass    *Pass
		fn      *types.Func
		typ     *types.Named
		recvObj types.Object
		muField []string // mutex field names of typ
	}
	var methods []*methodRec
	byFn := make(map[*types.Func]*methodRec)
	for _, pass := range g.passes {
		pass := pass
		eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				return
			}
			rec := &methodRec{fd: fd, pass: pass, fn: fn}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				rec.recvObj = pass.Info.Defs[fd.Recv.List[0].Names[0]]
				if rec.recvObj != nil {
					if named, ok := derefType(rec.recvObj.Type()).(*types.Named); ok {
						rec.typ = named
						rec.muField = mutexFields(named)
					}
				}
			}
			methods = append(methods, rec)
			byFn[fn] = rec
		})
	}
	sort.Slice(methods, func(i, j int) bool { return methods[i].fn.FullName() < methods[j].fn.FullName() })

	// Caller-holds fixpoint: entry[fn] is the set of receiver mutex fields
	// held at EVERY call site of fn (and at least one site exists).
	entry := make(map[*types.Func]map[string]bool)
	for iter := 0; iter < len(methods)+1; iter++ {
		type siteInfo struct {
			any  bool
			held map[string]bool // intersection across sites
		}
		sites := make(map[*types.Func]*siteInfo)
		for _, m := range methods {
			g.walkMethod(m.pass, m.fd, m.recvObj, entry[m.fn], nil, func(call *ast.CallExpr, held []lockRef) {
				callee := calleeOf(m.pass.Info, call)
				target, ok := byFn[callee]
				if !ok || target.typ == nil || len(target.muField) == 0 {
					return
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return
				}
				root, path, pinned := refOfExpr(m.pass, sel.X)
				if !pinned || root == nil {
					return
				}
				heldMu := make(map[string]bool)
				for _, mu := range target.muField {
					full := mu
					if path != "" {
						full = path + "." + mu
					}
					ref := lockRef{class: fieldClass(target.typ, mu), root: root, path: full}
					if heldHasInstance(held, ref) {
						heldMu[mu] = true
					}
				}
				si := sites[callee]
				if si == nil {
					sites[callee] = &siteInfo{any: true, held: heldMu}
					return
				}
				for mu := range si.held {
					if !heldMu[mu] {
						delete(si.held, mu)
					}
				}
			})
		}
		next := make(map[*types.Func]map[string]bool)
		for fn, si := range sites {
			if si.any && len(si.held) > 0 {
				next[fn] = si.held
			}
		}
		if entrySetsEqual(entry, next) {
			break
		}
		entry = next
	}

	// Final pass: collect per-field guarded/unguarded/atomic accesses.
	accesses := make(map[gsField][]gsAccess)
	for _, m := range methods {
		if m.typ == nil || len(m.muField) == 0 {
			continue
		}
		m := m
		excluded := make(map[string]bool, len(m.muField))
		for _, mu := range m.muField {
			excluded[mu] = true
		}
		atomicSels := atomicArgSelectors(m.pass, m.fd)
		writeSels := writeSelectors(m.fd)
		g.walkMethod(m.pass, m.fd, m.recvObj, entry[m.fn], func(sel *ast.SelectorExpr, held []lockRef) {
			s, ok := m.pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return
			}
			root, path, pinned := refOfExpr(m.pass, sel)
			if !pinned || root != m.recvObj {
				return
			}
			field := sel.Sel.Name
			if path != field {
				return // nested access like recv.sub.f: attribute to the top field only
			}
			if excluded[field] || isSyncType(s.Obj().Type()) {
				return
			}
			heldMu := make(map[string]bool)
			for _, mu := range m.muField {
				ref := lockRef{class: fieldClass(m.typ, mu), root: m.recvObj, path: mu}
				if heldHasInstance(held, ref) {
					heldMu[mu] = true
				}
			}
			accesses[gsField{m.typ, field}] = append(accesses[gsField{m.typ, field}], gsAccess{
				pos:    sel.Pos(),
				fset:   m.pass.Fset,
				held:   heldMu,
				atomic: atomicSels[sel.Pos()],
				write:  writeSels[sel.Pos()],
			})
		}, nil)
	}

	// Report: per field, a mutex some accesses hold and others do not; and
	// mixed atomic/plain access.
	var keys []gsField
	for k := range accesses {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.typ.Obj().Name() != b.typ.Obj().Name() {
			return a.typ.Obj().Name() < b.typ.Obj().Name()
		}
		return a.field < b.field
	})
	for _, k := range keys {
		accs := accesses[k]
		tname := pkgBase(k.typ.Obj().Pkg().Path()) + "." + k.typ.Obj().Name()
		var mus []string
		seen := map[string]bool{}
		for _, a := range accs {
			for mu := range a.held {
				if !seen[mu] {
					seen[mu] = true
					mus = append(mus, mu)
				}
			}
		}
		sort.Strings(mus)
		for _, mu := range mus {
			guarded, unguarded, guardedWrites, unguardedWrites := 0, 0, 0, 0
			var first *gsAccess
			for i, a := range accs {
				if a.atomic {
					continue
				}
				if a.held[mu] {
					guarded++
					if a.write {
						guardedWrites++
					}
				} else {
					unguarded++
					if a.write {
						unguardedWrites++
					}
					if first == nil || posLess(a.fset, a.pos, first.pos) {
						first = &accs[i]
					}
				}
			}
			// A race needs a write: a locked writer racing unguarded
			// access, or an unguarded writer racing locked readers. Fields
			// only ever read in methods (set once at construction) are
			// immutable as far as the methods are concerned.
			if (guardedWrites > 0 && unguarded > 0) || (unguardedWrites > 0 && guarded > 0) {
				report(first.pos, "%s.%s is accessed without %s.%s held (%d unguarded vs %d guarded sites, %d guarded writes): concurrent method calls race on this field", tname, k.field, tname, mu, unguarded, guarded, guardedWrites)
			}
		}
		atomicN, plainN, writes := 0, 0, 0
		var firstPlain *gsAccess
		for i, a := range accs {
			if a.atomic {
				atomicN++
				writes++ // assume atomic ops include writers (Add/Store/Swap)
			} else {
				plainN++
				if a.write {
					writes++
				}
				if firstPlain == nil || posLess(a.fset, a.pos, firstPlain.pos) {
					firstPlain = &accs[i]
				}
			}
		}
		if atomicN > 0 && plainN > 0 && writes > 0 {
			report(firstPlain.pos, "%s.%s mixes sync/atomic and plain access: plain loads race the atomic writers — use atomic for every access or guard all of them with the mutex", tname, k.field)
		}
	}
}

// walkMethod runs the held walker over one declaration with the inferred
// caller-holds entry set.
func (g *guardedState) walkMethod(pass *Pass, fd *ast.FuncDecl, recvObj types.Object, entryMu map[string]bool, onAccess func(*ast.SelectorExpr, []lockRef), onCall func(*ast.CallExpr, []lockRef)) {
	var entry []lockRef
	if recvObj != nil && entryMu != nil {
		if named, ok := derefType(recvObj.Type()).(*types.Named); ok {
			for mu := range entryMu {
				entry = append(entry, lockRef{class: fieldClass(named, mu), root: recvObj, path: mu})
			}
		}
	}
	w := &heldWalker{pass: pass, owner: fd.Name.Name, onAccess: onAccess, onCall: onCall}
	w.walkFunc(fd.Body, entry)
}

// mutexFields lists the names of named's direct sync.Mutex/RWMutex fields.
func mutexFields(named *types.Named) []string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		if isSyncLocker(st.Field(i).Type()) {
			out = append(out, st.Field(i).Name())
		}
	}
	return out
}

// fieldClass names a field's lock class the same way classOfMutexExpr does.
func fieldClass(named *types.Named, field string) string {
	return pkgBase(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + field
}

// isSyncType excludes fields whose type carries its own synchronization
// (sync.* and sync/atomic.* types) from the guarded-state accounting.
func isSyncType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "sync" || p == "sync/atomic"
}

// atomicArgSelectors records the positions of recv-field selectors passed
// by address into sync/atomic functions (atomic.AddUint64(&s.n, 1)): those
// accesses are atomic, not plain.
func atomicArgSelectors(pass *Pass, fd *ast.FuncDecl) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
				out[sel.Pos()] = true
			}
		}
		return true
	})
	return out
}

// writeSelectors records the positions of selector expressions that write:
// assignment left-hand sides, ++/--, and address-taken fields (a pointer
// handed out can be written through).
func writeSelectors(fd *ast.FuncDecl) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	mark := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			out[sel.Pos()] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return out
}

func entrySetsEqual(a, b map[*types.Func]map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for fn, am := range a {
		bm, ok := b[fn]
		if !ok || len(am) != len(bm) {
			return false
		}
		for mu := range am {
			if !bm[mu] {
				return false
			}
		}
	}
	return true
}

func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}
