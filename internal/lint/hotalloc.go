package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotAlloc enforces the PR 5 invariant statically: functions annotated
// //dkip:hotpath — the per-cycle loops, heaps, rings, and cache lookups —
// and every intra-module function they can reach must not contain
// allocating constructs. The dynamic TestSteadyStateAllocationFree gate
// catches regressions at runtime; this analyzer catches them in review,
// with //dkip:coldpath excluding slow paths the steady state never takes
// and //dkip:alloc-ok suppressing individual amortized-growth sites the
// dynamic gate already bounds.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocating constructs reachable from //dkip:hotpath functions",
	New:  func() Instance { return &hotAlloc{summaries: make(map[*types.Func]*funcSummary)} },
}

// allocSite is one allocating construct inside a function body.
type allocSite struct {
	pos  token.Pos
	desc string
}

// funcSummary is the per-function unit of the cross-package walk: the
// function's own allocation sites (suppressions already applied) and its
// statically resolvable module-internal callees.
type funcSummary struct {
	fn      *types.Func
	hotpath bool
	cold    bool
	sites   []allocSite
	callees []*types.Func
}

type hotAlloc struct {
	summaries map[*types.Func]*funcSummary
	roots     []*types.Func
}

func (h *hotAlloc) Package(pass *Pass) {
	okLines := allocOKLines(pass.Fset, pass.Files)
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		s := &funcSummary{
			fn:      fn,
			hotpath: funcDirective(fd, dirHotpath),
			cold:    funcDirective(fd, dirColdpath),
		}
		if !s.cold {
			h.scanBody(pass, fd.Body, okLines, s)
		}
		h.summaries[fn] = s
		if s.hotpath {
			h.roots = append(h.roots, fn)
		}
	})
}

// scanBody records body's allocation sites and callees into s. Subtrees
// under a panic(...) call are skipped: a panicking path never contributes
// to steady-state allocation, and the idiomatic panic(fmt.Sprintf(...))
// would otherwise flag every invariant check in the pipeline.
func (h *hotAlloc) scanBody(pass *Pass, body *ast.BlockStmt, okLines map[int]bool, s *funcSummary) {
	report := func(pos token.Pos, desc string) {
		if okLines[pass.Fset.Position(pos).Line] {
			return
		}
		s.sites = append(s.sites, allocSite{pos, desc})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return h.scanCall(pass, n, report, s)
		case *ast.FuncLit:
			if escapingClosure(pass, body, n) {
				report(n.Pos(), "escaping closure (captures heap-allocate)")
			}
			return true // scan the closure body in place: it runs on the hot path
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.Info.Types[n]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation")
					}
				}
			}
		}
		return true
	})
}

// scanCall classifies one call inside a hot-candidate body. The return
// value tells ast.Inspect whether to descend into the call's children.
func (h *hotAlloc) scanCall(pass *Pass, call *ast.CallExpr, report func(token.Pos, string), s *funcSummary) bool {
	// Builtins and conversions first: they have no *types.Func.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch obj := pass.Info.Uses[id].(type) {
		case *types.Builtin:
			switch id.Name {
			case "make":
				report(call.Pos(), "make")
			case "new":
				report(call.Pos(), "new")
			case "append":
				report(call.Pos(), "append (may grow)")
			case "panic":
				return false // panic path: never steady-state
			}
			return true
		case *types.TypeName:
			_ = obj
			if len(call.Args) == 1 {
				if convAllocates(pass, call) {
					report(call.Pos(), "converting between string and byte/rune slice")
				}
			}
			return true
		}
	}
	fn := calleeOf(pass.Info, call)
	if fn != nil && fn.Pkg() != nil {
		if fn.Pkg().Path() == "fmt" {
			report(call.Pos(), "call to fmt."+fn.Name())
			return true
		}
		if isModulePath(fn.Pkg().Path()) {
			s.callees = append(s.callees, fn)
		}
	}
	// Arguments boxed into interface parameters allocate — including at
	// interface-method call sites (the container/heap Push(any) shape),
	// where there is no static callee but the method signature is known.
	if sig := callSignature(pass, call, fn); sig != nil {
		h.checkBoxing(pass, call, sig, report)
	}
	return true
}

// callSignature returns the called function's signature when one is
// statically known: from the resolved callee, or from the interface
// method's declared type.
func callSignature(pass *Pass, call *ast.CallExpr, fn *types.Func) *types.Signature {
	if fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		return sig
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			sig, _ := s.Type().(*types.Signature)
			return sig
		}
	}
	return nil
}

// checkBoxing flags concrete non-pointer arguments passed to interface
// parameters — the container/heap mistake PR 5 removed from the issue
// queues.
func (h *hotAlloc) checkBoxing(pass *Pass, call *ast.CallExpr, sig *types.Signature, report func(token.Pos, string)) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		at := tv.Type
		if types.IsInterface(at) || tv.IsNil() {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers box without allocating the pointee
		}
		if tv.Value != nil {
			continue // untyped constants may be preallocated/staticized
		}
		report(arg.Pos(), "interface boxing of "+at.String())
	}
}

// convAllocates reports whether the conversion call copies memory:
// string <-> []byte/[]rune in either direction.
func convAllocates(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	dst := tv.Type.Underlying()
	src := types.Type(nil)
	if atv, ok := pass.Info.Types[call.Args[0]]; ok {
		src = atv.Type.Underlying()
	}
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteRuneSlice := func(t types.Type) bool {
		sl, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
	}
	if src == nil {
		return false
	}
	return (isStr(dst) && isByteRuneSlice(src)) || (isByteRuneSlice(dst) && isStr(src))
}

// escapingClosure reports whether lit escapes its enclosing function. A
// closure bound to a local variable that is only ever called (the
// `consider := func(...)` pattern in advanceCycle) stays on the stack and
// is allocation-free; anything passed, returned, or stored escapes.
func escapingClosure(pass *Pass, body *ast.BlockStmt, lit *ast.FuncLit) bool {
	// Find the closure's immediate context.
	path := nodePath(body, lit)
	if len(path) < 2 {
		return true
	}
	parent := path[len(path)-2]
	switch p := parent.(type) {
	case *ast.CallExpr:
		if p.Fun == lit {
			return false // immediately invoked
		}
		return true // passed as an argument
	case *ast.AssignStmt:
		// f := func(...){...} — non-escaping iff every use of f is a call.
		if p.Tok != token.DEFINE {
			return true
		}
		for i, rhs := range p.Rhs {
			if rhs != ast.Expr(lit) || i >= len(p.Lhs) {
				continue
			}
			id, ok := p.Lhs[i].(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				return true
			}
			return !usedOnlyAsCall(pass, body, obj)
		}
		return true
	default:
		return true
	}
}

// usedOnlyAsCall reports whether every use of obj inside body is the Fun of
// a call expression.
func usedOnlyAsCall(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	only := true
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				only = false
			}
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			// Visit arguments but not the Fun ident.
			for _, a := range call.Args {
				ast.Inspect(a, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
						only = false
					}
					return true
				})
			}
			return false
		}
		return true
	})
	return only
}

// nodePath returns the ancestor chain from root to target (inclusive), or
// nil if target is not under root.
func nodePath(root ast.Node, target ast.Node) []ast.Node {
	var stack, found []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target {
			found = append([]ast.Node(nil), stack...)
			return false
		}
		return true
	})
	return found
}

func isModulePath(path string) bool {
	return path == "dkip" || hasPrefix(path, "dkip/")
}

// Finish walks the call graph from every //dkip:hotpath root and reports
// each allocation site reachable without passing through //dkip:coldpath.
func (h *hotAlloc) Finish(report Reporter) {
	type visit struct {
		fn   *types.Func
		root *types.Func
	}
	seen := make(map[*types.Func]bool)
	reported := make(map[token.Pos]bool)
	sort.Slice(h.roots, func(i, j int) bool { return h.roots[i].FullName() < h.roots[j].FullName() })
	var queue []visit
	for _, r := range h.roots {
		queue = append(queue, visit{r, r})
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if seen[v.fn] {
			continue
		}
		seen[v.fn] = true
		s := h.summaries[v.fn]
		if s == nil || s.cold {
			continue
		}
		for _, site := range s.sites {
			if reported[site.pos] {
				continue
			}
			reported[site.pos] = true
			report(site.pos, "%s in %s, reachable from //dkip:hotpath %s", site.desc, v.fn.Name(), v.root.Name())
		}
		for _, c := range s.callees {
			if !seen[c] {
				queue = append(queue, visit{c, v.root})
			}
		}
	}
}
