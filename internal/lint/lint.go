package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one check. New builds a fresh instance per run so
// cross-package analyzers (hotalloc, wirecheck) can accumulate state over
// every package before reporting from Finish.
type Analyzer struct {
	Name string
	Doc  string
	New  func() Instance
}

// Instance is the per-run state of an analyzer. Package is called once per
// module package in dependency order; Finish runs after the last package.
type Instance interface {
	Package(pass *Pass)
	Finish(report Reporter)
}

// Reporter records a diagnostic at a position.
type Reporter func(pos token.Pos, format string, args ...any)

// Pass carries one package through one analyzer.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Report Reporter
}

// Diagnostic is one finding, position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run drives every analyzer over every package and returns the combined
// findings sorted by position.
func Run(pkgs []*Package, fset *token.FileSet, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		inst := a.New()
		name := a.Name
		report := func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Analyzer: name,
				Pos:      fset.Position(pos),
				Message:  fmt.Sprintf(format, args...),
			})
		}
		for _, p := range pkgs {
			inst.Package(&Pass{Fset: fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info, Report: report})
		}
		inst.Finish(report)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// All returns the full dkipvet suite.
func All() []*Analyzer {
	return []*Analyzer{Determinism, HotAlloc, CtxHygiene, WireCheck, LockOrder, GoroLeak, GuardedState}
}

// ---- annotation directives -------------------------------------------------

// The suite understands five comment directives, written with no space
// after // like all Go tool directives:
//
//	//dkip:hotpath      on a function: root of the static alloc-free walk
//	//dkip:coldpath     on a function: excluded from the walk (slow paths
//	                    the steady state never takes — growth, panics)
//	//dkip:alloc-ok <why>  on or directly above a line: suppresses one
//	                    allocation finding (amortized growth the dynamic
//	                    gate already bounds)
//	//dkip:leak-ok <why>   on or directly above a go statement: suppresses
//	                    the goroleak join-path requirement (the reason is
//	                    mandatory)
//	//dkip:locks-after <class>  on a mutex field declaration: declares that
//	                    this mutex is acquired while <class> is held,
//	                    sanctioning that edge in lockorder's acquisition
//	                    graph (a self-class declares an intentional
//	                    multi-instance order)

const (
	dirHotpath    = "dkip:hotpath"
	dirColdpath   = "dkip:coldpath"
	dirAllocOK    = "dkip:alloc-ok"
	dirLeakOK     = "dkip:leak-ok"
	dirLocksAfter = "dkip:locks-after"
)

// directiveArgs collects, per file set, every occurrence of a directive:
// the covered source lines (the directive's own line and the line after it,
// so both trailing and comment-above placements work) mapped to the
// directive's argument text, plus the position of each occurrence.
type directiveUse struct {
	pos token.Pos
	arg string
}

func directiveArgs(fset *token.FileSet, files []*ast.File, dir string) (map[int]directiveUse, []directiveUse) {
	lines := make(map[int]directiveUse)
	var all []directiveUse
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if text != dir && !strings.HasPrefix(text, dir+" ") {
					continue
				}
				use := directiveUse{pos: c.Pos(), arg: strings.TrimSpace(strings.TrimPrefix(text, dir))}
				all = append(all, use)
				line := fset.Position(c.Pos()).Line
				lines[line] = use
				lines[line+1] = use
			}
		}
	}
	return lines, all
}

// funcDirective reports whether the function declaration's doc comment
// carries the directive.
func funcDirective(fd *ast.FuncDecl, dir string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == dir || strings.HasPrefix(text, dir+" ") {
			return true
		}
	}
	return false
}

// allocOKLines collects, per file, the source lines covered by a
// //dkip:alloc-ok directive: the directive's own line (trailing comment)
// and the line after it (comment-above style).
func allocOKLines(fset *token.FileSet, files []*ast.File) map[int]bool {
	ok := make(map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if text == dirAllocOK || strings.HasPrefix(text, dirAllocOK+" ") {
					line := fset.Position(c.Pos()).Line
					ok[line] = true
					ok[line+1] = true
				}
			}
		}
	}
	return ok
}

// ---- small shared helpers --------------------------------------------------

// pkgBase is the last element of an import path: the package directory name,
// which is how the analyzers scope themselves (so the golden testdata
// packages under internal/lint/testdata/src/... land in the same scopes as
// the real tree).
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// calleeOf resolves a call expression to its static *types.Func target, or
// nil for calls through interfaces values, func values, and builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			// Interface method calls have no static body to walk.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified function
		}
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether the call targets pkgPath.name (a plain function
// of that package).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isMethod reports whether the call targets a method named name whose
// receiver's type (after pointer stripping) is pkgPath.typeName.
func isMethod(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// enclosingFuncs maps every node in the package to its enclosing FuncDecl by
// walking each declaration once.
func eachFuncDecl(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
