package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden tests run each analyzer over a seeded package under
// testdata/src/<analyzer>/ and diff its diagnostics against the `// want`
// comments: every seeded violation must fire, every corrected form next to
// it must stay silent.

func runGolden(t *testing.T, dirs []string, analyzers []*Analyzer) {
	t.Helper()
	for _, p := range CheckWant("testdata", dirs, analyzers) {
		t.Error(p)
	}
}

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, []string{"determinism/a", "determinism/core"}, []*Analyzer{Determinism})
}

func TestHotAllocGolden(t *testing.T) {
	runGolden(t, []string{"hotalloc/hot"}, []*Analyzer{HotAlloc})
}

func TestCtxHygieneGolden(t *testing.T) {
	runGolden(t, []string{"ctxhygiene/serve"}, []*Analyzer{CtxHygiene})
}

func TestWireCheckGolden(t *testing.T) {
	runGolden(t, []string{"wirecheck/serve"}, []*Analyzer{WireCheck})
}

func TestLockOrderGolden(t *testing.T) {
	runGolden(t, []string{"lockorder/serve"}, []*Analyzer{LockOrder})
}

func TestGoroLeakGolden(t *testing.T) {
	runGolden(t, []string{"goroleak/serve"}, []*Analyzer{GoroLeak})
}

func TestGuardedStateGolden(t *testing.T) {
	runGolden(t, []string{"guardedstate/serve"}, []*Analyzer{GuardedState})
}

// TestConcurrencySuiteCleanOnFleet pins the triage of the real tree: the
// concurrency analyzers must stay silent over serve, sim, and experiments.
// The two shapes the first run surfaced — Server.store and Runner.memo,
// both set once at construction and read inside an incidentally-locked
// section — are immutable-after-construction fields, not races, and the
// write-requirement in guardedstate encodes that triage. Reintroducing the
// PR 7 markDown-vs-probe shape (a locked write racing a bare read) fails
// this test before -race ever gets a schedule to catch it.
func TestConcurrencySuiteCleanOnFleet(t *testing.T) {
	pkgs, fset, err := Load("../..", "./internal/serve", "./internal/sim", "./internal/experiments")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*Analyzer{LockOrder, GoroLeak, GuardedState}
	for _, d := range Run(pkgs, fset, analyzers) {
		t.Errorf("unexpected finding on the real tree: %s", d)
	}
}

// TestHotpathCoversAllocGate ties the static and dynamic gates together:
// every method the TestSteadyStateAllocationFree closures exercise in the
// model packages must carry //dkip:hotpath, so the static walk covers at
// least everything the runtime gate measures. Since the engine refactor the
// cycle loop those closures enter (Run and everything under it) is declared
// in internal/engine and promoted into the models, so declarations are
// matched across the joint set of model dirs plus the engine. If the gate
// grows a new entry point, this test demands the annotation before the
// analyzer can vouch for it.
func TestHotpathCoversAllocGate(t *testing.T) {
	// Every model package must carry the runtime gate.
	gateDirs := []string{"../core", "../ooo", "../inorder"}
	declDirs := append([]string{"../engine"}, gateDirs...)

	exercised := make(map[string]bool)
	for _, dir := range gateDirs {
		calls := allocGateCalls(t, dir)
		if len(calls) == 0 {
			t.Fatalf("%s: found no calls inside TestSteadyStateAllocationFree's AllocsPerRun closure", dir)
		}
		for name := range calls {
			exercised[name] = true
		}
	}

	checked := 0
	for _, dir := range declDirs {
		eachDeclInDir(t, dir, func(fd *ast.FuncDecl) {
			if fd.Recv == nil || !exercised[fd.Name.Name] {
				return
			}
			checked++
			if !funcDirective(fd, dirHotpath) {
				t.Errorf("%s: %s is exercised by TestSteadyStateAllocationFree but lacks //dkip:hotpath", dir, fd.Name.Name)
			}
		})
	}
	if checked == 0 {
		t.Errorf("no declared method in %v matched the gate's calls %v", declDirs, exercised)
	}
}

// allocGateCalls parses dir's test files and returns the set of method
// names called inside the testing.AllocsPerRun closure of
// TestSteadyStateAllocationFree.
func allocGateCalls(t *testing.T, dir string) map[string]bool {
	t.Helper()
	calls := make(map[string]bool)
	eachDeclInDir(t, dir, func(fd *ast.FuncDecl) {
		if fd.Name.Name != "TestSteadyStateAllocationFree" || fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "AllocsPerRun" || len(call.Args) != 2 {
				return true
			}
			lit, ok := call.Args[1].(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					if s, ok := c.Fun.(*ast.SelectorExpr); ok {
						calls[s.Sel.Name] = true
					}
				}
				return true
			})
			return true
		})
	})
	return calls
}

// eachDeclInDir parses every .go file in dir (tests included) with comments
// and invokes fn on each function declaration.
func eachDeclInDir(t *testing.T, dir string, fn func(*ast.FuncDecl)) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				fn(fd)
			}
		}
	}
}
