// Package lint is the repo's static-analysis suite: a small, dependency-free
// go/analysis-style framework plus the four dkipvet analyzers (determinism,
// hotalloc, ctxhygiene, wirecheck) that enforce invariants the test suite can
// only check dynamically. The framework is hand-rolled on the standard
// library — go/parser, go/types, and the gc export-data importer — so the
// module keeps its zero-dependency go.mod while still type-checking the whole
// repo the way golang.org/x/tools/go/packages would.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked module package: syntax with comments, the
// types.Package, and the fully populated types.Info. All packages from one
// Load share a single token.FileSet so positions compare globally.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	Imports    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load type-checks the module packages matched by patterns (plus their
// module dependencies) and returns them in dependency order. Imported
// standard-library packages are loaded from gc export data; module packages
// are always checked from source so a function has exactly one *types.Func
// identity across the whole run — the property the cross-package analyzers
// key their summaries on.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:   fset,
		metas:  metas,
		source: make(map[string]*Package),
	}
	ld.gc = importer.ForCompiler(fset, "gc", ld.lookupExport)

	// Type-check every module package reachable from the patterns, in
	// dependency order (importPkg recurses), then keep only the ones the
	// patterns named directly: dependencies are checked because the
	// directly-matched packages need their types, but diagnostics are only
	// wanted for what the caller asked about... except every pattern here
	// is `./...`-shaped in practice, so "direct" and "reachable" coincide.
	var roots []string
	for path, m := range metas {
		if m.direct && inModule(m.pkg) {
			roots = append(roots, path)
		}
	}
	var out []*Package
	for _, path := range roots {
		if _, err := ld.load(path); err != nil {
			return nil, nil, err
		}
	}
	// ld.order holds source-checked packages in completion (topological)
	// order; filter to the direct roots.
	direct := make(map[string]bool, len(roots))
	for _, r := range roots {
		direct[r] = true
	}
	for _, p := range ld.order {
		if direct[p.Path] {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("lint: no module packages matched %v", patterns)
	}
	return out, fset, nil
}

type meta struct {
	pkg    *listPkg
	direct bool
}

func inModule(m *listPkg) bool {
	return m.Module != nil && !m.Standard
}

// goList runs `go list -deps -export -json` over the patterns and indexes
// the result by import path. -export materializes gc export data in the
// build cache for every dependency, which is what lets the loader work with
// an empty module cache and no network.
func goList(dir string, patterns []string) (map[string]*meta, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Name,GoFiles,Export,Standard,Imports,Module,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	metas := make(map[string]*meta)
	dec := json.NewDecoder(bytes.NewReader(stdout))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pp := p
		metas[p.ImportPath] = &meta{pkg: &pp}
	}
	// -deps folds dependencies into the same stream, so a second plain
	// listing tells us exactly which packages the patterns matched; only
	// those get analyzed (their deps are still type-checked for types).
	cmd2 := exec.Command("go", append([]string{"list", "--"}, patterns...)...)
	cmd2.Dir = dir
	directOut, err := cmd2.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v", patterns, err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(directOut)), "\n") {
		if m, ok := metas[strings.TrimSpace(line)]; ok {
			m.direct = true
		}
	}
	return metas, nil
}

// loader type-checks module packages from source, importing everything else
// through gc export data out of the build cache.
type loader struct {
	fset   *token.FileSet
	metas  map[string]*meta
	gc     types.Importer
	source map[string]*Package // source-checked module packages, by path
	order  []*Package          // completion order (dependencies first)
	stack  []string            // cycle detection
}

// lookupExport feeds the gc importer the export file recorded by go list.
func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	m, ok := ld.metas[path]
	if !ok || m.pkg.Export == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(m.pkg.Export)
}

// Import implements types.Importer: module packages resolve to the
// in-memory source-checked package, everything else to gc export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if m, ok := ld.metas[path]; ok && inModule(m.pkg) {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return ld.gc.Import(path)
}

// load parses and type-checks one module package (memoized).
func (ld *loader) load(path string) (*Package, error) {
	if p, ok := ld.source[path]; ok {
		return p, nil
	}
	for _, s := range ld.stack {
		if s == path {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
	}
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	m := ld.metas[path]
	if m == nil {
		return nil, fmt.Errorf("lint: package %q not in go list output", path)
	}
	var files []*ast.File
	for _, name := range m.pkg.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(m.pkg.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	p := &Package{Path: path, Dir: m.pkg.Dir, Files: files, Pkg: pkg, Info: info, Fset: ld.fset}
	ld.source[path] = p
	ld.order = append(ld.order, p)
	return p, nil
}
