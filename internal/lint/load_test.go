package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The loader's happy path is exercised by every golden test; these tests
// cover the error paths: source that does not parse, source that does not
// type-check, patterns that match nothing in the module, patterns go list
// itself rejects, and an import with no export data behind it.

// writeTempModule lays out a throwaway module and returns its root.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadUnparseableSource(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"bad/bad.go": "package bad\n\nfunc Broken( {\n",
	})
	_, _, err := Load(dir, "./bad")
	if err == nil {
		t.Fatal("Load succeeded on a package with a syntax error")
	}
	// go list itself reports the parse failure before the loader's own
	// parser would; either layer naming the file is acceptable.
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("error does not name the broken file: %v", err)
	}
}

func TestLoadTypeCheckError(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"ill/ill.go": "package ill\n\nfunc F() int { return \"not an int\" }\n",
	})
	_, _, err := Load(dir, "./ill")
	if err == nil {
		t.Fatal("Load succeeded on a package that does not type-check")
	}
}

func TestLoadEmptyPattern(t *testing.T) {
	// A pattern that resolves only to non-module packages (here the
	// standard library) leaves nothing to analyze.
	dir := writeTempModule(t, map[string]string{
		"ok/ok.go": "package ok\n",
	})
	_, _, err := Load(dir, "fmt")
	if err == nil {
		t.Fatal("Load succeeded with no module packages matched")
	}
	if !strings.Contains(err.Error(), "no module packages matched") {
		t.Errorf("unexpected error for stdlib-only pattern: %v", err)
	}
}

func TestLoadBadPattern(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"ok/ok.go": "package ok\n",
	})
	_, _, err := Load(dir, "./does-not-exist")
	if err == nil {
		t.Fatal("Load succeeded on a nonexistent directory pattern")
	}
}

func TestLookupExportMissing(t *testing.T) {
	ld := &loader{metas: map[string]*meta{}}
	if _, err := ld.lookupExport("nope/nowhere"); err == nil {
		t.Fatal("lookupExport returned no error for an unknown path")
	} else if !strings.Contains(err.Error(), "no export data") {
		t.Errorf("unexpected lookupExport error: %v", err)
	}
	// A listed package whose Export was never materialized (go list ran
	// without -export, or the build failed) must fail the same way.
	ld.metas["tmpmod/x"] = &meta{pkg: &listPkg{ImportPath: "tmpmod/x"}}
	if _, err := ld.lookupExport("tmpmod/x"); err == nil {
		t.Fatal("lookupExport returned no error for a package with empty export data")
	}
}
