package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds an acquisition-order graph over the fleet packages
// (serve, sim, experiments): an edge A→B means some path acquires B while
// holding A, either directly or through a call whose callee transitively
// acquires B. A cycle in the graph is a potential deadlock. The analyzer
// also flags instance-level double locks (sync.Mutex is not reentrant),
// nested acquisition of two instances of the same class without a declared
// order, and mutex value-copies. //dkip:locks-after on a mutex field
// declares a sanctioned edge; declared edges join the graph but a cycle is
// only reported when at least one of its edges was actually observed.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock-order cycles, double locks, and mutex copies in serve/sim/experiments",
	New:  func() Instance { return &lockOrder{} },
}

// lockScoped is the package set (by directory name) lockorder and
// guardedstate apply to: everything that holds fleet or runner state behind
// mutexes.
var lockScoped = map[string]bool{"serve": true, "sim": true, "experiments": true}

// lockEdge is one acquisition-order observation: to was acquired (or
// reachable through a call) while from was held.
type lockEdge struct {
	from, to string
	pos      token.Pos
	inSpawn  bool // observed on a goroutine-spawned path
}

// loFunc is the per-function record the Finish-time fixpoints consume.
type loFunc struct {
	fn       *types.Func
	pass     *Pass
	recvObj  types.Object
	acquires map[string]bool   // classes acquired synchronously (not on spawned paths)
	recvLock map[string]string // receiver-relative mutex path -> class
	callees  []*types.Func     // synchronous module callees
	events   []loEvent
}

// loEvent is one acquire or call with the must-held set at that point.
type loEvent struct {
	op      *lockOp       // acquire event (nil for calls)
	call    *ast.CallExpr // call event (nil for acquires)
	held    []lockRef
	inSpawn bool
}

type lockOrder struct {
	idx      declIndex
	passes   []*Pass
	fset     *token.FileSet
	declared map[string]map[string]token.Pos // from -> to -> directive pos
	star     starSets
	recvStar map[*types.Func]map[string]string
}

func (l *lockOrder) Package(pass *Pass) {
	if l.fset == nil {
		l.fset = pass.Fset
	}
	if !lockScoped[pkgBase(pass.Pkg.Path())] {
		return
	}
	l.idx.add(pass)
	l.passes = append(l.passes, pass)
	l.collectDeclared(pass)
	l.checkCopies(pass)
}

// collectDeclared reads //dkip:locks-after directives off mutex field and
// package-level mutex var declarations.
func (l *lockOrder) collectDeclared(pass *Pass) {
	if l.declared == nil {
		l.declared = make(map[string]map[string]token.Pos)
	}
	add := func(from, to string, pos token.Pos) {
		if l.declared[from] == nil {
			l.declared[from] = make(map[string]token.Pos)
		}
		l.declared[from][to] = pos
	}
	arg := func(cg *ast.CommentGroup) (string, token.Pos, bool) {
		if cg == nil {
			return "", token.NoPos, false
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if text == dirLocksAfter || strings.HasPrefix(text, dirLocksAfter+" ") {
				return strings.TrimSpace(strings.TrimPrefix(text, dirLocksAfter)), c.Pos(), true
			}
		}
		return "", token.NoPos, false
	}
	base := pkgBase(pass.Pkg.Path())
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					st, ok := sp.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
							after, pos, ok := arg(cg)
							if !ok {
								continue
							}
							if after == "" {
								pass.Report(pos, "//dkip:locks-after needs a lock class argument (e.g. serve.Pool.mu)")
								continue
							}
							for _, name := range field.Names {
								add(after, base+"."+sp.Name.Name+"."+name.Name, pos)
							}
						}
					}
				case *ast.ValueSpec:
					for _, cg := range []*ast.CommentGroup{gd.Doc, sp.Doc, sp.Comment} {
						after, pos, ok := arg(cg)
						if !ok {
							continue
						}
						if after == "" {
							pass.Report(pos, "//dkip:locks-after needs a lock class argument (e.g. serve.Pool.mu)")
							continue
						}
						for _, name := range sp.Names {
							add(after, base+"."+name.Name, pos)
						}
					}
				}
			}
		}
	}
}

// checkCopies flags mutex-bearing values copied by value: value receivers
// and parameters, and assignments whose right-hand side is an existing
// value (composite literals and call results construct fresh state and are
// exempt).
func (l *lockOrder) checkCopies(pass *Pass) {
	copiesLock := func(e ast.Expr) (types.Type, bool) {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return nil, false
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			return nil, false
		}
		if !containsLocker(tv.Type, nil) {
			return nil, false
		}
		switch ast.Unparen(e).(type) {
		case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit:
			return nil, false // fresh value, nothing copied
		}
		return tv.Type, true
	}
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		check := func(fl *ast.FieldList, what string) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				tv, ok := pass.Info.Types[field.Type]
				if !ok || tv.Type == nil {
					continue
				}
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					continue
				}
				if containsLocker(tv.Type, nil) {
					pass.Report(field.Pos(), "%s of %s copies %s by value: the mutex state is copied, use a pointer", what, fd.Name.Name, tv.Type)
				}
			}
		}
		check(fd.Recv, "receiver")
		check(fd.Type.Params, "parameter")
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) {
						if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
							continue // discarded, nothing retains the copy
						}
					}
					if t, bad := copiesLock(rhs); bad {
						pass.Report(rhs.Pos(), "assignment copies %s, which contains a mutex: use a pointer", t)
					}
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
					var elem types.Type
					switch u := tv.Type.Underlying().(type) {
					case *types.Slice:
						elem = u.Elem()
					case *types.Array:
						elem = u.Elem()
					case *types.Map:
						elem = u.Elem()
					}
					if elem != nil {
						if _, isPtr := elem.Underlying().(*types.Pointer); !isPtr && containsLocker(elem, nil) && n.Value != nil {
							pass.Report(n.Value.Pos(), "range copies %s elements, which contain a mutex: iterate by index or store pointers", elem)
						}
					}
				}
			}
			return true
		})
	})
}

// Finish walks every scoped function with the must-held walker, runs the
// acquiresStar / recvLocksStar / spawn-reachability fixpoints, and reports
// double locks, unordered same-class nesting, and order cycles.
func (l *lockOrder) Finish(report Reporter) {
	funcs := l.buildRecords()
	l.fixAcquiresStar(funcs)
	l.fixRecvLocks(funcs)
	mhp := l.spawnReachable(funcs)

	var names []string
	byName := make(map[string]*loFunc, len(funcs))
	for _, r := range funcs {
		byName[r.fn.FullName()] = r
		names = append(names, r.fn.FullName())
	}
	sort.Strings(names)

	var edges []lockEdge
	for _, name := range names {
		r := byName[name]
		concurrent := mhp[r.fn]
		for _, ev := range r.events {
			if ev.op != nil {
				edges = append(edges, l.processAcquire(r, ev, report, concurrent)...)
				continue
			}
			edges = append(edges, l.processCall(r, ev, byName, report, concurrent)...)
		}
	}
	l.reportCycles(edges, report)
}

// buildRecords runs the held walker over every function declaration in the
// scoped packages, recording acquire/call events with their held sets.
func (l *lockOrder) buildRecords() []*loFunc {
	var out []*loFunc
	for _, pass := range l.passes {
		pass := pass
		eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				return
			}
			r := &loFunc{
				fn:       fn,
				pass:     pass,
				acquires: make(map[string]bool),
				recvLock: make(map[string]string),
			}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				r.recvObj = pass.Info.Defs[fd.Recv.List[0].Names[0]]
			}
			// Positions inside goroutine-spawned literal bodies: events there
			// happen on the new goroutine, not synchronously in this call.
			var spawnRanges [][2]token.Pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
						spawnRanges = append(spawnRanges, [2]token.Pos{lit.Body.Pos(), lit.Body.End()})
					}
				}
				return true
			})
			inSpawn := func(pos token.Pos) bool {
				for _, sr := range spawnRanges {
					if pos >= sr[0] && pos < sr[1] {
						return true
					}
				}
				return false
			}
			w := &heldWalker{
				pass:  pass,
				owner: fd.Name.Name,
				onAcquire: func(op lockOp, held []lockRef) {
					sp := inSpawn(op.pos)
					r.events = append(r.events, loEvent{op: &op, held: heldClone(held), inSpawn: sp})
					if !sp {
						r.acquires[op.ref.class] = true
					}
					if r.recvObj != nil && op.ref.root == r.recvObj && op.ref.path != "" {
						r.recvLock[op.ref.path] = op.ref.class
					}
				},
				onCall: func(call *ast.CallExpr, held []lockRef) {
					fn := calleeOf(pass.Info, call)
					if fn == nil || fn.Pkg() == nil || !isModulePath(fn.Pkg().Path()) {
						return
					}
					sp := inSpawn(call.Pos())
					r.events = append(r.events, loEvent{call: call, held: heldClone(held), inSpawn: sp})
					if !sp {
						r.callees = append(r.callees, fn)
					}
				},
			}
			w.walkFunc(fd.Body, nil)
			out = append(out, r)
		})
	}
	return out
}

// acquiresStarOf holds the transitive-acquire fixpoint keyed by function.
type starSets map[*types.Func]map[string]bool

func (l *lockOrder) fixAcquiresStar(funcs []*loFunc) {
	l.star = make(starSets, len(funcs))
	for _, r := range funcs {
		s := make(map[string]bool, len(r.acquires))
		for c := range r.acquires {
			s[c] = true
		}
		l.star[r.fn] = s
	}
	for changed := true; changed; {
		changed = false
		for _, r := range funcs {
			s := l.star[r.fn]
			for _, callee := range r.callees {
				for c := range l.star[callee] {
					if !s[c] {
						s[c] = true
						changed = true
					}
				}
			}
		}
	}
}

// fixRecvLocks propagates receiver-relative lock paths through calls on the
// same receiver: if g locks recv.mu and f calls recv.g(), f locks recv.mu.
func (l *lockOrder) fixRecvLocks(funcs []*loFunc) {
	rec := make(map[*types.Func]*loFunc, len(funcs))
	for _, r := range funcs {
		rec[r.fn] = r
	}
	l.recvStar = make(map[*types.Func]map[string]string, len(funcs))
	for _, r := range funcs {
		m := make(map[string]string, len(r.recvLock))
		for p, c := range r.recvLock {
			m[p] = c
		}
		l.recvStar[r.fn] = m
	}
	for changed := true; changed; {
		changed = false
		for _, r := range funcs {
			if r.recvObj == nil {
				continue
			}
			m := l.recvStar[r.fn]
			for _, ev := range r.events {
				if ev.call == nil {
					continue
				}
				callee, recvRoot, recvPath := l.callReceiver(r.pass, ev.call)
				if callee == nil || recvRoot != r.recvObj || recvPath != "" {
					continue
				}
				for p, c := range l.recvStar[callee] {
					if _, ok := m[p]; !ok {
						m[p] = c
						changed = true
					}
				}
			}
		}
	}
}

// callReceiver resolves a method call's receiver expression to (callee,
// root object, dotted path) when it is a plain ident/selector chain.
func (l *lockOrder) callReceiver(pass *Pass, call *ast.CallExpr) (*types.Func, types.Object, string) {
	fn := calleeOf(pass.Info, call)
	if fn == nil {
		return nil, nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, nil, ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil, ""
	}
	root, path, pinned := refOfExpr(pass, sel.X)
	if !pinned {
		return fn, nil, ""
	}
	return fn, root, path
}

// spawnReachable computes the may-happen-in-parallel set: every function
// reachable (over synchronous module calls) from a goroutine-spawned body.
func (l *lockOrder) spawnReachable(funcs []*loFunc) map[*types.Func]bool {
	rec := make(map[*types.Func]*loFunc, len(funcs))
	for _, r := range funcs {
		rec[r.fn] = r
	}
	var queue []*types.Func
	seen := make(map[*types.Func]bool)
	push := func(fn *types.Func) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			queue = append(queue, fn)
		}
	}
	for _, r := range funcs {
		pass := r.pass
		if de := l.idx.decls[r.fn]; de != nil {
			ast.Inspect(de.fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				// Spawned static callees; literal bodies' own callees are
				// already in r.callees-adjacent events, so walk them here.
				if fn := calleeOf(pass.Info, g.Call); fn != nil && fn.Pkg() != nil && isModulePath(fn.Pkg().Path()) {
					push(fn)
				}
				if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
					for _, fn := range moduleCallees(pass, lit.Body) {
						push(fn)
					}
				}
				return true
			})
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if r := rec[fn]; r != nil {
			for _, c := range r.callees {
				push(c)
			}
		}
	}
	return seen
}

// processAcquire handles one direct acquire event: instance double lock,
// unordered same-class nesting, and order edges from every held class.
func (l *lockOrder) processAcquire(r *loFunc, ev loEvent, report Reporter, concurrent bool) []lockEdge {
	var edges []lockEdge
	op := ev.op
	if heldHasInstance(ev.held, op.ref) {
		report(op.pos, "double lock of %s: this mutex instance is already held on every path here (sync mutexes are not reentrant)", op.ref.class)
		return nil
	}
	for _, h := range ev.held {
		if h.class == op.ref.class {
			if !l.declaredEdge(h.class, op.ref.class) {
				report(op.pos, "acquiring a second %s instance while one is held: without a declared order two goroutines can deadlock; annotate the field with //dkip:locks-after %s if the nesting order is invariant", op.ref.class, op.ref.class)
			}
			continue
		}
		edges = append(edges, lockEdge{from: h.class, to: op.ref.class, pos: op.pos, inSpawn: ev.inSpawn || concurrent})
	}
	return edges
}

// processCall handles one call event: edges from held classes into the
// callee's transitive acquires, and double locks through recvLocksStar.
func (l *lockOrder) processCall(r *loFunc, ev loEvent, byName map[string]*loFunc, report Reporter, concurrent bool) []lockEdge {
	var edges []lockEdge
	callee, recvRoot, recvPath := l.callReceiver(r.pass, ev.call)
	if callee == nil {
		callee = calleeOf(r.pass.Info, ev.call)
	}
	if callee == nil {
		return nil
	}
	for c := range l.star[callee] {
		for _, h := range ev.held {
			if h.class != c {
				edges = append(edges, lockEdge{from: h.class, to: c, pos: ev.call.Pos(), inSpawn: ev.inSpawn || concurrent})
			}
		}
	}
	if recvRoot != nil {
		for p, c := range l.recvStar[callee] {
			full := p
			if recvPath != "" {
				full = recvPath + "." + p
			}
			if heldHasInstance(ev.held, lockRef{class: c, root: recvRoot, path: full}) {
				report(ev.call.Pos(), "calling %s while holding %s: the callee locks the same mutex instance again (deadlock)", callee.Name(), c)
			}
		}
	}
	return edges
}

func (l *lockOrder) declaredEdge(from, to string) bool {
	m, ok := l.declared[from]
	if !ok {
		return false
	}
	_, ok = m[to]
	return ok
}

// reportCycles merges observed and declared edges into one graph and
// reports each cycle that contains at least one observed edge, once, at the
// first-by-position observed edge that closes it.
func (l *lockOrder) reportCycles(observed []lockEdge, report Reporter) {
	adj := make(map[string]map[string]bool)
	addEdge := func(from, to string) {
		if from == to {
			return
		}
		if adj[from] == nil {
			adj[from] = make(map[string]bool)
		}
		adj[from][to] = true
	}
	for _, e := range observed {
		addEdge(e.from, e.to)
	}
	for from, tos := range l.declared {
		for to := range tos {
			addEdge(from, to)
		}
	}
	// Deterministic edge order: by source position.
	sort.Slice(observed, func(i, j int) bool {
		a, b := l.fset.Position(observed[i].pos), l.fset.Position(observed[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	reported := make(map[string]bool)
	for _, e := range observed {
		path := l.findPath(adj, e.to, e.from) // e.to -> ... -> e.from
		if path == nil {
			continue
		}
		nodes := append([]string{e.from}, path[:len(path)-1]...)
		key := canonicalCycle(nodes)
		if reported[key] {
			continue
		}
		reported[key] = true
		note := ""
		if e.inSpawn {
			note = "; the acquisition paths may run concurrently"
		}
		display := strings.Join(append(append([]string(nil), nodes...), nodes[0]), " -> ")
		report(e.pos, "lock-order cycle: %s is acquired while holding %s, closing the cycle %s%s — a concurrent reverse acquisition deadlocks", e.to, e.from, display, note)
	}
}

// findPath returns a node path from -> ... -> to through adj with at least
// one edge, or nil. Deterministic: neighbors visited in sorted order.
func (l *lockOrder) findPath(adj map[string]map[string]bool, from, to string) []string {
	seen := make(map[string]bool)
	var dfs func(cur string) []string
	dfs = func(cur string) []string {
		var next []string
		for n := range adj[cur] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if n == to {
				return []string{cur, to}
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			if p := dfs(n); p != nil {
				return append([]string{cur}, p...)
			}
		}
		return nil
	}
	seen[from] = true
	return dfs(from)
}

// canonicalCycle produces a rotation-invariant key for a cycle node list.
func canonicalCycle(nodes []string) string {
	if len(nodes) == 0 {
		return ""
	}
	min := 0
	for i, n := range nodes {
		if n < nodes[min] {
			min = i
		}
	}
	rotated := append(append([]string(nil), nodes[min:]...), nodes[:min]...)
	return strings.Join(rotated, "|")
}
