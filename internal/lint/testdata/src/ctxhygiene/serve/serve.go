// Package serve seeds ctxhygiene violations (the analyzer scopes by
// package directory name): bare sleeps, context-free outbound HTTP, and
// undeadlined streaming loops, each next to its corrected form.
package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"time"
)

// Poll naps between probes with no way to interrupt the nap.
func Poll(ready func() bool) {
	for !ready() {
		time.Sleep(50 * time.Millisecond) // want "bare time.Sleep"
	}
}

// PollCtx is the corrected form: a ticker in a select with ctx.
func PollCtx(ctx context.Context, ready func() bool) error {
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for !ready() {
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Probe fires requests that no deadline can reach.
func Probe(c *http.Client, base string) {
	_, _ = http.Get(base + "/healthz")                // want "outbound HTTP without a context deadline"
	_, _ = c.Head(base + "/healthz")                  // want "outbound HTTP without a context deadline"
	_, _ = http.NewRequest(http.MethodGet, base, nil) // want "http.NewRequest carries no context"
}

// ProbeCtx is the corrected form.
func ProbeCtx(ctx context.Context, c *http.Client, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

type deadliner interface {
	SetWriteDeadline(t time.Time) error
}

// Stream keeps encoding onto the connection with no write deadline: a
// reader that stops draining pins this goroutine forever.
func Stream(w http.ResponseWriter, events <-chan int) {
	enc := json.NewEncoder(w)
	for ev := range events {
		_ = enc.Encode(ev) // want "streaming encode in a loop without SetWriteDeadline"
	}
}

// StreamDeadlined arms a per-write deadline first — the corrected form.
func StreamDeadlined(w http.ResponseWriter, rc deadliner, events <-chan int) {
	enc := json.NewEncoder(w)
	for ev := range events {
		_ = rc.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
}

// StreamViaClosure launders both the encode and the deadline through an
// emit closure, the handleResults shape — still clean.
func StreamViaClosure(w http.ResponseWriter, rc deadliner, events <-chan int) {
	enc := json.NewEncoder(w)
	emit := func(ev int) error {
		_ = rc.SetWriteDeadline(time.Now().Add(5 * time.Second))
		return enc.Encode(ev)
	}
	for ev := range events {
		if emit(ev) != nil {
			return
		}
	}
}

// WaitAndAnswer writes once and leaves the loop — a final write, not a
// stream, so no deadline is demanded.
func WaitAndAnswer(w http.ResponseWriter, ch <-chan int, timeout <-chan time.Time) {
	enc := json.NewEncoder(w)
	for {
		select {
		case v := <-ch:
			_ = enc.Encode(v)
			return
		case <-timeout:
			return
		}
	}
}
