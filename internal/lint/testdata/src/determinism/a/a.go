// Package a seeds determinism violations: map iteration feeding output
// sinks, directly and laundered through a helper, plus the corrected
// collect-and-sort forms that must stay clean.
package a

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Direct sink inside a map range: the classic nondeterministic artifact.
func PrintAll(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf inside range over map"
	}
}

// Encoding direction of json is a sink too.
func EncodeAll(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for _, v := range m {
		_ = enc.Encode(v) // want "json.Encode inside range over map"
	}
}

// emit exists to launder the sink through a same-package helper.
func emit(w io.Writer, k string, v int) {
	fmt.Fprintf(w, "%s=%d\n", k, v)
}

func PrintLaundered(w io.Writer, m map[string]int) {
	for k, v := range m {
		emit(w, k, v) // want "call to emit .which writes output. inside range over map"
	}
}

// The corrected form: collect, sort, then iterate the slice.
func PrintSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Sorting inline inside the range body counts as an intervening sort.
func PrintInlineSort(w io.Writer, m map[string][]string, order []string) {
	for _, vs := range m {
		sort.Strings(vs)
		fmt.Fprintf(w, "%v\n", vs)
	}
}

// Output dispatched concurrently from the range is the collector's
// ordering problem, not the loop's: goroutines interleave regardless.
func FanOut(w io.Writer, m map[string]int) {
	for k, v := range m {
		go func(k string, v int) {
			fmt.Fprintf(w, "%s=%d\n", k, v)
		}(k, v)
	}
}

// Decoding direction never leaks iteration order.
func DecodeAll(rs map[string]io.Reader, into []any) {
	i := 0
	for _, r := range rs {
		_ = json.NewDecoder(r).Decode(&into[i])
		i++
	}
}
