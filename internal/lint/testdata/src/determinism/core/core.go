// Package core seeds entropy violations in a simulation-semantic package
// (the analyzer scopes by package directory name): wall-clock time and
// math/rand are banned; internal/xrand is the one legal source.
package core

import (
	"math/rand"
	"time"

	"dkip/internal/xrand"
)

// Cycle consults the wall clock and ambient randomness — both banned.
func Cycle(seed uint64) uint64 {
	t := time.Now()          // want "time.Now in simulation package core"
	r := rand.Uint64()       // want `rand.Uint64 in simulation package core`
	elapsed := time.Since(t) // want "time.Since in simulation package core"
	return r + uint64(elapsed.Nanoseconds())
}

// Legal: deterministic seeded entropy from internal/xrand, and time used
// only as a unit (durations, constants), never sampled.
func CycleSeeded(seed uint64) uint64 {
	rng := xrand.New(seed)
	const tick = 10 * time.Millisecond
	return rng.Uint64() + uint64(tick)
}
