// Package serve seeds goroleak violations: goroutines spawned with no join
// or cancel path, next to the joinable forms (WaitGroup, captured done
// channel, context, observed channel parameters) and the suppression
// directive that must stay silent.
package serve

import (
	"context"
	"sync"
	"time"
)

// fire is the bare spawn: nothing outside the goroutine can stop or await it.
func fire() {
	go func() { // want "goroutine has no join or cancel path"
		for {
			_ = 0
		}
	}()
}

// fanout joins through the captured WaitGroup.
func fanout(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// watch hands back a done channel the goroutine closes.
func watch() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	return done
}

// poll is cancellable through the captured context.
func poll(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// tick only touches a goroutine-local ticker: that is not a join path.
func tick() {
	go func() { // want "goroutine has no join or cancel path"
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for range t.C {
			_ = 0
		}
	}()
}

// detach builds its own background context inside the body — nobody outside
// holds a cancel handle, so it is as unjoinable as fire.
func detach() {
	go func() { // want "goroutine has no join or cancel path"
		ctx := context.Background()
		use(ctx)
	}()
}

func use(ctx context.Context) { _ = ctx }

// submitAll spawns a local closure; the closure sends on the captured
// channel, so the spawner (or its caller) can drain it.
func submitAll(ch chan int) {
	submit := func(v int) {
		ch <- v
	}
	go submit(1)
}

// spawnWorker passes its done channel two levels down: worker hands it to
// waitDone, which receives — the observed-parameter fixpoint carries the
// evidence back to the go statement.
func spawnWorker(done chan struct{}) {
	go worker(done)
}

func worker(done chan struct{}) {
	waitDone(done)
}

func waitDone(done chan struct{}) {
	<-done
}

// spawnDeaf also passes a channel, but deaf never listens: no join path.
func spawnDeaf(done chan struct{}) {
	go deaf(done) // want "goroutine has no join or cancel path"
}

func deaf(done chan struct{}) {
	_ = done
}

// daemonize is suppressed with a reasoned directive.
func daemonize() {
	//dkip:leak-ok detached process-lifetime flusher, exits with the binary
	go func() {
		for {
			_ = 0
		}
	}()
}

// sloppy carries the directive without a reason, which is its own finding.
func sloppy() {
	//dkip:leak-ok
	go func() { // want "dkip:leak-ok needs a reason"
		for {
			_ = 0
		}
	}()
}
