// Package serve seeds guardedstate violations: fields written under the
// receiver's mutex and read without it (the markDown-vs-probe shape),
// unguarded access from a goroutine inside a method, and mixed atomic/plain
// access — next to the caller-holds helper and read-only constructor-set
// field patterns that must stay silent.
package serve

import (
	"sync"
	"sync/atomic"
)

// tracker.gen is written under mu in bump but read bare in peek.
type tracker struct {
	mu  sync.Mutex
	gen int
}

func (t *tracker) bump() {
	t.mu.Lock()
	t.gen++
	t.mu.Unlock()
}

func (t *tracker) peek() int {
	return t.gen // want "tracker.gen is accessed without"
}

// prober.start writes probing under the lock, then spawns a goroutine that
// writes it with no lock at all — locks do not cross goroutine boundaries.
type prober struct {
	mu      sync.Mutex
	probing bool
	done    chan struct{}
}

func (p *prober) start() {
	p.mu.Lock()
	p.probing = true
	p.mu.Unlock()
	go func() {
		p.probing = false // want "prober.probing is accessed without"
		close(p.done)
	}()
}

// ledger.addLocked touches entries bare, but every call site holds l.mu —
// the caller-holds inference keeps it clean.
type ledger struct {
	mu      sync.Mutex
	entries int
}

func (l *ledger) add(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.addLocked(n)
}

func (l *ledger) drain() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.entries
	l.addLocked(-n)
	return n
}

// addLocked mutates entries; callers hold l.mu.
func (l *ledger) addLocked(n int) {
	l.entries += n
}

// hits.n is bumped atomically and read plainly: the plain load races the
// atomic writers.
type hits struct {
	mu sync.Mutex
	n  uint64
}

func (h *hits) hit() {
	atomic.AddUint64(&h.n, 1)
}

func (h *hits) read() uint64 {
	return h.n // want "hits.n mixes sync/atomic and plain access"
}

// cache.limit is set once at construction and only read in methods — one of
// the reads happens to sit inside a locked section, which is not evidence
// of a race (no method ever writes it).
type cache struct {
	mu    sync.Mutex
	limit int
	items int
}

func newCache(limit int) *cache { return &cache{limit: limit} }

func (c *cache) put() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items++
	if c.items > c.limit {
		c.items = 0
	}
}

func (c *cache) cap() int {
	return c.limit
}
