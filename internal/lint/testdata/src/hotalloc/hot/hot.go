// Package hot seeds hotalloc violations: allocating constructs inside and
// reachable from //dkip:hotpath functions, next to the annotated and
// refactored forms that must stay clean.
package hot

import "fmt"

// Sink is an interface parameter target for the boxing check.
type Sink interface{ Put(v any) }

type counter struct{ n uint64 }

// Cycle is a hot loop with one of everything the analyzer bans.
//
//dkip:hotpath
func Cycle(c *counter, s Sink, tag string, vals []uint64) string {
	buf := make([]uint64, 4)      // want "make in Cycle"
	box := new(counter)           // want "new in Cycle"
	vals = append(vals, 1)        // want `append .may grow. in Cycle`
	msg := fmt.Sprintf("%d", c.n) // want "call to fmt.Sprintf in Cycle"
	label := tag + msg            // want "string concatenation in Cycle"
	s.Put(c.n)                    // want "interface boxing of uint64 in Cycle"
	_ = buf
	_ = box
	return label
}

// helper carries an allocation the walk must find two hops from the root.
func helper(n int) []uint64 {
	return make([]uint64, n) // want "make in helper"
}

func middle(n int) []uint64 { return helper(n) }

// Drive reaches helper's make through middle — neither is annotated, both
// are on the hot path.
//
//dkip:hotpath
func Drive(n int) []uint64 { return middle(n) }

// grow is the amortized slow path, excluded from the walk.
//
//dkip:coldpath
func grow(s []uint64) []uint64 {
	return append(make([]uint64, 0, 2*cap(s)), s...)
}

// push is the corrected hot form: suppressed amortized growth, cold-path
// growth factored out, panic paths exempt.
//
//dkip:hotpath
func push(s []uint64, v uint64) []uint64 {
	if len(s) == cap(s) {
		s = grow(s)
	}
	//dkip:alloc-ok amortized growth, bounded by the window and reused
	s = append(s, v)
	if len(s) == 0 {
		panic(fmt.Sprintf("impossible: %d", v))
	}
	return s
}

// Tick shows the non-escaping closure idiom: a func literal bound to a
// local and only ever called compiles to a stack closure.
//
//dkip:hotpath
func Tick(c *counter, vals []uint64) uint64 {
	best := uint64(0)
	consider := func(v uint64) {
		if v > best {
			best = v
		}
	}
	for _, v := range vals {
		consider(v)
	}
	escape := func() uint64 { return best } // want "escaping closure"
	return keep(escape)
}

func keep(f func() uint64) uint64 { return f() }
