// Package serve seeds lockorder violations: an acquisition-order cycle
// taken directly, one taken through a call, instance double locks (direct
// and via a method on the same receiver), unordered same-class nesting, and
// mutex value-copies — each next to the corrected or sanctioned form that
// must stay silent.
package serve

import "sync"

// ---- direct AB/BA cycle ----------------------------------------------------

type acct struct{ mu sync.Mutex }

type audit struct{ mu sync.Mutex }

func transfer(a *acct, l *audit) {
	a.mu.Lock()
	defer a.mu.Unlock()
	l.mu.Lock() // want "lock-order cycle: serve.audit.mu is acquired while holding serve.acct.mu"
	defer l.mu.Unlock()
}

// inspect takes the same pair in the opposite order; the cycle is reported
// once, at the first edge by position (in transfer above).
func inspect(a *acct, l *audit) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// ---- cycle closed through a call ------------------------------------------

type ring struct{ mu sync.Mutex }

type journal struct{ mu sync.Mutex }

func lockJournal(j *journal) {
	j.mu.Lock()
	j.mu.Unlock()
}

func rotate(r *ring, j *journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lockJournal(j) // want "lock-order cycle: serve.journal.mu is acquired while holding serve.ring.mu"
}

func seal(r *ring, j *journal) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r.mu.Lock()
	r.mu.Unlock()
}

// ---- consistent order: clean ----------------------------------------------

type inbox struct{ mu sync.Mutex }

type outbox struct{ mu sync.Mutex }

func relay(i *inbox, o *outbox) {
	i.mu.Lock()
	defer i.mu.Unlock()
	o.mu.Lock()
	o.mu.Unlock()
}

func flushBoth(i *inbox, o *outbox) {
	i.mu.Lock()
	o.mu.Lock()
	o.mu.Unlock()
	i.mu.Unlock()
}

// ---- double lock, direct ---------------------------------------------------

type gauge struct{ mu sync.Mutex }

func double(g *gauge) {
	g.mu.Lock()
	g.mu.Lock() // want "double lock of serve.gauge.mu"
	g.mu.Unlock()
	g.mu.Unlock()
}

// reacquire is the corrected form: the first hold ends before the second.
func reacquire(g *gauge) {
	g.mu.Lock()
	g.mu.Unlock()
	g.mu.Lock()
	g.mu.Unlock()
}

// ---- double lock through a method on the same receiver ---------------------

type counterBox struct {
	mu sync.Mutex
	n  int
}

func (c *counterBox) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// bumpLocked is the corrected helper: callers hold the lock, it does not.
func (c *counterBox) bumpLocked() { c.n++ }

func (c *counterBox) flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // want "calling bump while holding serve.counterBox.mu"
	c.bumpLocked()
	return c.n
}

// ---- same-class nesting: unordered vs declared ------------------------------

type node struct{ mu sync.Mutex }

func link(a, b *node) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "acquiring a second serve.node.mu instance"
	defer b.mu.Unlock()
}

// chain declares its self-nesting order, so parent-then-child is sanctioned.
type chain struct {
	//dkip:locks-after serve.chain.mu
	mu   sync.Mutex
	next *chain
}

func (c *chain) walk() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.next != nil {
		c.next.mu.Lock()
		c.next.mu.Unlock()
	}
}

// ---- declared edge violated by an observed reverse acquisition -------------

type planner struct{ mu sync.Mutex }

// executor documents that its lock nests inside the planner's; acquiring
// them in the reverse order closes a cycle against the declared edge.
type executor struct {
	//dkip:locks-after serve.planner.mu
	mu sync.Mutex
}

func replan(p *planner, e *executor) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p.mu.Lock() // want "lock-order cycle: serve.planner.mu is acquired while holding serve.executor.mu"
	p.mu.Unlock()
}

func plan(p *planner, e *executor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e.mu.Lock() // the declared direction: clean
	e.mu.Unlock()
}

// ---- mutex value-copies -----------------------------------------------------

type latched struct {
	mu  sync.Mutex
	val int
}

func (l latched) snapshot() int { // want "receiver of snapshot copies"
	return l.val
}

func (l *latched) read() int { return l.val }

func merge(a latched, b *latched) { // want "parameter of merge copies"
	_ = a
	_ = b
}

func clone(l *latched) int {
	cp := *l // want "assignment copies"
	return cp.val
}

func sum(ls []latched) int {
	t := 0
	for _, l := range ls { // want "range copies"
		t += l.val
	}
	return t
}

// sumByIndex is the corrected form: no element copy.
func sumByIndex(ls []latched) int {
	t := 0
	for i := range ls {
		t += ls[i].val
	}
	return t
}
