// Package serve seeds wirecheck violations: func-typed struct fields
// reachable from the wire codec without a json:"-" tag (the PR 3
// NewPredictor bug), plus the tagged and unexported forms that pass.
package serve

import (
	"encoding/json"
	"io"
)

// Config rides inside a Spec; its constructor hook must not travel.
type Config struct {
	Width   int        `json:"width"`
	NewUnit func() int `json:"new_unit"` // want "func-typed field NewUnit is reachable from the serve wire codec"
	Tagged  func() int `json:"-"`
	hidden  func() int //lint:ignore U1000 unexported fields never travel
}

// Spec is the wire form: the codec reaches Config through the pointer.
type Spec struct {
	Arch string  `json:"arch"`
	Cfg  *Config `json:"cfg,omitempty"`
}

// Response nests specs in a slice, and carries a bare callback of its own.
type Response struct {
	Specs  []Spec       `json:"specs"`
	OnDone func() error // want "func-typed field OnDone is reachable from the serve wire codec"
}

func Encode(w io.Writer, r Response) error {
	return json.NewEncoder(w).Encode(r)
}

func Decode(data []byte) (Spec, error) {
	var s Spec
	err := json.Unmarshal(data, &s)
	return s, err
}

// Local is never handed to the codec: its func field is fine.
type Local struct {
	Hook func() int
}

func Use(l Local) int { return l.Hook() }
