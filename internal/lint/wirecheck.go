package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// WireCheck guards the serve wire protocol against the PR 3 NewPredictor
// bug: a struct field of function type that is reachable from a value the
// wire codec marshals or unmarshals must carry a `json:"-"` tag. Without
// it, encoding/json either fails at runtime (encode) or silently produces
// a spec that simulates a different machine than the client asked for.
var WireCheck = &Analyzer{
	Name: "wirecheck",
	Doc:  "func-typed struct fields reachable from the serve wire codec must be json:\"-\"",
	New:  func() Instance { return &wireCheck{seen: make(map[types.Type]bool)} },
}

type wireCheck struct {
	seen map[types.Type]bool
	pend []pending
}

type pending struct {
	fld *types.Var
	msg string
}

func (w *wireCheck) Package(pass *Pass) {
	if pkgBase(pass.Pkg.Path()) != "serve" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isWireCodecCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				tv, ok := pass.Info.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				w.walk(tv.Type)
			}
			return true
		})
	}
}

// isWireCodecCall matches the encoding/json entry points the serve wire
// protocol uses: Marshal/MarshalIndent/Unmarshal and the streaming
// Encoder.Encode / Decoder.Decode.
func isWireCodecCall(info *types.Info, call *ast.CallExpr) bool {
	return isPkgFunc(info, call, "encoding/json", "Marshal", "MarshalIndent", "Unmarshal") ||
		isMethod(info, call, "encoding/json", "Encoder", "Encode") ||
		isMethod(info, call, "encoding/json", "Decoder", "Decode")
}

// walk visits the type graph reachable from t the way encoding/json would:
// through pointers, slices, arrays, maps, and exported struct fields.
// Func-typed fields without json:"-" are recorded for Finish.
func (w *wireCheck) walk(t types.Type) {
	if t == nil || w.seen[t] {
		return
	}
	w.seen[t] = true
	switch u := t.(type) {
	case *types.Pointer:
		w.walk(u.Elem())
	case *types.Slice:
		w.walk(u.Elem())
	case *types.Array:
		w.walk(u.Elem())
	case *types.Map:
		w.walk(u.Elem())
	case *types.Named:
		// Only descend into module types: stdlib structs come from export
		// data (no useful positions) and cannot carry our configs.
		if obj := u.Obj(); obj.Pkg() != nil && !isModulePath(obj.Pkg().Path()) {
			return
		}
		w.walk(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			fld := u.Field(i)
			if !fld.Exported() && !fld.Embedded() {
				continue // unexported fields never travel
			}
			tag := reflect.StructTag(u.Tag(i)).Get("json")
			name, _, _ := strings.Cut(tag, ",")
			if name == "-" {
				continue // excluded from the wire: stop here
			}
			if isFuncType(fld.Type()) {
				w.pend = append(w.pend, pending{fld, "func-typed field " + fld.Name() + " is reachable from the serve wire codec: tag it json:\"-\" or it rides the wire"})
				continue
			}
			w.walk(fld.Type())
		}
	}
}

func isFuncType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

func (w *wireCheck) Finish(report Reporter) {
	sort.Slice(w.pend, func(i, j int) bool { return w.pend[i].fld.Pos() < w.pend[j].fld.Pos() })
	for _, p := range w.pend {
		report(p.fld.Pos(), "%s", p.msg)
	}
}
