// Package mem models the memory hierarchy of the paper: set-associative LRU
// caches in front of a fixed-latency main memory.
//
// The hierarchy reproduces the six configurations of Table 1 (L1-2 through
// MEM-1000) and the L2 size sweep of Figures 11/12 (64KB–4MB). Access returns
// the latency a load observes and updates cache state; that is the only
// interface the processor models need.
package mem

import "fmt"

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	name      string
	sizeBytes int
	lineBytes int
	assoc     int
	numSets   int
	setShift  uint // log2(lineBytes)
	setMask   uint64
	tagShift  uint // log2(numSets): line-number bits consumed by the index

	// The per-way state is stored flat, indexed set*assoc+way: one
	// allocation per array and contiguous scans within a set, instead of
	// a pointer dereference per set. tags holds the line tag; lru holds a
	// per-set logical clock (larger = more recently used).
	tags  []uint64
	valid []bool
	lru   []uint64
	clock uint64

	// Stats.
	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache. size and line are in bytes; assoc is the number of
// ways. size must be a multiple of line*assoc and all parameters powers of
// two (the usual hardware constraint); NewCache panics otherwise, since a bad
// cache geometry is a programming error in an experiment definition.
func NewCache(name string, size, line, assoc int) *Cache {
	if size <= 0 || line <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("mem: cache %q: non-positive geometry (size=%d line=%d assoc=%d)", name, size, line, assoc))
	}
	if size%(line*assoc) != 0 {
		panic(fmt.Sprintf("mem: cache %q: size %d not divisible by line*assoc %d", name, size, line*assoc))
	}
	if !powerOfTwo(size) || !powerOfTwo(line) || !powerOfTwo(assoc) {
		panic(fmt.Sprintf("mem: cache %q: geometry must be powers of two", name))
	}
	sets := size / (line * assoc)
	c := &Cache{
		name:      name,
		sizeBytes: size,
		lineBytes: line,
		assoc:     assoc,
		numSets:   sets,
		setShift:  uint(log2(line)),
		setMask:   uint64(sets - 1),
		tagShift:  uint(log2(sets)),
	}
	c.tags = make([]uint64, sets*assoc)
	c.valid = make([]bool, sets*assoc)
	c.lru = make([]uint64, sets*assoc)
	return c
}

func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// Name returns the cache's configured name (e.g. "L1D").
func (c *Cache) Name() string { return c.name }

// Size returns the capacity in bytes.
func (c *Cache) Size() int { return c.sizeBytes }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.lineBytes }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.numSets }

// index returns the first flat way slot of addr's set and its tag. The way
// group is c.tags[base : base+c.assoc] (same for valid and lru).
func (c *Cache) index(addr uint64) (base int, tag uint64) {
	line := addr >> c.setShift
	return int(line&c.setMask) * c.assoc, line >> c.tagShift
}

// Lookup reports whether addr hits without modifying any state (no LRU
// update, no fill, no stats). The D-KIP's Analyze stage uses this to model
// the L2 tag probe that classifies a load as short- or long-latency.
//
//dkip:hotpath
func (c *Cache) Lookup(addr uint64) bool {
	base, tag := c.index(addr)
	for w := base; w < base+c.assoc; w++ {
		if c.valid[w] && c.tags[w] == tag {
			return true
		}
	}
	return false
}

// Access performs a demand access: on a hit the line's recency is refreshed;
// on a miss the LRU way is replaced. It returns whether the access hit.
//
//dkip:hotpath
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.clock++
	base, tag := c.index(addr)
	for w := base; w < base+c.assoc; w++ {
		if c.valid[w] && c.tags[w] == tag {
			c.lru[w] = c.clock
			return true
		}
	}
	c.Misses++
	// Fill: choose an invalid way, else the least recently used.
	victim := base
	var best uint64 = ^uint64(0)
	for w := base; w < base+c.assoc; w++ {
		if !c.valid[w] {
			victim = w
			break
		}
		if c.lru[w] < best {
			best = c.lru[w]
			victim = w
		}
	}
	c.valid[victim] = true
	c.tags[victim] = tag
	c.lru[victim] = c.clock
	return false
}

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.clock = 0
	c.Accesses = 0
	c.Misses = 0
}
