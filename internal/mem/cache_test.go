package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache("t", 4096, 64, 2)
	if c.Access(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access to same line should hit")
	}
	if !c.Access(0x1004) {
		t.Error("access within the same line should hit")
	}
	if c.Access(0x1040) {
		t.Error("next line should miss")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("accesses=%d misses=%d, want 4/2", c.Accesses, c.Misses)
	}
	if mr := c.MissRate(); mr != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", mr)
	}
}

func TestCacheGeometry(t *testing.T) {
	c := NewCache("t", 8192, 64, 4)
	if c.Sets() != 32 || c.Assoc() != 4 || c.LineSize() != 64 || c.Size() != 8192 {
		t.Errorf("geometry: sets=%d assoc=%d line=%d size=%d", c.Sets(), c.Assoc(), c.LineSize(), c.Size())
	}
	if c.Name() != "t" {
		t.Errorf("name = %q", c.Name())
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	cases := [][3]int{
		{0, 64, 2},    // zero size
		{4096, 0, 2},  // zero line
		{4096, 64, 0}, // zero assoc
		{4000, 64, 2}, // not divisible
		{4096, 48, 2}, // non power of two line
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%v) should panic", c)
				}
			}()
			NewCache("bad", c[0], c[1], c[2])
		}()
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-conflict set: 2-way, addresses mapping to the same set.
	c := NewCache("t", 2*64*4, 64, 2) // 4 sets, 2 ways
	setStride := uint64(4 * 64)       // same set every 4 lines
	a, b, d := uint64(0), setStride, 2*setStride

	c.Access(a) // miss, fill
	c.Access(b) // miss, fill — set now holds {a,b}
	c.Access(a) // hit, refreshes a — b is now LRU
	c.Access(d) // miss, evicts b
	if !c.Access(a) {
		t.Error("a should survive (recently used)")
	}
	if c.Access(b) {
		t.Error("b should have been evicted as LRU")
	}
}

func TestCacheLookupNonDestructive(t *testing.T) {
	c := NewCache("t", 4096, 64, 2)
	if c.Lookup(0x40) {
		t.Error("lookup of absent line should be false")
	}
	if c.Accesses != 0 {
		t.Error("Lookup must not count as an access")
	}
	c.Access(0x40)
	if !c.Lookup(0x40) {
		t.Error("lookup of resident line should be true")
	}
	if c.Accesses != 1 {
		t.Error("Lookup must not count as an access")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache("t", 4096, 64, 2)
	c.Access(0x40)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("reset should clear stats")
	}
	if c.Lookup(0x40) {
		t.Error("reset should clear contents")
	}
}

// TestCacheAccessThenHit is the fundamental cache property: an access makes
// the line resident, so an immediate repeat hits.
func TestCacheAccessThenHit(t *testing.T) {
	c := NewCache("t", 32<<10, 64, 2)
	err := quick.Check(func(addr uint64) bool {
		c.Access(addr)
		return c.Access(addr)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

// TestCacheCapacityProperty: touching exactly as many distinct lines as the
// cache holds (in one pass, addresses chosen set-uniformly) must not exceed
// the capacity in misses on a second identical pass.
func TestCacheResidencyAfterSequentialFill(t *testing.T) {
	c := NewCache("t", 8192, 64, 2)
	lines := c.Size() / c.LineSize()
	for i := 0; i < lines; i++ {
		c.Access(uint64(i * 64))
	}
	c.Accesses, c.Misses = 0, 0
	for i := 0; i < lines; i++ {
		c.Access(uint64(i * 64))
	}
	if c.Misses != 0 {
		t.Errorf("sequential refill missed %d times; LRU should retain a full sequential set", c.Misses)
	}
}
