package mem

import "fmt"

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

// Hierarchy levels.
const (
	// LevelL1 means the access hit in the first-level cache.
	LevelL1 Level = iota
	// LevelL2 means the access missed L1 and hit the second-level cache.
	LevelL2
	// LevelMemory means the access went to main memory.
	LevelMemory
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMemory:
		return "MEM"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// Config describes a memory hierarchy, mirroring Table 1 of the paper.
// A zero L1Size or L2Size means "infinite" at that level: every access hits
// there (used for the perfect-cache limit configurations).
type Config struct {
	// Name labels the configuration in tables (e.g. "MEM-400").
	Name string
	// L1Size is the L1 capacity in bytes; 0 means a perfect (infinite) L1.
	L1Size int
	// L1Latency is the L1 hit latency in cycles.
	L1Latency int
	// L2Size is the L2 capacity in bytes; 0 with L2Latency>0 means a
	// perfect L2; L2Latency==0 means there is no L2 (L1 misses go to
	// memory).
	L2Size int
	// L2Latency is the L2 hit latency in cycles (0 = no L2 level).
	L2Latency int
	// MemLatency is the main-memory access latency in cycles (0 = no
	// misses escape the last cache level, i.e. that level is perfect).
	MemLatency int
	// LineSize is the cache line size in bytes; defaults to 64.
	LineSize int
	// L1Assoc and L2Assoc default to 2 and 8 respectively.
	L1Assoc, L2Assoc int
	// PrefetchDegree enables a next-N-line prefetcher at the L2: every
	// demand access that reaches main memory also fills the following
	// PrefetchDegree lines into the L2. Zero disables (the paper's
	// machines have no prefetcher). Prefetch fills are modeled as free in
	// time — an optimistic prefetcher, which makes the comparison against
	// the D-KIP conservative.
	PrefetchDegree int
}

// Table1Configs returns the six memory subsystems of Table 1, used for the
// memory-wall limit study (Figures 1 and 2).
func Table1Configs() []Config {
	return []Config{
		{Name: "L1-2", L1Size: 0, L1Latency: 2},
		{Name: "L2-11", L1Size: 32 << 10, L1Latency: 2, L2Size: 0, L2Latency: 11},
		{Name: "L2-21", L1Size: 32 << 10, L1Latency: 2, L2Size: 0, L2Latency: 21},
		{Name: "MEM-100", L1Size: 32 << 10, L1Latency: 2, L2Size: 512 << 10, L2Latency: 11, MemLatency: 100},
		{Name: "MEM-400", L1Size: 32 << 10, L1Latency: 2, L2Size: 512 << 10, L2Latency: 11, MemLatency: 400},
		{Name: "MEM-1000", L1Size: 32 << 10, L1Latency: 2, L2Size: 512 << 10, L2Latency: 11, MemLatency: 1000},
	}
}

// DefaultConfig returns the paper's default memory subsystem (Table 2/3):
// 32KB L1 with 2-cycle hits, 512KB L2 with 11-cycle hits, 400-cycle memory.
func DefaultConfig() Config {
	return Config{
		Name:       "MEM-400",
		L1Size:     32 << 10,
		L1Latency:  2,
		L2Size:     512 << 10,
		L2Latency:  11,
		MemLatency: 400,
	}
}

// WithL2Size returns a copy of c with the L2 capacity replaced, renamed to
// reflect the new size. Used by the cache sweep of Figures 11/12.
func (c Config) WithL2Size(bytes int) Config {
	c.L2Size = bytes
	c.Name = fmt.Sprintf("L2-%dKB", bytes>>10)
	return c
}

func (c Config) withDefaults() Config {
	if c.LineSize == 0 {
		c.LineSize = 64
	}
	if c.L1Assoc == 0 {
		c.L1Assoc = 2
	}
	if c.L2Assoc == 0 {
		c.L2Assoc = 8
	}
	return c
}

// WithDefaults returns the configuration with zero geometry fields (line
// size, associativities) replaced by their defaults. The Hierarchy applies it
// implicitly; internal/sim applies it before hashing so equivalent
// hierarchies memoize as the same machine.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// Validate reports an error for nonsensical configurations.
func (c Config) Validate() error {
	if c.L1Latency <= 0 {
		return fmt.Errorf("mem: config %q: L1 latency must be positive", c.Name)
	}
	if c.L2Latency < 0 || c.MemLatency < 0 {
		return fmt.Errorf("mem: config %q: negative latency", c.Name)
	}
	if c.MemLatency > 0 && c.L2Latency == 0 && c.L1Size == 0 {
		return fmt.Errorf("mem: config %q: perfect L1 cannot miss to memory", c.Name)
	}
	return nil
}

// Hierarchy simulates the cache hierarchy. It is not safe for concurrent use;
// each simulated processor owns one.
type Hierarchy struct {
	cfg Config
	l1  *Cache // nil when perfect
	l2  *Cache // nil when absent or perfect

	// Stats per satisfaction level.
	Count [3]uint64
	// Prefetches counts lines the next-line prefetcher filled.
	Prefetches uint64
}

// NewHierarchy builds the hierarchy for a configuration. It panics on an
// invalid configuration (experiment definitions are code, not user input).
func NewHierarchy(cfg Config) *Hierarchy {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{cfg: cfg}
	if cfg.L1Size > 0 {
		h.l1 = NewCache("L1", cfg.L1Size, cfg.LineSize, cfg.L1Assoc)
	}
	if cfg.L2Latency > 0 && cfg.L2Size > 0 {
		h.l2 = NewCache("L2", cfg.L2Size, cfg.LineSize, cfg.L2Assoc)
	}
	return h
}

// Config returns the configuration the hierarchy was built from (with
// defaults applied).
func (h *Hierarchy) Config() Config { return h.cfg }

// Access performs a demand access (load or store fill) and returns the
// latency observed and the level that satisfied it.
//
//dkip:hotpath
func (h *Hierarchy) Access(addr uint64) (latency int, level Level) {
	// Perfect L1.
	if h.l1 == nil {
		h.Count[LevelL1]++
		return h.cfg.L1Latency, LevelL1
	}
	if h.l1.Access(addr) {
		h.Count[LevelL1]++
		return h.cfg.L1Latency, LevelL1
	}
	// L1 miss.
	if h.cfg.L2Latency > 0 {
		if h.l2 == nil { // perfect L2
			h.Count[LevelL2]++
			return h.cfg.L2Latency, LevelL2
		}
		if h.l2.Access(addr) {
			h.Count[LevelL2]++
			return h.cfg.L2Latency, LevelL2
		}
		if h.cfg.MemLatency == 0 {
			// Last level declared perfect beyond L2 — treat L2 miss
			// as L2 fill at memoryless cost (not used by Table 1
			// configs, but keeps the model total).
			h.Count[LevelL2]++
			return h.cfg.L2Latency, LevelL2
		}
		h.Count[LevelMemory]++
		h.prefetch(addr)
		return h.cfg.MemLatency, LevelMemory
	}
	// No L2: L1 miss goes to memory (or is perfect if no memory declared).
	if h.cfg.MemLatency == 0 {
		h.Count[LevelL1]++
		return h.cfg.L1Latency, LevelL1
	}
	h.Count[LevelMemory]++
	return h.cfg.MemLatency, LevelMemory
}

// prefetch fills the next PrefetchDegree lines after a demand miss into the
// L2 (next-N-line prefetching). Lines already resident are refreshed, which
// is harmless; new lines may evict — prefetch pollution is modeled.
func (h *Hierarchy) prefetch(addr uint64) {
	if h.cfg.PrefetchDegree <= 0 || h.l2 == nil {
		return
	}
	line := uint64(h.cfg.LineSize)
	base := addr &^ (line - 1)
	for i := 1; i <= h.cfg.PrefetchDegree; i++ {
		next := base + uint64(i)*line
		if !h.l2.Lookup(next) {
			h.l2.Access(next)
			h.Prefetches++
		}
	}
}

// ProbeLongLatency reports, without disturbing cache or statistics state,
// whether a demand access to addr would go to main memory. The D-KIP Analyze
// stage uses this as the L2 tag-array check that classifies loads.
//
//dkip:hotpath
func (h *Hierarchy) ProbeLongLatency(addr uint64) bool {
	if h.cfg.MemLatency == 0 {
		return false
	}
	if h.l1 != nil && h.l1.Lookup(addr) {
		return false
	}
	if h.l1 == nil {
		return false
	}
	if h.cfg.L2Latency > 0 {
		if h.l2 == nil {
			return false
		}
		return !h.l2.Lookup(addr)
	}
	return true
}

// L1 returns the L1 cache, or nil when the level is perfect.
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 returns the L2 cache, or nil when absent/perfect.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Accesses returns the total number of demand accesses.
func (h *Hierarchy) Accesses() uint64 {
	return h.Count[LevelL1] + h.Count[LevelL2] + h.Count[LevelMemory]
}

// MemoryFraction returns the fraction of accesses that reached main memory.
func (h *Hierarchy) MemoryFraction() float64 {
	total := h.Accesses()
	if total == 0 {
		return 0
	}
	return float64(h.Count[LevelMemory]) / float64(total)
}

// Reset clears cache contents and statistics.
func (h *Hierarchy) Reset() {
	if h.l1 != nil {
		h.l1.Reset()
	}
	if h.l2 != nil {
		h.l2.Reset()
	}
	h.Count = [3]uint64{}
}

// ResetStats clears access statistics while keeping cache contents — used
// after prewarming.
func (h *Hierarchy) ResetStats() {
	if h.l1 != nil {
		h.l1.Accesses, h.l1.Misses = 0, 0
	}
	if h.l2 != nil {
		h.l2.Accesses, h.l2.Misses = 0, 0
	}
	h.Count = [3]uint64{}
}

// Warm walks every cache line of the given [base, base+size) ranges through
// the hierarchy and then clears statistics, leaving the caches in the steady
// state a long-running program would have established. Ranges are walked in
// order, so later ranges win the capacity contest, as a program's hottest
// data would.
func (h *Hierarchy) Warm(ranges [][2]uint64) {
	if h.l1 == nil {
		h.ResetStats() // perfect L1: no cache state to establish
		return
	}
	line := uint64(h.cfg.LineSize)
	// A sequential walk of unique lines leaves only the tail of each range
	// resident: any window of sets×assoc consecutive lines touches every
	// set exactly assoc times, fully displacing whatever was there, with
	// LRU order equal to walk order. Walking just the last max(L1,L2)
	// bytes therefore produces the identical final state, so a multi-MB
	// footprint warms in O(cache size) instead of O(footprint). The
	// shortcut is off when the prefetcher is on: prefetch fills follow a
	// miss cadence whose phase depends on the walk's start line, so
	// truncation could perturb per-set LRU order.
	keep := uint64(0)
	if h.cfg.PrefetchDegree == 0 {
		keep = uint64(h.l1.Size())
		if h.l2 != nil && uint64(h.l2.Size()) > keep {
			keep = uint64(h.l2.Size())
		}
	}
	for _, r := range ranges {
		base, size := r[0], r[1]
		if keep > 0 && size > keep {
			// Skip whole lines only: the truncated walk must visit a
			// suffix of exactly the addresses the full walk would, or a
			// size that is not a line multiple would phase-shift every
			// remaining access onto different lines.
			cut := (size - keep) / line * line
			base += cut
			size -= cut
		}
		for a := base; a < base+size; a += line {
			h.Access(a)
		}
	}
	h.ResetStats()
}
