package mem

import (
	"testing"
)

func TestTable1Configs(t *testing.T) {
	cfgs := Table1Configs()
	if len(cfgs) != 6 {
		t.Fatalf("Table 1 has 6 configurations, got %d", len(cfgs))
	}
	wantNames := []string{"L1-2", "L2-11", "L2-21", "MEM-100", "MEM-400", "MEM-1000"}
	for i, c := range cfgs {
		if c.Name != wantNames[i] {
			t.Errorf("config %d = %q, want %q", i, c.Name, wantNames[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("config %s invalid: %v", c.Name, err)
		}
	}
}

func TestPerfectL1(t *testing.T) {
	h := NewHierarchy(Table1Configs()[0]) // L1-2
	for addr := uint64(0); addr < 1<<26; addr += 77777 {
		lat, lvl := h.Access(addr)
		if lat != 2 || lvl != LevelL1 {
			t.Fatalf("perfect L1 returned lat=%d lvl=%v", lat, lvl)
		}
	}
}

func TestPerfectL2(t *testing.T) {
	h := NewHierarchy(Table1Configs()[1]) // L2-11: 32KB L1, perfect L2
	sawL2 := false
	for addr := uint64(0); addr < 1<<22; addr += 4096 {
		lat, lvl := h.Access(addr)
		switch lvl {
		case LevelL1:
			if lat != 2 {
				t.Fatalf("L1 lat %d", lat)
			}
		case LevelL2:
			sawL2 = true
			if lat != 11 {
				t.Fatalf("L2 lat %d", lat)
			}
		default:
			t.Fatalf("perfect-L2 config reached %v", lvl)
		}
	}
	if !sawL2 {
		t.Error("expected some L1 misses")
	}
}

func TestMemoryLatencies(t *testing.T) {
	for _, cfg := range Table1Configs()[3:] {
		h := NewHierarchy(cfg)
		// Distinct lines far apart: cold misses go to memory.
		lat, lvl := h.Access(0x100000)
		if lvl != LevelMemory || lat != cfg.MemLatency {
			t.Errorf("%s: cold access lat=%d lvl=%v, want %d/MEM", cfg.Name, lat, lvl, cfg.MemLatency)
		}
		// Immediately after, the same line is an L1 hit.
		lat, lvl = h.Access(0x100000)
		if lvl != LevelL1 || lat != cfg.L1Latency {
			t.Errorf("%s: repeat access lat=%d lvl=%v", cfg.Name, lat, lvl)
		}
	}
}

func TestProbeLongLatency(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	addr := uint64(0x400000)
	if !h.ProbeLongLatency(addr) {
		t.Error("cold line should probe long-latency")
	}
	h.Access(addr)
	if h.ProbeLongLatency(addr) {
		t.Error("resident line should not probe long-latency")
	}
	// Probing must not disturb statistics.
	accesses := h.Accesses()
	h.ProbeLongLatency(addr)
	if h.Accesses() != accesses {
		t.Error("probe counted as an access")
	}
	// Perfect-L1 configs never probe long.
	p := NewHierarchy(Table1Configs()[0])
	if p.ProbeLongLatency(addr) {
		t.Error("perfect L1 cannot be long-latency")
	}
}

func TestWarmEstablishesResidency(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Warm([][2]uint64{{0x10000, 64 << 10}}) // 64KB region fits the 512KB L2
	if h.Accesses() != 0 {
		t.Error("Warm should clear statistics")
	}
	memBefore := h.Count[LevelMemory]
	for a := uint64(0x10000); a < 0x10000+(64<<10); a += 64 {
		h.Access(a)
	}
	if h.Count[LevelMemory] != memBefore {
		t.Errorf("warmed region missed to memory %d times", h.Count[LevelMemory]-memBefore)
	}
}

func TestWithL2Size(t *testing.T) {
	c := DefaultConfig().WithL2Size(4 << 20)
	if c.L2Size != 4<<20 {
		t.Errorf("L2 size = %d", c.L2Size)
	}
	if c.Name != "L2-4096KB" {
		t.Errorf("name = %q", c.Name)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestHierarchyStats(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Access(0x1000)
	h.Access(0x1000)
	if h.Accesses() != 2 {
		t.Errorf("accesses = %d", h.Accesses())
	}
	if h.MemoryFraction() != 0.5 {
		t.Errorf("memory fraction = %v", h.MemoryFraction())
	}
	h.ResetStats()
	if h.Accesses() != 0 {
		t.Error("ResetStats should zero counters")
	}
	if _, lvl := h.Access(0x1000); lvl != LevelL1 {
		t.Error("ResetStats must keep contents")
	}
	h.Reset()
	if _, lvl := h.Access(0x1000); lvl != LevelMemory {
		t.Error("Reset must clear contents")
	}
}

func TestInvalidConfig(t *testing.T) {
	bad := Config{Name: "bad"} // zero L1 latency
	if err := bad.Validate(); err == nil {
		t.Error("zero L1 latency should be invalid")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewHierarchy with invalid config should panic")
			}
		}()
		NewHierarchy(bad)
	}()
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMemory.String() != "MEM" {
		t.Error("level names wrong")
	}
	if Level(9).String() == "" {
		t.Error("unknown level should still render")
	}
}

func TestPrefetcherFillsNextLines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 2
	h := NewHierarchy(cfg)
	_, lvl := h.Access(0x100000) // cold: goes to memory, prefetches +1,+2
	if lvl != LevelMemory {
		t.Fatalf("cold access level %v", lvl)
	}
	if h.Prefetches != 2 {
		t.Fatalf("prefetches = %d, want 2", h.Prefetches)
	}
	// The next two lines now hit the L2 (they were never in L1).
	for i := 1; i <= 2; i++ {
		if _, lvl := h.Access(0x100000 + uint64(i*64)); lvl != LevelL2 {
			t.Errorf("line +%d at level %v, want L2", i, lvl)
		}
	}
	// The line after the prefetch window still misses.
	if _, lvl := h.Access(0x100000 + 3*64); lvl != LevelMemory {
		t.Errorf("line +3 at level %v, want MEM", lvl)
	}
}

func TestPrefetcherOffByDefault(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Access(0x200000)
	if h.Prefetches != 0 {
		t.Errorf("default config issued %d prefetches", h.Prefetches)
	}
	if _, lvl := h.Access(0x200000 + 64); lvl != LevelMemory {
		t.Errorf("next line at %v without a prefetcher, want MEM", lvl)
	}
}

func TestPrefetcherHelpsStreams(t *testing.T) {
	// Walking sequentially with a degree-4 prefetcher, most line
	// boundaries hit the L2 instead of memory.
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 4
	h := NewHierarchy(cfg)
	var memCount int
	for a := uint64(0x300000); a < 0x300000+1<<20; a += 8 {
		if _, lvl := h.Access(a); lvl == LevelMemory {
			memCount++
		}
	}
	lines := (1 << 20) / 64
	if memCount > lines/3 {
		t.Errorf("%d of %d lines missed to memory despite prefetching", memCount, lines)
	}
}

// TestWarmShortcutMatchesFullWalk pins the Warm truncation's invariance
// claim: for ranges much larger than the caches — including sizes that are
// not line multiples, which exercise the whole-line cut — the shortcut must
// leave exactly the cache state a full sequential walk would.
func TestWarmShortcutMatchesFullWalk(t *testing.T) {
	// The last range wins the capacity contest, so it is the one whose
	// truncation the test observes; its size is deliberately not a line
	// multiple (the cut must stay line-aligned or every remaining access
	// phase-shifts onto different lines).
	ranges := [][2]uint64{
		{0x7000_0000, 16 << 10},
		{0x9000_0040, 1<<20 + 192},
		{0x1000_0000, 4<<20 + 32},
	}
	warmed := NewHierarchy(DefaultConfig())
	warmed.Warm(ranges)

	full := NewHierarchy(DefaultConfig())
	line := uint64(full.Config().LineSize)
	for _, r := range ranges {
		for a := r[0]; a < r[0]+r[1]; a += line {
			full.Access(a)
		}
	}
	full.ResetStats()

	for _, r := range ranges {
		for a := r[0]; a < r[0]+r[1]; a += line {
			for _, c := range []struct {
				name      string
				got, want *Cache
			}{{"L1", warmed.L1(), full.L1()}, {"L2", warmed.L2(), full.L2()}} {
				if c.got.Lookup(a) != c.want.Lookup(a) {
					t.Fatalf("%s residency differs at %#x: shortcut %v, full walk %v",
						c.name, a, c.got.Lookup(a), c.want.Lookup(a))
				}
			}
		}
	}
}
