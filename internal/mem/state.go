package mem

import "fmt"

// CacheState is a deep snapshot of a cache's architectural contents: tags,
// valid bits, and LRU clocks, but not access statistics. It feeds the
// checkpoint codec in internal/ckpt, so every field is an exact integer —
// a restored cache replays byte-for-byte identically to one that was warmed
// in place.
type CacheState struct {
	// Geometry echo, validated on restore: a snapshot only fits a cache
	// with the same shape.
	Size  int
	Line  int
	Assoc int

	Clock uint64
	Tags  []uint64
	Valid []bool
	LRU   []uint64
}

// State returns a deep snapshot of the cache's contents.
func (c *Cache) State() *CacheState {
	st := &CacheState{
		Size:  c.sizeBytes,
		Line:  c.lineBytes,
		Assoc: c.assoc,
		Clock: c.clock,
		Tags:  make([]uint64, len(c.tags)),
		Valid: make([]bool, len(c.valid)),
		LRU:   make([]uint64, len(c.lru)),
	}
	copy(st.Tags, c.tags)
	copy(st.Valid, c.valid)
	copy(st.LRU, c.lru)
	return st
}

// SetState restores a snapshot taken by State. The snapshot must come from a
// cache with identical geometry; statistics are left untouched.
func (c *Cache) SetState(st *CacheState) error {
	if st == nil {
		return fmt.Errorf("mem: cache %q: nil state", c.name)
	}
	if st.Size != c.sizeBytes || st.Line != c.lineBytes || st.Assoc != c.assoc {
		return fmt.Errorf("mem: cache %q: state geometry %d/%d/%d does not match cache %d/%d/%d",
			c.name, st.Size, st.Line, st.Assoc, c.sizeBytes, c.lineBytes, c.assoc)
	}
	if len(st.Tags) != len(c.tags) || len(st.Valid) != len(c.valid) || len(st.LRU) != len(c.lru) {
		return fmt.Errorf("mem: cache %q: state arrays sized %d/%d/%d, want %d",
			c.name, len(st.Tags), len(st.Valid), len(st.LRU), len(c.tags))
	}
	copy(c.tags, st.Tags)
	copy(c.valid, st.Valid)
	copy(c.lru, st.LRU)
	c.clock = st.Clock
	return nil
}

// HierarchyState is a deep snapshot of a hierarchy's cache contents. A nil
// level records that the hierarchy has no cache at that level (perfect or
// absent), which restore validates.
type HierarchyState struct {
	L1 *CacheState
	L2 *CacheState
}

// State returns a deep snapshot of the hierarchy's cache contents.
func (h *Hierarchy) State() HierarchyState {
	var st HierarchyState
	if h.l1 != nil {
		st.L1 = h.l1.State()
	}
	if h.l2 != nil {
		st.L2 = h.l2.State()
	}
	return st
}

// SetState restores a snapshot taken by State into a hierarchy of identical
// configuration. Statistics are left untouched.
func (h *Hierarchy) SetState(st HierarchyState) error {
	if (h.l1 == nil) != (st.L1 == nil) || (h.l2 == nil) != (st.L2 == nil) {
		return fmt.Errorf("mem: hierarchy %q: state levels (L1=%v,L2=%v) do not match hierarchy (L1=%v,L2=%v)",
			h.cfg.Name, st.L1 != nil, st.L2 != nil, h.l1 != nil, h.l2 != nil)
	}
	if h.l1 != nil {
		if err := h.l1.SetState(st.L1); err != nil {
			return err
		}
	}
	if h.l2 != nil {
		if err := h.l2.SetState(st.L2); err != nil {
			return err
		}
	}
	return nil
}
