package ooo

import (
	"testing"

	"dkip/internal/engine"
)

// The advanceCycle tests pin the idle-skip contract the data-structure
// rewrite must preserve: time advances by exactly one cycle when work
// happened or something is due immediately, jumps to the earliest future
// wake-up source when the machine is idle, and panics loudly on a genuine
// deadlock. The subtle case is a mix of candidates: one already due must pin
// next to the current cycle even when another candidate is far in the
// future, regardless of the order the candidates are considered in.

func advTestProcessor() *Processor {
	return New(R10K64())
}

func TestAdvanceCycleDidWork(t *testing.T) {
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = true
	p.EV.Schedule(500, 1) // must not be skipped to
	p.AdvanceCycle()
	if p.Cycle != 11 {
		t.Fatalf("cycle = %d after work, want 11", p.Cycle)
	}
}

func TestAdvanceCycleIdleSkipsToNextEvent(t *testing.T) {
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = false
	p.EV.Schedule(100, 1)
	p.AdvanceCycle()
	if p.Cycle != 100 {
		t.Fatalf("cycle = %d, want skip to 100", p.Cycle)
	}
}

func TestAdvanceCycleDueNowDoesNotSkip(t *testing.T) {
	// An event due at the very next cycle: advance by one, no skip.
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = false
	p.EV.Schedule(11, 1)
	p.AdvanceCycle()
	if p.Cycle != 11 {
		t.Fatalf("cycle = %d, want 11 (event due now)", p.Cycle)
	}
}

func TestAdvanceCycleDueCandidateOverridesFutureOne(t *testing.T) {
	// Candidate order 1: future event, then a fetch-buffer head that is
	// already consumable. The due head must win: no skip.
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = false
	p.EV.Schedule(100, 1)
	p.FQ[0] = engine.FetchEntry{Ready: 5}
	p.FQHead, p.FQLen = 0, 1
	p.AdvanceCycle()
	if p.Cycle != 11 {
		t.Fatalf("cycle = %d, want 11 (fq head already due)", p.Cycle)
	}

	// Candidate order 2: the due candidate first (the event), the future
	// one second (the fetch head). Same answer.
	p = advTestProcessor()
	p.Cycle = 10
	p.DidWork = false
	p.EV.Schedule(11, 1)
	p.FQ[0] = engine.FetchEntry{Ready: 100}
	p.FQHead, p.FQLen = 0, 1
	p.AdvanceCycle()
	if p.Cycle != 11 {
		t.Fatalf("cycle = %d, want 11 (event already due)", p.Cycle)
	}
}

func TestAdvanceCycleSkipsToEarliestCandidate(t *testing.T) {
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = false
	p.EV.Schedule(200, 1)
	p.FQ[0] = engine.FetchEntry{Ready: 60}
	p.FQHead, p.FQLen = 0, 1
	p.ResumeCycle = 40 // fetch redirect pending, not stalled
	p.AdvanceCycle()
	if p.Cycle != 40 {
		t.Fatalf("cycle = %d, want earliest candidate 40", p.Cycle)
	}
}

func TestAdvanceCycleStallWithLaterEventSkips(t *testing.T) {
	// Fetch stalled on an unresolved branch, but its resolution event is
	// pending: the skip must target the event, not panic.
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = false
	p.FetchStalled = true
	p.EV.Schedule(300, 1)
	p.AdvanceCycle()
	if p.Cycle != 300 {
		t.Fatalf("cycle = %d, want 300", p.Cycle)
	}
}

func TestAdvanceCycleDeadlockPanics(t *testing.T) {
	p := advTestProcessor()
	p.Cycle = 10
	p.DidWork = false
	p.FetchStalled = true // stalled, no events, nothing buffered: deadlock
	defer func() {
		if recover() == nil {
			t.Fatal("stall with no pending events must panic")
		}
	}()
	p.AdvanceCycle()
}
