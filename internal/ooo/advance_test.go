package ooo

import "testing"

// The advanceCycle tests pin the idle-skip contract the data-structure
// rewrite must preserve: time advances by exactly one cycle when work
// happened or something is due immediately, jumps to the earliest future
// wake-up source when the machine is idle, and panics loudly on a genuine
// deadlock. The subtle case is a mix of candidates: one already due must pin
// next to the current cycle even when another candidate is far in the
// future, regardless of the order the candidates are considered in.

func advTestProcessor() *Processor {
	return New(R10K64())
}

func TestAdvanceCycleDidWork(t *testing.T) {
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = true
	p.ev.Schedule(500, 1) // must not be skipped to
	p.advanceCycle()
	if p.cycle != 11 {
		t.Fatalf("cycle = %d after work, want 11", p.cycle)
	}
}

func TestAdvanceCycleIdleSkipsToNextEvent(t *testing.T) {
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = false
	p.ev.Schedule(100, 1)
	p.advanceCycle()
	if p.cycle != 100 {
		t.Fatalf("cycle = %d, want skip to 100", p.cycle)
	}
}

func TestAdvanceCycleDueNowDoesNotSkip(t *testing.T) {
	// An event due at the very next cycle: advance by one, no skip.
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = false
	p.ev.Schedule(11, 1)
	p.advanceCycle()
	if p.cycle != 11 {
		t.Fatalf("cycle = %d, want 11 (event due now)", p.cycle)
	}
}

func TestAdvanceCycleDueCandidateOverridesFutureOne(t *testing.T) {
	// Candidate order 1: future event, then a fetch-buffer head that is
	// already consumable. The due head must win: no skip.
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = false
	p.ev.Schedule(100, 1)
	p.fq[0] = fetchEntry{ready: 5}
	p.fqHead, p.fqLen = 0, 1
	p.advanceCycle()
	if p.cycle != 11 {
		t.Fatalf("cycle = %d, want 11 (fq head already due)", p.cycle)
	}

	// Candidate order 2: the due candidate first (the event), the future
	// one second (the fetch head). Same answer.
	p = advTestProcessor()
	p.cycle = 10
	p.didWork = false
	p.ev.Schedule(11, 1)
	p.fq[0] = fetchEntry{ready: 100}
	p.fqHead, p.fqLen = 0, 1
	p.advanceCycle()
	if p.cycle != 11 {
		t.Fatalf("cycle = %d, want 11 (event already due)", p.cycle)
	}
}

func TestAdvanceCycleSkipsToEarliestCandidate(t *testing.T) {
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = false
	p.ev.Schedule(200, 1)
	p.fq[0] = fetchEntry{ready: 60}
	p.fqHead, p.fqLen = 0, 1
	p.resumeCycle = 40 // fetch redirect pending, not stalled
	p.advanceCycle()
	if p.cycle != 40 {
		t.Fatalf("cycle = %d, want earliest candidate 40", p.cycle)
	}
}

func TestAdvanceCycleStallWithLaterEventSkips(t *testing.T) {
	// Fetch stalled on an unresolved branch, but its resolution event is
	// pending: the skip must target the event, not panic.
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = false
	p.fetchStalled = true
	p.ev.Schedule(300, 1)
	p.advanceCycle()
	if p.cycle != 300 {
		t.Fatalf("cycle = %d, want 300", p.cycle)
	}
}

func TestAdvanceCycleDeadlockPanics(t *testing.T) {
	p := advTestProcessor()
	p.cycle = 10
	p.didWork = false
	p.fetchStalled = true // stalled, no events, nothing buffered: deadlock
	defer func() {
		if recover() == nil {
			t.Fatal("stall with no pending events must panic")
		}
	}()
	p.advanceCycle()
}
