package ooo

import (
	"runtime"
	"testing"

	"dkip/internal/workload"
)

// sliqTestConfig is a KILO-style configuration (kept local: the kilo package
// imports ooo) so the SLIQ migration path — age rings, RemoveWaiting,
// re-insertion — is exercised alongside the plain R10K pipeline.
func sliqTestConfig() Config {
	return Config{
		Name:              "KILO-ALLOC",
		ROBSize:           64,
		IQSize:            72,
		LSQSize:           512,
		SLIQSize:          1024,
		SLIQTimer:         16,
		CheckpointPenalty: 8,
	}
}

// TestSteadyStateAllocationFree pins the hot loop's zero-allocation
// property: once the heaps, rings, and per-entry Consumers slices have
// reached their high-water marks, continuing the same run must not allocate
// per committed instruction. Before the de-boxed heaps this sat at ~12
// allocations per instruction (every Schedule and every Wake boxed its
// payload into an interface{}).
func TestSteadyStateAllocationFree(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		bench string
	}{
		{"R10-64-ooo", R10K64(), "mcf"},
		{"R10-64-inorder", Config{Name: "R10-IO", ROBSize: 64, IQSize: 40, LSQSize: 512, InOrder: true}, "mcf"},
		{"KILO-sliq", sliqTestConfig(), "mcf"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := workload.MustNew(c.bench)
			p := New(c.cfg)
			p.Hierarchy().Warm(g.WarmRanges())
			p.Run(g, 30_000, 30_000) // reach structural steady state
			const chunk = 10_000
			// A few throwaway chunks let per-entry Consumers slices finish
			// discovering their high-water capacities.
			for i := 0; i < 5; i++ {
				p.Run(g, 0, chunk)
			}
			avg := testing.AllocsPerRun(3, func() {
				p.Run(g, 0, chunk)
			})
			// Each Run call copies its Stats once (the returned snapshot),
			// and Consumers slices keep a stochastic straggler tail: a
			// producer outstanding for hundreds of cycles can collect a
			// record consumer count for its window slot (the SLIQ window
			// spans thousands of slots). Those doubling growths decay
			// logarithmically per slot; nothing may scale with chunk.
			if perInstr := avg / chunk; perInstr > 0.005 {
				t.Errorf("steady state allocates %.4f objects per committed instruction (%.0f per %d-instruction chunk), want ~0",
					perInstr, avg, chunk)
			}
		})
	}
}

// TestLongRunMemoryBounded guards against the dead-prefix leak the ring
// buffers fixed: the old reslice-and-append FIFOs (fifo, ageI, ageF) popped
// heads with s = s[1:] while the tail kept appending into the same backing
// array, so every wrap reallocated the array and retained the dead prefix.
// Over a multi-million-instruction run, allocated bytes must stay constant
// and the rings must settle at their occupancy high-water capacity.
func TestLongRunMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-instruction run")
	}
	g := workload.MustNew("mcf")
	p := New(sliqTestConfig())
	p.Hierarchy().Warm(g.WarmRanges())
	p.Run(g, 100_000, 100_000) // discover all high-water marks

	const instrs = 2_000_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	p.Run(g, 0, instrs)
	runtime.GC()
	runtime.ReadMemStats(&after)

	perInstr := float64(after.TotalAlloc-before.TotalAlloc) / float64(instrs)
	if perInstr > 1 {
		t.Errorf("long run allocated %.3f bytes per instruction (total %d over %d instrs), want ~0",
			perInstr, after.TotalAlloc-before.TotalAlloc, instrs)
	}
	// The age rings feed SLIQ migration once per renamed instruction; their
	// capacity must be bounded by pipeline occupancy, not run length.
	bound := p.Win.Capacity() * 2
	if c := p.ageI.Cap(); c > bound {
		t.Errorf("ageI ring grew to %d slots (window %d): capacity scales with run length", c, p.Win.Capacity())
	}
	if c := p.ageF.Cap(); c > bound {
		t.Errorf("ageF ring grew to %d slots (window %d): capacity scales with run length", c, p.Win.Capacity())
	}
}
