// Package ooo implements a cycle-level out-of-order superscalar processor in
// the style of the MIPS R10000: merged physical register file, per-cluster
// issue queues, a reorder buffer, and a load/store queue.
//
// The same engine serves three roles in the reproduction:
//
//   - the R10-64 / R10-256 / R10-768 baselines of Figure 9 and §4.2;
//   - the "resources limited only by the ROB" cores of the memory-wall limit
//     study (Figures 1–3), by setting queue sizes equal to the ROB;
//   - the KILO-1024 baseline of Figure 9, by enabling the Slow Lane
//     Instruction Queue (SLIQ) extension: waiting long-latency instructions
//     migrate out of the small issue queues into a large secondary
//     out-of-order queue, and recovery falls back to checkpoints
//     (see package kilo).
package ooo

import (
	"fmt"

	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/predictor"
)

// Config describes one processor instance.
type Config struct {
	// Name labels the configuration in reports (e.g. "R10-64").
	Name string

	// Widths; zero values default to 4 (the paper's 4-way core).
	FetchWidth, RenameWidth, IssueWidth, CommitWidth int

	// FrontEndDepth is the fetch-to-rename latency in cycles (default 5).
	FrontEndDepth int
	// RedirectPenalty is the additional penalty after a mispredicted
	// branch resolves, on top of refilling the front end (default 1).
	RedirectPenalty int

	// ROBSize bounds in-flight instructions. Required.
	ROBSize int
	// IQSize is the per-cluster issue-queue capacity (integer and FP
	// each). Zero means "as large as the ROB" — the limit-study setting
	// where only the ROB can stall the machine.
	IQSize int
	// InOrder restricts both issue queues to oldest-first issue.
	InOrder bool
	// LSQSize bounds in-flight memory operations; zero = ROBSize.
	LSQSize int
	// MemPorts is the number of cache ports (loads issued per cycle);
	// zero defaults to 2, Table 2's "2 R/W ports (global)".
	MemPorts int
	// MSHRs bounds outstanding off-chip misses (miss status holding
	// registers). Zero means unlimited — the paper's machines are sized
	// so only window structures limit memory-level parallelism, but the
	// MLP a window exposes is only realized if the memory system sustains
	// it; the "ablation-mshr" experiment quantifies that.
	MSHRs int

	// FU selects the functional-unit complement; the zero value means
	// pipeline.DefaultFUConfig (Table 2).
	FU pipeline.FUConfig

	// Mem is the memory hierarchy configuration; the zero value means
	// mem.DefaultConfig (Table 2/3: 32KB L1, 512KB L2, 400-cycle memory).
	Mem mem.Config

	// NewPredictor constructs the branch predictor; nil defaults to the
	// perceptron predictor of Table 2.
	// Function fields cannot be serialized: they are excluded from JSON
	// (the serve layer's wire format) just as the content hash skips them.
	NewPredictor func() predictor.Predictor `json:"-"`

	// SLIQ enables the Slow Lane Instruction Queue: instructions that
	// have waited in an issue queue longer than SLIQTimer cycles without
	// becoming ready migrate to a secondary out-of-order queue of
	// SLIQSize entries, freeing the primary queue. SLIQSize==0 disables.
	SLIQSize int
	// SLIQTimer is the migration age in cycles (default 16).
	SLIQTimer int
	// SLIQReinsertDelay models the slow lane's wakeup path: a woken SLIQ
	// instruction is re-dispatched through the front of the machine
	// before issuing, adding this many cycles (default 6).
	SLIQReinsertDelay int
	// CheckpointPenalty is the extra recovery cost, in cycles, when a
	// mispredicted branch resolves from the SLIQ (checkpoint restore
	// instead of rename-stack recovery). Default 8.
	CheckpointPenalty int

	// RunaheadDepth enables runahead execution (see runahead.go): while
	// an off-chip miss blocks the ROB head, the front end scans up to
	// this many future instructions and prefetches their regular loads.
	// Zero disables runahead.
	RunaheadDepth int
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.FetchWidth, 4)
	def(&c.RenameWidth, 4)
	def(&c.IssueWidth, 4)
	def(&c.CommitWidth, 4)
	def(&c.FrontEndDepth, 5)
	def(&c.RedirectPenalty, 1)
	def(&c.IQSize, c.ROBSize)
	def(&c.LSQSize, c.ROBSize)
	def(&c.MemPorts, 2)
	if c.FU == (pipeline.FUConfig{}) {
		c.FU = pipeline.DefaultFUConfig()
	}
	if c.Mem.L1Latency == 0 {
		c.Mem = mem.DefaultConfig()
	}
	if c.NewPredictor == nil {
		c.NewPredictor = func() predictor.Predictor {
			return predictor.NewPerceptron(4096, 24)
		}
	}
	if c.SLIQSize > 0 {
		def(&c.SLIQTimer, 16)
		def(&c.SLIQReinsertDelay, 6)
		def(&c.CheckpointPenalty, 8)
	}
	return c
}

// WithDefaults returns the configuration with every zero field replaced by
// its default. ooo.New applies it implicitly; internal/sim applies it before
// hashing so equivalent configurations memoize as the same machine.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ROBSize <= 0 {
		return fmt.Errorf("ooo: %s: ROBSize must be positive", c.Name)
	}
	if c.ROBSize > 1<<20 {
		return fmt.Errorf("ooo: %s: ROBSize %d unreasonably large", c.Name, c.ROBSize)
	}
	return nil
}

// R10K64 is the paper's R10-64 baseline: 64-entry ROB, 40-entry queues —
// identical to the default Cache Processor.
func R10K64() Config {
	return Config{Name: "R10-64", ROBSize: 64, IQSize: 40, LSQSize: 512}
}

// R10K256 is the paper's "futuristic" R10-256: 256-entry ROB, 160-entry
// queues.
func R10K256() Config {
	return Config{Name: "R10-256", ROBSize: 256, IQSize: 160, LSQSize: 512}
}

// R10K768 matches the R10-768 point referenced in §4.2's comparison with the
// D-KIP's SpecFP performance.
func R10K768() Config {
	return Config{Name: "R10-768", ROBSize: 768, IQSize: 512, LSQSize: 512}
}

// LimitCore returns a core whose only stall resource is an n-entry ROB, as
// used in the memory-wall study of Figures 1–3.
func LimitCore(n int, m mem.Config) Config {
	return Config{
		Name:    fmt.Sprintf("LIMIT-%d", n),
		ROBSize: n,
		// IQSize/LSQSize default to ROBSize; abundant FUs.
		FU:       pipeline.WideFUConfig(),
		Mem:      m,
		MemPorts: 4,
	}
}
