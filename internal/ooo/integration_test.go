package ooo

import (
	"testing"

	"dkip/internal/mem"
	"dkip/internal/workload"
)

// suiteIPC runs the limit core at the given window/memory over a suite and
// returns the average IPC, mirroring Figures 1 and 2.
func suiteIPC(t *testing.T, suite workload.Suite, window int, mc mem.Config) float64 {
	t.Helper()
	var sum float64
	names := workload.SuiteNames(suite)
	for _, name := range names {
		g := workload.MustNew(name)
		p := New(LimitCore(window, mc))
		p.Hierarchy().Warm(g.WarmRanges())
		sum += p.Run(g, 8000, 30000).IPC()
	}
	return sum / float64(len(names))
}

// TestFigure2Shape asserts the paper's central motivating result: on SpecFP
// with 400-cycle memory, scaling the window from 32 to 4096 recovers most of
// the lost IPC, approaching the perfect-L1 level.
func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	mem400 := mem.Table1Configs()[4]
	perfect := mem.Table1Configs()[0]

	small := suiteIPC(t, workload.SpecFP, 32, mem400)
	big := suiteIPC(t, workload.SpecFP, 4096, mem400)
	ceiling := suiteIPC(t, workload.SpecFP, 4096, perfect)

	if big < 3.5*small {
		t.Errorf("SpecFP window scaling too weak: %.3f -> %.3f", small, big)
	}
	if big < 0.80*ceiling {
		t.Errorf("SpecFP at 4K window (%.3f) should approach the perfect-L1 level (%.3f)", big, ceiling)
	}
}

// TestFigure1Shape asserts the integer counterpart: large windows help
// SpecINT much less (pointer chains and load-dependent mispredictions).
func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	mem400 := mem.Table1Configs()[4]
	perfect := mem.Table1Configs()[0]

	big := suiteIPC(t, workload.SpecINT, 4096, mem400)
	ceiling := suiteIPC(t, workload.SpecINT, 4096, perfect)
	if big > 0.85*ceiling {
		t.Errorf("SpecINT at 4K window (%.3f) recovered too much of the perfect-L1 level (%.3f)", big, ceiling)
	}
	smallFP := suiteIPC(t, workload.SpecFP, 32, mem400)
	smallINT := suiteIPC(t, workload.SpecINT, 32, mem400)
	if smallINT < smallFP {
		t.Errorf("at tiny windows SpecINT (%.3f) should hold up better than SpecFP (%.3f)", smallINT, smallFP)
	}
}

// TestWindowMonotonicity: IPC must not decrease as the window grows.
func TestWindowMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	mc := mem.Table1Configs()[4]
	prev := 0.0
	for _, w := range []int{32, 128, 512, 2048} {
		v := suiteIPC(t, workload.SpecFP, w, mc)
		if v < prev*0.97 { // allow tiny noise
			t.Errorf("IPC decreased when window grew to %d: %.3f -> %.3f", w, prev, v)
		}
		prev = v
	}
}

// TestBenchmarkCharacters spot-checks that individual workloads behave in
// character on the R10-256 baseline.
func TestBenchmarkCharacters(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	run := func(name string) (ipc, memFrac float64) {
		g := workload.MustNew(name)
		p := New(R10K256())
		p.Hierarchy().Warm(g.WarmRanges())
		st := p.Run(g, 8000, 30000)
		return st.IPC(), st.MemoryLoadFrac()
	}
	gzipIPC, gzipMem := run("gzip")
	if gzipMem > 0.01 {
		t.Errorf("gzip should be cache-resident, %.1f%% loads to memory", 100*gzipMem)
	}
	if gzipIPC < 1.5 {
		t.Errorf("gzip IPC %.3f too low for a cache-resident code", gzipIPC)
	}
	mcfIPC, mcfMem := run("mcf")
	if mcfMem < 0.05 {
		t.Errorf("mcf should be memory-bound, %.1f%% loads to memory", 100*mcfMem)
	}
	if mcfIPC > 0.6 {
		t.Errorf("mcf IPC %.3f too high for a pointer-chasing code", mcfIPC)
	}
	if gzipIPC < 3*mcfIPC {
		t.Errorf("gzip (%.3f) and mcf (%.3f) should differ sharply", gzipIPC, mcfIPC)
	}
}
