package ooo

import (
	"fmt"

	"dkip/internal/isa"
	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/predictor"
	"dkip/internal/trace"
)

// fetchEntry is one instruction in the front-end buffer between fetch and
// rename.
type fetchEntry struct {
	in         isa.Instr
	fetchCycle int64
	ready      int64 // cycle at which rename may consume it
	mispred    bool
}

// Processor is one out-of-order core instance. It is single-use: construct
// with New, call Run once (Run may be called again to continue the same
// program with warm structures).
type Processor struct {
	cfg  Config
	win  *pipeline.Window
	iqI  *pipeline.IssueQueue
	iqF  *pipeline.IssueQueue
	sliq *pipeline.IssueQueue // nil unless cfg.SLIQSize > 0
	fus  *pipeline.FUPool
	sb   *pipeline.Scoreboard
	ev   pipeline.EventQueue
	hier *mem.Hierarchy
	bp   *predictor.Stats

	fq     []fetchEntry
	fqHead int
	fqLen  int

	renameSeq uint64 // next sequence number to allocate
	commitSeq uint64 // next sequence number to retire
	horizon   uint64 // oldest incomplete instruction (SLIQ spread cap)
	robCount  int
	lsqCount  int
	missCount int // outstanding off-chip misses (MSHR occupancy)

	fetchStalled bool  // an unresolved mispredicted branch was fetched
	resumeCycle  int64 // fetch may not proceed before this cycle

	// ageI/ageF feed SLIQ migration: sequence numbers in rename order.
	ageI, ageF pipeline.Ring64

	// issueStage scratch, preallocated so the per-cycle select loop does
	// not allocate: the fixed queue set, its rotated view, and the
	// structural-block flags.
	iqAll     []*pipeline.IssueQueue
	iqRot     []*pipeline.IssueQueue
	iqBlocked []bool

	cycle       int64
	collect     bool
	statsBase   int64
	total       uint64
	measureFrom uint64
	targetTotal uint64
	stats       pipeline.Stats
	didWork     bool

	ra runaheadState
}

// New builds a processor. It panics on invalid configuration (experiment
// definitions are code).
func New(cfg Config) *Processor {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	fqCap := cfg.FetchWidth * (cfg.FrontEndDepth + 2)
	winCap := cfg.ROBSize + cfg.SLIQSize + fqCap + 64
	if cfg.SLIQSize > 0 {
		// Out-of-order commit lets the rename/commit spread exceed the
		// structural window while the in-order counter catches up.
		winCap += 8192
	}
	p := &Processor{
		cfg:  cfg,
		win:  pipeline.NewWindow(winCap),
		fus:  pipeline.NewFUPool(cfg.FU),
		sb:   pipeline.NewScoreboard(),
		hier: mem.NewHierarchy(cfg.Mem),
		bp:   predictor.NewStats(cfg.NewPredictor()),
		fq:   make([]fetchEntry, fqCap),
	}
	p.iqI = pipeline.NewIssueQueue(pipeline.QInt, cfg.IQSize, cfg.InOrder, p.win)
	p.iqF = pipeline.NewIssueQueue(pipeline.QFP, cfg.IQSize, cfg.InOrder, p.win)
	if cfg.SLIQSize > 0 {
		if cfg.InOrder {
			panic("ooo: SLIQ requires out-of-order primary queues")
		}
		p.sliq = pipeline.NewIssueQueue(pipeline.QSLIQ, cfg.SLIQSize, false, p.win)
	}
	p.iqAll = []*pipeline.IssueQueue{p.iqI, p.iqF}
	if p.sliq != nil {
		p.iqAll = append(p.iqAll, p.sliq)
	}
	p.iqRot = make([]*pipeline.IssueQueue, len(p.iqAll))
	p.iqBlocked = make([]bool, len(p.iqAll))
	return p
}

// Config returns the effective (defaulted) configuration.
func (p *Processor) Config() Config { return p.cfg }

// Hierarchy exposes the memory hierarchy for cache statistics.
func (p *Processor) Hierarchy() *mem.Hierarchy { return p.hier }

// Predictor exposes the branch predictor statistics.
func (p *Processor) Predictor() *predictor.Stats { return p.bp }

// Run simulates until warmup+measure instructions have committed and returns
// statistics covering only the measurement phase. The generator supplies the
// correct-path instruction stream.
//
//dkip:hotpath
func (p *Processor) Run(g trace.Generator, warmup, measure uint64) *pipeline.Stats {
	if measure == 0 {
		panic("ooo: Run with zero measurement length")
	}
	target := p.total + warmup + measure
	p.measureFrom = p.total + warmup
	p.targetTotal = target
	if warmup == 0 {
		p.beginMeasure()
	}
	maxCycles := p.cycle + int64(warmup+measure)*20000 + 10_000_000
	for p.total < target {
		p.didWork = false
		p.fus.NewCycle(p.cycle)

		p.commitStage()
		p.completeStage()
		p.issueStage()
		p.renameStage()
		p.fetchStage(g)
		if p.cfg.RunaheadDepth > 0 {
			p.maybeRunahead(g)
		}
		p.advanceCycle()
		if p.cycle > maxCycles {
			panic(fmt.Sprintf("ooo: %s on %s: exceeded cycle budget (deadlock or pathological config): committed %d of %d",
				p.cfg.Name, g.Name(), p.total, target))
		}
	}
	out := p.stats
	out.Cycles = p.cycle - p.statsBase
	return &out
}

func (p *Processor) beginMeasure() {
	p.stats = pipeline.Stats{}
	p.statsBase = p.cycle
	p.collect = true
}

// advanceCycle steps time, skipping idle stretches when nothing can change
// until the next scheduled event.
func (p *Processor) advanceCycle() {
	p.cycle++
	if p.didWork {
		return
	}
	// Nothing happened: jump to the next cycle at which something can.
	next := int64(-1)
	consider := func(c int64) {
		if c > p.cycle && (next == -1 || c < next) {
			next = c
		} else if c <= p.cycle {
			next = p.cycle
		}
	}
	if c, ok := p.ev.NextCycle(); ok {
		consider(c)
	}
	if !p.fetchStalled && p.resumeCycle > p.cycle {
		consider(p.resumeCycle)
	}
	if p.fqLen > 0 {
		consider(p.fq[p.fqHead].ready)
	}
	if next > p.cycle {
		p.cycle = next
	} else if next == -1 && p.fqLen == 0 && p.fetchStalled {
		panic("ooo: deadlock: fetch stalled with no pending events")
	}
}

func (p *Processor) commitStage() {
	for n := 0; n < p.cfg.CommitWidth; n++ {
		if p.commitSeq >= p.renameSeq {
			return
		}
		e := p.win.Get(p.commitSeq)
		if !e.Done {
			return
		}
		if e.In.Op == isa.Store {
			// Stores write the cache at commit; a write buffer hides
			// the latency, so only cache state is updated.
			p.hier.Access(e.In.Addr)
			p.lsqCount--
		}
		// Loads released their LSQ entry when their value returned.
		if p.cfg.SLIQSize == 0 {
			p.robCount--
		}
		p.commitSeq++
		p.total++
		p.didWork = true
		// Statistics cover exactly the (warmup, warmup+measure] range.
		if !p.collect {
			if p.total <= p.measureFrom {
				continue
			}
			p.beginMeasure()
		}
		if p.total > p.targetTotal {
			continue
		}
		p.stats.Committed++
		if e.In.Op == isa.Branch {
			p.stats.Branches++
			if e.Mispred {
				p.stats.Mispredicts++
			}
		}
	}
}

func (p *Processor) completeStage() {
	for {
		seq, ok := p.ev.PopDue(p.cycle)
		if !ok {
			return
		}
		e := p.win.Get(seq)
		e.Done = true
		e.CompleteCycle = p.cycle
		if e.In.Op == isa.Load {
			p.lsqCount-- // the LSQ entry is freed when the value returns
			if e.MemLevel == mem.LevelMemory {
				p.missCount--
			}
		}
		if p.cfg.SLIQSize > 0 && !e.LowLocality {
			// Out-of-order commit (multicheckpointing): a finished
			// instruction releases its pseudo-ROB entry immediately;
			// SLIQ residents released theirs when they migrated.
			p.robCount--
		}
		if e.In.Op.HasDest() {
			p.sb.Complete(e.In.Dest, seq)
		}
		for _, cs := range e.Consumers {
			ce := p.win.Get(cs)
			if ce.Seq != cs || ce.Issued {
				continue
			}
			ce.Pending--
			if ce.Pending == 0 {
				p.wake(ce)
			}
		}
		if e.Mispred {
			pen := int64(p.cfg.RedirectPenalty)
			if e.LowLocality {
				// Resolved from the SLIQ: recovery restores a
				// checkpoint rather than the rename stack.
				pen += int64(p.cfg.CheckpointPenalty)
				if p.collect {
					p.stats.Recoveries++
				}
			}
			p.fetchStalled = false
			p.resumeCycle = p.cycle + pen
		}
		p.didWork = true
	}
}

func (p *Processor) wake(e *pipeline.DynInst) {
	switch e.Queue {
	case pipeline.QInt:
		p.iqI.Wake(e.Seq)
	case pipeline.QFP:
		p.iqF.Wake(e.Seq)
	case pipeline.QSLIQ:
		p.sliq.Wake(e.Seq)
	}
}

func (p *Processor) issueStage() {
	// Rotate priority so no queue starves under issue-width pressure. The
	// rotated view and block flags live on the Processor: this runs every
	// cycle and must not allocate.
	n := len(p.iqAll)
	rot := int(p.cycle) % n
	for i := range p.iqAll {
		j := i + rot
		if j >= n {
			j -= n
		}
		p.iqRot[i] = p.iqAll[j]
		p.iqBlocked[i] = false
	}
	queues := p.iqRot

	issued := 0
	portsUsed := 0
	blocked := p.iqBlocked
	for issued < p.cfg.IssueWidth {
		progress := false
		for qi, q := range queues {
			if blocked[qi] || issued >= p.cfg.IssueWidth {
				continue
			}
			seq, ok := q.Pop()
			if !ok {
				blocked[qi] = true
				continue
			}
			e := p.win.Get(seq)
			if e.In.Op == isa.Load && portsUsed >= p.cfg.MemPorts {
				q.Unpop(seq)
				blocked[qi] = true
				continue
			}
			if e.In.Op == isa.Load && p.cfg.MSHRs > 0 && p.missCount >= p.cfg.MSHRs &&
				p.hier.ProbeLongLatency(e.In.Addr) {
				// All miss-status registers busy: the load waits.
				q.Unpop(seq)
				blocked[qi] = true
				continue
			}
			if !p.fus.TryIssue(e.In.Op) {
				q.Unpop(seq)
				blocked[qi] = true
				continue
			}
			p.execute(e, &portsUsed)
			issued++
			progress = true
		}
		if !progress {
			break
		}
	}
	// SLIQ migration happens after issue so newly ready instructions had
	// their chance to leave the primary queues first.
	if p.sliq != nil {
		p.migrateToSLIQ()
	}
}

// execute starts execution of e at the current cycle.
func (p *Processor) execute(e *pipeline.DynInst, portsUsed *int) {
	e.Issued = true
	e.IssueCycle = p.cycle
	if p.collect {
		p.stats.IssueLat.Observe(p.cycle - e.RenameCycle)
	}
	lat := int64(e.In.Op.Latency())
	if e.In.Op == isa.Load {
		l, lvl := p.hier.Access(e.In.Addr)
		e.MemLevel = lvl
		e.MemLatency = l
		if p.collect {
			p.stats.LoadLevel[lvl]++
		}
		if lvl == mem.LevelMemory {
			p.missCount++
		}
		lat = int64(l)
		*portsUsed++
	}
	if e.Queue == pipeline.QSLIQ {
		// Woken slow-lane instructions re-dispatch through the pipeline
		// front before executing.
		lat += int64(p.cfg.SLIQReinsertDelay)
	}
	p.ev.Schedule(p.cycle+lat, e.Seq)
	p.didWork = true
}

// migrateToSLIQ moves instructions that have waited SLIQTimer cycles in a
// primary queue without becoming ready into the Slow Lane Instruction Queue,
// releasing their pseudo-ROB entries (multicheckpointing covers recovery).
func (p *Processor) migrateToSLIQ() {
	deadline := p.cycle - int64(p.cfg.SLIQTimer)
	for _, age := range [2]*pipeline.Ring64{&p.ageI, &p.ageF} {
		for age.Len() > 0 {
			seq := age.Front()
			e := p.win.Get(seq)
			if e.Seq != seq || e.Issued {
				age.PopFront()
				continue
			}
			if e.RenameCycle > deadline {
				break // youngest entries not old enough yet
			}
			if e.Pending == 0 {
				// Ready but waiting on select; it will issue soon.
				age.PopFront()
				continue
			}
			if p.sliq.Full() {
				return
			}
			if e.Queue == pipeline.QInt {
				p.iqI.RemoveWaiting()
			} else {
				p.iqF.RemoveWaiting()
			}
			e.LowLocality = true
			p.sliq.Insert(seq, false) // re-stamps e.Queue

			p.robCount--
			age.PopFront()
			p.didWork = true
		}
	}
}

func (p *Processor) renameStage() {
	for n := 0; n < p.cfg.RenameWidth; n++ {
		if p.fqLen == 0 {
			return
		}
		fe := &p.fq[p.fqHead]
		if fe.ready > p.cycle {
			return
		}
		if p.robCount >= p.cfg.ROBSize {
			if p.collect {
				p.stats.StallROBFull++
			}
			return
		}
		if int(p.renameSeq-p.commitSeq) >= p.win.Capacity()-8 {
			// Out-of-order commit mode: the in-order retirement
			// counter has fallen too far behind to recycle slots.
			if p.collect {
				p.stats.StallROBFull++
			}
			return
		}
		if p.cfg.SLIQSize > 0 {
			// The virtual window is bounded by the checkpoint and
			// physical-register budget: at most pseudo-ROB + SLIQ
			// instructions may separate the oldest incomplete
			// instruction from rename.
			for p.horizon < p.renameSeq {
				e := p.win.Get(p.horizon)
				if e.Seq == p.horizon && !e.Done {
					break
				}
				p.horizon++
			}
			if int(p.renameSeq-p.horizon) >= p.cfg.ROBSize+p.cfg.SLIQSize {
				if p.collect {
					p.stats.StallROBFull++
				}
				return
			}
		}
		fp := fe.in.Op.IsFP() || (fe.in.Op == isa.Load && fe.in.Dest.IsFP())
		q := p.iqI
		if fp {
			q = p.iqF
		}
		if q.Full() {
			if p.collect {
				p.stats.StallIQFull++
			}
			return
		}
		if fe.in.Op.IsMem() && p.lsqCount >= p.cfg.LSQSize {
			if p.collect {
				p.stats.StallLSQFull++
			}
			return
		}

		seq := p.renameSeq
		p.renameSeq++
		e := p.win.Alloc(seq, fe.in, int(p.renameSeq-p.commitSeq))
		e.FetchCycle = fe.fetchCycle
		e.RenameCycle = p.cycle
		e.Mispred = fe.mispred

		pending := 0
		prods := [2]uint64{pipeline.NoProducer, pipeline.NoProducer}
		for i, src := range [2]isa.Reg{fe.in.Src1, fe.in.Src2} {
			if prod, busy := p.sb.Lookup(src); busy {
				pe := p.win.Get(prod)
				//dkip:alloc-ok consumer lists are pre-capped by Window.Alloc; growth is warmup-only
				pe.Consumers = append(pe.Consumers, seq)
				prods[i] = prod
				pending++
			}
		}
		e.Pending = int8(pending)
		e.Prod1, e.Prod2 = prods[0], prods[1]
		if e.In.Dest.Valid() {
			p.sb.Define(e.In.Dest, seq)
		}
		q.Insert(seq, pending == 0)
		if p.sliq != nil {
			if q.ID() == pipeline.QInt {
				p.ageI.PushBack(seq)
			} else {
				p.ageF.PushBack(seq)
			}
		}
		p.robCount++
		if fe.in.Op.IsMem() {
			p.lsqCount++
		}

		p.fqHead++
		if p.fqHead == len(p.fq) {
			p.fqHead = 0
		}
		p.fqLen--
		p.didWork = true
	}
}

func (p *Processor) fetchStage(g trace.Generator) {
	if p.fetchStalled || p.cycle < p.resumeCycle {
		return
	}
	for n := 0; n < p.cfg.FetchWidth; n++ {
		if p.fqLen == len(p.fq) {
			return
		}
		in := p.pullNext(g)
		if p.collect {
			p.stats.Fetched++
		}
		fe := fetchEntry{in: in, fetchCycle: p.cycle, ready: p.cycle + int64(p.cfg.FrontEndDepth)}
		if in.Op == isa.Branch {
			pred := p.bp.Predict(in.PC)
			p.bp.Update(in.PC, in.Taken)
			fe.mispred = pred != in.Taken
		}
		tail := p.fqHead + p.fqLen
		if tail >= len(p.fq) {
			tail -= len(p.fq)
		}
		p.fq[tail] = fe
		p.fqLen++
		p.didWork = true
		if fe.mispred {
			// Wrong-path fetch begins; no correct-path instructions
			// arrive until the branch resolves.
			p.fetchStalled = true
			return
		}
		if in.Op == isa.Branch && in.Taken {
			return // a taken branch ends the fetch group
		}
	}
}
