package ooo

import (
	"fmt"

	"dkip/internal/engine"
	"dkip/internal/isa"
	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/trace"
)

// Processor is one out-of-order core instance: an engine.Model contributing
// the R10000-style ROB, clustered issue queues, and (for the KILO baseline)
// the Slow Lane Instruction Queue. It is single-use: construct with New,
// call Run once (Run may be called again to continue the same program with
// warm structures).
type Processor struct {
	engine.Engine

	cfg Config

	iqI  *pipeline.IssueQueue
	iqF  *pipeline.IssueQueue
	sliq *pipeline.IssueQueue // nil unless cfg.SLIQSize > 0
	fus  *pipeline.FUPool

	commitSeq uint64 // next sequence number to retire
	horizon   uint64 // oldest incomplete instruction (SLIQ spread cap)
	robCount  int

	// ageI/ageF feed SLIQ migration: sequence numbers in rename order.
	ageI, ageF pipeline.Ring64

	// issueStage scratch, preallocated so the per-cycle select loop does
	// not allocate: the fixed queue set, its rotated view, and the
	// structural-block flags.
	iqAll     []*pipeline.IssueQueue
	iqRot     []*pipeline.IssueQueue
	iqBlocked []bool

	ra runaheadState
}

// New builds a processor. It panics on invalid configuration (experiment
// definitions are code).
func New(cfg Config) *Processor {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	fqCap := cfg.FetchWidth * (cfg.FrontEndDepth + 2)
	winCap := cfg.ROBSize + cfg.SLIQSize + fqCap + 64
	if cfg.SLIQSize > 0 {
		// Out-of-order commit lets the rename/commit spread exceed the
		// structural window while the in-order counter catches up.
		winCap += 8192
	}
	p := &Processor{
		cfg: cfg,
		fus: pipeline.NewFUPool(cfg.FU),
	}
	p.Init(engine.Params{
		Family:          "ooo",
		Name:            cfg.Name,
		FetchWidth:      cfg.FetchWidth,
		RenameWidth:     cfg.RenameWidth,
		FrontEndDepth:   cfg.FrontEndDepth,
		RedirectPenalty: cfg.RedirectPenalty,
		LSQSize:         cfg.LSQSize,
		MemPorts:        cfg.MemPorts,
		MSHRs:           cfg.MSHRs,
		FetchQueueCap:   fqCap,
		WindowCap:       winCap,
		Mem:             cfg.Mem,
		NewPredictor:    cfg.NewPredictor,
	}, p)
	p.iqI = pipeline.NewIssueQueue(pipeline.QInt, cfg.IQSize, cfg.InOrder, p.Win)
	p.iqF = pipeline.NewIssueQueue(pipeline.QFP, cfg.IQSize, cfg.InOrder, p.Win)
	if cfg.SLIQSize > 0 {
		if cfg.InOrder {
			panic("ooo: SLIQ requires out-of-order primary queues")
		}
		p.sliq = pipeline.NewIssueQueue(pipeline.QSLIQ, cfg.SLIQSize, false, p.Win)
	}
	p.iqAll = []*pipeline.IssueQueue{p.iqI, p.iqF}
	if p.sliq != nil {
		p.iqAll = append(p.iqAll, p.sliq)
	}
	p.iqRot = make([]*pipeline.IssueQueue, len(p.iqAll))
	p.iqBlocked = make([]bool, len(p.iqAll))
	return p
}

// Config returns the effective (defaulted) configuration.
func (p *Processor) Config() Config { return p.cfg }

// BeginCycle resets the functional-unit pool's issue ports.
//
//dkip:hotpath
func (p *Processor) BeginCycle() {
	p.fus.NewCycle(p.Cycle)
}

// Stages runs commit, complete and issue in the R10K order.
//
//dkip:hotpath
func (p *Processor) Stages(g trace.Generator) {
	p.commitStage()
	p.CompleteStage()
	p.issueStage()
}

// EndCycle triggers a runahead episode when configured.
//
//dkip:hotpath
func (p *Processor) EndCycle(g trace.Generator) {
	if p.cfg.RunaheadDepth > 0 {
		p.maybeRunahead(g)
	}
}

// ConsiderWake adds no wake sources beyond the engine's defaults.
//
//dkip:hotpath
func (p *Processor) ConsiderWake(w *engine.WakeScan) {}

//dkip:hotpath
func (p *Processor) commitStage() {
	for n := 0; n < p.cfg.CommitWidth; n++ {
		if p.commitSeq >= p.RenameSeq {
			return
		}
		d := p.Win.Get(p.commitSeq)
		if !d.Done {
			return
		}
		if d.In.Op == isa.Store {
			// Stores write the cache at commit; a write buffer hides
			// the latency, so only cache state is updated.
			p.Hier.Access(d.In.Addr)
			p.LSQCount--
		}
		// Loads released their LSQ entry when their value returned.
		if p.cfg.SLIQSize == 0 {
			p.robCount--
		}
		p.commitSeq++
		p.DidWork = true
		p.Commit(d, engine.CommitDirect)
	}
}

// OnComplete releases structural entries for a finished execution.
//
//dkip:hotpath
func (p *Processor) OnComplete(d *pipeline.DynInst) {
	if d.In.Op == isa.Load {
		p.LSQCount-- // the LSQ entry is freed when the value returns
		if d.MemLevel == mem.LevelMemory {
			p.MissCount--
		}
	}
	if p.cfg.SLIQSize > 0 && !d.LowLocality {
		// Out-of-order commit (multicheckpointing): a finished
		// instruction releases its pseudo-ROB entry immediately;
		// SLIQ residents released theirs when they migrated.
		p.robCount--
	}
	if d.In.Op.HasDest() {
		p.SB.Complete(d.In.Dest, d.Seq)
	}
}

// RecoveryExtra charges the checkpoint-restore surcharge for mispredictions
// resolved from the SLIQ.
//
//dkip:hotpath
func (p *Processor) RecoveryExtra(d *pipeline.DynInst) int64 {
	if !d.LowLocality {
		return 0
	}
	// Resolved from the SLIQ: recovery restores a checkpoint rather than
	// the rename stack.
	if p.Collect {
		p.Stats.Recoveries++
	}
	return int64(p.cfg.CheckpointPenalty)
}

// Wake routes a wakeup to the queue holding the instruction.
//
//dkip:hotpath
func (p *Processor) Wake(d *pipeline.DynInst) {
	switch d.Queue {
	case pipeline.QInt:
		p.iqI.Wake(d.Seq)
	case pipeline.QFP:
		p.iqF.Wake(d.Seq)
	case pipeline.QSLIQ:
		p.sliq.Wake(d.Seq)
	}
}

//dkip:hotpath
func (p *Processor) issueStage() {
	// Rotate priority so no queue starves under issue-width pressure. The
	// rotated view and block flags live on the Processor: this runs every
	// cycle and must not allocate.
	n := len(p.iqAll)
	rot := int(p.Cycle) % n
	for i := range p.iqAll {
		j := i + rot
		if j >= n {
			j -= n
		}
		p.iqRot[i] = p.iqAll[j]
		p.iqBlocked[i] = false
	}
	p.PortsUsed = 0
	p.IssueSelect(p.iqRot, p.iqBlocked, p.cfg.IssueWidth, p.fus)
	// SLIQ migration happens after issue so newly ready instructions had
	// their chance to leave the primary queues first.
	if p.sliq != nil {
		p.migrateToSLIQ()
	}
}

// IssueExtraLatency charges the slow-lane re-dispatch delay: woken
// slow-lane instructions re-dispatch through the pipeline front before
// executing.
//
//dkip:hotpath
func (p *Processor) IssueExtraLatency(d *pipeline.DynInst) int64 {
	if d.Queue == pipeline.QSLIQ {
		return int64(p.cfg.SLIQReinsertDelay)
	}
	return 0
}

// migrateToSLIQ moves instructions that have waited SLIQTimer cycles in a
// primary queue without becoming ready into the Slow Lane Instruction Queue,
// releasing their pseudo-ROB entries (multicheckpointing covers recovery).
//
//dkip:hotpath
func (p *Processor) migrateToSLIQ() {
	deadline := p.Cycle - int64(p.cfg.SLIQTimer)
	for _, age := range [2]*pipeline.Ring64{&p.ageI, &p.ageF} {
		for age.Len() > 0 {
			seq := age.Front()
			e := p.Win.Get(seq)
			if e.Seq != seq || e.Issued {
				age.PopFront()
				continue
			}
			if e.RenameCycle > deadline {
				break // youngest entries not old enough yet
			}
			if e.Pending == 0 {
				// Ready but waiting on select; it will issue soon.
				age.PopFront()
				continue
			}
			if p.sliq.Full() {
				return
			}
			if e.Queue == pipeline.QInt {
				p.iqI.RemoveWaiting()
			} else {
				p.iqF.RemoveWaiting()
			}
			e.LowLocality = true
			p.sliq.Insert(seq, false) // re-stamps e.Queue

			p.robCount--
			age.PopFront()
			p.DidWork = true
		}
	}
}

// RenameAdmit enforces the ROB and virtual-window occupancy bounds.
//
//dkip:hotpath
func (p *Processor) RenameAdmit() bool {
	if p.robCount >= p.cfg.ROBSize {
		return false
	}
	if int(p.RenameSeq-p.commitSeq) >= p.Win.Capacity()-8 {
		// Out-of-order commit mode: the in-order retirement counter has
		// fallen too far behind to recycle slots.
		return false
	}
	if p.cfg.SLIQSize > 0 {
		// The virtual window is bounded by the checkpoint and
		// physical-register budget: at most pseudo-ROB + SLIQ
		// instructions may separate the oldest incomplete instruction
		// from rename.
		for p.horizon < p.RenameSeq {
			e := p.Win.Get(p.horizon)
			if e.Seq == p.horizon && !e.Done {
				break
			}
			p.horizon++
		}
		if int(p.RenameSeq-p.horizon) >= p.cfg.ROBSize+p.cfg.SLIQSize {
			return false
		}
	}
	return true
}

// RenameQueue routes an instruction to its cluster's issue queue.
//
//dkip:hotpath
func (p *Processor) RenameQueue(fp bool) *pipeline.IssueQueue {
	if fp {
		return p.iqF
	}
	return p.iqI
}

// AllocHint bounds the window by the rename/commit spread (RenameSeq has
// already been advanced past seq).
//
//dkip:hotpath
func (p *Processor) AllocHint(seq uint64) int {
	return int(p.RenameSeq - p.commitSeq)
}

// OnRename records ROB occupancy and feeds the SLIQ age rings.
//
//dkip:hotpath
func (p *Processor) OnRename(d *pipeline.DynInst, q *pipeline.IssueQueue) {
	if p.sliq != nil {
		if q.ID() == pipeline.QInt {
			p.ageI.PushBack(d.Seq)
		} else {
			p.ageF.PushBack(d.Seq)
		}
	}
	p.robCount++
}

// FetchNext consumes the runahead replay buffer before the generator.
//
//dkip:hotpath
func (p *Processor) FetchNext(g trace.Generator) isa.Instr {
	return p.pullNext(g)
}

// OnFetchBranch reports no confidence estimate: this family has none.
//
//dkip:hotpath
func (p *Processor) OnFetchBranch(in isa.Instr, mispred bool) bool { return false }

// OnBeginMeasure has no model-owned high-water statistics to reset.
//
//dkip:hotpath
func (p *Processor) OnBeginMeasure() {}

// FinishStats has no model-owned statistics to copy.
func (p *Processor) FinishStats(st *pipeline.Stats) {}

// BudgetMessage builds the cycle-budget panic text.
func (p *Processor) BudgetMessage(bench string, target uint64) string {
	return fmt.Sprintf("ooo: %s on %s: exceeded cycle budget (deadlock or pathological config): committed %d of %d",
		p.cfg.Name, bench, p.Total, target)
}
