package ooo

import (
	"testing"

	"dkip/internal/isa"
	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/trace"
)

// synth generates synthetic instruction streams for engine tests.
type synth struct {
	label string
	next  func(i uint64) isa.Instr
	n     uint64
}

func (s *synth) Next() isa.Instr { in := s.next(s.n); s.n++; return in }
func (s *synth) Name() string    { return s.label }
func (s *synth) Reset()          { s.n = 0 }

// independentALU: every instruction writes a rotating register and reads two
// old ones — near-perfect ILP.
func independentALU() trace.Generator {
	return &synth{label: "indep", next: func(i uint64) isa.Instr {
		return isa.Instr{
			PC: 0x1000 + i*4, Op: isa.IntALU,
			Dest: isa.IntReg(int(2 + i%24)),
			Src1: isa.IntReg(0), Src2: isa.IntReg(1), // never written: always ready
		}
	}}
}

// serialChain: every instruction depends on the previous one.
func serialChain() trace.Generator {
	return &synth{label: "chain", next: func(i uint64) isa.Instr {
		r := isa.IntReg(int(2 + i%2))
		prev := isa.IntReg(int(2 + (i+1)%2))
		return isa.Instr{PC: 0x1000 + i*4, Op: isa.IntALU, Dest: r, Src1: prev, Src2: isa.RegNone}
	}}
}

// missStream: every 8th instruction is a load to a fresh cache line (a cold
// miss); the rest are independent ALU ops. Misses are mutually independent,
// so a large window can overlap them.
func missStream() trace.Generator {
	return &synth{label: "miss", next: func(i uint64) isa.Instr {
		if i%8 == 0 {
			return isa.Instr{
				PC: 0x1000 + (i%512)*4, Op: isa.Load,
				Dest: isa.IntReg(int(2 + i%8)), Src1: isa.IntReg(0), Src2: isa.RegNone,
				Addr: 0x1000_0000 + i*64, // new line every load
			}
		}
		return isa.Instr{PC: 0x1000 + (i%512)*4, Op: isa.IntALU,
			Dest: isa.IntReg(int(10 + i%8)), Src1: isa.IntReg(0), Src2: isa.RegNone}
	}}
}

// missDependentBranches: loads that miss feed branches with random-looking
// outcomes — the paper's worst case for integer codes.
func missChain() trace.Generator {
	return &synth{label: "misschain", next: func(i uint64) isa.Instr {
		// A single endless pointer chain: every 4th instruction is a
		// load whose base is the previous load's destination.
		if i%4 == 0 {
			return isa.Instr{
				PC: 0x1000 + (i%64)*4, Op: isa.Load,
				Dest: isa.IntReg(2), Src1: isa.IntReg(2), Src2: isa.RegNone,
				Addr: 0x1000_0000 + i*64, ChainLoad: true,
			}
		}
		return isa.Instr{PC: 0x1000 + (i%64)*4, Op: isa.IntALU,
			Dest: isa.IntReg(int(10 + i%8)), Src1: isa.IntReg(0), Src2: isa.RegNone}
	}}
}

func run(t *testing.T, cfg Config, g trace.Generator, n uint64) *testStats {
	t.Helper()
	p := New(cfg)
	st := p.Run(g, 0, n)
	return &testStats{p: p, s: st}
}

type testStats struct {
	p *Processor
	s *pipeline.Stats
}

func TestIndependentILP(t *testing.T) {
	st := run(t, Config{Name: "t", ROBSize: 64, Mem: mem.Table1Configs()[0]}, independentALU(), 20000)
	if ipc := st.s.IPC(); ipc < 3.0 {
		t.Errorf("independent ALU stream IPC = %.2f, want near width", ipc)
	}
	if st.s.Committed != 20000 {
		t.Errorf("committed %d, want 20000", st.s.Committed)
	}
}

func TestSerialChainBoundsIPC(t *testing.T) {
	st := run(t, Config{Name: "t", ROBSize: 256, Mem: mem.Table1Configs()[0]}, serialChain(), 20000)
	if ipc := st.s.IPC(); ipc > 1.05 {
		t.Errorf("serial chain IPC = %.2f, cannot exceed 1", ipc)
	}
	if ipc := st.s.IPC(); ipc < 0.8 {
		t.Errorf("serial chain IPC = %.2f, should be near 1", ipc)
	}
}

func TestWindowEnablesMLP(t *testing.T) {
	small := run(t, Config{Name: "s", ROBSize: 32}, missStream(), 20000)
	big := run(t, Config{Name: "b", ROBSize: 2048}, missStream(), 20000)
	if big.s.IPC() < 3*small.s.IPC() {
		t.Errorf("window 2048 IPC %.3f should be >>3x window-32 IPC %.3f on independent misses",
			big.s.IPC(), small.s.IPC())
	}
}

func TestPointerChainDefeatsWindow(t *testing.T) {
	small := run(t, Config{Name: "s", ROBSize: 32}, missChain(), 4000)
	big := run(t, Config{Name: "b", ROBSize: 2048}, missChain(), 4000)
	// A single dependent chain gains nothing from window size.
	if big.s.IPC() > 1.3*small.s.IPC() {
		t.Errorf("dependent chain should not profit from window: %.3f vs %.3f",
			big.s.IPC(), small.s.IPC())
	}
}

// chainPairs emits two-hop pointer chains: head loads are address-ready,
// each followed (four instructions later) by one dependent hop. Out-of-order
// issue overlaps separate chains; an in-order queue serializes them behind
// the waiting hop.
func chainPairs() trace.Generator {
	return &synth{label: "pairs", next: func(i uint64) isa.Instr {
		if i%4 == 0 {
			if (i/4)%2 == 0 { // chain head: base always ready
				return isa.Instr{PC: 0x1000, Op: isa.Load, Dest: isa.IntReg(2),
					Src1: isa.IntReg(0), Src2: isa.RegNone, Addr: 0x1000_0000 + i*64}
			}
			// Dependent hop: base is the head's result.
			return isa.Instr{PC: 0x1010, Op: isa.Load, Dest: isa.IntReg(3),
				Src1: isa.IntReg(2), Src2: isa.RegNone, Addr: 0x2000_0000 + i*64, ChainLoad: true}
		}
		return isa.Instr{PC: 0x1020 + (i%4)*4, Op: isa.IntALU,
			Dest: isa.IntReg(int(10 + i%8)), Src1: isa.IntReg(0), Src2: isa.RegNone}
	}}
}

func TestInOrderSlowerThanOoO(t *testing.T) {
	mk := func(inOrder bool) float64 {
		st := run(t, Config{Name: "t", ROBSize: 512, IQSize: 256, InOrder: inOrder}, chainPairs(), 8000)
		return st.s.IPC()
	}
	ooo, ino := mk(false), mk(true)
	if ooo <= 1.2*ino {
		t.Errorf("out-of-order (%.3f) should clearly beat in-order (%.3f)", ooo, ino)
	}
}

func TestSLIQExtendsWindow(t *testing.T) {
	base := run(t, Config{Name: "b", ROBSize: 64, IQSize: 40}, missStream(), 20000)
	sliq := run(t, Config{Name: "k", ROBSize: 64, IQSize: 72, SLIQSize: 1024}, missStream(), 20000)
	if sliq.s.IPC() < 2*base.s.IPC() {
		t.Errorf("SLIQ (%.3f) should far exceed the plain 64-entry core (%.3f) on independent misses",
			sliq.s.IPC(), base.s.IPC())
	}
}

func TestBranchAccounting(t *testing.T) {
	g := &synth{label: "br", next: func(i uint64) isa.Instr {
		if i%5 == 4 {
			return isa.Instr{PC: 0x1000 + (i%20)*4, Op: isa.Branch,
				Src1: isa.IntReg(0), Taken: true}
		}
		return isa.Instr{PC: 0x1000 + (i%20)*4, Op: isa.IntALU,
			Dest: isa.IntReg(int(2 + i%8)), Src1: isa.IntReg(0), Src2: isa.RegNone}
	}}
	st := run(t, Config{Name: "t", ROBSize: 64}, g, 10000)
	if st.s.Branches == 0 {
		t.Fatal("no branches counted")
	}
	want := uint64(10000 / 5)
	if st.s.Branches < want-10 || st.s.Branches > want+10 {
		t.Errorf("branches = %d, want ~%d", st.s.Branches, want)
	}
	// Always-taken branches are learned quickly: low mispredict rate.
	if st.s.MispredictRate() > 0.1 {
		t.Errorf("mispredict rate %.3f on an always-taken branch", st.s.MispredictRate())
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, R10K64(), missStream(), 15000)
	b := run(t, R10K64(), missStream(), 15000)
	if a.s.Cycles != b.s.Cycles || a.s.Committed != b.s.Committed {
		t.Errorf("nondeterministic: %d/%d vs %d/%d cycles/committed",
			a.s.Cycles, a.s.Committed, b.s.Cycles, b.s.Committed)
	}
}

func TestWarmupExcluded(t *testing.T) {
	p := New(R10K64())
	st := p.Run(missStream(), 5000, 10000)
	if st.Committed != 10000 {
		t.Errorf("measured committed = %d, want 10000", st.Committed)
	}
	if st.Cycles <= 0 {
		t.Error("cycles not positive")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{ROBSize: 64}.withDefaults()
	if cfg.FetchWidth != 4 || cfg.IssueWidth != 4 || cfg.CommitWidth != 4 {
		t.Error("widths should default to 4")
	}
	if cfg.IQSize != 64 || cfg.LSQSize != 64 {
		t.Error("queue sizes should default to ROB size")
	}
	if cfg.MemPorts != 2 {
		t.Error("memory ports should default to 2")
	}
	if cfg.Mem.MemLatency != 400 {
		t.Error("memory should default to MEM-400")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero ROB should be invalid")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New with invalid config should panic")
			}
		}()
		New(Config{})
	}()
}

func TestNamedConfigs(t *testing.T) {
	if c := R10K64(); c.ROBSize != 64 || c.IQSize != 40 {
		t.Error("R10-64 sizes wrong")
	}
	if c := R10K256(); c.ROBSize != 256 || c.IQSize != 160 {
		t.Error("R10-256 sizes wrong")
	}
	if c := R10K768(); c.ROBSize != 768 {
		t.Error("R10-768 size wrong")
	}
	lc := LimitCore(1024, mem.DefaultConfig())
	if lc.ROBSize != 1024 {
		t.Error("limit core size wrong")
	}
	if lc := lc.withDefaults(); lc.IQSize != 1024 || lc.LSQSize != 1024 {
		t.Error("limit core queues must equal the ROB")
	}
}

func TestMispredictStallsFetch(t *testing.T) {
	// Unpredictable branches fed by L1 hits: frequent short stalls.
	i := 0
	g := &synth{label: "rand", next: func(n uint64) isa.Instr {
		i++
		if n%6 == 5 {
			taken := (n/6)%2 == 0 // alternating: learnable by gshare-class, but start cold
			return isa.Instr{PC: 0x2000, Op: isa.Branch, Src1: isa.IntReg(0), Taken: taken}
		}
		return isa.Instr{PC: 0x1000 + (n%24)*4, Op: isa.IntALU,
			Dest: isa.IntReg(int(2 + n%8)), Src1: isa.IntReg(0), Src2: isa.RegNone}
	}}
	st := run(t, Config{Name: "t", ROBSize: 64, Mem: mem.Table1Configs()[0]}, g, 20000)
	ind := run(t, Config{Name: "t", ROBSize: 64, Mem: mem.Table1Configs()[0]}, independentALU(), 20000)
	if st.s.IPC() >= ind.s.IPC() {
		t.Errorf("mispredicting stream (%.3f) should be slower than branch-free (%.3f)",
			st.s.IPC(), ind.s.IPC())
	}
}
