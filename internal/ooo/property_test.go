package ooo

import (
	"testing"
	"testing/quick"

	"dkip/internal/workload"
)

// TestRandomConfigsRun drives the out-of-order engine with randomized valid
// configurations: every run must complete with sane statistics.
func TestRandomConfigsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	check := func(rob, iq uint8, inOrder bool, sliq bool, ra bool) bool {
		cfg := Config{
			Name:    "prop",
			ROBSize: 16 + int(rob),
			IQSize:  8 + int(iq)%128,
			InOrder: inOrder && !sliq,
		}
		if sliq && !inOrder {
			cfg.SLIQSize = 256
		}
		if ra {
			cfg.RunaheadDepth = 64
		}
		g := workload.MustNew("vortex")
		p := New(cfg)
		p.Hierarchy().Warm(g.WarmRanges())
		st := p.Run(g, 1000, 6000)
		if st.Committed < 6000 {
			t.Logf("config %+v committed %d", cfg, st.Committed)
			return false
		}
		if ipc := st.IPC(); ipc <= 0 || ipc > 4 {
			t.Logf("config %+v IPC %.3f", cfg, ipc)
			return false
		}
		if st.Branches > 0 && st.Mispredicts > st.Branches {
			t.Logf("config %+v mispredicts exceed branches", cfg)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestIssueLatencyAccounting: the histogram must cover every issued
// instruction in the measurement window.
func TestIssueLatencyAccounting(t *testing.T) {
	g := workload.MustNew("applu")
	p := New(R10K256())
	p.Hierarchy().Warm(g.WarmRanges())
	st := p.Run(g, 5000, 20000)
	// Issued ≈ committed plus in-flight boundary noise; the histogram
	// total must be in that neighbourhood.
	if st.IssueLat.Total < st.Committed*9/10 {
		t.Errorf("histogram covers %d of %d committed", st.IssueLat.Total, st.Committed)
	}
	if st.IssueLat.Mean() < 0 {
		t.Error("negative mean issue latency")
	}
}

// TestStatsSaneAcrossMemories: IPC must degrade monotonically as memory gets
// slower, all else equal.
func TestStatsSaneAcrossMemories(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	var prev float64 = 1e9
	for _, mc := range []int{0, 100, 400, 1000} {
		cfg := R10K64()
		if mc == 0 {
			cfg.Mem.MemLatency = 0
			cfg.Mem.L2Size = 0 // perfect L2
		} else {
			cfg.Mem.MemLatency = mc
		}
		g := workload.MustNew("lucas")
		p := New(cfg)
		p.Hierarchy().Warm(g.WarmRanges())
		ipc := p.Run(g, 5000, 20000).IPC()
		if ipc > prev*1.02 {
			t.Errorf("IPC rose (%.3f -> %.3f) as memory slowed to %d cycles", prev, ipc, mc)
		}
		prev = ipc
	}
}
