package ooo

import (
	"dkip/internal/isa"
	"dkip/internal/trace"
)

// Runahead execution (Dundas & Mudge [23]; Mutlu, Stark, Wilkerson & Patt
// [24]) is the paper's related-work alternative to large instruction
// windows: when an off-chip miss blocks the head of a small ROB, the
// processor checkpoints, pseudo-retires the miss, and keeps executing
// speculatively — not to commit results, but to turn the loads it encounters
// into prefetches. When the original miss returns, everything speculative is
// squashed and fetch restarts from the checkpoint with warmer caches.
//
// This model captures runahead's architectural effect in a trace-driven
// setting: while the ROB is blocked by a memory-level load at its head, the
// front end scans ahead in the instruction stream (up to Config.
// RunaheadDepth instructions) and issues prefetches for the loads it finds.
// Pointer-chasing loads (whose address depends on the very data being
// missed) cannot be prefetched — the fundamental limit of runahead that the
// KILO-instruction literature points out, reproduced here via the trace's
// ChainLoad marker. Scanned instructions are buffered and replayed to the
// normal pipeline afterwards, so the architectural stream is unchanged.
//
// Enable it with Config.RunaheadDepth > 0 on any ooo configuration; the
// ablation experiment "ablation-runahead" compares R10-64, R10-64+runahead
// and the D-KIP.

// runaheadState holds the replay buffer threading scanned instructions back
// into the front end.
type runaheadState struct {
	replay     []isa.Instr
	pos        int
	lastSeq    uint64 // the blocking load already scanned for (one episode per miss)
	episodes   uint64
	prefetches uint64
}

// pullNext returns the next front-end instruction, consuming the runahead
// replay buffer before advancing the generator.
func (p *Processor) pullNext(g trace.Generator) isa.Instr {
	ra := &p.ra
	if ra.pos < len(ra.replay) {
		in := ra.replay[ra.pos]
		ra.pos++
		if ra.pos == len(ra.replay) {
			ra.replay = ra.replay[:0]
			ra.pos = 0
		}
		return in
	}
	return g.Next()
}

// maybeRunahead triggers one runahead episode if the commit head is blocked
// by an outstanding memory-level load. It scans ahead in the stream,
// prefetching every regular load, and leaves the scanned instructions in the
// replay buffer for ordinary execution afterwards.
func (p *Processor) maybeRunahead(g trace.Generator) {
	if p.cfg.RunaheadDepth <= 0 || p.commitSeq >= p.RenameSeq {
		return
	}
	head := p.Win.Get(p.commitSeq)
	if head.Done || head.In.Op != isa.Load || !head.Issued {
		return
	}
	if head.MemLatency < p.cfg.Mem.MemLatency || p.cfg.Mem.MemLatency == 0 {
		return // only off-chip misses trigger runahead
	}
	ra := &p.ra
	if ra.lastSeq == head.Seq {
		return // one episode per blocking miss
	}
	ra.lastSeq = head.Seq
	ra.episodes++

	// Scan ahead. Instructions already buffered (from a previous episode)
	// are re-scanned only past the current replay position.
	scanned := 0
	for i := ra.pos; i < len(ra.replay) && scanned < p.cfg.RunaheadDepth; i++ {
		p.runaheadPrefetch(ra.replay[i])
		scanned++
	}
	for scanned < p.cfg.RunaheadDepth {
		in := g.Next()
		//dkip:alloc-ok replay buffer grows to RunaheadDepth once, then recycles
		ra.replay = append(ra.replay, in)
		p.runaheadPrefetch(in)
		scanned++
	}
}

// runaheadPrefetch issues the prefetch a runahead pass would generate for
// one scanned instruction. Chain loads are invalid in runahead mode: their
// address derives from the missing data.
func (p *Processor) runaheadPrefetch(in isa.Instr) {
	if in.Op != isa.Load || in.ChainLoad {
		return
	}
	p.Hier.Access(in.Addr)
	p.ra.prefetches++
}

// RunaheadEpisodes reports how many runahead episodes were triggered.
func (p *Processor) RunaheadEpisodes() uint64 { return p.ra.episodes }

// RunaheadPrefetches reports how many prefetches runahead issued.
func (p *Processor) RunaheadPrefetches() uint64 { return p.ra.prefetches }
