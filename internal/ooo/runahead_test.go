package ooo

import (
	"testing"

	"dkip/internal/workload"
)

func runaheadIPC(t *testing.T, bench string, depth int) (ipc float64, episodes, prefetches uint64) {
	t.Helper()
	g := workload.MustNew(bench)
	cfg := R10K64()
	cfg.RunaheadDepth = depth
	p := New(cfg)
	p.Hierarchy().Warm(g.WarmRanges())
	st := p.Run(g, 10000, 40000)
	return st.IPC(), p.RunaheadEpisodes(), p.RunaheadPrefetches()
}

func TestRunaheadHelpsStreamingFP(t *testing.T) {
	base, _, _ := runaheadIPC(t, "applu", 0)
	ra, episodes, prefetches := runaheadIPC(t, "applu", 256)
	if episodes == 0 || prefetches == 0 {
		t.Fatalf("runahead never triggered: episodes=%d prefetches=%d", episodes, prefetches)
	}
	if ra < 1.3*base {
		t.Errorf("runahead (%.3f) should clearly help the 64-entry core (%.3f) on streaming FP", ra, base)
	}
}

func TestRunaheadCannotChasePointers(t *testing.T) {
	base, _, _ := runaheadIPC(t, "mcf", 0)
	ra, episodes, _ := runaheadIPC(t, "mcf", 256)
	if episodes == 0 {
		t.Fatal("runahead never triggered on mcf")
	}
	// Chain loads are unprefetchable; gains must be modest compared with
	// the streaming case (mcf's misses are mostly chained).
	if ra > 2.2*base {
		t.Errorf("runahead gained %.2fx on mcf; pointer chains should bound it", ra/base)
	}
}

func TestRunaheadInactiveOnCacheResident(t *testing.T) {
	base, _, _ := runaheadIPC(t, "gzip", 0)
	ra, _, prefetches := runaheadIPC(t, "gzip", 256)
	if prefetches > 1000 {
		t.Errorf("runahead issued %d prefetches on a cache-resident code", prefetches)
	}
	if r := ra / base; r < 0.95 || r > 1.05 {
		t.Errorf("runahead should be neutral on gzip: %.3f vs %.3f", ra, base)
	}
}

func TestRunaheadArchitecturallyTransparent(t *testing.T) {
	// The replayed stream must commit exactly the same instruction count.
	_, st := func() (*Processor, uint64) {
		g := workload.MustNew("swim")
		cfg := R10K64()
		cfg.RunaheadDepth = 128
		p := New(cfg)
		p.Hierarchy().Warm(g.WarmRanges())
		s := p.Run(g, 0, 20000)
		return p, s.Committed
	}()
	if st < 20000 {
		t.Errorf("committed %d with runahead enabled", st)
	}
}
