package ooo

import (
	"fmt"

	"dkip/internal/ckpt"
	"dkip/internal/trace"
)

// WarmFunctional advances the processor's architectural state — caches and
// branch predictor — by n instructions of g without simulating the pipeline.
// internal/sample uses this as the fast-forward mode between detailed
// measurement intervals.
func (p *Processor) WarmFunctional(g trace.Generator, n uint64) {
	ckpt.WarmFunctional(p.hier, p.bp, nil, g, n)
}

// CaptureArch snapshots the architectural state into a checkpoint at stream
// position pos of workload bench. It fails when the configured predictor
// does not implement predictor.Stateful (custom constructors may not).
func (p *Processor) CaptureArch(bench string, pos uint64) (*ckpt.Checkpoint, error) {
	pred, err := p.bp.SaveState()
	if err != nil {
		return nil, err
	}
	return &ckpt.Checkpoint{
		Bench:    bench,
		Pos:      pos,
		Hier:     p.hier.State(),
		PredName: p.bp.Name(),
		Pred:     pred,
	}, nil
}

// RestoreArch loads a checkpoint captured by CaptureArch. Any confidence
// section is ignored: this engine family has no estimator. The caller still
// owns positioning the generator at c.Pos.
func (p *Processor) RestoreArch(c *ckpt.Checkpoint) error {
	if c.PredName != p.bp.Name() {
		return fmt.Errorf("ooo: checkpoint predictor %q does not match %q", c.PredName, p.bp.Name())
	}
	if err := p.hier.SetState(c.Hier); err != nil {
		return err
	}
	return p.bp.LoadState(c.Pred)
}
