// Package pipeline provides the microarchitectural building blocks shared by
// every processor model in this repository: the dynamic-instruction window,
// register scoreboard, issue queues (out-of-order wakeup/select and in-order),
// functional-unit pools, completion event queue, and statistics.
//
// The models are cycle-driven and trace-driven: each cycle they commit,
// complete, issue, rename and fetch, in that order, over DynInst records that
// wrap the trace's isa.Instr with timing bookkeeping.
package pipeline

import (
	"fmt"

	"dkip/internal/isa"
	"dkip/internal/mem"
)

// QueueID identifies which issue queue holds a waiting instruction.
type QueueID int8

// Queue identifiers used by the processor models.
const (
	// QNone marks an instruction not resident in any issue queue.
	QNone QueueID = iota
	// QInt is the integer issue queue.
	QInt
	// QFP is the floating-point issue queue.
	QFP
	// QSLIQ is the Slow Lane Instruction Queue of the KILO baseline.
	QSLIQ
	// QLLIB marks residence in a D-KIP Low Locality Instruction Buffer.
	QLLIB
	// QMPInt is the D-KIP integer Memory Processor's reservation stations.
	QMPInt
	// QMPFP is the D-KIP floating-point Memory Processor's reservation
	// stations.
	QMPFP
)

// NoProducer marks an operand with no in-flight producer at rename time.
const NoProducer = ^uint64(0)

// DynInst is one in-flight dynamic instruction. Processor models allocate
// them from a Window keyed by sequence number.
type DynInst struct {
	// Seq is the global dynamic sequence number (program order).
	Seq uint64
	// In is the architectural instruction from the trace.
	In isa.Instr

	// Timing, in cycles. A value of -1 means "not yet".
	FetchCycle, RenameCycle, IssueCycle, CompleteCycle int64

	// Pending is the number of source operands still being produced.
	Pending int8
	// Queue is the issue queue currently holding the instruction.
	Queue QueueID
	// Issued is set once the instruction has left its issue queue.
	Issued bool
	// Done is set when execution completes (result available).
	Done bool
	// Mispred marks a branch the front end predicted incorrectly.
	Mispred bool
	// LowConf marks a branch predicted with low confidence (JRS
	// estimator); checkpoint policies may anchor recovery points on it.
	LowConf bool
	// MemLevel records which level satisfied a load.
	MemLevel mem.Level
	// MemLatency is the load latency observed from the hierarchy.
	MemLatency int

	// Consumers lists sequence numbers of dispatched instructions
	// waiting on this instruction's result. The slice's capacity is
	// reused across window generations.
	Consumers []uint64

	// Prod1 and Prod2 record the in-flight producers of the two source
	// operands as captured at rename, or NoProducer. The D-KIP Analyze
	// stage walks them to classify execution locality (they are the
	// hardware's Low Locality Bit Vector lookup).
	Prod1, Prod2 uint64

	// Fields used by the D-KIP model (kept here so one arena serves all
	// models):

	// LowLocality marks an instruction classified by Analyze as
	// depending on a long-latency event (moved to the LLIB).
	LowLocality bool
	// ReadyOp is the READY source operand captured into the LLRF at
	// LLIB insertion, or RegNone.
	ReadyOp isa.Reg
	// LLRFBank is the LLRF bank holding ReadyOp, or -1.
	LLRFBank int8
}

// reset reinitializes an entry for a new dynamic instruction, keeping the
// Consumers slice capacity.
func (d *DynInst) reset(seq uint64, in isa.Instr) {
	c := d.Consumers[:0]
	*d = DynInst{
		Seq: seq, In: in,
		FetchCycle: -1, RenameCycle: -1, IssueCycle: -1, CompleteCycle: -1,
		Consumers: c,
		Prod1:     NoProducer, Prod2: NoProducer,
		LLRFBank: -1,
		ReadyOp:  isa.RegNone,
	}
	// Normalize: an operation without a destination must not appear to
	// define a register, whatever the trace put in the Dest field.
	if !in.Op.HasDest() {
		d.In.Dest = isa.RegNone
	}
}

// IsFPClass reports whether the instruction belongs to the floating-point
// cluster for queue routing: FP arithmetic, and loads/stores of FP registers.
func (d *DynInst) IsFPClass() bool {
	if d.In.Op.IsFP() {
		return true
	}
	if d.In.Op == isa.Load {
		return d.In.Dest.IsFP()
	}
	return false
}

// Window is a power-of-two arena of DynInst records indexed by sequence
// number. The caller guarantees at most Capacity instructions are in flight.
type Window struct {
	entries []DynInst
	mask    uint64
}

// consumersPrealloc is the per-entry Consumers capacity carved out of one
// shared backing array at construction. Most instructions have at most a
// few direct consumers; pre-seeding the capacity keeps the first window
// generation from paying a grow-from-nil allocation per entry.
const consumersPrealloc = 4

// NewWindow builds an arena with capacity at least minCap (rounded up to a
// power of two).
func NewWindow(minCap int) *Window {
	if minCap <= 0 {
		panic("pipeline: NewWindow with non-positive capacity")
	}
	n := 64
	for n < minCap {
		n <<= 1
	}
	w := &Window{entries: make([]DynInst, n), mask: uint64(n - 1)}
	backing := make([]uint64, n*consumersPrealloc)
	for i := range w.entries {
		// Three-index slicing caps each entry's slice so growth past the
		// preallocated region reallocates instead of overwriting a
		// neighbor's.
		w.entries[i].Consumers = backing[i*consumersPrealloc : i*consumersPrealloc : (i+1)*consumersPrealloc]
	}
	return w
}

// Capacity returns the arena capacity.
func (w *Window) Capacity() int { return len(w.entries) }

// Get returns the entry for seq. The entry is only meaningful between
// Alloc(seq) and the retirement of seq.
//
//dkip:hotpath
func (w *Window) Get(seq uint64) *DynInst {
	return &w.entries[seq&w.mask]
}

// Alloc initializes and returns the entry for seq. It panics if the slot
// still belongs to a live instruction — that means the model let more than
// Capacity instructions into flight, a bug worth failing loudly on.
//
//dkip:hotpath
func (w *Window) Alloc(seq uint64, in isa.Instr, inFlight int) *DynInst {
	if inFlight >= len(w.entries) {
		panic(fmt.Sprintf("pipeline: window overflow: %d in flight, capacity %d", inFlight, len(w.entries)))
	}
	e := &w.entries[seq&w.mask]
	e.reset(seq, in)
	return e
}
