package pipeline

import "dkip/internal/isa"

// FUConfig gives the number of functional units per class, mirroring
// Table 2: 4 ALUs, 1 integer multiplier, 4 FP adders, 1 FP multiplier/divider.
type FUConfig struct {
	ALU      int // integer ALU: IntALU, Branch, Nop, and address generation
	IntMul   int
	FPAdd    int
	FPMulDiv int // shared multiplier/divider; divides occupy it unpipelined
}

// DefaultFUConfig returns Table 2's functional-unit complement.
func DefaultFUConfig() FUConfig {
	return FUConfig{ALU: 4, IntMul: 1, FPAdd: 4, FPMulDiv: 1}
}

// WideFUConfig returns an abundant complement used for the limit studies of
// Figures 1–3, where only the ROB may cause stalls.
func WideFUConfig() FUConfig {
	return FUConfig{ALU: 8, IntMul: 4, FPAdd: 8, FPMulDiv: 4}
}

// FUPool arbitrates functional units cycle by cycle. Pipelined classes admit
// one new operation per unit per cycle; the FP divider holds its unit for the
// full operation latency.
type FUPool struct {
	cfg FUConfig

	cycle       int64
	usedALU     int
	usedIntMul  int
	usedFPAdd   int
	usedFPMul   int
	divBusyTill []int64 // per FPMulDiv unit
}

// NewFUPool builds a pool from the configuration. Zero-valued unit counts
// are treated as 1 to keep degenerate configs runnable.
func NewFUPool(cfg FUConfig) *FUPool {
	if cfg.ALU <= 0 {
		cfg.ALU = 1
	}
	if cfg.IntMul <= 0 {
		cfg.IntMul = 1
	}
	if cfg.FPAdd <= 0 {
		cfg.FPAdd = 1
	}
	if cfg.FPMulDiv <= 0 {
		cfg.FPMulDiv = 1
	}
	return &FUPool{cfg: cfg, divBusyTill: make([]int64, cfg.FPMulDiv)}
}

// NewCycle resets per-cycle usage counters; call once per simulated cycle.
//
//dkip:hotpath
func (f *FUPool) NewCycle(cycle int64) {
	f.cycle = cycle
	f.usedALU = 0
	f.usedIntMul = 0
	f.usedFPAdd = 0
	f.usedFPMul = 0
}

// TryIssue claims a unit for op in the current cycle, returning false when
// all units of the class are busy.
//
//dkip:hotpath
func (f *FUPool) TryIssue(op isa.Op) bool {
	switch op {
	case isa.Nop, isa.IntALU, isa.Branch, isa.Load, isa.Store:
		if f.usedALU >= f.cfg.ALU {
			return false
		}
		f.usedALU++
		return true
	case isa.IntMul:
		if f.usedIntMul >= f.cfg.IntMul {
			return false
		}
		f.usedIntMul++
		return true
	case isa.FPAdd:
		if f.usedFPAdd >= f.cfg.FPAdd {
			return false
		}
		f.usedFPAdd++
		return true
	case isa.FPMul:
		// Pipelined issue, but the unit must not be held by a divide.
		for i := range f.divBusyTill {
			if f.divBusyTill[i] <= f.cycle {
				if f.usedFPMul >= f.cfg.FPMulDiv {
					return false
				}
				f.usedFPMul++
				return true
			}
		}
		return false
	case isa.FPDiv:
		for i := range f.divBusyTill {
			if f.divBusyTill[i] <= f.cycle {
				f.divBusyTill[i] = f.cycle + int64(isa.FPDiv.Latency())
				return true
			}
		}
		return false
	}
	return true
}

// Reset clears all unit state.
func (f *FUPool) Reset() {
	f.NewCycle(0)
	for i := range f.divBusyTill {
		f.divBusyTill[i] = 0
	}
}
