package pipeline

import (
	"testing"
	"testing/quick"

	"dkip/internal/isa"
)

func TestWindowAllocGet(t *testing.T) {
	w := NewWindow(100) // rounds up to 128
	if w.Capacity() < 100 {
		t.Fatalf("capacity %d < 100", w.Capacity())
	}
	in := isa.Instr{Op: isa.IntALU, Dest: isa.IntReg(1), Src1: isa.IntReg(2)}
	e := w.Alloc(5, in, 1)
	if e.Seq != 5 || e.In.Op != isa.IntALU {
		t.Error("alloc did not initialize entry")
	}
	if e.FetchCycle != -1 || e.IssueCycle != -1 {
		t.Error("timing fields should start at -1")
	}
	if e.Prod1 != NoProducer || e.Prod2 != NoProducer {
		t.Error("producers should start empty")
	}
	if e.ReadyOp != isa.RegNone || e.LLRFBank != -1 {
		t.Error("LLRF fields should start empty")
	}
	if w.Get(5) != e {
		t.Error("Get returned a different entry")
	}
}

func TestWindowReusesConsumerCapacity(t *testing.T) {
	w := NewWindow(64)
	e := w.Alloc(1, isa.Instr{}, 1)
	e.Consumers = append(e.Consumers, 2, 3, 4)
	e2 := w.Alloc(1+uint64(w.Capacity()), isa.Instr{}, 1)
	if len(e2.Consumers) != 0 {
		t.Error("consumers not cleared on reuse")
	}
}

func TestWindowOverflowPanics(t *testing.T) {
	w := NewWindow(64)
	defer func() {
		if recover() == nil {
			t.Error("overflow should panic")
		}
	}()
	w.Alloc(0, isa.Instr{}, w.Capacity())
}

func TestScoreboard(t *testing.T) {
	sb := NewScoreboard()
	r := isa.IntReg(3)
	if _, busy := sb.Lookup(r); busy {
		t.Error("fresh register should be ready")
	}
	sb.Define(r, 10)
	if prod, busy := sb.Lookup(r); !busy || prod != 10 {
		t.Error("lookup after define wrong")
	}
	sb.Complete(r, 10)
	if _, busy := sb.Lookup(r); busy {
		t.Error("completion should clear")
	}
}

func TestScoreboardSupersede(t *testing.T) {
	sb := NewScoreboard()
	r := isa.IntReg(3)
	sb.Define(r, 10)
	sb.Define(r, 20) // younger writer supersedes
	sb.Complete(r, 10)
	if prod, busy := sb.Lookup(r); !busy || prod != 20 {
		t.Error("old completion must not clear younger definition")
	}
	sb.Complete(r, 20)
	if _, busy := sb.Lookup(r); busy {
		t.Error("younger completion should clear")
	}
}

func TestScoreboardIgnoresInvalidReg(t *testing.T) {
	sb := NewScoreboard()
	sb.Define(isa.RegNone, 1)
	if _, busy := sb.Lookup(isa.RegNone); busy {
		t.Error("RegNone should never be busy")
	}
	if sb.PendingCount() != 0 {
		t.Error("pending count should be 0")
	}
}

func mkReady(w *Window, seq uint64) {
	e := w.Alloc(seq, isa.Instr{Op: isa.IntALU, Dest: isa.IntReg(1)}, 1)
	e.Pending = 0
}

func TestIssueQueueOldestFirst(t *testing.T) {
	w := NewWindow(64)
	q := NewIssueQueue(QInt, 8, false, w)
	for _, seq := range []uint64{5, 2, 9, 1} {
		mkReady(w, seq)
		q.Insert(seq, true)
	}
	want := []uint64{1, 2, 5, 9}
	for _, x := range want {
		got, ok := q.Pop()
		if !ok || got != x {
			t.Fatalf("pop = %d,%v want %d", got, ok, x)
		}
		w.Get(got).Issued = true
	}
	if _, ok := q.Pop(); ok {
		t.Error("empty queue popped")
	}
}

func TestIssueQueueWakeup(t *testing.T) {
	w := NewWindow(64)
	q := NewIssueQueue(QInt, 8, false, w)
	e := w.Alloc(1, isa.Instr{Op: isa.IntALU}, 1)
	e.Pending = 1
	q.Insert(1, false)
	if _, ok := q.Pop(); ok {
		t.Error("non-ready instruction popped")
	}
	e.Pending = 0
	q.Wake(1)
	if got, ok := q.Pop(); !ok || got != 1 {
		t.Error("woken instruction not popped")
	}
}

func TestIssueQueueInOrderHeadBlocking(t *testing.T) {
	w := NewWindow(64)
	q := NewIssueQueue(QInt, 8, true, w)
	head := w.Alloc(1, isa.Instr{Op: isa.IntALU}, 1)
	head.Pending = 1
	q.Insert(1, false)
	mkReady(w, 2)
	q.Insert(2, true)
	if _, ok := q.Pop(); ok {
		t.Error("in-order queue issued past a blocked head")
	}
	head.Pending = 0
	if got, ok := q.Pop(); !ok || got != 1 {
		t.Error("head not issued once ready")
	}
	if got, ok := q.Pop(); !ok || got != 2 {
		t.Error("second entry not issued after head")
	}
}

func TestIssueQueueUnpop(t *testing.T) {
	for _, inOrder := range []bool{false, true} {
		w := NewWindow(64)
		q := NewIssueQueue(QInt, 8, inOrder, w)
		mkReady(w, 1)
		mkReady(w, 2)
		q.Insert(1, true)
		q.Insert(2, true)
		seq, _ := q.Pop()
		q.Unpop(seq)
		if got, ok := q.Pop(); !ok || got != seq {
			t.Errorf("inOrder=%v: unpop did not restore order: got %d want %d", inOrder, got, seq)
		}
	}
}

func TestIssueQueueCapacity(t *testing.T) {
	w := NewWindow(64)
	q := NewIssueQueue(QInt, 2, false, w)
	mkReady(w, 1)
	mkReady(w, 2)
	q.Insert(1, true)
	q.Insert(2, true)
	if !q.Full() {
		t.Error("queue should be full")
	}
	defer func() {
		if recover() == nil {
			t.Error("insert into full queue should panic")
		}
	}()
	q.Insert(3, true)
}

func TestIssueQueueMigrationStaleSkip(t *testing.T) {
	w := NewWindow(64)
	q := NewIssueQueue(QInt, 8, false, w)
	sliq := NewIssueQueue(QSLIQ, 8, false, w)
	e := w.Alloc(1, isa.Instr{Op: isa.IntALU}, 1)
	e.Pending = 1
	q.Insert(1, false)
	// Migrate to the SLIQ: release capacity, re-stamp.
	q.RemoveWaiting()
	sliq.Insert(1, false)
	if q.Len() != 0 {
		t.Errorf("queue len %d after migration", q.Len())
	}
	e.Pending = 0
	q.Wake(1) // stale wakeup in the old queue must be ignored
	if _, ok := q.Pop(); ok {
		t.Error("old queue popped a migrated instruction")
	}
	sliq.Wake(1)
	if got, ok := sliq.Pop(); !ok || got != 1 {
		t.Error("SLIQ did not pop the migrated instruction")
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var ev EventQueue
	ev.Schedule(10, 3)
	ev.Schedule(5, 1)
	ev.Schedule(10, 2)
	if c, ok := ev.NextCycle(); !ok || c != 5 {
		t.Fatalf("next cycle %d", c)
	}
	if _, ok := ev.PopDue(4); ok {
		t.Error("popped before due")
	}
	if seq, ok := ev.PopDue(5); !ok || seq != 1 {
		t.Error("first event wrong")
	}
	// Same-cycle events pop in sequence order.
	if seq, ok := ev.PopDue(10); !ok || seq != 2 {
		t.Error("tie-break by seq failed")
	}
	if seq, ok := ev.PopDue(10); !ok || seq != 3 {
		t.Error("second tie event wrong")
	}
	if ev.Len() != 0 {
		t.Error("queue not drained")
	}
}

func TestEventQueueProperty(t *testing.T) {
	// Events always pop in nondecreasing cycle order.
	err := quick.Check(func(cycles []uint16) bool {
		var ev EventQueue
		for i, c := range cycles {
			ev.Schedule(int64(c), uint64(i))
		}
		last := int64(-1)
		for range cycles {
			c, _ := ev.NextCycle()
			if c < last {
				return false
			}
			last = c
			ev.PopDue(c)
		}
		return ev.Len() == 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestFUPoolLimits(t *testing.T) {
	fu := NewFUPool(FUConfig{ALU: 2, IntMul: 1, FPAdd: 1, FPMulDiv: 1})
	fu.NewCycle(0)
	if !fu.TryIssue(isa.IntALU) || !fu.TryIssue(isa.Load) {
		t.Error("two ALU-class issues should fit")
	}
	if fu.TryIssue(isa.Branch) {
		t.Error("third ALU-class issue should fail")
	}
	fu.NewCycle(1)
	if !fu.TryIssue(isa.IntALU) {
		t.Error("new cycle should reset usage")
	}
	if !fu.TryIssue(isa.IntMul) || fu.TryIssue(isa.IntMul) {
		t.Error("IntMul limit wrong")
	}
}

func TestFUPoolDivUnpipelined(t *testing.T) {
	fu := NewFUPool(FUConfig{ALU: 1, IntMul: 1, FPAdd: 1, FPMulDiv: 1})
	fu.NewCycle(0)
	if !fu.TryIssue(isa.FPDiv) {
		t.Fatal("divide should issue")
	}
	// The shared unit is busy for the divide latency.
	for c := int64(1); c < int64(isa.FPDiv.Latency()); c++ {
		fu.NewCycle(c)
		if fu.TryIssue(isa.FPMul) {
			t.Fatalf("multiply issued at cycle %d while divider busy", c)
		}
		if fu.TryIssue(isa.FPDiv) {
			t.Fatalf("second divide issued at cycle %d", c)
		}
	}
	fu.NewCycle(int64(isa.FPDiv.Latency()))
	if !fu.TryIssue(isa.FPMul) {
		t.Error("multiply should issue after divide completes")
	}
}

func TestFUPoolMulPipelined(t *testing.T) {
	fu := NewFUPool(DefaultFUConfig())
	fu.NewCycle(0)
	if !fu.TryIssue(isa.FPMul) {
		t.Fatal("first multiply")
	}
	fu.NewCycle(1)
	if !fu.TryIssue(isa.FPMul) {
		t.Error("pipelined multiplier should accept one per cycle")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(410)
	h.Observe(810)
	h.Observe(5000) // overflow bucket
	h.Observe(-3)   // clamped to 0
	if h.Total != 5 {
		t.Fatalf("total %d", h.Total)
	}
	if h.FracRange(0, 100) != 0.4 { // 10 and clamped -3
		t.Errorf("frac[0,100) = %v", h.FracRange(0, 100))
	}
	if h.FracRange(400, 500) != 0.2 {
		t.Errorf("frac[400,500) = %v", h.FracRange(400, 500))
	}
	if h.Buckets[len(h.Buckets)-1] != 1 {
		t.Error("overflow bucket not used")
	}
	if h.String() == "" {
		t.Error("histogram string empty")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := &Stats{Cycles: 100, Committed: 250, Branches: 10, Mispredicts: 2}
	if s.IPC() != 2.5 {
		t.Errorf("IPC %v", s.IPC())
	}
	if s.MispredictRate() != 0.2 {
		t.Errorf("mispredict rate %v", s.MispredictRate())
	}
	s.LoadLevel = [3]uint64{50, 25, 25}
	if s.MemoryLoadFrac() != 0.25 {
		t.Errorf("memory frac %v", s.MemoryLoadFrac())
	}
	s.CPCommitted, s.MPCommitted = 75, 25
	if s.CPFraction() != 0.75 {
		t.Errorf("CP fraction %v", s.CPFraction())
	}
	if s.String() == "" {
		t.Error("stats string empty")
	}
	var zero Stats
	if zero.IPC() != 0 || zero.MispredictRate() != 0 || zero.MemoryLoadFrac() != 0 || zero.CPFraction() != 0 {
		t.Error("zero stats should yield zero ratios")
	}
}

func TestIsFPClass(t *testing.T) {
	cases := []struct {
		in   isa.Instr
		want bool
	}{
		{isa.Instr{Op: isa.FPAdd}, true},
		{isa.Instr{Op: isa.FPMul}, true},
		{isa.Instr{Op: isa.IntALU}, false},
		{isa.Instr{Op: isa.Load, Dest: isa.FPReg(1)}, true},
		{isa.Instr{Op: isa.Load, Dest: isa.IntReg(1)}, false},
		{isa.Instr{Op: isa.Store}, false},
	}
	for _, c := range cases {
		d := DynInst{In: c.in}
		if d.IsFPClass() != c.want {
			t.Errorf("IsFPClass(%v) = %v", c.in.Op, d.IsFPClass())
		}
	}
}
