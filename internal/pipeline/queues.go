package pipeline

// The heaps below are hand-rolled rather than container/heap adapters on
// purpose: heap.Push and heap.Pop traffic in interface{}, which boxes every
// uint64 sequence number and every event struct onto the heap — one
// allocation per EventQueue.Schedule and per IssueQueue wakeup, i.e. per
// dynamic instruction. The sift loops are the textbook ones; pop order is
// identical to container/heap's for the unique keys used here, so the
// rewrite is behavior-invariant.

// seqHeap is a min-heap of sequence numbers: oldest-first selection.
type seqHeap []uint64

//dkip:hotpath
func (h *seqHeap) push(v uint64) {
	//dkip:alloc-ok amortized heap growth, bounded by window size and reused across cycles
	s := append(*h, v)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
	*h = s
}

//dkip:hotpath
func (h *seqHeap) pop() uint64 {
	s := *h
	v := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= len(s) {
			break
		}
		m := l
		if r := l + 1; r < len(s) && s[r] < s[l] {
			m = r
		}
		if s[i] <= s[m] {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return v
}

// IssueQueue models a reservation-station pool. In out-of-order mode any
// ready instruction may issue, oldest first (wakeup/select over a CAM). In
// in-order mode only the oldest instruction may issue — the cheap FIFO
// scheduler evaluated for the Cache and Memory Processors in Figure 10.
type IssueQueue struct {
	id      QueueID
	cap     int
	inOrder bool

	size  int
	ready seqHeap // out-of-order mode: ready, waiting to be selected
	fifo  Ring64  // in-order mode: all resident instructions, oldest first
	win   *Window
}

// NewIssueQueue builds a queue with the given identity and capacity. Insert
// stamps each instruction's Queue field with the identity; an instruction
// whose Queue no longer matches (it migrated to another structure) is treated
// as stale and skipped by Pop.
func NewIssueQueue(id QueueID, capacity int, inOrder bool, win *Window) *IssueQueue {
	if capacity <= 0 {
		panic("pipeline: issue queue capacity must be positive")
	}
	return &IssueQueue{id: id, cap: capacity, inOrder: inOrder, win: win}
}

// ID returns the queue's identity.
func (q *IssueQueue) ID() QueueID { return q.id }

// Cap returns the queue capacity.
func (q *IssueQueue) Cap() int { return q.cap }

// Len returns the number of resident (dispatched, un-issued) instructions.
func (q *IssueQueue) Len() int { return q.size }

// Full reports whether another instruction can be dispatched into the queue.
func (q *IssueQueue) Full() bool { return q.size >= q.cap }

// InOrder reports the scheduling policy.
func (q *IssueQueue) InOrder() bool { return q.inOrder }

// Insert dispatches an instruction into the queue, stamping its Queue field.
// ready indicates all its sources are already available.
//
//dkip:hotpath
func (q *IssueQueue) Insert(seq uint64, ready bool) {
	if q.Full() {
		panic("pipeline: insert into full issue queue")
	}
	q.win.Get(seq).Queue = q.id
	q.size++
	if q.inOrder {
		// In-order Pop re-checks head readiness, so ready is implicit.
		q.fifo.PushBack(seq)
		return
	}
	if ready {
		q.ready.push(seq)
	}
}

// Wake notifies the queue that seq's operands became ready. Only meaningful
// in out-of-order mode; the in-order queue re-checks its head on Pop.
//
//dkip:hotpath
func (q *IssueQueue) Wake(seq uint64) {
	if !q.inOrder {
		q.ready.push(seq)
	}
}

// Pop selects the next instruction to issue, oldest-first among the eligible,
// or returns false if none is eligible this cycle.
//
//dkip:hotpath
func (q *IssueQueue) Pop() (uint64, bool) {
	if q.inOrder {
		for q.fifo.Len() > 0 {
			seq := q.fifo.Front()
			e := q.win.Get(seq)
			if e.Issued || e.Seq != seq || e.Queue != q.id {
				// Stale entry (migrated or already gone); its size
				// contribution was released when it left.
				q.fifo.PopFront()
				continue
			}
			if e.Pending > 0 {
				return 0, false // head not ready: in-order stall
			}
			q.fifo.PopFront()
			q.size--
			return seq, true
		}
		return 0, false
	}
	for len(q.ready) > 0 {
		seq := q.ready.pop()
		e := q.win.Get(seq)
		if e.Issued || e.Seq != seq || e.Queue != q.id || e.Pending > 0 {
			continue // stale wakeup
		}
		q.size--
		return seq, true
	}
	return 0, false
}

// RemoveWaiting releases the capacity of a resident instruction that is
// migrating to another structure (SLIQ or LLIB). The caller must ensure the
// instruction has not been woken and must re-stamp its Queue field (normally
// by inserting it elsewhere); the stale reference left behind is skipped by
// Pop.
//
//dkip:hotpath
func (q *IssueQueue) RemoveWaiting() {
	if q.size == 0 {
		panic("pipeline: RemoveWaiting on empty queue")
	}
	q.size--
}

// Unpop reinserts an instruction whose issue was blocked by a structural
// hazard (functional unit or memory port busy); it stays eligible. In
// in-order mode it becomes the head of the FIFO again in O(1) — under
// memory-port pressure Unpop runs once per blocked issue attempt, so a
// shift-everything prepend would be quadratic in queue occupancy.
//
//dkip:hotpath
func (q *IssueQueue) Unpop(seq uint64) {
	q.size++
	if q.inOrder {
		q.fifo.PushFront(seq)
		return
	}
	q.ready.push(seq)
}

// Reset empties the queue.
func (q *IssueQueue) Reset() {
	q.size = 0
	q.ready = q.ready[:0]
	q.fifo.Reset()
}

// EventQueue schedules instruction completions by cycle.
type EventQueue struct {
	h eventHeap
}

type event struct {
	cycle int64
	seq   uint64
}

// eventHeap is a min-heap of events ordered by (cycle, seq). The (cycle,
// seq) pairs are unique — a sequence number has at most one completion in
// flight — so pop order is a total order independent of heap layout.
type eventHeap []event

func (a event) less(b event) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.seq < b.seq
}

//dkip:hotpath
func (h *eventHeap) push(v event) {
	//dkip:alloc-ok amortized heap growth, bounded by in-flight memory ops and reused across cycles
	s := append(*h, v)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].less(s[parent]) {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
	*h = s
}

//dkip:hotpath
func (h *eventHeap) pop() event {
	s := *h
	v := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= len(s) {
			break
		}
		m := l
		if r := l + 1; r < len(s) && s[r].less(s[l]) {
			m = r
		}
		if !s[m].less(s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return v
}

// Schedule enqueues seq to complete at the given cycle.
//
//dkip:hotpath
func (e *EventQueue) Schedule(cycle int64, seq uint64) {
	e.h.push(event{cycle, seq})
}

// PopDue removes and returns the next event due at or before cycle.
//
//dkip:hotpath
func (e *EventQueue) PopDue(cycle int64) (uint64, bool) {
	if len(e.h) == 0 || e.h[0].cycle > cycle {
		return 0, false
	}
	return e.h.pop().seq, true
}

// NextCycle returns the cycle of the earliest pending event.
//
//dkip:hotpath
func (e *EventQueue) NextCycle() (int64, bool) {
	if len(e.h) == 0 {
		return 0, false
	}
	return e.h[0].cycle, true
}

// Len returns the number of pending events.
func (e *EventQueue) Len() int { return len(e.h) }

// Reset discards all pending events.
func (e *EventQueue) Reset() { e.h = e.h[:0] }
