package pipeline

import "container/heap"

// seqHeap is a min-heap of sequence numbers: oldest-first selection.
type seqHeap []uint64

func (h seqHeap) Len() int            { return len(h) }
func (h seqHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h seqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *seqHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *seqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// IssueQueue models a reservation-station pool. In out-of-order mode any
// ready instruction may issue, oldest first (wakeup/select over a CAM). In
// in-order mode only the oldest instruction may issue — the cheap FIFO
// scheduler evaluated for the Cache and Memory Processors in Figure 10.
type IssueQueue struct {
	id      QueueID
	cap     int
	inOrder bool

	size  int
	ready seqHeap  // out-of-order mode: ready, waiting to be selected
	fifo  []uint64 // in-order mode: all resident instructions, oldest first
	win   *Window
}

// NewIssueQueue builds a queue with the given identity and capacity. Insert
// stamps each instruction's Queue field with the identity; an instruction
// whose Queue no longer matches (it migrated to another structure) is treated
// as stale and skipped by Pop.
func NewIssueQueue(id QueueID, capacity int, inOrder bool, win *Window) *IssueQueue {
	if capacity <= 0 {
		panic("pipeline: issue queue capacity must be positive")
	}
	return &IssueQueue{id: id, cap: capacity, inOrder: inOrder, win: win}
}

// ID returns the queue's identity.
func (q *IssueQueue) ID() QueueID { return q.id }

// Cap returns the queue capacity.
func (q *IssueQueue) Cap() int { return q.cap }

// Len returns the number of resident (dispatched, un-issued) instructions.
func (q *IssueQueue) Len() int { return q.size }

// Full reports whether another instruction can be dispatched into the queue.
func (q *IssueQueue) Full() bool { return q.size >= q.cap }

// InOrder reports the scheduling policy.
func (q *IssueQueue) InOrder() bool { return q.inOrder }

// Insert dispatches an instruction into the queue, stamping its Queue field.
// ready indicates all its sources are already available.
func (q *IssueQueue) Insert(seq uint64, ready bool) {
	if q.Full() {
		panic("pipeline: insert into full issue queue")
	}
	q.win.Get(seq).Queue = q.id
	q.size++
	if q.inOrder {
		// In-order Pop re-checks head readiness, so ready is implicit.
		q.fifo = append(q.fifo, seq)
		return
	}
	if ready {
		heap.Push(&q.ready, seq)
	}
}

// Wake notifies the queue that seq's operands became ready. Only meaningful
// in out-of-order mode; the in-order queue re-checks its head on Pop.
func (q *IssueQueue) Wake(seq uint64) {
	if !q.inOrder {
		heap.Push(&q.ready, seq)
	}
}

// Pop selects the next instruction to issue, oldest-first among the eligible,
// or returns false if none is eligible this cycle.
func (q *IssueQueue) Pop() (uint64, bool) {
	if q.inOrder {
		for len(q.fifo) > 0 {
			seq := q.fifo[0]
			e := q.win.Get(seq)
			if e.Issued || e.Seq != seq || e.Queue != q.id {
				// Stale entry (migrated or already gone); its size
				// contribution was released when it left.
				q.fifo = q.fifo[1:]
				continue
			}
			if e.Pending > 0 {
				return 0, false // head not ready: in-order stall
			}
			q.fifo = q.fifo[1:]
			q.size--
			return seq, true
		}
		return 0, false
	}
	for q.ready.Len() > 0 {
		seq := heap.Pop(&q.ready).(uint64)
		e := q.win.Get(seq)
		if e.Issued || e.Seq != seq || e.Queue != q.id || e.Pending > 0 {
			continue // stale wakeup
		}
		q.size--
		return seq, true
	}
	return 0, false
}

// RemoveWaiting releases the capacity of a resident instruction that is
// migrating to another structure (SLIQ or LLIB). The caller must ensure the
// instruction has not been woken and must re-stamp its Queue field (normally
// by inserting it elsewhere); the stale reference left behind is skipped by
// Pop.
func (q *IssueQueue) RemoveWaiting() {
	if q.size == 0 {
		panic("pipeline: RemoveWaiting on empty queue")
	}
	q.size--
}

// Unpop reinserts an instruction whose issue was blocked by a structural
// hazard (functional unit or memory port busy); it stays eligible.
func (q *IssueQueue) Unpop(seq uint64) {
	q.size++
	if q.inOrder {
		// Head of the FIFO again: prepend.
		q.fifo = append(q.fifo, 0)
		copy(q.fifo[1:], q.fifo)
		q.fifo[0] = seq
		return
	}
	heap.Push(&q.ready, seq)
}

// Reset empties the queue.
func (q *IssueQueue) Reset() {
	q.size = 0
	q.ready = q.ready[:0]
	q.fifo = q.fifo[:0]
}

// EventQueue schedules instruction completions by cycle.
type EventQueue struct {
	h eventHeap
}

type event struct {
	cycle int64
	seq   uint64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Schedule enqueues seq to complete at the given cycle.
func (e *EventQueue) Schedule(cycle int64, seq uint64) {
	heap.Push(&e.h, event{cycle, seq})
}

// PopDue removes and returns the next event due at or before cycle.
func (e *EventQueue) PopDue(cycle int64) (uint64, bool) {
	if len(e.h) == 0 || e.h[0].cycle > cycle {
		return 0, false
	}
	ev := heap.Pop(&e.h).(event)
	return ev.seq, true
}

// NextCycle returns the cycle of the earliest pending event.
func (e *EventQueue) NextCycle() (int64, bool) {
	if len(e.h) == 0 {
		return 0, false
	}
	return e.h[0].cycle, true
}

// Len returns the number of pending events.
func (e *EventQueue) Len() int { return len(e.h) }

// Reset discards all pending events.
func (e *EventQueue) Reset() { e.h = e.h[:0] }
