package pipeline

import (
	"container/heap"
	"testing"
	"testing/quick"
	"time"

	"dkip/internal/isa"
)

func mkALU() isa.Instr { return isa.Instr{Op: isa.IntALU, Dest: isa.IntReg(1)} }

// The reference implementations below are the container/heap adapters the
// hand-rolled heaps replaced. They exist only to prove pop-order equivalence:
// the production heaps must drain in exactly the order the boxed originals
// did, or the rewrite would perturb issue selection and completion order and
// break golden tables.

type refSeqHeap []uint64

func (h refSeqHeap) Len() int            { return len(h) }
func (h refSeqHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h refSeqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refSeqHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *refSeqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type refEventHeap []event

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refEventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refEventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestSeqHeapMatchesContainerHeap interleaves pushes and pops on both
// implementations and requires identical pop sequences.
func TestSeqHeapMatchesContainerHeap(t *testing.T) {
	err := quick.Check(func(ops []uint16) bool {
		var h seqHeap
		var ref refSeqHeap
		next := uint64(0)
		for _, op := range ops {
			if op%3 == 0 && ref.Len() > 0 {
				if h.pop() != heap.Pop(&ref).(uint64) {
					return false
				}
				continue
			}
			// Values arrive in arbitrary order (wakeups are not sorted).
			v := next ^ (uint64(op) << 3)
			next++
			h.push(v)
			heap.Push(&ref, v)
		}
		for ref.Len() > 0 {
			if h.pop() != heap.Pop(&ref).(uint64) {
				return false
			}
		}
		return len(h) == 0
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

// TestEventHeapMatchesContainerHeap does the same for the completion event
// heap, with adversarial cycle ties broken by sequence number.
func TestEventHeapMatchesContainerHeap(t *testing.T) {
	err := quick.Check(func(ops []uint16) bool {
		var h eventHeap
		var ref refEventHeap
		seq := uint64(0)
		for _, op := range ops {
			if op%4 == 0 && ref.Len() > 0 {
				if h.pop() != heap.Pop(&ref).(event) {
					return false
				}
				continue
			}
			// Few distinct cycles, so ties are common.
			ev := event{cycle: int64(op % 8), seq: seq}
			seq++
			h.push(ev)
			heap.Push(&ref, ev)
		}
		for ref.Len() > 0 {
			if h.pop() != heap.Pop(&ref).(event) {
				return false
			}
		}
		return len(h) == 0
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

// TestHeapsDoNotBox pins the point of the hand-rolled heaps: steady-state
// push/pop cycles must not allocate (container/heap boxed every payload
// into an interface{}).
func TestHeapsDoNotBox(t *testing.T) {
	var sh seqHeap
	var eh eventHeap
	for i := uint64(0); i < 64; i++ {
		sh.push(i)
		eh.push(event{cycle: int64(i), seq: i})
	}
	allocs := testing.AllocsPerRun(100, func() {
		sh.push(12345)
		sh.pop()
		eh.push(event{cycle: 77, seq: 12345})
		eh.pop()
	})
	if allocs != 0 {
		t.Errorf("heap churn allocated %.0f times per op, want 0", allocs)
	}
}

// TestInOrderUnpopConstantTime is the regression test for the quadratic
// Unpop: the in-order queue used to prepend with append+copy, shifting the
// whole FIFO on every structural-hazard stall. The pathological pattern —
// memory-port pressure popping and unpopping the head of a deep queue every
// cycle — must now run in time independent of queue depth. A million
// pop/unpop rounds against a 10k-deep queue is ~2e10 word moves under the
// old implementation (minutes); O(1) finishes in well under a second, so
// the generous wall-clock bound below cannot flake.
func TestInOrderUnpopConstantTime(t *testing.T) {
	const depth = 10_000
	w := NewWindow(depth * 2)
	q := NewIssueQueue(QInt, depth, true, w)
	for seq := uint64(0); seq < depth; seq++ {
		e := w.Alloc(seq, mkALU(), 1)
		e.Pending = 0
		q.Insert(seq, true)
	}
	start := time.Now()
	for i := 0; i < 1_000_000; i++ {
		seq, ok := q.Pop()
		if !ok {
			t.Fatal("pop failed with a ready head")
		}
		q.Unpop(seq)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("1e6 pop/unpop rounds on a %d-deep queue took %v: Unpop is not O(1)", depth, elapsed)
	}
	// The head must still be the oldest instruction and the queue intact.
	if seq, ok := q.Pop(); !ok || seq != 0 {
		t.Errorf("head after churn = %d, want 0", seq)
	}
	if q.Len() != depth-1 {
		t.Errorf("len after churn = %d, want %d", q.Len(), depth-1)
	}
}

// TestInOrderUnpopAfterStaleSkip covers Unpop interacting with lazy stale
// removal: stale heads are skipped inside the Pop that returns the live
// head, and the following Unpop must re-front exactly that instruction.
func TestInOrderUnpopAfterStaleSkip(t *testing.T) {
	w := NewWindow(64)
	q := NewIssueQueue(QInt, 8, true, w)
	other := NewIssueQueue(QFP, 8, true, w)
	for seq := uint64(1); seq <= 3; seq++ {
		e := w.Alloc(seq, mkALU(), 1)
		e.Pending = 0
		q.Insert(seq, true)
	}
	// Migrate the head elsewhere: it becomes a stale entry in q.
	q.RemoveWaiting()
	other.Insert(1, true)

	seq, ok := q.Pop()
	if !ok || seq != 2 {
		t.Fatalf("pop = %d,%v want 2 (stale head skipped)", seq, ok)
	}
	q.Unpop(seq)
	if got, ok := q.Pop(); !ok || got != 2 {
		t.Fatalf("pop after unpop = %d,%v want 2", got, ok)
	}
	if got, ok := q.Pop(); !ok || got != 3 {
		t.Fatalf("next pop = %d,%v want 3", got, ok)
	}
}
