package pipeline

// Ring64 is a growable ring buffer of uint64 values (sequence numbers in
// this package's use). It replaces the reslice-and-append FIFO idiom
// (`s = s[1:]` to pop, `append` to push) in the simulator's cycle loop: that
// idiom keeps the popped prefix live in the backing array while the tail
// appends past it, so a multi-million-instruction run retains and regrows
// dead prefixes without bound. A ring reuses the freed slots in place, pushes
// and pops in O(1) at both the front and the back, and allocates only when
// occupancy exceeds every previous high-water mark.
//
// The zero value is an empty ring ready for use.
type Ring64 struct {
	buf  []uint64 // power-of-two length, so index math is a mask
	head int      // index of the front element when n > 0
	n    int
}

// Len returns the number of buffered values.
func (r *Ring64) Len() int { return r.n }

// Cap returns the current backing capacity (0 for a fresh zero value).
func (r *Ring64) Cap() int { return len(r.buf) }

// grow doubles the backing array, unwrapping the live region to the front.
//
//dkip:coldpath
func (r *Ring64) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 16
	}
	buf := make([]uint64, size)
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&mask]
	}
	r.buf = buf
	r.head = 0
}

// PushBack appends v at the tail.
//
//dkip:hotpath
func (r *Ring64) PushBack(v uint64) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// PushFront prepends v at the head in O(1) — the operation the in-order
// issue queue needs for Unpop after a structural-hazard stall.
//
//dkip:hotpath
func (r *Ring64) PushFront(v uint64) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1) & (len(r.buf) - 1)
	r.buf[r.head] = v
	r.n++
}

// Front returns the head value. It panics on an empty ring.
//
//dkip:hotpath
func (r *Ring64) Front() uint64 {
	if r.n == 0 {
		panic("pipeline: Front of empty Ring64")
	}
	return r.buf[r.head]
}

// PopFront removes and returns the head value. It panics on an empty ring.
//
//dkip:hotpath
func (r *Ring64) PopFront() uint64 {
	if r.n == 0 {
		panic("pipeline: PopFront of empty Ring64")
	}
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// At returns the i-th value from the front, 0 <= i < Len.
//
//dkip:hotpath
func (r *Ring64) At(i int) uint64 {
	if i < 0 || i >= r.n {
		panic("pipeline: Ring64 index out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Reset empties the ring, keeping its capacity.
func (r *Ring64) Reset() { r.head, r.n = 0, 0 }
