package pipeline

import (
	"testing"
	"testing/quick"
)

func TestRing64Basics(t *testing.T) {
	var r Ring64
	if r.Len() != 0 || r.Cap() != 0 {
		t.Fatal("zero value not empty")
	}
	for i := uint64(0); i < 5; i++ {
		r.PushBack(i)
	}
	if r.Len() != 5 || r.Front() != 0 || r.At(4) != 4 {
		t.Fatalf("after pushes: len %d front %d", r.Len(), r.Front())
	}
	r.PushFront(99)
	if r.Front() != 99 || r.Len() != 6 {
		t.Fatalf("PushFront: front %d len %d", r.Front(), r.Len())
	}
	if got := r.PopFront(); got != 99 {
		t.Fatalf("PopFront = %d", got)
	}
	for want := uint64(0); want < 5; want++ {
		if got := r.PopFront(); got != want {
			t.Fatalf("PopFront = %d, want %d", got, want)
		}
	}
	r.PushBack(7)
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset did not empty")
	}
	if r.Cap() == 0 {
		t.Fatal("Reset dropped capacity")
	}
}

func TestRing64EmptyPanics(t *testing.T) {
	for name, f := range map[string]func(*Ring64){
		"Front":    func(r *Ring64) { r.Front() },
		"PopFront": func(r *Ring64) { r.PopFront() },
		"At":       func(r *Ring64) { r.At(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty ring must panic", name)
				}
			}()
			var r Ring64
			f(&r)
		}()
	}
}

// TestRing64MatchesSliceSemantics drives a ring and a plain-slice deque with
// the same operation stream and checks every observable agrees — the
// property that makes the FIFO swap in IssueQueue/LLIB behavior-invariant.
func TestRing64MatchesSliceSemantics(t *testing.T) {
	err := quick.Check(func(ops []uint8) bool {
		var r Ring64
		var ref []uint64
		next := uint64(0)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // bias toward growth so wrap and grow both happen
				r.PushBack(next)
				ref = append(ref, next)
				next++
			case 2:
				r.PushFront(next)
				ref = append([]uint64{next}, ref...)
				next++
			case 3:
				if len(ref) == 0 {
					continue
				}
				if r.PopFront() != ref[0] {
					return false
				}
				ref = ref[1:]
			}
			if r.Len() != len(ref) {
				return false
			}
			for i, v := range ref {
				if r.At(i) != v {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

// TestRing64SteadyStateDoesNotGrow is the memory-growth regression test for
// the reslice-and-append leak: pumping far more values through the ring than
// its occupancy must leave capacity at the occupancy high-water mark. The
// old `s = s[1:]` + append FIFOs reallocated their backing array on every
// wrap, retaining each dead prefix until the next collection.
func TestRing64SteadyStateDoesNotGrow(t *testing.T) {
	var r Ring64
	const occupancy = 1000
	for i := uint64(0); i < occupancy; i++ {
		r.PushBack(i)
	}
	capAfterFill := r.Cap()
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1_000_000; i++ {
			r.PushBack(r.PopFront())
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state churn allocated %.0f times per million ops, want 0", allocs)
	}
	if r.Cap() != capAfterFill {
		t.Errorf("capacity grew from %d to %d with occupancy constant", capAfterFill, r.Cap())
	}
}
