package pipeline

import "dkip/internal/isa"

// Scoreboard tracks, per architectural register, the most recent in-flight
// producer. It is the rename stage's view of register readiness: a source is
// ready when its last writer has completed (or no writer is in flight).
type Scoreboard struct {
	producer [isa.NumRegs]uint64
	inflight [isa.NumRegs]bool
}

// NewScoreboard returns a scoreboard with every register ready.
func NewScoreboard() *Scoreboard { return &Scoreboard{} }

// Reset marks every register ready and clears producers.
func (s *Scoreboard) Reset() {
	*s = Scoreboard{}
}

// Lookup returns the in-flight producer of r, if any.
//
//dkip:hotpath
func (s *Scoreboard) Lookup(r isa.Reg) (producer uint64, pending bool) {
	if !r.Valid() {
		return 0, false
	}
	return s.producer[r], s.inflight[r]
}

// Define records seq as the newest producer of r.
//
//dkip:hotpath
func (s *Scoreboard) Define(r isa.Reg, seq uint64) {
	if !r.Valid() {
		return
	}
	s.producer[r] = seq
	s.inflight[r] = true
}

// Complete marks r ready if seq is still its newest producer. A younger
// redefinition supersedes the completion, exactly as renaming would.
//
//dkip:hotpath
func (s *Scoreboard) Complete(r isa.Reg, seq uint64) {
	if !r.Valid() {
		return
	}
	if s.inflight[r] && s.producer[r] == seq {
		s.inflight[r] = false
	}
}

// PendingCount returns how many registers currently have in-flight
// producers; used by tests and LLBV-style occupancy checks.
func (s *Scoreboard) PendingCount() int {
	n := 0
	for _, f := range s.inflight {
		if f {
			n++
		}
	}
	return n
}
