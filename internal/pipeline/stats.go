package pipeline

import (
	"fmt"
	"strings"
)

// HistBucket is the issue-latency histogram bucket width, in cycles.
const HistBucket = 25

// HistMax is the largest latency tracked with full resolution; larger values
// land in the overflow bucket.
const HistMax = 1200

// Histogram counts decode→issue distances, reproducing Figure 3. The JSON
// tags define the encoding used by internal/sim's Result records.
type Histogram struct {
	Buckets   [HistMax/HistBucket + 1]uint64 `json:"buckets"`
	Total     uint64                         `json:"total"`
	SumCycles uint64                         `json:"sum_cycles"`
}

// Observe adds one distance sample (in cycles).
func (h *Histogram) Observe(cycles int64) {
	if cycles < 0 {
		cycles = 0
	}
	i := int(cycles) / HistBucket
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.Total++
	h.SumCycles += uint64(cycles)
}

// Frac returns the fraction of samples in bucket i.
func (h *Histogram) Frac(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.Total)
}

// FracRange returns the fraction of samples with distance in [lo, hi) cycles.
func (h *Histogram) FracRange(lo, hi int) float64 {
	if h.Total == 0 {
		return 0
	}
	var n uint64
	for i := range h.Buckets {
		b0 := i * HistBucket
		if b0 >= lo && b0 < hi {
			n += h.Buckets[i]
		}
	}
	return float64(n) / float64(h.Total)
}

// Mean returns the mean distance in cycles.
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.SumCycles) / float64(h.Total)
}

// String renders non-empty buckets as "lo-hi:percent" pairs.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.1f%%", i*HistBucket, 100*h.Frac(i))
	}
	return b.String()
}

// Stats aggregates the outcome of one simulation run. The JSON tags define
// the encoding used by internal/sim's Result records. Stats deliberately has
// no reference-typed fields: a value copy is a deep copy, which the
// memoizing run cache relies on when handing results to multiple callers.
type Stats struct {
	// Cycles is the simulated cycle count; Committed the retired
	// instruction count. IPC() is their ratio.
	Cycles    int64  `json:"cycles"`
	Committed uint64 `json:"committed"`
	Fetched   uint64 `json:"fetched"`

	// Branches and Mispredicts count committed conditional branches.
	Branches    uint64 `json:"branches"`
	Mispredicts uint64 `json:"mispredicts"`

	// Loads by satisfying level: [L1, L2, Memory].
	LoadLevel [3]uint64 `json:"load_level"`

	// Structural stall cycles observed at rename.
	StallROBFull int64 `json:"stall_rob_full"`
	StallIQFull  int64 `json:"stall_iq_full"`
	StallLSQFull int64 `json:"stall_lsq_full"`

	// IssueLat is the decode→issue distance histogram (Figure 3).
	IssueLat Histogram `json:"issue_lat"`

	// Model-specific counters (D-KIP); zero elsewhere.

	// CPCommitted counts instructions retired directly by the Cache
	// Processor; MPCommitted those processed via the LLIB and Memory
	// Processor.
	CPCommitted uint64 `json:"cp_committed"`
	MPCommitted uint64 `json:"mp_committed"`
	// MaxLLIBInstrs and MaxLLIBRegs track the high-water occupancy of
	// each LLIB and its register file (Figures 13/14): [int, fp].
	MaxLLIBInstrs [2]int `json:"max_llib_instrs"`
	MaxLLIBRegs   [2]int `json:"max_llib_regs"`
	// LLIBFullStalls counts Analyze stalls due to a full LLIB.
	LLIBFullStalls int64 `json:"llib_full_stalls"`
	// AnalyzeWaitStalls counts Analyze stalls waiting for a short-latency
	// instruction to write back (§3.2 reports ~0.7% IPC impact).
	AnalyzeWaitStalls int64 `json:"analyze_wait_stalls"`
	// Checkpoints counts checkpoints taken; Recoveries counts rollbacks.
	Checkpoints uint64 `json:"checkpoints"`
	Recoveries  uint64 `json:"recoveries"`
	// LLRFBankConflicts counts one-cycle LLRF read stalls.
	LLRFBankConflicts int64 `json:"llrf_bank_conflicts"`
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per committed branch.
func (s *Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// MemoryLoadFrac returns the fraction of loads satisfied by main memory.
func (s *Stats) MemoryLoadFrac() float64 {
	total := s.LoadLevel[0] + s.LoadLevel[1] + s.LoadLevel[2]
	if total == 0 {
		return 0
	}
	return float64(s.LoadLevel[2]) / float64(total)
}

// CPFraction returns the fraction of committed instructions the Cache
// Processor retired directly (D-KIP only; §4.4 reports 67–77% for SpecFP).
func (s *Stats) CPFraction() float64 {
	total := s.CPCommitted + s.MPCommitted
	if total == 0 {
		return 0
	}
	return float64(s.CPCommitted) / float64(total)
}

// String summarizes the run for logs and examples.
func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d committed=%d IPC=%.3f mispredict/branch=%.3f memLoads=%.1f%%",
		s.Cycles, s.Committed, s.IPC(), s.MispredictRate(), 100*s.MemoryLoadFrac())
}
