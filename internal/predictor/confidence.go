package predictor

// Confidence is a JRS-style branch confidence estimator (Jacobsen, Rotenberg
// & Smith, MICRO 1996): a table of resetting counters indexed by branch PC.
// A correct prediction increments the branch's counter (saturating); a
// misprediction resets it. A branch is high-confidence when its counter has
// reached the threshold.
//
// The D-KIP uses it (optionally) to place checkpoints: §2.1 notes that loads
// driving low-confidence branches determine performance, and the
// checkpointing literature the paper builds on (Akkary et al. [12]) takes
// checkpoints on low-confidence branches to shorten recovery replay.
type Confidence struct {
	table     []uint8
	mask      uint64
	threshold uint8
	ceiling   uint8
}

// NewConfidence builds an estimator with the given table size (rounded up to
// a power of two, minimum 16) and confidence threshold (counter value at
// which a branch becomes high-confidence; default 8 when zero).
func NewConfidence(entries int, threshold uint8) *Confidence {
	n := 16
	for n < entries {
		n <<= 1
	}
	if threshold == 0 {
		threshold = 8
	}
	ceiling := threshold
	if ceiling < 15 {
		ceiling = 15
	}
	return &Confidence{
		table:     make([]uint8, n),
		mask:      uint64(n - 1),
		threshold: threshold,
		ceiling:   ceiling,
	}
}

func (c *Confidence) index(pc uint64) uint64 { return (pc >> 2) & c.mask }

// High reports whether the branch at pc currently predicts with high
// confidence.
func (c *Confidence) High(pc uint64) bool {
	return c.table[c.index(pc)] >= c.threshold
}

// Update trains the estimator with whether the last prediction for pc was
// correct.
func (c *Confidence) Update(pc uint64, correct bool) {
	i := c.index(pc)
	if !correct {
		c.table[i] = 0
		return
	}
	if c.table[i] < c.ceiling {
		c.table[i]++
	}
}

// Reset clears all counters (everything becomes low-confidence).
func (c *Confidence) Reset() {
	for i := range c.table {
		c.table[i] = 0
	}
}
