package predictor

import "testing"

func TestConfidenceStartsLow(t *testing.T) {
	c := NewConfidence(256, 8)
	if c.High(0x1000) {
		t.Error("untrained branch should be low confidence")
	}
}

func TestConfidenceBuildsWithCorrectPredictions(t *testing.T) {
	c := NewConfidence(256, 8)
	for i := 0; i < 7; i++ {
		c.Update(0x1000, true)
	}
	if c.High(0x1000) {
		t.Error("confidence reached threshold one update early")
	}
	c.Update(0x1000, true)
	if !c.High(0x1000) {
		t.Error("confidence not reached after 8 correct predictions")
	}
}

func TestConfidenceResetsOnMispredict(t *testing.T) {
	c := NewConfidence(256, 8)
	for i := 0; i < 20; i++ {
		c.Update(0x1000, true)
	}
	c.Update(0x1000, false)
	if c.High(0x1000) {
		t.Error("a misprediction must reset confidence")
	}
}

func TestConfidenceSeparatesBranches(t *testing.T) {
	c := NewConfidence(256, 4)
	for i := 0; i < 10; i++ {
		c.Update(0x1000, true)
		c.Update(0x1004, false)
	}
	if !c.High(0x1000) || c.High(0x1004) {
		t.Error("confidence confused two branches")
	}
}

func TestConfidenceDefaults(t *testing.T) {
	c := NewConfidence(0, 0)
	for i := 0; i < 8; i++ {
		c.Update(0x10, true)
	}
	if !c.High(0x10) {
		t.Error("default threshold should be 8")
	}
	c.Reset()
	if c.High(0x10) {
		t.Error("reset should clear confidence")
	}
}
