package predictor

// Perceptron implements the perceptron branch predictor of Jiménez & Lin
// ("Dynamic Branch Prediction with Perceptrons", HPCA 2001), the predictor
// the paper's Cache Processor uses (Table 2).
//
// Each branch PC hashes to a perceptron: a vector of signed weights, one per
// global-history bit plus a bias. The prediction is the sign of the dot
// product of the weights with the history (±1 per bit). Training adjusts the
// weights when the prediction was wrong or the output magnitude was below the
// threshold θ = ⌊1.93·h + 14⌋, the value derived in the original paper.
type Perceptron struct {
	weights [][]int16 // [table entry][history bit + bias]
	history []int8    // global history as ±1 values, index 0 = most recent
	histLen int
	mask    uint64
	theta   int32

	// lastOutput memoizes Predict's dot product for the matching Update,
	// avoiding recomputation; trace-driven callers alternate
	// Predict/Update per branch.
	lastOutput int32
	lastIndex  uint64
	lastValid  bool
}

// NewPerceptron builds a perceptron predictor with the given number of
// perceptrons (rounded up to a power of two, minimum 16) and history length.
func NewPerceptron(entries, histLen int) *Perceptron {
	if histLen <= 0 {
		histLen = 24
	}
	n := 16
	for n < entries {
		n <<= 1
	}
	p := &Perceptron{
		histLen: histLen,
		mask:    uint64(n - 1),
		theta:   int32(1.93*float64(histLen) + 14),
	}
	p.weights = make([][]int16, n)
	for i := range p.weights {
		p.weights[i] = make([]int16, histLen+1)
	}
	p.history = make([]int8, histLen)
	p.Reset()
	return p
}

// HistoryLength returns the configured global history length.
func (p *Perceptron) HistoryLength() int { return p.histLen }

func (p *Perceptron) index(pc uint64) uint64 { return (pc >> 2) & p.mask }

func (p *Perceptron) output(idx uint64) int32 {
	w := p.weights[idx]
	y := int32(w[0]) // bias sees a constant +1 input
	for i := 0; i < p.histLen; i++ {
		y += int32(w[i+1]) * int32(p.history[i])
	}
	return y
}

// Predict returns true (taken) when the perceptron output is non-negative.
func (p *Perceptron) Predict(pc uint64) bool {
	idx := p.index(pc)
	y := p.output(idx)
	p.lastOutput = y
	p.lastIndex = idx
	p.lastValid = true
	return y >= 0
}

const weightMax = 127 // keep weights in a signed byte's range as in hardware

// Update trains the perceptron with the actual outcome and shifts it into
// the global history.
func (p *Perceptron) Update(pc uint64, taken bool) {
	idx := p.index(pc)
	var y int32
	if p.lastValid && p.lastIndex == idx {
		y = p.lastOutput
	} else {
		y = p.output(idx)
	}
	p.lastValid = false

	t := int32(-1)
	if taken {
		t = 1
	}
	predTaken := y >= 0
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if predTaken != taken || mag <= p.theta {
		w := p.weights[idx]
		w[0] = clampWeight(int32(w[0]) + t)
		for i := 0; i < p.histLen; i++ {
			w[i+1] = clampWeight(int32(w[i+1]) + t*int32(p.history[i]))
		}
	}
	// Shift history: newest outcome at position 0.
	copy(p.history[1:], p.history[:p.histLen-1])
	if taken {
		p.history[0] = 1
	} else {
		p.history[0] = -1
	}
}

func clampWeight(v int32) int16 {
	if v > weightMax {
		return weightMax
	}
	if v < -weightMax-1 {
		return -weightMax - 1
	}
	return int16(v)
}

// Name returns "perceptron".
func (p *Perceptron) Name() string { return "perceptron" }

// Reset zeroes weights and sets the history to all not-taken.
func (p *Perceptron) Reset() {
	for _, w := range p.weights {
		for i := range w {
			w[i] = 0
		}
	}
	for i := range p.history {
		p.history[i] = -1
	}
	p.lastValid = false
}
