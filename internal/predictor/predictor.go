// Package predictor implements the branch predictors used by the processor
// models: the perceptron predictor of Jiménez & Lin (the paper's front-end
// predictor, Table 2), plus gshare, bimodal, and static predictors used as
// simpler baselines and in tests.
package predictor

// Predictor is a direction predictor for conditional branches.
//
// Predict returns the predicted direction for the branch at pc. Update trains
// the predictor with the actual outcome; implementations assume Update is
// called once per prediction, in program order (trace-driven simulation
// resolves branches in order).
type Predictor interface {
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
	// Name identifies the predictor in reports.
	Name() string
	// Reset restores the initial (untrained) state.
	Reset()
}

// Stats wraps a Predictor and counts accuracy. It implements Predictor.
type Stats struct {
	P          Predictor
	Lookups    uint64
	Mispredict uint64

	pending  bool
	lastPred bool
}

// NewStats returns a stats-counting wrapper around p.
func NewStats(p Predictor) *Stats { return &Stats{P: p} }

// Predict records and returns the wrapped predictor's prediction.
//
//dkip:hotpath
func (s *Stats) Predict(pc uint64) bool {
	pred := s.P.Predict(pc)
	s.lastPred = pred
	s.pending = true
	return pred
}

// Update trains the wrapped predictor and accounts accuracy against the
// prediction most recently returned by Predict.
//
//dkip:hotpath
func (s *Stats) Update(pc uint64, taken bool) {
	if s.pending {
		s.Lookups++
		if s.lastPred != taken {
			s.Mispredict++
		}
		s.pending = false
	}
	s.P.Update(pc, taken)
}

// Name returns the wrapped predictor's name.
func (s *Stats) Name() string { return s.P.Name() }

// Reset clears both the wrapped predictor and the counters.
func (s *Stats) Reset() {
	s.P.Reset()
	s.Lookups = 0
	s.Mispredict = 0
	s.pending = false
}

// Accuracy returns the fraction of correct predictions, or 1 if none made.
func (s *Stats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return 1 - float64(s.Mispredict)/float64(s.Lookups)
}

// Static predicts a fixed direction.
type Static struct {
	// Taken is the direction always predicted.
	Taken bool
}

// Predict returns the fixed direction.
//
//dkip:hotpath
func (s *Static) Predict(uint64) bool { return s.Taken }

// Update is a no-op for the static predictor.
//
//dkip:hotpath
func (s *Static) Update(uint64, bool) {}

// Name returns "static-taken" or "static-nottaken".
func (s *Static) Name() string {
	if s.Taken {
		return "static-taken"
	}
	return "static-nottaken"
}

// Reset is a no-op for the static predictor.
func (s *Static) Reset() {}

// Bimodal is a classic table of 2-bit saturating counters indexed by PC.
type Bimodal struct {
	table []uint8
	mask  uint64
}

// NewBimodal builds a bimodal predictor with the given number of counters
// (rounded up to a power of two, minimum 16).
func NewBimodal(entries int) *Bimodal {
	n := 16
	for n < entries {
		n <<= 1
	}
	b := &Bimodal{table: make([]uint8, n), mask: uint64(n - 1)}
	b.Reset()
	return b
}

// Predict returns the counter's direction for pc.
//
//dkip:hotpath
func (b *Bimodal) Predict(pc uint64) bool {
	return b.table[(pc>>2)&b.mask] >= 2
}

// Update trains the 2-bit counter for pc.
//
//dkip:hotpath
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := (pc >> 2) & b.mask
	c := b.table[i]
	if taken {
		if c < 3 {
			b.table[i] = c + 1
		}
	} else if c > 0 {
		b.table[i] = c - 1
	}
}

// Name returns "bimodal".
func (b *Bimodal) Name() string { return "bimodal" }

// Reset initializes every counter to weakly taken.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2
	}
}

// Gshare is a global-history predictor: the PC is XORed with a global branch
// history register to index a table of 2-bit counters.
type Gshare struct {
	table   []uint8
	mask    uint64
	history uint64
	bits    uint
}

// NewGshare builds a gshare predictor with the given table size (rounded up
// to a power of two, minimum 16) and history length min(log2(entries), 16).
func NewGshare(entries int) *Gshare {
	n := 16
	for n < entries {
		n <<= 1
	}
	bits := uint(log2(n))
	if bits > 16 {
		bits = 16
	}
	g := &Gshare{table: make([]uint8, n), mask: uint64(n - 1), bits: bits}
	g.Reset()
	return g
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict returns the predicted direction for pc under the current history.
//
//dkip:hotpath
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update trains the counter and shifts the outcome into the history.
//
//dkip:hotpath
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	c := g.table[i]
	if taken {
		if c < 3 {
			g.table[i] = c + 1
		}
	} else if c > 0 {
		g.table[i] = c - 1
	}
	g.history = ((g.history << 1) | b2u(taken)) & ((1 << g.bits) - 1)
}

// Name returns "gshare".
func (g *Gshare) Name() string { return "gshare" }

// Reset clears history and initializes counters to weakly taken.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 2
	}
	g.history = 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
