package predictor

import (
	"testing"

	"dkip/internal/xrand"
)

// train runs a predictor over an outcome stream for one branch PC and
// returns its accuracy over the second half (after warmup).
func train(p Predictor, pc uint64, outcomes []bool) float64 {
	correct, counted := 0, 0
	for i, taken := range outcomes {
		pred := p.Predict(pc)
		p.Update(pc, taken)
		if i >= len(outcomes)/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
	}
	return float64(correct) / float64(counted)
}

func loopPattern(period, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = (i % period) != period-1 // taken except every period-th
	}
	return out
}

func TestStatic(t *testing.T) {
	st := &Static{Taken: true}
	if !st.Predict(0) {
		t.Error("static-taken predicted not-taken")
	}
	st.Update(0, false) // no-op
	if !st.Predict(0) {
		t.Error("static must not learn")
	}
	if st.Name() != "static-taken" {
		t.Errorf("name %q", st.Name())
	}
	nt := &Static{}
	if nt.Predict(0) || nt.Name() != "static-nottaken" {
		t.Error("static-nottaken wrong")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	outcomes := make([]bool, 400)
	for i := range outcomes {
		outcomes[i] = true
	}
	if acc := train(b, 0x1000, outcomes); acc < 0.99 {
		t.Errorf("bimodal on always-taken: accuracy %.2f", acc)
	}
}

func TestBimodalSeparatesPCs(t *testing.T) {
	b := NewBimodal(1024)
	// Two PCs indexing different counters (the table is indexed by pc>>2).
	for i := 0; i < 200; i++ {
		b.Update(0x1000, true)
		b.Update(0x1004, false)
	}
	if !b.Predict(0x1000) || b.Predict(0x1004) {
		t.Error("bimodal confused two branches")
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	g := NewGshare(4096)
	outcomes := make([]bool, 600)
	for i := range outcomes {
		outcomes[i] = i%2 == 0
	}
	if acc := train(g, 0x1000, outcomes); acc < 0.95 {
		t.Errorf("gshare on alternating pattern: accuracy %.2f", acc)
	}
	// Bimodal cannot learn alternation (counters oscillate).
	b := NewBimodal(4096)
	if acc := train(b, 0x1000, outcomes); acc > 0.7 {
		t.Errorf("bimodal unexpectedly learned alternation: %.2f", acc)
	}
}

func TestPerceptronLearnsLoop(t *testing.T) {
	p := NewPerceptron(1024, 24)
	outcomes := loopPattern(8, 2000)
	if acc := train(p, 0x4000, outcomes); acc < 0.95 {
		t.Errorf("perceptron on period-8 loop: accuracy %.2f", acc)
	}
}

func TestPerceptronBeatsBimodalOnLoops(t *testing.T) {
	outcomes := loopPattern(6, 3000)
	pa := train(NewPerceptron(1024, 24), 0x4000, outcomes)
	ba := train(NewBimodal(1024), 0x4000, outcomes)
	if pa <= ba {
		t.Errorf("perceptron (%.2f) should beat bimodal (%.2f) on loop exits", pa, ba)
	}
}

func TestPerceptronHistoryLength(t *testing.T) {
	p := NewPerceptron(64, 16)
	if p.HistoryLength() != 16 {
		t.Errorf("history length %d", p.HistoryLength())
	}
	d := NewPerceptron(64, 0)
	if d.HistoryLength() <= 0 {
		t.Error("default history length must be positive")
	}
}

func TestPerceptronWeightClamp(t *testing.T) {
	p := NewPerceptron(16, 8)
	// Train far beyond saturation; weights must stay bounded (int16 range
	// check is implicit: overflow would flip predictions).
	for i := 0; i < 100000; i++ {
		p.Predict(0x10)
		p.Update(0x10, true)
	}
	if !p.Predict(0x10) {
		t.Error("saturated perceptron should predict taken")
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	for _, p := range []Predictor{NewBimodal(256), NewGshare(256), NewPerceptron(256, 12)} {
		first := p.Predict(0x123)
		for i := 0; i < 100; i++ {
			p.Update(0x123, !first)
		}
		p.Reset()
		if p.Predict(0x123) != first {
			t.Errorf("%s: reset did not restore initial prediction", p.Name())
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	s := NewStats(&Static{Taken: true})
	s.Predict(0)
	s.Update(0, true) // correct
	s.Predict(0)
	s.Update(0, false) // wrong
	if s.Lookups != 2 || s.Mispredict != 1 {
		t.Errorf("lookups=%d mispredicts=%d", s.Lookups, s.Mispredict)
	}
	if s.Accuracy() != 0.5 {
		t.Errorf("accuracy = %v", s.Accuracy())
	}
	// Update without a preceding Predict must not count.
	s.Update(0, true)
	if s.Lookups != 2 {
		t.Error("update without predict counted")
	}
	s.Reset()
	if s.Lookups != 0 || s.Accuracy() != 1 {
		t.Error("reset did not clear stats")
	}
}

func TestPredictorsOnRandomStream(t *testing.T) {
	// On a fair coin no predictor should stray far from 50%.
	rng := xrand.New(99)
	outcomes := make([]bool, 4000)
	for i := range outcomes {
		outcomes[i] = rng.Bool(0.5)
	}
	for _, p := range []Predictor{NewBimodal(1024), NewGshare(1024), NewPerceptron(1024, 24)} {
		acc := train(p, 0x777, outcomes)
		if acc < 0.35 || acc > 0.65 {
			t.Errorf("%s on random stream: accuracy %.2f", p.Name(), acc)
		}
	}
}

func TestNames(t *testing.T) {
	if NewBimodal(16).Name() != "bimodal" ||
		NewGshare(16).Name() != "gshare" ||
		NewPerceptron(16, 8).Name() != "perceptron" {
		t.Error("predictor names wrong")
	}
}
