package predictor

import (
	"encoding/binary"
	"fmt"
)

// Stateful is implemented by predictors whose trained state can be
// snapshotted and restored, which is what makes them checkpointable (see
// internal/ckpt). The snapshot is a self-describing little-endian byte
// string: it leads with the table geometry so LoadState can refuse a
// snapshot taken from a differently shaped predictor instead of silently
// mistraining.
//
// Snapshots capture architectural training state only — tables and history
// registers — not transient per-prediction memos or accuracy counters, so a
// restored predictor behaves identically from the next Predict/Update pair
// onward.
type Stateful interface {
	SaveState() ([]byte, error)
	LoadState(data []byte) error
}

// putU32/putU64 append little-endian integers; the readers below mirror them.
func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

type stateReader struct {
	data []byte
	pos  int
	err  error
}

func (r *stateReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.pos+4 > len(r.data) {
		r.err = fmt.Errorf("predictor: truncated state at byte %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *stateReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.data) {
		r.err = fmt.Errorf("predictor: truncated state at byte %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *stateReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.data) {
		r.err = fmt.Errorf("predictor: truncated state at byte %d", r.pos)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *stateReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.data) {
		return fmt.Errorf("predictor: %d trailing state bytes", len(r.data)-r.pos)
	}
	return nil
}

// SaveState snapshots the perceptron's weights and global history.
func (p *Perceptron) SaveState() ([]byte, error) {
	b := make([]byte, 0, 8+len(p.weights)*(p.histLen+1)*2+p.histLen)
	b = putU32(b, uint32(len(p.weights)))
	b = putU32(b, uint32(p.histLen))
	// Weights are int16: encode each as its 2-byte two's-complement form.
	for _, w := range p.weights {
		for _, v := range w {
			b = append(b, byte(uint16(v)), byte(uint16(v)>>8))
		}
	}
	for _, h := range p.history {
		b = append(b, byte(h))
	}
	return b, nil
}

// LoadState restores a snapshot taken by SaveState. The perceptron must have
// the same geometry; the per-prediction memo is invalidated.
func (p *Perceptron) LoadState(data []byte) error {
	r := &stateReader{data: data}
	entries, histLen := r.u32(), r.u32()
	if r.err == nil && (int(entries) != len(p.weights) || int(histLen) != p.histLen) {
		return fmt.Errorf("predictor: perceptron state geometry %d×%d does not match %d×%d",
			entries, histLen, len(p.weights), p.histLen)
	}
	raw := r.bytes(int(entries) * (int(histLen) + 1) * 2)
	hist := r.bytes(int(histLen))
	if err := r.done(); err != nil {
		return err
	}
	for i, w := range p.weights {
		row := raw[i*(p.histLen+1)*2:]
		for j := range w {
			w[j] = int16(uint16(row[2*j]) | uint16(row[2*j+1])<<8)
		}
	}
	for i := range p.history {
		p.history[i] = int8(hist[i])
	}
	p.lastValid = false
	return nil
}

// SaveState snapshots the gshare counters and history register.
func (g *Gshare) SaveState() ([]byte, error) {
	b := make([]byte, 0, 12+len(g.table))
	b = putU32(b, uint32(len(g.table)))
	b = putU64(b, g.history)
	b = append(b, g.table...)
	return b, nil
}

// LoadState restores a snapshot taken by SaveState into a same-sized gshare.
func (g *Gshare) LoadState(data []byte) error {
	r := &stateReader{data: data}
	entries := r.u32()
	hist := r.u64()
	if r.err == nil && int(entries) != len(g.table) {
		return fmt.Errorf("predictor: gshare state has %d entries, want %d", entries, len(g.table))
	}
	tab := r.bytes(int(entries))
	if err := r.done(); err != nil {
		return err
	}
	copy(g.table, tab)
	g.history = hist & ((1 << g.bits) - 1)
	return nil
}

// SaveState snapshots the bimodal counter table.
func (b *Bimodal) SaveState() ([]byte, error) {
	out := make([]byte, 0, 4+len(b.table))
	out = putU32(out, uint32(len(b.table)))
	out = append(out, b.table...)
	return out, nil
}

// LoadState restores a snapshot taken by SaveState into a same-sized bimodal.
func (b *Bimodal) LoadState(data []byte) error {
	r := &stateReader{data: data}
	entries := r.u32()
	if r.err == nil && int(entries) != len(b.table) {
		return fmt.Errorf("predictor: bimodal state has %d entries, want %d", entries, len(b.table))
	}
	tab := r.bytes(int(entries))
	if err := r.done(); err != nil {
		return err
	}
	copy(b.table, tab)
	return nil
}

// SaveState returns an empty snapshot: a static predictor has no trained
// state.
func (s *Static) SaveState() ([]byte, error) { return nil, nil }

// LoadState accepts only the empty snapshot SaveState produces.
func (s *Static) LoadState(data []byte) error {
	if len(data) != 0 {
		return fmt.Errorf("predictor: static predictor state must be empty, got %d bytes", len(data))
	}
	return nil
}

// SaveState delegates to the wrapped predictor; accuracy counters are not
// part of the architectural state.
func (s *Stats) SaveState() ([]byte, error) {
	inner, ok := s.P.(Stateful)
	if !ok {
		return nil, fmt.Errorf("predictor: %s does not support state capture", s.P.Name())
	}
	return inner.SaveState()
}

// LoadState delegates to the wrapped predictor and drops any pending
// prediction memo.
func (s *Stats) LoadState(data []byte) error {
	inner, ok := s.P.(Stateful)
	if !ok {
		return fmt.Errorf("predictor: %s does not support state capture", s.P.Name())
	}
	if err := inner.LoadState(data); err != nil {
		return err
	}
	s.pending = false
	return nil
}

// SaveState snapshots the confidence estimator's counter table.
func (c *Confidence) SaveState() ([]byte, error) {
	out := make([]byte, 0, 4+len(c.table))
	out = putU32(out, uint32(len(c.table)))
	out = append(out, c.table...)
	return out, nil
}

// LoadState restores a snapshot taken by SaveState into a same-sized
// estimator.
func (c *Confidence) LoadState(data []byte) error {
	r := &stateReader{data: data}
	entries := r.u32()
	if r.err == nil && int(entries) != len(c.table) {
		return fmt.Errorf("predictor: confidence state has %d entries, want %d", entries, len(c.table))
	}
	tab := r.bytes(int(entries))
	if err := r.done(); err != nil {
		return err
	}
	copy(c.table, tab)
	return nil
}
