// Package sample implements SMARTS-style statistical sampling for the
// trace-driven simulators: long stretches of cheap functional warming
// (caches and predictors only, no pipeline) punctuated by short detailed
// measurement intervals, whose per-interval CPIs yield a mean with a
// confidence interval. Architectural checkpoints (internal/ckpt) captured at
// interval boundaries make sampled runs resumable and let sweep points that
// share a memory/predictor configuration skip the functional fast-forward
// entirely.
package sample

import "fmt"

// Plan describes how a run is sampled. The zero value means "not sampled":
// a full detailed run. Any non-zero field enables sampling, with the
// remaining fields defaulted by Complete relative to the run's scale and the
// machine's instruction window.
//
// Plan is part of a RunSpec's content-addressed identity (internal/sim hashes
// the completed plan), so two specs asking for the same sampling — whether
// spelled explicitly or via defaults — memoize as the same run.
type Plan struct {
	// Intervals is the number of detailed measurement intervals (default 4).
	Intervals int `json:"intervals,omitempty"`
	// Interval is the number of instructions measured in detail per
	// interval (default: whatever keeps total detailed work, warmup
	// included, within a tenth of the full run).
	Interval uint64 `json:"interval,omitempty"`
	// Warmup is the number of detailed (pipeline-filling) warmup
	// instructions run before each measured interval, on top of the
	// functional warming that established cache and predictor state
	// (default: four times the machine's instruction window, at least
	// 2000). It must cover the window's fill time: an interval measured
	// mid-fill reads its CPI from the warmup burst's overlapped misses,
	// which on memory-bound workloads under-reads a kilo-instruction
	// machine by up to ~50%.
	Warmup uint64 `json:"warmup,omitempty"`
}

// Enabled reports whether the plan asks for sampling at all.
func (p Plan) Enabled() bool {
	return p.Intervals != 0 || p.Interval != 0 || p.Warmup != 0
}

// DefaultPlan returns a plan that samples with all knobs defaulted.
func DefaultPlan() Plan { return Plan{Intervals: defaultIntervals} }

const (
	defaultIntervals = 4
	// minDetailedWarmup floors the per-interval detailed warmup even for
	// small-window machines: pipelines, queues and in-flight misses need a
	// couple thousand instructions to reach steady state.
	minDetailedWarmup = 2000
	// minInterval floors the measured interval; shorter intervals measure
	// mostly boundary noise.
	minInterval = 1000
	// reductionTarget is the detailed-instruction reduction the defaulted
	// interval length aims for: total detailed work (warmup + measured,
	// all intervals) stays within warmup+measure over this factor.
	reductionTarget = 10
	// windowWarmFactor scales the machine's instruction window into the
	// default detailed warmup. Four window-fills is where measured bias
	// went under 1% for the 2048-entry D-KIP on its worst workloads.
	windowWarmFactor = 4
)

// Complete resolves defaulted fields so that a defaulted plan and its
// explicit spelling are the same plan. warmup/measure are the run's scale;
// window is the machine's in-flight instruction capacity (pass 0 when
// unknown — the warmup floor still applies). A disabled plan completes to
// the zero value. Defaulted fields are clamped to fit the interval stride;
// explicitly set fields are taken literally and left to Validate.
func (p Plan) Complete(warmup, measure, window uint64) Plan {
	if !p.Enabled() {
		return Plan{}
	}
	if p.Intervals <= 0 {
		p.Intervals = defaultIntervals
	}
	stride := measure / uint64(p.Intervals)
	if p.Warmup == 0 {
		d := windowWarmFactor * window
		if d < minDetailedWarmup {
			d = minDetailedWarmup
		}
		// Clamp into the stride, always reserving room for a measured
		// slice — the full minInterval when the stride affords it, half
		// the stride below that, so a defaulted plan stays valid at any
		// scale a caller can reach rather than erroring below ~4x
		// minInterval of measured instructions.
		reserve := uint64(minInterval)
		if half := stride / 2; half < reserve {
			reserve = half
		}
		if d > stride-reserve {
			d = stride - reserve
		}
		p.Warmup = d
	}
	if p.Interval == 0 {
		l := uint64(minInterval)
		if per := (warmup + measure) / reductionTarget / uint64(p.Intervals); per > p.Warmup+minInterval {
			l = per - p.Warmup
		}
		if p.Warmup < stride && l > stride-p.Warmup {
			l = stride - p.Warmup
		}
		p.Interval = l
	}
	return p
}

// Validate reports an error when the plan cannot tile the run: intervals
// must fit between their start positions, and at least two intervals are
// needed for a confidence interval. It expects a completed plan (Complete);
// zero fields are completed with an unknown window first.
func (p Plan) Validate(measure uint64) error {
	if !p.Enabled() {
		return nil
	}
	n := p.Complete(0, measure, 0)
	if n.Intervals < 2 {
		return fmt.Errorf("sample: need at least 2 intervals for a confidence interval, have %d", n.Intervals)
	}
	stride := measure / uint64(n.Intervals)
	if stride == 0 {
		return fmt.Errorf("sample: measure %d too small for %d intervals", measure, n.Intervals)
	}
	if n.Warmup+n.Interval > stride {
		return fmt.Errorf("sample: interval warmup+measure %d+%d exceeds stride %d (measure %d / %d intervals)",
			n.Warmup, n.Interval, stride, measure, n.Intervals)
	}
	return nil
}

// String renders the normalized plan compactly, e.g. "4x500+500w".
func (p Plan) String() string {
	if !p.Enabled() {
		return "full"
	}
	return fmt.Sprintf("%dx%d+%dw", p.Intervals, p.Interval, p.Warmup)
}
