package sample

import (
	"strings"
	"testing"
)

func TestPlanComplete(t *testing.T) {
	const warmup, measure = 10_000, 1_000_000
	// Small window: the warmup floor applies, the interval targets the
	// reduction budget exactly.
	p := DefaultPlan().Complete(warmup, measure, 64)
	if p.Intervals != defaultIntervals {
		t.Errorf("Intervals = %d, want %d", p.Intervals, defaultIntervals)
	}
	if p.Warmup != minDetailedWarmup {
		t.Errorf("Warmup = %d, want floor %d", p.Warmup, minDetailedWarmup)
	}
	budget := uint64(warmup+measure) / reductionTarget
	if got := uint64(p.Intervals) * (p.Warmup + p.Interval); got != budget {
		t.Errorf("detailed total %d, want the full budget %d", got, budget)
	}
	// Large window: warmup scales with it, interval shrinks to keep the
	// budget.
	big := DefaultPlan().Complete(warmup, measure, 2048)
	if big.Warmup != windowWarmFactor*2048 {
		t.Errorf("Warmup = %d, want %d", big.Warmup, windowWarmFactor*2048)
	}
	if got := uint64(big.Intervals) * (big.Warmup + big.Interval); got != budget {
		t.Errorf("detailed total %d, want the full budget %d", got, budget)
	}
	// Tiny scale: defaults clamp into the stride rather than producing an
	// invalid plan.
	tiny := DefaultPlan().Complete(2_000, 8_000, 2048)
	if err := tiny.Validate(8_000); err != nil {
		t.Errorf("clamped tiny-scale plan invalid: %v", err)
	}
	if tiny.Warmup+tiny.Interval > 8_000/uint64(tiny.Intervals) {
		t.Errorf("tiny-scale plan %+v does not fit its stride", tiny)
	}
	// Sub-minInterval strides still complete to a valid plan: the warmup
	// reserves half the stride for measurement instead of erroring.
	small := DefaultPlan().Complete(300, 1_000, 2048)
	if err := small.Validate(1_000); err != nil {
		t.Errorf("tiny-stride plan invalid: %v", err)
	}
	if small.Warmup == 0 || small.Interval == 0 {
		t.Errorf("tiny-stride plan degenerate: %+v", small)
	}
	// Explicit fields survive completion verbatim.
	exp := Plan{Intervals: 7, Interval: 123, Warmup: 456}.Complete(warmup, measure, 64)
	if exp != (Plan{Intervals: 7, Interval: 123, Warmup: 456}) {
		t.Errorf("explicit plan rewritten to %+v", exp)
	}
	// Completion is idempotent, so defaulted and explicit spellings of one
	// plan stay one plan.
	if again := p.Complete(warmup, measure, 64); again != p {
		t.Errorf("completion not idempotent: %+v != %+v", again, p)
	}
	// Disabled stays disabled.
	if z := (Plan{}).Complete(warmup, measure, 64); z.Enabled() {
		t.Errorf("zero plan completed to %+v", z)
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (Plan{}).Validate(1000); err != nil {
		t.Errorf("disabled plan must validate: %v", err)
	}
	if err := (Plan{Intervals: 1}).Validate(1_000_000); err == nil || !strings.Contains(err.Error(), "2 intervals") {
		t.Errorf("single interval validated: %v", err)
	}
	if err := (Plan{Intervals: 8}).Validate(4); err == nil {
		t.Error("measure smaller than interval count validated")
	}
	// An explicit interval that overflows its stride is an error, not a
	// silent clamp.
	if err := (Plan{Intervals: 4, Interval: 300_000, Warmup: 100}.Validate(1_000_000)); err == nil {
		t.Error("overfull interval validated")
	}
	if err := DefaultPlan().Validate(1_000_000); err != nil {
		t.Errorf("default plan invalid: %v", err)
	}
}

func TestPlanString(t *testing.T) {
	if got := (Plan{}).String(); got != "full" {
		t.Errorf("zero plan renders %q", got)
	}
	if got := (Plan{Intervals: 4, Interval: 500, Warmup: 2000}).String(); got != "4x500+2000w" {
		t.Errorf("plan renders %q", got)
	}
}
