package sample

import (
	"fmt"
	"math"

	"dkip/internal/ckpt"
	"dkip/internal/mem"
	"dkip/internal/pipeline"
	"dkip/internal/trace"
)

// Engine is the processor surface the sampling driver needs. Both
// core.Processor (D-KIP) and ooo.Processor (R10K/KILO) implement it.
type Engine interface {
	// Hierarchy exposes the cache hierarchy for initial range warming.
	Hierarchy() *mem.Hierarchy
	// Run simulates in detail: warmup instructions to fill the pipeline,
	// then measure instructions with statistics.
	Run(g trace.Generator, warmup, measure uint64) *pipeline.Stats
	// WarmFunctional fast-forwards architectural state by n instructions.
	WarmFunctional(g trace.Generator, n uint64)
	// CaptureArch snapshots architectural state at stream position pos.
	CaptureArch(bench string, pos uint64) (*ckpt.Checkpoint, error)
	// RestoreArch loads a snapshot; the generator cursor is the caller's.
	RestoreArch(c *ckpt.Checkpoint) error
}

// Config drives one sampled run.
type Config struct {
	// Bench names the workload, stamped into captured checkpoints.
	Bench string
	// NewEngine builds a fresh processor; called once for the functional
	// cursor and once per detailed interval.
	NewEngine func() Engine
	// NewGen builds a fresh generator positioned at stream start.
	NewGen func() trace.Generator
	// WarmRanges is the workload's footprint, walked through the cursor's
	// caches before functional warming — the same pre-warm a full run gets.
	WarmRanges [][2]uint64
	// Warmup and Measure mirror the full run's phases: the first interval
	// starts at position Warmup, and the Intervals tile [Warmup,
	// Warmup+Measure).
	Warmup  uint64
	Measure uint64
	// Plan is the sampling layout. Callers that know the machine's window
	// geometry should pass a completed plan (Plan.Complete); Run completes
	// any remaining zero fields with an unknown window.
	Plan Plan
	// Load fetches a previously stored checkpoint for a stream position,
	// or nil. Optional.
	Load func(pos uint64) *ckpt.Checkpoint
	// Store persists a freshly captured checkpoint. Optional.
	Store func(c *ckpt.Checkpoint)
}

// IO counts checkpoint-store traffic for one sampled run. It feeds runner
// metrics, not results: whether state was recomputed or reloaded must not
// change what the run produces.
type IO struct {
	Hits   uint64
	Misses uint64
	Writes uint64
}

// Summary reports how a sampled run was laid out and the statistical
// quality of its CPI estimate. It is part of the run's Result, so it holds
// only values that are a pure function of the spec — never of checkpoint
// availability or timing.
type Summary struct {
	// Intervals, Interval, Warmup echo the normalized plan.
	Intervals int    `json:"intervals"`
	Interval  uint64 `json:"interval"`
	Warmup    uint64 `json:"warmup"`
	// DetailedInstrs counts pipeline-simulated instructions (warmup +
	// measured, all intervals); FullInstrs what an unsampled run would
	// have simulated in detail.
	DetailedInstrs uint64 `json:"detailed_instrs"`
	FullInstrs     uint64 `json:"full_instrs"`
	// CPI is the sampled estimate: total measured cycles over total
	// measured instructions, which with equal-length intervals equals the
	// mean of per-interval CPIs.
	CPI float64 `json:"cpi"`
	// CPIStdDev is the sample standard deviation of per-interval CPIs;
	// CPICI95 the half-width of the 95% confidence interval on the mean
	// (Student's t with Intervals-1 degrees of freedom).
	CPIStdDev float64 `json:"cpi_stddev"`
	CPICI95   float64 `json:"cpi_ci95"`
}

// Reduction returns FullInstrs/DetailedInstrs, the factor by which sampling
// shrank the detailed-simulation work.
func (s *Summary) Reduction() float64 {
	if s.DetailedInstrs == 0 {
		return 0
	}
	return float64(s.FullInstrs) / float64(s.DetailedInstrs)
}

// Run executes a sampled simulation: a functional cursor sweeps the stream
// warming caches and predictors, architectural checkpoints are captured (or
// reloaded) at each interval start, and a fresh engine measures each
// interval in detail from the checkpointed state. The aggregate Stats sum
// the measured intervals, so downstream consumers (tables, CSV, JSON) read
// them exactly like full-run stats.
func Run(c Config) (*pipeline.Stats, *Summary, IO, error) {
	var io IO
	plan := c.Plan.Complete(c.Warmup, c.Measure, 0)
	if err := plan.Validate(c.Measure); err != nil {
		return nil, nil, io, err
	}
	k := uint64(plan.Intervals)
	stride := c.Measure / k

	// The functional cursor is built lazily: a resumed run that finds every
	// checkpoint in the store never pays for fast-forwarding at all. On a
	// miss the cursor continues from the most recent known state — its own,
	// or the last loaded checkpoint.
	var (
		cursor    Engine
		cursorGen trace.Generator
		cursorPos uint64
		lastCk    *ckpt.Checkpoint
	)
	seat := func(pos uint64) error {
		if cursor == nil {
			cursor = c.NewEngine()
			cursorGen = c.NewGen()
			if lastCk != nil && lastCk.Pos <= pos {
				if err := cursor.RestoreArch(lastCk); err != nil {
					return err
				}
				skip(cursorGen, lastCk.Pos)
				cursorPos = lastCk.Pos
			} else {
				cursor.Hierarchy().Warm(c.WarmRanges)
			}
		}
		if cursorPos > pos {
			return fmt.Errorf("sample: cursor at %d past interval start %d", cursorPos, pos)
		}
		cursor.WarmFunctional(cursorGen, pos-cursorPos)
		cursorPos = pos
		return nil
	}

	agg := &pipeline.Stats{}
	cpis := make([]float64, 0, plan.Intervals)
	for i := uint64(0); i < k; i++ {
		pos := c.Warmup + i*stride
		var ck *ckpt.Checkpoint
		if c.Load != nil {
			ck = c.Load(pos)
		}
		if ck != nil {
			io.Hits++
			// Remember it so a later miss warms forward from here rather
			// than from stream start.
			if lastCk == nil || ck.Pos > lastCk.Pos {
				lastCk = ck
			}
			if cursor != nil && cursorPos <= ck.Pos {
				// The cursor fell behind a stored checkpoint; drop it and
				// reseat lazily if another miss comes.
				cursor = nil
			}
		} else {
			io.Misses++
			if err := seat(pos); err != nil {
				return nil, nil, io, err
			}
			var err error
			if ck, err = cursor.CaptureArch(c.Bench, pos); err != nil {
				return nil, nil, io, err
			}
			lastCk = ck
			if c.Store != nil {
				c.Store(ck)
				io.Writes++
			}
		}

		eng := c.NewEngine()
		if err := eng.RestoreArch(ck); err != nil {
			return nil, nil, io, err
		}
		g := c.NewGen()
		skip(g, pos)
		st := eng.Run(g, plan.Warmup, plan.Interval)
		accumulate(agg, st)
		cpis = append(cpis, float64(st.Cycles)/float64(st.Committed))
	}

	mean, sd := meanStdDev(cpis)
	sum := &Summary{
		Intervals:      plan.Intervals,
		Interval:       plan.Interval,
		Warmup:         plan.Warmup,
		DetailedInstrs: k * (plan.Warmup + plan.Interval),
		FullInstrs:     c.Warmup + c.Measure,
		CPI:            mean,
		CPIStdDev:      sd,
		CPICI95:        tCritical95(plan.Intervals-1) * sd / math.Sqrt(float64(plan.Intervals)),
	}
	return agg, sum, io, nil
}

// skip advances g by n instructions. Generators are deterministic and cheap,
// so positioning is replay, not seeking.
func skip(g trace.Generator, n uint64) {
	for i := uint64(0); i < n; i++ {
		g.Next()
	}
}

// accumulate folds one interval's stats into the aggregate: counters add,
// high-water marks take the max.
func accumulate(agg, st *pipeline.Stats) {
	agg.Cycles += st.Cycles
	agg.Committed += st.Committed
	agg.Fetched += st.Fetched
	agg.Branches += st.Branches
	agg.Mispredicts += st.Mispredicts
	for i := range agg.LoadLevel {
		agg.LoadLevel[i] += st.LoadLevel[i]
	}
	agg.StallROBFull += st.StallROBFull
	agg.StallIQFull += st.StallIQFull
	agg.StallLSQFull += st.StallLSQFull
	for i := range agg.IssueLat.Buckets {
		agg.IssueLat.Buckets[i] += st.IssueLat.Buckets[i]
	}
	agg.IssueLat.Total += st.IssueLat.Total
	agg.IssueLat.SumCycles += st.IssueLat.SumCycles
	agg.CPCommitted += st.CPCommitted
	agg.MPCommitted += st.MPCommitted
	for i := range agg.MaxLLIBInstrs {
		if st.MaxLLIBInstrs[i] > agg.MaxLLIBInstrs[i] {
			agg.MaxLLIBInstrs[i] = st.MaxLLIBInstrs[i]
		}
		if st.MaxLLIBRegs[i] > agg.MaxLLIBRegs[i] {
			agg.MaxLLIBRegs[i] = st.MaxLLIBRegs[i]
		}
	}
	agg.LLIBFullStalls += st.LLIBFullStalls
	agg.AnalyzeWaitStalls += st.AnalyzeWaitStalls
	agg.Checkpoints += st.Checkpoints
	agg.Recoveries += st.Recoveries
	agg.LLRFBankConflicts += st.LLRFBankConflicts
}

func meanStdDev(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// tCritical95 returns the two-sided 95% critical value of Student's t
// distribution for the given degrees of freedom (normal beyond 30).
func tCritical95(df int) float64 {
	table := [...]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < 1 {
		return math.NaN()
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.960
}
