package serve

import (
	"context"
	"sync"
)

// fairShare is the admission gate ahead of the Server's work-bearing
// handlers. Like the plain channel gate it replaces, it bounds how many
// requests are being decoded/streamed at once (capacity); unlike it, slots
// are divided fairly between client identities (the X-Dkip-Client header):
// a client may hold at most ceil-ish capacity/activeClients slots, where
// activeClients counts the identities currently in flight or queued. One
// sweep flooding the daemon with 64 submissions no longer monopolizes the
// gate — the moment a second client shows up, the flood's share halves and
// its excess requests queue behind the newcomer's.
//
// A single client still gets the whole gate (share == capacity when it is
// alone), so the PR-3 behaviour is unchanged until there is actual
// contention.
type fairShare struct {
	capacity int

	mu       sync.Mutex
	cond     *sync.Cond
	inflight map[string]int // admitted requests per client
	waiting  map[string]int // queued requests per client
	total    int            // sum of inflight
	totalQ   int            // sum of waiting
}

func newFairShare(capacity int) *fairShare {
	g := &fairShare{
		capacity: capacity,
		inflight: make(map[string]int),
		waiting:  make(map[string]int),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// share returns the per-client slot quota under the current contention:
// capacity divided by the number of active identities, never below one.
// Caller holds g.mu.
func (g *fairShare) share() int {
	active := len(g.inflight)
	for c := range g.waiting {
		if _, in := g.inflight[c]; !in {
			active++
		}
	}
	if active < 1 {
		active = 1
	}
	s := g.capacity / active
	if s < 1 {
		s = 1
	}
	return s
}

// acquire blocks until the client may enter — the gate has a free slot and
// the client is within its fair share — or ctx expires. Queued requests
// re-evaluate on every release, so a client dropping below quota admits its
// next request promptly; an over-quota client's requests stay queued while
// under-quota clients pass them.
func (g *fairShare) acquire(ctx context.Context, client string) error {
	g.mu.Lock()
	if g.total < g.capacity && g.inflight[client] < g.share() && g.totalQ == 0 {
		// Fast path: nobody queued and the client is under quota.
		g.inflight[client]++
		g.total++
		g.mu.Unlock()
		return nil
	}
	g.waiting[client]++
	g.totalQ++
	// A sync.Cond cannot select on a context; wake the queue when the
	// caller gives up so its waiter can notice and withdraw.
	stopWatch := context.AfterFunc(ctx, g.cond.Broadcast)
	defer stopWatch()
	for !(g.total < g.capacity && g.inflight[client] < g.share()) {
		if ctx.Err() != nil {
			g.unqueue(client)
			g.mu.Unlock()
			return ctx.Err()
		}
		g.cond.Wait()
	}
	g.unqueue(client)
	g.inflight[client]++
	g.total++
	g.mu.Unlock()
	return nil
}

// unqueue removes one queued request for client. Caller holds g.mu.
func (g *fairShare) unqueue(client string) {
	if g.waiting[client]--; g.waiting[client] <= 0 {
		delete(g.waiting, client)
	}
	g.totalQ--
}

// release returns a slot and wakes the queue. Every waiter re-checks its
// own admission condition: the freed slot goes to whichever queued client
// is under quota, not to whoever queued first regardless of share.
func (g *fairShare) release(client string) {
	g.mu.Lock()
	if g.inflight[client]--; g.inflight[client] <= 0 {
		delete(g.inflight, client)
	}
	g.total--
	g.mu.Unlock()
	g.cond.Broadcast()
}

// gateSnapshot is the observability view of the gate: depths for the gauge
// families and the per-client in-flight/queued breakdown. The per-client
// maps are bounded by construction — entries are deleted at zero — so the
// label cardinality of the exposition tracks live contention, not history.
type gateSnapshot struct {
	Capacity  int
	Inflight  int
	Waiting   int
	PerClient map[string][2]int // client -> {inflight, waiting}
}

// snapshot returns a consistent copy of the gate state.
func (g *fairShare) snapshot() gateSnapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := gateSnapshot{
		Capacity:  g.capacity,
		Inflight:  g.total,
		Waiting:   g.totalQ,
		PerClient: make(map[string][2]int, len(g.inflight)+len(g.waiting)),
	}
	for c, n := range g.inflight {
		s.PerClient[c] = [2]int{n, 0}
	}
	for c, n := range g.waiting {
		e := s.PerClient[c]
		e[1] = n
		s.PerClient[c] = e
	}
	return s
}
