package serve

import (
	"context"
	"testing"
	"time"
)

// A lone client owns the whole gate: capacity admissions pass, one more
// queues, and a release admits it — the pre-fair-share behaviour.
func TestFairShareSingleClientGetsFullCapacity(t *testing.T) {
	g := newFairShare(4)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := g.acquire(ctx, "a"); err != nil {
			t.Fatalf("admission %d under capacity: %v", i, err)
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- g.acquire(ctx, "a") }()
	select {
	case <-errc:
		t.Fatal("admission over capacity did not queue")
	case <-time.After(50 * time.Millisecond):
	}
	g.release("a")
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("queued admission after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("release admitted nobody")
	}
}

// Under contention the freed slot goes to the under-quota client, not to
// whoever queued first: client A holds the gate and has queued more; B's
// single queued request must pass A's.
func TestFairShareAdmitsUnderQuotaClientFirst(t *testing.T) {
	g := newFairShare(2)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := g.acquire(ctx, "a"); err != nil {
			t.Fatal(err)
		}
	}
	aDone := make(chan error, 1)
	go func() { aDone <- g.acquire(ctx, "a") }()
	time.Sleep(20 * time.Millisecond) // A queues first
	bDone := make(chan error, 1)
	go func() { bDone <- g.acquire(ctx, "b") }()
	time.Sleep(20 * time.Millisecond)

	g.release("a") // share is now 1 each: A still holds 1, so B must win
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-aDone:
		t.Fatal("over-quota client was admitted ahead of the under-quota one")
	case <-time.After(5 * time.Second):
		t.Fatal("release admitted nobody")
	}
	g.release("a") // A drops to 0 in flight: its queued request passes now
	select {
	case err := <-aDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second release never admitted the queued client")
	}
}

// A queued client whose context expires withdraws cleanly: the error
// surfaces and no phantom queue entry skews later shares.
func TestFairShareAcquireHonorsContext(t *testing.T) {
	g := newFairShare(1)
	if err := g.acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- g.acquire(ctx, "b") }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("canceled acquire returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled acquire never returned")
	}
	snap := g.snapshot()
	if snap.Waiting != 0 {
		t.Fatalf("withdrawn waiter left queue depth %d", snap.Waiting)
	}
	if _, ok := snap.PerClient["b"]; ok {
		t.Fatal("withdrawn waiter left a per-client entry")
	}
	// The slot still cycles normally.
	g.release("a")
	done := make(chan error, 1)
	go func() { done <- g.acquire(context.Background(), "c") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gate wedged after a waiter withdrew")
	}
}

// The snapshot reports capacity, depths, and the per-client breakdown, and
// entries vanish at zero so exposition label cardinality tracks live state.
func TestFairShareSnapshot(t *testing.T) {
	g := newFairShare(3)
	ctx := context.Background()
	g.acquire(ctx, "a")
	g.acquire(ctx, "a")
	g.acquire(ctx, "b")
	s := g.snapshot()
	if s.Capacity != 3 || s.Inflight != 3 || s.Waiting != 0 {
		t.Fatalf("snapshot %+v, want capacity 3, inflight 3, waiting 0", s)
	}
	if s.PerClient["a"] != [2]int{2, 0} || s.PerClient["b"] != [2]int{1, 0} {
		t.Fatalf("per-client breakdown %v", s.PerClient)
	}
	g.release("a")
	g.release("a")
	g.release("b")
	if s := g.snapshot(); len(s.PerClient) != 0 || s.Inflight != 0 {
		t.Fatalf("drained gate still reports %+v", s)
	}
}
