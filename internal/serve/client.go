package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"dkip/internal/sim"
)

// Client is a sim.Backend that forwards every spec to a dkipd daemon. Run
// and RunAll block until the daemon resolves the submission (sharing its
// singleflight, memo cache, and store with every other client); Results
// accumulates the unique records this client has seen, key-sorted, so
// cmd/experiments -remote -json emits the same per-run artifact section a
// local run would. Metrics reports the daemon's cumulative counters — they
// cover all clients, which is the point: a second client submitting the
// same sweep shows up there as dedup, not as fresh simulation.
type Client struct {
	base string
	hc   *http.Client

	mu      sync.Mutex
	results map[string]*sim.Result
}

var _ sim.Backend = (*Client)(nil)

// NewClient builds a client for the daemon at base (e.g.
// "http://localhost:8321"). No request timeout is set: full-scale
// simulations legitimately take minutes, and the daemon bounds its own work.
func NewClient(base string) *Client {
	return &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{},
		results: make(map[string]*sim.Result),
	}
}

// Run submits one spec and blocks until the daemon resolves it.
func (c *Client) Run(spec sim.RunSpec) (*sim.Result, error) {
	results, err := c.RunAll([]sim.RunSpec{spec})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunAll submits the batch in one POST /v1/runs and blocks until every run
// resolves; results[i] corresponds to specs[i]. Specs carrying opaque
// function fields are refused before anything is sent.
func (c *Client) RunAll(specs []sim.RunSpec) ([]*sim.Result, error) {
	wire := make([]Spec, len(specs))
	for i, s := range specs {
		ws, err := EncodeSpec(s)
		if err != nil {
			return nil, err
		}
		wire[i] = ws
	}
	body, err := json.Marshal(struct {
		Specs []Spec `json:"specs"`
	}{wire})
	if err != nil {
		return nil, fmt.Errorf("serve: encode submission: %w", err)
	}
	resp, err := c.hc.Post(c.base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve: submit to %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var rr RunsResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("serve: decode response: %w", err)
	}
	if len(rr.Results) != len(specs) {
		return nil, fmt.Errorf("serve: daemon returned %d results for %d specs", len(rr.Results), len(specs))
	}
	c.mu.Lock()
	for _, res := range rr.Results {
		if res != nil && res.Key != "" {
			if _, seen := c.results[res.Key]; !seen {
				// Keep a private copy: the returned records are the
				// caller's to mutate, per the Backend contract.
				c.results[res.Key] = res.WithCached(res.Cached)
			}
		}
	}
	c.mu.Unlock()
	return rr.Results, nil
}

// Get fetches one result by content key. With wait set the daemon holds the
// request until the key resolves (bounded by its wait timeout); otherwise a
// miss returns an error wrapping the daemon's 404.
func (c *Client) Get(key string, wait bool) (*sim.Result, error) {
	u := c.base + "/v1/runs/" + url.PathEscape(key)
	if wait {
		u += "?wait=1"
	}
	resp, err := c.hc.Get(u)
	if err != nil {
		return nil, fmt.Errorf("serve: get %s: %w", key, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var res sim.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("serve: decode result: %w", err)
	}
	return &res, nil
}

// Manifest streams GET /v1/results (the daemon's store manifest, or its
// in-process results when it runs storeless), optionally filtered by arch
// and bench; empty filters match everything.
func (c *Client) Manifest(arch, bench string) ([]*sim.Result, error) {
	q := url.Values{}
	if arch != "" {
		q.Set("arch", arch)
	}
	if bench != "" {
		q.Set("bench", bench)
	}
	u := c.base + "/v1/results"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := c.hc.Get(u)
	if err != nil {
		return nil, fmt.Errorf("serve: manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var out []*sim.Result
	dec := json.NewDecoder(resp.Body)
	for {
		var res sim.Result
		if err := dec.Decode(&res); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("serve: decode manifest: %w", err)
		}
		out = append(out, &res)
	}
}

// Results returns copies of the unique runs this client has observed,
// sorted by content key — the same contract as sim.Runner.Results, so
// remote and local artifacts compare key-for-key.
func (c *Client) Results() []*sim.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*sim.Result, 0, len(c.results))
	for _, res := range c.results {
		out = append(out, res.WithCached(res.Cached))
	}
	sim.SortResults(out)
	return out
}

// Metrics fetches the daemon's cumulative counters. A transport failure
// reports zero metrics: Backend's Metrics is an observability read, and by
// the time it is called the submissions it describes have already succeeded.
func (c *Client) Metrics() sim.Metrics {
	resp, err := c.hc.Get(c.base + "/v1/metrics")
	if err != nil {
		return sim.Metrics{}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sim.Metrics{}
	}
	var mr MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return sim.Metrics{}
	}
	return mr.Metrics
}

// httpError turns a non-200 daemon answer into an error carrying the status
// and the (plain text) body the handlers write.
func httpError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Errorf("serve: daemon answered %d: %s", resp.StatusCode, msg)
}

// WaitHealthy polls GET /v1/metrics until the daemon answers or the budget
// elapses — the handshake cmd/experiments -remote and the CI smoke test use
// before submitting.
func WaitHealthy(base string, budget time.Duration) error {
	base = strings.TrimRight(base, "/")
	deadline := time.Now().Add(budget)
	// Each attempt gets its own transport timeout: without one, a single
	// connect to a blackholed address blocks for the OS default (minutes)
	// and the budget is never consulted.
	attempt := &http.Client{Timeout: 2 * time.Second}
	var lastErr error
	for {
		resp, err := attempt.Get(base + "/v1/metrics")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("serve: daemon answered %s", resp.Status)
		}
		lastErr = err
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: daemon at %s not healthy after %v: %w", base, budget, lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
