package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"time"

	"dkip/internal/sim"
)

// clientHeader carries the client identity the daemon's fair-share gate
// admits under.
const clientHeader = "X-Dkip-Client"

// defaultIdentity derives the identity submissions carry when the caller
// sets none: host-pid, distinct per process, stable for its lifetime.
func defaultIdentity() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "client"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// Client is a sim.Backend that forwards every spec to a dkipd daemon. Run
// and RunAll block until the daemon resolves the submission (sharing its
// singleflight, memo cache, and store with every other client); Results
// accumulates the unique records this client has seen, key-sorted, so
// cmd/experiments -remote -json emits the same per-run artifact section a
// local run would. Metrics reports the daemon's cumulative counters — they
// cover all clients, which is the point: a second client submitting the
// same sweep shows up there as dedup, not as fresh simulation.
type Client struct {
	base          string
	hc            *http.Client
	retry         RetryPolicy
	metaTimeout   time.Duration
	submitTimeout time.Duration
	identity      string

	mu      sync.Mutex
	results map[string]*sim.Result
}

var _ sim.Backend = (*Client)(nil)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetry replaces the submission retry policy (default DefaultRetry).
// RetryPolicy{Attempts: 1} disables retries.
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// MetaTimeout bounds metadata requests — metrics, manifest streams, and
// non-waiting keyed GETs — with a per-request context (default 30s);
// d <= 0 disables the bound.
func MetaTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.metaTimeout = d }
}

// Identity sets the client identity submissions carry (the X-Dkip-Client
// header), the bucket the daemon's fair-share gate admits them under.
// Default: host-pid. Empty keeps the default — an identityless client would
// land in the daemon's shared anonymous bucket and contend with every
// headerless curl on the network.
func Identity(id string) ClientOption {
	return func(c *Client) {
		if id = strings.TrimSpace(id); id != "" {
			c.identity = id
		}
	}
}

// SubmitTimeout bounds each POST /v1/runs attempt (default none: full-scale
// simulations legitimately take minutes, so only the caller knows a safe
// bound). With a bound, a daemon that accepts submissions but never answers
// — a wedged store mount, a deadlocked host — becomes a transient failure
// the retry and pool-failover machinery can act on, instead of holding the
// sweep forever.
func SubmitTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.submitTimeout = d }
}

// NewClient builds a client for the daemon at base (e.g.
// "http://localhost:8321"). Simulation submissions get no overall timeout —
// full-scale runs legitimately take minutes and the daemon bounds its own
// work — but connecting is bounded (a blackholed host must fail fast enough
// for retries and pool failover to act, not stall for the OS connect
// default), submissions are retried with backoff on transient failures
// (WithRetry), and every metadata endpoint gets a per-request context
// timeout (MetaTimeout) so a hung daemon can never stall the CLI forever.
func NewClient(base string, opts ...ClientOption) *Client {
	// Clone the default transport rather than replacing it, keeping proxy
	// support, the TLS handshake timeout, and connection pooling; only the
	// connect bound is ours.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.DialContext = (&net.Dialer{Timeout: 5 * time.Second}).DialContext
	c := &Client{
		base:        strings.TrimRight(base, "/"),
		hc:          &http.Client{Transport: tr},
		retry:       DefaultRetry,
		metaTimeout: 30 * time.Second,
		identity:    defaultIdentity(),
		results:     make(map[string]*sim.Result),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// metaCtx returns the bounded per-request context metadata endpoints use.
func (c *Client) metaCtx() (context.Context, context.CancelFunc) {
	if c.metaTimeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), c.metaTimeout)
}

// Run submits one spec and blocks until the daemon resolves it.
func (c *Client) Run(spec sim.RunSpec) (*sim.Result, error) {
	results, err := c.RunAll([]sim.RunSpec{spec})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunAll submits the batch in one POST /v1/runs and blocks until every run
// resolves; results[i] corresponds to specs[i]. Specs carrying opaque
// function fields are refused before anything is sent.
//
// The submission is idempotent — specs are content-keyed and the daemon
// serves duplicates from its singleflight and caches — so the whole round
// trip (submit and decode) is retried with capped backoff on transient
// failures: a daemon restart mid-sweep costs one backoff, not the sweep.
func (c *Client) RunAll(specs []sim.RunSpec) ([]*sim.Result, error) {
	return c.runAll(context.Background(), specs)
}

// runAll is RunAll under a caller-supplied context: the Pool's work-stealing
// path cancels the slower of two racing submissions through it. Cancellation
// surfaces as a non-transient error, so the retry loop stops immediately.
func (c *Client) runAll(ctx context.Context, specs []sim.RunSpec) ([]*sim.Result, error) {
	wire := make([]Spec, len(specs))
	for i, s := range specs {
		ws, err := EncodeSpec(s)
		if err != nil {
			return nil, err
		}
		wire[i] = ws
	}
	body, err := json.Marshal(struct {
		Specs []Spec `json:"specs"`
	}{wire})
	if err != nil {
		return nil, fmt.Errorf("serve: encode submission: %w", err)
	}
	var rr RunsResponse
	err = c.retry.Do(ctx, func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if c.submitTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, c.submitTimeout)
		}
		defer cancel()
		req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, c.base+"/v1/runs", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("serve: submit to %s: %w", c.base, err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(clientHeader, c.identity)
		resp, err := c.hc.Do(req)
		if err != nil {
			return fmt.Errorf("serve: submit to %s: %w", c.base, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return httpError(resp)
		}
		rr = RunsResponse{}
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			return fmt.Errorf("serve: decode response: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(rr.Results) != len(specs) {
		return nil, fmt.Errorf("serve: daemon returned %d results for %d specs", len(rr.Results), len(specs))
	}
	for i, res := range rr.Results {
		// A null entry would surface as a nil-pointer panic deep in the
		// registry (or the pool); reject it here as the protocol violation
		// it is.
		if res == nil {
			return nil, fmt.Errorf("serve: daemon returned a null result for spec %d", i)
		}
	}
	c.mu.Lock()
	for _, res := range rr.Results {
		if res.Key != "" {
			if _, seen := c.results[res.Key]; !seen {
				// Keep a private copy: the returned records are the
				// caller's to mutate, per the Backend contract.
				c.results[res.Key] = res.WithCached(res.Cached)
			}
		}
	}
	c.mu.Unlock()
	return rr.Results, nil
}

// Get fetches one result by content key. With wait set the daemon holds the
// request until the key resolves (bounded by its wait timeout); otherwise a
// miss returns an error wrapping the daemon's 404. Only the waiting form may
// block past the metadata timeout — a plain keyed read is metadata-sized.
func (c *Client) Get(key string, wait bool) (*sim.Result, error) {
	u := c.base + "/v1/runs/" + url.PathEscape(key)
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if wait {
		u += "?wait=1"
	} else {
		ctx, cancel = c.metaCtx()
	}
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("serve: get %s: %w", key, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: get %s: %w", key, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var res sim.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("serve: decode result: %w", err)
	}
	return &res, nil
}

// Manifest streams GET /v1/results (the daemon's store manifest, or its
// in-process results when it runs storeless), optionally filtered by arch
// and bench; empty filters match everything. The whole stream is bounded by
// the metadata timeout.
func (c *Client) Manifest(arch, bench string) ([]*sim.Result, error) {
	q := url.Values{}
	if arch != "" {
		q.Set("arch", arch)
	}
	if bench != "" {
		q.Set("bench", bench)
	}
	u := c.base + "/v1/results"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	ctx, cancel := c.metaCtx()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("serve: manifest: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var out []*sim.Result
	dec := json.NewDecoder(resp.Body)
	for {
		var res sim.Result
		if err := dec.Decode(&res); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("serve: decode manifest: %w", err)
		}
		out = append(out, &res)
	}
}

// Results returns copies of the unique runs this client has observed,
// sorted by content key — the same contract as sim.Runner.Results, so
// remote and local artifacts compare key-for-key.
func (c *Client) Results() []*sim.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*sim.Result, 0, len(c.results))
	for _, res := range c.results {
		out = append(out, res.WithCached(res.Cached))
	}
	sim.SortResults(out)
	return out
}

// Metrics fetches the daemon's cumulative counters, bounded by the metadata
// timeout. A transport failure reports zero metrics: Backend's Metrics is
// an observability read, and by the time it is called the submissions it
// describes have already succeeded.
func (c *Client) Metrics() sim.Metrics {
	ctx, cancel := c.metaCtx()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return sim.Metrics{}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return sim.Metrics{}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sim.Metrics{}
	}
	var mr MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return sim.Metrics{}
	}
	return mr.Metrics
}

// Members fetches the daemon's live fleet-membership view, bounded by the
// metadata timeout. A daemon without membership configured answers 404
// (surfaced as an *HTTPError), which Pool treats as "no dynamic membership
// here" rather than a failure.
func (c *Client) Members() ([]Member, error) {
	ctx, cancel := c.metaCtx()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/members", nil)
	if err != nil {
		return nil, fmt.Errorf("serve: members: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: members: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var mr MembersResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, fmt.Errorf("serve: decode members: %w", err)
	}
	return mr.Members, nil
}

// httpError turns a non-200 daemon answer into an *HTTPError carrying the
// status and the (plain text) body the handlers write. A failure reading
// the error body itself is surfaced next to whatever arrived, never
// silently shown as an empty message.
func httpError(resp *http.Response) error {
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	msg := strings.TrimSpace(string(body))
	if readErr != nil {
		if msg != "" {
			msg += " "
		}
		msg += fmt.Sprintf("(error body unreadable: %v)", readErr)
	}
	if msg == "" {
		msg = resp.Status
	}
	return &HTTPError{StatusCode: resp.StatusCode, Msg: msg}
}

// Healthy performs one GET /v1/healthz probe with a short per-attempt
// timeout — the liveness check Pool uses to admit a member back into the
// routing ring.
func Healthy(base string) error {
	// The probe gets its own deadline via context: without one, a single
	// connect to a blackholed address blocks for the OS default (minutes).
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: daemon at %s answered %s", base, resp.Status)
	}
	return nil
}

// WaitHealthy polls GET /v1/healthz until the daemon answers, the budget
// elapses, or ctx is canceled — the handshake cmd/experiments -remote and
// the CI smoke test use before submitting. A canceled context (the operator
// hit ^C while waiting) returns ctx's error immediately instead of burning
// the rest of the budget.
func WaitHealthy(ctx context.Context, base string, budget time.Duration) error {
	base = strings.TrimRight(base, "/")
	deadline := time.Now().Add(budget)
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	var lastErr error
	for {
		if lastErr = Healthy(base); lastErr == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: daemon at %s not healthy after %v: %w", base, budget, lastErr)
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return fmt.Errorf("serve: wait for daemon at %s: %w", base, context.Cause(ctx))
		}
	}
}
