package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dkip/internal/sim"
)

// flakyFront wraps a real Server handler and lets tests inject failures in
// front of it: the first `fail503` POSTs answer 503, the first `drop`
// POSTs have their connection closed mid-handshake, and while `dead` is
// set every request's connection is dropped (a crashed daemon).
type flakyFront struct {
	inner   http.Handler
	fail503 atomic.Int32
	drop    atomic.Int32
	dead    atomic.Bool
	wedged  atomic.Bool // accepts submissions, never answers them
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.dead.Load() {
		dropConn(w)
		return
	}
	if r.Method == http.MethodPost && r.URL.Path == "/v1/runs" {
		if f.wedged.Load() {
			// Consume the body first: with unread body bytes pending,
			// net/http never starts the background read that observes a
			// client abort, the context would never cancel, and the
			// server's Close would deadlock against this handler.
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done() // hold the request until the client gives up
			return
		}
		if f.fail503.Add(-1) >= 0 {
			http.Error(w, "serve: injected 503", http.StatusServiceUnavailable)
			return
		}
		if f.drop.Add(-1) >= 0 {
			dropConn(w)
			return
		}
	}
	f.inner.ServeHTTP(w, r)
}

// dropConn hijacks the connection and closes it without answering — the
// wire-level signature of a daemon dying mid-request.
func dropConn(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("test server does not support hijacking")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	conn.Close()
}

// newFlakyServer builds a real Server fronted by a failure injector.
func newFlakyServer(t *testing.T) (*httptest.Server, *flakyFront, *sim.Runner) {
	t.Helper()
	runner := sim.NewRunner()
	front := &flakyFront{inner: NewServer(runner, nil)}
	ts := httptest.NewServer(front)
	t.Cleanup(ts.Close)
	return ts, front, runner
}

// fastRetry keeps test retries fast while preserving the real policy shape.
var fastRetry = RetryPolicy{Attempts: 5, Base: time.Millisecond, Cap: 10 * time.Millisecond}

// A daemon answering 503 (draining, overloaded) for the first attempts must
// not abort the sweep: RunAll retries the idempotent submission and the
// daemon still simulates each unique spec exactly once.
func TestClientRunAllRetries503(t *testing.T) {
	ts, front, runner := newFlakyServer(t)
	front.fail503.Store(2)
	c := NewClient(ts.URL, WithRetry(fastRetry))
	results, err := c.RunAll(testSpecs())
	if err != nil {
		t.Fatalf("RunAll after injected 503s: %v", err)
	}
	for i, spec := range testSpecs() {
		if results[i].Key != spec.Key() {
			t.Errorf("result %d: key %q, want %q", i, results[i].Key, spec.Key())
		}
	}
	if m := runner.Metrics(); m.Simulated != 3 {
		t.Errorf("simulated %d unique specs, want 3", m.Simulated)
	}
}

// Connections dropped mid-request (a daemon restart) are equally
// retriable: the resubmission is served by the daemon's caches, never
// simulated twice.
func TestClientRunAllRetriesDroppedConnections(t *testing.T) {
	ts, front, runner := newFlakyServer(t)
	front.drop.Store(2)
	c := NewClient(ts.URL, WithRetry(fastRetry))
	if _, err := c.RunAll(testSpecs()); err != nil {
		t.Fatalf("RunAll after dropped connections: %v", err)
	}
	if m := runner.Metrics(); m.Simulated != 3 {
		t.Errorf("simulated %d unique specs, want 3", m.Simulated)
	}
}

// Permanent answers must fail immediately — retrying a bad spec would just
// re-reject it four times slower.
func TestClientRunAllDoesNotRetryPermanent(t *testing.T) {
	var posts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		http.Error(w, "serve: spec 0: no such bench", http.StatusBadRequest)
	}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, WithRetry(fastRetry))
	_, err := c.RunAll(testSpecs()[:1])
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("got %v, want a 400", err)
	}
	if n := posts.Load(); n != 1 {
		t.Errorf("client POSTed %d times for a permanent error, want 1", n)
	}
}

// Retries exhausting against a dead daemon must say so, carrying the
// attempt count — the troubleshooting hook the README documents.
func TestClientRunAllReportsExhaustedRetries(t *testing.T) {
	ts, front, _ := newFlakyServer(t)
	front.dead.Store(true)
	c := NewClient(ts.URL, WithRetry(RetryPolicy{Attempts: 2, Base: time.Millisecond, Cap: time.Millisecond}))
	_, err := c.RunAll(testSpecs()[:1])
	if err == nil || !strings.Contains(err.Error(), "retries exhausted after 2 attempts") {
		t.Fatalf("got %v, want a retries-exhausted error", err)
	}
}

// A submission body over the 16 MiB limit must answer 413 naming the
// limit, not a generic 400 "bad request body".
func TestSubmitOversizedBodyAnswers413(t *testing.T) {
	ts, runner := newTestServer(t, nil)
	// A valid JSON prefix with one giant string field keeps the decoder
	// reading until it crosses the byte limit.
	body := `{"arch":"dkip","bench":"swim","warmup":1,"measure":1,"tag":"` +
		strings.Repeat("a", maxSubmitBytes+1) + `"}`
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	msg, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(msg), "16777216-byte submission limit") {
		t.Errorf("413 body %q does not name the limit", msg)
	}
	if m := runner.Metrics(); m.Requested != 0 {
		t.Errorf("oversized body reached the runner: %+v", m)
	}
}

// errAfter yields some bytes, then fails — an error body truncated by a
// dying connection.
type errAfter struct {
	data []byte
	err  error
}

func (e *errAfter) Read(p []byte) (int, error) {
	if len(e.data) == 0 {
		return 0, e.err
	}
	n := copy(p, e.data)
	e.data = e.data[n:]
	return n, nil
}

// httpError must surface a failed error-body read instead of silently
// rendering an empty message.
func TestHTTPErrorReportsUnreadableBody(t *testing.T) {
	resp := &http.Response{
		StatusCode: http.StatusInternalServerError,
		Status:     "500 Internal Server Error",
		Body:       io.NopCloser(&errAfter{err: errors.New("connection reset")}),
	}
	err := httpError(resp)
	if !strings.Contains(err.Error(), "error body unreadable") || !strings.Contains(err.Error(), "connection reset") {
		t.Errorf("httpError on an unreadable body: %v", err)
	}

	// A partial body is kept alongside the read failure.
	resp.Body = io.NopCloser(&errAfter{data: []byte("serve: half a mess"), err: errors.New("reset")})
	err = httpError(resp)
	if !strings.Contains(err.Error(), "half a mess") || !strings.Contains(err.Error(), "error body unreadable") {
		t.Errorf("httpError dropped the partial body or the read error: %v", err)
	}

	// The ordinary path is unchanged: body rendered as-is.
	resp.Body = io.NopCloser(strings.NewReader("serve: no result for key \"x\"\n"))
	resp.StatusCode = http.StatusNotFound
	err = httpError(resp)
	if got := err.Error(); got != `serve: daemon answered 404: serve: no result for key "x"` {
		t.Errorf("plain httpError rendering changed: %q", got)
	}
}

// Metadata endpoints must be bounded by per-request contexts: a hung
// daemon cannot stall Metrics or Manifest (and thus the CLI) forever.
func TestMetadataRequestsTimeOut(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hang until the client gives up
	}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, MetaTimeout(100*time.Millisecond))

	start := time.Now()
	if m := c.Metrics(); m != (sim.Metrics{}) {
		t.Errorf("hung metrics returned %+v, want zeros", m)
	}
	if _, err := c.Manifest("", ""); err == nil {
		t.Error("hung manifest returned no error")
	}
	if _, err := c.Get("ab12", false); err == nil {
		t.Error("hung non-waiting Get returned no error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("metadata calls took %v against a hung daemon; the timeout is not applied", elapsed)
	}
}

// The healthz probe answers without touching runner or store, and
// WaitHealthy uses it: up daemon passes, dead daemon fails within budget.
func TestHealthzProbe(t *testing.T) {
	ts, runner := newTestServer(t, nil)
	if err := Healthy(ts.URL); err != nil {
		t.Fatalf("Healthy against a live daemon: %v", err)
	}
	if err := WaitHealthy(context.Background(), ts.URL, time.Second); err != nil {
		t.Fatalf("WaitHealthy against a live daemon: %v", err)
	}
	if m := runner.Metrics(); m.Requested != 0 {
		t.Errorf("health probes touched the runner: %+v", m)
	}
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()
	start := time.Now()
	if err := WaitHealthy(context.Background(), url, 300*time.Millisecond); err == nil {
		t.Error("WaitHealthy against a closed port succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("WaitHealthy did not respect its budget")
	}
}

// The healthz probe is deadline-bounded end to end — the regression
// dkipvet's ctxhygiene analyzer pinned: the probe used to ride a bare
// client.Get whose only bound was a transport-level timeout, invisible to
// the request context. A daemon that accepts the connection and then
// wedges must fail the probe within the probe's own deadline.
func TestHealthyBoundedAgainstWedgedDaemon(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // never answer; exit when the probe gives up
	}))
	defer ts.Close()
	start := time.Now()
	if err := Healthy(ts.URL); err == nil {
		t.Error("Healthy against a wedged daemon returned nil")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("probe took %v against a wedged daemon; the deadline is not applied", elapsed)
	}
}
