package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dkip/internal/sim"
)

// Concurrent alive() callers finding the same expired cooldown must share
// one revival probe, not stack duplicates against the host — the PR-4 code
// let every caller launch its own.
func TestAliveProbeSingleflight(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	probe := func(base string) error {
		calls.Add(1)
		<-release
		return nil
	}
	pool, err := NewPool([]string{"http://a:1", "http://b:1"},
		PoolProbe(probe), PoolCooldown(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	m := pool.snapshot()[0]
	m.mu.Lock()
	m.downUntil = time.Now().Add(-time.Millisecond) // cooldown just expired
	m.mu.Unlock()

	const callers = 8
	views := make([][]*member, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = pool.alive()
		}(i)
	}
	// Let every caller reach the probe (leader) or the join point
	// (followers), then let the one probe finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("%d concurrent alive() calls ran %d probes, want 1 (singleflight)", callers, got)
	}
	for i, v := range views {
		if len(v) != 2 {
			t.Errorf("caller %d saw %d alive members after the shared probe succeeded, want 2", i, len(v))
		}
	}
}

// A markDown landing while a revival probe is in flight is newer evidence
// than the probe's success: the member must stay down. The PR-4 code was
// last-write-wins, so a slow probe could revive a host a submission had
// just proven dead.
func TestMarkDownBeatsStaleProbeSuccess(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	probe := func(base string) error {
		close(started)
		<-release
		return nil // success — but stale by the time it lands
	}
	pool, err := NewPool([]string{"http://a:1"}, PoolProbe(probe), PoolCooldown(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	m := pool.snapshot()[0]
	m.mu.Lock()
	m.downUntil = time.Now().Add(-time.Millisecond)
	m.mu.Unlock()

	done := make(chan bool, 1)
	go func() { done <- pool.probeMember(m) }()
	<-started
	pool.markDown(m) // a submission fails while the probe runs
	close(release)
	if ok := <-done; ok {
		t.Fatal("stale probe success revived a member marked down mid-probe")
	}
	if !m.down(time.Now()) {
		t.Fatal("member is routable despite the newer markDown")
	}
}

// A member flapping dead/alive under concurrent sweeps: the probe
// singleflight, markDown generations, and re-route rounds interleave
// freely. Run under -race this is the regression test for the PR-4 probe
// races; the fallback keeps the sweeps finishing whatever the flap timing.
func TestPoolFlappingMemberConcurrentSweeps(t *testing.T) {
	a, frontA, _ := newFleetMember(t)
	b, _, _ := newFleetMember(t)
	pool := newTestPool(t, []*httptest.Server{a, b},
		PoolCooldown(time.Millisecond), PoolChunk(1), PoolFallback(sim.NewRunner()))

	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				frontA.dead.Store(false)
				return
			default:
			}
			frontA.dead.Store(i%2 == 0)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			specs := fleetSpecs(4)
			res, err := pool.RunAll(specs)
			if err != nil {
				t.Errorf("sweep through a flapping fleet: %v", err)
				return
			}
			for i, spec := range specs {
				if res[i].Key != spec.Key() || res[i].Stats == nil {
					t.Errorf("result %d: key %q, want %q", i, res[i].Key, spec.Key())
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	flapper.Wait()
}

// Dynamic membership end to end: a pool seeded with one daemon discovers a
// second through the fleet's own /v1/members view and routes keys to it;
// records stay identical to a local runner's; a graceful leave shrinks the
// ring back while the seed always stays.
func TestPoolDynamicMembership(t *testing.T) {
	dir := t.TempDir()
	storeA, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	storeB, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Registry.List only reads the store, so the servers can share view
	// registries built before their URLs exist.
	viewA := NewRegistry(storeA, "view", time.Minute)
	runnerA := sim.NewRunner(sim.WithStore(storeA))
	tsA := httptest.NewServer(NewServer(runnerA, storeA, WithMembers(viewA.List)))
	t.Cleanup(tsA.Close)
	viewB := NewRegistry(storeB, "view", time.Minute)
	runnerB := sim.NewRunner(sim.WithStore(storeB))
	tsB := httptest.NewServer(NewServer(runnerB, storeB, WithMembers(viewB.List)))
	t.Cleanup(tsB.Close)

	regA := NewRegistry(storeA, tsA.URL, time.Minute)
	regB := NewRegistry(storeB, tsB.URL, time.Minute)
	if err := regA.Announce(); err != nil {
		t.Fatal(err)
	}
	if err := regB.Announce(); err != nil {
		t.Fatal(err)
	}

	// The pool only knows daemon A; interval 0 refreshes every round.
	pool := newTestPool(t, []*httptest.Server{tsA}, PoolMembership(0), PoolChunk(1))
	specs := fleetSpecs(16)
	res, err := pool.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		if res[i].Key != spec.Key() || res[i].Stats == nil {
			t.Errorf("result %d: key %q, want %q", i, res[i].Key, spec.Key())
		}
	}
	if len(pool.snapshot()) != 2 {
		t.Fatalf("ring holds %d members after discovery, want 2", len(pool.snapshot()))
	}
	if got := runnerB.Metrics().Requested; got == 0 {
		t.Error("discovered daemon B served no requests: keys never routed to the joiner")
	}
	if sum := runnerA.Metrics().Simulated + runnerB.Metrics().Simulated; sum != uint64(uniqueKeys(specs)) {
		t.Errorf("fleet simulated %d runs for %d unique keys", sum, uniqueKeys(specs))
	}

	// Same records a local runner would produce — the byte-identical
	// artifact property survives dynamic membership.
	local := sim.NewRunner()
	if _, err := local.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	poolRes, localRes := pool.Results(), local.Results()
	if len(poolRes) != len(localRes) {
		t.Fatalf("pool recorded %d unique runs, local %d", len(poolRes), len(localRes))
	}
	for i := range poolRes {
		ps, _ := json.Marshal(poolRes[i].Stats)
		ls, _ := json.Marshal(localRes[i].Stats)
		if poolRes[i].Key != localRes[i].Key || string(ps) != string(ls) {
			t.Errorf("record %d (%s): pool and local records diverge", i, poolRes[i].Key)
		}
	}

	// B leaves gracefully: the next refresh drops it; the seed A stays even
	// though it is now the whole view.
	if err := regB.Leave(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.RunAll(specs[:2]); err != nil {
		t.Fatal(err)
	}
	ring := pool.snapshot()
	if len(ring) != 1 || ring[0].base != normalizeBase(tsA.URL) {
		bases := make([]string, len(ring))
		for i, m := range ring {
			bases[i] = m.base
		}
		t.Fatalf("ring after leave: %v, want just the seed %s", bases, tsA.URL)
	}
}

// Full churn in one sweep: a seeded member is dead and a fresh daemon has
// joined the fleet. The pool must discover the joiner through the
// survivors' membership view, re-route the dead member's keys across the
// enlarged ring, and still record exactly what a local runner would.
func TestPoolChurnDeadMemberPlusJoiner(t *testing.T) {
	dir := t.TempDir()
	stores := make([]*sim.Store, 3)
	for i := range stores {
		s, err := sim.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	runnerA := sim.NewRunner(sim.WithStore(stores[0]))
	tsA := httptest.NewServer(NewServer(runnerA, stores[0]))
	viewB := NewRegistry(stores[1], "view", time.Minute)
	runnerB := sim.NewRunner(sim.WithStore(stores[1]))
	tsB := httptest.NewServer(NewServer(runnerB, stores[1], WithMembers(viewB.List)))
	t.Cleanup(tsB.Close)
	viewC := NewRegistry(stores[2], "view", time.Minute)
	runnerC := sim.NewRunner(sim.WithStore(stores[2]))
	tsC := httptest.NewServer(NewServer(runnerC, stores[2], WithMembers(viewC.List)))
	t.Cleanup(tsC.Close)
	if err := NewRegistry(stores[1], tsB.URL, time.Minute).Announce(); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry(stores[2], tsC.URL, time.Minute).Announce(); err != nil {
		t.Fatal(err)
	}

	// The pool is seeded with A and B only; C joins via membership, and A
	// dies before any of its chunks can land.
	pool := newTestPool(t, []*httptest.Server{tsA, tsB}, PoolMembership(0), PoolChunk(1))
	tsA.Close()

	specs := fleetSpecs(16)
	res, err := pool.RunAll(specs)
	if err != nil {
		t.Fatalf("sweep through a dead member plus a joiner: %v", err)
	}
	for i, spec := range specs {
		if res[i].Key != spec.Key() || res[i].Stats == nil {
			t.Errorf("result %d: key %q, want %q", i, res[i].Key, spec.Key())
		}
	}
	if got := runnerC.Metrics().Requested; got == 0 {
		t.Error("joiner served no requests: the dead member's keys never reached it")
	}
	if got := runnerA.Metrics().Requested; got != 0 {
		t.Errorf("dead member served %d requests", got)
	}
	if sum := runnerB.Metrics().Simulated + runnerC.Metrics().Simulated; sum != uint64(uniqueKeys(specs)) {
		t.Errorf("survivors simulated %d runs for %d unique keys", sum, uniqueKeys(specs))
	}

	// The artifact the churned fleet records is the one a local runner
	// produces.
	local := sim.NewRunner()
	if _, err := local.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	poolRes, localRes := pool.Results(), local.Results()
	if len(poolRes) != len(localRes) {
		t.Fatalf("pool recorded %d unique runs, local %d", len(poolRes), len(localRes))
	}
	for i := range poolRes {
		ps, _ := json.Marshal(poolRes[i].Stats)
		ls, _ := json.Marshal(localRes[i].Stats)
		if poolRes[i].Key != localRes[i].Key || string(ps) != string(ls) {
			t.Errorf("record %d (%s): churned-fleet and local records diverge", i, poolRes[i].Key)
		}
	}
}

// A fleet of pre-membership daemons (404 on /v1/members) keeps working with
// PoolMembership enabled: the ring stays pinned to the seed list.
func TestPoolMembershipBackwardCompatible(t *testing.T) {
	a, _, _ := newFleetMember(t) // plain server: no WithMembers
	b, _, _ := newFleetMember(t)
	pool := newTestPool(t, []*httptest.Server{a, b}, PoolMembership(0))
	if _, err := pool.RunAll(testSpecs()); err != nil {
		t.Fatal(err)
	}
	if len(pool.snapshot()) != 2 {
		t.Errorf("ring changed against a membership-less fleet: %d members", len(pool.snapshot()))
	}
}

// Work-stealing: a chunk stuck on a wedged member (healthz fine,
// submissions never answered, no submit timeout configured) is resubmitted
// to the idle peer after the steal deadline, and the canceled duplicate
// does not fail the sweep.
func TestPoolStealsFromStraggler(t *testing.T) {
	a, frontA, ra := newFleetMember(t)
	frontA.wedged.Store(true)
	b, _, rb := newFleetMember(t)
	pool := newTestPool(t, []*httptest.Server{a, b}, PoolSteal(100*time.Millisecond))

	specs := fleetSpecs(6)
	done := make(chan error, 1)
	var res []*sim.Result
	go func() {
		var err error
		res, err = pool.RunAll(specs)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunAll with a wedged member and stealing: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunAll hung on the wedged member despite work-stealing")
	}
	for i, spec := range specs {
		if res[i].Key != spec.Key() || res[i].Stats == nil {
			t.Errorf("stolen result %d: key %q, want %q", i, res[i].Key, spec.Key())
		}
	}
	if got := ra.Metrics().Simulated; got != 0 {
		t.Errorf("wedged member simulated %d runs", got)
	}
	if got, want := rb.Metrics().Simulated, uint64(uniqueKeys(specs)); got != want {
		t.Errorf("peer simulated %d runs, want %d (the stolen chunks)", got, want)
	}
}

// Pool.WaitHealthy honors its context: canceling while no member answers
// returns promptly instead of burning the budget.
func TestPoolWaitHealthyHonorsContext(t *testing.T) {
	dead, _, _ := newFleetMember(t)
	dead.Close()
	pool := newTestPool(t, []*httptest.Server{dead})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- pool.WaitHealthy(ctx, time.Minute) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("canceled WaitHealthy returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitHealthy ignored its canceled context")
	}
}
