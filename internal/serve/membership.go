package serve

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"dkip/internal/sim"
)

// Dynamic fleet membership: each daemon registers itself in the shared
// sim.Store as a heartbeat lease (a small JSON blob renewed every TTL/3)
// and serves the merged, expiry-filtered view over GET /v1/members. A Pool
// given PoolMembership refreshes its routing ring from that view between
// re-route rounds, so daemons join or leave mid-sweep without client
// restarts — and rendezvous routing guarantees surviving members' keys
// stay pinned while they do.

// Member is one fleet member as advertised over GET /v1/members.
type Member struct {
	// URL is the base URL peers and clients reach the daemon at.
	URL string `json:"url"`
	// Expires is the lease deadline in Unix milliseconds: a daemon that
	// stops heartbeating (crash, partition) vanishes from the view when its
	// lease passes, without anyone deregistering it.
	Expires int64 `json:"expires_unix_ms"`
}

// Live reports whether the lease is current.
func (m Member) Live(now time.Time) bool {
	return m.URL != "" && now.UnixMilli() < m.Expires
}

// normalizeBase canonicalizes a daemon base URL the way NewPool always has
// (trimmed, no trailing slash), so the same daemon advertised and seeded
// under cosmetically different spellings still occupies one ring slot.
func normalizeBase(base string) string {
	return strings.TrimRight(strings.TrimSpace(base), "/")
}

// membersKind is the store blob namespace membership leases are filed
// under: <dir>/members/<key[:2]>/<key>.bin.
const membersKind = "members"

// DefaultMemberTTL is the lease lifetime daemons announce with unless
// configured otherwise: long enough that a heartbeat every TTL/3 rides out
// scheduler hiccups, short enough that a crashed daemon leaves the view
// before a sweep burns many re-route rounds on it.
const DefaultMemberTTL = 15 * time.Second

// memberKey derives the content key a member's lease is filed under — a
// hex digest of the advertised URL, so re-announcing is an overwrite and
// two daemons can never collide unless they advertise the same URL.
func memberKey(url string) string {
	h := fnv.New64a()
	io.WriteString(h, url)
	return hex.EncodeToString(h.Sum(nil))
}

// Registry is a daemon's handle on the fleet's store-backed membership:
// Announce writes this daemon's lease, Heartbeat renews it periodically,
// Leave withdraws it (the graceful-shutdown path), and List reads the
// merged live view. All methods are safe for concurrent use; every daemon
// sharing one store directory sees one membership.
type Registry struct {
	store *sim.Store
	self  string
	ttl   time.Duration

	mu   sync.Mutex
	stop chan struct{} // non-nil while a heartbeat loop runs
}

// NewRegistry builds a registry over the fleet's shared store. self is the
// base URL this daemon advertises (how peers reach it, not its listen
// address); ttl <= 0 uses DefaultMemberTTL.
func NewRegistry(store *sim.Store, self string, ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = DefaultMemberTTL
	}
	return &Registry{store: store, self: normalizeBase(self), ttl: ttl}
}

// Self returns the advertised base URL.
func (r *Registry) Self() string { return r.self }

// Announce writes (or renews) this daemon's lease: present for one TTL
// from now.
func (r *Registry) Announce() error {
	lease := Member{URL: r.self, Expires: time.Now().Add(r.ttl).UnixMilli()}
	data, err := json.Marshal(lease)
	if err != nil {
		return fmt.Errorf("serve: announce member: %w", err)
	}
	if err := r.store.PutBlob(membersKind, memberKey(r.self), data); err != nil {
		return fmt.Errorf("serve: announce member: %w", err)
	}
	return nil
}

// Heartbeat announces immediately, then renews the lease every TTL/3 from
// a background goroutine until Leave (or the returned stop function) is
// called. Renewal failures are reported through onErr (nil to ignore) and
// retried on the next beat — a transiently unwritable store costs
// freshness, not membership, until the lease actually expires.
func (r *Registry) Heartbeat(onErr func(error)) (stop func()) {
	if err := r.Announce(); err != nil && onErr != nil {
		onErr(err)
	}
	r.mu.Lock()
	if r.stop != nil {
		// Already beating: the existing loop keeps the lease fresh.
		r.mu.Unlock()
		return func() {}
	}
	ch := make(chan struct{})
	r.stop = ch
	r.mu.Unlock()
	go func() {
		ticker := time.NewTicker(r.ttl / 3)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := r.Announce(); err != nil && onErr != nil {
					onErr(err)
				}
			case <-ch:
				return
			}
		}
	}()
	return func() { r.stopHeartbeat() }
}

func (r *Registry) stopHeartbeat() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		close(r.stop)
		r.stop = nil
	}
}

// Leave stops the heartbeat and withdraws the lease — the graceful
// departure a SIGTERMed daemon performs so clients drop it immediately
// instead of waiting out the TTL.
func (r *Registry) Leave() error {
	r.stopHeartbeat()
	if err := r.store.DeleteBlob(membersKind, memberKey(r.self)); err != nil {
		return fmt.Errorf("serve: leave fleet: %w", err)
	}
	return nil
}

// List returns the live membership view, sorted by URL: every lease in the
// store that has not expired. Leases dead for over ten TTLs are garbage-
// collected in passing, so a fleet that churns hosts for months does not
// accumulate tombstones.
func (r *Registry) List() []Member {
	now := time.Now()
	var out []Member
	_ = r.store.WalkBlobs(membersKind, func(key string, data []byte) error {
		var m Member
		if err := json.Unmarshal(data, &m); err != nil {
			return nil // torn or foreign blob: not a member
		}
		if m.Live(now) {
			out = append(out, m)
		} else if now.UnixMilli()-m.Expires > 10*r.ttl.Milliseconds() {
			_ = r.store.DeleteBlob(membersKind, key)
		}
		return nil
	})
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
