package serve

import (
	"errors"
	"testing"
	"time"

	"dkip/internal/sim"
)

// Registry lifecycle over one shared store: announce makes a daemon
// visible, Leave withdraws it immediately, an unrenewed lease expires on
// its own, and leases long dead are garbage-collected off disk.
func TestRegistryLifecycle(t *testing.T) {
	store, err := sim.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ra := NewRegistry(store, "http://a:8321/", 0) // trailing slash normalized, TTL defaulted
	rb := NewRegistry(store, "http://b:8321", 40*time.Millisecond)
	if err := ra.Announce(); err != nil {
		t.Fatal(err)
	}
	if err := rb.Announce(); err != nil {
		t.Fatal(err)
	}
	urls := func() []string {
		var out []string
		for _, m := range ra.List() {
			out = append(out, m.URL)
		}
		return out
	}
	if got := urls(); len(got) != 2 || got[0] != "http://a:8321" || got[1] != "http://b:8321" {
		t.Fatalf("List after two announces: %v", got)
	}

	if err := ra.Leave(); err != nil {
		t.Fatal(err)
	}
	if got := urls(); len(got) != 1 || got[0] != "http://b:8321" {
		t.Fatalf("List after a left: %v", got)
	}

	// b's short lease expires without anyone deregistering it.
	time.Sleep(60 * time.Millisecond)
	if got := urls(); len(got) != 0 {
		t.Fatalf("List served an expired lease: %v", got)
	}
	// The tombstone survives until it is ten TTLs stale, then a List GCs it.
	if _, ok := store.GetBlob("members", memberKey("http://b:8321")); !ok {
		t.Fatal("expired lease was GCed before its tombstone window passed")
	}
	// GC is judged against the reader's TTL, so the short-TTL registry
	// collects it; ra (default TTL) would keep the tombstone for minutes.
	time.Sleep(450 * time.Millisecond) // well past 10 × 40ms
	rb.List()
	if _, ok := store.GetBlob("members", memberKey("http://b:8321")); ok {
		t.Fatal("long-dead lease was never garbage-collected")
	}
}

// Heartbeat keeps a short lease alive well past its TTL, and stopping it
// lets the lease lapse.
func TestRegistryHeartbeatKeepsLeaseFresh(t *testing.T) {
	store, err := sim.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(store, "http://a:1", 90*time.Millisecond)
	stop := r.Heartbeat(func(err error) { t.Errorf("heartbeat: %v", err) })
	defer stop()
	time.Sleep(250 * time.Millisecond) // several TTLs
	if got := len(r.List()); got != 1 {
		t.Fatalf("heartbeat did not keep the lease: %d members live", got)
	}
	if err := r.Leave(); err != nil {
		t.Fatal(err)
	}
	if got := len(r.List()); got != 0 {
		t.Fatalf("member visible after Leave: %d", got)
	}
}

// GET /v1/members answers 404 on a daemon without membership configured —
// the backward-compatibility signal Pool keys off — and serves the view
// when one is attached.
func TestMembersEndpoint(t *testing.T) {
	bare, _ := newTestServer(t, nil)
	_, err := NewClient(bare.URL).Members()
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != 404 {
		t.Fatalf("Members on a membership-less daemon: %v, want an HTTP 404", err)
	}

	view := []Member{{URL: "http://a:1", Expires: time.Now().Add(time.Minute).UnixMilli()}}
	ts, _ := newTestServer(t, nil, WithMembers(func() []Member { return view }))
	got, err := NewClient(ts.URL).Members()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].URL != "http://a:1" {
		t.Fatalf("Members = %v, want the attached view", got)
	}
}
