package serve

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"dkip/internal/sim"
)

// Pool is a sim.Backend that federates a fleet of dkipd daemons. Every spec
// is routed to one daemon by rendezvous hashing on its content key, so the
// same spec always lands on the same daemon's singleflight and memo cache no
// matter which client submits it; batches are chunked into bounded
// sub-batches and submitted concurrently under an in-flight window. Each
// member Client retries transient failures with backoff; when a member's
// retries exhaust, the Pool marks it down for a cooldown and re-routes its
// keys across the survivors (rendezvous hashing guarantees the survivors'
// own assignments do not move). When every backend is down, the Pool fails
// over to an optional local sim.Runner so a sweep always finishes. One
// caveat: a member that accepts submissions but never answers them is, by
// default, indistinguishable from one running a long simulation — bound
// submissions with PoolSubmitTimeout when sweep latency is known so such a
// member re-routes too.
//
// Determinism survives federation: Results reports the unique records seen
// fleet-wide, key-sorted like every other Backend, so a -json artifact
// produced through a Pool compares byte-for-byte (outside the metrics
// section) with a local run's.
type Pool struct {
	members       []*member
	chunk         int
	window        chan struct{}
	retry         RetryPolicy
	cooldown      time.Duration
	submitTimeout time.Duration
	probe         func(base string) error
	fallback      *sim.Runner

	mu      sync.Mutex
	results map[string]*sim.Result
}

var _ sim.Backend = (*Pool)(nil)

// member is one daemon of the fleet plus its health state.
type member struct {
	base   string
	client *Client

	mu        sync.Mutex
	downUntil time.Time // zero when the member is routable
}

// down reports whether the member is currently out of the routing ring —
// the single definition of "down" the dispatch path, revival probing, and
// Metrics all consult.
func (m *member) down(now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.downUntil.IsZero() && now.Before(m.downUntil)
}

// PoolOption configures a Pool.
type PoolOption func(*Pool)

// PoolChunk bounds specs per sub-batch POST (default 32); n <= 0 keeps the
// default. Smaller chunks lose less work to a dying daemon and re-route
// sooner; larger chunks amortize round trips.
func PoolChunk(n int) PoolOption {
	return func(p *Pool) {
		if n > 0 {
			p.chunk = n
		}
	}
}

// PoolWindow bounds chunk submissions in flight across the whole fleet
// (default 2× the member count); n <= 0 keeps the default.
func PoolWindow(n int) PoolOption {
	return func(p *Pool) {
		if n > 0 {
			p.window = make(chan struct{}, n)
		}
	}
}

// PoolRetry sets the per-submission retry policy the member clients use.
func PoolRetry(rp RetryPolicy) PoolOption {
	return func(p *Pool) { p.retry = rp }
}

// PoolSubmitTimeout bounds each chunk-submission attempt (default none —
// full-scale chunks legitimately simulate for minutes). With a bound, a
// daemon that accepts submissions but never answers (wedged store mount,
// deadlocked host) is re-routed like any other transient failure instead of
// holding the sweep; without one, such a member can still stall a sweep
// even though its healthz probe passes.
func PoolSubmitTimeout(d time.Duration) PoolOption {
	return func(p *Pool) { p.submitTimeout = d }
}

// PoolCooldown sets how long a failed member stays out of the routing ring
// before a health probe may readmit it (default 15s).
func PoolCooldown(d time.Duration) PoolOption {
	return func(p *Pool) {
		if d > 0 {
			p.cooldown = d
		}
	}
}

// PoolProbe replaces the health probe (default Healthy, one short
// GET /v1/healthz). Tests inject failures through it.
func PoolProbe(f func(base string) error) PoolOption {
	return func(p *Pool) {
		if f != nil {
			p.probe = f
		}
	}
}

// PoolFallback attaches a local Runner the Pool fails over to when every
// backend is down — typically sharing the fleet's -cache-dir so locally
// simulated results persist where the daemons will find them.
func PoolFallback(r *sim.Runner) PoolOption {
	return func(p *Pool) { p.fallback = r }
}

// NewPool builds a Pool over the given daemon base URLs (e.g.
// "http://a:8321", "http://b:8321"). Empty entries are dropped; duplicate
// bases are an error — two ring slots for one daemon would skew routing.
func NewPool(bases []string, opts ...PoolOption) (*Pool, error) {
	p := &Pool{
		chunk:    32,
		retry:    DefaultRetry,
		cooldown: 15 * time.Second,
		probe:    Healthy,
		results:  make(map[string]*sim.Result),
	}
	seen := make(map[string]bool)
	for _, b := range bases {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b == "" {
			continue
		}
		if seen[b] {
			return nil, fmt.Errorf("serve: pool backend %s listed twice", b)
		}
		seen[b] = true
		p.members = append(p.members, &member{base: b})
	}
	if len(p.members) == 0 {
		return nil, fmt.Errorf("serve: pool needs at least one backend URL")
	}
	for _, o := range opts {
		o(p)
	}
	for _, m := range p.members {
		// Member metadata reads get a short timeout: Pool.Metrics must not
		// stall for half a minute on a host that died between sweeps.
		m.client = NewClient(m.base, WithRetry(p.retry),
			MetaTimeout(5*time.Second), SubmitTimeout(p.submitTimeout))
	}
	if p.window == nil {
		p.window = make(chan struct{}, 2*len(p.members))
	}
	return p, nil
}

// WaitHealthy blocks until at least one backend answers its health probe or
// the budget elapses. One live member makes the whole pool usable —
// rendezvous routing only ever targets members that look alive.
func (p *Pool) WaitHealthy(budget time.Duration) error {
	deadline := time.Now().Add(budget)
	var lastErr error
	for {
		for _, m := range p.members {
			if lastErr = p.probe(m.base); lastErr == nil {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: none of %d pool backends healthy after %v: %w",
				len(p.members), budget, lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// alive returns the currently routable members. A member whose down
// cooldown has elapsed gets one health probe: success rejoins it to the
// ring, failure extends the cooldown — keys never route back to a host that
// cannot answer a trivial GET. Expired-cooldown members are probed
// concurrently, so several dead hosts cost the round one probe timeout, not
// one each.
func (p *Pool) alive() []*member {
	now := time.Now()
	var out, expired []*member
	for _, m := range p.members {
		m.mu.Lock()
		downUntil := m.downUntil
		m.mu.Unlock()
		switch {
		case downUntil.IsZero():
			out = append(out, m)
		case now.Before(downUntil):
			// Still cooling down; not probed, not routable.
		default:
			expired = append(expired, m)
		}
	}
	if len(expired) == 0 {
		return out
	}
	revived := make([]bool, len(expired))
	var wg sync.WaitGroup
	for i, m := range expired {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			if err := p.probe(m.base); err != nil {
				p.markDown(m)
				return
			}
			m.mu.Lock()
			m.downUntil = time.Time{}
			m.mu.Unlock()
			revived[i] = true
		}(i, m)
	}
	wg.Wait()
	for i, m := range expired {
		if revived[i] {
			out = append(out, m)
		}
	}
	return out
}

// markDown takes a member out of the routing ring for one cooldown.
func (p *Pool) markDown(m *member) {
	m.mu.Lock()
	m.downUntil = time.Now().Add(p.cooldown)
	m.mu.Unlock()
}

// route picks the member owning a content key by rendezvous
// (highest-random-weight) hashing over the alive set: every client agrees
// on the assignment without coordination, keys spread evenly, and when a
// member drops out only its own keys move to survivors — the survivors'
// assignments (and therefore their daemons' warm caches) are untouched.
func route(key string, members []*member) *member {
	var best *member
	var bestScore uint64
	for _, m := range members {
		if score := rendezvousScore(key, m.base); best == nil || score > bestScore ||
			(score == bestScore && m.base < best.base) {
			best, bestScore = m, score
		}
	}
	return best
}

// rendezvousScore hashes (key, base) into one 64-bit weight. Raw FNV-1a is
// not enough here: a byte that differs only near the end of the input
// perturbs just the low bits, so the member whose base hashes highest would
// win every key. The splitmix64 finalizer avalanches the digest so every
// input bit reaches every score bit.
func rendezvousScore(key, base string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	h.Write([]byte{0})
	io.WriteString(h, base)
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Run submits one spec through the fleet.
func (p *Pool) Run(spec sim.RunSpec) (*sim.Result, error) {
	results, err := p.RunAll([]sim.RunSpec{spec})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunAll routes each spec to its daemon, submits bounded chunks
// concurrently, and blocks until every run resolves; results[i] corresponds
// to specs[i]. Chunks that fail transiently after their member's retries
// re-route to surviving members; with no survivors the remainder runs on
// the local fallback Runner, or the sweep fails if none is configured.
// Specs carrying opaque function fields are refused before anything is
// sent, like Client.RunAll.
func (p *Pool) RunAll(specs []sim.RunSpec) ([]*sim.Result, error) {
	keys := make([]string, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if !s.Portable() {
			return nil, fmt.Errorf("serve: spec %s carries opaque function fields and cannot run on a fleet", s.Label())
		}
		keys[i] = s.Key()
	}
	// One submission per unique key: in-batch duplicates are resolved once
	// fleet-wide and copied per index below.
	unique := make(map[string]sim.RunSpec, len(specs))
	var pending []string
	for i, k := range keys {
		if _, ok := unique[k]; !ok {
			unique[k] = specs[i]
			pending = append(pending, k)
		}
	}

	resolved := make(map[string]*sim.Result, len(unique))
	for round := 0; len(pending) > 0; round++ {
		alive := p.alive()
		if len(alive) == 0 || round > len(p.members) {
			// Every backend is down, or the round budget is spent (a member
			// keeps passing its health probe and then failing submissions):
			// the sweep still finishes if a local fallback was configured.
			if p.fallback == nil {
				if len(alive) == 0 {
					return nil, fmt.Errorf("serve: could not place %d runs: all %d pool backends unhealthy and no local fallback configured",
						len(pending), len(p.members))
				}
				return nil, fmt.Errorf("serve: could not place %d runs after %d re-route rounds (backends accept probes but fail submissions) and no local fallback configured",
					len(pending), round)
			}
			fspecs := make([]sim.RunSpec, len(pending))
			for i, k := range pending {
				fspecs[i] = unique[k]
			}
			results, err := p.fallback.RunAll(fspecs)
			if err != nil {
				return nil, err
			}
			for i, k := range pending {
				resolved[k] = results[i]
			}
			pending = nil
			break
		}

		groups := make(map[*member][]string, len(alive))
		for _, k := range pending {
			m := route(k, alive)
			groups[m] = append(groups[m], k)
		}
		var (
			wg       sync.WaitGroup
			outMu    sync.Mutex
			failures []string // keys to re-route next round
			fatal    error
		)
		for m, mkeys := range groups {
			for start := 0; start < len(mkeys); start += p.chunk {
				ck := mkeys[start:min(start+p.chunk, len(mkeys))]
				wg.Add(1)
				p.window <- struct{}{}
				go func(m *member, ck []string) {
					defer wg.Done()
					defer func() { <-p.window }()
					// Another chunk may have marked this member down while
					// we queued for a window slot: skip straight to
					// re-routing instead of burning a full retry ladder
					// against a host already known dead.
					if m.down(time.Now()) {
						outMu.Lock()
						failures = append(failures, ck...)
						outMu.Unlock()
						return
					}
					cs := make([]sim.RunSpec, len(ck))
					for i, k := range ck {
						cs[i] = unique[k]
					}
					res, err := m.client.RunAll(cs)
					outMu.Lock()
					defer outMu.Unlock()
					if err != nil {
						if Transient(err) {
							p.markDown(m)
							failures = append(failures, ck...)
						} else if fatal == nil {
							fatal = err
						}
						return
					}
					for i, k := range ck {
						resolved[k] = res[i]
					}
				}(m, ck)
			}
		}
		wg.Wait()
		if fatal != nil {
			return nil, fatal
		}
		// Deterministic re-route order regardless of chunk completion order.
		sort.Strings(failures)
		pending = failures
	}

	p.mu.Lock()
	for k, r := range resolved {
		if _, seen := p.results[k]; !seen {
			p.results[k] = r.WithCached(r.Cached)
		}
	}
	p.mu.Unlock()
	out := make([]*sim.Result, len(specs))
	for i, k := range keys {
		// Each index gets its own copy, per the Backend contract.
		out[i] = resolved[k].WithCached(resolved[k].Cached)
	}
	return out, nil
}

// Results returns copies of the unique runs resolved fleet-wide (including
// any the local fallback simulated), sorted by content key — the same
// contract as Runner.Results and Client.Results, so pool, single-daemon,
// and local artifacts compare key-for-key.
func (p *Pool) Results() []*sim.Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*sim.Result, 0, len(p.results))
	for _, res := range p.results {
		out = append(out, res.WithCached(res.Cached))
	}
	sim.SortResults(out)
	return out
}

// Metrics sums the daemons' cumulative counters into one fleet-wide view,
// plus the local fallback Runner's when one is configured. Members
// currently marked down contribute zeros (matching Client.Metrics on an
// unreachable daemon) instead of stalling the read.
func (p *Pool) Metrics() sim.Metrics {
	now := time.Now()
	// Fan the per-member reads out like alive() fans probes out: several
	// dead-but-not-marked members cost one metadata timeout, not one each.
	snaps := make([]sim.Metrics, len(p.members))
	var wg sync.WaitGroup
	for i, m := range p.members {
		if m.down(now) {
			continue
		}
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			snaps[i] = m.client.Metrics()
		}(i, m)
	}
	wg.Wait()
	var total sim.Metrics
	for _, s := range snaps {
		total = total.Plus(s)
	}
	if p.fallback != nil {
		total = total.Plus(p.fallback.Metrics())
	}
	return total
}
