package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dkip/internal/sim"
)

// Pool is a sim.Backend that federates a fleet of dkipd daemons. Every spec
// is routed to one daemon by rendezvous hashing on its content key, so the
// same spec always lands on the same daemon's singleflight and memo cache no
// matter which client submits it; batches are chunked into bounded
// sub-batches and submitted concurrently under an in-flight window. Each
// member Client retries transient failures with backoff; when a member's
// retries exhaust, the Pool marks it down for a cooldown and re-routes its
// keys across the survivors (rendezvous hashing guarantees the survivors'
// own assignments do not move). When every backend is down, the Pool fails
// over to an optional local sim.Runner so a sweep always finishes. One
// caveat: a member that accepts submissions but never answers them is, by
// default, indistinguishable from one running a long simulation — bound
// submissions with PoolSubmitTimeout when sweep latency is known so such a
// member re-routes too, or race its chunks against idle peers with
// PoolSteal.
//
// With PoolMembership the ring is dynamic: between re-route rounds the Pool
// refreshes its member set from the fleet's own GET /v1/members view, so
// daemons joining or leaving mid-sweep are picked up without a client
// restart — and rendezvous routing keeps surviving members' keys pinned
// while they do.
//
// Determinism survives federation: Results reports the unique records seen
// fleet-wide, key-sorted like every other Backend, so a -json artifact
// produced through a Pool compares byte-for-byte (outside the metrics
// section) with a local run's.
type Pool struct {
	chunk         int
	window        chan struct{}
	retry         RetryPolicy
	cooldown      time.Duration
	submitTimeout time.Duration
	probe         func(base string) error
	fallback      *sim.Runner
	identity      string
	steal         time.Duration

	membership      bool
	refreshInterval time.Duration

	// membersMu guards the ring. The slice is replaced wholesale on
	// reconcile (never mutated in place), so a snapshot stays valid across a
	// refresh; individual member health lives in each member's own lock.
	membersMu   sync.RWMutex
	members     []*member
	lastRefresh time.Time

	// seeds are the URLs the Pool was constructed with. Reconcile never
	// drops a seed — health probing sidelines a dead one on its own — so an
	// operator's explicit fleet list survives a membership view that is
	// temporarily empty or partial.
	seeds map[string]bool

	mu      sync.Mutex
	results map[string]*sim.Result
}

var _ sim.Backend = (*Pool)(nil)

// member is one daemon of the fleet plus its health state.
type member struct {
	base   string
	client *Client

	mu        sync.Mutex
	downUntil time.Time     // zero when the member is routable
	gen       uint64        // bumped by every markDown; stale probe outcomes must not override newer evidence
	probing   chan struct{} // non-nil while one revival probe runs; followers wait on it

	inflight  atomic.Int32 // chunk submissions currently in flight to this member
	latencyNs atomic.Int64 // last successful chunk's latency; 0 until observed
}

// down reports whether the member is currently out of the routing ring —
// the single definition of "down" the dispatch path, revival probing, and
// Metrics all consult.
func (m *member) down(now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.downUntil.IsZero() && now.Before(m.downUntil)
}

// PoolOption configures a Pool.
type PoolOption func(*Pool)

// PoolChunk bounds specs per sub-batch POST (default 32); n <= 0 keeps the
// default. Smaller chunks lose less work to a dying daemon and re-route
// sooner; larger chunks amortize round trips.
func PoolChunk(n int) PoolOption {
	return func(p *Pool) {
		if n > 0 {
			p.chunk = n
		}
	}
}

// PoolWindow bounds chunk submissions in flight across the whole fleet
// (default 2× the seed member count); n <= 0 keeps the default.
func PoolWindow(n int) PoolOption {
	return func(p *Pool) {
		if n > 0 {
			p.window = make(chan struct{}, n)
		}
	}
}

// PoolRetry sets the per-submission retry policy the member clients use.
func PoolRetry(rp RetryPolicy) PoolOption {
	return func(p *Pool) { p.retry = rp }
}

// PoolSubmitTimeout bounds each chunk-submission attempt (default none —
// full-scale chunks legitimately simulate for minutes). With a bound, a
// daemon that accepts submissions but never answers (wedged store mount,
// deadlocked host) is re-routed like any other transient failure instead of
// holding the sweep; without one, such a member can still stall a sweep
// even though its healthz probe passes.
func PoolSubmitTimeout(d time.Duration) PoolOption {
	return func(p *Pool) { p.submitTimeout = d }
}

// PoolCooldown sets how long a failed member stays out of the routing ring
// before a health probe may readmit it (default 15s).
func PoolCooldown(d time.Duration) PoolOption {
	return func(p *Pool) {
		if d > 0 {
			p.cooldown = d
		}
	}
}

// PoolProbe replaces the health probe (default Healthy, one short
// GET /v1/healthz). Tests inject failures through it.
func PoolProbe(f func(base string) error) PoolOption {
	return func(p *Pool) {
		if f != nil {
			p.probe = f
		}
	}
}

// PoolFallback attaches a local Runner the Pool fails over to when every
// backend is down — typically sharing the fleet's -cache-dir so locally
// simulated results persist where the daemons will find them.
func PoolFallback(r *sim.Runner) PoolOption {
	return func(p *Pool) { p.fallback = r }
}

// PoolIdentity sets the client identity chunk submissions carry (the
// X-Dkip-Client header), the bucket the daemons' fair-share gates admit
// them under. Default: host-pid, shared by every member client of this
// Pool, so one sweep is one client fleet-wide.
func PoolIdentity(id string) PoolOption {
	return func(p *Pool) { p.identity = id }
}

// PoolMembership enables dynamic membership: between re-route rounds the
// Pool fetches GET /v1/members from a live member and reconciles its ring
// with the view — discovered daemons join the ring, departed ones (expired
// lease or graceful leave) drop out, seeds always stay. interval throttles
// steady-state refreshes (<= 0 refreshes every round; DefaultMemberTTL is a
// sensible production value); a re-route round always refreshes regardless,
// because failures are exactly when the ring is most likely stale.
func PoolMembership(interval time.Duration) PoolOption {
	return func(p *Pool) {
		p.membership = true
		p.refreshInterval = interval
	}
}

// PoolSteal enables work-stealing for stragglers: when a chunk has been in
// flight longer than d and an alive peer is idle, the chunk is resubmitted
// to the idlest peer and the two submissions race — first answer wins, the
// loser is canceled. Duplicated work is nearly free (specs are
// content-keyed; the daemons share one store, so the duplicate is usually a
// dedup or disk hit), while a straggling daemon stops gating the sweep's
// tail. Off by default.
func PoolSteal(d time.Duration) PoolOption {
	return func(p *Pool) {
		if d > 0 {
			p.steal = d
		}
	}
}

// NewPool builds a Pool over the given daemon base URLs (e.g.
// "http://a:8321", "http://b:8321"). Empty entries are dropped; duplicate
// bases are an error — two ring slots for one daemon would skew routing.
func NewPool(bases []string, opts ...PoolOption) (*Pool, error) {
	p := &Pool{
		chunk:    32,
		retry:    DefaultRetry,
		cooldown: 15 * time.Second,
		probe:    Healthy,
		seeds:    make(map[string]bool),
		results:  make(map[string]*sim.Result),
	}
	var order []string
	for _, b := range bases {
		b = normalizeBase(b)
		if b == "" {
			continue
		}
		if p.seeds[b] {
			return nil, fmt.Errorf("serve: pool backend %s listed twice", b)
		}
		p.seeds[b] = true
		order = append(order, b)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("serve: pool needs at least one backend URL")
	}
	for _, o := range opts {
		o(p)
	}
	for _, b := range order {
		p.members = append(p.members, p.newMember(b))
	}
	if p.window == nil {
		p.window = make(chan struct{}, 2*len(p.members))
	}
	return p, nil
}

// newMember builds a ring entry and its client; call after options are
// applied so the client inherits the Pool's retry, timeout, and identity.
func (p *Pool) newMember(base string) *member {
	m := &member{base: base}
	// Member metadata reads get a short timeout: Pool.Metrics must not
	// stall for half a minute on a host that died between sweeps.
	m.client = NewClient(base, WithRetry(p.retry),
		MetaTimeout(5*time.Second), SubmitTimeout(p.submitTimeout), Identity(p.identity))
	return m
}

// snapshot returns the current ring. The slice is immutable once published
// (reconcile replaces it wholesale), so callers may iterate without holding
// the lock.
func (p *Pool) snapshot() []*member {
	p.membersMu.RLock()
	defer p.membersMu.RUnlock()
	return p.members
}

// WaitHealthy blocks until at least one backend answers its health probe,
// the budget elapses, or ctx is canceled. One live member makes the whole
// pool usable — rendezvous routing only ever targets members that look
// alive.
func (p *Pool) WaitHealthy(ctx context.Context, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	var lastErr error
	for {
		members := p.snapshot()
		for _, m := range members {
			if lastErr = p.probe(m.base); lastErr == nil {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: none of %d pool backends healthy after %v: %w",
				len(members), budget, lastErr)
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return fmt.Errorf("serve: wait for pool backends: %w", context.Cause(ctx))
		}
	}
}

// alive returns the currently routable members. A member whose down
// cooldown has elapsed gets one health probe: success rejoins it to the
// ring, failure extends the cooldown — keys never route back to a host that
// cannot answer a trivial GET. Expired-cooldown members are probed
// concurrently, so several dead hosts cost the round one probe timeout, not
// one each; concurrent alive() calls share one probe per member rather than
// stacking duplicates against a slow host.
func (p *Pool) alive() []*member {
	now := time.Now()
	var out, expired []*member
	for _, m := range p.snapshot() {
		m.mu.Lock()
		downUntil := m.downUntil
		m.mu.Unlock()
		switch {
		case downUntil.IsZero():
			out = append(out, m)
		case now.Before(downUntil):
			// Still cooling down; not probed, not routable.
		default:
			expired = append(expired, m)
		}
	}
	if len(expired) == 0 {
		return out
	}
	revived := make([]bool, len(expired))
	var wg sync.WaitGroup
	for i, m := range expired {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			revived[i] = p.probeMember(m)
		}(i, m)
	}
	wg.Wait()
	for i, m := range expired {
		if revived[i] {
			out = append(out, m)
		}
	}
	return out
}

// probeMember runs (or joins) the singleflight revival probe for a member
// whose cooldown looked expired, and reports whether the member is routable
// afterwards. Concurrency rules: only one probe per member is in flight —
// late arrivals wait for its outcome instead of launching their own — and a
// markDown that lands while the probe runs (a submission failing right now)
// bumps the member's generation so the probe's stale success cannot revive
// a host that newer evidence says is down.
func (p *Pool) probeMember(m *member) bool {
	m.mu.Lock()
	if m.downUntil.IsZero() {
		m.mu.Unlock()
		return true
	}
	if time.Now().Before(m.downUntil) {
		m.mu.Unlock()
		return false
	}
	if ch := m.probing; ch != nil {
		// A probe is already in flight: join it.
		m.mu.Unlock()
		<-ch
		m.mu.Lock()
		ok := m.downUntil.IsZero()
		m.mu.Unlock()
		return ok
	}
	ch := make(chan struct{})
	m.probing = ch
	gen := m.gen
	m.mu.Unlock()

	err := p.probe(m.base)

	m.mu.Lock()
	var ok bool
	switch {
	case err != nil:
		// Extending the cooldown is safe even when a concurrent markDown
		// already did: both say "down".
		m.downUntil = time.Now().Add(p.cooldown)
	case m.gen == gen:
		// No markDown landed while the probe ran; the success is current.
		m.downUntil = time.Time{}
		ok = true
	default:
		// The probe raced a markDown and lost: the submission failure is
		// newer evidence than our successful GET. Leave the member as the
		// markDown set it.
		ok = m.downUntil.IsZero()
	}
	m.probing = nil
	m.mu.Unlock()
	close(ch)
	return ok
}

// markDown takes a member out of the routing ring for one cooldown and bumps
// its generation so any in-flight revival probe's success is discarded.
func (p *Pool) markDown(m *member) {
	m.mu.Lock()
	m.gen++
	m.downUntil = time.Now().Add(p.cooldown)
	m.mu.Unlock()
}

// refreshMembers fetches the membership view from the first alive member
// serving one and reconciles the ring; reports whether a reconcile ran.
// No-ops when membership is disabled, the throttle interval has not elapsed
// (unless force), no member answers, or the fleet does not serve membership
// (404 — a static fleet of pre-membership daemons keeps working unchanged).
func (p *Pool) refreshMembers(alive []*member, force bool) bool {
	if !p.membership {
		return false
	}
	p.membersMu.Lock()
	if !force && p.refreshInterval > 0 && !p.lastRefresh.IsZero() &&
		time.Since(p.lastRefresh) < p.refreshInterval {
		p.membersMu.Unlock()
		return false
	}
	p.lastRefresh = time.Now()
	p.membersMu.Unlock()
	for _, m := range alive {
		view, err := m.client.Members()
		if err != nil {
			var he *HTTPError
			if errors.As(err, &he) && he.StatusCode == http.StatusNotFound {
				return false // daemon without -advertise: no dynamic membership
			}
			continue // unreachable member: ask the next one
		}
		p.reconcile(view)
		return true
	}
	return false
}

// reconcile rebuilds the ring as the union of the seed URLs and the live
// membership view. Existing member objects are preserved so health state,
// probe generations, and in-flight accounting survive a refresh; discovered
// members join fresh, departed non-seeds drop out.
func (p *Pool) reconcile(view []Member) {
	now := time.Now()
	want := make(map[string]bool, len(view)+len(p.seeds))
	for b := range p.seeds {
		want[b] = true
	}
	for _, m := range view {
		if b := normalizeBase(m.URL); b != "" && m.Live(now) {
			want[b] = true
		}
	}
	bases := make([]string, 0, len(want))
	for b := range want {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	p.membersMu.Lock()
	defer p.membersMu.Unlock()
	existing := make(map[string]*member, len(p.members))
	for _, m := range p.members {
		existing[m.base] = m
	}
	next := make([]*member, 0, len(bases))
	for _, b := range bases {
		if m, ok := existing[b]; ok {
			next = append(next, m)
		} else {
			next = append(next, p.newMember(b))
		}
	}
	p.members = next
}

// route picks the member owning a content key by rendezvous
// (highest-random-weight) hashing over the alive set: every client agrees
// on the assignment without coordination, keys spread evenly, and when a
// member drops out only its own keys move to survivors — the survivors'
// assignments (and therefore their daemons' warm caches) are untouched.
func route(key string, members []*member) *member {
	var best *member
	var bestScore uint64
	for _, m := range members {
		if score := rendezvousScore(key, m.base); best == nil || score > bestScore ||
			(score == bestScore && m.base < best.base) {
			best, bestScore = m, score
		}
	}
	return best
}

// rendezvousScore hashes (key, base) into one 64-bit weight. Raw FNV-1a is
// not enough here: a byte that differs only near the end of the input
// perturbs just the low bits, so the member whose base hashes highest would
// win every key. The splitmix64 finalizer avalanches the digest so every
// input bit reaches every score bit.
func rendezvousScore(key, base string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	h.Write([]byte{0})
	io.WriteString(h, base)
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Run submits one spec through the fleet.
func (p *Pool) Run(spec sim.RunSpec) (*sim.Result, error) {
	results, err := p.RunAll([]sim.RunSpec{spec})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunAll routes each spec to its daemon, submits bounded chunks
// concurrently, and blocks until every run resolves; results[i] corresponds
// to specs[i]. Chunks that fail transiently after their member's retries
// re-route to surviving members; with no survivors the remainder runs on
// the local fallback Runner, or the sweep fails if none is configured.
// Specs carrying opaque function fields are refused before anything is
// sent, like Client.RunAll.
func (p *Pool) RunAll(specs []sim.RunSpec) ([]*sim.Result, error) {
	keys := make([]string, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if !s.Portable() {
			return nil, fmt.Errorf("serve: spec %s carries opaque function fields and cannot run on a fleet", s.Label())
		}
		keys[i] = s.Key()
	}
	// One submission per unique key: in-batch duplicates are resolved once
	// fleet-wide and copied per index below.
	unique := make(map[string]sim.RunSpec, len(specs))
	var pending []string
	for i, k := range keys {
		if _, ok := unique[k]; !ok {
			unique[k] = specs[i]
			pending = append(pending, k)
		}
	}

	resolved := make(map[string]*sim.Result, len(unique))
	for round := 0; len(pending) > 0; round++ {
		alive := p.alive()
		if p.membership && len(alive) > 0 {
			// Failures (round > 0) force a refresh past the throttle: a
			// re-route is exactly when the ring is most likely stale — the
			// failed member may have left, and a fresh joiner may be ready
			// to absorb its keys.
			if p.refreshMembers(alive, round > 0) {
				alive = p.alive()
			}
		}
		ringSize := len(p.snapshot())
		if len(alive) == 0 || round > ringSize {
			// Every backend is down, or the round budget is spent (a member
			// keeps passing its health probe and then failing submissions):
			// the sweep still finishes if a local fallback was configured.
			if p.fallback == nil {
				if len(alive) == 0 {
					return nil, fmt.Errorf("serve: could not place %d runs: all %d pool backends unhealthy and no local fallback configured",
						len(pending), ringSize)
				}
				return nil, fmt.Errorf("serve: could not place %d runs after %d re-route rounds (backends accept probes but fail submissions) and no local fallback configured",
					len(pending), round)
			}
			fspecs := make([]sim.RunSpec, len(pending))
			for i, k := range pending {
				fspecs[i] = unique[k]
			}
			results, err := p.fallback.RunAll(fspecs)
			if err != nil {
				return nil, err
			}
			for i, k := range pending {
				resolved[k] = results[i]
			}
			pending = nil
			break
		}

		groups := make(map[*member][]string, len(alive))
		for _, k := range pending {
			m := route(k, alive)
			groups[m] = append(groups[m], k)
		}
		var (
			wg       sync.WaitGroup
			outMu    sync.Mutex
			failures []string // keys to re-route next round
			fatal    error
		)
		for m, mkeys := range groups {
			for start := 0; start < len(mkeys); start += p.chunk {
				ck := mkeys[start:min(start+p.chunk, len(mkeys))]
				wg.Add(1)
				p.window <- struct{}{}
				go func(m *member, ck []string) {
					defer wg.Done()
					defer func() { <-p.window }()
					// Another chunk may have marked this member down while
					// we queued for a window slot: skip straight to
					// re-routing instead of burning a full retry ladder
					// against a host already known dead.
					if m.down(time.Now()) {
						outMu.Lock()
						failures = append(failures, ck...)
						outMu.Unlock()
						return
					}
					cs := make([]sim.RunSpec, len(ck))
					for i, k := range ck {
						cs[i] = unique[k]
					}
					res, err := p.submitChunk(m, cs, alive)
					outMu.Lock()
					defer outMu.Unlock()
					if err != nil {
						if Transient(err) {
							failures = append(failures, ck...)
						} else if fatal == nil {
							fatal = err
						}
						return
					}
					for i, k := range ck {
						resolved[k] = res[i]
					}
				}(m, ck)
			}
		}
		wg.Wait()
		if fatal != nil {
			return nil, fatal
		}
		// Deterministic re-route order regardless of chunk completion order.
		sort.Strings(failures)
		pending = failures
	}

	p.mu.Lock()
	for k, r := range resolved {
		if _, seen := p.results[k]; !seen {
			p.results[k] = r.WithCached(r.Cached)
		}
	}
	p.mu.Unlock()
	out := make([]*sim.Result, len(specs))
	for i, k := range keys {
		// Each index gets its own copy, per the Backend contract.
		out[i] = resolved[k].WithCached(resolved[k].Cached)
	}
	return out, nil
}

// submitChunk submits one chunk to its routed member. With stealing enabled
// and the chunk still unanswered after the steal deadline, the chunk is
// duplicated to the idlest alive peer and the two submissions race: first
// success wins and cancels the other (cancellation is non-transient, so the
// loser's retry ladder stops dead). Transient failures mark the failing
// member down either way.
func (p *Pool) submitChunk(primary *member, specs []sim.RunSpec, peers []*member) ([]*sim.Result, error) {
	if p.steal <= 0 || len(peers) < 2 {
		res, err := p.timedRunAll(context.Background(), primary, specs)
		if err != nil && Transient(err) {
			p.markDown(primary)
		}
		return res, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type answer struct {
		m   *member
		res []*sim.Result
		err error
	}
	ch := make(chan answer, 2) // buffered: the canceled loser's answer is never read
	submit := func(m *member) {
		res, err := p.timedRunAll(ctx, m, specs)
		ch <- answer{m, res, err}
	}
	outstanding := 1
	go submit(primary)
	timer := time.NewTimer(p.steal)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case a := <-ch:
			if a.err == nil {
				return a.res, nil
			}
			if Transient(a.err) {
				p.markDown(a.m)
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if outstanding--; outstanding == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			// The primary is straggling. One steal per chunk: resubmit to
			// the idlest peer (duplicates are nearly free — the daemons
			// share singleflight keys through one store) and let the two
			// race. With every peer busy or down right now, re-arm and try
			// again — peers finishing their own chunks become eligible.
			if thief := p.idlestPeer(primary, peers); thief != nil {
				outstanding++
				go submit(thief)
			} else {
				timer.Reset(p.steal)
			}
		}
	}
}

// timedRunAll wraps a member submission with the in-flight and latency
// accounting the steal scheduler picks targets by.
func (p *Pool) timedRunAll(ctx context.Context, m *member, specs []sim.RunSpec) ([]*sim.Result, error) {
	m.inflight.Add(1)
	start := time.Now()
	res, err := m.client.runAll(ctx, specs)
	m.inflight.Add(-1)
	if err == nil {
		m.latencyNs.Store(time.Since(start).Nanoseconds())
	}
	return res, err
}

// idlestPeer picks the steal target: an alive peer (not the primary, not
// down) with nothing in flight, preferring the fastest last-observed chunk
// latency; nil when every peer is busy or down. Members never observed
// (latency 0) rank last among idle peers — a host that has answered fast is
// a better bet than one that has answered nothing.
func (p *Pool) idlestPeer(primary *member, peers []*member) *member {
	now := time.Now()
	var best *member
	var bestLat int64
	for _, m := range peers {
		if m == primary || m.down(now) || m.inflight.Load() != 0 {
			continue
		}
		lat := m.latencyNs.Load()
		if lat == 0 {
			lat = math.MaxInt64
		}
		if best == nil || lat < bestLat || (lat == bestLat && m.base < best.base) {
			best, bestLat = m, lat
		}
	}
	return best
}

// Results returns copies of the unique runs resolved fleet-wide (including
// any the local fallback simulated), sorted by content key — the same
// contract as Runner.Results and Client.Results, so pool, single-daemon,
// and local artifacts compare key-for-key.
func (p *Pool) Results() []*sim.Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*sim.Result, 0, len(p.results))
	for _, res := range p.results {
		out = append(out, res.WithCached(res.Cached))
	}
	sim.SortResults(out)
	return out
}

// Metrics sums the daemons' cumulative counters into one fleet-wide view,
// plus the local fallback Runner's when one is configured. Members
// currently marked down contribute zeros (matching Client.Metrics on an
// unreachable daemon) instead of stalling the read.
func (p *Pool) Metrics() sim.Metrics {
	now := time.Now()
	members := p.snapshot()
	// Fan the per-member reads out like alive() fans probes out: several
	// dead-but-not-marked members cost one metadata timeout, not one each.
	snaps := make([]sim.Metrics, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		if m.down(now) {
			continue
		}
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			snaps[i] = m.client.Metrics()
		}(i, m)
	}
	wg.Wait()
	var total sim.Metrics
	for _, s := range snaps {
		total = total.Plus(s)
	}
	if p.fallback != nil {
		total = total.Plus(p.fallback.Metrics())
	}
	return total
}
