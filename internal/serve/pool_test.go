package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dkip/internal/core"
	"dkip/internal/ooo"
	"dkip/internal/predictor"
	"dkip/internal/sim"
)

// newFleetMember builds one daemon of a test fleet: a real Server over its
// own Runner, fronted by a failure injector.
func newFleetMember(t *testing.T) (*httptest.Server, *flakyFront, *sim.Runner) {
	t.Helper()
	return newFlakyServer(t)
}

// newTestPool builds a Pool over the given servers with fast retries and a
// cooldown long enough that a downed member stays down for the whole test.
func newTestPool(t *testing.T, servers []*httptest.Server, opts ...PoolOption) *Pool {
	t.Helper()
	bases := make([]string, len(servers))
	for i, ts := range servers {
		bases[i] = ts.URL
	}
	pool, err := NewPool(bases, append([]PoolOption{
		PoolRetry(fastRetry),
		PoolCooldown(time.Minute),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// uniqueKeys counts the distinct content keys of a spec set.
func uniqueKeys(specs []sim.RunSpec) int {
	seen := make(map[string]bool)
	for _, s := range specs {
		seen[s.Key()] = true
	}
	return len(seen)
}

// fleetSpecs builds n distinct specs (distinct measure scales) so routing
// has something to spread.
func fleetSpecs(n int) []sim.RunSpec {
	specs := make([]sim.RunSpec, n)
	for i := range specs {
		specs[i] = sim.DKIPSpec("swim", core.Config{}, testWarmup, uint64(testMeasure+100*(i+1)))
	}
	return specs
}

// A healthy two-daemon fleet must resolve a batch in order, simulate every
// unique key exactly once fleet-wide, and serve a resubmission entirely
// from the daemons' caches.
func TestPoolFleetDedups(t *testing.T) {
	a, _, ra := newFleetMember(t)
	b, _, rb := newFleetMember(t)
	pool := newTestPool(t, []*httptest.Server{a, b}, PoolChunk(2))

	specs := testSpecs()
	results, err := pool.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		if results[i].Key != spec.Key() {
			t.Errorf("result %d: key %q, want %q", i, results[i].Key, spec.Key())
		}
		if results[i].Stats == nil || results[i].Stats.Committed != testMeasure {
			t.Errorf("result %d: missing or truncated stats", i)
		}
	}
	if _, err := pool.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	want := uint64(uniqueKeys(specs))
	if sum := ra.Metrics().Simulated + rb.Metrics().Simulated; sum != want {
		t.Errorf("fleet simulated %d runs for %d unique keys (duplicates or misses)", sum, want)
	}
	// Pool.Metrics folds the fleet into one view.
	if m := pool.Metrics(); m.Simulated != want {
		t.Errorf("pool metrics report %d simulated, want %d", m.Simulated, want)
	}
}

// Rendezvous routing: deterministic, reasonably spread, and minimally
// disruptive — when a member leaves, only its own keys move.
func TestRouteStability(t *testing.T) {
	members := []*member{{base: "http://a:8321"}, {base: "http://b:8321"}, {base: "http://c:8321"}}
	owned := make(map[string]*member)
	perOwner := make(map[*member]int)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%03d", i)
		m := route(key, members)
		if again := route(key, members); again != m {
			t.Fatalf("route(%q) is not deterministic", key)
		}
		owned[key] = m
		perOwner[m]++
	}
	for _, m := range members {
		if perOwner[m] == 0 {
			t.Errorf("member %s owns no keys out of 300: degenerate spread %v", m.base, perOwner)
		}
	}
	// Drop member c: keys owned by a and b must not move.
	survivors := members[:2]
	for key, m := range owned {
		moved := route(key, survivors)
		if m != members[2] && moved != m {
			t.Errorf("key %q moved from %s to %s though its owner survived", key, m.base, moved.base)
		}
		if m == members[2] && moved == nil {
			t.Errorf("key %q was orphaned", key)
		}
	}
}

// A backend answering 503 / dropping connections for the first attempts
// must cost backoffs, not the sweep — and once it recovers, nothing is
// simulated twice.
func TestPoolRetriesTransientFailures(t *testing.T) {
	a, front, ra := newFleetMember(t)
	front.fail503.Store(2)
	front.drop.Store(1)
	pool := newTestPool(t, []*httptest.Server{a})

	specs := testSpecs()
	results, err := pool.RunAll(specs)
	if err != nil {
		t.Fatalf("RunAll through a flaky backend: %v", err)
	}
	for i, spec := range specs {
		if results[i].Key != spec.Key() {
			t.Errorf("result %d: key %q, want %q", i, results[i].Key, spec.Key())
		}
	}
	if got, want := ra.Metrics().Simulated, uint64(uniqueKeys(specs)); got != want {
		t.Errorf("flaky backend simulated %d, want %d — a retry re-simulated", got, want)
	}
}

// Killing one of two daemons re-routes its keys to the survivor and the
// sweep completes with every unique key simulated exactly once fleet-wide.
func TestPoolReroutesWhenBackendDies(t *testing.T) {
	a, frontA, ra := newFleetMember(t)
	b, _, rb := newFleetMember(t)
	pool := newTestPool(t, []*httptest.Server{a, b}, PoolChunk(2))

	first := testSpecs()
	if _, err := pool.RunAll(first); err != nil {
		t.Fatal(err)
	}
	// Daemon a dies mid-sweep: every subsequent connection to it drops.
	frontA.dead.Store(true)

	second := fleetSpecs(6)
	results, err := pool.RunAll(second)
	if err != nil {
		t.Fatalf("RunAll with one daemon dead: %v", err)
	}
	for i, spec := range second {
		if results[i].Key != spec.Key() || results[i].Stats == nil {
			t.Errorf("re-routed result %d: key %q, want %q", i, results[i].Key, spec.Key())
		}
	}
	want := uint64(uniqueKeys(first) + uniqueKeys(second))
	if sum := ra.Metrics().Simulated + rb.Metrics().Simulated; sum != want {
		t.Errorf("fleet simulated %d runs for %d unique keys after failover", sum, want)
	}
	// The pool keeps working against the survivor, still without
	// re-simulating anything.
	if _, err := pool.RunAll(second); err != nil {
		t.Fatal(err)
	}
	if sum := ra.Metrics().Simulated + rb.Metrics().Simulated; sum != want {
		t.Errorf("resubmission after failover re-simulated: %d runs for %d keys", sum, want)
	}
	// Results stays a faithful Backend: one record per unique key, sorted.
	res := pool.Results()
	if len(res) != int(want) {
		t.Errorf("pool recorded %d unique runs, want %d", len(res), want)
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Key >= res[i].Key {
			t.Fatal("pool results are not key-sorted")
		}
	}
}

// A wedged member — healthz answers, submissions accepted but never
// resolved — must not hold the sweep when a submit timeout is configured:
// the bounded attempts come back as transient failures and its keys
// re-route to the survivor.
func TestPoolReroutesWedgedBackend(t *testing.T) {
	a, frontA, ra := newFleetMember(t)
	frontA.wedged.Store(true)
	b, _, rb := newFleetMember(t)
	// The timeout bounds every member, so it must comfortably cover the
	// survivor's real (race-detector-slowed) simulations while still
	// cutting the wedged member loose.
	pool := newTestPool(t, []*httptest.Server{a, b},
		PoolSubmitTimeout(5*time.Second),
		PoolRetry(RetryPolicy{Attempts: 2, Base: time.Millisecond, Cap: time.Millisecond}))

	specs := fleetSpecs(6)
	done := make(chan error, 1)
	go func() {
		_, err := pool.RunAll(specs)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunAll with a wedged member: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunAll hung on the wedged member despite the submit timeout")
	}
	if got := ra.Metrics().Simulated; got != 0 {
		t.Errorf("wedged member simulated %d runs", got)
	}
	if got, want := rb.Metrics().Simulated, uint64(uniqueKeys(specs)); got != want {
		t.Errorf("survivor simulated %d runs, want %d", got, want)
	}
}

// With every backend down the pool finishes the sweep on the local
// fallback Runner instead of failing it.
func TestPoolFallsBackToLocalRunner(t *testing.T) {
	a, _, _ := newFleetMember(t)
	a.Close() // dead before the first submission
	local := sim.NewRunner()
	pool := newTestPool(t, []*httptest.Server{a}, PoolFallback(local))

	specs := testSpecs()
	results, err := pool.RunAll(specs)
	if err != nil {
		t.Fatalf("RunAll with all backends down and a fallback: %v", err)
	}
	for i, spec := range specs {
		if results[i].Key != spec.Key() || results[i].Stats == nil {
			t.Errorf("fallback result %d: key %q, want %q", i, results[i].Key, spec.Key())
		}
	}
	want := uint64(uniqueKeys(specs))
	if got := local.Metrics().Simulated; got != want {
		t.Errorf("fallback runner simulated %d, want %d", got, want)
	}
	if got := len(pool.Results()); got != int(want) {
		t.Errorf("pool recorded %d unique runs, want %d", got, want)
	}
	// The fleet-wide metrics view includes the local counters (the dead
	// member contributes zeros).
	if m := pool.Metrics(); m.Simulated != want {
		t.Errorf("pool metrics report %d simulated, want %d", m.Simulated, want)
	}
}

// Without a fallback, an all-dead fleet is an error naming the fleet size —
// never a hang or a silent partial result.
func TestPoolAllDownWithoutFallbackFails(t *testing.T) {
	a, _, _ := newFleetMember(t)
	b, _, _ := newFleetMember(t)
	a.Close()
	b.Close()
	pool := newTestPool(t, []*httptest.Server{a, b})
	_, err := pool.RunAll(testSpecs())
	if err == nil || !strings.Contains(err.Error(), "2 pool backends unhealthy") {
		t.Fatalf("got %v, want an all-backends-unhealthy error", err)
	}
}

// A member marked down is probed back in after its cooldown: the fleet
// heals without a new Pool.
func TestPoolReadmitsRecoveredBackend(t *testing.T) {
	a, frontA, ra := newFleetMember(t)
	b, _, rb := newFleetMember(t)
	pool := newTestPool(t, []*httptest.Server{a, b}, PoolCooldown(10*time.Millisecond))

	frontA.dead.Store(true)
	if _, err := pool.RunAll(testSpecs()); err != nil {
		t.Fatal(err)
	}
	if got := ra.Metrics().Requested; got != 0 {
		t.Fatalf("dead member still served %d requests", got)
	}
	// Recover a, wait out the cooldown, and submit fresh keys: a must see
	// traffic again (some of the fresh keys route to it).
	frontA.dead.Store(false)
	time.Sleep(20 * time.Millisecond)
	specs := fleetSpecs(12)
	if _, err := pool.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	if got := ra.Metrics().Requested; got == 0 {
		t.Error("recovered member was never readmitted to the ring")
	}
	if sum := ra.Metrics().Simulated + rb.Metrics().Simulated; sum != uint64(uniqueKeys(testSpecs())+uniqueKeys(specs)) {
		t.Errorf("fleet simulated %d runs across recovery", sum)
	}
}

// Specs carrying opaque function fields are refused before anything is
// sent, matching Client.RunAll.
func TestPoolRefusesOpaqueSpecs(t *testing.T) {
	a, _, ra := newFleetMember(t)
	pool := newTestPool(t, []*httptest.Server{a})
	spec := sim.OOOSpec("gzip", ooo.Config{
		ROBSize:      64,
		NewPredictor: func() predictor.Predictor { return predictor.NewPerceptron(64, 8) },
	}, testWarmup, testMeasure)
	spec.Tag = "custom-predictor"
	if _, err := pool.RunAll([]sim.RunSpec{spec}); err == nil {
		t.Fatal("pool accepted a spec with a non-nil function field")
	}
	if m := ra.Metrics(); m.Requested != 0 {
		t.Errorf("the refused spec reached a daemon: %+v", m)
	}
}

// The Pool is a faithful sim.Backend: records accumulated through a fleet
// match a local Runner's key-for-key with identical stats — the property
// behind byte-identical -json artifacts.
func TestPoolMatchesLocalBackend(t *testing.T) {
	a, _, _ := newFleetMember(t)
	b, _, _ := newFleetMember(t)
	pool := newTestPool(t, []*httptest.Server{a, b}, PoolChunk(1))
	local := sim.NewRunner()

	specs := testSpecs()
	if _, err := pool.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	// A repeated submission must not duplicate pool-side records.
	if _, err := pool.RunAll(specs[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := local.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	poolRes, localRes := pool.Results(), local.Results()
	if len(poolRes) != len(localRes) {
		t.Fatalf("pool recorded %d unique runs, local %d", len(poolRes), len(localRes))
	}
	for i := range poolRes {
		if poolRes[i].Key != localRes[i].Key {
			t.Errorf("record %d: pool key %s, local key %s", i, poolRes[i].Key, localRes[i].Key)
		}
		ps, _ := json.Marshal(poolRes[i].Stats)
		ls, _ := json.Marshal(localRes[i].Stats)
		if string(ps) != string(ls) {
			t.Errorf("record %d (%s): pool and local stats diverge", i, poolRes[i].Key)
		}
	}
}

// Pool.WaitHealthy needs only one live member, and reports failure when
// there is none.
func TestPoolWaitHealthy(t *testing.T) {
	a, _, _ := newFleetMember(t)
	dead, _, _ := newFleetMember(t)
	dead.Close()
	pool := newTestPool(t, []*httptest.Server{dead, a})
	if err := pool.WaitHealthy(context.Background(), 2*time.Second); err != nil {
		t.Fatalf("WaitHealthy with one live member: %v", err)
	}
	allDead := newTestPool(t, []*httptest.Server{dead})
	if err := allDead.WaitHealthy(context.Background(), 200*time.Millisecond); err == nil {
		t.Fatal("WaitHealthy with no live members succeeded")
	}
}
