package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"dkip/internal/sim"
)

// Live sweep progress: GET /v1/progress?keys=k1,k2,... streams NDJSON
// events counting how many of the named content keys have resolved —
// in this daemon's runner or anywhere in the shared store, so a fleet
// client can watch one member and still see fleet-wide completion (every
// daemon's write-behind lands in the same store). cmd/experiments -progress
// drives a sweep's live counter off this stream.

// ProgressEvent is one line of the progress stream.
type ProgressEvent struct {
	// Done counts the requested keys resolved so far; Total echoes how many
	// were requested (after dedup).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Final marks the closing event: all keys resolved, or the server's
	// stream budget elapsed.
	Final bool `json:"final,omitempty"`
}

// progress handler bounds, configurable via ServerOptions below.
const (
	defaultProgressInterval = time.Second
	minProgressInterval     = 100 * time.Millisecond
	defaultProgressBudget   = time.Hour
	// maxProgressKeys bounds one stream's key set; a sweep larger than this
	// should watch in slices (the Pool chunks submissions far smaller).
	maxProgressKeys = 100000
)

// handleProgress streams resolution progress for a key set. The endpoint is
// deliberately ungated — a stream held open for a sweep's whole duration
// must not occupy an admission slot a submission needs — and bounded
// instead by the progress budget and a per-write deadline, so an
// unresolvable key set or a vanished client releases the goroutine.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("keys")
	var keys []string
	seen := make(map[string]bool)
	for _, k := range strings.Split(raw, ",") {
		if k = strings.TrimSpace(k); k != "" && !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		http.Error(w, "serve: progress wants ?keys=k1,k2,...", http.StatusBadRequest)
		return
	}
	if len(keys) > maxProgressKeys {
		http.Error(w, fmt.Sprintf("serve: progress key set exceeds the %d-key limit; watch the sweep in slices", maxProgressKeys), http.StatusBadRequest)
		return
	}
	interval := s.progressInterval
	if q := r.URL.Query().Get("interval"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil {
			http.Error(w, fmt.Sprintf("serve: bad progress interval %q: %v", q, err), http.StatusBadRequest)
			return
		}
		interval = d
	}
	if interval < minProgressInterval {
		interval = minProgressInterval
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	resolved := make([]bool, len(keys))
	count := func() int {
		done := 0
		for i, k := range keys {
			if !resolved[i] {
				if _, ok := s.runner.Lookup(k); ok {
					resolved[i] = true
				} else if s.store != nil && s.store.Has(k) {
					resolved[i] = true
				}
			}
			if resolved[i] {
				done++
			}
		}
		return done
	}
	emit := func(ev ProgressEvent) bool {
		// A scraper that stopped reading must not pin this goroutine: each
		// write gets its own deadline, and a failed write ends the stream.
		_ = rc.SetWriteDeadline(time.Now().Add(s.streamWriteTimeout))
		if err := json.NewEncoder(w).Encode(ev); err != nil {
			return false
		}
		_ = rc.Flush()
		return true
	}

	budget := time.NewTimer(s.progressBudget)
	defer budget.Stop()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	last := count()
	if !emit(ProgressEvent{Done: last, Total: len(keys), Final: last == len(keys)}) || last == len(keys) {
		return
	}
	for {
		select {
		case <-ticker.C:
			done := count()
			if done == len(keys) {
				emit(ProgressEvent{Done: done, Total: len(keys), Final: true})
				return
			}
			if done != last {
				last = done
				if !emit(ProgressEvent{Done: done, Total: len(keys)}) {
					return
				}
			}
		case <-budget.C:
			emit(ProgressEvent{Done: last, Total: len(keys), Final: true})
			return
		case <-r.Context().Done():
			return
		}
	}
}

// Progress streams GET /v1/progress for the given keys, invoking fn per
// event, until the stream ends (all keys resolved, the daemon's budget
// elapsed, or ctx canceled — the latter returns nil, it is the caller
// hanging up). interval <= 0 leaves the cadence to the daemon.
func (c *Client) Progress(ctx context.Context, keys []string, interval time.Duration, fn func(ProgressEvent)) error {
	q := url.Values{"keys": {strings.Join(keys, ",")}}
	if interval > 0 {
		q.Set("interval", interval.String())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/progress?"+q.Encode(), nil)
	if err != nil {
		return fmt.Errorf("serve: progress: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return fmt.Errorf("serve: progress: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		var ev ProgressEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("serve: decode progress event: %w", err)
		}
		fn(ev)
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("serve: progress stream: %w", err)
	}
	return nil
}

// ProgressKeys extracts the content keys of a spec set the way a progress
// watcher needs them: deduplicated, order-preserving, uncacheable specs
// (which have no stable key) skipped.
func ProgressKeys(specs []sim.RunSpec) []string {
	seen := make(map[string]bool)
	var keys []string
	for _, s := range specs {
		if !s.Memoizable() {
			continue
		}
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}
