package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dkip/internal/pipeline"
	"dkip/internal/sim"
)

// A progress stream over one key: the initial event reports nothing done,
// the stream follows the key to resolution, and the final event closes it.
func TestProgressStreamFollowsResolution(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	spec := testSpecs()[0]

	go func() {
		time.Sleep(150 * time.Millisecond)
		if _, err := NewClient(ts.URL).RunAll([]sim.RunSpec{spec}); err != nil {
			t.Errorf("submission: %v", err)
		}
	}()

	var evs []ProgressEvent
	err := NewClient(ts.URL).Progress(context.Background(), []string{spec.Key()},
		100*time.Millisecond, func(ev ProgressEvent) { evs = append(evs, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("stream delivered no events")
	}
	if first := evs[0]; first.Done != 0 || first.Total != 1 {
		t.Errorf("first event %+v, want 0/1", first)
	}
	last := evs[len(evs)-1]
	if last.Done != 1 || last.Total != 1 || !last.Final {
		t.Errorf("last event %+v, want a final 1/1", last)
	}
}

// Keys already resolved (here: present in the store, as another fleet
// member would leave them) finalize the stream immediately; duplicates in
// the key list collapse.
func TestProgressResolvedImmediately(t *testing.T) {
	store, err := sim.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := &sim.Result{Key: "ab12cd", Arch: "dkip", Bench: "synthetic", Stats: &pipeline.Stats{Committed: 1}}
	if err := store.Put(res); err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t, store)
	var evs []ProgressEvent
	err = NewClient(ts.URL).Progress(context.Background(),
		[]string{"ab12cd", "ab12cd"}, 0, func(ev ProgressEvent) { evs = append(evs, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Done != 1 || evs[0].Total != 1 || !evs[0].Final {
		t.Fatalf("events %+v, want one final 1/1 (deduped)", evs)
	}
}

// A progress request without keys is a 400, and a canceled watcher is not
// an error — it is the caller hanging up.
func TestProgressValidationAndCancel(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	err := NewClient(ts.URL).Progress(context.Background(), nil, 0, func(ProgressEvent) {})
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != 400 {
		t.Fatalf("keyless progress: %v, want an HTTP 400", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- NewClient(ts.URL).Progress(ctx, []string{"feedbeef"}, 0, func(ProgressEvent) {})
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("canceled watcher: %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled watcher never returned")
	}
}

// ProgressKeys extracts watchable keys the way the Pool submits them:
// deduplicated, order-preserving, uncacheable specs skipped.
func TestProgressKeys(t *testing.T) {
	specs := testSpecs() // four submissions, one duplicate pair
	keys := ProgressKeys(specs)
	if len(keys) != 3 {
		t.Fatalf("ProgressKeys kept %d keys for %d unique specs", len(keys), 3)
	}
	if keys[0] != specs[0].Key() || keys[1] != specs[1].Key() || keys[2] != specs[3].Key() {
		t.Error("ProgressKeys does not preserve first-seen order")
	}
}

// A manifest reader that connects and never drains must not pin its gate
// slot: the per-write deadline fails the wedged stream and frees the slot
// for real work.
func TestResultsStreamReleasesSlotOnStuckClient(t *testing.T) {
	store, err := sim.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Enough manifest bytes to overrun the kernel socket buffers so the
	// handler genuinely blocks in a write: ~400 entries × 64KiB of config.
	pad := strings.Repeat("x", 64<<10)
	for i := 0; i < 400; i++ {
		res := &sim.Result{
			Key:    fmt.Sprintf("%04x%060d", i, 0),
			Arch:   "dkip",
			Config: pad,
			Bench:  "synthetic",
			Stats:  &pipeline.Stats{Committed: 1},
		}
		if err := store.Put(res); err != nil {
			t.Fatal(err)
		}
	}
	ts, _ := newTestServer(t, store, MaxRequests(1), StreamWriteTimeout(200*time.Millisecond))

	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET /v1/results HTTP/1.1\r\nHost: test\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	// Never read from conn: the daemon's writes back up until its deadline
	// fires. The single gate slot must come back for the submission below.
	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := NewClient(ts.URL).RunAll(testSpecs()[:1])
		errc <- err
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("submission after the wedged stream: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("gate slot never released: the wedged manifest stream still holds it")
	}
	wg.Wait()
}
