package serve

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4), hand-rolled: the container
// bakes in no client library, and the daemon's surface is small enough
// that a writer plus a strict linter (used by tests and CI against the
// live endpoint) is less machinery than a dependency.

// promWriter accumulates one exposition. Families must be written in one
// block each (openFamily, then its samples) — the grouping the format
// requires and the linter enforces.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// family emits the HELP/TYPE header for one metric family.
func (p *promWriter) family(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// sample emits one sample line. labels come as name/value pairs and are
// emitted in the given order; values are escaped per the exposition rules.
func (p *promWriter) sample(name string, labels [][2]string, value float64) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, formatValue(value))
		return
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l[0], escapeLabel(l[1]))
	}
	p.printf("%s{%s} %s\n", name, sb.String(), formatValue(value))
}

// counter is shorthand for a single-sample counter family.
func (p *promWriter) counter(name, help string, value float64) {
	p.family(name, help, "counter")
	p.sample(name, nil, value)
}

// gauge is shorthand for a single-sample gauge family.
func (p *promWriter) gauge(name, help string, value float64) {
	p.family(name, help, "gauge")
	p.sample(name, nil, value)
}

// formatValue renders a float the compact way Prometheus expects; counters
// here are all integral, so most values render without an exponent.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value for %q quoting: %q already handles
// quote and backslash escaping plus control characters, so the value is
// passed through unchanged — the indirection exists to keep the escaping
// decision in one named place.
func escapeLabel(s string) string { return s }

// sortedLabelKeys returns map keys in deterministic order, so two scrapes
// of identical state emit identical bytes — the project-wide determinism
// stance extends to the exposition.
func sortedLabelKeys(m map[string][2]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var (
	promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// LintDiag is one exposition problem: the 1-based line it was found on
// (0 for whole-stream problems, like an exposition with no samples) and a
// human-readable message.
type LintDiag struct {
	Line int
	Msg  string
}

func (d LintDiag) String() string {
	if d.Line == 0 {
		return "metrics: " + d.Msg
	}
	return fmt.Sprintf("metrics line %d: %s", d.Line, d.Msg)
}

// LintExposition validates Prometheus text exposition format: HELP/TYPE
// comment syntax, one TYPE per family declared before its samples, legal
// metric and label names, quoted-and-escaped label values, parseable
// sample values, no duplicate (name, labelset) samples, families not
// interleaved, and a trailing newline. It is the exposition gate CI runs
// against a live daemon's /metrics (via cmd/promlint) and tests run
// against recorded responses — strict enough that anything it passes, a
// real Prometheus scraper ingests.
//
// It reports the first problem only; LintExpositionAll collects them all.
func LintExposition(r io.Reader) error {
	diags, err := LintExpositionAll(r)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if len(diags) > 0 {
		return fmt.Errorf("%s", diags[0])
	}
	return nil
}

// LintExpositionAll runs the same checks as LintExposition but keeps going
// after a finding, returning every diagnostic in line order. A line with a
// problem is skipped for further per-line checks but does not stop the
// scan, so cmd/promlint and `dkipvet promtext` can show the whole damage
// at once. The error return is for stream-level failures (a line the
// scanner cannot buffer), not lint findings.
func LintExpositionAll(r io.Reader) ([]LintDiag, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typed := make(map[string]string) // family -> declared type
	closed := make(map[string]bool)  // families whose block has ended
	seen := make(map[string]bool)    // name{labels} duplicates
	current := ""                    // family block being read
	sawSample := false
	lineNo := 0
	var diags []LintDiag
	fail := func(format string, args ...any) {
		diags = append(diags, LintDiag{Line: lineNo, Msg: fmt.Sprintf(format, args...)})
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment: legal, ignored
			}
			name := fields[2]
			if !promMetricName.MatchString(name) {
				fail("bad metric name %q in %s comment", name, fields[1])
				continue
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					fail("TYPE comment for %s carries no type", name)
					continue
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					fail("unknown TYPE %q for %s", fields[3], name)
					continue
				}
				if _, dup := typed[name]; dup {
					fail("second TYPE declaration for %s", name)
					continue
				}
				if closed[name] {
					fail("family %s reopened after other samples (interleaved families)", name)
					continue
				}
				typed[name] = fields[3]
			}
			if fam := familyOf(name); fam != current {
				if closed[fam] {
					fail("family %s reopened after other samples (interleaved families)", fam)
					continue
				}
				if current != "" {
					closed[current] = true
				}
				current = fam
			}
			continue
		}
		name, labels, valueField, err := splitSample(line)
		if err != nil {
			fail("%v", err)
			continue
		}
		if !promMetricName.MatchString(name) {
			fail("bad metric name %q", name)
			continue
		}
		sawSample = true
		fam := familyOf(name)
		if _, ok := typed[fam]; !ok {
			// Bare untyped samples are legal in the format at large, but
			// this daemon always declares types; a sample with no TYPE is
			// what a half-written handler would emit.
			fail("sample %s appears before its TYPE declaration", name)
			continue
		}
		if fam != current {
			if closed[fam] {
				fail("family %s reopened after other samples (interleaved families)", fam)
				continue
			}
			if current != "" {
				closed[current] = true
			}
			current = fam
		}
		badLabel := false
		for _, l := range labels {
			if !promLabelName.MatchString(l[0]) {
				fail("bad label name %q on %s", l[0], name)
				badLabel = true
			}
		}
		if badLabel {
			continue
		}
		sig := name + "{" + joinLabels(labels) + "}"
		if seen[sig] {
			fail("duplicate sample %s", sig)
			continue
		}
		seen[sig] = true
		if err := checkValue(valueField); err != nil {
			fail("sample %s: %v", name, err)
		}
	}
	if err := sc.Err(); err != nil {
		return diags, err
	}
	if !sawSample {
		diags = append(diags, LintDiag{Msg: "exposition carries no samples"})
	}
	return diags, nil
}

// familyOf strips the histogram/summary sample suffixes so _bucket/_sum/
// _count samples group under their declared family.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		name = strings.TrimSuffix(name, suf)
	}
	return name
}

// splitSample parses one sample line into name, labels, and the value
// field (timestamps, legal per the format, are accepted and ignored).
func splitSample(line string) (name string, labels [][2]string, value string, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, "", fmt.Errorf("sample %q has no value", line)
	} else if rest[i] == '{' {
		name, rest = rest[:i], rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if strings.HasPrefix(rest, "}") {
				rest = strings.TrimPrefix(rest, "}")
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
			}
			lname := rest[:eq]
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, "", fmt.Errorf("unquoted label value for %s", lname)
			}
			lv, n, err := scanQuoted(rest)
			if err != nil {
				return "", nil, "", err
			}
			labels = append(labels, [2]string{lname, lv})
			rest = rest[n:]
		}
	} else {
		name, rest = rest[:i], rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", fmt.Errorf("sample %q: want value [timestamp], got %d fields", line, len(fields))
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, fields[0], nil
}

// scanQuoted reads a quoted, escaped label value starting at s[0] == '"',
// returning the decoded value and bytes consumed.
func scanQuoted(s string) (string, int, error) {
	var sb strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			switch s[i+1] {
			case '\\', '"':
				sb.WriteByte(s[i+1])
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c in label value", s[i+1])
			}
			i++
		case '"':
			return sb.String(), i + 1, nil
		default:
			sb.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// joinLabels renders a canonical (sorted) label signature for duplicate
// detection: the format forbids the same name+labelset twice regardless of
// label order.
func joinLabels(labels [][2]string) string {
	ls := make([]string, len(labels))
	for i, l := range labels {
		ls[i] = l[0] + "=" + strconv.Quote(l[1])
	}
	sort.Strings(ls)
	return strings.Join(ls, ",")
}

// checkValue validates a sample value: a float (ParseFloat accepts the
// spec's NaN/+Inf/-Inf spellings).
func checkValue(v string) error {
	if _, err := strconv.ParseFloat(v, 64); err != nil {
		return fmt.Errorf("unparseable value %q", v)
	}
	return nil
}
