package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dkip/internal/sim"
)

// The live /metrics exposition of a working daemon — runner counters, gate
// gauges, per-client series, store gauges, membership gauge — must pass the
// strict linter CI holds it to, and carry the headline counters.
func TestPromEndpointLintsClean(t *testing.T) {
	store, err := sim.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	view := []Member{{URL: "http://a:1", Expires: time.Now().Add(time.Minute).UnixMilli()}}
	ts, _ := newTestServer(t, store, WithMembers(func() []Member { return view }))
	c := NewClient(ts.URL, Identity("lint-test"))
	if _, err := c.RunAll(testSpecs()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("exposition content type %q", ct)
	}
	if err := LintExposition(strings.NewReader(string(data))); err != nil {
		t.Fatalf("live exposition fails the linter: %v\n%s", err, data)
	}
	for _, want := range []string{
		"dkip_runner_requested_total 4",
		"dkip_runner_simulated_total 3",
		"dkip_gate_capacity 64",
		"dkip_store_entries 3",
		"dkip_fleet_members 1",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("exposition is missing %q:\n%s", want, data)
		}
	}
}

// The linter rejects the malformations a half-written handler would emit.
func TestLintExpositionCatchesBreakage(t *testing.T) {
	cases := map[string]string{
		"empty":                   "",
		"no samples":              "# HELP x y\n# TYPE x counter\n",
		"sample before TYPE":      "x 1\n",
		"unknown type":            "# TYPE x widget\nx 1\n",
		"second TYPE declaration": "# TYPE a counter\n# TYPE a gauge\na 1\n",
		"bad metric name":         "# TYPE a counter\na 1\n# TYPE 0b counter\n",
		"bad value":               "# TYPE x counter\nx abc\n",
		"bad timestamp":           "# TYPE x counter\nx 1 late\n",
		"duplicate sample":        "# TYPE x counter\nx 1\nx 2\n",
		"duplicate labeled":       "# TYPE x counter\nx{l=\"v\"} 1\nx{l=\"v\"} 2\n",
		"bad label name":          "# TYPE a counter\na{0l=\"v\"} 1\n",
		"unquoted label value":    "# TYPE a counter\na{l=v} 1\n",
		"unterminated label":      "# TYPE a counter\na{l=\"v} 1\n",
		"bad escape":              "# TYPE a counter\na{l=\"\\t\"} 1\n",
		"interleaved families":    "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na{l=\"v\"} 2\n",
	}
	for name, in := range cases {
		if err := LintExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: linter accepted %q", name, in)
		}
	}
}

// The linter accepts everything the format allows that the writer uses:
// escaped label values, timestamps, label order variations, histogram
// suffix grouping, and the special float spellings.
func TestLintExpositionAcceptsLegalExpositions(t *testing.T) {
	cases := map[string]string{
		"escapes and timestamp": "# HELP a with \\\\ and \\n in help\n# TYPE a counter\n" +
			"a{l=\"quote \\\" slash \\\\ nl \\n\"} 1 1712345678\n",
		"same name different labels": "# TYPE a gauge\na{l=\"x\"} 1\na{l=\"y\"} 2\na 3\n",
		"histogram suffixes": "# TYPE lat histogram\nlat_bucket{le=\"1\"} 1\n" +
			"lat_bucket{le=\"+Inf\"} 2\nlat_sum 3.5\nlat_count 2\n",
		"special values":    "# TYPE a gauge\na{k=\"nan\"} NaN\na{k=\"inf\"} +Inf\na{k=\"neg\"} -2e-9\n",
		"free-form comment": "# just a note\n# TYPE a counter\na 1\n",
	}
	for name, in := range cases {
		if err := LintExposition(strings.NewReader(in)); err != nil {
			t.Errorf("%s: linter rejected a legal exposition: %v", name, err)
		}
	}
}

// Two scrapes of identical state are byte-identical — the determinism
// stance extends to the exposition (label maps are emitted sorted).
func TestPromEndpointDeterministic(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	if _, err := NewClient(ts.URL, Identity("det")).RunAll(testSpecs()[:1]); err != nil {
		t.Fatal(err)
	}
	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return string(data)
	}
	if a, b := scrape(), scrape(); a != b {
		t.Fatalf("identical state scraped differently:\n%s\n--- vs ---\n%s", a, b)
	}
}
