package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"syscall"
	"time"
)

// HTTPError is a non-200 daemon answer: the status code plus the (plain
// text) body the handlers write. It is a distinct type so callers — and the
// retry layer — can tell a 503 "queued too long" from a 400 "bad spec"
// without parsing message strings.
type HTTPError struct {
	StatusCode int
	Msg        string
}

// Error renders the answer the way the PR-3 client always has, so existing
// callers matching on "daemon answered 404" keep working.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("serve: daemon answered %d: %s", e.StatusCode, e.Msg)
}

// Transient reports whether err is worth retrying against the same (or
// another) daemon. Submissions are content-keyed and the daemon serves
// duplicates from its singleflight and caches, so resending after a dropped
// connection, a daemon restart, or an overload answer is safe — at worst the
// retry is a cache hit. Permanent answers (bad spec, oversized body,
// simulation failure) and a caller's own cancellation are not retried.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var he *HTTPError
	if errors.As(err, &he) {
		switch he.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			// 503 covers both a proxy in front of a dead daemon and the
			// daemon's own "request context expired while queued" overload
			// answer; 504 is a wait that outran the daemon's budget.
			return true
		}
		return false
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		// Only genuinely transport-level url.Errors are retryable; a
		// permanent misconfiguration (unsupported scheme, unparsable URL)
		// resent forever would just churn instead of surfacing to the user.
		return ue.Timeout() || transientTransport(ue.Err)
	}
	return transientTransport(err)
}

// transientTransport classifies bare transport failures: connection
// refused/reset while a daemon restarts, a response truncated mid-body by a
// drain, a probe timeout.
func transientTransport(err error) bool {
	if err == nil {
		return false
	}
	// A name that does not resolve is a typo, not an outage: retrying it
	// would churn through backoffs and cooldowns instead of surfacing the
	// misconfiguration. Resolver timeouts and server failures stay
	// retryable.
	var de *net.DNSError
	if errors.As(err, &de) {
		return !de.IsNotFound
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// RetryPolicy caps how retriable operations are retried: up to Attempts
// total tries, sleeping Base before the first retry and doubling up to Cap
// between subsequent ones.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first; values
	// below 1 mean one try (no retries).
	Attempts int
	// Base is the delay before the second attempt; it doubles per retry.
	Base time.Duration
	// Cap bounds the backoff delay.
	Cap time.Duration
}

// DefaultRetry is the policy Client and Pool use unless configured
// otherwise: four tries over roughly a second — enough to ride out a daemon
// restart without stalling a sweep behind a truly dead host.
var DefaultRetry = RetryPolicy{Attempts: 4, Base: 100 * time.Millisecond, Cap: 2 * time.Second}

// Do runs op, retrying transient failures (see Transient) with capped
// exponential backoff. The backoff wait selects on ctx, so canceling the
// context (operator ^C, a work-stealing race resolved elsewhere) interrupts
// a sleeping retry ladder instead of letting it finish the nap first. It
// returns nil on success, the error unchanged when it is permanent, ctx's
// error when canceled mid-backoff, and the last error wrapped with the
// attempt count when the budget is exhausted — so "retries exhausted" is
// distinguishable from "failed once" in logs while errors.As still reaches
// the underlying *HTTPError.
func (p RetryPolicy) Do(ctx context.Context, op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(p.backoff(attempt - 1))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
		if err = op(); err == nil || !Transient(err) {
			return err
		}
	}
	return fmt.Errorf("serve: retries exhausted after %d attempts: %w", attempts, err)
}

// backoff returns the delay after the n-th failed attempt (n starts at 0):
// Base<<n, bounded by Cap. Zero-value Base and Cap fall back to the
// DefaultRetry bounds so a partially-filled policy stays sane.
func (p RetryPolicy) backoff(n int) time.Duration {
	base, ceil := p.Base, p.Cap
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = DefaultRetry.Cap
	}
	if n > 20 {
		n = 20 // the shift below must not overflow
	}
	d := base << uint(n)
	if d > ceil {
		d = ceil
	}
	return d
}
