package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/url"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Transient must retry overload/transport failures and refuse permanent
// answers: a 400 "bad spec" resent forever would never get better, while a
// 503 from a draining daemon will.
func TestTransientClassification(t *testing.T) {
	for name, tc := range map[string]struct {
		err  error
		want bool
	}{
		"nil":                {nil, false},
		"502":                {&HTTPError{StatusCode: 502, Msg: "x"}, true},
		"503":                {&HTTPError{StatusCode: 503, Msg: "x"}, true},
		"504":                {&HTTPError{StatusCode: 504, Msg: "x"}, true},
		"400 bad spec":       {&HTTPError{StatusCode: 400, Msg: "x"}, false},
		"404 miss":           {&HTTPError{StatusCode: 404, Msg: "x"}, false},
		"413 too large":      {&HTTPError{StatusCode: 413, Msg: "x"}, false},
		"500 sim failure":    {&HTTPError{StatusCode: 500, Msg: "x"}, false},
		"wrapped http":       {fmt.Errorf("outer: %w", &HTTPError{StatusCode: 503, Msg: "x"}), true},
		"url conn refused":   {&url.Error{Op: "Post", URL: "http://x", Err: &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}}, true},
		"url bad scheme":     {&url.Error{Op: "Post", URL: "htp://x", Err: errors.New(`unsupported protocol scheme "htp"`)}, false},
		"dns not found":      {&url.Error{Op: "Post", URL: "http://tpyo", Err: &net.DNSError{Err: "no such host", Name: "tpyo", IsNotFound: true}}, false},
		"dns timeout":        {&url.Error{Op: "Post", URL: "http://slow", Err: &net.DNSError{Err: "i/o timeout", Name: "slow", IsTimeout: true}}, true},
		"wrapped conn reset": {fmt.Errorf("serve: submit: %w", syscall.ECONNRESET), true},
		"conn refused":       {syscall.ECONNREFUSED, true},
		"plain error":        {errors.New("nope"), false},
	} {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("%s: Transient = %v, want %v", name, got, tc.want)
		}
	}
}

// Do must retry transient failures up to the attempt budget, stop
// immediately on success or a permanent error, and wrap the final error
// with the attempt count when the budget is exhausted.
func TestRetryPolicyDo(t *testing.T) {
	fast := RetryPolicy{Attempts: 4, Base: time.Millisecond, Cap: 4 * time.Millisecond}

	calls := 0
	err := fast.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return &HTTPError{StatusCode: 503, Msg: "draining"}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("transient-then-success: err=%v calls=%d, want nil after 3", err, calls)
	}

	calls = 0
	perm := &HTTPError{StatusCode: 400, Msg: "bad spec"}
	if err := fast.Do(context.Background(), func() error { calls++; return perm }); !errors.Is(err, perm) || calls != 1 {
		t.Errorf("permanent: err=%v calls=%d, want the error itself after 1 call", err, calls)
	}

	calls = 0
	err = fast.Do(context.Background(), func() error { calls++; return &HTTPError{StatusCode: 503, Msg: "still down"} })
	if calls != fast.Attempts {
		t.Errorf("exhausted: %d calls, want %d", calls, fast.Attempts)
	}
	if err == nil || !strings.Contains(err.Error(), "retries exhausted after 4 attempts") {
		t.Errorf("exhausted error %v does not carry the attempt count", err)
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != 503 {
		t.Errorf("exhausted error %v does not unwrap to the underlying HTTPError", err)
	}
}

// The backoff sequence must double from Base and never exceed Cap.
func TestRetryBackoffCaps(t *testing.T) {
	p := RetryPolicy{Attempts: 10, Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 40, 40}
	for n, w := range want {
		if got := p.backoff(n); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", n, got, w*time.Millisecond)
		}
	}
	// Huge attempt counts must not overflow the shift into a negative delay.
	if got := p.backoff(64); got != 40*time.Millisecond {
		t.Errorf("backoff(64) = %v, want the cap", got)
	}
	// A zero-value Cap falls back to the default bound instead of growing
	// the backoff without limit.
	loose := RetryPolicy{Attempts: 25, Base: 100 * time.Millisecond}
	if got := loose.backoff(20); got != DefaultRetry.Cap {
		t.Errorf("zero-Cap backoff(20) = %v, want the default cap %v", got, DefaultRetry.Cap)
	}
}

// A canceled context must interrupt the backoff wait itself — the
// regression dkipvet's ctxhygiene analyzer pinned: Do used to sleep out
// its full backoff even after the caller had given up.
func TestRetryPolicyDoCanceledMidBackoff(t *testing.T) {
	slow := RetryPolicy{Attempts: 3, Base: time.Hour, Cap: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		done <- slow.Do(ctx, func() error {
			calls++
			cancel() // give up while Do is about to back off
			return &HTTPError{StatusCode: 503, Msg: "draining"}
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Do = %v, want context.Canceled", err)
		}
		if calls != 1 {
			t.Errorf("op ran %d times, want 1", calls)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("cancellation took %v, want immediate", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Do still sleeping its backoff an hour-scale wait after cancel")
	}
}
