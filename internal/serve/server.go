package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dkip/internal/sim"
)

// Server serves one process-wide sim.Runner (and its optional sim.Store)
// over HTTP. The work-bearing endpoints (submissions, manifest streams)
// funnel through a bounded concurrency gate that is independent of the
// Runner's simulation pool: -parallel bounds how many simulations advance at
// once, the gate bounds how many requests are being decoded/streamed, so a
// flood of clients queues at the door instead of exhausting daemon memory.
// Gate slots are divided fairly between client identities (the
// X-Dkip-Client header): one client's flood queues behind its share instead
// of monopolizing the daemon against everyone else.
type Server struct {
	runner *sim.Runner
	store  *sim.Store

	gate               *fairShare
	waitTimeout        time.Duration
	streamWriteTimeout time.Duration
	progressInterval   time.Duration
	progressBudget     time.Duration
	members            func() []Member
	mux                *http.ServeMux

	// statsMu guards a short-TTL cache of Store.Stats: /v1/metrics is
	// ungated and polled as a health check, and a full directory walk per
	// poll would scale with store size — eventually failing WaitHealthy's
	// per-attempt timeout against a perfectly healthy daemon.
	statsMu sync.Mutex
	stats   sim.StoreStats
	statsAt time.Time
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// MaxRequests bounds concurrently-handled HTTP requests (default 64);
// n <= 0 keeps the default. Excess requests wait for a slot (bounded by the
// client's context) rather than failing fast, and slots are shared fairly
// across client identities.
func MaxRequests(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.gate = newFairShare(n)
		}
	}
}

// StreamWriteTimeout bounds each write of a streaming response — manifest
// NDJSON and progress events — so a client that stops reading releases its
// slot instead of holding it for the connection's lifetime (default 30s).
func StreamWriteTimeout(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.streamWriteTimeout = d
		}
	}
}

// ProgressBudget bounds how long one GET /v1/progress stream may stay open
// (default one hour) — the backstop against watchers of keys that will
// never resolve.
func ProgressBudget(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.progressBudget = d
		}
	}
}

// WithMembers attaches the fleet-membership source behind GET /v1/members
// (typically Registry.List). Without one the endpoint answers 404, which a
// Pool treats as "membership not configured here" and leaves its ring
// alone.
func WithMembers(src func() []Member) ServerOption {
	return func(s *Server) { s.members = src }
}

// WaitTimeout bounds how long GET /v1/runs/{key}?wait=1 blocks for an
// unresolved key before answering 504 (default one minute).
func WaitTimeout(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.waitTimeout = d
		}
	}
}

// NewServer wraps a Runner and an optional Store (nil disables the manifest
// fallback to disk; /v1/results then reports what the Runner resolved this
// process). The Store should be the same one the Runner was built with
// (sim.WithStore) so GET-by-key and the manifest see every persisted result.
func NewServer(r *sim.Runner, store *sim.Store, opts ...ServerOption) *Server {
	s := &Server{
		runner:             r,
		store:              store,
		gate:               newFairShare(64),
		waitTimeout:        time.Minute,
		streamWriteTimeout: 30 * time.Second,
		progressInterval:   defaultProgressInterval,
		progressBudget:     defaultProgressBudget,
	}
	for _, o := range opts {
		o(s)
	}
	s.mux = http.NewServeMux()
	// Only the work-bearing endpoints pass the gate. GET-by-key (even a
	// blocked ?wait=1 — one goroutine and a channel), progress streams
	// (held open for a sweep's duration, bounded by their own budget and
	// per-write deadlines), membership reads, and the metrics health check
	// are deliberately ungated: a full house of waiters must never starve
	// the submission that would resolve them, nor make the daemon look
	// dead to WaitHealthy.
	s.mux.HandleFunc("POST /v1/runs", s.gated(s.handleSubmit))
	s.mux.HandleFunc("GET /v1/runs/{key}", s.handleGet)
	s.mux.HandleFunc("GET /v1/results", s.gated(s.handleResults))
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/members", s.handleMembers)
	s.mux.HandleFunc("GET /v1/progress", s.handleProgress)
	s.mux.HandleFunc("GET /metrics", s.handleProm)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s
}

// clientID extracts the fair-share identity a request admits under.
// Anonymous requests (no header) share one bucket — a fleet of headerless
// curls competes as one client, which is the conservative default.
func clientID(r *http.Request) string {
	id := strings.TrimSpace(r.Header.Get(clientHeader))
	if id == "" {
		return "anonymous"
	}
	if len(id) > 128 {
		id = id[:128]
	}
	return id
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// gated wraps a handler in the fair-share request gate: acquire a slot
// under the request's client identity (or give up when the client does),
// then dispatch.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		client := clientID(r)
		if err := s.gate.acquire(r.Context(), client); err != nil {
			http.Error(w, "serve: overloaded, request context expired while queued", http.StatusServiceUnavailable)
			return
		}
		defer s.gate.release(client)
		h(w, r)
	}
}

// runsRequest is the POST /v1/runs body: either a batch under "specs" or a
// single bare Spec object (its fields are promoted from the embedded Spec).
type runsRequest struct {
	Specs []Spec `json:"specs"`
	Spec
}

// RunsResponse answers POST /v1/runs: one Result per submitted spec, in
// submission order, plus the daemon's cumulative metrics so clients can
// observe cross-client dedup.
type RunsResponse struct {
	Results []*sim.Result `json:"results"`
	Metrics sim.Metrics   `json:"metrics"`
}

// maxSubmitBytes bounds a POST /v1/runs body; bigger sweeps should be
// chunked into several submissions (serve.Pool does this automatically).
const maxSubmitBytes = 16 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req runsRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			// An overflow is not a malformed body: answer 413 with the
			// limit so the client knows to split the sweep, not fix JSON.
			http.Error(w, fmt.Sprintf("serve: request body exceeds the %d-byte submission limit; split the sweep into smaller batches", mbe.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("serve: bad request body: %v", err), http.StatusBadRequest)
		return
	}
	wire := req.Specs
	if len(wire) == 0 {
		if req.Arch == "" {
			http.Error(w, "serve: empty submission: want a spec object or {\"specs\": [...]}", http.StatusBadRequest)
			return
		}
		wire = []Spec{req.Spec}
	} else if req.Arch != "" {
		// Mixing the two forms would silently drop the inline spec.
		http.Error(w, "serve: ambiguous submission: a bare spec and a \"specs\" batch in one body", http.StatusBadRequest)
		return
	}
	// Validate the whole batch before simulating any of it: a submission
	// either runs in full or is rejected in full.
	specs := make([]sim.RunSpec, len(wire))
	for i, ws := range wire {
		spec, err := ws.RunSpec()
		if err == nil {
			err = spec.Validate()
		}
		if err != nil {
			http.Error(w, fmt.Sprintf("serve: spec %d: %v", i, err), http.StatusBadRequest)
			return
		}
		specs[i] = spec
	}
	results, err := s.runner.RunAll(specs)
	if err != nil {
		http.Error(w, fmt.Sprintf("serve: %v", err), http.StatusInternalServerError)
		return
	}
	writeJSON(w, RunsResponse{Results: results, Metrics: s.runner.Metrics()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if res, ok := s.runner.Lookup(key); ok {
		writeJSON(w, res)
		return
	}
	if s.store != nil {
		if res, ok := s.store.Get(key); ok {
			writeJSON(w, res.WithCached(true))
			return
		}
	}
	if v, _ := strconv.ParseBool(r.URL.Query().Get("wait")); !v {
		http.Error(w, fmt.Sprintf("serve: no result for key %q", key), http.StatusNotFound)
		return
	}
	ch, cancel := s.runner.Subscribe(key)
	defer cancel()
	// The subscription only observes this process's Runs; the store may be
	// populated at any moment by another process sharing the directory (a
	// sharded sweep, a second daemon), so poll it alongside the wait.
	var storeTick <-chan time.Time
	if s.store != nil {
		ticker := time.NewTicker(500 * time.Millisecond)
		defer ticker.Stop()
		storeTick = ticker.C
		if res, ok := s.store.Get(key); ok {
			writeJSON(w, res.WithCached(true))
			return
		}
	}
	timer := time.NewTimer(s.waitTimeout)
	defer timer.Stop()
	for {
		select {
		case res := <-ch:
			writeJSON(w, res)
			return
		case <-storeTick:
			if res, ok := s.store.Get(key); ok {
				writeJSON(w, res.WithCached(true))
				return
			}
		case <-timer.C:
			http.Error(w, fmt.Sprintf("serve: key %q did not resolve within %v", key, s.waitTimeout), http.StatusGatewayTimeout)
			return
		case <-r.Context().Done():
			// Client went away; nothing to write.
			return
		}
	}
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	arch, bench := r.URL.Query().Get("arch"), r.URL.Query().Get("bench")
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	wrote := false
	emit := func(res *sim.Result) error {
		if (arch != "" && res.Arch != arch) || (bench != "" && res.Bench != bench) {
			return nil
		}
		// The stream runs inside a gate slot; each write carries its own
		// deadline so a client that connects and stops reading (full TCP
		// window, wedged pipe) frees the slot once the kernel buffers
		// fill, instead of occupying the gate for the connection's
		// lifetime on a large store.
		if err := rc.SetWriteDeadline(time.Now().Add(s.streamWriteTimeout)); err == nil {
			defer rc.SetWriteDeadline(time.Time{})
		}
		if err := enc.Encode(res); err != nil {
			return err
		}
		wrote = true
		return nil
	}
	if s.store != nil {
		// Stream straight off the store walk — one decoded entry in
		// memory at a time, whatever the manifest size.
		if err := s.store.Walk(emit); err != nil && !wrote {
			// A filesystem error before the first record still has a
			// status line to carry it. Later errors (including a client
			// that disconnected mid-stream) cannot change the committed
			// 200; the stream just ends early.
			http.Error(w, fmt.Sprintf("serve: %v", err), http.StatusInternalServerError)
		}
		return
	}
	for _, res := range s.runner.Results() {
		if emit(res) != nil {
			return
		}
	}
}

// MetricsResponse answers GET /v1/metrics.
type MetricsResponse struct {
	Metrics sim.Metrics     `json:"metrics"`
	Store   *sim.StoreStats `json:"store,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := MetricsResponse{Metrics: s.runner.Metrics()}
	if s.store != nil {
		if st, ok := s.storeStats(); ok {
			resp.Store = &st
		}
	}
	writeJSON(w, resp)
}

// storeStats serves Store.Stats through a 5-second cache; staleness is
// bounded and cross-process writers are still observed, which an
// incrementally maintained counter could not promise.
func (s *Server) storeStats() (sim.StoreStats, bool) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	if !s.statsAt.IsZero() && time.Since(s.statsAt) < 5*time.Second {
		return s.stats, true
	}
	st, err := s.store.Stats()
	if err != nil {
		return sim.StoreStats{}, false
	}
	s.stats, s.statsAt = st, time.Now()
	return st, true
}

// MembersResponse answers GET /v1/members.
type MembersResponse struct {
	Members []Member `json:"members"`
}

// handleMembers serves the fleet membership view. A daemon running without
// -advertise (no registry attached) answers 404 — the signal a Pool reads
// as "this fleet does not do dynamic membership" rather than an error.
func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	if s.members == nil {
		http.Error(w, "serve: membership not configured on this daemon (start it with -advertise)", http.StatusNotFound)
		return
	}
	members := s.members()
	if members == nil {
		members = []Member{}
	}
	writeJSON(w, MembersResponse{Members: members})
}

// handleProm serves the Prometheus text exposition: runner counters, the
// admission gate's depth and per-client breakdown, store size, and fleet
// membership. Ungated and allocation-light, so a scrape never competes
// with submissions for a slot.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := &promWriter{w: w}
	for _, c := range s.runner.Metrics().Counters() {
		p.counter("dkip_runner_"+c.Name+"_total",
			"Cumulative runner "+c.Name+" count since daemon start.", float64(c.Value))
	}
	gs := s.gate.snapshot()
	p.gauge("dkip_gate_capacity", "Admission gate slot capacity.", float64(gs.Capacity))
	p.gauge("dkip_gate_inflight", "Requests currently holding a gate slot.", float64(gs.Inflight))
	p.gauge("dkip_gate_waiting", "Requests queued for a gate slot.", float64(gs.Waiting))
	if len(gs.PerClient) > 0 {
		clients := sortedLabelKeys(gs.PerClient)
		p.family("dkip_client_inflight", "Gate slots held, by client identity.", "gauge")
		for _, c := range clients {
			p.sample("dkip_client_inflight", [][2]string{{"client", c}}, float64(gs.PerClient[c][0]))
		}
		p.family("dkip_client_waiting", "Requests queued at the gate, by client identity.", "gauge")
		for _, c := range clients {
			p.sample("dkip_client_waiting", [][2]string{{"client", c}}, float64(gs.PerClient[c][1]))
		}
	}
	if s.store != nil {
		if st, ok := s.storeStats(); ok {
			p.gauge("dkip_store_entries", "Results persisted in the shared store.", float64(st.Entries))
			p.gauge("dkip_store_checkpoints", "Checkpoint blobs persisted in the shared store.", float64(st.Checkpoints))
		}
	}
	if s.members != nil {
		p.gauge("dkip_fleet_members", "Live fleet members holding a current lease.", float64(len(s.members())))
	}
}

// handleHealthz answers the fleet liveness probe. It deliberately touches
// nothing — no runner lock, no store walk — so a daemon saturated with
// simulations still answers instantly and a Pool never mistakes "busy" for
// "down".
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
