package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dkip/internal/core"
	"dkip/internal/ooo"
	"dkip/internal/predictor"
	"dkip/internal/sim"
)

const (
	testWarmup  = 500
	testMeasure = 2000
)

// testSpecs is a small sweep with one duplicate pair: four submissions,
// three unique machines.
func testSpecs() []sim.RunSpec {
	return []sim.RunSpec{
		sim.DKIPSpec("swim", core.Config{}, testWarmup, testMeasure),
		sim.OOOSpec("gzip", ooo.R10K64(), testWarmup, testMeasure),
		sim.DKIPSpec("swim", core.Config{}, testWarmup, testMeasure),
		sim.OOOSpec("mcf", ooo.R10K64(), testWarmup, testMeasure),
	}
}

func newTestServer(t *testing.T, store *sim.Store, opts ...ServerOption) (*httptest.Server, *sim.Runner) {
	t.Helper()
	var ropts []sim.Option
	if store != nil {
		ropts = append(ropts, sim.WithStore(store))
	}
	runner := sim.NewRunner(ropts...)
	ts := httptest.NewServer(NewServer(runner, store, opts...))
	t.Cleanup(ts.Close)
	return ts, runner
}

// A wire round-trip must preserve the content key: encode, decode, re-key.
func TestSpecWireRoundTrip(t *testing.T) {
	for _, spec := range testSpecs() {
		ws, err := EncodeSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(ws)
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.RunSpec()
		if err != nil {
			t.Fatal(err)
		}
		if got.Key() != spec.Key() {
			t.Errorf("%s: key changed over the wire: %s != %s", spec.Label(), got.Key(), spec.Key())
		}
	}
}

// Specs carrying opaque function fields must be refused at encode time, even
// when a Tag makes them memoizable locally.
func TestEncodeSpecRefusesOpaque(t *testing.T) {
	spec := sim.OOOSpec("gzip", ooo.Config{
		ROBSize:      64,
		NewPredictor: func() predictor.Predictor { return predictor.NewPerceptron(64, 8) },
	}, testWarmup, testMeasure)
	spec.Tag = "custom-predictor"
	if !spec.Memoizable() {
		t.Fatal("tagged spec should be memoizable")
	}
	if _, err := EncodeSpec(spec); err == nil {
		t.Fatal("EncodeSpec accepted a spec with a non-nil function field")
	}
}

// POST /v1/runs accepts both a bare spec object and a {"specs": [...]}
// batch, answering results in submission order.
func TestSubmitSingleAndBatch(t *testing.T) {
	ts, _ := newTestServer(t, nil)

	single, err := EncodeSpec(testSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(single)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single submit: %s", resp.Status)
	}
	var rr RunsResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) != 1 || rr.Results[0].Key != testSpecs()[0].Key() {
		t.Fatalf("single submit returned %d results, key %q (want %q)",
			len(rr.Results), rr.Results[0].Key, testSpecs()[0].Key())
	}

	c := NewClient(ts.URL)
	results, err := c.RunAll(testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range testSpecs() {
		if results[i].Key != spec.Key() {
			t.Errorf("batch result %d: key %q, want %q", i, results[i].Key, spec.Key())
		}
		if results[i].Stats == nil || results[i].Stats.Committed != testMeasure {
			t.Errorf("batch result %d: missing or truncated stats", i)
		}
	}
}

// Submissions that do not decode or validate are rejected in full, before
// anything simulates.
func TestSubmitRejectsInvalid(t *testing.T) {
	ts, runner := newTestServer(t, nil)
	for name, body := range map[string]string{
		"bad json":       "{",
		"unknown arch":   `{"arch":"vax","bench":"swim","warmup":1,"measure":1}`,
		"unknown bench":  `{"arch":"dkip","bench":"nope","warmup":1,"measure":1}`,
		"zero measure":   `{"arch":"dkip","bench":"swim","warmup":1,"measure":0}`,
		"empty":          `{}`,
		"both payloads":  `{"arch":"dkip","bench":"swim","warmup":1,"measure":1,"ooo":{},"dkip":{}}`,
		"unknown field":  `{"arch":"dkip","bench":"swim","warmup":1,"measure":1,"bogus":3}`,
		"invalid in set": `{"specs":[{"arch":"dkip","bench":"swim","warmup":1,"measure":1},{"arch":"dkip","bench":"nope","warmup":1,"measure":1}]}`,
		"mixed forms":    `{"specs":[{"arch":"dkip","bench":"swim","warmup":1,"measure":1}],"arch":"dkip","bench":"swim","warmup":1,"measure":1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if m := runner.Metrics(); m.Simulated != 0 {
		t.Errorf("invalid submissions caused %d simulations", m.Simulated)
	}
}

// Two clients submitting the same sweep concurrently produce exactly one
// simulation per unique spec: the acceptance property of the daemon.
func TestCrossClientDedup(t *testing.T) {
	ts, runner := newTestServer(t, nil)

	const clients = 3
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = NewClient(ts.URL).RunAll(testSpecs())
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	unique := make(map[string]bool)
	for _, s := range testSpecs() {
		unique[s.Key()] = true
	}
	m := runner.Metrics()
	if int(m.Simulated) != len(unique) {
		t.Errorf("%d clients × %d specs: simulated %d, want %d (dedup failed)",
			clients, len(testSpecs()), m.Simulated, len(unique))
	}
	if want := uint64(clients * len(testSpecs())); m.Requested != want {
		t.Errorf("requested %d, want %d", m.Requested, want)
	}
	if m.Deduped+m.CacheHits == 0 {
		t.Error("no run was served by dedup or the memo cache")
	}
}

// GET /v1/runs/{key}: 404 on a cold miss, the record after it resolves, and
// ?wait=1 blocks until a concurrent submission resolves the key.
func TestGetByKey(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	spec := testSpecs()[0]
	c := NewClient(ts.URL)

	if _, err := c.Get(spec.Key(), false); err == nil {
		t.Fatal("cold GET succeeded, want 404")
	} else if !strings.Contains(err.Error(), "404") {
		t.Fatalf("cold GET: %v, want a 404", err)
	}

	// Subscribe first, submit second: the waiter must be released by the
	// submission.
	type got struct {
		res *sim.Result
		err error
	}
	waited := make(chan got, 1)
	go func() {
		res, err := c.Get(spec.Key(), true)
		waited <- got{res, err}
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Run(spec); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-waited:
		if g.err != nil {
			t.Fatalf("waited GET: %v", g.err)
		}
		if g.res.Key != spec.Key() {
			t.Fatalf("waited GET returned key %q, want %q", g.res.Key, spec.Key())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("waited GET never resolved")
	}

	// Now resolved: an ordinary GET serves it from the memo cache.
	res, err := c.Get(spec.Key(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached || res.Stats == nil {
		t.Fatalf("resolved GET: cached=%v stats=%v", res.Cached, res.Stats != nil)
	}
}

// An unresolvable ?wait=1 must come back 504 once the server's wait budget
// elapses, not hang forever.
func TestGetWaitTimesOut(t *testing.T) {
	ts, _ := newTestServer(t, nil, WaitTimeout(100*time.Millisecond))
	c := NewClient(ts.URL)
	start := time.Now()
	_, err := c.Get(strings.Repeat("ab", 16), true)
	if err == nil || !strings.Contains(err.Error(), "504") {
		t.Fatalf("got %v, want a 504", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("wait timeout did not bound the request")
	}
}

// GET /v1/runs/{key} falls through to the persistent store: a daemon
// restarted over a warm cache directory serves keys it never simulated.
func TestGetServedFromStore(t *testing.T) {
	dir := t.TempDir()
	store, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpecs()[0]
	// Populate the store out-of-band, as a previous daemon process would.
	warmRunner := sim.NewRunner(sim.WithStore(store))
	if _, err := warmRunner.Run(spec); err != nil {
		t.Fatal(err)
	}

	ts, runner := newTestServer(t, store)
	res, err := NewClient(ts.URL).Get(spec.Key(), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != spec.Key() || !res.Cached {
		t.Fatalf("store-served GET: key %q cached %v", res.Key, res.Cached)
	}
	if m := runner.Metrics(); m.Simulated != 0 {
		t.Errorf("GET-by-key simulated %d runs", m.Simulated)
	}
}

// GET /v1/results streams the manifest as NDJSON in key order and filters
// by arch/bench.
func TestResultsManifest(t *testing.T) {
	dir := t.TempDir()
	store, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t, store)
	c := NewClient(ts.URL)
	if _, err := c.RunAll(testSpecs()); err != nil {
		t.Fatal(err)
	}

	all, err := c.Manifest("", "")
	if err != nil {
		t.Fatal(err)
	}
	unique := make(map[string]bool)
	for _, s := range testSpecs() {
		unique[s.Key()] = true
	}
	if len(all) != len(unique) {
		t.Fatalf("manifest has %d entries, want %d", len(all), len(unique))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Key >= all[i].Key {
			t.Fatal("manifest is not sorted by key")
		}
	}

	oooOnly, err := c.Manifest("ooo", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range oooOnly {
		if res.Arch != "ooo" {
			t.Errorf("arch filter leaked %s/%s", res.Arch, res.Bench)
		}
	}
	gzipOnly, err := c.Manifest("", "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if len(gzipOnly) != 1 || gzipOnly[0].Bench != "gzip" {
		t.Errorf("bench filter returned %d entries", len(gzipOnly))
	}
}

// GET /v1/metrics reports runner counters and store stats.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	store, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t, store)
	c := NewClient(ts.URL)
	if _, err := c.RunAll(testSpecs()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Metrics.Simulated == 0 || mr.Metrics.DiskWrites == 0 {
		t.Errorf("metrics missing activity: %+v", mr.Metrics)
	}
	if mr.Store == nil || mr.Store.Entries != int(mr.Metrics.DiskWrites) {
		t.Errorf("store stats %+v do not match %d disk writes", mr.Store, mr.Metrics.DiskWrites)
	}
	if c.Metrics().Requested != mr.Metrics.Requested {
		t.Error("Client.Metrics disagrees with the raw endpoint")
	}
}

// The Client is a faithful sim.Backend: the per-run records it accumulates
// match a local Runner's key-for-key — the acceptance property behind
// cmd/experiments -remote -json.
func TestClientMatchesLocalBackend(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	c := NewClient(ts.URL)
	local := sim.NewRunner()

	specs := testSpecs()
	if _, err := c.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	// A repeated submission must not duplicate client-side records.
	if _, err := c.RunAll(specs[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := local.RunAll(specs); err != nil {
		t.Fatal(err)
	}

	remoteRes, localRes := c.Results(), local.Results()
	if len(remoteRes) != len(localRes) {
		t.Fatalf("remote backend recorded %d unique runs, local %d", len(remoteRes), len(localRes))
	}
	for i := range remoteRes {
		if remoteRes[i].Key != localRes[i].Key {
			t.Errorf("record %d: remote key %s, local key %s", i, remoteRes[i].Key, localRes[i].Key)
		}
		rs, _ := json.Marshal(remoteRes[i].Stats)
		ls, _ := json.Marshal(localRes[i].Stats)
		if string(rs) != string(ls) {
			t.Errorf("record %d (%s): remote and local stats diverge", i, remoteRes[i].Key)
		}
	}
}

// The request gate bounds concurrent handling but queues (rather than
// rejects) excess requests: N > max simultaneous submissions all succeed.
func TestRequestGateQueues(t *testing.T) {
	ts, _ := newTestServer(t, nil, MaxRequests(1))
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := sim.OOOSpec("gzip", ooo.R10K64(), testWarmup, uint64(testMeasure+i))
			_, errs[i] = NewClient(ts.URL).Run(spec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("queued request %d: %v", i, err)
		}
	}
}

// Unknown routes and wrong methods answer 404/405, not panics.
func TestRouting(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{"GET", "/v1/runs", http.StatusMethodNotAllowed},
		{"DELETE", "/v1/runs/abcd", http.StatusMethodNotAllowed},
		{"GET", "/nope", http.StatusNotFound},
		{"POST", "/v1/metrics", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

// A ?wait=1 request must also observe results persisted to the shared store
// by ANOTHER process mid-wait (the daemon's Subscribe only sees in-process
// runs): regression test for the store-polling arm of the wait loop.
func TestGetWaitObservesOutOfBandStoreWrite(t *testing.T) {
	dir := t.TempDir()
	store, err := sim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t, store, WaitTimeout(30*time.Second))
	spec := testSpecs()[0]
	c := NewClient(ts.URL)

	type got struct {
		res *sim.Result
		err error
	}
	waited := make(chan got, 1)
	go func() {
		res, err := c.Get(spec.Key(), true)
		waited <- got{res, err}
	}()
	time.Sleep(100 * time.Millisecond)
	// Populate the store out-of-band, as a sharded sweep or second daemon
	// sharing the directory would — the server's Runner never runs it.
	if _, err := sim.NewRunner(sim.WithStore(store)).Run(spec); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-waited:
		if g.err != nil {
			t.Fatalf("waited GET: %v", g.err)
		}
		if g.res.Key != spec.Key() {
			t.Fatalf("waited GET returned key %q, want %q", g.res.Key, spec.Key())
		}
	case <-time.After(25 * time.Second):
		t.Fatal("waiter never observed the out-of-band store write")
	}
}
