// Package serve exposes the run-orchestration layer (internal/sim) over
// HTTP: a Server wrapping one process-wide sim.Runner + sim.Store that many
// clients hit concurrently, a Client implementing sim.Backend against one
// such daemon, and a Pool federating a fleet of daemons (content-key
// rendezvous routing, chunked retrying submissions, health tracking, local
// failover). cmd/dkipd is the daemon binary; cmd/experiments -remote drives
// the whole experiment registry through a Client (one URL) or a Pool
// (comma-separated URLs).
//
// The wire protocol (all JSON):
//
//	POST /v1/runs            submit one Spec or {"specs": [...]}; blocks
//	                         until every run resolves, identical in-flight
//	                         submissions from different clients join the
//	                         same singleflight simulation; bodies over the
//	                         16 MiB limit answer 413
//	GET  /v1/runs/{key}      fetch one Result by content key; 404 on miss
//	                         unless ?wait=1 subscribes until it resolves
//	GET  /v1/results         stream the store manifest as NDJSON,
//	                         ?arch= and ?bench= filter
//	GET  /v1/metrics         runner Metrics + store stats
//	GET  /v1/healthz         liveness probe: constant-work 200, never
//	                         touches the runner or store
package serve

import (
	"fmt"
	"strings"

	"dkip/internal/core"
	"dkip/internal/inorder"
	"dkip/internal/ooo"
	"dkip/internal/sample"
	"dkip/internal/sim"
)

// Spec is the wire form of a sim.RunSpec: the engine selector as a string
// and at most one configuration payload matching it (an absent payload means
// the engine's zero configuration, i.e. the paper defaults). Function-typed
// configuration fields never travel — they are excluded from the JSON
// encoding just as the content hash skips them — so only Portable specs can
// be encoded, and every decoded spec is memoizable.
type Spec struct {
	Arch    string          `json:"arch"`
	Bench   string          `json:"bench"`
	Warmup  uint64          `json:"warmup"`
	Measure uint64          `json:"measure"`
	Tag     string          `json:"tag,omitempty"`
	OOO     *ooo.Config     `json:"ooo,omitempty"`
	DKIP    *core.Config    `json:"dkip,omitempty"`
	Inorder *inorder.Config `json:"inorder,omitempty"`
	// Sample carries the sampling plan when the run is sampled; absent for
	// full runs, so pre-sampling clients and daemons interoperate.
	Sample *sample.Plan `json:"sample,omitempty"`
}

// EncodeSpec converts a sim.RunSpec to its wire form. Specs carrying opaque
// function fields (custom predictor constructors) are refused: serializing
// one would silently simulate a different machine on the daemon.
func EncodeSpec(s sim.RunSpec) (Spec, error) {
	if !s.Portable() {
		return Spec{}, fmt.Errorf("serve: spec %s carries opaque function fields and cannot run remotely", s.Label())
	}
	w := Spec{Arch: s.Arch.String(), Bench: s.Bench, Warmup: s.Warmup, Measure: s.Measure, Tag: s.Tag}
	if s.Sample.Enabled() {
		p := s.Sample
		w.Sample = &p
	}
	switch s.Arch {
	case sim.ArchOOO:
		cfg := s.OOO
		w.OOO = &cfg
	case sim.ArchDKIP:
		cfg := s.DKIP
		w.DKIP = &cfg
	case sim.ArchInorder:
		cfg := s.Inorder
		w.Inorder = &cfg
	default:
		return Spec{}, fmt.Errorf("serve: unknown architecture %q", s.Arch)
	}
	return w, nil
}

// RunSpec converts the wire form back to a sim.RunSpec. It only shapes the
// spec; semantic validation (unknown benchmark, zero scale, invalid
// configuration) stays with sim.RunSpec.Validate, which the Server applies
// to every submission.
func (w Spec) RunSpec() (sim.RunSpec, error) {
	s := sim.RunSpec{Bench: w.Bench, Warmup: w.Warmup, Measure: w.Measure, Tag: w.Tag}
	if w.Sample != nil {
		s.Sample = *w.Sample
	}
	switch w.Arch {
	case sim.ArchOOO.String():
		s.Arch = sim.ArchOOO
		if w.DKIP != nil || w.Inorder != nil {
			return sim.RunSpec{}, fmt.Errorf("serve: ooo spec carries a foreign config payload")
		}
		if w.OOO != nil {
			s.OOO = *w.OOO
		}
	case sim.ArchDKIP.String():
		s.Arch = sim.ArchDKIP
		if w.OOO != nil || w.Inorder != nil {
			return sim.RunSpec{}, fmt.Errorf("serve: dkip spec carries a foreign config payload")
		}
		if w.DKIP != nil {
			s.DKIP = *w.DKIP
		}
	case sim.ArchInorder.String():
		s.Arch = sim.ArchInorder
		if w.OOO != nil || w.DKIP != nil {
			return sim.RunSpec{}, fmt.Errorf("serve: inorder spec carries a foreign config payload")
		}
		if w.Inorder != nil {
			s.Inorder = *w.Inorder
		}
	default:
		return sim.RunSpec{}, fmt.Errorf("serve: unknown architecture %q (registered: %s)",
			w.Arch, strings.Join(sim.ArchNames(), ", "))
	}
	return s, nil
}
