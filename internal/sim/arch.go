package sim

import (
	"fmt"
	"sort"
	"strings"

	"dkip/internal/core"
	"dkip/internal/inorder"
	"dkip/internal/ooo"
	"dkip/internal/predictor"
	"dkip/internal/sample"
)

// archDesc is one registered simulation engine: everything the orchestration
// layer needs to normalize, hash, validate, and construct a RunSpec's
// machine, with no per-arch switch statements anywhere else. Registering a
// fourth architecture means adding a config field to RunSpec and one entry
// here.
type archDesc struct {
	arch Arch
	name string
	// ckptFamily prefixes architectural-checkpoint content keys. Families
	// whose checkpoints have identical structure share a value: the D-KIP
	// ("core") carries a confidence-estimator section the others lack,
	// while the out-of-order and in-order cores both snapshot only caches
	// and predictor and therefore share "ooo" (the memory and predictor
	// configuration are hashed separately, so sharing the family never
	// conflates different state).
	ckptFamily string
	// normalize applies configuration defaults and zeroes every other
	// engine's config so equivalent specs encode identically.
	normalize func(s *RunSpec)
	// config returns the spec's (normalized) engine configuration for
	// content hashing; rawConfig returns it un-normalized for the opaque
	// function-field scan.
	config    func(s *RunSpec) interface{}
	rawConfig func(s *RunSpec) interface{}
	// configName returns the normalized configuration's display name.
	configName func(s *RunSpec) string
	// validate checks the normalized engine configuration.
	validate func(s *RunSpec) error
	// window estimates the machine's in-flight instruction capacity for
	// sampling-plan completion (from the normalized spec).
	window func(s *RunSpec) uint64
	// predictor returns the normalized predictor constructor; memConfig
	// the normalized memory configuration (both feed checkpoint keys).
	predictor func(s *RunSpec) func() predictor.Predictor
	memConfig func(s *RunSpec) interface{}
	// newEngine constructs the machine.
	newEngine func(s *RunSpec) sample.Engine
}

var oooDesc = &archDesc{
	arch:       ArchOOO,
	name:       "ooo",
	ckptFamily: "ooo",
	normalize: func(s *RunSpec) {
		s.OOO = s.OOO.WithDefaults()
		s.OOO.Mem = s.OOO.Mem.WithDefaults()
		s.DKIP = core.Config{}
		s.Inorder = inorder.Config{}
	},
	config:     func(s *RunSpec) interface{} { return s.OOO },
	rawConfig:  func(s *RunSpec) interface{} { return s.OOO },
	configName: func(s *RunSpec) string { return s.OOO.Name },
	validate:   func(s *RunSpec) error { return s.OOO.Validate() },
	window:     func(s *RunSpec) uint64 { return uint64(s.OOO.ROBSize + s.OOO.SLIQSize) },
	predictor:  func(s *RunSpec) func() predictor.Predictor { return s.OOO.NewPredictor },
	memConfig:  func(s *RunSpec) interface{} { return s.OOO.Mem },
	newEngine:  func(s *RunSpec) sample.Engine { return ooo.New(s.OOO) },
}

var dkipDesc = &archDesc{
	arch:       ArchDKIP,
	name:       "dkip",
	ckptFamily: "core",
	normalize: func(s *RunSpec) {
		s.DKIP = s.DKIP.WithDefaults()
		s.DKIP.Mem = s.DKIP.Mem.WithDefaults()
		s.OOO = ooo.Config{}
		s.Inorder = inorder.Config{}
	},
	config:     func(s *RunSpec) interface{} { return s.DKIP },
	rawConfig:  func(s *RunSpec) interface{} { return s.DKIP },
	configName: func(s *RunSpec) string { return s.DKIP.Name },
	validate:   func(s *RunSpec) error { return s.DKIP.Validate() },
	window: func(s *RunSpec) uint64 {
		w := uint64(s.DKIP.LLIBSize)
		if r := uint64(s.DKIP.ROBSize); r > w {
			w = r
		}
		return w
	},
	predictor: func(s *RunSpec) func() predictor.Predictor { return s.DKIP.NewPredictor },
	memConfig: func(s *RunSpec) interface{} { return s.DKIP.Mem },
	newEngine: func(s *RunSpec) sample.Engine { return core.New(s.DKIP) },
}

var inorderDesc = &archDesc{
	arch:       ArchInorder,
	name:       "inorder",
	ckptFamily: "ooo", // caches + predictor only, same structure as ooo
	normalize: func(s *RunSpec) {
		s.Inorder = s.Inorder.WithDefaults()
		s.Inorder.Mem = s.Inorder.Mem.WithDefaults()
		s.OOO = ooo.Config{}
		s.DKIP = core.Config{}
	},
	config:     func(s *RunSpec) interface{} { return s.Inorder },
	rawConfig:  func(s *RunSpec) interface{} { return s.Inorder },
	configName: func(s *RunSpec) string { return s.Inorder.Name },
	validate:   func(s *RunSpec) error { return s.Inorder.Validate() },
	window:     func(s *RunSpec) uint64 { return uint64(s.Inorder.Window) },
	predictor:  func(s *RunSpec) func() predictor.Predictor { return s.Inorder.NewPredictor },
	memConfig:  func(s *RunSpec) interface{} { return s.Inorder.Mem },
	newEngine:  func(s *RunSpec) sample.Engine { return inorder.New(s.Inorder) },
}

var (
	archByID   = map[Arch]*archDesc{}
	archByName = map[string]*archDesc{}
)

func init() {
	for _, d := range []*archDesc{oooDesc, dkipDesc, inorderDesc} {
		archByID[d.arch] = d
		archByName[d.name] = d
	}
}

// desc resolves an Arch to its registered engine. Unknown Arch values keep
// the historical behavior of dispatching to the out-of-order engine (specs
// are code; an unregistered value is a programming error surfaced by
// String's arch(N) rendering, not a crash site).
func desc(a Arch) *archDesc {
	if d, ok := archByID[a]; ok {
		return d
	}
	return oooDesc
}

// ArchNames lists the registered engine names in Arch order.
func ArchNames() []string {
	names := make([]string, 0, len(archByID))
	for _, d := range archByID {
		names = append(names, d.name)
	}
	sort.Slice(names, func(i, j int) bool {
		return archByName[names[i]].arch < archByName[names[j]].arch
	})
	return names
}

// Archs lists the registered engines in Arch order.
func Archs() []Arch {
	names := ArchNames()
	archs := make([]Arch, len(names))
	for i, n := range names {
		archs[i] = archByName[n].arch
	}
	return archs
}

// ParseArch resolves an engine name as printed by Arch.String — a
// registered name, or the "arch(N)" fallback rendering, which round-trips
// to Arch(N). Unknown names error with the registered list.
func ParseArch(name string) (Arch, error) {
	if d, ok := archByName[name]; ok {
		return d.arch, nil
	}
	var n uint8
	if _, err := fmt.Sscanf(name, "arch(%d)", &n); err == nil && fmt.Sprintf("arch(%d)", n) == name {
		return Arch(n), nil
	}
	return 0, fmt.Errorf("sim: unknown arch %q (registered engines: %s)", name, strings.Join(ArchNames(), ", "))
}
