package sim

import (
	"bytes"
	"testing"

	"dkip/internal/core"
	"dkip/internal/ooo"
)

// artifactSpecs is a sweep wide enough that Parallel(8) completion order is
// effectively never the submission order.
func artifactSpecs() []RunSpec {
	benches := []string{"swim", "mcf", "gzip", "applu", "art"}
	var specs []RunSpec
	for _, b := range benches {
		specs = append(specs,
			DKIPSpec(b, core.Config{}, testWarmup, testMeasure),
			OOOSpec(b, ooo.R10K64(), testWarmup, testMeasure),
		)
	}
	return specs
}

// Results() must be ordered by content key — never by completion order — so
// -json artifacts are reproducible under -parallel > 1. Regression test for
// the completion-order records that made artifacts byte-nondeterministic.
func TestResultsSortedByKey(t *testing.T) {
	r := NewRunner(Parallel(8))
	if _, err := r.RunAll(artifactSpecs()); err != nil {
		t.Fatal(err)
	}
	res := r.Results()
	if len(res) != len(artifactSpecs()) {
		t.Fatalf("recorded %d runs, want %d", len(res), len(artifactSpecs()))
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Key >= res[i].Key {
			t.Fatalf("Results()[%d]=%s and [%d]=%s are not in strict key order",
				i-1, res[i-1].Key, i, res[i].Key)
		}
	}
}

// Two warm Parallel(8) passes over the same store must encode byte-identical
// artifacts, regardless of submission order: with completion-order records
// this failed on every run. (Fresh passes cannot be byte-compared — Elapsed
// is wall time — so the store is primed first, exactly like the CI
// determinism job.)
func TestArtifactEncodeIsByteIdentical(t *testing.T) {
	specs := artifactSpecs()
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(Parallel(8), WithStore(store)).RunAll(specs); err != nil {
		t.Fatal(err)
	}

	encode := func(order []RunSpec) []byte {
		st, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(Parallel(8), WithStore(st))
		if _, err := r.RunAll(order); err != nil {
			t.Fatal(err)
		}
		if m := r.Metrics(); m.Simulated != 0 {
			t.Fatalf("warm pass simulated %d runs", m.Simulated)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, r.Results()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	reversed := make([]RunSpec, len(specs))
	for i, s := range specs {
		reversed[len(specs)-1-i] = s
	}
	a, b := encode(specs), encode(reversed)
	if !bytes.Equal(a, b) {
		t.Fatalf("warm artifact encodes differ:\n%s\n----\n%s", a, b)
	}
}
