package sim

// Backend is the simulation surface the experiment registry drives: submit
// specs, collect per-run records, inspect cache metrics. Three
// implementations exist — the in-process *Runner; serve.Client, which
// forwards every spec to a shared dkipd daemon; and serve.Pool, which
// federates a fleet of daemons with content-key routing, retries, and local
// failover — so a figure's code cannot tell whether its sweeps simulate
// locally, on one remote machine, or across a cluster.
type Backend interface {
	// Run executes one spec (or returns the memoized result of an
	// identical earlier run).
	Run(RunSpec) (*Result, error)
	// RunAll executes specs concurrently, preserving order: results[i]
	// corresponds to specs[i].
	RunAll([]RunSpec) ([]*Result, error)
	// Results returns the unique resolved runs so far, sorted by content
	// key (see Runner.Results).
	Results() []*Result
	// Metrics snapshots the dedup/cache counters.
	Metrics() Metrics
}

// Runner is the canonical Backend.
var _ Backend = (*Runner)(nil)
