package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"dkip/internal/sample"
	"dkip/internal/trace"
	"dkip/internal/workload"
)

// Every registered engine must satisfy the same behavioral contract behind
// sample.Engine — one shared table over the registry, so a fourth
// architecture inherits the conformance gate by being registered:
//
//   - functional warming to a stream position, then a detailed run, is
//     deterministic (two identically-prepared engines agree exactly);
//   - a checkpoint captured at that position and restored into a fresh
//     engine reproduces the warmed engine's detailed run bit-for-bit (the
//     identity checkpointed sampling and sweep resume are built on);
//   - a checkpoint from a machine with a different predictor is refused.
func TestEngineConformance(t *testing.T) {
	presetByArch := map[Arch]string{
		ArchOOO:     "r10-64",
		ArchDKIP:    "dkip",
		ArchInorder: "inorder",
	}
	const bench = "swim"
	const pos, warmup, measure = 6_000, 1_000, 8_000

	for _, a := range Archs() {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			preset, ok := presetByArch[a]
			if !ok {
				t.Fatalf("no conformance preset for registered arch %q — extend the table", a)
			}
			spec := MustPresetSpec(preset, bench, warmup, measure)

			// warmed returns a fresh engine of this machine functionally
			// fast-forwarded to stream position pos, with its generator
			// left there.
			warmed := func() (sample.Engine, trace.Generator) {
				e := spec.NewEngine()
				g := workload.MustNew(bench)
				e.Hierarchy().Warm(g.WarmRanges())
				e.WarmFunctional(g, pos)
				return e, g
			}

			// Determinism: two identically-prepared engines agree exactly.
			e1, g1 := warmed()
			ref := e1.Run(g1, warmup, measure)
			e2, g2 := warmed()
			again := e2.Run(g2, warmup, measure)
			if !reflect.DeepEqual(ref, again) {
				t.Fatalf("detailed run not deterministic:\nfirst: %s\nsecond: %s",
					statsJSON(t, ref), statsJSON(t, again))
			}

			// Checkpoint/resume identity: snapshot a warmed donor at pos,
			// restore into a fresh engine, position a fresh generator by
			// replay, and the detailed run must reproduce the reference
			// bit-for-bit.
			donor, _ := warmed()
			ck, err := donor.CaptureArch(bench, pos)
			if err != nil {
				t.Fatalf("CaptureArch: %v", err)
			}
			if ck.Pos != pos || ck.Bench != bench {
				t.Fatalf("checkpoint identity = %s@%d, want %s@%d", ck.Bench, ck.Pos, bench, pos)
			}
			resumed := spec.NewEngine()
			if err := resumed.RestoreArch(ck); err != nil {
				t.Fatalf("RestoreArch: %v", err)
			}
			g3 := workload.MustNew(bench)
			for i := uint64(0); i < pos; i++ {
				g3.Next()
			}
			res := resumed.Run(g3, warmup, measure)
			if !reflect.DeepEqual(ref, res) {
				t.Fatalf("resume from checkpoint diverged from the warmed run:\nwarmed: %s\nresumed: %s",
					statsJSON(t, ref), statsJSON(t, res))
			}

			// A checkpoint carrying a different predictor must be refused,
			// not silently loaded into mismatched structures.
			alien := *ck
			alien.PredName = "no-such-predictor"
			if err := spec.NewEngine().RestoreArch(&alien); err == nil {
				t.Error("RestoreArch accepted a checkpoint with a mismatched predictor")
			}
		})
	}
}

func statsJSON(t *testing.T, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
