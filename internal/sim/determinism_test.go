package sim

import (
	"reflect"
	"testing"

	"dkip/internal/core"
	"dkip/internal/kilo"
	"dkip/internal/ooo"
)

// Back-to-back runs of the same seed/config/workload must produce identical
// pipeline.Stats for every architecture — the invariant the memoizing run
// cache relies on: a cached result must be indistinguishable from
// re-simulating.
func TestRunsAreDeterministic(t *testing.T) {
	specs := map[string]RunSpec{
		"dkip-int": DKIPSpec("mcf", core.Config{}, testWarmup, testMeasure),
		"dkip-fp":  DKIPSpec("swim", core.Config{}, testWarmup, testMeasure),
		"ooo-int":  OOOSpec("gzip", ooo.R10K64(), testWarmup, testMeasure),
		"ooo-fp":   OOOSpec("applu", ooo.R10K256(), testWarmup, testMeasure),
		"kilo-int": OOOSpec("mcf", kilo.Config1024(), testWarmup, testMeasure),
		"kilo-fp":  OOOSpec("art", kilo.Config1024(), testWarmup, testMeasure),
	}
	for name, spec := range specs {
		spec := spec
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			// A NoMemo runner forces both executions to really
			// simulate; a single runner would serve the second from
			// cache and prove nothing.
			r := NewRunner(NoMemo())
			a, err := r.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			b, err := r.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if a.Cached || b.Cached {
				t.Fatal("NoMemo runner served a cached result")
			}
			if !reflect.DeepEqual(a.Stats, b.Stats) {
				t.Errorf("back-to-back runs diverge:\n first: %+v\nsecond: %+v", a.Stats, b.Stats)
			}
			if a.Stats.Committed != spec.Measure {
				t.Errorf("committed %d instructions, want the measured %d", a.Stats.Committed, spec.Measure)
			}
		})
	}
}
