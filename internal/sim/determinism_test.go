package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"dkip/internal/core"
	"dkip/internal/kilo"
	"dkip/internal/ooo"
)

// Back-to-back runs of the same seed/config/workload must produce identical
// pipeline.Stats for every architecture — the invariant the memoizing run
// cache relies on: a cached result must be indistinguishable from
// re-simulating.
func TestRunsAreDeterministic(t *testing.T) {
	specs := map[string]RunSpec{
		"dkip-int": DKIPSpec("mcf", core.Config{}, testWarmup, testMeasure),
		"dkip-fp":  DKIPSpec("swim", core.Config{}, testWarmup, testMeasure),
		"ooo-int":  OOOSpec("gzip", ooo.R10K64(), testWarmup, testMeasure),
		"ooo-fp":   OOOSpec("applu", ooo.R10K256(), testWarmup, testMeasure),
		"kilo-int": OOOSpec("mcf", kilo.Config1024(), testWarmup, testMeasure),
		"kilo-fp":  OOOSpec("art", kilo.Config1024(), testWarmup, testMeasure),
	}
	for name, spec := range specs {
		spec := spec
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			// A NoMemo runner forces both executions to really
			// simulate; a single runner would serve the second from
			// cache and prove nothing.
			r := NewRunner(NoMemo())
			a, err := r.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			b, err := r.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if a.Cached || b.Cached {
				t.Fatal("NoMemo runner served a cached result")
			}
			if !reflect.DeepEqual(a.Stats, b.Stats) {
				t.Errorf("back-to-back runs diverge:\n first: %+v\nsecond: %+v", a.Stats, b.Stats)
			}
			if a.Stats.Committed != spec.Measure {
				t.Errorf("committed %d instructions, want the measured %d", a.Stats.Committed, spec.Measure)
			}
		})
	}
}

// Worker-pool width must never change what is computed: the same spec set
// run through Parallel(1) and Parallel(8) yields byte-identical Stats per
// spec, the same number of real simulations, and balanced Metrics. This is
// the property that makes parallel, sharded, and cached sweeps
// interchangeable with a sequential run (run it under -race to also prove
// the bookkeeping is sound under contention).
func TestParallelismDoesNotChangeResults(t *testing.T) {
	base := []RunSpec{
		DKIPSpec("swim", core.Config{}, testWarmup, testMeasure),
		DKIPSpec("mcf", core.Config{}, testWarmup, testMeasure),
		OOOSpec("gzip", ooo.R10K64(), testWarmup, testMeasure),
		OOOSpec("applu", ooo.R10K256(), testWarmup, testMeasure),
		OOOSpec("art", kilo.Config1024(), testWarmup, testMeasure),
	}
	// Triplicate the set so dedup and the memo cache are exercised under
	// contention, not just the happy path.
	var specs []RunSpec
	for i := 0; i < 3; i++ {
		specs = append(specs, base...)
	}

	statsBytes := func(r *Result) string {
		b, err := json.Marshal(r.Stats)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	run := func(width int) ([]string, Metrics) {
		r := NewRunner(Parallel(width))
		results, err := r.RunAll(specs)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(results))
		for i, res := range results {
			out[i] = statsBytes(res)
		}
		return out, r.Metrics()
	}

	seq, mseq := run(1)
	par, mpar := run(8)
	for i := range specs {
		if seq[i] != par[i] {
			t.Errorf("spec %d (%s): Parallel(1) and Parallel(8) stats diverge:\n seq %s\n par %s",
				i, specs[i].Label(), seq[i], par[i])
		}
	}
	for name, m := range map[string]Metrics{"Parallel(1)": mseq, "Parallel(8)": mpar} {
		if m.Requested != m.Simulated+m.Deduped+m.CacheHits+m.DiskHits+m.Skipped {
			t.Errorf("%s metrics do not balance: %+v", name, m)
		}
		if m.Requested != uint64(len(specs)) {
			t.Errorf("%s requested %d runs, want %d", name, m.Requested, len(specs))
		}
		if m.Simulated != uint64(len(base)) {
			t.Errorf("%s simulated %d, want the %d unique specs", name, m.Simulated, len(base))
		}
	}
}
