package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"dkip/internal/pipeline"
	"dkip/internal/sample"
)

// Result is the structured record of one simulation run.
type Result struct {
	// Key is the RunSpec content hash the memo cache is keyed by; empty
	// for uncacheable runs (opaque untagged configs, raw traces) whose
	// hash would not fully identify the machine.
	Key string `json:"key,omitempty"`
	// Arch and Config identify the machine; Bench the workload.
	Arch   string `json:"arch"`
	Config string `json:"config"`
	Bench  string `json:"bench"`
	// Warmup/Measure echo the spec's scale.
	Warmup  uint64 `json:"warmup"`
	Measure uint64 `json:"measure"`
	// Cached reports whether this record was served from a cache tier
	// (memo cache or persistent store) rather than freshly simulated.
	Cached bool `json:"cached"`
	// Skipped reports a placeholder produced for a spec outside the
	// Runner's shard (WithShard) that no cache tier could serve: the
	// identity fields are real, Stats is all zeros.
	Skipped bool `json:"skipped,omitempty"`
	// Elapsed is the wall time of the underlying simulation.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Stats is the full simulator outcome. For sampled runs it aggregates
	// the detailed measurement intervals (counters summed, high-water
	// marks maxed).
	Stats *pipeline.Stats `json:"stats"`
	// Sampled describes the sampling layout and the CPI confidence
	// interval for runs executed under a sampling plan; nil for full runs.
	Sampled *sample.Summary `json:"sampled,omitempty"`
}

// clone returns a deep copy (Stats and Summary have no reference fields, so
// value copies suffice) with Cached set as given.
func (r *Result) clone(cached bool) *Result {
	out := *r
	if r.Stats != nil {
		st := *r.Stats
		out.Stats = &st
	}
	if r.Sampled != nil {
		sm := *r.Sampled
		out.Sampled = &sm
	}
	out.Cached = cached
	return &out
}

// WithCached returns a deep copy of the record with Cached set as given —
// how the serve layer marks store-served records without mutating a shared
// result.
func (r *Result) WithCached(cached bool) *Result { return r.clone(cached) }

// IPC is a convenience accessor for the headline metric.
func (r *Result) IPC() float64 {
	if r.Stats == nil {
		return 0
	}
	return r.Stats.IPC()
}

// WriteJSON writes the results as an indented JSON array.
func WriteJSON(w io.Writer, results []*Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// csvColumns is the header of the CSV encoding: identity, scale, and the
// headline counters of pipeline.Stats.
var csvColumns = []string{
	"key", "arch", "config", "bench", "warmup", "measure", "cached",
	"cycles", "committed", "ipc", "mispredict_rate", "mem_load_frac", "elapsed_ns",
}

// WriteCSV writes the results as CSV with a header row. Cells never contain
// commas (names are config/benchmark identifiers), so no quoting is needed.
func WriteCSV(w io.Writer, results []*Result) error {
	if _, err := io.WriteString(w, strings.Join(csvColumns, ",")+"\n"); err != nil {
		return err
	}
	for _, r := range results {
		st := r.Stats
		if st == nil {
			st = &pipeline.Stats{}
		}
		_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%d,%d,%t,%d,%d,%.4f,%.4f,%.4f,%d\n",
			r.Key, r.Arch, r.Config, r.Bench, r.Warmup, r.Measure, r.Cached,
			st.Cycles, st.Committed, st.IPC(), st.MispredictRate(), st.MemoryLoadFrac(), r.Elapsed.Nanoseconds())
		if err != nil {
			return err
		}
	}
	return nil
}
