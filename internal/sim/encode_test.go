package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"dkip/internal/core"
)

func testResult(t *testing.T) *Result {
	t.Helper()
	res, err := NewRunner().Run(DKIPSpec("swim", core.Config{}, testWarmup, testMeasure))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteJSONRoundTrips(t *testing.T) {
	res := testResult(t)
	var b strings.Builder
	if err := WriteJSON(&b, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	var decoded []Result
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d records", len(decoded))
	}
	d := decoded[0]
	if d.Key != res.Key || d.Arch != "dkip" || d.Config != "DKIP-2048" || d.Bench != "swim" {
		t.Errorf("identity fields wrong: %+v", d)
	}
	if d.Stats == nil || *d.Stats != *res.Stats {
		t.Error("stats did not round-trip")
	}
	if !strings.Contains(b.String(), `"cp_committed"`) {
		t.Error("stats encoding lacks snake_case tags")
	}
}

func TestWriteCSV(t *testing.T) {
	res := testResult(t)
	var b strings.Builder
	if err := WriteCSV(&b, []*Result{res, res.clone(true)}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "key,arch,config,bench,") {
		t.Errorf("header = %q", lines[0])
	}
	for i, line := range lines[1:] {
		if got := strings.Count(line, ","); got != strings.Count(lines[0], ",") {
			t.Errorf("row %d has %d commas, header has %d", i, got, strings.Count(lines[0], ","))
		}
	}
	if !strings.Contains(lines[2], ",true,") {
		t.Error("cached clone row should mark cached=true")
	}
}

func TestResultCloneIsDeep(t *testing.T) {
	res := testResult(t)
	c := res.clone(true)
	c.Stats.Committed++
	if res.Stats.Committed == c.Stats.Committed {
		t.Error("clone shares Stats with the original")
	}
	if !c.Cached || res.Cached {
		t.Error("clone cached flag wrong")
	}
	if c.IPC() == 0 {
		t.Error("IPC accessor returned zero for a real run")
	}
}
