package sim

import (
	"fmt"
	"io"
	"reflect"
	"strconv"
)

// hashConfig writes a deterministic textual encoding of a configuration
// struct to w, for content hashing. Rules:
//
//   - struct fields are encoded in declaration order as "name=value;";
//   - fields named "Name" are skipped: every config's Name labels reports
//     and never changes simulated behaviour, and excluding it lets e.g.
//     Figure 9's "R10-256" dedupe against Figure 11's "R10-256@512KB";
//   - function fields are skipped — they are opaque to a content hash; see
//     RunSpec.Memoizable / hasOpaqueFields for how specs carrying custom
//     functions are kept out of the memo cache;
//   - nil pointers encode as "~", non-nil pointers as their element — the
//     caller is expected to have normalized defaults already (WithDefaults),
//     which resolves e.g. core.Config's tri-state *bool fields.
//
// Unsupported kinds (maps, channels, interfaces) panic: a config growing one
// must extend this encoder, not silently hash wrong.
func hashConfig(w io.Writer, cfg interface{}) {
	hashValue(w, reflect.ValueOf(cfg))
}

func hashValue(w io.Writer, v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			io.WriteString(w, "t")
		} else {
			io.WriteString(w, "f")
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		io.WriteString(w, strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		io.WriteString(w, strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		io.WriteString(w, strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.String:
		fmt.Fprintf(w, "%q", v.String())
	case reflect.Ptr:
		if v.IsNil() {
			io.WriteString(w, "~")
		} else {
			hashValue(w, v.Elem())
		}
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(w, "[%d:", v.Len())
		for i := 0; i < v.Len(); i++ {
			hashValue(w, v.Index(i))
			io.WriteString(w, ",")
		}
		io.WriteString(w, "]")
	case reflect.Struct:
		t := v.Type()
		io.WriteString(w, "{")
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.Name == "Name" || f.Type.Kind() == reflect.Func {
				continue
			}
			io.WriteString(w, f.Name)
			io.WriteString(w, "=")
			hashValue(w, v.Field(i))
			io.WriteString(w, ";")
		}
		io.WriteString(w, "}")
	default:
		panic(fmt.Sprintf("sim: cannot hash config field of kind %s", v.Kind()))
	}
}

// hasOpaqueFields reports whether the raw configuration carries any non-nil
// function field — behaviour the content hash cannot observe.
func hasOpaqueFields(cfg interface{}) bool {
	return opaqueValue(reflect.ValueOf(cfg))
}

func opaqueValue(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Func:
		return !v.IsNil()
	case reflect.Ptr:
		return !v.IsNil() && opaqueValue(v.Elem())
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if opaqueValue(v.Field(i)) {
				return true
			}
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if opaqueValue(v.Index(i)) {
				return true
			}
		}
	}
	return false
}
