package sim

import (
	"fmt"
	"sort"
	"strings"

	"dkip/internal/core"
	"dkip/internal/inorder"
	"dkip/internal/kilo"
	"dkip/internal/mem"
	"dkip/internal/ooo"
)

// presets maps the named machine configurations of the paper (plus the
// calibration core) to spec constructors, so commands and examples can name
// machines without importing the model packages.
var presets = map[string]func(bench string, warmup, measure uint64) RunSpec{
	"dkip": func(b string, w, m uint64) RunSpec {
		return DKIPSpec(b, core.Config{}, w, m) // defaults = the paper's DKIP-2048
	},
	"r10-64": func(b string, w, m uint64) RunSpec {
		return OOOSpec(b, ooo.R10K64(), w, m)
	},
	"r10-256": func(b string, w, m uint64) RunSpec {
		return OOOSpec(b, ooo.R10K256(), w, m)
	},
	"r10-768": func(b string, w, m uint64) RunSpec {
		return OOOSpec(b, ooo.R10K768(), w, m)
	},
	"kilo": func(b string, w, m uint64) RunSpec {
		return OOOSpec(b, kilo.Config1024(), w, m)
	},
	"inorder": func(b string, w, m uint64) RunSpec {
		return InorderSpec(b, inorder.C920(), w, m)
	},
}

// PresetNames lists the registered machine presets, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PresetSpec builds a RunSpec for a named machine preset on a workload.
// Unknown names error with the registered list.
func PresetSpec(name, bench string, warmup, measure uint64) (RunSpec, error) {
	f, ok := presets[name]
	if !ok {
		return RunSpec{}, fmt.Errorf("sim: unknown machine preset %q (presets: %s)", name, strings.Join(PresetNames(), ", "))
	}
	return f(bench, warmup, measure), nil
}

// MustPresetSpec is PresetSpec for preset names that are code, panicking on
// unknown names.
func MustPresetSpec(name, bench string, warmup, measure uint64) RunSpec {
	s, err := PresetSpec(name, bench, warmup, measure)
	if err != nil {
		panic(err)
	}
	return s
}

// Bool is core.Bool re-exported: a *bool literal for the D-KIP's tri-state
// configuration fields, so preset-tweaking callers need not import the model
// package.
func Bool(v bool) *bool { return core.Bool(v) }

// LimitSpec builds the memory-wall limit-study machine: an out-of-order
// core whose only stall resource is an n-entry window, over memory
// configuration m (Figures 1–3).
func LimitSpec(n int, m mem.Config, bench string, warmup, measure uint64) RunSpec {
	return OOOSpec(bench, ooo.LimitCore(n, m), warmup, measure)
}
