//go:build race

package sim

// raceEnabled reports whether this test binary was built with the race
// detector; simulation-heavy tests skip themselves under it.
const raceEnabled = true
