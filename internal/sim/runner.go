package sim

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"time"

	"dkip/internal/pipeline"
	"dkip/internal/sample"
	"dkip/internal/workload"
)

// Metrics counts Runner activity. Requested = Simulated + Deduped +
// CacheHits + DiskHits + Skipped + failures; Uncacheable counts the subset
// of Simulated forced by non-memoizable specs.
type Metrics struct {
	// Requested counts Run calls (including those served without
	// simulating).
	Requested uint64 `json:"requested"`
	// Simulated counts actual processor executions.
	Simulated uint64 `json:"simulated"`
	// Deduped counts Run calls that joined an identical in-flight
	// simulation (singleflight).
	Deduped uint64 `json:"deduped"`
	// CacheHits counts Run calls served from the in-process memo cache.
	CacheHits uint64 `json:"cache_hits"`
	// DiskHits counts Run calls served from the persistent Store
	// (WithStore) instead of simulating.
	DiskHits uint64 `json:"disk_hits"`
	// DiskWrites counts fresh results persisted to the Store.
	DiskWrites uint64 `json:"disk_writes"`
	// Skipped counts Run calls for specs outside this Runner's shard
	// (WithShard) that no cache tier could serve; they return zero-stats
	// placeholder Results with Skipped set.
	Skipped uint64 `json:"skipped"`
	// Uncacheable counts simulations of specs the cache could not hold
	// (opaque configs without a Tag).
	Uncacheable uint64 `json:"uncacheable"`
	// CheckpointHits / CheckpointMisses / CheckpointWrites count
	// architectural-checkpoint store traffic from sampled runs: intervals
	// that reloaded a stored checkpoint, intervals that functionally warmed
	// from scratch, and checkpoints persisted. They sit outside the
	// Requested identity (they count intervals, not Run calls).
	CheckpointHits   uint64 `json:"checkpoint_hits"`
	CheckpointMisses uint64 `json:"checkpoint_misses"`
	CheckpointWrites uint64 `json:"checkpoint_writes"`
}

// Plus returns the field-wise sum of two snapshots — how a multi-daemon
// federation (serve.Pool) folds per-backend counters into one fleet-wide
// view. The Requested identity documented on Metrics holds for the sum
// because it holds for each term.
func (m Metrics) Plus(o Metrics) Metrics {
	m.Requested += o.Requested
	m.Simulated += o.Simulated
	m.Deduped += o.Deduped
	m.CacheHits += o.CacheHits
	m.DiskHits += o.DiskHits
	m.DiskWrites += o.DiskWrites
	m.Skipped += o.Skipped
	m.Uncacheable += o.Uncacheable
	m.CheckpointHits += o.CheckpointHits
	m.CheckpointMisses += o.CheckpointMisses
	m.CheckpointWrites += o.CheckpointWrites
	return m
}

// Counter is one named Metrics field: the snapshot hook exporters consume.
type Counter struct {
	// Name is the field's snake_case wire name, matching the JSON encoding.
	Name string
	// Value is the count at snapshot time.
	Value uint64
}

// Counters flattens the snapshot into named (name, value) pairs, in
// declaration order. It is the single source of truth for metric exporters
// (dkipd's Prometheus /metrics): a counter added to Metrics shows up in
// every exposition without the serve layer naming it a second time.
func (m Metrics) Counters() []Counter {
	return []Counter{
		{"requested", m.Requested},
		{"simulated", m.Simulated},
		{"deduped", m.Deduped},
		{"cache_hits", m.CacheHits},
		{"disk_hits", m.DiskHits},
		{"disk_writes", m.DiskWrites},
		{"skipped", m.Skipped},
		{"uncacheable", m.Uncacheable},
		{"checkpoint_hits", m.CheckpointHits},
		{"checkpoint_misses", m.CheckpointMisses},
		{"checkpoint_writes", m.CheckpointWrites},
	}
}

// Option configures a Runner.
type Option func(*Runner)

// Parallel bounds concurrent simulations; n <= 0 means GOMAXPROCS.
func Parallel(n int) Option {
	return func(r *Runner) {
		if n > 0 {
			r.sem = make(chan struct{}, n)
		}
	}
}

// OnSimulate installs a hook invoked once per actual simulation (never for
// deduplicated or cached runs), from the simulating goroutine. Tests use it
// to prove overlapping specs execute exactly once.
func OnSimulate(fn func(RunSpec)) Option {
	return func(r *Runner) { r.hook = fn }
}

// NoMemo disables the memoizing result cache while keeping in-flight
// deduplication: sequential repeats re-simulate, concurrent duplicates still
// coalesce. It also bypasses any attached Store — NoMemo means "always
// really simulate". Benchmarks measuring raw simulator speed use it.
func NoMemo() Option {
	return func(r *Runner) { r.memo = false }
}

// WithStore attaches a persistent content-addressed Store as a second cache
// tier under the in-process memo cache: Run consults it before simulating
// (Metrics.DiskHits) and persists every fresh memoizable result after
// simulating (Metrics.DiskWrites), so a warm cache directory survives the
// process and can be shared across machines. Store I/O errors are treated
// as misses — a broken disk degrades to PR-1 behaviour, it never fails a
// run.
func WithStore(s *Store) Option {
	return func(r *Runner) { r.store = s }
}

// WithShard restricts real simulation to the specs assigned to shard i of n
// (see InShard): out-of-shard specs are still served from the memo cache or
// the Store when possible, but are never simulated — a miss yields a
// zero-stats placeholder Result with Skipped set (Metrics.Skipped). Running
// every shard with one shared Store populates exactly the unsharded result
// set, after which an unsharded pass over the same Store serves everything
// from disk.
func WithShard(i, n int) Option {
	return func(r *Runner) { r.shardI, r.shardN = i, n }
}

// Runner executes RunSpecs on a bounded worker pool with singleflight
// deduplication and an in-process memoizing cache, optionally backed by a
// persistent Store. It is safe for concurrent use; one process-wide Runner
// shared by every experiment gives cross-figure deduplication.
type Runner struct {
	sem            chan struct{}
	hook           func(RunSpec)
	memo           bool
	store          *Store
	shardI, shardN int

	mu      sync.Mutex
	calls   map[string]*call
	waiters map[string][]chan *Result
	results []*Result
	m       Metrics
}

// call is one in-flight or completed simulation.
type call struct {
	done chan struct{}
	res  *Result
	err  error
}

// NewRunner builds a Runner. With no options: GOMAXPROCS workers, memoizing
// cache on, no hook.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{memo: true, calls: make(map[string]*call)}
	for _, o := range opts {
		o(r)
	}
	if r.sem == nil {
		r.sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	}
	return r
}

// Run executes the spec (or returns the memoized result of an identical
// earlier run). The returned Result is the caller's own copy; Cached reports
// whether a simulation was avoided.
func (r *Runner) Run(spec RunSpec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !spec.Memoizable() {
		in := InShard(spec, r.shardI, r.shardN)
		r.mu.Lock()
		r.m.Requested++
		if in {
			r.m.Uncacheable++
		} else {
			r.m.Skipped++
		}
		r.mu.Unlock()
		if !in {
			return placeholder(spec, ""), nil
		}
		return r.simulate(spec)
	}
	key := spec.Key()
	r.mu.Lock()
	r.m.Requested++
	if c, ok := r.calls[key]; ok {
		select {
		case <-c.done:
			r.m.CacheHits++
		default:
			r.m.Deduped++
		}
		r.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, c.err
		}
		// A joiner of an out-of-shard call receives the placeholder, which
		// no cache tier served: keep its Cached contract honest.
		return c.res.clone(!c.res.Skipped), nil
	}
	c := &call{done: make(chan struct{})}
	r.calls[key] = c
	r.mu.Unlock()

	// Read-through: consult the persistent store before simulating. A disk
	// hit completes the memo-cache entry, so repeats within this process
	// are ordinary CacheHits.
	if r.memo && r.store != nil {
		if res, ok := r.store.Get(key); ok {
			c.res = res
			r.mu.Lock()
			r.m.DiskHits++
			// Record the disk-served run (marked Cached) so -json
			// artifacts of warm or merged passes still carry every
			// per-run record.
			r.results = append(r.results, res.clone(true))
			r.mu.Unlock()
			// Mark the call complete before notifying: a Subscribe
			// arriving between the two either sees the closed channel
			// (served immediately) or registered its waiter before this
			// lock (served by the notify) — never neither.
			close(c.done)
			r.mu.Lock()
			r.notifyLocked(key, res)
			r.mu.Unlock()
			return c.res.clone(true), nil
		}
	}
	if !InShard(spec, r.shardI, r.shardN) {
		// Out of shard with both tiers cold: resolve waiters with a
		// placeholder, but drop the memo entry so a later run over a
		// warmer store can still resolve the spec for real.
		c.res = placeholder(spec, key)
		r.mu.Lock()
		r.m.Skipped++
		delete(r.calls, key)
		r.mu.Unlock()
		close(c.done)
		return c.res.clone(false), nil
	}

	c.res, c.err = r.simulate(spec)
	// Write-behind: persist the fresh result once the simulation is done;
	// a failed write is a cache non-event, not a run failure.
	if c.err == nil && r.memo && r.store != nil && r.store.Put(c.res) == nil {
		r.mu.Lock()
		r.m.DiskWrites++
		r.mu.Unlock()
	}
	// Complete the call before notifying subscriptions (see the disk-hit
	// path for the ordering argument).
	close(c.done)
	r.mu.Lock()
	if c.err != nil || !r.memo {
		// Drop the entry so later Runs retry (or, without memoization,
		// re-simulate); concurrent waiters still get this result.
		delete(r.calls, key)
	}
	if c.err == nil {
		r.notifyLocked(key, c.res)
	}
	r.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	return c.res.clone(false), nil
}

// placeholder builds the zero-stats Result an out-of-shard spec resolves to
// when no cache tier holds the real record.
func placeholder(spec RunSpec, key string) *Result {
	return &Result{
		Key:     key,
		Arch:    spec.Arch.String(),
		Config:  spec.ConfigName(),
		Bench:   spec.Bench,
		Warmup:  spec.Warmup,
		Measure: spec.Measure,
		Skipped: true,
		Stats:   &pipeline.Stats{},
	}
}

// simulate performs one real execution under the worker-pool bound.
func (r *Runner) simulate(spec RunSpec) (*Result, error) {
	g, err := workload.New(spec.Bench)
	if err != nil {
		return nil, err
	}
	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	if r.hook != nil {
		r.hook(spec)
	}
	// A non-memoizable spec's content hash cannot see the opaque fields
	// that make it uncacheable; stamping it would let -json consumers
	// conflate behaviourally different runs. Leave Key empty instead.
	key := ""
	if spec.Memoizable() {
		key = spec.Key()
	}
	start := time.Now()
	var st *pipeline.Stats
	var sum *sample.Summary
	if spec.Sample.Enabled() {
		// Sampled runs reuse the Store as a checkpoint tier (NoMemo runners
		// bypass it, same as the result tiers). What the store held changes
		// only the metrics, never the result.
		var ckStore *Store
		if r.memo {
			ckStore = r.store
		}
		var io sample.IO
		var err error
		st, sum, io, err = SimulateSampled(spec, ckStore)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		r.m.CheckpointHits += io.Hits
		r.m.CheckpointMisses += io.Misses
		r.m.CheckpointWrites += io.Writes
		r.mu.Unlock()
	} else {
		st = Simulate(spec, g, g.WarmRanges())
	}
	res := &Result{
		Key:     key,
		Arch:    spec.Arch.String(),
		Config:  spec.ConfigName(),
		Bench:   spec.Bench,
		Warmup:  spec.Warmup,
		Measure: spec.Measure,
		Elapsed: time.Since(start),
		Stats:   st,
		Sampled: sum,
	}
	r.mu.Lock()
	r.m.Simulated++
	r.results = append(r.results, res)
	r.mu.Unlock()
	return res, nil
}

// RunAll executes all specs concurrently (bounded by the worker pool),
// preserving order: results[i] corresponds to specs[i]. On error the
// remaining specs still run; the joined error and any nil results are
// returned together.
func (r *Runner) RunAll(specs []RunSpec) ([]*Result, error) {
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Run(specs[i])
		}(i)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// Metrics returns a snapshot of the counters.
func (r *Runner) Metrics() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m
}

// Results returns copies of the unique runs this Runner resolved so far —
// fresh simulations (Cached false) and store-served records (Cached true) —
// the per-run records behind cmd/experiments -json. Memo-cache repeats and
// out-of-shard placeholders are not recorded. The slice is sorted by content
// key (identity fields break ties for uncacheable runs, whose Key is empty),
// never by completion order, so artifacts produced under -parallel > 1 are
// byte-for-byte reproducible.
func (r *Runner) Results() []*Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Result, len(r.results))
	for i, res := range r.results {
		out[i] = res.clone(res.Cached)
	}
	SortResults(out)
	return out
}

// SortResults orders per-run records by content key, then by the identity
// fields for records without one. Every artifact emitter sorts with it so
// equal run sets of memoizable specs encode identically regardless of
// completion order. Uncacheable runs (Key "") that also share every
// identity field have no remaining discriminator — behaviourally distinct
// machines the hash cannot see — and keep completion order among
// themselves; byte-determinism is only promised for keyed records.
func SortResults(results []*Result) {
	sort.SliceStable(results, func(i, j int) bool {
		a, b := results[i], results[j]
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Arch != b.Arch {
			return a.Arch < b.Arch
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Warmup != b.Warmup {
			return a.Warmup < b.Warmup
		}
		return a.Measure < b.Measure
	})
}

// Lookup returns the completed in-process result for a content key, without
// simulating or touching the persistent store. It is the keyed read side the
// serve layer uses for GET-by-key; an in-flight or failed call reports a
// miss.
func (r *Runner) Lookup(key string) (*Result, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.calls[key]
	if !ok {
		return nil, false
	}
	select {
	case <-c.done:
	default:
		return nil, false
	}
	if c.err != nil || c.res == nil || c.res.Skipped {
		return nil, false
	}
	return c.res.clone(true), true
}

// Subscribe registers interest in a content key: the returned channel
// (buffered, capacity one) receives the Result as soon as any Run resolves
// the key — including a resolution already completed — and the cancel
// function releases the registration; callers that stop waiting (timeout,
// disconnected client) must invoke it. Failed runs do not fulfil
// subscriptions: the key may still resolve on a later retry, and callers
// bound their own wait. This is the hook behind the serve layer's
// GET /v1/runs/{key}?wait=1.
func (r *Runner) Subscribe(key string) (<-chan *Result, func()) {
	ch := make(chan *Result, 1)
	r.mu.Lock()
	// Check for an already-completed call and register the waiter under one
	// critical section, so a resolution can never slip between the two.
	if c, ok := r.calls[key]; ok {
		select {
		case <-c.done:
			if c.err == nil && c.res != nil && !c.res.Skipped {
				ch <- c.res.clone(true)
				r.mu.Unlock()
				return ch, func() {}
			}
		default:
		}
	}
	if r.waiters == nil {
		r.waiters = make(map[string][]chan *Result)
	}
	r.waiters[key] = append(r.waiters[key], ch)
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		ws := r.waiters[key]
		for i, w := range ws {
			if w == ch {
				r.waiters[key] = append(ws[:i:i], ws[i+1:]...)
				break
			}
		}
		if len(r.waiters[key]) == 0 {
			delete(r.waiters, key)
		}
	}
	return ch, cancel
}

// notifyLocked fulfils every subscription for key with its freshly resolved
// result. Caller holds r.mu; the channels are buffered, so delivery never
// blocks under the lock.
func (r *Runner) notifyLocked(key string, res *Result) {
	for _, ch := range r.waiters[key] {
		ch <- res.clone(true)
	}
	delete(r.waiters, key)
}
