package sim

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"dkip/internal/workload"
)

// Metrics counts Runner activity. Requested = Simulated + Deduped +
// CacheHits + failures; Uncacheable counts the subset of Simulated forced by
// non-memoizable specs.
type Metrics struct {
	// Requested counts Run calls (including those served without
	// simulating).
	Requested uint64 `json:"requested"`
	// Simulated counts actual processor executions.
	Simulated uint64 `json:"simulated"`
	// Deduped counts Run calls that joined an identical in-flight
	// simulation (singleflight).
	Deduped uint64 `json:"deduped"`
	// CacheHits counts Run calls served from the memo cache.
	CacheHits uint64 `json:"cache_hits"`
	// Uncacheable counts simulations of specs the cache could not hold
	// (opaque configs without a Tag).
	Uncacheable uint64 `json:"uncacheable"`
}

// Option configures a Runner.
type Option func(*Runner)

// Parallel bounds concurrent simulations; n <= 0 means GOMAXPROCS.
func Parallel(n int) Option {
	return func(r *Runner) {
		if n > 0 {
			r.sem = make(chan struct{}, n)
		}
	}
}

// OnSimulate installs a hook invoked once per actual simulation (never for
// deduplicated or cached runs), from the simulating goroutine. Tests use it
// to prove overlapping specs execute exactly once.
func OnSimulate(fn func(RunSpec)) Option {
	return func(r *Runner) { r.hook = fn }
}

// NoMemo disables the memoizing result cache while keeping in-flight
// deduplication: sequential repeats re-simulate, concurrent duplicates still
// coalesce. Benchmarks measuring raw simulator speed use it.
func NoMemo() Option {
	return func(r *Runner) { r.memo = false }
}

// Runner executes RunSpecs on a bounded worker pool with singleflight
// deduplication and an in-process memoizing cache. It is safe for concurrent
// use; one process-wide Runner shared by every experiment gives cross-figure
// deduplication.
type Runner struct {
	sem  chan struct{}
	hook func(RunSpec)
	memo bool

	mu      sync.Mutex
	calls   map[string]*call
	results []*Result
	m       Metrics
}

// call is one in-flight or completed simulation.
type call struct {
	done chan struct{}
	res  *Result
	err  error
}

// NewRunner builds a Runner. With no options: GOMAXPROCS workers, memoizing
// cache on, no hook.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{memo: true, calls: make(map[string]*call)}
	for _, o := range opts {
		o(r)
	}
	if r.sem == nil {
		r.sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	}
	return r
}

// Run executes the spec (or returns the memoized result of an identical
// earlier run). The returned Result is the caller's own copy; Cached reports
// whether a simulation was avoided.
func (r *Runner) Run(spec RunSpec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !spec.Memoizable() {
		r.mu.Lock()
		r.m.Requested++
		r.m.Uncacheable++
		r.mu.Unlock()
		return r.simulate(spec)
	}
	key := spec.Key()
	r.mu.Lock()
	r.m.Requested++
	if c, ok := r.calls[key]; ok {
		select {
		case <-c.done:
			r.m.CacheHits++
		default:
			r.m.Deduped++
		}
		r.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, c.err
		}
		return c.res.clone(true), nil
	}
	c := &call{done: make(chan struct{})}
	r.calls[key] = c
	r.mu.Unlock()

	c.res, c.err = r.simulate(spec)
	r.mu.Lock()
	if c.err != nil || !r.memo {
		// Drop the entry so later Runs retry (or, without memoization,
		// re-simulate); concurrent waiters still get this result.
		delete(r.calls, key)
	}
	r.mu.Unlock()
	close(c.done)
	if c.err != nil {
		return nil, c.err
	}
	return c.res.clone(false), nil
}

// simulate performs one real execution under the worker-pool bound.
func (r *Runner) simulate(spec RunSpec) (*Result, error) {
	g, err := workload.New(spec.Bench)
	if err != nil {
		return nil, err
	}
	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	if r.hook != nil {
		r.hook(spec)
	}
	// A non-memoizable spec's content hash cannot see the opaque fields
	// that make it uncacheable; stamping it would let -json consumers
	// conflate behaviourally different runs. Leave Key empty instead.
	key := ""
	if spec.Memoizable() {
		key = spec.Key()
	}
	start := time.Now()
	st := Simulate(spec, g, g.WarmRanges())
	res := &Result{
		Key:     key,
		Arch:    spec.Arch.String(),
		Config:  spec.ConfigName(),
		Bench:   spec.Bench,
		Warmup:  spec.Warmup,
		Measure: spec.Measure,
		Elapsed: time.Since(start),
		Stats:   st,
	}
	r.mu.Lock()
	r.m.Simulated++
	r.results = append(r.results, res)
	r.mu.Unlock()
	return res, nil
}

// RunAll executes all specs concurrently (bounded by the worker pool),
// preserving order: results[i] corresponds to specs[i]. On error the
// remaining specs still run; the joined error and any nil results are
// returned together.
func (r *Runner) RunAll(specs []RunSpec) ([]*Result, error) {
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Run(specs[i])
		}(i)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// Metrics returns a snapshot of the counters.
func (r *Runner) Metrics() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m
}

// Results returns copies of the unique simulations performed so far, in
// completion order — the per-run records behind cmd/experiments -json.
func (r *Runner) Results() []*Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Result, len(r.results))
	for i, res := range r.results {
		out[i] = res.clone(false)
	}
	return out
}
