package sim

import (
	"sync"
	"sync/atomic"
	"testing"

	"dkip/internal/core"
	"dkip/internal/ooo"
	"dkip/internal/predictor"
)

// testScale keeps runner tests to milliseconds per simulation.
const (
	testWarmup  = 500
	testMeasure = 2000
)

func TestRunMemoizes(t *testing.T) {
	var sims atomic.Uint64
	r := NewRunner(OnSimulate(func(RunSpec) { sims.Add(1) }))
	spec := DKIPSpec("swim", core.Config{}, testWarmup, testMeasure)

	first, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first run reported cached")
	}
	second, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second run not served from cache")
	}
	if got := sims.Load(); got != 1 {
		t.Errorf("simulated %d times, want 1", got)
	}
	if *first.Stats != *second.Stats {
		t.Error("cached stats differ from the original run")
	}
	if first.Stats == second.Stats {
		t.Error("callers must receive independent Stats copies")
	}
	m := r.Metrics()
	if m.Requested != 2 || m.Simulated != 1 || m.CacheHits != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

// Duplicated specs submitted together — the fig1/fig11/fig12 overlap case —
// must simulate exactly once, under -race.
func TestRunAllDeduplicates(t *testing.T) {
	var mu sync.Mutex
	simsPerKey := map[string]int{}
	r := NewRunner(OnSimulate(func(s RunSpec) {
		mu.Lock()
		simsPerKey[s.Key()]++
		mu.Unlock()
	}))

	uniq := []RunSpec{
		DKIPSpec("swim", core.Config{}, testWarmup, testMeasure),
		DKIPSpec("mcf", core.Config{}, testWarmup, testMeasure),
		OOOSpec("swim", ooo.R10K64(), testWarmup, testMeasure),
	}
	var specs []RunSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, uniq...)
	}
	results, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("result %d is nil", i)
		}
		if res.Bench != specs[i].Bench {
			t.Errorf("result %d out of order: bench %s for spec %s", i, res.Bench, specs[i].Bench)
		}
	}
	for key, n := range simsPerKey {
		if n != 1 {
			t.Errorf("key %s simulated %d times, want exactly 1", key, n)
		}
	}
	m := r.Metrics()
	if m.Simulated != uint64(len(uniq)) {
		t.Errorf("simulated %d, want %d unique", m.Simulated, len(uniq))
	}
	if m.Deduped+m.CacheHits != uint64(len(specs)-len(uniq)) {
		t.Errorf("deduped+cached = %d, want %d", m.Deduped+m.CacheHits, len(specs)-len(uniq))
	}
	// Identical runs must also produce identical stats regardless of
	// which caller triggered the simulation.
	for i := len(uniq); i < len(specs); i++ {
		if *results[i].Stats != *results[i%len(uniq)].Stats {
			t.Errorf("result %d differs from its duplicate", i)
		}
	}
}

// Concurrent Run calls for the same spec (not batched through RunAll) must
// coalesce via singleflight.
func TestConcurrentRunsCoalesce(t *testing.T) {
	var sims atomic.Uint64
	r := NewRunner(OnSimulate(func(RunSpec) { sims.Add(1) }))
	spec := OOOSpec("gzip", ooo.R10K64(), testWarmup, testMeasure)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Run(spec); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := sims.Load(); got != 1 {
		t.Errorf("simulated %d times, want 1", got)
	}
}

func TestNoMemoResimulates(t *testing.T) {
	var sims atomic.Uint64
	r := NewRunner(NoMemo(), OnSimulate(func(RunSpec) { sims.Add(1) }))
	spec := DKIPSpec("swim", core.Config{}, testWarmup, testMeasure)
	for i := 0; i < 3; i++ {
		res, err := r.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Error("NoMemo runner served a cache hit")
		}
	}
	if got := sims.Load(); got != 3 {
		t.Errorf("simulated %d times, want 3", got)
	}
}

// Opaque specs (custom predictor, no tag) must bypass the cache entirely
// rather than alias distinct machines.
func TestOpaqueSpecsNeverCached(t *testing.T) {
	var sims atomic.Uint64
	r := NewRunner(OnSimulate(func(RunSpec) { sims.Add(1) }))
	spec := DKIPSpec("swim", core.Config{
		NewPredictor: func() predictor.Predictor { return predictor.NewPerceptron(64, 8) },
	}, testWarmup, testMeasure)
	for i := 0; i < 2; i++ {
		res, err := r.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Error("opaque spec served from cache")
		}
	}
	m := r.Metrics()
	if sims.Load() != 2 || m.Uncacheable != 2 {
		t.Errorf("sims = %d, metrics = %+v; want 2 uncacheable simulations", sims.Load(), m)
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	r := NewRunner()
	if _, err := r.Run(DKIPSpec("no-such-bench", core.Config{}, testWarmup, testMeasure)); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if m := r.Metrics(); m.Simulated != 0 {
		t.Errorf("invalid spec simulated: %+v", m)
	}
}

func TestResultsRecordsUniqueRuns(t *testing.T) {
	r := NewRunner()
	spec := DKIPSpec("swim", core.Config{}, testWarmup, testMeasure)
	for i := 0; i < 3; i++ {
		if _, err := r.Run(spec); err != nil {
			t.Fatal(err)
		}
	}
	res := r.Results()
	if len(res) != 1 {
		t.Fatalf("Results holds %d records, want 1 (unique simulations only)", len(res))
	}
	if res[0].Key != spec.Key() || res[0].Bench != "swim" || res[0].Config != "DKIP-2048" {
		t.Errorf("record = %+v", res[0])
	}
}
