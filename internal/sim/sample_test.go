package sim

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dkip/internal/core"
	"dkip/internal/kilo"
	"dkip/internal/ooo"
	"dkip/internal/sample"
)

// sampleBenches is the accuracy slice of the 26-benchmark suite: five
// integer and five floating-point profiles, deliberately including the
// noisiest ones — mcf's pointer chasing, vpr's data-dependent branches,
// ammp's chase chains, art and swim's memory streams — alongside quieter
// cache-resident codes (bzip2, crafty). Sampling error on the full suite is
// bracketed by these.
var sampleBenches = []string{
	"bzip2", "crafty", "gcc", "mcf", "vpr",
	"ammp", "art", "galgel", "swim", "wupwise",
}

// Sampling pays off on long runs: at this scale the defaulted plan keeps a
// 10× detailed-instruction reduction while detailed per-interval warmup
// still covers four fills of the largest instruction window. This is the
// scale the documented 3% error bound is stated at — at toy scales
// (goldens, quick sweeps) sampling still works but the reduction and the
// bound degrade together.
const (
	sampleScaleWarmup  = 10_000
	sampleScaleMeasure = 1_000_000
)

// sampleGrid is the arch×bench grid the accuracy bound is documented
// against: the Figure 9 machines at the sampling scale.
func sampleGrid() []RunSpec {
	configs := []RunSpec{
		OOOSpec("", ooo.R10K64(), sampleScaleWarmup, sampleScaleMeasure),
		OOOSpec("", ooo.R10K256(), sampleScaleWarmup, sampleScaleMeasure),
		OOOSpec("", kilo.Config1024(), sampleScaleWarmup, sampleScaleMeasure),
		DKIPSpec("", core.Config{}, sampleScaleWarmup, sampleScaleMeasure),
	}
	var specs []RunSpec
	for _, bench := range sampleBenches {
		for _, s := range configs {
			s.Bench = bench
			specs = append(specs, s)
		}
	}
	return specs
}

// TestSampledAccuracy is the acceptance gate for the sampling methodology:
// across the Figure 9 arch×bench grid at the sampling scale, the default
// plan's CPI must stay within 3% mean absolute error (and 10% worst case)
// of the full run while simulating at least 10× fewer instructions in
// detail. Everything here is deterministic — the bound is a regression
// fence, not a flaky statistic. The shared store makes the cross-machine
// checkpoint reuse that a real sweep gets part of the measurement: each
// engine family pays the functional fast-forward once per benchmark.
func TestSampledAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full arch×bench grid at sampling scale")
	}
	if raceEnabled {
		t.Skip("simulates ~50M instructions; race overhead makes it minutes")
	}
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var absErrSum, worst float64
	var n int
	for _, spec := range sampleGrid() {
		spec := spec
		full, err := NewRunner().Run(spec)
		if err != nil {
			t.Fatalf("full run %s: %v", spec.Label(), err)
		}
		spec.Sample = sample.DefaultPlan()
		st, sum, _, err := SimulateSampled(spec, store)
		if err != nil {
			t.Fatalf("sampled run %s: %v", spec.Label(), err)
		}
		fullCPI := float64(full.Stats.Cycles) / float64(full.Stats.Committed)
		sampCPI := float64(st.Cycles) / float64(st.Committed)
		relErr := math.Abs(sampCPI-fullCPI) / fullCPI
		absErrSum += relErr
		if relErr > worst {
			worst = relErr
		}
		n++
		if r := sum.Reduction(); r < 10 {
			t.Errorf("%s: detailed-instruction reduction %.1f× < 10×", spec.Label(), r)
		}
		t.Logf("%-22s full=%.3f sampled=%.3f ±%.3f err=%.2f%% reduction=%.1fx",
			spec.Label(), fullCPI, sampCPI, sum.CPICI95, 100*relErr, sum.Reduction())
	}
	mae := absErrSum / float64(n)
	t.Logf("grid MAE %.2f%%, worst %.2f%% over %d points", 100*mae, 100*worst, n)
	if mae > 0.03 {
		t.Errorf("sampled CPI mean absolute error %.2f%% exceeds the documented 3%% bound", 100*mae)
	}
	if worst > 0.10 {
		t.Errorf("sampled CPI worst-case error %.2f%% exceeds 10%%", 100*worst)
	}
}

// TestSampledResumeDeterminism proves the checkpoint round trip is exact:
// a sampled run that reloads every checkpoint from the store produces
// byte-identical stats to one that computes them from cold — the in-Go
// counterpart of the CI artifact diff.
func TestSampledResumeDeterminism(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []RunSpec{
		DKIPSpec("mcf", core.Config{}, 2_000, 8_000),
		OOOSpec("swim", ooo.R10K256(), 2_000, 8_000),
	} {
		spec.Sample = sample.DefaultPlan()
		cold, coldSum, coldIO, err := SimulateSampled(spec, store)
		if err != nil {
			t.Fatalf("cold %s: %v", spec.Label(), err)
		}
		if coldIO.Hits != 0 || coldIO.Writes == 0 {
			t.Fatalf("cold %s: io = %+v, want no hits and some writes", spec.Label(), coldIO)
		}
		resumed, resumedSum, resumedIO, err := SimulateSampled(spec, store)
		if err != nil {
			t.Fatalf("resumed %s: %v", spec.Label(), err)
		}
		if resumedIO.Hits == 0 || resumedIO.Misses != 0 {
			t.Fatalf("resumed %s: io = %+v, want all hits", spec.Label(), resumedIO)
		}
		if !reflect.DeepEqual(cold, resumed) {
			t.Errorf("%s: resumed stats differ from cold\ncold:    %+v\nresumed: %+v", spec.Label(), cold, resumed)
		}
		if !reflect.DeepEqual(coldSum, resumedSum) {
			t.Errorf("%s: resumed summary differs from cold", spec.Label())
		}
		// No store at all must also match: checkpoint reuse is a pure
		// optimization.
		bare, _, _, err := SimulateSampled(spec, nil)
		if err != nil {
			t.Fatalf("storeless %s: %v", spec.Label(), err)
		}
		if !reflect.DeepEqual(cold, bare) {
			t.Errorf("%s: storeless stats differ from cold-with-store", spec.Label())
		}
	}
}

// TestSampledPartialResume kills the middle out of a checkpoint set: the run
// must rebuild missing checkpoints by fast-forwarding from the last stored
// one and still produce identical results.
func TestSampledPartialResume(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := DKIPSpec("mcf", core.Config{}, 2_000, 8_000)
	spec.Sample = sample.DefaultPlan()
	cold, _, _, err := SimulateSampled(spec, store)
	if err != nil {
		t.Fatal(err)
	}
	// Remove every other checkpoint blob.
	var blobs []string
	filepath.Walk(filepath.Join(dir, "checkpoints"), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			blobs = append(blobs, p)
		}
		return nil
	})
	if len(blobs) < 2 {
		t.Fatalf("expected several checkpoint blobs, found %d", len(blobs))
	}
	for i, p := range blobs {
		if i%2 == 1 {
			os.Remove(p)
		}
	}
	resumed, _, io, err := SimulateSampled(spec, store)
	if err != nil {
		t.Fatal(err)
	}
	if io.Hits == 0 || io.Misses == 0 {
		t.Fatalf("partial resume io = %+v, want a mix of hits and misses", io)
	}
	if !reflect.DeepEqual(cold, resumed) {
		t.Errorf("partial resume stats differ from cold")
	}
}

// TestSampleKeyStability pins the hash contract: a disabled plan leaves the
// key exactly as before sampling existed, an enabled plan changes it, and
// defaulted vs. explicit spellings of the same plan collide.
func TestSampleKeyStability(t *testing.T) {
	base := DKIPSpec("mcf", core.Config{}, 2_000, 8_000)
	plain := base.Key()
	sampled := base
	sampled.Sample = sample.DefaultPlan()
	if sampled.Key() == plain {
		t.Error("enabling sampling must change the content key")
	}
	explicit := base
	explicit.Sample = sampled.SamplePlan()
	if explicit.Key() != sampled.Key() {
		t.Error("defaulted and explicit spellings of one plan must share a key")
	}
	other := base
	other.Sample = sample.Plan{Intervals: 8}
	if other.Key() == sampled.Key() {
		t.Error("different plans must hash differently")
	}
}

// TestSampledThroughRunner exercises the memo/store integration: sampled
// results memoize, persist, round-trip with their summaries, and reuse
// checkpoints across sweep points that share a memory configuration.
func TestSampledThroughRunner(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(WithStore(store))
	mk := func(cfg ooo.Config) RunSpec {
		s := OOOSpec("mcf", cfg, 2_000, 8_000)
		s.Sample = sample.DefaultPlan()
		return s
	}
	res, err := r.Run(mk(ooo.R10K64()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled == nil || res.Sampled.Intervals < 2 {
		t.Fatalf("sampled result carries no summary: %+v", res.Sampled)
	}
	m := r.Metrics()
	if m.CheckpointWrites == 0 {
		t.Fatalf("metrics = %+v, want checkpoint writes", m)
	}
	// A different window size shares the checkpoint set: same memory,
	// predictor, bench, positions.
	if _, err := r.Run(mk(ooo.R10K256())); err != nil {
		t.Fatal(err)
	}
	m = r.Metrics()
	if m.CheckpointHits == 0 {
		t.Fatalf("metrics = %+v, want checkpoint hits for the shared sweep point", m)
	}
	// The persisted result round-trips with its summary.
	got, ok := store.Get(mk(ooo.R10K64()).Key())
	if !ok {
		t.Fatal("sampled result not persisted")
	}
	if got.Sampled == nil || *got.Sampled != *res.Sampled {
		t.Errorf("stored summary %+v != fresh %+v", got.Sampled, res.Sampled)
	}
}
