package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// InShard reports whether a spec is assigned to shard i of n. Assignment is
// deterministic and hash-stable: it depends only on the spec's content key
// (never on slice position, spec names, or process state), so every process
// that evaluates the same spec set agrees on the partition, and adding or
// removing unrelated specs never moves an existing spec between shards.
// n <= 1 means unsharded: every spec is in shard 0.
func InShard(spec RunSpec, i, n int) bool {
	if n <= 1 {
		return true
	}
	// The key is 32 hex characters; its first 16 (the hash's top 8 bytes)
	// are an unbiased uniform uint64.
	v, err := strconv.ParseUint(spec.Key()[:16], 16, 64)
	if err != nil {
		// Unreachable for a well-formed key; fall back to shard 0 so the
		// spec is never silently dropped from every shard.
		return i == 0
	}
	return v%uint64(n) == uint64(i)
}

// Shard returns the subsequence of specs assigned to shard i of n,
// preserving order. The shards of a spec set partition it: every spec
// appears in exactly one shard, and the union over i of Shard(specs, i, n)
// is specs itself. Shard(specs, 0, 1) returns specs unchanged.
func Shard(specs []RunSpec, i, n int) []RunSpec {
	if n <= 1 {
		return specs
	}
	var out []RunSpec
	for _, s := range specs {
		if InShard(s, i, n) {
			out = append(out, s)
		}
	}
	return out
}

// ParseShard parses an "i/n" shard flag value ("0/2", "1/2", ...). The
// empty string means unsharded and parses as (0, 1). i must satisfy
// 0 <= i < n.
func ParseShard(s string) (i, n int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	idx, count, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("sim: shard %q is not of the form i/n", s)
	}
	i, err = strconv.Atoi(idx)
	if err != nil {
		return 0, 0, fmt.Errorf("sim: shard index %q: %v", idx, err)
	}
	n, err = strconv.Atoi(count)
	if err != nil {
		return 0, 0, fmt.Errorf("sim: shard count %q: %v", count, err)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("sim: shard %q out of range: need 0 <= i < n", s)
	}
	return i, n, nil
}
