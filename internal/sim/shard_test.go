package sim

import (
	"fmt"
	"sync/atomic"
	"testing"

	"dkip/internal/core"
	"dkip/internal/ooo"
)

// shardSpecs builds a spec set large enough that every shard of small n is
// non-empty with overwhelming probability.
func shardSpecs() []RunSpec {
	var specs []RunSpec
	for m := uint64(1); m <= 24; m++ {
		specs = append(specs, DKIPSpec("swim", core.Config{}, testWarmup, testMeasure+m))
	}
	return specs
}

func TestParseShard(t *testing.T) {
	cases := []struct {
		in   string
		i, n int
		ok   bool
	}{
		{"", 0, 1, true},
		{"0/1", 0, 1, true},
		{"0/2", 0, 2, true},
		{"1/2", 1, 2, true},
		{"7/16", 7, 16, true},
		{"2/2", 0, 0, false},
		{"-1/2", 0, 0, false},
		{"0/0", 0, 0, false},
		{"1", 0, 0, false},
		{"a/b", 0, 0, false},
		{"1/2/3", 0, 0, false},
	}
	for _, c := range cases {
		i, n, err := ParseShard(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseShard(%q) err = %v, want ok=%t", c.in, err, c.ok)
			continue
		}
		if c.ok && (i != c.i || n != c.n) {
			t.Errorf("ParseShard(%q) = (%d, %d), want (%d, %d)", c.in, i, n, c.i, c.n)
		}
	}
}

// Shards must partition any spec set: every spec lands in exactly one shard,
// order is preserved, and the union over i recovers the input.
func TestShardPartitions(t *testing.T) {
	specs := shardSpecs()
	for _, n := range []int{1, 2, 3, 7} {
		counts := make(map[string]int)
		var union []RunSpec
		for i := 0; i < n; i++ {
			part := Shard(specs, i, n)
			union = append(union, part...)
			for _, s := range part {
				counts[s.Key()]++
			}
		}
		if len(union) != len(specs) {
			t.Errorf("n=%d: union holds %d specs, want %d", n, len(union), len(specs))
		}
		for _, s := range specs {
			if counts[s.Key()] != 1 {
				t.Errorf("n=%d: spec %s appears in %d shards, want exactly 1", n, s.Key(), counts[s.Key()])
			}
		}
	}
	if got := Shard(specs, 0, 1); len(got) != len(specs) {
		t.Errorf("unsharded Shard() dropped specs: %d of %d", len(got), len(specs))
	}
}

// Assignment is hash-stable: it follows the content key, so presentation
// renames never move a spec between shards, and the same spec is assigned
// identically in every process evaluating any spec set.
func TestInShardStable(t *testing.T) {
	plain := OOOSpec("gzip", ooo.R10K256(), testWarmup, testMeasure)
	renamed := plain
	renamed.OOO.Name = "R10-256@512KB"
	for i := 0; i < 4; i++ {
		if InShard(plain, i, 4) != InShard(renamed, i, 4) {
			t.Errorf("rename moved the spec relative to shard %d/4", i)
		}
	}
	for trial := 0; trial < 3; trial++ {
		if InShard(plain, 0, 2) != InShard(plain, 0, 2) {
			t.Fatal("InShard not deterministic")
		}
	}
}

// An out-of-shard spec with cold caches resolves to a Skipped placeholder —
// never a simulation — and the metrics identity still balances.
func TestRunnerSkipsOutOfShard(t *testing.T) {
	// Duplicate the set so singleflight joiners also cross the skip path.
	specs := append(append(shardSpecs(), shardSpecs()...), shardSpecs()...)
	var sims atomic.Uint64
	r := NewRunner(WithShard(0, 2), OnSimulate(func(s RunSpec) {
		if !InShard(s, 0, 2) {
			t.Errorf("simulated out-of-shard spec %s", s.Key())
		}
		sims.Add(1)
	}))
	results, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	uniqueIn := uint64(len(Shard(shardSpecs(), 0, 2)))
	uniqueOut := uint64(len(shardSpecs())) - uniqueIn
	if got := sims.Load(); got != uniqueIn {
		t.Errorf("simulated %d specs, want the %d unique in shard", got, uniqueIn)
	}
	for i, res := range results {
		want := !InShard(specs[i], 0, 2)
		if res.Skipped != want {
			t.Errorf("result %d Skipped = %t, want %t", i, res.Skipped, want)
		}
		if res.Skipped && res.Cached {
			t.Errorf("result %d is a zero-stats placeholder marked Cached", i)
		}
		if res.Skipped && (res.Bench != specs[i].Bench || res.Stats == nil) {
			t.Errorf("placeholder %d lacks identity fields: %+v", i, res)
		}
	}
	m := r.Metrics()
	if m.Requested != m.Simulated+m.Deduped+m.CacheHits+m.DiskHits+m.Skipped {
		t.Errorf("metrics do not balance: %+v", m)
	}
	// Placeholders are not memoized, so each out-of-shard duplicate either
	// joins an in-flight skip (Deduped) or skips afresh: at least one and
	// at most three skips per unique out-of-shard spec.
	if m.Skipped < uniqueOut || m.Skipped > 3*uniqueOut {
		t.Errorf("Skipped = %d, want within [%d, %d]", m.Skipped, uniqueOut, 3*uniqueOut)
	}
	// Skipped placeholders never pollute the per-run records.
	if recorded := r.Results(); uint64(len(recorded)) != uniqueIn {
		t.Errorf("Results() holds %d records, want the %d real simulations", len(recorded), uniqueIn)
	}
}

// The acceptance path: every shard run over one shared Store populates
// exactly the result set of an unsharded run, and a final unsharded pass is
// served entirely from disk.
func TestShardedRunnersPopulateFullStore(t *testing.T) {
	specs := shardSpecs()[:8]
	const n = 2

	unshardedDir := t.TempDir()
	ust, err := OpenStore(unshardedDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(WithStore(ust)).RunAll(specs); err != nil {
		t.Fatal(err)
	}
	wantKeys, err := ust.Keys()
	if err != nil {
		t.Fatal(err)
	}

	shardedDir := t.TempDir()
	for i := 0; i < n; i++ {
		st, err := OpenStore(shardedDir)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(WithStore(st), WithShard(i, n))
		if _, err := r.RunAll(specs); err != nil {
			t.Fatal(err)
		}
		m := r.Metrics()
		if m.Simulated != uint64(len(Shard(specs, i, n))) {
			t.Errorf("shard %d simulated %d, want %d", i, m.Simulated, len(Shard(specs, i, n)))
		}
	}
	st, err := OpenStore(shardedDir)
	if err != nil {
		t.Fatal(err)
	}
	gotKeys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
		t.Fatalf("shard union = %v, unsharded = %v", gotKeys, wantKeys)
	}

	// The merged store serves a final unsharded pass without simulating,
	// and each record is bit-identical to the unsharded run's.
	r := NewRunner(WithStore(st), OnSimulate(func(s RunSpec) {
		t.Errorf("merged store re-simulated %s", s.Label())
	}))
	merged, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	uref := NewRunner(WithStore(ust))
	ref, err := uref.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if resultBytes(t, merged[i]) != resultBytes(t, ref[i]) {
			t.Errorf("spec %d: sharded result differs from unsharded", i)
		}
	}
}
