// Package sim is the run-orchestration layer under every experiment, command
// and benchmark in this repository.
//
// A simulation run is described by a RunSpec: which engine (the out-of-order
// baseline family or the D-KIP), its full configuration, the workload, and
// the warmup/measure scale. A RunSpec has a deterministic content hash
// (Key), computed over the *normalized* configuration — presentation-only
// fields (Name) are excluded and paper defaults are applied first — so two
// specs describing the same machine on the same workload hash identically no
// matter how they were spelled.
//
// The Runner executes specs on a bounded worker pool with singleflight-style
// deduplication and an in-process memoizing cache keyed by that hash: the
// many overlapping sweeps of the paper's figures (the MEM-* baselines shared
// by the window and cache sweeps, the default D-KIP shared by Figure 9, the
// occupancy figures and most ablations) each simulate exactly once per
// process. Results are structured records with JSON and CSV encoders, the
// artifact format cmd/experiments -json emits.
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"dkip/internal/core"
	"dkip/internal/ooo"
	"dkip/internal/pipeline"
	"dkip/internal/trace"
	"dkip/internal/workload"
)

// Arch selects the simulation engine for a RunSpec.
type Arch uint8

// Engines.
const (
	// ArchOOO is the R10000-style out-of-order core (package ooo): the
	// R10-* baselines, the limit-study cores, and — with the SLIQ
	// extension enabled — the KILO-1024 baseline (package kilo).
	ArchOOO Arch = iota
	// ArchDKIP is the Decoupled KILO-Instruction Processor (package core).
	ArchDKIP
)

// String names the engine.
func (a Arch) String() string {
	switch a {
	case ArchOOO:
		return "ooo"
	case ArchDKIP:
		return "dkip"
	}
	return fmt.Sprintf("arch(%d)", uint8(a))
}

// RunSpec is the canonical description of one simulation run. Exactly one of
// OOO/DKIP is meaningful, selected by Arch.
type RunSpec struct {
	Arch Arch
	// OOO is the configuration when Arch == ArchOOO.
	OOO ooo.Config
	// DKIP is the configuration when Arch == ArchDKIP.
	DKIP core.Config
	// Bench names the workload (a registered synthetic SPEC2000 stand-in,
	// see internal/workload).
	Bench string
	// Warmup instructions run before measurement; Measure instructions
	// are measured.
	Warmup, Measure uint64
	// Tag is an extra hash discriminator. It is required to make a spec
	// memoizable when the configuration carries opaque function fields
	// (e.g. a custom NewPredictor), which the content hash cannot see:
	// distinct predictors must carry distinct tags.
	Tag string
}

// OOOSpec builds a RunSpec for the out-of-order engine.
func OOOSpec(bench string, cfg ooo.Config, warmup, measure uint64) RunSpec {
	return RunSpec{Arch: ArchOOO, OOO: cfg, Bench: bench, Warmup: warmup, Measure: measure}
}

// DKIPSpec builds a RunSpec for the D-KIP engine.
func DKIPSpec(bench string, cfg core.Config, warmup, measure uint64) RunSpec {
	return RunSpec{Arch: ArchDKIP, DKIP: cfg, Bench: bench, Warmup: warmup, Measure: measure}
}

// normalized applies configuration defaults so that equivalent specs encode
// identically, and zeroes the engine config the spec does not use.
func (s RunSpec) normalized() RunSpec {
	switch s.Arch {
	case ArchDKIP:
		s.DKIP = s.DKIP.WithDefaults()
		s.DKIP.Mem = s.DKIP.Mem.WithDefaults()
		s.OOO = ooo.Config{}
	default:
		s.OOO = s.OOO.WithDefaults()
		s.OOO.Mem = s.OOO.Mem.WithDefaults()
		s.DKIP = core.Config{}
	}
	return s
}

// ConfigName returns the configuration's display name (after defaults, so a
// zero D-KIP config reports the paper's "DKIP-2048").
func (s RunSpec) ConfigName() string {
	n := s.normalized()
	if s.Arch == ArchDKIP {
		return n.DKIP.Name
	}
	return n.OOO.Name
}

// Key returns the deterministic content hash identifying this run: engine,
// normalized configuration (minus presentation-only Name fields and opaque
// function fields), workload, scale, and tag. Two specs with equal Keys
// simulate identically; the Runner memoizes on it.
func (s RunSpec) Key() string {
	n := s.normalized()
	h := sha256.New()
	fmt.Fprintf(h, "arch=%s;bench=%s;warmup=%d;measure=%d;tag=%s;", s.Arch, s.Bench, s.Warmup, s.Measure, s.Tag)
	if s.Arch == ArchDKIP {
		hashConfig(h, n.DKIP)
	} else {
		hashConfig(h, n.OOO)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Memoizable reports whether the Key fully identifies the run. A spec whose
// raw configuration carries a non-nil function field (a custom predictor
// constructor) is opaque to the content hash and is only memoizable when a
// Tag distinguishes it.
func (s RunSpec) Memoizable() bool {
	return s.Tag != "" || s.Portable()
}

// Portable reports whether the spec survives serialization: a configuration
// carrying a non-nil function field (a custom predictor constructor) cannot
// travel over the wire even when a Tag makes it memoizable locally, so the
// serve layer refuses it rather than silently simulating a different
// machine.
func (s RunSpec) Portable() bool {
	if s.Arch == ArchDKIP {
		return !hasOpaqueFields(s.DKIP)
	}
	return !hasOpaqueFields(s.OOO)
}

// Validate reports spec errors: unknown workload, empty scale, or an invalid
// engine configuration.
func (s RunSpec) Validate() error {
	if _, ok := workload.Lookup(s.Bench); !ok {
		return fmt.Errorf("sim: unknown benchmark %q", s.Bench)
	}
	if s.Measure == 0 {
		return fmt.Errorf("sim: spec for %q measures zero instructions", s.Bench)
	}
	n := s.normalized()
	var err error
	if s.Arch == ArchDKIP {
		err = n.DKIP.Validate()
	} else {
		err = n.OOO.Validate()
	}
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// Label renders the spec for logs: "config/bench".
func (s RunSpec) Label() string {
	return s.ConfigName() + "/" + s.Bench
}

// Simulate builds the spec's processor and runs it over the given generator,
// warming the hierarchy with warm first (pass nil to skip). It is the
// low-level, uncached entry point: the Runner uses it with the spec's named
// workload, and cmd/dkipsim uses it directly for trace-driven runs whose
// source is not a registered benchmark.
func Simulate(s RunSpec, g trace.Generator, warm [][2]uint64) *pipeline.Stats {
	if s.Arch == ArchDKIP {
		p := core.New(s.DKIP)
		if warm != nil {
			p.Hierarchy().Warm(warm)
		}
		return p.Run(g, s.Warmup, s.Measure)
	}
	p := ooo.New(s.OOO)
	if warm != nil {
		p.Hierarchy().Warm(warm)
	}
	return p.Run(g, s.Warmup, s.Measure)
}
