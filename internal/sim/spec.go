// Package sim is the run-orchestration layer under every experiment, command
// and benchmark in this repository.
//
// A simulation run is described by a RunSpec: which engine (by Arch — the
// out-of-order baseline family, the D-KIP, or the in-order calibration
// core), its full configuration, the workload, and the warmup/measure scale.
// Engines are registered in an archDesc table (arch.go); nothing else in the
// layer switches on concrete processor types. A RunSpec has a deterministic
// content hash (Key), computed over the *normalized* configuration —
// presentation-only fields (Name) are excluded and paper defaults are
// applied first — so two specs describing the same machine on the same
// workload hash identically no matter how they were spelled.
//
// The Runner executes specs on a bounded worker pool with singleflight-style
// deduplication and an in-process memoizing cache keyed by that hash: the
// many overlapping sweeps of the paper's figures (the MEM-* baselines shared
// by the window and cache sweeps, the default D-KIP shared by Figure 9, the
// occupancy figures and most ablations) each simulate exactly once per
// process. Results are structured records with JSON and CSV encoders, the
// artifact format cmd/experiments -json emits.
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"dkip/internal/ckpt"
	"dkip/internal/core"
	"dkip/internal/inorder"
	"dkip/internal/ooo"
	"dkip/internal/pipeline"
	"dkip/internal/sample"
	"dkip/internal/trace"
	"dkip/internal/workload"
)

// Arch selects the simulation engine for a RunSpec.
type Arch uint8

// Engines.
const (
	// ArchOOO is the R10000-style out-of-order core (package ooo): the
	// R10-* baselines, the limit-study cores, and — with the SLIQ
	// extension enabled — the KILO-1024 baseline (package kilo).
	ArchOOO Arch = iota
	// ArchDKIP is the Decoupled KILO-Instruction Processor (package core).
	ArchDKIP
	// ArchInorder is the dual-issue in-order C920-class core (package
	// inorder), the SG2042 hardware-calibration target.
	ArchInorder
)

// String names the engine. Unregistered values render as "arch(N)", which
// ParseArch round-trips.
func (a Arch) String() string {
	if d, ok := archByID[a]; ok {
		return d.name
	}
	return fmt.Sprintf("arch(%d)", uint8(a))
}

// RunSpec is the canonical description of one simulation run. Exactly one of
// OOO/DKIP/Inorder is meaningful, selected by Arch.
type RunSpec struct {
	Arch Arch
	// OOO is the configuration when Arch == ArchOOO.
	OOO ooo.Config
	// DKIP is the configuration when Arch == ArchDKIP.
	DKIP core.Config
	// Inorder is the configuration when Arch == ArchInorder.
	Inorder inorder.Config
	// Bench names the workload (a registered synthetic SPEC2000 stand-in,
	// see internal/workload).
	Bench string
	// Warmup instructions run before measurement; Measure instructions
	// are measured.
	Warmup, Measure uint64
	// Tag is an extra hash discriminator. It is required to make a spec
	// memoizable when the configuration carries opaque function fields
	// (e.g. a custom NewPredictor), which the content hash cannot see:
	// distinct predictors must carry distinct tags.
	Tag string
	// Sample, when enabled, replaces the full detailed run with sampled
	// simulation (internal/sample): functional warming punctuated by
	// detailed measurement intervals, resumable through architectural
	// checkpoints stored next to results. The zero value means a full run,
	// and a disabled plan contributes nothing to Key, so pre-sampling specs
	// keep their content hashes (and warm stores stay warm).
	Sample sample.Plan
}

// OOOSpec builds a RunSpec for the out-of-order engine.
func OOOSpec(bench string, cfg ooo.Config, warmup, measure uint64) RunSpec {
	return RunSpec{Arch: ArchOOO, OOO: cfg, Bench: bench, Warmup: warmup, Measure: measure}
}

// DKIPSpec builds a RunSpec for the D-KIP engine.
func DKIPSpec(bench string, cfg core.Config, warmup, measure uint64) RunSpec {
	return RunSpec{Arch: ArchDKIP, DKIP: cfg, Bench: bench, Warmup: warmup, Measure: measure}
}

// InorderSpec builds a RunSpec for the in-order engine.
func InorderSpec(bench string, cfg inorder.Config, warmup, measure uint64) RunSpec {
	return RunSpec{Arch: ArchInorder, Inorder: cfg, Bench: bench, Warmup: warmup, Measure: measure}
}

// normalized applies configuration defaults so that equivalent specs encode
// identically, and zeroes the engine configs the spec does not use.
func (s RunSpec) normalized() RunSpec {
	desc(s.Arch).normalize(&s)
	return s
}

// ConfigName returns the configuration's display name (after defaults, so a
// zero D-KIP config reports the paper's "DKIP-2048").
func (s RunSpec) ConfigName() string {
	n := s.normalized()
	return desc(s.Arch).configName(&n)
}

// Key returns the deterministic content hash identifying this run: engine,
// normalized configuration (minus presentation-only Name fields and opaque
// function fields), workload, scale, and tag. Two specs with equal Keys
// simulate identically; the Runner memoizes on it.
func (s RunSpec) Key() string {
	n := s.normalized()
	h := sha256.New()
	fmt.Fprintf(h, "arch=%s;bench=%s;warmup=%d;measure=%d;tag=%s;", s.Arch, s.Bench, s.Warmup, s.Measure, s.Tag)
	// The sampling plan is part of the machine description only when it is
	// in force, and always in completed form: a defaulted plan and its
	// explicit spelling are the same run, and full-run specs hash exactly
	// as they did before sampling existed.
	if p := s.SamplePlan(); p.Enabled() {
		fmt.Fprintf(h, "sample=%d/%d/%d;", p.Intervals, p.Interval, p.Warmup)
	}
	hashConfig(h, desc(s.Arch).config(&n))
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// SamplePlan returns the spec's sampling plan with machine-aware defaults
// resolved: the per-interval detailed warmup scales with the machine's
// in-flight instruction capacity (ROB plus slow-lane queue for the
// out-of-order family, the LLIB for the D-KIP, the scoreboarded window for
// the in-order core) so that large-window machines are never measured
// mid-fill, and the interval length targets a 10× detailed-instruction
// reduction at the spec's scale. Key, Validate and SimulateSampled all go
// through this completion, so the hash always describes the plan that
// actually runs.
func (s RunSpec) SamplePlan() sample.Plan {
	if !s.Sample.Enabled() {
		return sample.Plan{}
	}
	n := s.normalized()
	return s.Sample.Complete(s.Warmup, s.Measure, desc(s.Arch).window(&n))
}

// checkpointKey returns the content key of the architectural checkpoint at
// stream position pos for this spec. The key hashes only what the
// checkpointed state is a function of — engine family (the D-KIP carries a
// confidence estimator the other cores lack), workload, memory
// configuration, predictor, tag, and position — never window or queue
// geometry, so every sweep point over e.g. window sizes shares one
// checkpoint set.
func (s RunSpec) checkpointKey(pos uint64) string {
	n := s.normalized()
	d := desc(s.Arch)
	h := sha256.New()
	fmt.Fprintf(h, "ckpt;family=%s;bench=%s;tag=%s;pred=%s;pos=%d;", d.ckptFamily, s.Bench, s.Tag, d.predictor(&n)().Name(), pos)
	hashConfig(h, d.memConfig(&n))
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Memoizable reports whether the Key fully identifies the run. A spec whose
// raw configuration carries a non-nil function field (a custom predictor
// constructor) is opaque to the content hash and is only memoizable when a
// Tag distinguishes it.
func (s RunSpec) Memoizable() bool {
	return s.Tag != "" || s.Portable()
}

// Portable reports whether the spec survives serialization: a configuration
// carrying a non-nil function field (a custom predictor constructor) cannot
// travel over the wire even when a Tag makes it memoizable locally, so the
// serve layer refuses it rather than silently simulating a different
// machine.
func (s RunSpec) Portable() bool {
	return !hasOpaqueFields(desc(s.Arch).rawConfig(&s))
}

// Validate reports spec errors: unknown workload, empty scale, or an invalid
// engine configuration.
func (s RunSpec) Validate() error {
	if _, ok := workload.Lookup(s.Bench); !ok {
		return fmt.Errorf("sim: unknown benchmark %q", s.Bench)
	}
	if s.Measure == 0 {
		return fmt.Errorf("sim: spec for %q measures zero instructions", s.Bench)
	}
	if err := s.SamplePlan().Validate(s.Measure); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	n := s.normalized()
	if err := desc(s.Arch).validate(&n); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// Label renders the spec for logs: "config/bench".
func (s RunSpec) Label() string {
	return s.ConfigName() + "/" + s.Bench
}

// NewEngine constructs the spec's machine behind the shared engine
// interface: cold caches, untrained predictor, ready to Run.
func (s RunSpec) NewEngine() sample.Engine {
	return desc(s.Arch).newEngine(&s)
}

// Simulate builds the spec's processor and runs it over the given generator,
// warming the hierarchy with warm first (pass nil to skip). It is the
// low-level, uncached entry point: the Runner uses it with the spec's named
// workload, and cmd/dkipsim uses it directly for trace-driven runs whose
// source is not a registered benchmark. The spec's sampling plan is ignored
// here — sampled runs need a restartable stream and go through
// SimulateSampled.
func Simulate(s RunSpec, g trace.Generator, warm [][2]uint64) *pipeline.Stats {
	p := s.NewEngine()
	if warm != nil {
		p.Hierarchy().Warm(warm)
	}
	return p.Run(g, s.Warmup, s.Measure)
}

// ckptKind is the Store blob namespace architectural checkpoints live under.
const ckptKind = "checkpoints"

// SimulateSampled executes the spec under its sampling plan: functional
// warming to each interval start, a detailed measurement per interval, CPI
// confidence interval over the intervals. When store is non-nil and the spec
// is memoizable, checkpoints captured at interval starts are persisted under
// content keys (checkpointKey) and reloaded on later runs — including runs
// of different machines that share the memory/predictor configuration, and
// resumed runs of a killed sweep. The returned stats and summary are a pure
// function of the spec; only the IO counters depend on what the store held.
func SimulateSampled(s RunSpec, store *Store) (*pipeline.Stats, *sample.Summary, sample.IO, error) {
	g, err := workload.New(s.Bench)
	if err != nil {
		return nil, nil, sample.IO{}, err
	}
	newGen := func() trace.Generator {
		gen, err := workload.New(s.Bench)
		if err != nil {
			// The lookup above succeeded; the registry is immutable.
			panic(err)
		}
		return gen
	}
	cfg := sample.Config{
		Bench:      s.Bench,
		NewEngine:  s.NewEngine,
		NewGen:     newGen,
		WarmRanges: g.WarmRanges(),
		Warmup:     s.Warmup,
		Measure:    s.Measure,
		Plan:       s.SamplePlan(),
	}
	if store != nil && s.Memoizable() {
		cfg.Load = func(pos uint64) *ckpt.Checkpoint {
			data, ok := store.GetBlob(ckptKind, s.checkpointKey(pos))
			if !ok {
				return nil
			}
			c, err := ckpt.Decode(data)
			// A checkpoint that decodes but does not describe this position
			// is a key collision or a corrupted store: treat as a miss and
			// recompute, exactly like result-store corruption.
			if err != nil || c.Pos != pos || c.Bench != s.Bench {
				return nil
			}
			return c
		}
		cfg.Store = func(c *ckpt.Checkpoint) {
			// A failed write is a cache non-event, same as Result writes.
			_ = store.PutBlob(ckptKind, s.checkpointKey(c.Pos), ckpt.Encode(c))
		}
	}
	return sample.Run(cfg)
}
