package sim

import (
	"regexp"
	"testing"

	"dkip/internal/core"
	"dkip/internal/mem"
	"dkip/internal/ooo"
	"dkip/internal/workload"
)

var keyFormat = regexp.MustCompile(`^[0-9a-f]{32}$`)

// FuzzSpecKey fuzzes the content-hash normalization invariants the whole
// caching stack (memo cache, persistent store, shard assignment) leans on:
//
//   - Key() is deterministic and always 32 lowercase hex characters;
//   - presentation-only Name fields (config and memory subsystem) never
//     affect the hash;
//   - explicitly applying the defaults a zero field stands for hashes
//     identically to omitting them (normalization is idempotent);
//   - behaviourally distinct specs constructed in one invocation — different
//     scale, workload, tag, or engine — never collide.
//
// The in-code f.Add seeds are mirrored by a checked-in corpus under
// testdata/fuzz/FuzzSpecKey (exercised on every plain `go test` run); run
// the fuzzer itself with `go test -fuzz=FuzzSpecKey ./internal/sim`.
func FuzzSpecKey(f *testing.F) {
	f.Add(true, uint64(0), uint64(1), uint64(1000), uint64(4000), uint64(2048), uint64(40), uint64(20), uint64(512<<10), "DKIP-2048", "")
	f.Add(false, uint64(3), uint64(4), uint64(30000), uint64(200000), uint64(0), uint64(0), uint64(0), uint64(0), "R10-64", "tag")
	f.Add(true, uint64(7), uint64(7), uint64(0), uint64(1), uint64(1), uint64(2), uint64(3), uint64(4), "", "x")
	f.Fuzz(func(t *testing.T, archDKIP bool, benchA, benchB, warmup, measure, llib, cpq, mpq, l2 uint64, name, tag string) {
		names := workload.Names()
		bench := names[int(benchA%uint64(len(names)))]
		other := names[int(benchB%uint64(len(names)))]

		// mk assembles the spec under test; the modular reductions keep
		// the uint64 fuzz inputs inside sane int ranges without losing
		// variety.
		mk := func(configName string) RunSpec {
			memCfg := mem.DefaultConfig().WithL2Size(int(l2 % (64 << 20)))
			if archDKIP {
				s := DKIPSpec(bench, core.Config{
					Name:     configName,
					CPIQSize: int(cpq % 1024),
					MPIQSize: int(mpq % 1024),
					LLIBSize: int(llib % 65536),
					Mem:      memCfg,
				}, warmup, measure)
				s.Tag = tag
				return s
			}
			cfg := ooo.R10K64()
			cfg.Name = configName
			cfg.IQSize = int(cpq % 1024)
			cfg.LSQSize = int(mpq % 1024)
			cfg.Mem = memCfg
			s := OOOSpec(bench, cfg, warmup, measure)
			s.Tag = tag
			return s
		}
		spec := mk(name)
		key := spec.Key()

		// Determinism and format.
		if spec.Key() != key {
			t.Fatalf("Key() not deterministic: %s then %s", key, spec.Key())
		}
		if !keyFormat.MatchString(key) {
			t.Fatalf("Key() = %q, want 32 lowercase hex characters", key)
		}

		// Config and memory-subsystem Names are presentation-only.
		if mk("").Key() != key {
			t.Errorf("config Name %q changed the key", name)
		}
		renamed := spec
		if archDKIP {
			renamed.DKIP.Mem.Name = "renamed-subsystem"
		} else {
			renamed.OOO.Mem.Name = "renamed-subsystem"
		}
		if renamed.Key() != key {
			t.Error("memory-subsystem Name changed the key")
		}

		// Normalization idempotence: a config with its defaults spelled
		// out is the same machine as the zero-field spelling.
		defaulted := spec
		if archDKIP {
			defaulted.DKIP = defaulted.DKIP.WithDefaults()
			defaulted.DKIP.Mem = defaulted.DKIP.Mem.WithDefaults()
		} else {
			defaulted.OOO = defaulted.OOO.WithDefaults()
			defaulted.OOO.Mem = defaulted.OOO.Mem.WithDefaults()
		}
		if defaulted.Key() != key {
			t.Error("explicitly-set defaults hash differently from omitted ones")
		}

		// Behaviourally distinct variants must never collide with the base
		// spec or each other.
		seen := map[string]string{key: "base"}
		check := func(label string, v RunSpec) {
			k := v.Key()
			if prev, dup := seen[k]; dup {
				t.Errorf("variant %q collides with %q on key %s", label, prev, k)
				return
			}
			seen[k] = label
		}
		longer := spec
		longer.Measure = measure + 1
		check("measure+1", longer)
		warmer := spec
		warmer.Warmup = warmup + 1
		check("warmup+1", warmer)
		if other != bench {
			moved := spec
			moved.Bench = other
			check("other bench", moved)
		}
		tagged := spec
		tagged.Tag = tag + "~"
		check("other tag", tagged)
		flipped := mk(name)
		if archDKIP {
			flipped = OOOSpec(bench, ooo.R10K64(), warmup, measure)
		} else {
			flipped = DKIPSpec(bench, core.Config{}, warmup, measure)
		}
		flipped.Tag = tag
		check("other engine", flipped)
	})
}
