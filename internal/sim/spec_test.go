package sim

import (
	"strings"
	"testing"

	"dkip/internal/core"
	"dkip/internal/kilo"
	"dkip/internal/mem"
	"dkip/internal/ooo"
	"dkip/internal/predictor"
)

func TestKeyDeterministic(t *testing.T) {
	a := DKIPSpec("swim", core.Config{}, 1000, 4000)
	b := DKIPSpec("swim", core.Config{}, 1000, 4000)
	if a.Key() != b.Key() {
		t.Errorf("identical specs hash differently: %s vs %s", a.Key(), b.Key())
	}
	if len(a.Key()) != 32 {
		t.Errorf("key %q not 32 hex chars", a.Key())
	}
}

func TestKeyDiscriminates(t *testing.T) {
	base := DKIPSpec("swim", core.Config{}, 1000, 4000)
	variants := map[string]RunSpec{
		"bench":   DKIPSpec("mcf", core.Config{}, 1000, 4000),
		"warmup":  DKIPSpec("swim", core.Config{}, 2000, 4000),
		"measure": DKIPSpec("swim", core.Config{}, 1000, 8000),
		"config":  DKIPSpec("swim", core.Config{LLIBSize: 1024}, 1000, 4000),
		"mem":     DKIPSpec("swim", core.Config{Mem: mem.DefaultConfig().WithL2Size(1 << 20)}, 1000, 4000),
		"arch":    OOOSpec("swim", ooo.R10K64(), 1000, 4000),
		"tag":     {Arch: ArchDKIP, Bench: "swim", Warmup: 1000, Measure: 4000, Tag: "x"},
	}
	for name, v := range variants {
		if v.Key() == base.Key() {
			t.Errorf("%s variant hashes equal to base", name)
		}
	}
}

// The Name fields of every config are presentation-only: specs differing
// only in names must dedupe.
func TestKeyIgnoresNames(t *testing.T) {
	a := ooo.R10K256()
	b := ooo.R10K256()
	b.Name = "R10-256@512KB"
	b.Mem = mem.DefaultConfig().WithL2Size(512 << 10) // same geometry, renamed
	sa := OOOSpec("gzip", a, 1000, 4000)
	sb := OOOSpec("gzip", b, 1000, 4000)
	if sa.Key() != sb.Key() {
		t.Error("renamed but identical machine hashes differently")
	}
}

// A zero config and the explicitly spelled-out paper defaults are the same
// machine; normalization must make them hash equal.
func TestKeyNormalizesDefaults(t *testing.T) {
	zero := DKIPSpec("swim", core.Config{}, 1000, 4000)
	spelled := DKIPSpec("swim", core.Config{
		CPIQSize:  40,
		MPIQSize:  20,
		MPInOrder: core.Bool(true),
		LLIBSize:  2048,
		Mem:       mem.DefaultConfig(),
	}, 1000, 4000)
	if zero.Key() != spelled.Key() {
		t.Error("zero config and explicit defaults hash differently")
	}
}

// Figure 9's R10-256 and Figure 11's R10-256@512KB describe the same
// machine on the same workloads — the cross-figure overlap the memo cache
// exists for.
func TestCrossFigureOverlapHashesEqual(t *testing.T) {
	fig9 := OOOSpec("gzip", ooo.R10K256(), 1000, 4000)
	r10 := ooo.R10K256()
	r10.Mem = mem.DefaultConfig().WithL2Size(512 << 10)
	fig11 := OOOSpec("gzip", r10, 1000, 4000)
	if fig9.Key() != fig11.Key() {
		t.Error("fig9 R10-256 and fig11 R10-256@512KB should share one simulation")
	}
}

func TestMemoizable(t *testing.T) {
	if !DKIPSpec("swim", core.Config{}, 1000, 4000).Memoizable() {
		t.Error("plain spec should be memoizable")
	}
	custom := core.Config{NewPredictor: func() predictor.Predictor { return predictor.NewPerceptron(64, 8) }}
	spec := DKIPSpec("swim", custom, 1000, 4000)
	if spec.Memoizable() {
		t.Error("spec with an opaque predictor constructor must not be memoizable untagged")
	}
	spec.Tag = "tiny-perceptron"
	if !spec.Memoizable() {
		t.Error("tag should restore memoizability")
	}
	other := spec
	other.Tag = "other-predictor"
	if spec.Key() == other.Key() {
		t.Error("tags must discriminate keys")
	}
}

func TestValidate(t *testing.T) {
	if err := DKIPSpec("swim", core.Config{}, 1000, 4000).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := DKIPSpec("no-such-bench", core.Config{}, 1000, 4000).Validate(); err == nil {
		t.Error("unknown benchmark accepted")
	} else if !strings.Contains(err.Error(), "no-such-bench") {
		t.Errorf("error does not name the benchmark: %v", err)
	}
	if err := DKIPSpec("swim", core.Config{}, 1000, 0).Validate(); err == nil {
		t.Error("zero measure accepted")
	}
	if err := OOOSpec("swim", ooo.Config{}, 1000, 4000).Validate(); err == nil {
		t.Error("ooo config without a ROB size accepted")
	}
}

func TestConfigNameAndLabel(t *testing.T) {
	if got := DKIPSpec("swim", core.Config{}, 1, 1).ConfigName(); got != "DKIP-2048" {
		t.Errorf("ConfigName = %q, want DKIP-2048", got)
	}
	if got := OOOSpec("mcf", kilo.Config1024(), 1, 1).Label(); got != "KILO-1024/mcf" {
		t.Errorf("Label = %q", got)
	}
	if got := ArchDKIP.String(); got != "dkip" {
		t.Errorf("ArchDKIP = %q", got)
	}
}
