package sim

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// storeVersion stamps every on-disk entry. Entries written under a different
// version are treated as absent (re-simulated and overwritten), so a schema
// change to Result or pipeline.Stats never corrupts a warm cache directory —
// it just invalidates it.
const storeVersion = 1

// storeEntry is the on-disk envelope around one Result: the format version,
// the content key the file is addressed by (echoed inside so a renamed or
// misplaced file is detectable), and the record itself.
type storeEntry struct {
	Version int     `json:"version"`
	Key     string  `json:"key"`
	Result  *Result `json:"result"`
}

// Store is a persistent, content-addressed result cache: one JSON entry per
// unique RunSpec.Key(), laid out as
//
//	<dir>/objects/<key[:2]>/<key>.json
//
// (a two-hex-character fan-out keeps directories small at full-sweep scale).
// Writes are atomic — a temp file in the destination directory renamed into
// place — so concurrent writers (two shards sharing one directory, or a
// process killed mid-write) can never publish a torn entry; a truncated or
// otherwise unreadable entry reads as a miss, never an error. A Store handle
// is safe for concurrent use and for sharing one directory across processes.
type Store struct {
	dir string
}

// storeTempMaxAge is how old a .tmp-* file must be before OpenStore sweeps
// it. Atomic writes hold their temp file for milliseconds; an hour-old one
// belongs to a writer that was killed between CreateTemp and Rename, and
// nothing else will ever remove it.
const storeTempMaxAge = time.Hour

// OpenStore opens the store rooted at dir, creating the directory tree if
// needed, and sweeps stale temp files orphaned by killed writers.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("sim: open store: %w", err)
	}
	s := &Store{dir: dir}
	s.sweepTemp()
	return s, nil
}

// sweepTemp removes .tmp-* files older than storeTempMaxAge anywhere under
// the store root. Put (and PutBlob) only unlink their temp file on error
// paths — a writer killed mid-Put leaves its orphan forever otherwise. The
// age gate keeps concurrent writers' live temp files safe; sweep errors are
// ignored (the worst case is the orphan surviving until the next open).
func (s *Store) sweepTemp() {
	cutoff := time.Now().Add(-storeTempMaxAge)
	_ = filepath.WalkDir(s.dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasPrefix(d.Name(), ".tmp-") {
			return nil
		}
		if info, err := d.Info(); err == nil && info.ModTime().Before(cutoff) {
			_ = os.Remove(p)
		}
		return nil
	})
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a content key to its entry file.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key+".json")
}

// Get returns the stored Result for a content key. The second return is
// false for any entry that cannot be served: missing, unreadable, truncated,
// written under a different format version, or stored under a mismatched
// key. Corruption is deliberately indistinguishable from a miss — the caller
// re-simulates and the next Put heals the entry.
func (s *Store) Get(key string) (*Result, bool) {
	if len(key) < 2 {
		return nil, false
	}
	return decodeEntryFile(s.path(key), key)
}

// Has reports whether the store holds an entry file for the content key,
// without decoding it — the cheap existence probe behind the serve layer's
// progress streams, where thousands of keys may be polled per tick. A
// corrupt entry still reads as present here; consumers that actually load
// the record (Get) keep the validity checks.
func (s *Store) Has(key string) bool {
	if len(key) < 2 {
		return false
	}
	_, err := os.Stat(s.path(key))
	return err == nil
}

// decodeEntryFile reads and validates one entry file, expecting it to hold
// the given content key. Shared by Get (which derives the path from the key)
// and Walk (which has the path in hand and derives the key from the file
// name — never the directory, so an entry filed under the wrong fan-out
// directory is still served rather than silently dropped).
func decodeEntryFile(path, key string) (*Result, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var e storeEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Version != storeVersion || e.Key != key || e.Result == nil || e.Result.Stats == nil {
		return nil, false
	}
	return e.Result, true
}

// Put persists a Result under its content key, atomically: the entry is
// written to a temp file in the destination directory and renamed into
// place. The stored record is normalized (Cached/Skipped cleared) so that a
// result round-tripped through the store is byte-identical to the fresh one.
func (s *Store) Put(res *Result) error {
	if res == nil || len(res.Key) < 2 {
		return fmt.Errorf("sim: store put: result carries no content key")
	}
	r := res.clone(false)
	r.Skipped = false
	data, err := json.MarshalIndent(storeEntry{Version: storeVersion, Key: r.Key, Result: r}, "", "  ")
	if err != nil {
		return fmt.Errorf("sim: store put: %w", err)
	}
	path := s.path(r.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("sim: store put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("sim: store put: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: store put: %w", err)
	}
	return nil
}

// Walk streams every valid entry to fn, one at a time, in ascending key
// order for correctly filed entries (entry files are named by key, and
// WalkDir traverses lexically), so arbitrarily large manifests can be
// processed in constant memory — the serve layer's NDJSON endpoint encodes
// straight off it. Each walked file is decoded directly rather than
// re-fetched through Get, so an entry filed under the wrong fan-out
// directory (e.g. a hand-merged shard dir) is still yielded — possibly out
// of key order, which List's sort repairs. A non-nil error from fn aborts
// the walk and is returned. Entries that fail the Get checks (corrupt,
// stale version, key not matching the file name) are silently skipped.
func (s *Store) Walk(fn func(*Result) error) error {
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		if res, ok := decodeEntryFile(p, strings.TrimSuffix(d.Name(), ".json")); ok {
			return fn(res)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("sim: store walk: %w", err)
	}
	return nil
}

// List decodes every valid entry in the store, sorted by key — the manifest
// API for merging shard outputs: read each shard's store (or one shared
// directory) and Put the union wherever it should land.
func (s *Store) List() ([]*Result, error) {
	var out []*Result
	if err := s.Walk(func(res *Result) error {
		out = append(out, res)
		return nil
	}); err != nil {
		return nil, err
	}
	// Walk yields key order for correctly filed entries, but a misplaced
	// entry (wrong fan-out directory) arrives wherever WalkDir finds it —
	// this sort is what upholds List's ordering contract.
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Keys returns the sorted content keys of every valid entry.
func (s *Store) Keys() ([]string, error) {
	results, err := s.List()
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(results))
	for i, r := range results {
		keys[i] = r.Key
	}
	return keys, nil
}

// StoreStats summarizes a store for monitoring endpoints (dkipd
// /v1/metrics).
type StoreStats struct {
	// Dir is the store's root directory.
	Dir string `json:"dir"`
	// Entries counts entry files under objects/, including entries a
	// current Get would reject (stale version, corruption) — it is a
	// capacity signal, not a validity census.
	Entries int `json:"entries"`
	// Checkpoints counts architectural-checkpoint blobs stored for sampled
	// runs.
	Checkpoints int `json:"checkpoints"`
}

// Stats counts the store's entry files without decoding them.
func (s *Store) Stats() (StoreStats, error) {
	st := StoreStats{Dir: s.dir}
	count := func(root, suffix string) (int, error) {
		n := 0
		err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				if os.IsNotExist(err) {
					return filepath.SkipAll
				}
				return err
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), suffix) {
				n++
			}
			return nil
		})
		return n, err
	}
	var err error
	if st.Entries, err = count(filepath.Join(s.dir, "objects"), ".json"); err != nil {
		return st, fmt.Errorf("sim: store stats: %w", err)
	}
	if st.Checkpoints, err = count(filepath.Join(s.dir, ckptKind), ".bin"); err != nil {
		return st, fmt.Errorf("sim: store stats: %w", err)
	}
	return st, nil
}

// blobPath maps a (kind, key) pair to its blob file, with the same two-char
// fan-out as result entries:
//
//	<dir>/<kind>/<key[:2]>/<key>.bin
func (s *Store) blobPath(kind, key string) string {
	return filepath.Join(s.dir, kind, key[:2], key+".bin")
}

// GetBlob returns the stored bytes for a content-keyed binary blob (e.g. an
// architectural checkpoint). Like Get, anything unservable — missing,
// unreadable — reads as a miss; the blob's internal integrity is the
// caller's codec's business.
func (s *Store) GetBlob(kind, key string) ([]byte, bool) {
	if len(key) < 2 || kind == "" {
		return nil, false
	}
	data, err := os.ReadFile(s.blobPath(kind, key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// WalkBlobs streams every blob of one kind to fn as (key, data) pairs, in
// ascending key order for correctly filed blobs (blob files are named by
// key and WalkDir traverses lexically). A missing kind directory walks zero
// blobs, not an error — the natural state of a store that never held that
// kind. A non-nil error from fn aborts the walk and is returned. Unreadable
// blob files are silently skipped, matching Get's corruption-is-a-miss
// stance.
func (s *Store) WalkBlobs(kind string, fn func(key string, data []byte) error) error {
	root := filepath.Join(s.dir, kind)
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return filepath.SkipAll
			}
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".bin") {
			return nil
		}
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return nil
		}
		return fn(strings.TrimSuffix(d.Name(), ".bin"), data)
	})
	if err != nil {
		return fmt.Errorf("sim: store walk blobs: %w", err)
	}
	return nil
}

// DeleteBlob removes one blob; deleting an absent blob is a no-op, so
// concurrent removers (two daemons expiring the same stale membership
// lease) never fail each other.
func (s *Store) DeleteBlob(kind, key string) error {
	if len(key) < 2 || kind == "" {
		return fmt.Errorf("sim: store delete blob: bad kind/key %q/%q", kind, key)
	}
	if err := os.Remove(s.blobPath(kind, key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("sim: store delete blob: %w", err)
	}
	return nil
}

// PutBlob persists a binary blob under its content key, atomically (temp
// file + rename, like Put). Blobs are immutable by construction — a key is
// a hash of what produced the bytes — so concurrent writers racing on one
// key publish identical content and either rename wins.
func (s *Store) PutBlob(kind, key string, data []byte) error {
	if len(key) < 2 || kind == "" {
		return fmt.Errorf("sim: store put blob: bad kind/key %q/%q", kind, key)
	}
	path := s.blobPath(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("sim: store put blob: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("sim: store put blob: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: store put blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: store put blob: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: store put blob: %w", err)
	}
	return nil
}
