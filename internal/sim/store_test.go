package sim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dkip/internal/core"
	"dkip/internal/ooo"
	"dkip/internal/pipeline"
)

// storeSpecs is a small mixed spec set reused by the store tests.
func storeSpecs() []RunSpec {
	return []RunSpec{
		DKIPSpec("swim", core.Config{}, testWarmup, testMeasure),
		DKIPSpec("mcf", core.Config{}, testWarmup, testMeasure),
		OOOSpec("gzip", ooo.R10K64(), testWarmup, testMeasure),
	}
}

// resultBytes renders a Result for bit-identity comparison. Cached and
// Elapsed are normalized away: they describe how and how fast this copy was
// produced, not what was simulated.
func resultBytes(t *testing.T, r *Result) string {
	t.Helper()
	c := r.clone(false)
	c.Elapsed = 0
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fakeResult builds a store entry without running the simulator.
func fakeResult(key string) *Result {
	return &Result{
		Key: key, Arch: "dkip", Config: "DKIP-2048", Bench: "swim",
		Warmup: 1, Measure: 2, Stats: &pipeline.Stats{Cycles: 10, Committed: 20},
	}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 16)
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store served a result")
	}
	want := fakeResult(key)
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("stored entry not readable")
	}
	if resultBytes(t, got) != resultBytes(t, want) {
		t.Errorf("round trip drifted:\n got %s\nwant %s", resultBytes(t, got), resultBytes(t, want))
	}
	if err := s.Put(&Result{Stats: &pipeline.Stats{}}); err == nil {
		t.Error("Put accepted a result without a content key")
	}
	// Overwriting an existing entry is allowed (last write wins).
	want.Stats.Cycles = 99
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(key); got.Stats.Cycles != 99 {
		t.Error("overwrite did not take effect")
	}
	// Atomic writes leave no temp droppings behind.
	matches, err := filepath.Glob(filepath.Join(s.Dir(), "objects", "*", ".tmp-*"))
	if err != nil || len(matches) != 0 {
		t.Errorf("temp files left behind: %v (err %v)", matches, err)
	}
}

func TestStoreIgnoresStaleVersionAndMismatchedKey(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("cd", 16)
	if err := s.Put(fakeResult(key)); err != nil {
		t.Fatal(err)
	}

	// A future format version must read as a miss, not garbage.
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if stale == string(data) {
		t.Fatal("entry does not carry the version stamp")
	}
	if err := os.WriteFile(s.path(key), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Error("entry with a different format version was served")
	}

	// An entry renamed to a different key (key echo mismatch) is a miss.
	if err := s.Put(fakeResult(key)); err != nil {
		t.Fatal(err)
	}
	other := strings.Repeat("ce", 16)
	if err := os.MkdirAll(filepath.Dir(s.path(other)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.path(key), s.path(other)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(other); ok {
		t.Error("entry stored under a mismatched key was served")
	}
}

func TestStoreListAndKeys(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{strings.Repeat("ff", 16), strings.Repeat("00", 16), strings.Repeat("9a", 16)}
	for _, k := range keys {
		if err := s.Put(fakeResult(k)); err != nil {
			t.Fatal(err)
		}
	}
	// A corrupted entry is skipped by the manifest, not fatal.
	bad := strings.Repeat("11", 16)
	if err := s.Put(fakeResult(bad)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(bad), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{keys[1], keys[2], keys[0]} // sorted
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
	results, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("List() returned %d entries, want 3", len(results))
	}
	for i, r := range results {
		if r.Key != want[i] {
			t.Errorf("List()[%d].Key = %s, want %s", i, r.Key, want[i])
		}
	}
}

// TestStoreRoundTripAcrossRunners is the cross-process integration test: a
// store populated by one Runner fully serves a fresh Runner over the same
// directory (the second process of a warm-start), every record bit-identical
// to the original; a corrupted entry is quietly re-simulated and healed.
func TestStoreRoundTripAcrossRunners(t *testing.T) {
	dir := t.TempDir()
	specs := storeSpecs()

	st1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(WithStore(st1))
	res1, err := r1.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	m1 := r1.Metrics()
	if m1.Simulated != uint64(len(specs)) || m1.DiskWrites != uint64(len(specs)) || m1.DiskHits != 0 {
		t.Fatalf("populate metrics = %+v", m1)
	}

	// A fresh Store handle + fresh Runner stands in for a new process.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(WithStore(st2), OnSimulate(func(s RunSpec) {
		t.Errorf("warm store re-simulated %s", s.Label())
	}))
	res2, err := r2.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	m2 := r2.Metrics()
	if m2.Simulated != 0 || m2.DiskHits != uint64(len(specs)) {
		t.Fatalf("warm metrics = %+v", m2)
	}
	// Disk-served runs must still appear in the per-run records (the -json
	// artifact of a fully warm pass), marked Cached.
	recorded := r2.Results()
	if len(recorded) != len(specs) {
		t.Errorf("warm Results() holds %d records, want %d", len(recorded), len(specs))
	}
	for i, res := range recorded {
		if !res.Cached {
			t.Errorf("warm Results()[%d] not marked Cached", i)
		}
	}
	for i := range specs {
		if !res2[i].Cached {
			t.Errorf("run %d not marked cached", i)
		}
		if resultBytes(t, res2[i]) != resultBytes(t, res1[i]) {
			t.Errorf("run %d drifted through the store:\n got %s\nwant %s",
				i, resultBytes(t, res2[i]), resultBytes(t, res1[i]))
		}
		// A disk hit serves the stored record itself, so even the recorded
		// wall time of the original simulation round-trips exactly.
		if res2[i].Elapsed != res1[i].Elapsed {
			t.Errorf("run %d Elapsed = %v through the store, want the original %v",
				i, res2[i].Elapsed, res1[i].Elapsed)
		}
	}

	// Truncate one entry: the next Runner re-simulates only that spec —
	// no error — and the write-behind heals the entry.
	victim := specs[1].Key()
	data, err := os.ReadFile(st2.path(victim))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st2.path(victim), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sims atomic.Uint64
	r3 := NewRunner(WithStore(st3), OnSimulate(func(RunSpec) { sims.Add(1) }))
	res3, err := r3.RunAll(specs)
	if err != nil {
		t.Fatalf("corrupted entry was fatal: %v", err)
	}
	if got := sims.Load(); got != 1 {
		t.Errorf("simulated %d specs after corrupting one entry, want 1", got)
	}
	if resultBytes(t, res3[1]) != resultBytes(t, res1[1]) {
		t.Error("re-simulated result differs from the original (determinism violation)")
	}
	if m3 := r3.Metrics(); m3.DiskHits != uint64(len(specs))-1 || m3.DiskWrites != 1 {
		t.Errorf("heal metrics = %+v", m3)
	}
	if healed, ok := st3.Get(victim); !ok {
		t.Error("corrupted entry was not rewritten")
	} else if resultBytes(t, healed) != resultBytes(t, res1[1]) {
		t.Error("healed entry differs from the original")
	}
}

// NoMemo means "always really simulate": it must bypass the persistent tier
// in both directions, or raw-speed benchmarks would measure disk reads.
func TestNoMemoBypassesStore(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := storeSpecs()[0]
	var sims atomic.Uint64
	r := NewRunner(NoMemo(), WithStore(st), OnSimulate(func(RunSpec) { sims.Add(1) }))
	for i := 0; i < 2; i++ {
		if _, err := r.Run(spec); err != nil {
			t.Fatal(err)
		}
	}
	if got := sims.Load(); got != 2 {
		t.Errorf("simulated %d times, want 2", got)
	}
	if keys, _ := st.Keys(); len(keys) != 0 {
		t.Errorf("NoMemo runner wrote %d entries to the store", len(keys))
	}
}

// TestStoreSweepsStaleTempFiles plants orphaned atomic-write temp files of
// both ages: OpenStore must remove the stale one (a writer killed between
// CreateTemp and Rename an hour ago) and leave the fresh one (a concurrent
// writer mid-Put) untouched.
func TestStoreSweepsStaleTempFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fakeResult(strings.Repeat("ab", 16))); err != nil {
		t.Fatal(err)
	}
	entryDir := filepath.Join(dir, "objects", "ab")
	stale := filepath.Join(entryDir, ".tmp-stale")
	fresh := filepath.Join(entryDir, ".tmp-fresh")
	staleBlob := filepath.Join(dir, "checkpoints", "cd", ".tmp-blob")
	if err := os.MkdirAll(filepath.Dir(staleBlob), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{stale, fresh, staleBlob} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * storeTempMaxAge)
	for _, p := range []string{stale, staleBlob} {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{stale, staleBlob} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stale temp file %s survived the sweep (err=%v)", p, err)
		}
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file was swept: %v", err)
	}
	// The real entry is untouched.
	if _, ok := s.Get(strings.Repeat("ab", 16)); !ok {
		t.Error("sweep damaged a live entry")
	}
}

// TestStoreWalkServesMisplacedEntries files a valid entry under the wrong
// fan-out directory — what a hand-merged shard directory can produce — and
// checks Walk/List still yield it, while Get (which derives the path from
// the key) correctly misses.
func TestStoreWalkServesMisplacedEntries(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("cd", 16)
	res := fakeResult(key)
	data, err := json.Marshal(storeEntry{Version: storeVersion, Key: key, Result: res})
	if err != nil {
		t.Fatal(err)
	}
	// File it under objects/ff/ instead of objects/cd/.
	wrong := filepath.Join(dir, "objects", "ff")
	if err := os.MkdirAll(wrong, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(wrong, key+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var seen []string
	if err := s.Walk(func(r *Result) error {
		seen = append(seen, r.Key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != key {
		t.Errorf("walk yielded %v, want the misplaced entry %s", seen, key)
	}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Key != key {
		t.Errorf("list yielded %d entries, want the misplaced one", len(list))
	}
	if _, ok := s.Get(key); ok {
		t.Error("Get found an entry that is not at its keyed path")
	}
}

// TestStoreBlobRoundTrip covers the checkpoint blob tier: miss, write, hit,
// and rejection of degenerate kinds/keys.
func TestStoreBlobRoundTrip(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ef", 16)
	if _, ok := s.GetBlob("checkpoints", key); ok {
		t.Fatal("empty store served a blob")
	}
	want := []byte{0x44, 0x4b, 0x43, 0x50, 1, 2, 3}
	if err := s.PutBlob("checkpoints", key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetBlob("checkpoints", key)
	if !ok || string(got) != string(want) {
		t.Fatalf("blob round trip: got %v ok=%v", got, ok)
	}
	if err := s.PutBlob("", key, want); err == nil {
		t.Error("PutBlob accepted an empty kind")
	}
	if err := s.PutBlob("checkpoints", "x", want); err == nil {
		t.Error("PutBlob accepted a degenerate key")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoints != 1 {
		t.Errorf("Stats.Checkpoints = %d, want 1", st.Checkpoints)
	}
}

// TestStoreWalkBlobs covers the enumeration the membership registry is
// built on: every blob of a kind is visited exactly once, other kinds are
// invisible, and a kind that was never written walks zero entries.
func TestStoreWalkBlobs(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		strings.Repeat("aa", 8): "lease-a",
		strings.Repeat("bb", 8): "lease-b",
		strings.Repeat("cc", 8): "lease-c",
	}
	for k, v := range want {
		if err := s.PutBlob("members", k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutBlob("checkpoints", strings.Repeat("dd", 8), []byte("ckpt")); err != nil {
		t.Fatal(err)
	}

	got := map[string]string{}
	err = s.WalkBlobs("members", func(key string, data []byte) error {
		if _, dup := got[key]; dup {
			t.Errorf("key %s visited twice", key)
		}
		got[key] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("walked %d blobs, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("blob %s = %q, want %q", k, got[k], v)
		}
	}

	visits := 0
	if err := s.WalkBlobs("never-written", func(string, []byte) error { visits++; return nil }); err != nil {
		t.Fatalf("walking an absent kind: %v", err)
	}
	if visits != 0 {
		t.Errorf("absent kind visited %d blobs", visits)
	}
}

// TestStoreDeleteBlob: deletion removes the blob, is idempotent, and leaves
// siblings alone — the lease-withdrawal and tombstone-GC primitive.
func TestStoreDeleteBlob(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := strings.Repeat("aa", 8), strings.Repeat("bb", 8)
	for _, k := range []string{ka, kb} {
		if err := s.PutBlob("members", k, []byte("lease")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DeleteBlob("members", ka); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetBlob("members", ka); ok {
		t.Fatal("deleted blob still served")
	}
	if _, ok := s.GetBlob("members", kb); !ok {
		t.Fatal("sibling blob vanished with the deletion")
	}
	if err := s.DeleteBlob("members", ka); err != nil {
		t.Fatalf("second delete of the same blob: %v", err)
	}
	if err := s.DeleteBlob("members", "zz"); err != nil {
		t.Fatalf("deleting a never-written blob: %v", err)
	}
}

// TestStoreHas: presence checks without decoding, the primitive the
// /v1/progress endpoint polls with.
func TestStoreHas(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 16)
	if s.Has(key) {
		t.Fatal("empty store reports a key present")
	}
	if err := s.Put(fakeResult(key)); err != nil {
		t.Fatal(err)
	}
	if !s.Has(key) {
		t.Fatal("stored key reported absent")
	}
	if s.Has("x") || s.Has("") {
		t.Fatal("degenerate key reported present")
	}
}
