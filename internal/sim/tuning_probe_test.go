package sim

import (
	"fmt"
	"math"
	"os"
	"testing"

	"dkip/internal/core"
	"dkip/internal/kilo"
	"dkip/internal/ooo"
	"dkip/internal/sample"
)

// TestSamplePlanProbe is a manual tuning harness, not a regression test: run
// with DKIP_SAMPLE_PROBE=1 to scan candidate plans against the worst-case
// grid points and print their error profiles.
func TestSamplePlanProbe(t *testing.T) {
	if os.Getenv("DKIP_SAMPLE_PROBE") == "" {
		t.Skip("set DKIP_SAMPLE_PROBE=1 to run the tuning probe")
	}
	warmup, _ := parseU(os.Getenv("PROBE_W"), 10_000)
	measure, _ := parseU(os.Getenv("PROBE_M"), 390_000)
	configs := []RunSpec{
		OOOSpec("", ooo.R10K64(), warmup, measure),
		OOOSpec("", ooo.R10K768(), warmup, measure),
		OOOSpec("", kilo.Config1024(), warmup, measure),
		DKIPSpec("", core.Config{}, warmup, measure),
	}
	benches := []string{"mcf", "vpr", "ammp", "galgel", "swim", "art"}
	plans := []sample.Plan{
		{Intervals: 4, Interval: uint64(measure / 80), Warmup: uint64(measure / 160)},
		{Intervals: 8, Interval: uint64(measure / 160), Warmup: uint64(measure / 320)},
		{Intervals: 8, Interval: uint64(measure / 120), Warmup: uint64(measure / 600)},
		{Intervals: 4, Interval: uint64(measure / 60), Warmup: uint64(measure / 240)},
		{Intervals: 2, Interval: uint64(measure / 40), Warmup: uint64(measure / 80)},
	}
	full := map[string]float64{}
	r := NewRunner()
	for _, cfg := range configs {
		for _, bench := range benches {
			spec := cfg
			spec.Bench = bench
			res, err := r.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			full[spec.Label()] = float64(res.Stats.Cycles) / float64(res.Stats.Committed)
		}
	}
	for _, plan := range plans {
		var mae, worst float64
		var n int
		var worstLabel string
		for _, cfg := range configs {
			for _, bench := range benches {
				spec := cfg
				spec.Bench = bench
				spec.Sample = plan
				st, sum, _, err := SimulateSampled(spec, nil)
				if err != nil {
					t.Fatal(err)
				}
				cpi := float64(st.Cycles) / float64(st.Committed)
				e := math.Abs(cpi-full[spec.Label()]) / full[spec.Label()]
				mae += e
				if e > worst {
					worst, worstLabel = e, spec.Label()
				}
				n++
				if os.Getenv("PROBE_VERBOSE") != "" {
					t.Logf("  %-20s %s full=%.3f samp=%.3f err=%.2f%% red=%.1fx",
						spec.Label(), plan, full[spec.Label()], cpi, 100*e, sum.Reduction())
				}
			}
		}
		norm := plan.Complete(warmup, measure, 0)
		red := float64(warmup+measure) / float64(uint64(norm.Intervals)*(norm.Warmup+norm.Interval))
		t.Logf("plan %-16s MAE=%.2f%% worst=%.2f%% (%s) reduction=%.1fx over %d pts",
			plan, 100*mae/float64(n), 100*worst, worstLabel, red, n)
	}
}

func parseU(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	var v uint64
	_, err := fmt.Sscanf(s, "%d", &v)
	if err != nil {
		return def, err
	}
	return v, nil
}
