package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dkip/internal/isa"
)

// Binary trace format: the simulators are trace-driven, and capturing a
// generator's output lets a run be reproduced bit-exactly elsewhere (or a
// real trace be injected in place of the synthetic workloads). The format is
// a fixed 24-byte header followed by fixed 21-byte little-endian records:
//
//	header: magic "DKTR" | version u32 | count u64 | name length u32 + name bytes
//	record: PC u64 | Addr u64 | Op u8 | Dest u8 | Src1 u8 | Src2 u8 | flags u8
//
// flags bit 0 = branch taken, bit 1 = chain load.
const (
	traceMagic   = "DKTR"
	traceVersion = 1
	recordBytes  = 21

	// maxTraceName bounds the embedded generator name; maxTraceInstrs the
	// instruction count (256M records ≈ 5.4GB decoded). Write enforces both
	// so that every trace it emits is one Read accepts — the limits are
	// format constants, not reader paranoia.
	maxTraceName   = 4096
	maxTraceInstrs = 1 << 28
)

// Write serializes n instructions from g to w. It refuses parameters the
// format cannot round-trip: a zero or implausibly large count, or a
// generator name longer than the header field allows.
func Write(w io.Writer, g Generator, n uint64) error {
	name := g.Name()
	if n == 0 || n > maxTraceInstrs {
		return fmt.Errorf("trace: instruction count %d outside the format's 1..%d", n, uint64(maxTraceInstrs))
	}
	if len(name) > maxTraceName {
		return fmt.Errorf("trace: generator name %d bytes exceeds the format's %d", len(name), maxTraceName)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return fmt.Errorf("trace: writing magic: %w", err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceVersion)
	binary.LittleEndian.PutUint64(hdr[4:], n)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	if _, err := bw.WriteString(name); err != nil {
		return fmt.Errorf("trace: writing name: %w", err)
	}
	var rec [recordBytes]byte
	for i := uint64(0); i < n; i++ {
		in := g.Next()
		binary.LittleEndian.PutUint64(rec[0:], in.PC)
		binary.LittleEndian.PutUint64(rec[8:], in.Addr)
		rec[16] = byte(in.Op)
		rec[17] = byte(in.Dest)
		rec[18] = byte(in.Src1)
		rec[19] = byte(in.Src2)
		var flags byte
		if in.Taken {
			flags |= 1
		}
		if in.ChainLoad {
			flags |= 2
		}
		rec[20] = flags
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write into a looping Replay
// generator.
func Read(r io.Reader) (*Replay, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[4:])
	nameLen := binary.LittleEndian.Uint32(hdr[12:])
	if nameLen > maxTraceName {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if count == 0 || count > maxTraceInstrs {
		return nil, fmt.Errorf("trace: implausible instruction count %d", count)
	}
	// The count came off the wire: grow the slice as records actually
	// arrive, so a 24-byte header claiming 256M instructions costs a read
	// error, not a multi-gigabyte allocation.
	instrs := make([]isa.Instr, 0, min(count, 1<<16))
	var rec [recordBytes]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		in := isa.Instr{
			PC:   binary.LittleEndian.Uint64(rec[0:]),
			Addr: binary.LittleEndian.Uint64(rec[8:]),
			Op:   isa.Op(rec[16]),
			Dest: isa.Reg(rec[17]),
			Src1: isa.Reg(rec[18]),
			Src2: isa.Reg(rec[19]),
		}
		if !in.Op.Valid() {
			return nil, fmt.Errorf("trace: record %d has invalid opcode %d", i, rec[16])
		}
		in.Taken = rec[20]&1 != 0
		in.ChainLoad = rec[20]&2 != 0
		instrs = append(instrs, in)
	}
	return NewReplay(string(name), instrs), nil
}

// Tee wraps a generator, recording every instruction it produces. Use
// Recorded to retrieve the captured stream (e.g. to Write it to a file).
type Tee struct {
	G        Generator
	recorded []isa.Instr
}

// NewTee wraps g.
func NewTee(g Generator) *Tee { return &Tee{G: g} }

// Next produces and records the next instruction.
func (t *Tee) Next() isa.Instr {
	in := t.G.Next()
	t.recorded = append(t.recorded, in)
	return in
}

// Name returns the wrapped generator's name.
func (t *Tee) Name() string { return t.G.Name() }

// Reset resets the wrapped generator and discards the recording.
func (t *Tee) Reset() {
	t.G.Reset()
	t.recorded = t.recorded[:0]
}

// Recorded returns the instructions produced since the last Reset.
func (t *Tee) Recorded() []isa.Instr { return t.recorded }
