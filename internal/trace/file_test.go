package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"dkip/internal/isa"
)

func TestWriteReadRoundTrip(t *testing.T) {
	src := NewReplay("prog", prog())
	var buf bytes.Buffer
	if err := Write(&buf, src, 100); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "prog" {
		t.Errorf("name %q", got.Name())
	}
	src.Reset()
	for i := 0; i < 100; i++ {
		a, b := src.Next(), got.Next()
		if a != b {
			t.Fatalf("instruction %d differs: %v vs %v", i, &a, &b)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("DKTRxxxxxxxxxxxxxxxxxxx"),
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, NewReplay("p", prog()), 3); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // corrupt version
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, NewReplay("p", prog()), 10); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestReadRejectsInvalidOpcode(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, NewReplay("p", prog()), 1); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-5] = 200 // opcode byte of the only record
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestFlagsRoundTrip(t *testing.T) {
	instrs := []isa.Instr{
		{PC: 4, Op: isa.Branch, Dest: isa.RegNone, Src1: isa.IntReg(1), Src2: isa.RegNone, Taken: true},
		{PC: 8, Op: isa.Load, Dest: isa.IntReg(2), Src1: isa.IntReg(2), Src2: isa.RegNone, Addr: 64, ChainLoad: true},
	}
	var buf bytes.Buffer
	if err := Write(&buf, NewReplay("f", instrs), 2); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b := got.Next(); !b.Taken {
		t.Error("taken flag lost")
	}
	if l := got.Next(); !l.ChainLoad {
		t.Error("chain flag lost")
	}
}

func TestTee(t *testing.T) {
	tee := NewTee(NewReplay("p", prog()))
	for i := 0; i < 7; i++ {
		tee.Next()
	}
	if len(tee.Recorded()) != 7 {
		t.Errorf("recorded %d", len(tee.Recorded()))
	}
	if tee.Name() != "p" {
		t.Errorf("name %q", tee.Name())
	}
	tee.Reset()
	if len(tee.Recorded()) != 0 {
		t.Error("reset did not clear recording")
	}
}

// TestWriteRejectsUnreadable pins the write/read symmetry: every parameter
// combination Write accepts must produce a trace Read accepts, so the
// format limits are enforced on both sides.
func TestWriteRejectsUnreadable(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, NewReplay("p", prog()), 0); err == nil {
		t.Error("zero-instruction trace written (Read refuses count 0)")
	}
	if err := Write(&buf, NewReplay("p", prog()), maxTraceInstrs+1); err == nil {
		t.Error("oversized trace accepted (Read refuses it)")
	}
	long := strings.Repeat("n", maxTraceName+1)
	if err := Write(&buf, NewReplay(long, prog()), 1); err == nil {
		t.Error("overlong name written (Read refuses it)")
	}
}

// TestWriteReadBoundaries round-trips the exact format limits: one
// instruction, and a name of exactly maxTraceName bytes.
func TestWriteReadBoundaries(t *testing.T) {
	name := strings.Repeat("n", maxTraceName)
	var buf bytes.Buffer
	if err := Write(&buf, NewReplay(name, prog()), 1); err != nil {
		t.Fatalf("boundary write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("boundary read: %v", err)
	}
	if got.Name() != name {
		t.Errorf("name length %d survived as %d", maxTraceName, len(got.Name()))
	}
	if len(got.Instrs) != 1 {
		t.Errorf("restored %d instructions, want 1", len(got.Instrs))
	}
}

// TestReadHostileCount hands Read a well-formed header whose count claims
// the format maximum with no records behind it: it must fail on the missing
// record, not allocate gigabytes up front.
func TestReadHostileCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(traceMagic)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceVersion)
	binary.LittleEndian.PutUint64(hdr[4:], maxTraceInstrs)
	binary.LittleEndian.PutUint32(hdr[12:], 1)
	buf.Write(hdr[:])
	buf.WriteByte('p')
	if _, err := Read(&buf); err == nil {
		t.Fatal("header-only trace claiming 256M records accepted")
	}
}
