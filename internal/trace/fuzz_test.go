package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceRead drives Read over arbitrary byte streams. Invariants:
// it never panics, never claims success on an empty program, and any trace
// it does accept round-trips bit-exactly through Write — the decoder and
// encoder agree on what the format means.
func FuzzTraceRead(f *testing.F) {
	// Seed with a small valid trace and targeted mutations of it: a
	// truncation inside the records, a corrupt version, and a count header
	// claiming records that are not there.
	var valid bytes.Buffer
	if err := Write(&valid, NewReplay("seed", prog()), 5); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-7])
	f.Add(valid.Bytes()[:25])
	hostile := append([]byte{}, valid.Bytes()...)
	hostile[8] = 0xff // count LSBs: claims ~4G records
	f.Add(hostile)
	f.Add([]byte("DKTR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(r.Instrs) == 0 {
			t.Fatal("Read accepted a trace with zero instructions")
		}
		var buf bytes.Buffer
		if err := Write(&buf, r, uint64(len(r.Instrs))); err != nil {
			t.Fatalf("accepted trace does not re-encode: %v", err)
		}
		r2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		if r2.Name() != r.Name() || len(r2.Instrs) != len(r.Instrs) {
			t.Fatalf("round trip changed identity: %q/%d -> %q/%d",
				r.Name(), len(r.Instrs), r2.Name(), len(r2.Instrs))
		}
		for i := range r.Instrs {
			if r.Instrs[i] != r2.Instrs[i] {
				t.Fatalf("round trip changed instruction %d: %v -> %v", i, r.Instrs[i], r2.Instrs[i])
			}
		}
	})
}
