// Package trace defines the instruction-stream interface between workload
// generators and processor models, plus helpers to record, replay, and
// summarize streams in tests and tools.
//
// The simulators in this repository are trace-driven: they consume a stream
// of correct-path instructions and model timing. A Generator produces such a
// stream deterministically.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"dkip/internal/isa"
)

// Generator produces an unbounded, deterministic instruction stream.
// Implementations are not safe for concurrent use.
type Generator interface {
	// Next returns the next correct-path instruction.
	Next() isa.Instr
	// Name identifies the workload (e.g. "mcf").
	Name() string
	// Reset restarts the stream from the beginning.
	Reset()
}

// Take materializes the next n instructions from g.
func Take(g Generator, n int) []isa.Instr {
	out := make([]isa.Instr, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Replay is a Generator that loops over a fixed instruction slice. It is
// used by unit tests to drive processors with hand-built programs.
type Replay struct {
	// Instrs is the program to replay; Next loops over it forever.
	Instrs []isa.Instr
	// Label is returned by Name.
	Label string

	pos int
}

// NewReplay builds a looping generator over the given program.
func NewReplay(label string, instrs []isa.Instr) *Replay {
	if len(instrs) == 0 {
		panic("trace: NewReplay with empty program")
	}
	return &Replay{Instrs: instrs, Label: label}
}

// Next returns the next instruction, wrapping at the end of the program.
func (r *Replay) Next() isa.Instr {
	in := r.Instrs[r.pos]
	r.pos++
	if r.pos == len(r.Instrs) {
		r.pos = 0
	}
	return in
}

// Name returns the replay label.
func (r *Replay) Name() string { return r.Label }

// Reset restarts from the first instruction.
func (r *Replay) Reset() { r.pos = 0 }

// Mix summarizes the operation-class composition of a stream.
type Mix struct {
	Count [isa.NumOps]uint64
	Total uint64
	// ChainLoads counts loads flagged as pointer-chasing.
	ChainLoads uint64
	// TakenBranches counts taken branches.
	TakenBranches uint64
}

// Observe adds one instruction to the mix.
func (m *Mix) Observe(in isa.Instr) {
	m.Count[in.Op]++
	m.Total++
	if in.Op == isa.Load && in.ChainLoad {
		m.ChainLoads++
	}
	if in.Op == isa.Branch && in.Taken {
		m.TakenBranches++
	}
}

// Frac returns the fraction of instructions with class op.
func (m *Mix) Frac(op isa.Op) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Count[op]) / float64(m.Total)
}

// MeasureMix consumes n instructions from g and summarizes them.
func MeasureMix(g Generator, n int) Mix {
	var m Mix
	for i := 0; i < n; i++ {
		m.Observe(g.Next())
	}
	return m
}

// String renders the mix sorted by descending frequency; ops with equal
// counts tie-break in op order, so the rendering is deterministic however
// the observations arrived.
func (m *Mix) String() string {
	type kv struct {
		op isa.Op
		n  uint64
	}
	var items []kv
	for op := 0; op < isa.NumOps; op++ {
		if m.Count[op] > 0 {
			items = append(items, kv{isa.Op(op), m.Count[op]})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].op < items[j].op
	})
	var b strings.Builder
	for i, it := range items {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.1f%%", it.op, 100*float64(it.n)/float64(m.Total))
	}
	return b.String()
}
