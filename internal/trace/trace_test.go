package trace

import (
	"testing"

	"dkip/internal/isa"
)

func prog() []isa.Instr {
	return []isa.Instr{
		{Op: isa.IntALU, Dest: isa.IntReg(1), Src1: isa.IntReg(2)},
		{Op: isa.Load, Dest: isa.IntReg(3), Src1: isa.IntReg(1), Addr: 0x100, ChainLoad: true},
		{Op: isa.Branch, Src1: isa.IntReg(3), Taken: true},
	}
}

func TestReplayLoops(t *testing.T) {
	r := NewReplay("p", prog())
	if r.Name() != "p" {
		t.Errorf("name %q", r.Name())
	}
	for round := 0; round < 3; round++ {
		for i, want := range prog() {
			got := r.Next()
			if got.Op != want.Op {
				t.Fatalf("round %d instr %d: op %v, want %v", round, i, got.Op, want.Op)
			}
		}
	}
}

func TestReplayReset(t *testing.T) {
	r := NewReplay("p", prog())
	r.Next()
	r.Reset()
	if got := r.Next(); got.Op != isa.IntALU {
		t.Errorf("after reset first op = %v", got.Op)
	}
}

func TestReplayEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty replay should panic")
		}
	}()
	NewReplay("e", nil)
}

func TestTake(t *testing.T) {
	r := NewReplay("p", prog())
	got := Take(r, 7)
	if len(got) != 7 {
		t.Fatalf("took %d", len(got))
	}
	if got[3].Op != prog()[0].Op {
		t.Error("wraparound wrong")
	}
}

func TestMix(t *testing.T) {
	var m Mix
	for _, in := range prog() {
		m.Observe(in)
	}
	if m.Total != 3 {
		t.Fatalf("total %d", m.Total)
	}
	if m.Frac(isa.Load) != 1.0/3 {
		t.Errorf("load frac %v", m.Frac(isa.Load))
	}
	if m.ChainLoads != 1 {
		t.Errorf("chain loads %d", m.ChainLoads)
	}
	if m.TakenBranches != 1 {
		t.Errorf("taken branches %d", m.TakenBranches)
	}
	if m.String() == "" {
		t.Error("empty mix string")
	}
}

func TestMeasureMix(t *testing.T) {
	m := MeasureMix(NewReplay("p", prog()), 300)
	if m.Total != 300 {
		t.Fatalf("total %d", m.Total)
	}
	if m.Count[isa.Load] != 100 {
		t.Errorf("load count %d, want 100", m.Count[isa.Load])
	}
}

func TestMixFracEmpty(t *testing.T) {
	var m Mix
	if m.Frac(isa.Load) != 0 {
		t.Error("empty mix frac should be 0")
	}
}

// Mix.String must render deterministically even when operation classes tie
// on count: equal-count ops sort by op order, and the order observations
// arrived in can never leak into the rendering. Regression test for the
// unstable descending-count-only sort that made cmd/workloads output flap.
func TestMixStringStableUnderTies(t *testing.T) {
	// Three ops with tied counts plus one dominant op.
	ops := []isa.Op{
		isa.Load, isa.Load, isa.Load,
		isa.Store, isa.Store,
		isa.Branch, isa.Branch,
		isa.IntALU, isa.IntALU,
	}
	observe := func(order []isa.Op) string {
		var m Mix
		for _, op := range order {
			m.Observe(isa.Instr{Op: op})
		}
		return m.String()
	}

	want := observe(ops)
	// Exercise several permutations, including full reversal.
	perms := [][]isa.Op{
		{isa.IntALU, isa.IntALU, isa.Branch, isa.Branch, isa.Store, isa.Store, isa.Load, isa.Load, isa.Load},
		{isa.Branch, isa.Store, isa.IntALU, isa.Load, isa.Branch, isa.Store, isa.IntALU, isa.Load, isa.Load},
		{isa.Store, isa.Branch, isa.Load, isa.IntALU, isa.Load, isa.Store, isa.Branch, isa.IntALU, isa.Load},
	}
	for i, p := range perms {
		if got := observe(p); got != want {
			t.Errorf("permutation %d renders %q, want %q", i, got, want)
		}
	}
	// The tied ops must appear in op order after the dominant one.
	wantOrder := "load=33.3% ialu=22.2% store=22.2% branch=22.2%"
	if want != wantOrder {
		t.Errorf("tied mix renders %q, want %q", want, wantOrder)
	}
}
