package workload

import (
	"fmt"

	"dkip/internal/isa"
	"dkip/internal/trace"
	"dkip/internal/xrand"
)

// branchKind is the static classification of a block-terminating branch.
type branchKind uint8

const (
	// brBiased branches go one way with probability Profile.BrBias.
	brBiased branchKind = iota
	// brLoop branches iterate a fixed trip count then fall through.
	brLoop
	// brDataDep branches test recently loaded data; a DataDepNoise
	// fraction of executions are unpredictable coin flips.
	brDataDep
)

// block is one static basic block of the synthetic program.
type block struct {
	pc       uint64 // address of the first instruction
	n        int    // instructions including the terminating branch
	kind     branchKind
	takenTo  int  // block index of the taken target
	majority bool // majority direction of biased branches
	period   int  // trip count for loop branches
}

const (
	blockSpacing = 256 // bytes of address space reserved per block
	regRing      = 24  // recent register writers tracked per class
	codeBase     = 0x0040_0000
	dataBase     = 0x1000_0000
	hotBase      = 0x7000_0000
)

// baseReg is the address-base register of regular (stream/stride/hot)
// accesses. No instruction ever defines it, so it is always ready — modeling
// the reality that array bases and induction variables are cheap, predictable
// integer values that do not depend on loaded data. Pointer-chasing loads are
// the deliberate exception: their base is the previous load's destination.
const baseReg = isa.Reg(0)

// Benchmark is a deterministic synthetic instruction stream for one profile.
// It implements trace.Generator. Not safe for concurrent use.
type Benchmark struct {
	prof   Profile
	blocks []block
	rng    *xrand.Rand

	cur, pos int
	iterLeft []int // per-block remaining loop iterations

	// Recent register writers per class, newest first.
	recentInt, recentFP []isa.Reg
	nextInt, nextFP     int // round-robin destination allocators

	// Address-stream state.
	seqAddr, strideAddr uint64
	chaseReg            isa.Reg // destination of the previous chase load
	chaseLeft           int     // chase loads remaining in the current chain
	lastLoadDest        isa.Reg

	emitted uint64
}

var _ trace.Generator = (*Benchmark)(nil)

// New builds the generator for a named SPEC2000 benchmark.
func New(name string) (*Benchmark, error) {
	p, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return NewFromProfile(p)
}

// MustNew is New for tests and experiment definitions; it panics on error.
func MustNew(name string) *Benchmark {
	b, err := New(name)
	if err != nil {
		panic(err)
	}
	return b
}

// NewFromProfile builds a generator from an explicit profile, allowing tests
// and ablations to craft workloads.
func NewFromProfile(p Profile) (*Benchmark, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := &Benchmark{prof: p}
	b.buildStatic()
	b.Reset()
	return b, nil
}

// Profile returns the profile the generator was built from.
func (b *Benchmark) Profile() Profile { return b.prof }

// WarmRanges returns the [base, size] address ranges a processor should walk
// through its caches before measuring, establishing the steady-state
// residency a long-running program would have: the data footprint first,
// then the hot region (which therefore wins cache capacity).
func (b *Benchmark) WarmRanges() [][2]uint64 {
	return [][2]uint64{
		{dataBase, b.prof.FootprintBytes},
		{hotBase, b.prof.HotBytes},
	}
}

// Name returns the benchmark name.
func (b *Benchmark) Name() string { return b.prof.Name }

// buildStatic lays out the basic blocks, branch kinds, loop periods, and the
// control-flow graph. It is deterministic in the profile seed.
func (b *Benchmark) buildStatic() {
	rng := xrand.New(b.prof.Seed)
	n := b.prof.NumBlocks
	b.blocks = make([]block, n)
	kindW := []float64{b.prof.BrBiased, b.prof.BrLoop, b.prof.BrDataDep}
	meanLen := 1 / b.prof.BranchFrac
	for i := range b.blocks {
		length := rng.Geometric(1 / meanLen)
		if length < 3 {
			length = 3
		}
		if max := blockSpacing / 4; length > max {
			length = max
		}
		blk := block{
			pc:       codeBase + uint64(i)*blockSpacing,
			n:        length,
			kind:     branchKind(rng.Pick(kindW)),
			majority: rng.Bool(0.7), // most biased branches are taken-biased
		}
		switch blk.kind {
		case brLoop:
			blk.period = rng.Geometric(1 / float64(b.prof.LoopPeriodMean))
			if blk.period < 2 {
				blk.period = 2
			}
			blk.takenTo = i // loop branches re-execute their own block
		default:
			// Taken targets are short forward jumps (if/else shape),
			// so control flow keeps progressing through the whole
			// code footprint instead of collapsing into a trap cycle.
			blk.takenTo = (i + 1 + rng.Intn(6)) % n
		}
		b.blocks[i] = blk
	}
}

// Reset restarts the dynamic instruction stream; static code layout is
// unchanged (it depends only on the profile seed).
func (b *Benchmark) Reset() {
	b.rng = xrand.New(b.prof.Seed ^ 0xd1fa_c0de_d1fa_c0de)
	b.cur, b.pos = 0, 0
	b.iterLeft = make([]int, len(b.blocks))
	for i, blk := range b.blocks {
		b.iterLeft[i] = blk.period
	}
	b.recentInt = b.recentInt[:0]
	b.recentFP = b.recentFP[:0]
	// Seed the rings so early instructions have producers to consume.
	for i := 0; i < 8; i++ {
		b.recentInt = append(b.recentInt, isa.IntReg(i+1))
		b.recentFP = append(b.recentFP, isa.FPReg(i+1))
	}
	b.nextInt, b.nextFP = 9, 9
	b.seqAddr = dataBase
	b.strideAddr = dataBase + b.prof.FootprintBytes/2
	b.chaseReg = isa.IntReg(1)
	b.chaseLeft = 0
	b.lastLoadDest = isa.IntReg(1)
	b.emitted = 0
}

// Emitted returns the number of instructions produced since the last Reset.
func (b *Benchmark) Emitted() uint64 { return b.emitted }

// noteWriter records a new register writer, newest first.
func (b *Benchmark) noteWriter(r isa.Reg) {
	if r.IsFP() {
		b.recentFP = pushRecent(b.recentFP, r)
	} else {
		b.recentInt = pushRecent(b.recentInt, r)
	}
}

func pushRecent(ring []isa.Reg, r isa.Reg) []isa.Reg {
	if len(ring) < regRing {
		ring = append(ring, 0)
	}
	copy(ring[1:], ring)
	ring[0] = r
	return ring
}

// pickSrc selects a source register at a geometric dependence distance from
// the most recent writers of the class.
func (b *Benchmark) pickSrc(fp bool) isa.Reg {
	ring := b.recentInt
	if fp {
		ring = b.recentFP
	}
	d := b.rng.Geometric(1 / b.prof.MeanDepDist)
	if d > len(ring) {
		d = len(ring)
	}
	return ring[d-1]
}

// allocDest returns a fresh destination register for the class, rotating
// through the upper register space so names are regularly redefined.
func (b *Benchmark) allocDest(fp bool) isa.Reg {
	if fp {
		r := isa.FPReg(b.nextFP)
		b.nextFP++
		if b.nextFP >= isa.NumFPRegs {
			b.nextFP = 2
		}
		return r
	}
	r := isa.IntReg(b.nextInt)
	b.nextInt++
	if b.nextInt >= isa.NumIntRegs {
		b.nextInt = 2
	}
	return r
}

// loadAddr picks the next load address and the address-base register
// according to the profile's pattern mixture.
func (b *Benchmark) loadAddr() (addr uint64, base isa.Reg, chase bool) {
	pat := b.rng.Pick([]float64{b.prof.PatStream, b.prof.PatStride, b.prof.PatHot, b.prof.PatChase})
	switch pat {
	case 0: // streaming
		b.seqAddr += 8
		if b.seqAddr >= dataBase+b.prof.FootprintBytes {
			b.seqAddr = dataBase
		}
		return b.seqAddr, baseReg, false
	case 1: // strided
		b.strideAddr += b.prof.StrideBytes
		if b.strideAddr >= dataBase+b.prof.FootprintBytes {
			b.strideAddr = dataBase + b.rng.Uint64n(b.prof.StrideBytes)
		}
		return b.strideAddr, baseReg, false
	case 2: // hot, cache-resident region with Zipf-skewed reuse
		off := uint64(b.rng.Zipf(int(b.prof.HotBytes/8), 0.9)) * 8
		return hotBase + off, baseReg, false
	default:
		// Pointer chase: within a chain the address register is the
		// previous chase load's destination, serializing the loads.
		// Chains end after a geometric number of hops; the next chain
		// starts from a fresh head pointer that is ready early, so
		// separate traversals overlap in a large window (this is the
		// memory-level parallelism KILO-class designs harvest).
		addr = dataBase + (b.rng.Uint64n(b.prof.FootprintBytes) &^ 7)
		if b.chaseLeft <= 0 {
			// New traversal: the head pointer (a global, an array
			// slot indexed by an induction variable) is ready early,
			// so separate chains can overlap.
			b.chaseLeft = b.rng.Geometric(1 / float64(b.prof.ChaseChainLen))
			return addr, baseReg, true
		}
		b.chaseLeft--
		return addr, b.chaseReg, true
	}
}

// pickFarIntSrc returns an old integer writer: address bases (array base
// pointers, loop induction variables) are typically long-ready values.
func (b *Benchmark) pickFarIntSrc() isa.Reg {
	d := len(b.recentInt)/2 + b.rng.Intn(len(b.recentInt)/2+1)
	if d >= len(b.recentInt) {
		d = len(b.recentInt) - 1
	}
	return b.recentInt[d]
}

// Next produces the next correct-path instruction.
func (b *Benchmark) Next() isa.Instr {
	blk := &b.blocks[b.cur]
	pc := blk.pc + uint64(b.pos)*4
	var in isa.Instr
	if b.pos == blk.n-1 {
		in = b.branch(blk, pc)
		b.advance(blk, in.Taken)
	} else {
		in = b.body(pc)
		b.pos++
	}
	b.emitted++
	return in
}

// body generates one non-branch instruction at the given PC.
func (b *Benchmark) body(pc uint64) isa.Instr {
	p := &b.prof
	// Profile fractions are of all instructions; body slots exclude the
	// one branch per block, so rescale loads and stores accordingly.
	bodyLoad := p.LoadFrac / (1 - p.BranchFrac)
	bodyStore := p.StoreFrac / (1 - p.BranchFrac)
	cs := computeScale(p)
	kind := b.rng.Pick([]float64{bodyLoad, bodyStore,
		p.IntALUW * cs, p.IntMulW * cs,
		p.FPAddW * cs, p.FPMulW * cs, p.FPDivW * cs})
	switch kind {
	case 0: // load
		addr, base, chase := b.loadAddr()
		fp := !chase && b.rng.Bool(p.LoadFPFrac)
		dest := b.allocDest(fp)
		in := isa.Instr{PC: pc, Op: isa.Load, Dest: dest, Src1: base, Src2: isa.RegNone, Addr: addr, ChainLoad: chase}
		if chase {
			b.chaseReg = dest
		}
		b.lastLoadDest = dest
		b.noteWriter(dest)
		return in
	case 1: // store
		addr, base, _ := b.storeAddr()
		dataFP := b.rng.Bool(p.LoadFPFrac)
		data := b.pickSrc(dataFP)
		return isa.Instr{PC: pc, Op: isa.Store, Dest: isa.RegNone, Src1: data, Src2: base, Addr: addr}
	case 2, 3: // integer compute
		op := isa.IntALU
		if kind == 3 {
			op = isa.IntMul
		}
		dest := b.allocDest(false)
		in := isa.Instr{PC: pc, Op: op, Dest: dest, Src1: b.pickSrc(false), Src2: b.maybeSecondSrc(false)}
		b.noteWriter(dest)
		return in
	default: // FP compute
		op := isa.FPAdd
		if kind == 5 {
			op = isa.FPMul
		} else if kind == 6 {
			op = isa.FPDiv
		}
		dest := b.allocDest(true)
		in := isa.Instr{PC: pc, Op: op, Dest: dest, Src1: b.pickSrc(true), Src2: b.maybeSecondSrc(true)}
		b.noteWriter(dest)
		return in
	}
}

// computeScale rescales compute-class weights so, within body slots, compute
// takes the weight left over after (rescaled) loads and stores.
func computeScale(p *Profile) float64 {
	total := p.IntALUW + p.IntMulW + p.FPAddW + p.FPMulW + p.FPDivW
	if total == 0 {
		return 0
	}
	return (1 - (p.LoadFrac+p.StoreFrac)/(1-p.BranchFrac)) / total
}

// maybeSecondSrc returns a second source operand about 60% of the time,
// matching the one- and two-operand mix of real code (this matters for LLRF
// sizing: single-source instructions never allocate an LLRF register).
func (b *Benchmark) maybeSecondSrc(fp bool) isa.Reg {
	if b.rng.Bool(0.6) {
		return b.pickSrc(fp)
	}
	return isa.RegNone
}

// storeAddr picks a store address; stores reuse the stream and hot patterns.
func (b *Benchmark) storeAddr() (addr uint64, base isa.Reg, chase bool) {
	if b.rng.Bool(0.5) {
		b.seqAddr += 8
		if b.seqAddr >= dataBase+b.prof.FootprintBytes {
			b.seqAddr = dataBase
		}
		return b.seqAddr, baseReg, false
	}
	off := uint64(b.rng.Zipf(int(b.prof.HotBytes/8), 0.9)) * 8
	return hotBase + off, baseReg, false
}

// branch generates the block-terminating branch and decides its outcome.
func (b *Benchmark) branch(blk *block, pc uint64) isa.Instr {
	var taken bool
	src := b.pickSrc(false)
	switch blk.kind {
	case brBiased:
		taken = blk.majority
		if !b.rng.Bool(b.prof.BrBias) {
			taken = !taken
		}
	case brLoop:
		// Loop branches test an induction variable, which is always
		// ready: a mispredicted loop exit resolves quickly and costs
		// only the pipeline refill.
		src = baseReg
		b.iterLeft[b.cur]--
		taken = b.iterLeft[b.cur] > 0
		if !taken {
			b.iterLeft[b.cur] = blk.period
		}
	case brDataDep:
		// The branch tests loaded data: its source register is the
		// most recent load destination, so when that load missed to
		// memory the branch resolves only after the miss returns.
		src = b.lastLoadDest
		if b.rng.Bool(b.prof.DataDepNoise) {
			taken = b.rng.Bool(0.5)
		} else {
			taken = blk.majority
		}
	}
	return isa.Instr{PC: pc, Op: isa.Branch, Dest: isa.RegNone, Src1: src, Src2: isa.RegNone, Taken: taken}
}

// advance moves control flow to the next block.
func (b *Benchmark) advance(blk *block, taken bool) {
	if taken {
		b.cur = blk.takenTo
	} else {
		b.cur++
		if b.cur >= len(b.blocks) {
			b.cur = 0
		}
	}
	b.pos = 0
}
