// Package workload provides deterministic synthetic instruction-stream
// generators standing in for the SPEC2000 benchmarks the paper simulates.
//
// Each of the 26 SPEC2000 programs is described by a Profile: instruction
// mix, memory footprint and access-pattern mixture (streaming, strided,
// cache-resident hot region, pointer chasing), dependence-distance
// distribution (instruction-level parallelism), and static branch population
// (biased, loop, and load-dependent branches). The profiles are tuned so the
// aggregate behaviour of the two suites matches the published character of
// SPEC2000: floating-point codes have predictable branches, large streaming
// footprints and high ILP; integer codes have branchy control flow, pointer
// chasing, and branches whose outcome depends on recently loaded data.
//
// Absolute IPC is not expected to match the paper (different binaries,
// different compiler); the suite-level *shapes* of every figure are.
package workload

import (
	"fmt"
	"sort"
)

// Suite labels the benchmark suite a profile belongs to.
type Suite uint8

// Benchmark suites.
const (
	// SpecINT is the integer suite (12 programs).
	SpecINT Suite = iota
	// SpecFP is the floating-point suite (14 programs).
	SpecFP
)

// String names the suite as in the paper's figures.
func (s Suite) String() string {
	if s == SpecINT {
		return "SpecINT"
	}
	return "SpecFP"
}

// Profile is the statistical description of one benchmark.
type Profile struct {
	// Name is the SPEC2000 program name (e.g. "mcf").
	Name string
	// Suite is SpecINT or SpecFP.
	Suite Suite

	// Instruction mix weights; they need not sum to 1, Pick normalizes.
	// The remaining weight after Load/Store/Branch is compute, split
	// among the compute classes below.
	LoadFrac, StoreFrac, BranchFrac          float64
	IntALUW, IntMulW, FPAddW, FPMulW, FPDivW float64
	// LoadFPFrac is the fraction of loads whose destination is an FP
	// register (FP loads feed the FP cluster and the FP LLIB).
	LoadFPFrac float64

	// FootprintBytes is the total data footprint walked by streaming,
	// strided and chasing accesses. HotBytes is a small, cache-resident
	// region receiving the "hot" accesses.
	FootprintBytes, HotBytes uint64
	// Access-pattern weights for loads (and stores, which reuse the
	// stream/hot patterns).
	PatStream, PatStride, PatHot, PatChase float64
	// StrideBytes is the stride of the strided pattern.
	StrideBytes uint64
	// ChaseChainLen is the mean length of a pointer chain: after about
	// this many dependent loads the traversal restarts from a fresh,
	// already-available head pointer. Short chains keep memory-level
	// parallelism available to large windows; one endless chain would
	// serialize the whole program.
	ChaseChainLen int

	// MeanDepDist is the mean backwards distance, in preceding register
	// writers, from a consumer to its producer. Small = serial code,
	// large = high ILP.
	MeanDepDist float64

	// Static branch-kind weights: biased (mostly one way), loop
	// (pattern of N-1 taken then 1 not-taken), and data-dependent
	// (outcome derived from recently loaded data).
	BrBiased, BrLoop, BrDataDep float64
	// BrBias is the probability a biased branch goes its majority way.
	BrBias float64
	// DataDepNoise is the probability a data-dependent branch's outcome
	// is random on a given execution (the unpredictable fraction).
	DataDepNoise float64
	// LoopPeriodMean is the mean loop trip count of loop branches.
	LoopPeriodMean int

	// NumBlocks is the number of static basic blocks. Mean block length
	// follows from BranchFrac (one branch terminates each block).
	NumBlocks int

	// Seed makes every run of this profile reproducible.
	Seed uint64
}

// Validate reports an error for out-of-range parameters.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile with empty name")
	}
	frac := p.LoadFrac + p.StoreFrac + p.BranchFrac
	if frac <= 0 || frac >= 1 {
		return fmt.Errorf("workload: %s: load+store+branch fraction %.2f out of (0,1)", p.Name, frac)
	}
	if p.IntALUW+p.IntMulW+p.FPAddW+p.FPMulW+p.FPDivW <= 0 {
		return fmt.Errorf("workload: %s: no compute weight", p.Name)
	}
	if p.PatStream+p.PatStride+p.PatHot+p.PatChase <= 0 {
		return fmt.Errorf("workload: %s: no load pattern weight", p.Name)
	}
	if p.FootprintBytes < 4096 {
		return fmt.Errorf("workload: %s: footprint %d too small", p.Name, p.FootprintBytes)
	}
	if p.MeanDepDist < 1 {
		return fmt.Errorf("workload: %s: mean dependence distance %.2f < 1", p.Name, p.MeanDepDist)
	}
	if p.ChaseChainLen < 1 {
		return fmt.Errorf("workload: %s: chase chain length %d < 1", p.Name, p.ChaseChainLen)
	}
	if p.NumBlocks < 2 {
		return fmt.Errorf("workload: %s: degenerate code layout", p.Name)
	}
	if p.BranchFrac > 0.34 {
		return fmt.Errorf("workload: %s: branch fraction %.2f implies blocks shorter than 3", p.Name, p.BranchFrac)
	}
	if p.BrBias < 0.5 || p.BrBias > 1 {
		return fmt.Errorf("workload: %s: branch bias %.2f out of [0.5,1]", p.Name, p.BrBias)
	}
	return nil
}

const (
	kb = 1 << 10
	mb = 1 << 20
)

// intProfile fills in fields shared by typical integer codes, then applies
// overrides via the modify callback.
func intProfile(name string, seed uint64, modify func(*Profile)) Profile {
	p := Profile{
		Name: name, Suite: SpecINT,
		LoadFrac: 0.24, StoreFrac: 0.10, BranchFrac: 0.14,
		IntALUW: 0.96, IntMulW: 0.04,
		LoadFPFrac:     0.02,
		FootprintBytes: 512 * kb, HotBytes: 16 * kb,
		PatStream: 0.28, PatStride: 0.02, PatHot: 0.62, PatChase: 0.08,
		StrideBytes: 192, ChaseChainLen: 5,
		MeanDepDist: 3.5,
		BrBiased:    0.55, BrLoop: 0.25, BrDataDep: 0.20,
		BrBias: 0.94, DataDepNoise: 0.35, LoopPeriodMean: 12,
		NumBlocks: 512,
		Seed:      seed,
	}
	if modify != nil {
		modify(&p)
	}
	return p
}

// fpProfile fills in fields shared by typical floating-point codes.
func fpProfile(name string, seed uint64, modify func(*Profile)) Profile {
	p := Profile{
		Name: name, Suite: SpecFP,
		LoadFrac: 0.28, StoreFrac: 0.08, BranchFrac: 0.05,
		IntALUW: 0.30, IntMulW: 0.01, FPAddW: 0.42, FPMulW: 0.26, FPDivW: 0.005,
		LoadFPFrac:     0.85,
		FootprintBytes: 8 * mb, HotBytes: 24 * kb,
		PatStream: 0.72, PatStride: 0.04, PatHot: 0.22, PatChase: 0.02,
		StrideBytes: 320, ChaseChainLen: 2,
		MeanDepDist: 9,
		BrBiased:    0.30, BrLoop: 0.65, BrDataDep: 0.05,
		BrBias: 0.985, DataDepNoise: 0.10, LoopPeriodMean: 48,
		NumBlocks: 192,
		Seed:      seed,
	}
	if modify != nil {
		modify(&p)
	}
	return p
}

// profiles holds the 26 SPEC2000 stand-ins, keyed by program name.
var profiles = map[string]Profile{
	// ---- SpecINT (12) ----
	"bzip2": intProfile("bzip2", 0xb21b2001, func(p *Profile) {
		p.FootprintBytes = 1 * mb
		p.HotBytes = 48 * kb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.10, 0.01, 0.855, 0.035
		p.ChaseChainLen = 3
		p.BrBias = 0.95
	}),
	"crafty": intProfile("crafty", 0xc4af7102, func(p *Profile) {
		p.FootprintBytes = 256 * kb
		p.HotBytes = 32 * kb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.22, 0, 0.76, 0.02
		p.ChaseChainLen = 3
		p.BranchFrac = 0.16
		p.BrDataDep = 0.25
		p.DataDepNoise = 0.30
		p.MeanDepDist = 4.5
	}),
	"eon": intProfile("eon", 0xe0e0e003, func(p *Profile) {
		p.FootprintBytes = 128 * kb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.21, 0, 0.78, 0.01
		p.ChaseChainLen = 2
		p.LoadFPFrac = 0.25 // C++ graphics: some FP
		p.FPAddW, p.FPMulW = 0.15, 0.08
		p.BrBias = 0.96
		p.DataDepNoise = 0.18
	}),
	"gap": intProfile("gap", 0x9a9a0004, func(p *Profile) {
		p.FootprintBytes = 1 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.12, 0, 0.85, 0.03
		p.ChaseChainLen = 4
		p.MeanDepDist = 4
	}),
	"gcc": intProfile("gcc", 0x9cc00005, func(p *Profile) {
		p.FootprintBytes = 2 * mb
		p.NumBlocks = 2048 // big, irregular code
		p.BranchFrac = 0.17
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.10, 0, 0.87, 0.03
		p.ChaseChainLen = 4
		p.BrDataDep = 0.28
		p.DataDepNoise = 0.30
		p.MeanDepDist = 3.2
	}),
	"gzip": intProfile("gzip", 0x92190006, func(p *Profile) {
		p.FootprintBytes = 256 * kb
		p.HotBytes = 64 * kb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.37, 0, 0.62, 0.01
		p.ChaseChainLen = 2
		p.BrBias = 0.95
	}),
	"mcf": intProfile("mcf", 0x3cf00007, func(p *Profile) {
		p.FootprintBytes = 16 * mb // famously memory-bound
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.18, 0.02, 0.69, 0.11
		p.ChaseChainLen = 10
		p.BrDataDep = 0.35
		p.DataDepNoise = 0.28
		p.MeanDepDist = 3
		p.LoadFrac = 0.30
	}),
	"parser": intProfile("parser", 0x9a45e008, func(p *Profile) {
		p.FootprintBytes = 4 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.08, 0, 0.89, 0.03
		p.ChaseChainLen = 6
		p.BrDataDep = 0.30
		p.DataDepNoise = 0.32
		p.MeanDepDist = 3
	}),
	"perlbmk": intProfile("perlbmk", 0x9e410009, func(p *Profile) {
		p.FootprintBytes = 448 * kb
		p.NumBlocks = 1536
		p.BranchFrac = 0.16
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.36, 0, 0.60, 0.04
		p.ChaseChainLen = 3
		p.DataDepNoise = 0.25
	}),
	"twolf": intProfile("twolf", 0x7201f00a, func(p *Profile) {
		p.FootprintBytes = 1 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.10, 0, 0.85, 0.05
		p.ChaseChainLen = 6
		p.BrDataDep = 0.30
		p.DataDepNoise = 0.30
		p.MeanDepDist = 3.2
	}),
	"vortex": intProfile("vortex", 0x501e700b, func(p *Profile) {
		p.FootprintBytes = 2 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.12, 0, 0.85, 0.03
		p.ChaseChainLen = 4
		p.BrBias = 0.96
		p.DataDepNoise = 0.20
	}),
	"vpr": intProfile("vpr", 0x59900c0c, func(p *Profile) {
		p.FootprintBytes = 1 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.10, 0, 0.86, 0.04
		p.ChaseChainLen = 5
		p.BrDataDep = 0.28
		p.DataDepNoise = 0.30
	}),

	// ---- SpecFP (14) ----
	"ammp": fpProfile("ammp", 0xa3390101, func(p *Profile) {
		p.FootprintBytes = 12 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.13, 0.005, 0.845, 0.02 // neighbour lists
		p.ChaseChainLen = 3
		p.MeanDepDist = 7
	}),
	"applu": fpProfile("applu", 0xa9910102, func(p *Profile) {
		p.FootprintBytes = 24 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.19, 0.005, 0.805, 0
		p.MeanDepDist = 10
	}),
	"apsi": fpProfile("apsi", 0xa9510103, func(p *Profile) {
		p.FootprintBytes = 3 * mb // resident once the L2 reaches 4MB
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.10, 0, 0.90, 0
	}),
	"art": fpProfile("art", 0xa4700104, func(p *Profile) {
		p.FootprintBytes = 4 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.90, 0.02, 0.08, 0
		p.LoadFrac = 0.33 // neural-net scans: extremely memory-bound
		p.MeanDepDist = 11
		p.BranchFrac = 0.08
	}),
	"equake": fpProfile("equake", 0xe9a4e105, func(p *Profile) {
		p.FootprintBytes = 12 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.20, 0, 0.785, 0.015 // sparse rows
		p.ChaseChainLen = 2
	}),
	"facerec": fpProfile("facerec", 0xface0106, func(p *Profile) {
		p.FootprintBytes = 3 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.12, 0, 0.88, 0
	}),
	"fma3d": fpProfile("fma3d", 0xf3a30107, func(p *Profile) {
		p.FootprintBytes = 12 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.15, 0, 0.84, 0.01
		p.ChaseChainLen = 2
		p.MeanDepDist = 8
	}),
	"galgel": fpProfile("galgel", 0x9a19e108, func(p *Profile) {
		p.FootprintBytes = 3 * mb // largely cache-resident at big L2s
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.08, 0, 0.92, 0
		p.MeanDepDist = 10
	}),
	"lucas": fpProfile("lucas", 0x10ca5109, func(p *Profile) {
		p.FootprintBytes = 16 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.17, 0.01, 0.82, 0 // FFT strides
		p.StrideBytes = 1024
		p.MeanDepDist = 9
	}),
	"mesa": fpProfile("mesa", 0x3e5a010a, func(p *Profile) {
		p.FootprintBytes = 192 * kb // rendering, cache-friendly
		p.HotBytes = 64 * kb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.40, 0, 0.60, 0
		p.BranchFrac = 0.09
		p.BrBiased, p.BrLoop = 0.50, 0.45
	}),
	"mgrid": fpProfile("mgrid", 0x39d1010b, func(p *Profile) {
		p.FootprintBytes = 24 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.18, 0.005, 0.815, 0
		p.MeanDepDist = 11
	}),
	"sixtrack": fpProfile("sixtrack", 0x51c7010c, func(p *Profile) {
		p.FootprintBytes = 320 * kb // compute-bound tracking loops
		p.HotBytes = 96 * kb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.34, 0, 0.66, 0
		p.MeanDepDist = 8
	}),
	"swim": fpProfile("swim", 0x5013010d, func(p *Profile) {
		p.FootprintBytes = 32 * mb // the classic bandwidth hog
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.44, 0.005, 0.555, 0
		p.LoadFrac = 0.30
		p.MeanDepDist = 12
	}),
	"wupwise": fpProfile("wupwise", 0x30b1010e, func(p *Profile) {
		p.FootprintBytes = 12 * mb
		p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0.09, 0.003, 0.907, 0
		p.MeanDepDist = 9
	}),
}

// Names returns all benchmark names, SpecINT first then SpecFP, each suite
// alphabetical — the order used in the paper's per-benchmark figures.
func Names() []string {
	var ints, fps []string
	for n, p := range profiles {
		if p.Suite == SpecINT {
			ints = append(ints, n)
		} else {
			fps = append(fps, n)
		}
	}
	sort.Strings(ints)
	sort.Strings(fps)
	return append(ints, fps...)
}

// SuiteNames returns the benchmark names of one suite, alphabetical.
func SuiteNames(s Suite) []string {
	var out []string
	for n, p := range profiles {
		if p.Suite == s {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Lookup returns the profile for a benchmark name.
func Lookup(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}
