package workload

import (
	"testing"

	"dkip/internal/isa"
	"dkip/internal/trace"
)

func TestAllProfilesValidate(t *testing.T) {
	names := Names()
	if len(names) != 26 {
		t.Fatalf("expected 26 benchmarks, got %d", len(names))
	}
	for _, n := range names {
		p, ok := Lookup(n)
		if !ok {
			t.Fatalf("lookup %q failed", n)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if p.Name != n {
			t.Errorf("profile %q has Name %q", n, p.Name)
		}
	}
}

func TestSuiteSplit(t *testing.T) {
	if got := len(SuiteNames(SpecINT)); got != 12 {
		t.Errorf("SpecINT has %d benchmarks, want 12", got)
	}
	if got := len(SuiteNames(SpecFP)); got != 14 {
		t.Errorf("SpecFP has %d benchmarks, want 14", got)
	}
	if SpecINT.String() != "SpecINT" || SpecFP.String() != "SpecFP" {
		t.Error("suite names wrong")
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := New("nonesuch"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestDeterminism(t *testing.T) {
	a := MustNew("mcf")
	b := MustNew("mcf")
	for i := 0; i < 20000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("instruction %d diverged: %v vs %v", i, &x, &y)
		}
	}
}

func TestResetReproduces(t *testing.T) {
	g := MustNew("swim")
	first := trace.Take(g, 5000)
	g.Reset()
	second := trace.Take(g, 5000)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("instruction %d differs after reset", i)
		}
	}
	if g.Emitted() != 5000 {
		t.Errorf("emitted = %d", g.Emitted())
	}
}

func TestInstructionWellFormed(t *testing.T) {
	for _, name := range Names() {
		g := MustNew(name)
		for i := 0; i < 20000; i++ {
			in := g.Next()
			if !in.Op.Valid() {
				t.Fatalf("%s: invalid op %v", name, in.Op)
			}
			if in.Op.HasDest() && !in.Dest.Valid() {
				t.Fatalf("%s: %v without destination", name, in.Op)
			}
			if !in.Op.HasDest() && in.Dest.Valid() {
				t.Fatalf("%s: %v with destination", name, in.Op)
			}
			if in.Op.IsMem() && in.Addr == 0 {
				t.Fatalf("%s: memory op without address", name)
			}
			if in.Op == isa.Load && !in.Src1.Valid() {
				t.Fatalf("%s: load without base register", name)
			}
			if in.PC == 0 {
				t.Fatalf("%s: zero PC", name)
			}
		}
	}
}

func TestMixMatchesProfile(t *testing.T) {
	for _, name := range []string{"gcc", "swim", "mcf", "mesa"} {
		g := MustNew(name)
		p := g.Profile()
		m := trace.MeasureMix(g, 200000)
		check := func(what string, got, want, tol float64) {
			if got < want-tol || got > want+tol {
				t.Errorf("%s: %s fraction %.3f, profile %.3f", name, what, got, want)
			}
		}
		check("load", m.Frac(isa.Load), p.LoadFrac, 0.03)
		check("store", m.Frac(isa.Store), p.StoreFrac, 0.03)
		check("branch", m.Frac(isa.Branch), p.BranchFrac, 0.04)
	}
}

func TestChaseChainsAreLinked(t *testing.T) {
	g := MustNew("mcf")
	var prevChaseDest isa.Reg = isa.RegNone
	linked, heads := 0, 0
	for i := 0; i < 300000; i++ {
		in := g.Next()
		if in.Op == isa.Load && in.ChainLoad {
			if in.Src1 == prevChaseDest {
				linked++
			} else {
				heads++
			}
			prevChaseDest = in.Dest
		}
	}
	if linked == 0 {
		t.Fatal("no linked chase loads observed")
	}
	if heads == 0 {
		t.Fatal("no chain heads observed — chains never break")
	}
	// mcf's mean chain length is 10: hops should dominate heads.
	if ratio := float64(linked) / float64(heads); ratio < 4 || ratio > 25 {
		t.Errorf("hop/head ratio %.1f inconsistent with chain length 10", ratio)
	}
}

func TestAddressesWithinRegions(t *testing.T) {
	g := MustNew("applu")
	p := g.Profile()
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if !in.Op.IsMem() {
			continue
		}
		inData := in.Addr >= dataBase && in.Addr < dataBase+p.FootprintBytes
		inHot := in.Addr >= hotBase && in.Addr < hotBase+p.HotBytes
		if !inData && !inHot {
			t.Fatalf("address %#x outside data and hot regions", in.Addr)
		}
	}
}

func TestWarmRanges(t *testing.T) {
	g := MustNew("swim")
	r := g.WarmRanges()
	if len(r) != 2 {
		t.Fatalf("expected 2 warm ranges, got %d", len(r))
	}
	if r[0][0] != dataBase || r[0][1] != g.Profile().FootprintBytes {
		t.Error("first range should be the data footprint")
	}
	if r[1][0] != hotBase || r[1][1] != g.Profile().HotBytes {
		t.Error("second range should be the hot region")
	}
}

func TestBranchOutcomeConsistency(t *testing.T) {
	// Loop branches must produce their configured periodic behaviour:
	// over a long window, taken fraction of branches should be high for
	// FP codes (long loops) and moderate for INT codes.
	g := MustNew("applu")
	m := trace.MeasureMix(g, 200000)
	frac := float64(m.TakenBranches) / float64(m.Count[isa.Branch])
	if frac < 0.6 || frac > 0.99 {
		t.Errorf("applu taken-branch fraction %.2f out of expected range", frac)
	}
}

func TestRegularBasesAlwaysReady(t *testing.T) {
	// Stream/stride/hot accesses must use the reserved base register so
	// their addresses never depend on loaded data; only chase loads may
	// use a computed base.
	g := MustNew("swim")
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Op == isa.Load && !in.ChainLoad && in.Src1 != baseReg {
			t.Fatalf("non-chase load with computed base %v", in.Src1)
		}
		if in.Op.HasDest() && in.Dest == baseReg {
			t.Fatalf("instruction defines the reserved base register")
		}
	}
}

func TestProfileValidationErrors(t *testing.T) {
	good, _ := Lookup("swim")
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.LoadFrac = 0.95 },
		func(p *Profile) { p.IntALUW, p.IntMulW, p.FPAddW, p.FPMulW, p.FPDivW = 0, 0, 0, 0, 0 },
		func(p *Profile) { p.PatStream, p.PatStride, p.PatHot, p.PatChase = 0, 0, 0, 0 },
		func(p *Profile) { p.FootprintBytes = 16 },
		func(p *Profile) { p.MeanDepDist = 0.5 },
		func(p *Profile) { p.ChaseChainLen = 0 },
		func(p *Profile) { p.NumBlocks = 1 },
		func(p *Profile) { p.BranchFrac = 0.5 },
		func(p *Profile) { p.BrBias = 0.3 },
	}
	for i, mod := range cases {
		p := good
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewFromProfileRejectsInvalid(t *testing.T) {
	p, _ := Lookup("swim")
	p.ChaseChainLen = 0
	if _, err := NewFromProfile(p); err == nil {
		t.Error("invalid profile accepted")
	}
}
