// Package xrand provides a small, fully deterministic pseudo-random number
// generator plus the distributions the workload generators need.
//
// The simulator's results must be bit-reproducible across Go releases, so we
// do not use math/rand (whose unseeded behaviour and algorithms have shifted
// between versions). The generator is SplitMix64 feeding xoshiro256**, the
// same construction used by many simulators; it is tiny, fast, and passes
// BigCrush.
package xrand

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random number generator. The zero value is
// not valid; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via SplitMix64, so any
// seed (including 0) yields a well-mixed state.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
}

// Uint64 returns the next 64 pseudo-random bits (xoshiro256**).
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a geometrically distributed integer >= 1 with mean
// approximately 1/p. It is used for dependence distances and run lengths.
// p must be in (0, 1].
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric probability out of (0,1]")
	}
	n := 1
	for !r.Bool(p) {
		n++
		// Bound pathological tails so a bad parameter cannot hang a run.
		if n >= 1<<20 {
			break
		}
	}
	return n
}

// Pick returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. It panics if the weights sum to zero or less.
func (r *Rand) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("xrand: Pick with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf samples from a Zipf-like distribution over [0, n) with exponent s,
// using rejection-free inverse-CDF over a precomputed table when n is small
// is overkill here; instead we use the standard two-level approximation that
// is adequate for address-stream skew: rank = floor(n * u^(1/(1-s))) clamped.
// For s near 1 this still concentrates mass on low ranks, which is the only
// property the workload models rely on.
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	u := r.Float64()
	if u == 0 {
		u = 0.5 / float64(n)
	}
	// Inverse of the continuous Pareto CDF restricted to [1, n].
	exp := 1.0 / (1.0 - s)
	x := math.Pow(float64(n), 1.0-s)
	v := math.Pow(u*(x-1.0)+1.0, exp)
	idx := int(v) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
