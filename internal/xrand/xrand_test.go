package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	c := New(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical values of 100", same)
	}
}

func TestSeedReset(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, value %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(3)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum int
	for i := 0; i < n; i++ {
		v := r.Geometric(0.25)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	if mean := float64(sum) / n; math.Abs(mean-4) > 0.1 {
		t.Errorf("Geometric(0.25) mean = %v, want ~4", mean)
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) should panic")
		}
	}()
	New(1).Geometric(0)
}

func TestPickWeights(t *testing.T) {
	r := New(5)
	counts := [3]int{}
	const n = 300000
	for i := 0; i < n; i++ {
		counts[r.Pick([]float64{1, 2, 1})]++
	}
	if p := float64(counts[1]) / n; math.Abs(p-0.5) > 0.01 {
		t.Errorf("middle weight frequency = %v, want ~0.5", p)
	}
	if counts[0] == 0 || counts[2] == 0 {
		t.Error("zero-weight outcomes never picked")
	}
}

func TestPickZeroWeightNeverChosen(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		if r.Pick([]float64{0, 1, 0}) != 1 {
			t.Fatal("zero-weight index chosen")
		}
	}
}

func TestPickPanicsOnNoWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pick with zero total should panic")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestZipfBoundsAndSkew(t *testing.T) {
	r := New(7)
	const n = 64
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		v := r.Zipf(n, 0.9)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[n-1] {
		t.Errorf("Zipf not skewed: first=%d last=%d", counts[0], counts[n-1])
	}
	// Degenerate sizes.
	if r.Zipf(1, 0.9) != 0 || r.Zipf(0, 0.9) != 0 {
		t.Error("Zipf degenerate sizes should return 0")
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(8)
	err := quick.Check(func(n uint32) bool {
		m := uint64(n)%100000 + 1
		return r.Uint64n(m) < m
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
